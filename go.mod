module github.com/graybox-stabilization/graybox

go 1.22
