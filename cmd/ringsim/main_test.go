package main

import (
	"strings"
	"testing"
)

func TestLossWithWrapperRecovers(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fault", "loss", "-delta", "25"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "regenerations  1") {
		t.Errorf("expected one regeneration:\n%s", out)
	}
	if !strings.Contains(out, "live tokens    1") {
		t.Errorf("expected a single live token:\n%s", out)
	}
}

func TestLossWithoutWrapperStaysDead(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fault", "loss", "-delta", "0"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "live tokens    0") {
		t.Errorf("unwrapped ring should stay dead:\n%s", b.String())
	}
}

func TestLazyWithSeqFault(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-impl", "lazy", "-fault", "seq", "-horizon", "4000"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "live tokens    1") {
		t.Errorf("seq blockade not outrun:\n%s", b.String())
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-impl", "teleporting"},
		{"-fault", "gamma-ray"},
		{"-fault-at", "99", "-horizon", "50"},
	} {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestNoFault(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fault", "none"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "regenerations  0") {
		t.Errorf("fault-free run regenerated:\n%s", b.String())
	}
}

func TestMetricsAndTraceFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fault", "loss", "-delta", "25", "-metrics", "-trace", "20"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ring_accepts_total counter",
		"# TYPE ring_regenerations_total counter",
		"# TYPE ring_time gauge",
		"trace          last 20 of",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
