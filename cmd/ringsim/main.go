// Command ringsim runs the second case study (internal/ring): token
// circulation with the graybox regeneration wrapper, under a chosen fault.
//
// Usage:
//
//	ringsim [-impl eager|lazy] [-n 6] [-seed 1] [-delta 25]
//	        [-fault loss|dup|holders|seq|none] [-fault-at 50]
//	        [-horizon 2000] [-metrics] [-metrics-json file] [-trace 100]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/ring"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringsim", flag.ContinueOnError)
	implName := fs.String("impl", "eager", "implementation: eager or lazy")
	n := fs.Int("n", 6, "ring size")
	seed := fs.Int64("seed", 1, "simulation seed")
	delta := fs.Int("delta", 25, "regeneration timeout δ (0 = no wrapper)")
	faultName := fs.String("fault", "loss", "fault to inject: loss, dup, holders, seq, or none")
	faultAt := fs.Int64("fault-at", 50, "tick of the fault")
	horizon := fs.Int64("horizon", 2000, "run length in ticks")
	metrics := fs.Bool("metrics", false, "print the Prometheus metrics exposition after the run")
	metricsJSON := fs.String("metrics-json", "", `write the JSON metrics snapshot to this file ("-" = stdout)`)
	traceN := fs.Int("trace", 0, "retain and print the last N trace events")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var factory func(id, nn int) ring.Node
	switch *implName {
	case "eager":
		factory = func(id, nn int) ring.Node { return ring.NewEager(id, nn, 2) }
	case "lazy":
		factory = func(id, nn int) ring.Node { return ring.NewLazy(id, nn, 4, 2) }
	default:
		return fmt.Errorf("unknown implementation %q (want eager or lazy)", *implName)
	}

	o := obs.New(obs.Options{TraceCapacity: *traceN})
	s := ring.NewSim(ring.SimConfig{
		N: *n, Seed: *seed, NewNode: factory, WrapperDelta: *delta, Obs: o,
	})
	if *faultAt > *horizon {
		return fmt.Errorf("fault-at %d beyond horizon %d", *faultAt, *horizon)
	}
	s.Run(*faultAt)
	switch *faultName {
	case "loss":
		s.DropAllInFlight()
		s.StealToken()
	case "dup":
		s.DuplicateInFlight()
	case "holders":
		s.ForgeHolders(*n / 2)
	case "seq":
		s.CorruptSeq(*n/2, s.Node(*n/2).Seq()+64)
	case "none":
	default:
		return fmt.Errorf("unknown fault %q", *faultName)
	}
	s.Run(*horizon - *faultAt)

	m := s.Metrics()
	total := 0
	fmt.Fprintf(out, "impl           %s (n=%d, seed=%d, δ=%d)\n", *implName, *n, *seed, *delta)
	fmt.Fprintf(out, "fault          %s at t=%d\n", *faultName, *faultAt)
	for i, a := range m.Accepts {
		total += a
		fmt.Fprintf(out, "  process %-2d   %d deliveries\n", i, a)
	}
	fmt.Fprintf(out, "deliveries     %d total, %d stale discards\n", total, m.Discards)
	fmt.Fprintf(out, "regenerations  %d\n", m.Regenerations)
	fmt.Fprintf(out, "dead ticks     %d\n", m.DeadTicks)
	fmt.Fprintf(out, "live tokens    %d (holder: %d)\n", s.LiveTokens(), s.Holder())

	if *traceN > 0 {
		evs := o.Trace.Events()
		fmt.Fprintf(out, "trace          last %d of %d events (%d dropped)\n",
			len(evs), o.Trace.Total(), o.Trace.Dropped())
		for _, e := range evs {
			fmt.Fprintf(out, "  %s\n", e)
		}
	}
	if *metrics {
		if err := o.Reg.WritePrometheus(out); err != nil {
			return err
		}
	}
	if *metricsJSON != "" {
		w := out
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := o.Reg.WriteJSON(w); err != nil {
			return err
		}
	}
	return nil
}
