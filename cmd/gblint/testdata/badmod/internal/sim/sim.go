// Package sim is gblint's end-to-end CLI fixture: a compiling module
// whose one package sits in the determinism scope and reads the wall
// clock.
package sim

import "time"

// Now leaks wall-clock time into a package under the determinism
// contract.
func Now() int64 {
	return time.Now().UnixNano()
}
