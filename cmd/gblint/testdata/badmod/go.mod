module example.com/badmod

go 1.22
