package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestCleanPackage lints this package itself: exit 0, no output.
func TestCleanPackage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean package\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output on clean package: %s", out.String())
	}
}

// TestFindings runs the CLI end-to-end over testdata/badmod, a compiling
// module whose sim package reads the wall clock: exit 1 and a determinism
// diagnostic naming the offending file.
func TestFindings(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "[determinism]") || !strings.Contains(got, "time.Now") {
		t.Errorf("missing determinism finding in output:\n%s", got)
	}
	if !strings.Contains(got, "internal/sim/sim.go") {
		t.Errorf("finding does not name the offending file:\n%s", got)
	}
	if !strings.Contains(errOut.String(), "1 finding(s)") {
		t.Errorf("missing findings summary on stderr: %s", errOut.String())
	}
}

// TestPassSelection checks -pass subsets the run: with only the layering
// pass selected, badmod's wall-clock read goes unreported.
func TestPassSelection(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut bytes.Buffer
	if code := run([]string{"-pass", "layering", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestBadFlag checks flag errors exit 2, distinct from findings.
func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestBadPattern checks go-list failures exit 2 with the error surfaced.
func TestBadPattern(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./no/such/dir/..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "gblint:") {
		t.Errorf("missing error on stderr: %s", errOut.String())
	}
}

// TestJSONClean checks -json on a clean package: exit 0 and an empty JSON
// array (never null), so CI can archive the output unconditionally.
func TestJSONClean(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on clean package\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if findings == nil || len(findings) != 0 {
		t.Errorf("want empty (non-null) array, got %v", findings)
	}
}

// TestJSONFindings checks -json over testdata/badmod: exit 1 and a parsed
// finding carrying pass, file, line, and message.
func TestJSONFindings(t *testing.T) {
	t.Chdir("testdata/badmod")
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded")
	}
	f := findings[0]
	if f.Pass != "determinism" || !strings.Contains(f.Msg, "time.Now") {
		t.Errorf("finding = %+v, want a determinism/time.Now finding", f)
	}
	if !strings.Contains(f.File, "internal/sim/sim.go") || f.Line == 0 {
		t.Errorf("finding does not locate the offending line: %+v", f)
	}
}
