// Command gblint is the repository's graybox-aware static analyzer. It
// enforces the conventions the codebase's correctness arguments lean on:
// the graybox layering rule (wrappers and specs never import protocol
// internals), the simulator's determinism contract, allocation discipline
// in //gblint:hotpath functions, observability API discipline, mutex/atomic
// discipline on //gblint:guardedby fields, exhaustive dispatch over
// //gblint:kindset const blocks, and goroutine lifecycle (every spawn needs
// a visible stop path or a //gblint:spawn reason). See internal/lint for
// the passes and DESIGN.md "Static guarantees" for the architecture they
// encode.
//
// Usage:
//
//	gblint [-pass layering,determinism,hotpath,obs,guardedby,exhaustive,spawn] [-json] [packages]
//
// Packages default to ./... and use the go tool's pattern syntax. The
// exit status is 1 when any finding is reported. -json renders the
// findings as a JSON array on stdout (an empty array on a clean tree), the
// machine-readable form CI archives as an artifact. Suppress a finding
// with a //gblint:ignore <pass> comment on, or directly above, its line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/graybox-stabilization/graybox/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("gblint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	passes := fs.String("pass", "", "comma-separated pass subset (default: all of layering,determinism,hotpath,obs,guardedby,exhaustive,spawn)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (empty array when clean)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := lint.DefaultConfig()
	if *passes != "" {
		cfg.Passes = strings.Split(*passes, ",")
	}
	diags, err := lint.Run(".", fs.Args(), cfg)
	if err != nil {
		fmt.Fprintln(errOut, "gblint:", err)
		return 2
	}
	wd, _ := os.Getwd()
	for i := range diags {
		if wd != "" {
			if rel, err := filepath.Rel(wd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Pos.Filename = rel
			}
		}
	}
	if *jsonOut {
		if err := writeJSON(out, diags); err != nil {
			fmt.Fprintln(errOut, "gblint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) == 0 {
		return 0
	}
	fmt.Fprintf(errOut, "gblint: %d finding(s)\n", len(diags))
	return 1
}

// jsonFinding is the machine-readable rendering of one diagnostic.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Pass string `json:"pass"`
	Msg  string `json:"msg"`
}

// writeJSON renders the findings as an indented JSON array — always an
// array (an empty one on a clean tree), so consumers need no null check.
func writeJSON(out io.Writer, diags []lint.Diagnostic) error {
	fs := make([]jsonFinding, len(diags))
	for i, d := range diags {
		fs[i] = jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Pass: d.Pass, Msg: d.Msg,
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}
