// Command gblint is the repository's graybox-aware static analyzer. It
// enforces the conventions the codebase's correctness arguments lean on:
// the graybox layering rule (wrappers and specs never import protocol
// internals), the simulator's determinism contract, allocation discipline
// in //gblint:hotpath functions, and observability API discipline. See
// internal/lint for the passes and DESIGN.md "Static guarantees" for the
// architecture they encode.
//
// Usage:
//
//	gblint [-pass layering,determinism,hotpath,obs] [packages]
//
// Packages default to ./... and use the go tool's pattern syntax. The
// exit status is 1 when any finding is reported. Suppress a finding with
// a //gblint:ignore <pass> comment on, or directly above, its line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/graybox-stabilization/graybox/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("gblint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	passes := fs.String("pass", "", "comma-separated pass subset (default: all of layering,determinism,hotpath,obs)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := lint.DefaultConfig()
	if *passes != "" {
		cfg.Passes = strings.Split(*passes, ",")
	}
	diags, err := lint.Run(".", fs.Args(), cfg)
	if err != nil {
		fmt.Fprintln(errOut, "gblint:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		if wd != "" {
			if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Fprintln(out, d)
	}
	fmt.Fprintf(errOut, "gblint: %d finding(s)\n", len(diags))
	return 1
}
