package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/obs"
)

func snapshotWithGauges(g map[string]int64) *obs.Snapshot {
	s := obs.NewSnapshot()
	for k, v := range g {
		s.Gauges[k] = v
	}
	return s
}

func TestCompareSnapshots(t *testing.T) {
	old := snapshotWithGauges(map[string]int64{
		"bench_a_ns_op":     1000,
		"bench_a_allocs_op": 100,
		"bench_a_bytes_op":  5000,
		"bench_old_only":    1,
	})
	cases := []struct {
		name     string
		cur      map[string]int64
		tol      float64
		failTol  float64
		wantHard int
		want     []string
	}{
		{
			name: "improvement passes",
			cur: map[string]int64{
				"bench_a_ns_op": 700, "bench_a_allocs_op": 50, "bench_a_bytes_op": 4000,
			},
			tol: 0.15, failTol: 0.15, wantHard: 0,
			want: []string{"-30.0%"},
		},
		{
			name: "regression beyond tolerance fails",
			cur: map[string]int64{
				"bench_a_ns_op": 1300, "bench_a_allocs_op": 100,
			},
			tol: 0.15, failTol: 0.15, wantHard: 1,
			want: []string{"REGRESSION"},
		},
		{
			name: "advisory band warns without failing",
			cur: map[string]int64{
				"bench_a_ns_op": 1300, "bench_a_allocs_op": 100,
			},
			tol: 0.15, failTol: 1.0, wantHard: 0,
			want: []string{"advisory"},
		},
		{
			name: "doubling fails even with advisory band",
			cur: map[string]int64{
				"bench_a_ns_op": 2500, "bench_a_allocs_op": 100,
			},
			tol: 0.15, failTol: 1.0, wantHard: 1,
			want: []string{"REGRESSION"},
		},
		{
			name: "bytes per op is informational only",
			cur: map[string]int64{
				"bench_a_ns_op": 1000, "bench_a_allocs_op": 100, "bench_a_bytes_op": 50000,
			},
			tol: 0.15, failTol: 0.15, wantHard: 0,
			want: []string{"bench_a_bytes_op"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			hard := compareSnapshots(&b, old, snapshotWithGauges(tc.cur), tc.tol, tc.failTol)
			if hard != tc.wantHard {
				t.Errorf("hard = %d, want %d\n%s", hard, tc.wantHard, b.String())
			}
			for _, w := range tc.want {
				if !strings.Contains(b.String(), w) {
					t.Errorf("output missing %q:\n%s", w, b.String())
				}
			}
			if strings.Contains(b.String(), "bench_old_only") {
				t.Errorf("gauge absent from the new run should not be diffed:\n%s", b.String())
			}
		})
	}
}

func TestLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := os.WriteFile(path, []byte(`{"counters":{},"gauges":{"x_ns_op":42}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := loadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Gauges["x_ns_op"] != 42 {
		t.Errorf("x_ns_op = %d, want 42", s.Gauges["x_ns_op"])
	}
	if _, err := loadSnapshot(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadSnapshot(path); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestGated(t *testing.T) {
	for name, want := range map[string]bool{
		"bench_stabilize_ra_ns_op":              true,
		"bench_stabilize_ra_allocs_op":          true,
		"bench_stabilize_ra_bytes_op":           false,
		"bench_stabilize_ra_iterations":         false,
		"bench_stabilize_ra_conv_ticks_per_run": false,
	} {
		if got := gated(name); got != want {
			t.Errorf("gated(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"conv-ticks/run":     "conv_ticks_per_run",
		"recovery-ticks/run": "recovery_ticks_per_run",
		"MB/s":               "mb_per_s",
		"plain":              "plain",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistoryRank(t *testing.T) {
	// The PR timeline: BASELINE, then PR numbers ascending, a _PRE
	// variant just before its PR.
	ordered := []string{
		"BENCH_BASELINE.json", "BENCH_PR2.json", "BENCH_PR7_PRE.json",
		"BENCH_PR7.json", "BENCH_PR9.json", "BENCH_PR10.json",
	}
	for i := 1; i < len(ordered); i++ {
		if historyRank(ordered[i-1]) >= historyRank(ordered[i]) {
			t.Errorf("%s should rank before %s", ordered[i-1], ordered[i])
		}
	}
	// Unrecognized tags sort after every PR.
	if historyRank("BENCH_EXPERIMENT.json") <= historyRank("BENCH_PR99.json") {
		t.Error("unknown tag should sort last")
	}
}

func TestRunHistory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, json string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(json), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("BENCH_BASELINE.json", `{"counters":{},"gauges":{"bench_x_ns_op":1000,"bench_x_allocs_op":50}}`)
	write("BENCH_PR10.json", `{"counters":{},"gauges":{"bench_x_ns_op":800,"bench_x_allocs_op":40,"bench_y_ns_op":7}}`)
	write("BENCH_PR2.json", `{"counters":{},"gauges":{"bench_x_ns_op":900,"bench_x_allocs_op":45}}`)

	var b strings.Builder
	if err := runHistory(dir, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Column order follows the PR timeline, not lexical order (PR10 last).
	base := strings.Index(out, "BASELINE")
	pr2 := strings.Index(out, "PR2")
	pr10 := strings.Index(out, "PR10")
	if base < 0 || pr2 < 0 || pr10 < 0 || !(base < pr2 && pr2 < pr10) {
		t.Errorf("columns out of timeline order:\n%s", out)
	}
	for _, want := range []string{"ns/op trend", "allocs/op trend", "bench_x", "bench_y", "1000", "800", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("history output missing %q:\n%s", want, out)
		}
	}
	if err := runHistory(t.TempDir(), io.Discard); err == nil {
		t.Error("empty directory should be an error")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, nil, nil); err == nil {
		t.Error("bad flag accepted")
	}
}
