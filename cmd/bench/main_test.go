package main

import "testing"

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"conv-ticks/run":     "conv_ticks_per_run",
		"recovery-ticks/run": "recovery_ticks_per_run",
		"MB/s":               "mb_per_s",
		"plain":              "plain",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, nil, nil); err == nil {
		t.Error("bad flag accepted")
	}
}
