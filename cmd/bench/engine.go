package main

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/engine"
)

// benchEngineDispatch measures the engine core's steady-state
// schedule→pop→dispatch cycle in isolation: a self-sustaining population
// of typed events where every handled event schedules its successor. This
// is the hot path under every substrate (and, since the sharded sim, it
// runs once per shard core inside each barrier window), so it must stay
// allocation-free — the gate fails if allocs/op regresses above zero.
func benchEngineDispatch(b *testing.B) {
	const kindPing uint8 = 1
	const population = 64

	c := engine.New(1)
	var handled, target int64
	c.SetHandler(func(e *engine.Event) {
		if e.Kind != kindPing {
			e.Call()
			return
		}
		handled++
		if handled >= target {
			c.Stop()
			return
		}
		// Vary the delay so the heap actually reorders instead of acting
		// as a FIFO, using only the event's own operands (no rng draw on
		// the measured path).
		c.Schedule(1+int64(e.A%7), kindPing, e.A+1, e.B)
	})
	for i := 0; i < population; i++ {
		c.Schedule(int64(i%7), kindPing, int32(i), 0)
	}

	b.ReportAllocs()
	b.ResetTimer()
	target = int64(b.N)
	c.Run(1 << 62)
}
