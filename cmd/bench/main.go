// Command bench re-runs the repository's headline benchmarks — E2
// stabilization, E4 deadlock recovery, and the E5 timeout sweep — outside
// `go test`, and writes the measurements as a JSON metrics snapshot via the
// obs exporter. The committed BENCH_BASELINE.json is its output; regenerate
// with `make bench-baseline` after performance-relevant changes.
//
// Usage:
//
//	bench [-out BENCH_BASELINE.json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH_BASELINE.json", `output file ("-" = stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// With -out - the snapshot itself goes to stdout, so the per-benchmark
	// result lines move to stderr to keep stdout valid JSON.
	status := out
	if *outPath == "-" {
		status = errOut
	}

	reg := obs.NewRegistry()
	record := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		fmt.Fprintf(status, "%-32s %s\n", name, res.String()+res.MemString())
		reg.Gauge(name+"_ns_op", "nanoseconds per run").Set(res.NsPerOp())
		reg.Gauge(name+"_allocs_op", "allocations per run").Set(res.AllocsPerOp())
		reg.Gauge(name+"_bytes_op", "bytes allocated per run").Set(res.AllocedBytesPerOp())
		reg.Gauge(name+"_iterations", "benchmark iterations").Set(int64(res.N))
		for metric, v := range res.Extra {
			reg.Gauge(name+"_"+sanitize(metric), "custom benchmark metric").Set(int64(v + 0.5))
		}
	}

	// E2: stabilization of RA ▯ W' under mixed fault bursts.
	record("bench_stabilize_ra", func(b *testing.B) {
		var convSum int64
		for i := 0; i < b.N; i++ {
			r := harness.Run(harness.RunConfig{
				Algo: harness.RA, N: 4,
				Seed: int64(i), FaultSeed: int64(i) + 1000,
				Delta:      5,
				FaultTimes: []int64{200, 300}, FaultsPerBurst: 10,
				MaxRequests: 30,
				Horizon:     20000,
				Monitor:     true,
			})
			if !r.Converged {
				b.Fatalf("seed %d did not converge", i)
			}
			convSum += r.ConvergenceTime
		}
		b.ReportMetric(float64(convSum)/float64(b.N), "conv-ticks/run")
	})

	// E4: breaking the §4 deadlock with W'.
	record("bench_deadlock_recovery", func(b *testing.B) {
		var latSum int64
		for i := 0; i < b.N; i++ {
			r := harness.Run(harness.RunConfig{
				Algo: harness.RA, N: 4,
				Seed:          int64(i),
				Delta:         5,
				DeadlockFault: true,
				Horizon:       20000,
			})
			if r.FirstEntryAfterFault < 0 {
				b.Fatalf("seed %d: wrapper failed to break the deadlock", i)
			}
			latSum += r.FirstEntryAfterFault - r.LastFault
		}
		b.ReportMetric(float64(latSum)/float64(b.N), "recovery-ticks/run")
	})

	// E5: recovery latency per wrapper timeout δ.
	for _, delta := range []int64{0, 5, 20, 100} {
		delta := delta
		record(fmt.Sprintf("bench_timeout_sweep_delta_%d", delta), func(b *testing.B) {
			var latSum int64
			for i := 0; i < b.N; i++ {
				r := harness.Run(harness.RunConfig{
					Algo: harness.RA, N: 4, Seed: int64(i),
					Delta:         delta,
					DeadlockFault: true,
					Horizon:       20000,
				})
				latSum += r.FirstEntryAfterFault - r.LastFault
			}
			b.ReportMetric(float64(latSum)/float64(b.N), "recovery-ticks/run")
		})
	}

	w := out
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		fmt.Fprintf(status, "wrote %s\n", *outPath)
	}
	return reg.WriteJSON(w)
}

// sanitize maps a custom metric name ("conv-ticks/run") to a metric-safe
// suffix ("conv_ticks_per_run").
func sanitize(s string) string {
	s = strings.ReplaceAll(s, "/", "_per_")
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
