// Command bench re-runs the repository's headline benchmarks — E2
// stabilization, E4 deadlock recovery, and the E5 timeout sweep — outside
// `go test`, and writes the measurements as a JSON metrics snapshot via the
// obs exporter. The committed BENCH_BASELINE.json is its output; regenerate
// with `make bench-baseline` after performance-relevant changes.
//
// With -compare the run also diffs its measurements against a previous
// snapshot and exits non-zero on performance regressions, making it a CI
// gate:
//
//	bench -out BENCH_PR2.json -compare BENCH_BASELINE.json
//
// A ns/op or allocs/op gauge that grew by more than -tolerance (relative,
// default 0.15) is reported as a regression. When -fail-tolerance is set
// higher than -tolerance, regressions between the two are advisory (printed,
// exit 0) and only those beyond -fail-tolerance fail the run — CI uses this
// on a short -benchtime budget, where scheduler noise makes small deltas
// meaningless but a 2x regression is real.
//
// Usage:
//
//	bench [-out BENCH_BASELINE.json] [-benchtime 30x]
//	      [-compare old.json [-tolerance 0.15] [-fail-tolerance 1.0]]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/ring"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH_BASELINE.json", `output file ("-" = stdout)`)
	comparePath := fs.String("compare", "", "previous snapshot to diff against; regressions exit non-zero")
	tolerance := fs.Float64("tolerance", 0.15, "relative ns/op or allocs/op growth reported as a regression")
	failTolerance := fs.Float64("fail-tolerance", 0, "growth beyond which the run fails (0 = same as -tolerance; set higher to make smaller regressions advisory)")
	benchtime := fs.String("benchtime", "", `benchmark time budget per benchmark, as accepted by go test (e.g. "2s", "10x")`)
	history := fs.Bool("history", false, "print the ns/op and allocs/op trend across committed BENCH_*.json snapshots instead of benchmarking")
	historyDir := fs.String("history-dir", ".", "directory scanned for BENCH_*.json when -history is set")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *history {
		return runHistory(*historyDir, out)
	}
	if *benchtime != "" {
		// testing.Benchmark reads the test.benchtime flag; register the
		// testing flags so it can be set without running under go test.
		testing.Init()
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return fmt.Errorf("bad -benchtime: %w", err)
		}
	}

	// With -out - the snapshot itself goes to stdout, so the per-benchmark
	// result lines move to stderr to keep stdout valid JSON.
	status := out
	if *outPath == "-" {
		status = errOut
	}

	reg := obs.NewRegistry()
	record := func(name string, fn func(b *testing.B)) {
		res := testing.Benchmark(fn)
		fmt.Fprintf(status, "%-32s %s\n", name, res.String()+res.MemString())
		reg.Gauge(name+"_ns_op", "nanoseconds per run").Set(res.NsPerOp())
		reg.Gauge(name+"_allocs_op", "allocations per run").Set(res.AllocsPerOp())
		reg.Gauge(name+"_bytes_op", "bytes allocated per run").Set(res.AllocedBytesPerOp())
		reg.Gauge(name+"_iterations", "benchmark iterations").Set(int64(res.N))
		for metric, v := range res.Extra {
			reg.Gauge(name+"_"+sanitize(metric), "custom benchmark metric").Set(int64(v + 0.5))
		}
	}

	// E2: stabilization of RA ▯ W' under mixed fault bursts.
	record("bench_stabilize_ra", func(b *testing.B) {
		var convSum int64
		for i := 0; i < b.N; i++ {
			r := harness.Run(harness.RunConfig{
				Algo: harness.RA, N: 4,
				Seed: int64(i), FaultSeed: int64(i) + 1000,
				Delta:      5,
				FaultTimes: []int64{200, 300}, FaultsPerBurst: 10,
				MaxRequests: 30,
				Horizon:     20000,
				Monitor:     true,
			})
			if !r.Converged {
				b.Fatalf("seed %d did not converge", i)
			}
			convSum += r.ConvergenceTime
		}
		b.ReportMetric(float64(convSum)/float64(b.N), "conv-ticks/run")
	})

	// E4: breaking the §4 deadlock with W'.
	record("bench_deadlock_recovery", func(b *testing.B) {
		var latSum int64
		for i := 0; i < b.N; i++ {
			r := harness.Run(harness.RunConfig{
				Algo: harness.RA, N: 4,
				Seed:          int64(i),
				Delta:         5,
				DeadlockFault: true,
				Horizon:       20000,
			})
			if r.FirstEntryAfterFault < 0 {
				b.Fatalf("seed %d: wrapper failed to break the deadlock", i)
			}
			latSum += r.FirstEntryAfterFault - r.LastFault
		}
		b.ReportMetric(float64(latSum)/float64(b.N), "recovery-ticks/run")
	})

	// E5: recovery latency per wrapper timeout δ.
	for _, delta := range []int64{0, 5, 20, 100} {
		delta := delta
		record(fmt.Sprintf("bench_timeout_sweep_delta_%d", delta), func(b *testing.B) {
			var latSum int64
			for i := 0; i < b.N; i++ {
				r := harness.Run(harness.RunConfig{
					Algo: harness.RA, N: 4, Seed: int64(i),
					Delta:         delta,
					DeadlockFault: true,
					Horizon:       20000,
				})
				latSum += r.FirstEntryAfterFault - r.LastFault
			}
			b.ReportMetric(float64(latSum)/float64(b.N), "recovery-ticks/run")
		})
	}

	// E11: ring token circulation — regeneration latency after token death
	// (the second engine substrate, exercising the shared event core's
	// typed-dispatch hot path end to end).
	record("bench_ring_circulation", func(b *testing.B) {
		var latSum int64
		for i := 0; i < b.N; i++ {
			s := ring.NewSim(ring.SimConfig{
				N: 8, Seed: int64(i),
				NewNode:      func(id, n int) ring.Node { return ring.NewEager(id, n, 2) },
				WrapperDelta: 25,
			})
			s.Run(200)
			s.DropAllInFlight()
			s.StealToken()
			faultAt := s.Now()
			before := 0
			for _, a := range s.Metrics().Accepts {
				before += a
			}
			recoveredAt := int64(-1)
			for s.Now() < faultAt+3000 {
				s.Tick()
				total := 0
				for _, a := range s.Metrics().Accepts {
					total += a
				}
				if total > before {
					recoveredAt = s.Now()
					break
				}
			}
			if recoveredAt < 0 {
				b.Fatalf("seed %d: ring did not recover", i)
			}
			latSum += recoveredAt - faultAt
		}
		b.ReportMetric(float64(latSum)/float64(b.N), "recovery-ticks/run")
	})

	// Wire path: loopback TCP throughput end to end, plus the raw codec
	// round-trip floor underneath it.
	record("bench_wire_throughput", benchWireThroughput)
	record("bench_wire_codec", benchWireCodec)

	// Engine core: the schedule→dispatch cycle every substrate (and every
	// per-shard core) sits on. Must stay allocation-free.
	record("bench_engine_dispatch", benchEngineDispatch)

	w := out
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
		fmt.Fprintf(status, "wrote %s\n", *outPath)
	}
	if err := reg.WriteJSON(w); err != nil {
		return err
	}

	if *comparePath == "" {
		return nil
	}
	old, err := loadSnapshot(*comparePath)
	if err != nil {
		return fmt.Errorf("load -compare snapshot: %w", err)
	}
	failTol := *failTolerance
	if failTol < *tolerance {
		failTol = *tolerance
	}
	hard := compareSnapshots(status, old, reg.Snapshot(), *tolerance, failTol)
	if hard > 0 {
		return fmt.Errorf("%d benchmark metric(s) regressed more than %.0f%% vs %s",
			hard, failTol*100, *comparePath)
	}
	return nil
}

// runHistory walks the committed BENCH_*.json snapshots in dir and prints
// one ns/op and one allocs/op trend table: a column per snapshot in PR
// order, a row per benchmark — the perf trajectory without manual diffing.
func runHistory(dir string, out io.Writer) error {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json snapshots in %s", dir)
	}
	sort.Slice(paths, func(i, j int) bool {
		ri, rj := historyRank(paths[i]), historyRank(paths[j])
		if ri != rj {
			return ri < rj
		}
		return paths[i] < paths[j]
	})
	snaps := make([]*obs.Snapshot, len(paths))
	tags := make([]string, len(paths))
	for i, p := range paths {
		if snaps[i], err = loadSnapshot(p); err != nil {
			return fmt.Errorf("load %s: %w", p, err)
		}
		tags[i] = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
	}

	// Benchmarks are the union of *_ns_op gauges, in sorted order.
	seen := map[string]bool{}
	var benches []string
	for _, s := range snaps {
		for name := range s.Gauges {
			if base, ok := strings.CutSuffix(name, "_ns_op"); ok && !seen[base] {
				seen[base] = true
				benches = append(benches, base)
			}
		}
	}
	sort.Strings(benches)

	for _, metric := range []string{"ns_op", "allocs_op"} {
		fmt.Fprintf(out, "%s trend:\n", strings.ReplaceAll(metric, "_", "/"))
		fmt.Fprintf(out, "%-34s", "benchmark")
		for _, tag := range tags {
			fmt.Fprintf(out, " %12s", tag)
		}
		fmt.Fprintln(out)
		for _, base := range benches {
			fmt.Fprintf(out, "%-34s", base)
			for _, s := range snaps {
				if v, ok := s.Gauges[base+"_"+metric]; ok {
					fmt.Fprintf(out, " %12d", v)
				} else {
					fmt.Fprintf(out, " %12s", "-")
				}
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// historyRank orders snapshot files along the PR timeline: the seed
// BASELINE first, then PR numbers ascending, with a _PRE variant just
// before its PR (PR7_PRE is the pre-optimization measurement of PR 7).
// Unrecognized tags sort last, alphabetically.
func historyRank(path string) int64 {
	tag := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "BENCH_"), ".json")
	if tag == "BASELINE" {
		return 0
	}
	pre := false
	if t, ok := strings.CutSuffix(tag, "_PRE"); ok {
		tag, pre = t, true
	}
	if num, ok := strings.CutPrefix(tag, "PR"); ok {
		var n int64
		if _, err := fmt.Sscanf(num, "%d", &n); err == nil {
			r := n * 2
			if !pre {
				r++
			}
			return r
		}
	}
	return 1 << 30
}

// loadSnapshot reads a previously written metrics snapshot.
func loadSnapshot(path string) (*obs.Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := obs.NewSnapshot()
	if err := json.Unmarshal(b, s); err != nil {
		return nil, err
	}
	return s, nil
}

// gated reports whether a gauge participates in the regression gate.
// ns/op and allocs/op are gated; bytes/op, iteration counts, and custom
// semantic metrics (conv-ticks etc.) are informational only.
func gated(name string) bool {
	return strings.HasSuffix(name, "_ns_op") || strings.HasSuffix(name, "_allocs_op")
}

// compareSnapshots prints a delta table of every benchmark gauge present in
// both snapshots, flags gated metrics whose relative growth exceeds tol, and
// returns how many exceeded failTol (the caller fails the run when > 0).
func compareSnapshots(w io.Writer, old, cur *obs.Snapshot, tol, failTol float64) (hard int) {
	names := make([]string, 0, len(cur.Gauges))
	for name := range cur.Gauges {
		if _, ok := old.Gauges[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%-44s %14s %14s %9s\n", "metric", "old", "new", "delta")
	for _, name := range names {
		ov, nv := old.Gauges[name], cur.Gauges[name]
		var delta float64
		switch {
		case ov != 0:
			delta = float64(nv-ov) / float64(ov)
		case nv != 0:
			delta = 1 // from zero: treat any growth as +100%
		}
		verdict := ""
		if gated(name) && delta > tol {
			if delta > failTol {
				verdict = "  REGRESSION"
				hard++
			} else {
				verdict = "  advisory"
			}
		}
		fmt.Fprintf(w, "%-44s %14d %14d %+8.1f%%%s\n", name, ov, nv, delta*100, verdict)
	}
	return hard
}

// sanitize maps a custom metric name ("conv-ticks/run") to a metric-safe
// suffix ("conv_ticks_per_run").
func sanitize(s string) string {
	s = strings.ReplaceAll(s, "/", "_per_")
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
