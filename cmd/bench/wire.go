// Wire-path benchmarks: loopback TCP throughput through wire.Transport
// and raw codec cost. These are the measurements behind the batched-send
// work — BENCH_PR7_PRE.json holds the pre-batching numbers, BENCH_PR7.json
// the batched ones, both produced by this same harness.
package main

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wire"
)

// benchWindow bounds how far the sender may run ahead of the receiver, so
// the unbounded edge queue cannot eat gigabytes at large b.N while the
// wire stays saturated enough to measure peak throughput.
const benchWindow = 1 << 15

// benchWireThroughput measures end-to-end loopback throughput: one
// transport pair, b.N messages from process 0 to process 1, timed until
// the last delivery. The msgs/sec metric is the headline number; allocs/op
// and bytes/op expose per-message overhead of the send/recv chain.
func benchWireThroughput(b *testing.B) {
	t0, err := wire.NewTransport(wire.Config{N: 2, Local: []int{0}})
	if err != nil {
		b.Fatal(err)
	}
	t1, err := wire.NewTransport(wire.Config{N: 2, Local: []int{1}})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = t0.Close(); _ = t1.Close() }()
	addrs := []string{t0.Addr(), t1.Addr()}
	t0.SetPeers(addrs)
	t1.SetPeers(addrs)

	var recvd atomic.Int64
	t0.Start(func(int, tme.Message) {})
	t1.Start(func(int, tme.Message) { recvd.Add(1) })

	// Prime the edge (dial, first frame) outside the timed region.
	t0.Send(tme.Message{Kind: tme.Request, From: 0, To: 1})
	waitCount(b, &recvd, 1)
	recvd.Store(0)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0.Send(tme.Message{
			Kind: tme.Request,
			TS:   ltime.Timestamp{Clock: uint64(i), PID: 0},
			From: 0, To: 1,
		})
		if i&1023 == 1023 {
			for int64(i)-recvd.Load() > benchWindow {
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
	waitCount(b, &recvd, int64(b.N))
	elapsed := b.Elapsed()
	b.StopTimer()
	if s := elapsed.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "msgs/sec")
	}
}

// waitCount spins until c reaches want (the receive side is asynchronous).
func waitCount(b *testing.B, c *atomic.Int64, want int64) {
	deadline := time.Now().Add(2 * time.Minute)
	for c.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d messages before timeout", c.Load(), want)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// benchWireCodec measures the raw v1 encode+decode round trip with a
// reused buffer — the per-frame CPU floor under all transport batching.
func benchWireCodec(b *testing.B) {
	buf := make([]byte, 0, wire.FrameSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tme.Message{
			Kind: tme.Request,
			TS:   ltime.Timestamp{Clock: uint64(i), PID: i & 3},
			From: i & 3, To: (i + 1) & 3,
		}
		out, err := wire.AppendFrame(buf[:0], m)
		if err != nil {
			b.Fatal(err)
		}
		got, err := wire.DecodePayload(out[4:])
		if err != nil {
			b.Fatal(err)
		}
		if got != m {
			b.Fatalf("round trip: %+v != %+v", got, m)
		}
	}
}
