// Command experiments regenerates every experiment table of EXPERIMENTS.md
// (the reproduction of the paper's Figure 1 and of its behavioural claims
// E2–E9).
//
// Usage:
//
//	experiments [-scale quick|full] [-markdown] [-only E4]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/graybox-stabilization/graybox/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "sweep scale: quick or full")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	csvOut := fs.Bool("csv", false, "emit CSV (one table after another, titles as comments)")
	only := fs.String("only", "", "run a single experiment (E1..E11)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale harness.Scale
	switch *scaleName {
	case "quick":
		scale = harness.Quick
	case "full":
		scale = harness.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}

	tables := selectTables(scale, strings.ToUpper(*only))
	if len(tables) == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	for _, t := range tables {
		switch {
		case *csvOut:
			fmt.Fprintf(out, "# %s\n%s\n", t.Title, t.CSV())
		case *markdown:
			fmt.Fprintln(out, t.Markdown())
		default:
			fmt.Fprintln(out, t.String())
		}
	}
	return nil
}

// selectTables builds the requested tables lazily so -only doesn't pay for
// the full sweep.
func selectTables(scale harness.Scale, only string) []*harness.Table {
	builders := map[string]func() *harness.Table{
		"E1":  harness.Fig1,
		"E2":  func() *harness.Table { return harness.Stabilization(harness.RA, scale) },
		"E3":  func() *harness.Table { return harness.Stabilization(harness.Lamport, scale) },
		"E4":  func() *harness.Table { return harness.Deadlock(scale) },
		"E5":  func() *harness.Table { return harness.TimeoutSweep(harness.RA, scale) },
		"E6":  func() *harness.Table { return harness.Interference(scale) },
		"E7":  func() *harness.Table { return harness.LspecImpliesTME(scale) },
		"E8":  func() *harness.Table { return harness.Scalability(scale) },
		"E9":  func() *harness.Table { return harness.Synthesis(scale) },
		"E10": func() *harness.Table { return harness.WhiteboxBaseline(scale) },
		"E11": func() *harness.Table { return harness.TokenCirculation(scale) },
		"E12": func() *harness.Table { return harness.RefinementAblation(scale) },
		"E13": func() *harness.Table { return harness.Level1Ablation(scale) },
	}
	if only != "" {
		b, ok := builders[only]
		if !ok {
			return nil
		}
		return []*harness.Table{b()}
	}
	out := make([]*harness.Table, 0, len(builders))
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"} {
		out = append(out, builders[id]())
	}
	return out
}
