// Command experiments regenerates every experiment table of EXPERIMENTS.md
// (the reproduction of the paper's Figure 1 and of its behavioural claims
// E2–E9).
//
// Usage:
//
//	experiments [-scale quick|full] [-markdown] [-only E4] [-json results.json]
//
// -json additionally writes a machine-readable document keyed by experiment
// ID: per experiment, the number of runs and the merged obs metrics
// snapshot of every run (counters summed, gauges as high-water marks).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "sweep scale: quick or full")
	markdown := fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	csvOut := fs.Bool("csv", false, "emit CSV (one table after another, titles as comments)")
	only := fs.String("only", "", "run a single experiment (E1..E18)")
	jsonPath := fs.String("json", "", `write per-experiment merged obs snapshots as JSON to this file ("-" = stdout)`)
	check := fs.Bool("check", false, "exit non-zero when a gate experiment (E18 parity) diverges")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale harness.Scale
	switch *scaleName {
	case "quick":
		scale = harness.Quick
	case "full":
		scale = harness.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}

	ids, builders := selectExperiments(scale, strings.ToUpper(*only))
	if len(ids) == 0 {
		return fmt.Errorf("no experiment matches %q", *only)
	}
	// E18 is a gate, not just a table: rebind its builder to capture the
	// verdict so -check can fail the process on divergence.
	gateOK := true
	builders["E18"] = func() *harness.Table {
		t, ok := harness.ParityGate(scale)
		if !ok {
			gateOK = false
		}
		return t
	}
	results := make(map[string]*expResult, len(ids))
	for _, id := range ids {
		var agg *expResult
		if *jsonPath != "" {
			agg = &expResult{Metrics: obs.NewSnapshot()}
			harness.SetRunHook(func(_ harness.RunConfig, r harness.RunResult) {
				agg.Runs++
				agg.Metrics.Merge(r.Obs)
			})
		}
		t := builders[id]()
		if *jsonPath != "" {
			harness.SetRunHook(nil)
			results[id] = agg
		}
		switch {
		case *csvOut:
			fmt.Fprintf(out, "# %s\n%s\n", t.Title, t.CSV())
		case *markdown:
			fmt.Fprintln(out, t.Markdown())
		default:
			fmt.Fprintln(out, t.String())
		}
	}
	if *jsonPath != "" {
		if err := writeResults(*jsonPath, out, results); err != nil {
			return err
		}
	}
	if *check && !gateOK {
		return fmt.Errorf("E18 parity gate diverged (see table above)")
	}
	return nil
}

// expResult is one experiment's entry in the -json document.
type expResult struct {
	// Runs counts the harness runs behind the experiment's table.
	Runs int `json:"runs"`
	// Metrics is the merged obs snapshot of those runs.
	Metrics *obs.Snapshot `json:"metrics"`
}

// writeResults marshals the per-experiment results (map keys sort, so the
// document is deterministic for a given scale).
func writeResults(path string, out io.Writer, results map[string]*expResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = out.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// selectExperiments returns the requested experiment IDs in order plus
// their lazy table builders, so -only doesn't pay for the full sweep.
func selectExperiments(scale harness.Scale, only string) ([]string, map[string]func() *harness.Table) {
	builders := map[string]func() *harness.Table{
		"E1":  harness.Fig1,
		"E2":  func() *harness.Table { return harness.Stabilization(harness.RA, scale) },
		"E3":  func() *harness.Table { return harness.Stabilization(harness.Lamport, scale) },
		"E4":  func() *harness.Table { return harness.Deadlock(scale) },
		"E5":  func() *harness.Table { return harness.TimeoutSweep(harness.RA, scale) },
		"E6":  func() *harness.Table { return harness.Interference(scale) },
		"E7":  func() *harness.Table { return harness.LspecImpliesTME(scale) },
		"E8":  func() *harness.Table { return harness.Scalability(scale) },
		"E9":  func() *harness.Table { return harness.Synthesis(scale) },
		"E10": func() *harness.Table { return harness.WhiteboxBaseline(scale) },
		"E11": func() *harness.Table { return harness.TokenCirculation(scale) },
		"E12": func() *harness.Table { return harness.RefinementAblation(scale) },
		"E13": func() *harness.Table { return harness.Level1Ablation(scale) },
		"E14": func() *harness.Table { return harness.UnifiedFaults(scale) },
		"E15": func() *harness.Table { return harness.LiveCluster(scale) },
		"E16": func() *harness.Table { return harness.WorkloadMatrix(scale) },
		"E17": func() *harness.Table { return harness.ShardScale(scale) },
		"E18": func() *harness.Table { t, _ := harness.ParityGate(scale); return t },
	}
	if only != "" {
		if _, ok := builders[only]; !ok {
			return nil, nil
		}
		return []string{only}, builders
	}
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18"}, builders
}
