package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunE1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "false") {
		t.Errorf("unexpected output: %q", out)
	}
}

func TestRunE1Markdown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "e1", "-markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| query | result |") {
		t.Errorf("markdown header missing: %q", b.String())
	}
}

func TestRunE1CSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E1", "-csv"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "query,result,witness") {
		t.Errorf("CSV header missing: %q", out)
	}
	if !strings.Contains(out, "# E1") {
		t.Errorf("title comment missing: %q", out)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "huge"}, &b); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E99"}, &b); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunE4JSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.json")
	var b strings.Builder
	if err := run([]string{"-only", "E4", "-json", path}, &b); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results map[string]struct {
		Runs    int `json:"runs"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	e4, ok := results["E4"]
	if !ok || e4.Runs == 0 {
		t.Fatalf("E4 entry missing or empty: %s", data)
	}
	if e4.Metrics.Counters["sim_cs_entries_total"] == 0 {
		t.Errorf("merged snapshot has no CS entries: %s", data)
	}
	if e4.Metrics.Counters["conv_faults_total"] == 0 {
		t.Errorf("merged snapshot recorded no faults: %s", data)
	}
}
