package main

import (
	"strings"
	"testing"
)

func TestRunE1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "false") {
		t.Errorf("unexpected output: %q", out)
	}
}

func TestRunE1Markdown(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "e1", "-markdown"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "| query | result |") {
		t.Errorf("markdown header missing: %q", b.String())
	}
}

func TestRunE1CSV(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E1", "-csv"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "query,result,witness") {
		t.Errorf("CSV header missing: %q", out)
	}
	if !strings.Contains(out, "# E1") {
		t.Errorf("title comment missing: %q", out)
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scale", "huge"}, &b); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-only", "E99"}, &b); err == nil {
		t.Error("unknown experiment accepted")
	}
}
