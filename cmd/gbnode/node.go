package main

import (
	"flag"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/runtime"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wire"
	"github.com/graybox-stabilization/graybox/internal/workload"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// NodeConfig collects everything a single TME node process needs.
type NodeConfig struct {
	ID, N int
	// Shards is the number of independent critical sections the cluster
	// runs (default 1); the client loop draws each attempt's shard from
	// its workload skew stream.
	Shards      int
	Listen      string
	Peers       []string // one address per id; Peers[ID] is replaced by the bound address
	Algo        harness.Algo
	Delta       time.Duration // negative = no W' wrapper
	WrapperTick time.Duration
	V2          bool   // send with the compact v2 wire codec (receivers auto-detect)
	HTTP        string // "" disables the debug HTTP server
	Think, Eat  time.Duration
	Duration    time.Duration
	Seed        int64
	// Workload, when non-nil, shapes the client loop's traffic (ticks read
	// as harness.LiveTick each, same as the gbload drivers); nil derives a
	// uniform closed loop from Think/Eat.
	Workload *workload.Spec
}

// NodeAddrs reports where a started node is reachable.
type NodeAddrs struct {
	Transport string
	HTTP      string
}

// Node is one running TME process: transport, cluster, client loop, and
// debug HTTP server.
type Node struct {
	cfg       NodeConfig
	obs       *obs.Obs
	transport *wire.Transport
	cluster   *runtime.Cluster
	httpAddr  string
	httpStop  func() error
	stop      chan struct{}
	wg        sync.WaitGroup
	once      sync.Once
}

// StartNode boots the node: TCP transport, runtime cluster hosting the
// single local process id, wrapper stack, client loop, and HTTP endpoint.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID < 0 || cfg.ID >= cfg.N {
		return nil, fmt.Errorf("-id %d out of range for -n %d", cfg.ID, cfg.N)
	}
	if cfg.N > 1 && len(cfg.Peers) != cfg.N {
		return nil, fmt.Errorf("-peers lists %d addresses, want %d (one per id)", len(cfg.Peers), cfg.N)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Think <= 0 {
		cfg.Think = 15 * time.Millisecond
	}
	if cfg.Eat <= 0 {
		cfg.Eat = time.Millisecond
	}
	o := newObs()
	nd := &Node{cfg: cfg, obs: o, stop: make(chan struct{})}

	codec := wire.Version
	if cfg.V2 {
		codec = wire.Version2
	}
	tr, err := wire.NewTransport(wire.Config{
		N: cfg.N, Local: []int{cfg.ID}, Listen: cfg.Listen, Codec: codec, Obs: o,
	})
	if err != nil {
		return nil, err
	}
	nd.transport = tr
	peers := make([]string, cfg.N)
	copy(peers, cfg.Peers)
	peers[cfg.ID] = tr.Addr() // self entry reflects the actual bound port
	tr.SetPeers(peers)

	var newWrapper func(int) wrapper.Level2
	if cfg.Delta >= 0 {
		delta := cfg.Delta.Nanoseconds()
		newWrapper = func(int) wrapper.Level2 { return wrapper.NewTimed(delta) }
	}
	cl, err := runtime.NewCluster(runtime.Config{
		N: cfg.N, Shards: cfg.Shards, Seed: cfg.Seed, Local: []int{cfg.ID},
		NewNode:     cfg.Algo.Factory(),
		NewWrapper:  newWrapper,
		WrapperTick: cfg.WrapperTick,
		Level1:      wrapper.PhaseGuard{},
		Obs:         o,
		Transport:   tr,
	})
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	nd.cluster = cl

	if cfg.HTTP != "" {
		addr, shutdown, err := o.Serve(cfg.HTTP)
		if err != nil {
			_ = tr.Close()
			return nil, err
		}
		nd.httpAddr, nd.httpStop = addr, shutdown
	}

	cl.Start()
	nd.wg.Add(1)
	go nd.clientLoop()
	return nd, nil
}

// Addr is the transport's bound listen address.
func (nd *Node) Addr() string { return nd.transport.Addr() }

// SetPeers repoints the transport at the peers' addresses (own entry is
// pinned to the bound address). Useful when peers bind ephemeral ports.
func (nd *Node) SetPeers(addrs []string) {
	peers := make([]string, nd.cfg.N)
	copy(peers, addrs)
	peers[nd.cfg.ID] = nd.transport.Addr()
	nd.transport.SetPeers(peers)
}

// HTTPAddr is the debug server's bound address ("" when disabled).
func (nd *Node) HTTPAddr() string { return nd.httpAddr }

// Stop tears the node down: client loop, cluster (which closes the
// transport), and HTTP server. Idempotent.
func (nd *Node) Stop() {
	nd.once.Do(func() {
		close(nd.stop)
		nd.wg.Wait()
		nd.cluster.Stop()
		if nd.httpStop != nil {
			_ = nd.httpStop()
		}
	})
}

// WriteSnapshot writes the node's full metrics snapshot as JSON.
func (nd *Node) WriteSnapshot(w io.Writer) error {
	return nd.obs.Registry().WriteJSON(w)
}

// clientLoop is the built-in workload: think, request the CS, eat,
// release — the same client contract the harness drivers follow. All
// draws come from the workload package (one tick = harness.LiveTick),
// derived from the same seed+100 stream family the gbload drivers use,
// so a gbnode fleet and a gbload loopback run with the same seed see the
// same per-id traffic shape.
func (nd *Node) clientLoop() {
	defer nd.wg.Done()
	id := nd.cfg.ID
	spec := nd.uniformSpec()
	if nd.cfg.Workload != nil {
		spec = *nd.cfg.Workload
	}
	client := workload.NewGen(spec, nd.cfg.Seed+100, nd.cfg.N).Client(id)
	open := client.Open()
	next := time.Now()
	for {
		think := time.Duration(client.NextThink()) * harness.LiveTick
		if open {
			// Open loop: arrivals follow the drawn schedule regardless of
			// how long the previous CS cycle took.
			next = next.Add(think)
			think = time.Until(next)
		}
		if !sleepOrStop(nd.stop, think) {
			return
		}
		// Each attempt targets the shard the workload draws (always 0 in
		// unsharded clusters, consuming no randomness there).
		shard := client.NextResource(nd.cfg.Shards)
		switch nd.cluster.PhaseShard(shard, id) {
		case tme.Eating:
			// A corrupted process can find itself eating without having
			// asked; the client contract is bounded eating, so release.
			nd.cluster.ReleaseShard(shard, id)
			continue
		case tme.Thinking:
		case tme.Hungry:
			continue // a request is already in flight
		default:
			continue // invalid phase (corruption): skip the cycle
		}
		nd.cluster.RequestShard(shard, id)
		for nd.cluster.PhaseShard(shard, id) != tme.Eating {
			if !sleepOrStop(nd.stop, 200*time.Microsecond) {
				return
			}
		}
		if !sleepOrStop(nd.stop, time.Duration(client.NextHold())*harness.LiveTick) {
			nd.cluster.ReleaseShard(shard, id)
			return
		}
		nd.cluster.ReleaseShard(shard, id)
	}
}

// uniformSpec maps the legacy -think/-eat flags onto workload ticks: a
// uniform closed loop between Think/4 and Think, holding for Eat.
func (nd *Node) uniformSpec() workload.Spec {
	maxThink := int64(nd.cfg.Think / harness.LiveTick)
	if maxThink < 1 {
		maxThink = 1
	}
	minThink := maxThink / 4
	if minThink < 1 {
		minThink = 1
	}
	hold := int64(nd.cfg.Eat / harness.LiveTick)
	if hold < 1 {
		hold = 1
	}
	return workload.UniformSpec(minThink, maxThink, hold)
}

// sleepOrStop waits d or until stop closes; false means stopped.
func sleepOrStop(stop <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// newFlagSet returns a flag set that reports errors instead of exiting,
// so run() stays testable.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ContinueOnError)
}
