package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-id", "1", "-n", "3", "-shards", "2", "-peers", "a:1,b:2,c:3", "-algo", "lamport",
		"-delta", "10ms", "-duration", "1s", "-seed", "9",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ID != 1 || cfg.N != 3 || cfg.Shards != 2 || len(cfg.Peers) != 3 || cfg.Algo != harness.Lamport ||
		cfg.Delta != 10*time.Millisecond || cfg.Duration != time.Second || cfg.Seed != 9 {
		t.Errorf("parsed config = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-algo", "paxos"}); err == nil {
		t.Error("unknown -algo accepted")
	}
}

func TestStartNodeValidation(t *testing.T) {
	if _, err := StartNode(NodeConfig{ID: 3, N: 3, Algo: harness.RA}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := StartNode(NodeConfig{ID: 0, N: 3, Algo: harness.RA}); err == nil {
		t.Error("missing peers accepted")
	}
}

// A single-node run makes progress, serves /metrics.json, and writes a
// parseable final snapshot.
func TestRunSingleNode(t *testing.T) {
	var out bytes.Buffer
	ready := make(chan NodeAddrs, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-n", "1", "-id", "0", "-duration", "600ms", "-think", "4ms"},
			&out, io.Discard, ready)
	}()
	addrs := <-ready
	if addrs.HTTP == "" {
		t.Fatal("no debug HTTP address")
	}
	resp, err := http.Get("http://" + addrs.HTTP + "/metrics.json")
	if err != nil {
		t.Fatalf("GET /metrics.json: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics.json: %d", resp.StatusCode)
	}
	live := obs.NewSnapshot()
	if err := json.Unmarshal(body, live); err != nil {
		t.Fatalf("/metrics.json is not a snapshot: %v", err)
	}

	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	final := obs.NewSnapshot()
	if err := json.Unmarshal(out.Bytes(), final); err != nil {
		t.Fatalf("final snapshot not JSON: %v\n%s", err, out.Bytes())
	}
	if final.Counter("runtime_entries_total") == 0 {
		t.Errorf("single node made no CS entries: %v", final.Counters)
	}
}

// Three gbnode processes (in-process here, one OS process each in real
// use) form a cluster over real sockets and all make progress.
func TestThreeNodeCluster(t *testing.T) {
	const n = 3
	// Stage 1: bind every node on an ephemeral port with peers unknown —
	// the transports queue outbound traffic until SetPeers.
	nodes := make([]*Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		// Two shards: the cluster speaks the sharded wire protocol end to
		// end, each client loop drawing its shard per attempt.
		nd, err := StartNode(NodeConfig{
			ID: i, N: n, Shards: 2, Peers: make([]string, n), Algo: harness.RA,
			Delta: 25 * time.Millisecond, HTTP: "",
			Think: 6 * time.Millisecond, Eat: time.Millisecond,
			Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer nd.Stop()
		nodes[i] = nd
		addrs[i] = nd.Addr()
	}
	for _, nd := range nodes {
		nd.SetPeers(addrs)
	}
	time.Sleep(900 * time.Millisecond)
	var wg sync.WaitGroup
	for _, nd := range nodes {
		nd := nd
		wg.Add(1)
		go func() { defer wg.Done(); nd.Stop() }()
	}
	wg.Wait()
	for i, nd := range nodes {
		var buf bytes.Buffer
		if err := nd.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		s := obs.NewSnapshot()
		if err := json.Unmarshal(buf.Bytes(), s); err != nil {
			t.Fatal(err)
		}
		if s.Counter("runtime_entries_total") == 0 {
			t.Errorf("node %d made no CS entries", i)
		}
		if s.Counter("wire_msgs_sent_total") == 0 {
			t.Errorf("node %d sent no wire messages", i)
		}
	}
}
