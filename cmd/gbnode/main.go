// Command gbnode runs ONE graybox TME node as a real OS process: a
// runtime.Cluster hosting a single process id, speaking the internal/wire
// framed TCP protocol to its peers, with the protocol stacked under the
// level-1 PhaseGuard and (by default) the W' timeout wrapper on a real
// timer. A built-in client loop drives the node through the
// think→request→eat→release cycle, so a set of gbnode processes forms a
// live cluster with no external coordinator.
//
// Usage (three nodes on one machine):
//
//	gbnode -id 0 -n 3 -listen 127.0.0.1:7000 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//	gbnode -id 1 -n 3 -listen 127.0.0.1:7001 -peers ...
//	gbnode -id 2 -n 3 -listen 127.0.0.1:7002 -peers ...
//
// Each node serves its observability bundle over HTTP (-http, default an
// ephemeral port): /metrics, /metrics.json, /trace, /debug/pprof. Status
// lines (bound addresses) go to stderr; on shutdown — after -duration, or
// on SIGINT/SIGTERM when -duration is 0 — the final metrics snapshot is
// written to stdout as deterministic JSON.
package main

import (
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "gbnode:", err)
		os.Exit(1)
	}
}

// run is the testable entry point. Status lines go to errOut, the final
// metrics snapshot to out. A non-nil ready channel receives the node's
// bound transport and HTTP addresses once it is serving (used by tests).
func run(args []string, out, errOut io.Writer, ready chan<- NodeAddrs) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	node, err := StartNode(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(errOut, "gbnode: id=%d n=%d algo=%v listening on %s\n",
		cfg.ID, cfg.N, cfg.Algo, node.Addr())
	if node.HTTPAddr() != "" {
		fmt.Fprintf(errOut, "gbnode: debug http on http://%s/metrics.json\n", node.HTTPAddr())
	}
	if ready != nil {
		ready <- NodeAddrs{Transport: node.Addr(), HTTP: node.HTTPAddr()}
	}

	if cfg.Duration > 0 {
		time.Sleep(cfg.Duration)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Fprintf(errOut, "gbnode: %v, shutting down\n", s)
	}

	node.Stop()
	return node.WriteSnapshot(out)
}

func parseFlags(args []string) (NodeConfig, error) {
	fs := newFlagSet("gbnode")
	var cfg NodeConfig
	fs.IntVar(&cfg.ID, "id", 0, "this node's process id (0..n-1)")
	fs.IntVar(&cfg.N, "n", 1, "cluster size")
	fs.IntVar(&cfg.Shards, "shards", 1, "independent critical sections (per-shard protocol instances)")
	fs.StringVar(&cfg.Listen, "listen", "127.0.0.1:0", "wire transport listen address")
	peers := fs.String("peers", "", "comma-separated peer addresses, one per id (empty for n=1)")
	algo := fs.String("algo", "ra", "protocol: ra or lamport")
	fs.DurationVar(&cfg.Delta, "delta", 25*time.Millisecond, "W' wrapper timeout (negative disables the wrapper)")
	fs.DurationVar(&cfg.WrapperTick, "tick", 2*time.Millisecond, "wrapper evaluation cadence")
	fs.BoolVar(&cfg.V2, "v2", false, "send with the compact v2 wire codec (peers auto-detect; mixed clusters are fine)")
	fs.StringVar(&cfg.HTTP, "http", "127.0.0.1:0", `debug HTTP listen address ("" disables)`)
	fs.DurationVar(&cfg.Think, "think", 15*time.Millisecond, "max think time between CS attempts")
	fs.DurationVar(&cfg.Eat, "eat", time.Millisecond, "time spent holding the CS")
	fs.DurationVar(&cfg.Duration, "duration", 0, "run length (0 = until SIGINT/SIGTERM)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "seed for the client loop's think times")
	workloadName := fs.String("workload", "", "workload preset shaping the client loop (e.g. uniform, poisson, bursty, mixed; empty = uniform from -think/-eat)")
	if err := fs.Parse(args); err != nil {
		return NodeConfig{}, err
	}
	if *workloadName != "" {
		spec, err := workload.Preset(*workloadName)
		if err != nil {
			return NodeConfig{}, err
		}
		cfg.Workload = &spec
	}
	if *peers != "" {
		cfg.Peers = strings.Split(*peers, ",")
	}
	switch strings.ToLower(*algo) {
	case "ra", "ricart-agrawala":
		cfg.Algo = harness.RA
	case "lamport":
		cfg.Algo = harness.Lamport
	default:
		return NodeConfig{}, fmt.Errorf("unknown -algo %q (want ra or lamport)", *algo)
	}
	return cfg, nil
}

// newObs builds the node's observability bundle with tracing retained for
// the /trace endpoint.
func newObs() *obs.Obs {
	return obs.New(obs.Options{})
}
