// Command gbcheck exercises the formal graybox framework: it decides the
// paper's relations on the bundled Figure-1 model or on a model supplied as
// a simple text format, and synthesizes recovery wrappers for finite specs.
//
// Usage:
//
//	gbcheck fig1                      # reproduce the Figure 1 counterexample
//	gbcheck check -spec A.sys -impl C.sys
//	gbcheck synth -spec A.sys
//	gbcheck mask  -spec A.sys         # masking/fail-safe synthesis
//
// Model format (one directive per line; '#' starts a comment):
//
//	states N
//	init S [S...]
//	edge U V
//	fault U V     # uncontrollable fault transition (mask only)
//	bad S [S...]  # safety-violating states (mask only)
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/graybox-stabilization/graybox/internal/ftsynth"
	"github.com/graybox-stabilization/graybox/internal/graybox"
	"github.com/graybox-stabilization/graybox/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gbcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return errors.New("usage: gbcheck fig1|check|synth [flags]")
	}
	switch args[0] {
	case "fig1":
		return fig1(out)
	case "check":
		return check(args[1:], out)
	case "synth":
		return synthesize(args[1:], out)
	case "mask":
		return mask(args[1:], out)
	case "dot":
		return dot(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want fig1, check, synth, mask, or dot)", args[0])
	}
}

// dot renders a model as Graphviz, highlighting a stabilization
// counterexample against a reference spec when one is given.
func dot(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the model to render ('fig1' for the bundled C)")
	against := fs.String("against", "", "optional reference spec: highlight the lasso of a failed StabilizingTo")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var sys *graybox.System
	if *specPath == "fig1" || *specPath == "" {
		sys = graybox.Fig1C()
	} else {
		var err error
		if sys, err = loadSystem(*specPath, "M"); err != nil {
			return err
		}
	}
	var highlight map[[2]int]bool
	if *against != "" {
		ref, err := loadSystem(*against, "A")
		if err != nil {
			return err
		}
		if ok, lasso := graybox.StabilizingTo(sys, ref); !ok {
			highlight = lasso.Edges()
		}
	} else if *specPath == "fig1" || *specPath == "" {
		if ok, lasso := graybox.StabilizingTo(sys, graybox.Fig1A()); !ok {
			highlight = lasso.Edges()
		}
	}
	return sys.WriteDOT(out, highlight)
}

// mask runs fail-safe and masking synthesis for a model with fault/bad
// directives.
func mask(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mask", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the specification model with fault/bad directives")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return errors.New("mask: -spec is required")
	}
	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := parseProblem(f, "A")
	if err != nil {
		return err
	}
	fsafe, err := ftsynth.SynthesizeFailSafe(p)
	if err != nil {
		return fmt.Errorf("fail-safe synthesis: %w", err)
	}
	wrapped := fsafe.Apply(p.Spec)
	if s := ftsynth.VerifyFailSafe(p, wrapped); s >= 0 {
		return fmt.Errorf("fail-safe verification failed at state %d", s)
	}
	fmt.Fprintln(out, "fail-safe: synthesized and verified (no bad state reachable)")

	m, err := ftsynth.SynthesizeMasking(p)
	if err != nil {
		fmt.Fprintf(out, "masking: unsynthesizable: %v\n", err)
		return nil
	}
	mw := m.Apply(p.Spec)
	if msg := ftsynth.VerifyMasking(p, mw); msg != "" {
		return fmt.Errorf("masking verification failed: %s", msg)
	}
	fmt.Fprintln(out, "masking: synthesized and verified (safe + recovering)")
	n := p.Spec.NumStates()
	for s := 0; s < n; s++ {
		if nx := m.Recovery(s); nx >= 0 {
			fmt.Fprintf(out, "  recovery %d -> %d (distance %d)\n", s, nx, m.Distance(s))
		}
	}
	return nil
}

func fig1(out io.Writer) error {
	a, c := graybox.Fig1A(), graybox.Fig1C()
	fmt.Fprintf(out, "A: %d states, %d transitions, init %v\n", a.NumStates(), a.NumTransitions(), a.Init())
	fmt.Fprintf(out, "C: %d states, %d transitions, init %v\n", c.NumStates(), c.NumTransitions(), c.Init())
	report(out, a, c)
	return nil
}

func check(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the specification model A")
	implPath := fs.String("impl", "", "path to the implementation model C")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" || *implPath == "" {
		return errors.New("check: -spec and -impl are required")
	}
	a, err := loadSystem(*specPath, "A")
	if err != nil {
		return err
	}
	c, err := loadSystem(*implPath, "C")
	if err != nil {
		return err
	}
	report(out, a, c)
	return nil
}

func report(out io.Writer, a, c *graybox.System) {
	fmt.Fprintf(out, "[C => A]_init       : %v\n", graybox.Implements(c, a))
	fmt.Fprintf(out, "[C => A] everywhere : %v\n", graybox.EverywhereImplements(c, a))
	okA, lA := graybox.SelfStabilizing(a)
	fmt.Fprintf(out, "A stabilizing to A  : %v%s\n", okA, lassoSuffix(lA))
	okC, lC := graybox.StabilizingTo(c, a)
	fmt.Fprintf(out, "C stabilizing to A  : %v%s\n", okC, lassoSuffix(lC))
}

func lassoSuffix(l *graybox.Lasso) string {
	if l == nil {
		return ""
	}
	return "  (" + l.String() + ")"
}

func synthesize(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the specification model A ('fig1' for the bundled C)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var a *graybox.System
	if *specPath == "fig1" || *specPath == "" {
		a = graybox.Fig1A()
		fmt.Fprintln(out, "using the bundled Figure-1 specification A")
	} else {
		var err error
		if a, err = loadSystem(*specPath, "A"); err != nil {
			return err
		}
	}
	st, err := synth.Synthesize(a, synth.AllCandidates(a.NumStates()))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "synthesized strategy: %d active states, max recovery %d steps\n",
		len(st.Active()), st.MaxDistance())
	for _, s := range st.Active() {
		fmt.Fprintf(out, "  %d -> %d (distance %d)\n", s, st.Next(s), st.Distance(s))
	}
	wrapped := st.Wrapped(a)
	ok, l := graybox.StabilizingTo(wrapped, a)
	fmt.Fprintf(out, "wrapped spec stabilizing to spec: %v%s\n", ok, lassoSuffix(l))
	return nil
}

// loadSystem parses the text model format.
func loadSystem(path, name string) (*graybox.System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseSystem(f, name)
}

// parseSystem parses the base model format (states/init/edge).
func parseSystem(r io.Reader, name string) (*graybox.System, error) {
	p, err := parseProblem(r, name)
	if err != nil {
		return nil, err
	}
	return p.Spec, nil
}

// parseProblem parses the extended model format, including the fault and
// bad directives used by the mask subcommand.
func parseProblem(r io.Reader, name string) (ftsynth.Problem, error) {
	var (
		p            ftsynth.Problem
		inits, edges [][]int
		faults       [][]int
		bads         []int
		n            = -1
	)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		nums, err := atois(fields[1:])
		if err != nil {
			return p, fmt.Errorf("line %d: %w", line, err)
		}
		switch fields[0] {
		case "states":
			if len(nums) != 1 {
				return p, fmt.Errorf("line %d: states wants one number", line)
			}
			n = nums[0]
		case "init":
			inits = append(inits, nums)
		case "edge":
			if len(nums) != 2 {
				return p, fmt.Errorf("line %d: edge wants two numbers", line)
			}
			edges = append(edges, nums)
		case "fault":
			if len(nums) != 2 {
				return p, fmt.Errorf("line %d: fault wants two numbers", line)
			}
			faults = append(faults, nums)
		case "bad":
			bads = append(bads, nums...)
		default:
			return p, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return p, err
	}
	if n < 0 {
		return p, errors.New("missing 'states' directive")
	}
	b := graybox.NewBuilder(name, n)
	for _, in := range inits {
		b.SetInit(in...)
	}
	for _, e := range edges {
		b.AddTransition(e[0], e[1])
	}
	sys, err := b.Build()
	if err != nil {
		return p, err
	}
	p.Spec = sys
	for _, f := range faults {
		if f[0] < 0 || f[0] >= n || f[1] < 0 || f[1] >= n {
			return p, fmt.Errorf("fault %d->%d out of range [0,%d)", f[0], f[1], n)
		}
		p.Faults = append(p.Faults, [2]int{f[0], f[1]})
	}
	if len(bads) > 0 {
		p.Bad = make([]bool, n)
		for _, s := range bads {
			if s < 0 || s >= n {
				return p, fmt.Errorf("bad state %d out of range [0,%d)", s, n)
			}
			p.Bad[s] = true
		}
	}
	return p, nil
}

func atois(ss []string) ([]int, error) {
	out := make([]int, len(ss))
	for i, s := range ss {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		out[i] = v
	}
	return out, nil
}
