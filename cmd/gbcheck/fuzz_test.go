package main

import (
	"strings"
	"testing"
)

// FuzzParseSystem hardens the model parser: arbitrary input must either
// parse into a valid total system or return an error — never panic, never
// produce a system violating its own invariants.
func FuzzParseSystem(f *testing.F) {
	f.Add("states 2\ninit 0\nedge 0 1\nedge 1 0\n")
	f.Add("states 1\ninit 0\nedge 0 0\n")
	f.Add("# comment\nstates 3\ninit 0 1\nedge 0 0\nedge 1 1\nedge 2 0\n")
	f.Add("states -1\n")
	f.Add("edge\n")
	f.Add("states 999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := parseSystem(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		// A successfully parsed system must be well formed: total with at
		// least one initial state.
		if s.NumStates() < 1 {
			t.Fatalf("parsed system with %d states", s.NumStates())
		}
		for u := 0; u < s.NumStates(); u++ {
			if len(s.Successors(u)) == 0 {
				t.Fatalf("parsed system not total at state %d", u)
			}
		}
		if len(s.Init()) == 0 {
			t.Fatal("parsed system without initial states")
		}
	})
}
