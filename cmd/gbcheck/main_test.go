package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFig1Subcommand(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"fig1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"[C => A]_init       : holds",
		"A stabilizing to A  : true",
		"C stabilizing to A  : false",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSynthSubcommand(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"synth"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrapped spec stabilizing to spec: true") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestCheckSubcommandWithFiles(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "a.sys")
	impl := filepath.Join(dir, "c.sys")
	// Figure 1 in the text format.
	specText := `# Figure 1 specification
states 5
init 0
edge 0 1
edge 1 2
edge 2 3
edge 3 3
edge 4 2
`
	implText := `states 5
init 0
edge 0 1
edge 1 2
edge 2 3
edge 3 3
edge 4 4
`
	if err := os.WriteFile(spec, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(impl, []byte(implText), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"check", "-spec", spec, "-impl", impl}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "C stabilizing to A  : false") {
		t.Errorf("output:\n%s", out)
	}
}

func TestParseSystemErrors(t *testing.T) {
	cases := map[string]string{
		"missing states": "init 0\nedge 0 0\n",
		"bad directive":  "states 1\nfoo\n",
		"bad number":     "states 1\nedge 0 x\n",
		"edge arity":     "states 1\nedge 0\n",
		"states arity":   "states 1 2\n",
		"not total":      "states 2\ninit 0\nedge 0 1\n",
	}
	for name, text := range cases {
		if _, err := parseSystem(strings.NewReader(text), "t"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSystemComments(t *testing.T) {
	text := "states 1 # one state\n# full comment line\ninit 0\nedge 0 0\n"
	s, err := parseSystem(strings.NewReader(text), "t")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStates() != 1 || !s.HasTransition(0, 0) {
		t.Error("parsed system wrong")
	}
}

func TestMaskSubcommand(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "m.sys")
	// The worked example from internal/ftsynth: legit ring 0→1→2→0,
	// fault 1→3, state 3 can slide into bad state 4 or return home.
	text := `states 5
init 0
edge 0 1
edge 1 2
edge 2 0
edge 3 4
edge 3 0
edge 4 4
fault 1 3
bad 4
`
	if err := os.WriteFile(spec, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"mask", "-spec", spec}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fail-safe: synthesized and verified",
		"masking: synthesized and verified",
		"recovery 3 -> 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMaskUnsynthesizable(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "bad.sys")
	// A fault from the initial state straight into a bad state: even
	// fail-safe synthesis must refuse.
	text := `states 2
init 0
edge 0 0
edge 1 1
fault 0 1
bad 1
`
	if err := os.WriteFile(spec, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"mask", "-spec", spec}, &b); err == nil {
		t.Error("unsynthesizable problem accepted")
	}
}

func TestParseProblemDirectives(t *testing.T) {
	text := "states 3\ninit 0\nedge 0 1\nedge 1 0\nedge 2 2\nfault 0 2\nbad 2\n"
	p, err := parseProblem(strings.NewReader(text), "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 1 || p.Faults[0] != [2]int{0, 2} {
		t.Errorf("faults = %v", p.Faults)
	}
	if p.Bad == nil || !p.Bad[2] || p.Bad[0] {
		t.Errorf("bad = %v", p.Bad)
	}
	// Out-of-range directives rejected.
	for _, bad := range []string{
		"states 1\ninit 0\nedge 0 0\nfault 0 9\n",
		"states 1\ninit 0\nedge 0 0\nbad 9\n",
		"states 1\ninit 0\nedge 0 0\nfault 0\n",
	} {
		if _, err := parseProblem(strings.NewReader(bad), "t"); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestDotSubcommand(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"dot"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "doublecircle", "color=red"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in dot output:\n%s", want, out)
		}
	}
}

func TestDotAgainstFiles(t *testing.T) {
	var b strings.Builder
	err := run([]string{"dot", "-spec", "../../models/fig1-impl.sys",
		"-against", "../../models/fig1.sys"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "color=red") {
		t.Error("lasso not highlighted against reference spec")
	}
}

func TestBundledModels(t *testing.T) {
	// The shipped model files must keep deciding the way the README says.
	var b strings.Builder
	err := run([]string{"check", "-spec", "../../models/fig1.sys",
		"-impl", "../../models/fig1-impl.sys"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "C stabilizing to A  : false") {
		t.Errorf("bundled fig1 models decide wrong:\n%s", b.String())
	}
	b.Reset()
	if err := run([]string{"mask", "-spec", "../../models/masking-demo.sys"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "masking: synthesized and verified") {
		t.Errorf("bundled masking model fails:\n%s", b.String())
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"check"},
		{"check", "-spec", "/nonexistent", "-impl", "/nonexistent"},
		{"mask"},
		{"mask", "-spec", "/nonexistent"},
	} {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestParseProblemErrorMessages pins the parser's diagnostics: each
// malformed input must fail with a message naming the offending line and
// construct, so a user can fix a model file from the error alone.
func TestParseProblemErrorMessages(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty file", "", "missing 'states'"},
		{"comment-only file", "# a model with\n# no directives\n\n", "missing 'states'"},
		{"states arity", "states 1 2\n", "line 1: states wants one number"},
		{"states not a number", "states x\n", `line 1: bad number "x"`},
		{"negative states", "states -1\n", "missing 'states'"},
		{"edge arity low", "states 2\ninit 0\nedge 0\n", "line 3: edge wants two numbers"},
		{"edge arity high", "states 2\ninit 0\nedge 0 1 2\n", "line 3: edge wants two numbers"},
		{"edge bad number", "states 2\nedge 0 x\n", `line 2: bad number "x"`},
		{"edge out of range", "states 2\ninit 0\nedge 0 1\nedge 1 5\n", "state 5 out of range [0,2)"},
		{"init out of range", "states 1\ninit 3\nedge 0 0\n", "initial state 3 out of range [0,1)"},
		{"no init", "states 1\nedge 0 0\n", "no initial state"},
		{"not total", "states 2\ninit 0\nedge 0 1\n", "not total"},
		{"fault arity", "states 2\ninit 0\nedge 0 0\nedge 1 1\nfault 0\n", "line 5: fault wants two numbers"},
		{"fault out of range", "states 1\ninit 0\nedge 0 0\nfault 0 9\n", "fault 0->9 out of range [0,1)"},
		{"bad out of range", "states 1\ninit 0\nedge 0 0\nbad 9\n", "bad state 9 out of range [0,1)"},
		{"bad not a number", "states 1\ninit 0\nedge 0 0\nbad x\n", `line 4: bad number "x"`},
		{"unknown directive", "states 1\ninit 0\nedge 0 0\nfrob 1\n", `line 4: unknown directive "frob"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := parseProblem(strings.NewReader(c.input), "t")
			if err == nil {
				t.Fatalf("accepted %q", c.input)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

// TestParseProblemTrailingComments checks '#' stripping on directive
// lines and that a file ending without a newline still parses.
func TestParseProblemTrailingComments(t *testing.T) {
	text := "states 2 # two states\ninit 0 # start\nedge 0 1\nedge 1 0\nfault 0 1 # burst\nbad 1 # unsafe"
	p, err := parseProblem(strings.NewReader(text), "t")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec.NumStates() != 2 || len(p.Faults) != 1 || !p.Bad[1] {
		t.Errorf("parsed problem wrong: states=%d faults=%v bad=%v",
			p.Spec.NumStates(), p.Faults, p.Bad)
	}
}
