// Command tmesim runs one TME simulation and prints its metrics: the
// quickest way to watch a wrapped or unwrapped system live through a fault
// schedule.
//
// Usage:
//
//	tmesim [-algo ra|lamport] [-n 5] [-seed 1] [-delta 5] [-nowrapper]
//	       [-faults 100,200,300] [-per-burst 10] [-deadlock]
//	       [-horizon 20000] [-requests 10] [-monitor] [-v]
//	       [-metrics] [-metrics-json file] [-trace 100] [-http addr]
//
// Observability: -metrics prints the Prometheus text exposition after the
// run; -metrics-json writes the deterministic JSON snapshot ("-" = stdout;
// byte-identical across runs with the same seeds); -trace N retains and
// prints the last N trace events; -http serves /metrics, /metrics.json,
// /trace and /debug/pprof after the run until interrupted.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tmesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tmesim", flag.ContinueOnError)
	algoName := fs.String("algo", "ra", "algorithm: ra or lamport")
	n := fs.Int("n", 5, "number of processes")
	seed := fs.Int64("seed", 1, "simulation seed")
	faultSeed := fs.Int64("fault-seed", 2, "fault injector seed")
	delta := fs.Int64("delta", 5, "wrapper timeout δ (0 = eager W)")
	noWrapper := fs.Bool("nowrapper", false, "run without the graybox wrapper")
	unrefined := fs.Bool("unrefined", false, "use the unrefined W (resend to all)")
	faultList := fs.String("faults", "", "comma-separated virtual times of fault bursts")
	perBurst := fs.Int("per-burst", 10, "faults per burst")
	deadlock := fs.Bool("deadlock", false, "run the §4 deadlock scenario instead of the random workload")
	horizon := fs.Int64("horizon", 20000, "virtual-time horizon")
	requests := fs.Int("requests", 10, "max requests per process")
	monitor := fs.Bool("monitor", false, "run the Lspec/TME_Spec monitors")
	metrics := fs.Bool("metrics", false, "print the Prometheus metrics exposition after the run")
	metricsJSON := fs.String("metrics-json", "", `write the JSON metrics snapshot to this file ("-" = stdout)`)
	traceN := fs.Int("trace", 0, "retain and print the last N trace events")
	httpAddr := fs.String("http", "", "serve metrics and pprof on this address after the run (until interrupted)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var algo harness.Algo
	switch *algoName {
	case "ra":
		algo = harness.RA
	case "lamport":
		algo = harness.Lamport
	default:
		return fmt.Errorf("unknown algorithm %q (want ra or lamport)", *algoName)
	}

	faults, err := parseTimes(*faultList)
	if err != nil {
		return err
	}

	cfg := harness.RunConfig{
		Algo: algo, N: *n,
		Seed: *seed, FaultSeed: *faultSeed,
		Delta:          *delta,
		Unrefined:      *unrefined,
		FaultTimes:     faults,
		FaultsPerBurst: *perBurst,
		DeadlockFault:  *deadlock,
		Horizon:        *horizon,
		MaxRequests:    *requests,
		Monitor:        *monitor,
	}
	if *noWrapper {
		cfg.Delta = harness.NoWrapper
	}
	o := obs.New(obs.Options{TraceCapacity: *traceN})
	r := harness.RunObserved(cfg, o)

	fmt.Fprintf(out, "algorithm      %v (n=%d, seed=%d)\n", algo, *n, *seed)
	wname := fmt.Sprintf("W'(δ=%d)", cfg.Delta)
	if *noWrapper {
		wname = "none"
	} else if *unrefined {
		wname = fmt.Sprintf("unrefined W (δ=%d)", cfg.Delta)
	}
	fmt.Fprintf(out, "wrapper        %s\n", wname)
	fmt.Fprintf(out, "entries        %d (requests %d)\n", r.Entries, r.Requests)
	fmt.Fprintf(out, "messages       program %d, wrapper %d\n", r.ProgramMsgs, r.WrapperMsgs)
	if r.LastFault >= 0 {
		fmt.Fprintf(out, "last fault     t=%d\n", r.LastFault)
		fmt.Fprintf(out, "entries after  %d (first at t=%d)\n", r.EntriesAfterFault, r.FirstEntryAfterFault)
	}
	if *monitor {
		fmt.Fprintf(out, "violations     %d (last at t=%d)\n", r.Violations, r.LastViolation)
		for _, op := range []string{"invariant", "unless", "request", "timestamp", "ME3"} {
			if s, ok := r.ViolationSummary[op]; ok {
				fmt.Fprintf(out, "  %-12s %d (last at t=%d)\n", op, s.Count, s.Last)
			}
		}
		fmt.Fprintf(out, "convergence    %d virtual ticks after last fault\n", r.ConvergenceTime)
		fmt.Fprintf(out, "starved        %v\n", r.Starved)
	}
	fmt.Fprintf(out, "converged      %v\n", r.Converged)

	if *traceN > 0 {
		evs := o.Trace.Events()
		fmt.Fprintf(out, "trace          last %d of %d events (%d dropped)\n",
			len(evs), o.Trace.Total(), o.Trace.Dropped())
		for _, e := range evs {
			fmt.Fprintf(out, "  %s\n", e)
		}
	}
	if *metrics {
		if err := o.Reg.WritePrometheus(out); err != nil {
			return err
		}
	}
	if *metricsJSON != "" {
		w := out
		if *metricsJSON != "-" {
			f, err := os.Create(*metricsJSON)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := o.Reg.WriteJSON(w); err != nil {
			return err
		}
	}
	if *httpAddr != "" {
		addr, shutdown, err := o.Serve(*httpAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "serving        http://%s/metrics (interrupt to stop)\n", addr)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		return shutdown()
	}
	return nil
}

func parseTimes(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad fault time %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
