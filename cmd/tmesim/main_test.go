package main

import (
	"strings"
	"testing"
)

func TestDeadlockScenarios(t *testing.T) {
	var wrapped strings.Builder
	if err := run([]string{"-deadlock", "-monitor"}, &wrapped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wrapped.String(), "converged      true") {
		t.Errorf("wrapped deadlock run should converge:\n%s", wrapped.String())
	}

	var bare strings.Builder
	if err := run([]string{"-deadlock", "-nowrapper"}, &bare); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bare.String(), "converged      false") {
		t.Errorf("unwrapped deadlock run should not converge:\n%s", bare.String())
	}
}

func TestLamportWithFaults(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-algo", "lamport", "-n", "3", "-faults", "100,200",
		"-per-burst", "5", "-monitor", "-horizon", "30000", "-requests", "20"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lamport") {
		t.Errorf("output: %s", b.String())
	}
}

func TestUnrefinedFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-deadlock", "-unrefined"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "unrefined") {
		t.Errorf("output: %s", b.String())
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-algo", "zookeeper"},
		{"-faults", "12,x"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseTimes(t *testing.T) {
	ts, err := parseTimes(" 1, 2 ,30")
	if err != nil || len(ts) != 3 || ts[2] != 30 {
		t.Errorf("parseTimes = %v, %v", ts, err)
	}
	if ts, err := parseTimes(""); err != nil || ts != nil {
		t.Errorf("empty parseTimes = %v, %v", ts, err)
	}
}
