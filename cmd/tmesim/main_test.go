package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDeadlockScenarios(t *testing.T) {
	var wrapped strings.Builder
	if err := run([]string{"-deadlock", "-monitor"}, &wrapped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wrapped.String(), "converged      true") {
		t.Errorf("wrapped deadlock run should converge:\n%s", wrapped.String())
	}

	var bare strings.Builder
	if err := run([]string{"-deadlock", "-nowrapper"}, &bare); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bare.String(), "converged      false") {
		t.Errorf("unwrapped deadlock run should not converge:\n%s", bare.String())
	}
}

func TestLamportWithFaults(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-algo", "lamport", "-n", "3", "-faults", "100,200",
		"-per-burst", "5", "-monitor", "-horizon", "30000", "-requests", "20"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lamport") {
		t.Errorf("output: %s", b.String())
	}
}

func TestUnrefinedFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-deadlock", "-unrefined"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "unrefined") {
		t.Errorf("output: %s", b.String())
	}
}

func TestBadFlags(t *testing.T) {
	cases := [][]string{
		{"-algo", "zookeeper"},
		{"-faults", "12,x"},
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseTimes(t *testing.T) {
	ts, err := parseTimes(" 1, 2 ,30")
	if err != nil || len(ts) != 3 || ts[2] != 30 {
		t.Errorf("parseTimes = %v, %v", ts, err)
	}
	if ts, err := parseTimes(""); err != nil || ts != nil {
		t.Errorf("empty parseTimes = %v, %v", ts, err)
	}
}

// Two runs with the same seeds must export byte-identical JSON metric
// snapshots (acceptance criterion: the telemetry is a pure function of the
// configuration).
func TestMetricsJSONDeterministic(t *testing.T) {
	args := []string{"-n", "4", "-seed", "9", "-fault-seed", "1009",
		"-faults", "150,250", "-per-burst", "8", "-monitor",
		"-horizon", "30000", "-requests", "20"}
	snap := func(path string) string {
		var b strings.Builder
		if err := run(append(args, "-metrics-json", path), &b); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	dir := t.TempDir()
	a := snap(filepath.Join(dir, "a.json"))
	b := snap(filepath.Join(dir, "b.json"))
	if a != b {
		t.Errorf("same-seed snapshots differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"sim_cs_entries_total"`) {
		t.Errorf("snapshot missing sim counters:\n%s", a)
	}
	if !strings.Contains(a, `"conv_last_fault_time": 250`) {
		t.Errorf("snapshot missing convergence gauges:\n%s", a)
	}
}

func TestMetricsAndTraceFlags(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-deadlock", "-monitor", "-metrics", "-trace", "50"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sim_cs_entries_total counter",
		"# TYPE conv_last_fault_time gauge",
		"wrapper_fires_total",
		"trace          last 50 of",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
