package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/obs"
)

// A short loopback run with -check writes a parseable snapshot whose
// gbload gauges report a converged, safe run.
func TestLoopbackRunCheck(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "3", "-duration", "900ms", "-seed", "1", "-bursts", "2", "-check",
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("gbload -check failed: %v", err)
	}
	s := obs.NewSnapshot()
	if err := json.Unmarshal(out.Bytes(), s); err != nil {
		t.Fatalf("output is not a snapshot: %v\n%s", err, out.Bytes())
	}
	if s.Gauge("gbload_entries", 0) == 0 {
		t.Error("gbload_entries = 0")
	}
	if s.Gauge("gbload_converged", 0) != 1 {
		t.Error("gbload_converged != 1")
	}
	if s.Gauge("gbload_safety_violations_after_convergence", -1) != 0 {
		t.Error("post-convergence violations reported in a passing -check run")
	}
	if s.Counter("runtime_entries_total") == 0 {
		t.Error("snapshot missing runtime instruments")
	}
	if s.Counter("wire_msgs_sent_total") == 0 {
		t.Error("snapshot missing wire instruments")
	}
}

// The acceptance property: same seed ⇒ byte-identical fault schedule.
func TestScheduleOutDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		err := run([]string{
			"-n", "3", "-duration", "250ms", "-seed", "42", "-schedule-out", p,
		}, io.Discard, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed wrote different schedules:\n%s\nvs\n%s", a, b)
	}
	if len(a) == 0 || !json.Valid(a) {
		t.Fatalf("schedule is not valid JSON: %s", a)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-algo", "paxos"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown -algo accepted")
	}
}

// Remote mode polls /metrics.json endpoints and reports the entry delta.
func TestRemoteObserve(t *testing.T) {
	o := obs.New(obs.Options{})
	entries := o.Registry().Counter("runtime_entries_total", "test entries")
	entries.Inc()
	addr, shutdown, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	var out bytes.Buffer
	err = run([]string{"-connect", addr, "-duration", "50ms"}, &out, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	s := obs.NewSnapshot()
	if err := json.Unmarshal(out.Bytes(), s); err != nil {
		t.Fatalf("remote output not a snapshot: %v", err)
	}
	if s.Gauge("gbload_n", 0) != 1 {
		t.Errorf("gbload_n = %d, want 1", s.Gauge("gbload_n", 0))
	}
	if s.Counter("runtime_entries_total") == 0 {
		t.Error("merged snapshot lost the node's counters")
	}

	if err := run([]string{"-connect", "127.0.0.1:1", "-duration", "10ms"},
		io.Discard, io.Discard); err == nil {
		t.Error("unreachable -connect target did not error")
	}
}

// A sharded loopback run passes -check and publishes per-shard entry
// gauges that sum to the total.
func TestLoopbackShardedRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-n", "3", "-shards", "3", "-duration", "900ms", "-seed", "2",
		"-bursts", "2", "-check",
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("gbload -shards -check failed: %v", err)
	}
	s := obs.NewSnapshot()
	if err := json.Unmarshal(out.Bytes(), s); err != nil {
		t.Fatalf("output is not a snapshot: %v", err)
	}
	total := s.Gauge("gbload_entries", 0)
	var byShard int64
	for shard := 0; shard < 3; shard++ {
		byShard += s.Gauge(fmt.Sprintf("gbload_shard_%d_entries", shard), 0)
	}
	if total == 0 || byShard != total {
		t.Errorf("per-shard entries sum %d != total %d", byShard, total)
	}
	if s.Gauge("gbload_safety_violations_after_convergence", -1) != 0 {
		t.Error("post-convergence violations in a passing sharded run")
	}
}
