// Command gbload drives load against a graybox cluster and reports
// throughput, CS-entry latency percentiles, safety, and convergence time
// as an obs metrics snapshot (the same JSON shape cmd/bench reads, so
// snapshots diff with `bench -compare`).
//
// Loopback mode (default): boot an n-node cluster in-process — one
// runtime.Cluster per node over real TCP loopback sockets — pipe every
// message through the wire.Chaos proxy, and inject the seeded fault
// schedule (message loss, duplication, corruption, state perturbation,
// flush, plus a partition/heal pair). The schedule is fully determined by
// -seed: same seed, same fault plan (timings are wall-clock and are not).
//
//	gbload -n 5 -duration 10s -seed 1 -check
//
// -check makes the run a gate: exit non-zero unless the cluster converged
// with zero safety violations after convergence. -schedule-out writes the
// pre-drawn fault plan as JSON (two runs with the same seed write
// byte-identical plans).
//
// Remote mode: -connect polls the /metrics.json endpoints of running
// gbnode processes for -duration and reports the merged snapshot plus the
// observed entry rate. No faults are injected (the chaos proxy is in the
// loopback path only).
//
//	gbload -connect 127.0.0.1:8000,127.0.0.1:8001 -duration 10s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/harness"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/scenario"
	"github.com/graybox-stabilization/graybox/internal/twin"
	"github.com/graybox-stabilization/graybox/internal/wire"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gbload:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("gbload", flag.ContinueOnError)
	n := fs.Int("n", 3, "cluster size (loopback mode)")
	shards := fs.Int("shards", 1, "independent critical sections; drivers pick each attempt's shard from the workload skew draw")
	duration := fs.Duration("duration", 2*time.Second, "measured run length")
	seed := fs.Int64("seed", 1, "seed for the fault schedule, chaos delays, and think times")
	algo := fs.String("algo", "ra", "protocol: ra or lamport")
	delta := fs.Duration("delta", 25*time.Millisecond, "W' wrapper timeout (negative disables the wrapper)")
	bursts := fs.Int("bursts", 3, "fault bursts in the schedule (0 disables)")
	maxPerBurst := fs.Int("max-per-burst", 4, "max injector faults per burst")
	partition := fs.Bool("partition", true, "include a partition/heal pair in the schedule")
	workloadName := fs.String("workload", "", "workload preset shaping the driver traffic (e.g. uniform, poisson, bursty, mixed; empty = uniform defaults)")
	scenarioName := fs.String("scenario", "", "scenario preset replacing the ad-hoc schedule flags (e.g. none, gray-burst, partition-asym, churn)")
	traceOut := fs.String("trace-out", "", "record the workload draws to this JSON schedule file")
	traceIn := fs.String("trace-in", "", "replay a recorded workload schedule file instead of generating draws")
	outPath := fs.String("out", "-", `snapshot output file ("-" = stdout)`)
	check := fs.Bool("check", false, "exit non-zero unless converged with zero post-convergence violations")
	v2Nodes := fs.String("v2", "", "comma-separated process ids that send with the compact v2 wire codec (others stay v1; receivers auto-detect)")
	schedOut := fs.String("schedule-out", "", "also write the pre-drawn fault schedule JSON to this file")
	connect := fs.String("connect", "", "comma-separated gbnode /metrics.json addresses: observe a remote cluster instead of booting loopback")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Status lines move to stderr when the snapshot goes to stdout.
	status := out
	if *outPath == "-" {
		status = errOut
	}

	if *connect != "" {
		return runRemote(strings.Split(*connect, ","), *duration, *outPath, out, status)
	}

	var a harness.Algo
	switch strings.ToLower(*algo) {
	case "ra", "ricart-agrawala":
		a = harness.RA
	case "lamport":
		a = harness.Lamport
	default:
		return fmt.Errorf("unknown -algo %q (want ra or lamport)", *algo)
	}

	cfg := harness.LiveConfig{
		N: *n, Shards: *shards, Algo: a, Seed: *seed, Duration: *duration, Delta: *delta,
	}
	if *v2Nodes != "" {
		ids, err := parseIDs(*v2Nodes, *n)
		if err != nil {
			return fmt.Errorf("bad -v2: %w", err)
		}
		cfg.V2Nodes = ids
	}

	// -scenario replaces the ad-hoc schedule flags with a named preset;
	// without it the legacy -bursts/-max-per-burst/-partition path applies.
	var sched *wire.FaultSchedule
	if *scenarioName != "" {
		sc, err := scenario.Preset(*scenarioName)
		if err != nil {
			return err
		}
		cfg.Scenario = &sc
		plan := scenario.CompileLive(sc, *seed, *n, *duration)
		sched = plan.Schedule
	} else {
		sched = wire.NewFaultSchedule(*seed, wire.ScheduleConfig{
			N: *n, Duration: *duration,
			Bursts: *bursts, MaxPerBurst: *maxPerBurst,
			Mix: fault.DefaultMix, Partition: *partition,
		})
		cfg.Schedule = sched
	}
	if *schedOut != "" {
		data := []byte("[]\n")
		if sched != nil {
			data = sched.JSON()
		}
		if err := os.WriteFile(*schedOut, data, 0o644); err != nil {
			return fmt.Errorf("write -schedule-out: %w", err)
		}
		fmt.Fprintf(status, "gbload: wrote fault schedule (%d events) to %s\n", schedLen(sched), *schedOut)
	}

	// Workload shaping: -trace-in replays a recorded schedule verbatim;
	// -workload picks a generator preset; otherwise RunLive builds uniform
	// draws from its think/hold defaults.
	var wspec *workload.Spec
	switch {
	case *traceIn != "":
		data, err := os.ReadFile(*traceIn)
		if err != nil {
			return fmt.Errorf("read -trace-in: %w", err)
		}
		trace, err := workload.LoadSchedule(data)
		if err != nil {
			return fmt.Errorf("parse -trace-in: %w", err)
		}
		cfg.WorkloadTrace = trace
	case *workloadName != "":
		spec, err := workload.Preset(*workloadName)
		if err != nil {
			return err
		}
		wspec = &spec
		cfg.Workload = wspec
	}
	if *traceOut != "" {
		spec := workload.UniformSpec(
			int64(harness.DefaultThinkMin/harness.LiveTick),
			int64(harness.DefaultThinkMax/harness.LiveTick),
			int64(harness.DefaultEatTime/harness.LiveTick))
		if wspec != nil {
			spec = *wspec
		}
		// Same stream RunLive uses (seed+100), so the recording replays the
		// exact draws of this run when fed back through -trace-in.
		items := int(duration.Milliseconds()/20) + 16
		trace := workload.Record(spec, *seed+100, *n, items)
		if err := os.WriteFile(*traceOut, trace.JSON(), 0o644); err != nil {
			return fmt.Errorf("write -trace-out: %w", err)
		}
		fmt.Fprintf(status, "gbload: wrote workload trace (%d clients × %d draws) to %s\n", *n, items, *traceOut)
	}

	o := obs.New(obs.Options{})
	cfg.Obs = o
	fmt.Fprintf(status, "gbload: loopback cluster n=%d shards=%d algo=%v delta=%v duration=%v seed=%d (%d scheduled events)\n",
		*n, *shards, a, *delta, *duration, *seed, schedLen(sched))
	res, err := harness.RunLive(cfg)
	if err != nil {
		return err
	}

	recordResult(o.Registry(), res)
	pred := predictRun(o.Registry(), cfg, a, wspec)
	fmt.Fprintf(status, "gbload: %d entries (%.0f/s), p50/p95/p99 %d/%d/%d µs, %d faults, %d violations (%d after convergence), converged=%v in %dms\n",
		res.Entries, res.ThroughputPerSec,
		res.LatP50US, res.LatP95US, res.LatP99US,
		res.FaultsApplied, res.SafetyViolations, res.SafetyViolationsAfterConvergence,
		res.Converged, res.ConvergenceMS)
	if err := writeSnapshot(*outPath, out, o.Registry(), status); err != nil {
		return err
	}
	if *check {
		if pred != nil {
			drift := "n/a"
			if pred.Entries > 0 {
				drift = fmt.Sprintf("%+.1f%%", 100*(float64(res.Entries)-pred.Entries)/pred.Entries)
			}
			fmt.Fprintf(status, "gbload: twin predicted %.0f entries for the fault-free run (observed %d, %s), %.1f msgs/entry, saturation %.0f entries/s\n",
				pred.Entries, res.Entries, drift,
				pred.MsgsPerEntry, pred.SaturationRate*1000)
		}
		if !res.Converged {
			return fmt.Errorf("check failed: cluster did not converge (last fault at %dms)", res.LastFaultMS)
		}
		if res.SafetyViolationsAfterConvergence > 0 {
			return fmt.Errorf("check failed: %d safety violations after convergence", res.SafetyViolationsAfterConvergence)
		}
		fmt.Fprintln(status, "gbload: check passed (converged, zero post-convergence violations)")
	}
	return nil
}

// predictRun asks the analytical twin for the fault-free forecast of this
// run's workload (1 tick = 1ms live; link delays modeled at the chaos
// proxy's default 1–3ms band) and publishes it as gbload_twin_* gauges so
// the snapshot carries predicted next to observed. Trace replays have no
// closed form, so they get no prediction (nil).
func predictRun(r *obs.Registry, cfg harness.LiveConfig, a harness.Algo, wspec *workload.Spec) *twin.Prediction {
	if cfg.WorkloadTrace != nil {
		return nil
	}
	spec := workload.UniformSpec(
		int64(harness.DefaultThinkMin/harness.LiveTick),
		int64(harness.DefaultThinkMax/harness.LiveTick),
		int64(harness.DefaultEatTime/harness.LiveTick))
	if wspec != nil {
		spec = *wspec
	}
	delta := int64(cfg.Delta / harness.LiveTick)
	switch {
	case cfg.Delta < 0:
		delta = -1
	case cfg.Delta == 0:
		delta = 25 // RunLive's default W' timeout
	case delta == 0:
		delta = 1 // sub-millisecond timeout still is a wrapper
	}
	pred := twin.Predict(twin.SpecParams(twin.Params{
		N: cfg.N, Shards: cfg.Shards, Algo: a.String(),
		Delta: delta, MinDelay: 1, MaxDelay: 3,
		Horizon: int64(cfg.Duration / harness.LiveTick),
	}, spec))
	set := func(name, help string, v int64) { r.Gauge(name, help).Set(v) }
	set("gbload_twin_entries_predicted", "twin forecast of fault-free CS entries", int64(pred.Entries+0.5))
	set("gbload_twin_msgs_per_entry_x1000", "twin forecast of program msgs per entry (×1000)", int64(pred.MsgsPerEntry*1000+0.5))
	set("gbload_twin_saturation_per_sec", "twin forecast of the entry-rate ceiling (entries/s)", int64(pred.SaturationRate*1000+0.5))
	return &pred
}

// schedLen reports the event count of a possibly-nil schedule (scenario
// "none" compiles to no fault plan at all).
func schedLen(s *wire.FaultSchedule) int {
	if s == nil {
		return 0
	}
	return len(s.Events)
}

// recordResult publishes the run's headline measurements as gbload_*
// gauges so the snapshot carries them alongside the runtime/wire/chaos
// instruments.
func recordResult(r *obs.Registry, res harness.LiveResult) {
	set := func(name, help string, v int64) { r.Gauge(name, help).Set(v) }
	set("gbload_n", "cluster size", int64(res.N))
	set("gbload_duration_ms", "measured run length", res.DurationMS)
	set("gbload_entries", "CS entries across the cluster", int64(res.Entries))
	set("gbload_requests", "CS requests issued by the drivers", int64(res.Requests))
	set("gbload_throughput_per_sec", "CS entries per second (rounded)", int64(res.ThroughputPerSec+0.5))
	set("gbload_lat_p50_us", "CS-entry latency p50", res.LatP50US)
	set("gbload_lat_p95_us", "CS-entry latency p95", res.LatP95US)
	set("gbload_lat_p99_us", "CS-entry latency p99", res.LatP99US)
	set("gbload_faults_applied", "injector faults plus partition/heal events", int64(res.FaultsApplied))
	set("gbload_safety_violations", "sampled ME1 violations", int64(res.SafetyViolations))
	set("gbload_safety_violations_after_convergence", "ME1 violations after the convergence point", int64(res.SafetyViolationsAfterConvergence))
	set("gbload_convergence_ms", "last fault to convergence point (-1 = never)", res.ConvergenceMS)
	converged := int64(0)
	if res.Converged {
		converged = 1
	}
	set("gbload_converged", "1 when progress resumed after the convergence point", converged)
	// Sharded runs publish their per-shard entry counts as gauges, so skew
	// is visible straight from the snapshot.
	for s, e := range res.EntriesByShard {
		r.Gauge(fmt.Sprintf("gbload_shard_%d_entries", s), "CS entries on one shard").Set(int64(e))
	}
	// Wire throughput: framed messages per second across the whole cluster,
	// from the transport's own counter — the live-path number the batched
	// sender work is gated on.
	if res.Snapshot != nil && res.DurationMS > 0 {
		msgs := res.Snapshot.Counter("wire_msgs_sent_total")
		set("gbload_msgs_per_sec", "wire messages framed per second, cluster-wide",
			(msgs*1000+res.DurationMS/2)/res.DurationMS)
	}
}

// parseIDs parses a comma-separated process id list, checking range.
func parseIDs(s string, n int) ([]int, error) {
	var ids []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var id int
		if _, err := fmt.Sscanf(part, "%d", &id); err != nil {
			return nil, fmt.Errorf("%q is not a process id", part)
		}
		if id < 0 || id >= n {
			return nil, fmt.Errorf("id %d out of range [0,%d)", id, n)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// runRemote observes a running cluster: snapshot every node's
// /metrics.json, wait, snapshot again, and report the merged final state
// plus the observed entry rate over the window.
func runRemote(addrs []string, dur time.Duration, outPath string, out, status io.Writer) error {
	before, err := fetchMerged(addrs)
	if err != nil {
		return err
	}
	fmt.Fprintf(status, "gbload: observing %d node(s) for %v\n", len(addrs), dur)
	time.Sleep(dur)
	after, err := fetchMerged(addrs)
	if err != nil {
		return err
	}
	entries := after.Counter("runtime_entries_total") - before.Counter("runtime_entries_total")
	r := obs.NewRegistry()
	r.Gauge("gbload_n", "observed node count").Set(int64(len(addrs)))
	r.Gauge("gbload_duration_ms", "observation window").Set(dur.Milliseconds())
	r.Gauge("gbload_entries", "CS entries during the window").Set(entries)
	if ms := dur.Milliseconds(); ms > 0 {
		r.Gauge("gbload_throughput_per_sec", "CS entries per second (rounded)").
			Set((entries*1000 + ms/2) / ms)
	}
	merged := r.Snapshot()
	merged.Merge(after)
	fmt.Fprintf(status, "gbload: %d entries over %v across %d node(s)\n", entries, dur, len(addrs))
	return writeSnapshotValue(outPath, out, merged, status)
}

// fetchMerged pulls /metrics.json from every address and merges the
// snapshots (counters sum, gauges keep the max).
func fetchMerged(addrs []string) (*obs.Snapshot, error) {
	merged := obs.NewSnapshot()
	client := &http.Client{Timeout: 5 * time.Second}
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		url := a
		if !strings.Contains(url, "://") {
			url = "http://" + a
		}
		resp, err := client.Get(strings.TrimSuffix(url, "/") + "/metrics.json")
		if err != nil {
			return nil, fmt.Errorf("fetch %s: %w", a, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", a, err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("fetch %s: HTTP %d", a, resp.StatusCode)
		}
		s := obs.NewSnapshot()
		if err := json.Unmarshal(body, s); err != nil {
			return nil, fmt.Errorf("parse %s: %w", a, err)
		}
		merged.Merge(s)
	}
	return merged, nil
}

func writeSnapshot(path string, out io.Writer, r *obs.Registry, status io.Writer) error {
	return writeSnapshotValue(path, out, r.Snapshot(), status)
}

func writeSnapshotValue(path string, out io.Writer, s *obs.Snapshot, status io.Writer) error {
	if path == "-" {
		return s.WriteJSON(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(status, "gbload: wrote snapshot to %s\n", path)
	return nil
}
