# Developer entry points. Everything is plain `go` underneath; the Makefile
# just names the common invocations.

GO ?= go

.PHONY: all build lint test race test-race cover bench bench-baseline bench-compare bench-history experiments examples fuzz soak parity clean

all: build test test-race

build:
	$(GO) build ./...

# Static analysis: go vet plus the repo's own analyzer (layering,
# determinism, hot-path allocation, obs discipline, guardedby/atomic
# discipline, kind-switch exhaustiveness, and spawn lifecycle — see
# DESIGN.md "Static guarantees").
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/gblint ./...

test: lint
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrent packages (the goroutine runtime, the
# wire layer's sockets and chaos proxy, the observability instruments they
# publish to, the hierarchical monitor the sharded substrate's cores share,
# and the harness's parallel sweep, which must equal a sequential sweep
# bit-for-bit).
test-race:
	$(GO) test -race ./internal/runtime/... ./internal/wire/... ./internal/obs/... ./internal/hme/...
	$(GO) test -race -run ParMap ./internal/harness/

# Race-enabled soak: a 5-node live TCP loopback cluster under the seeded
# chaos schedule; fails unless it converges with zero post-convergence
# safety violations. Node 0 sends with the compact v2 wire codec so every
# soak exercises v1/v2 interop on the batched send path. The second run
# replays the gray-burst scenario under a bursty workload — the E16
# gray-failure soak.
soak:
	$(GO) run -race ./cmd/gbload -n 5 -duration 10s -seed 1 -v2 0 -check
	$(GO) run -race ./cmd/gbload -n 5 -duration 10s -seed 1 -workload bursty -scenario gray-burst -check
	$(GO) run -race ./cmd/gbload -n 8 -shards 4 -duration 10s -seed 1 -check

# E18 sim-to-real parity gate: one seeded workload on the tick simulator AND
# a TCP-loopback live cluster, diffed against each other and the analytical
# twin's prediction. Fails on semantic divergence (entry/request counts
# beyond ±20%, any safety violation, non-convergence).
parity:
	$(GO) run ./cmd/experiments -only E18 -check

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the committed benchmark baseline (BENCH_BASELINE.json).
bench-baseline:
	$(GO) run ./cmd/bench -out BENCH_BASELINE.json

# Re-measure and diff against the previous PR's committed snapshot. Deltas
# beyond 15% print as REGRESSION for review; only >2x growth fails, matching
# the CI bench-gate: ns/op is environment-sensitive across machines, so
# allocs/op and bytes/op are the stable signals to watch in the diff table.
bench-compare:
	$(GO) run ./cmd/bench -out BENCH_PR10.json -compare BENCH_PR9.json -tolerance 0.15 -fail-tolerance 1.0

# Walk every committed BENCH_*.json and print the ns/op and allocs/op trend
# across the PR timeline.
bench-history:
	$(GO) run ./cmd/bench -history

# Regenerate every experiment table of EXPERIMENTS.md (full scale ≈ 30 min).
experiments:
	$(GO) run ./cmd/experiments -scale full -markdown

experiments-quick:
	$(GO) run ./cmd/experiments -scale quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/deadlock
	$(GO) run ./examples/reuse
	$(GO) run ./examples/tuning
	$(GO) run ./examples/synthesis
	$(GO) run ./examples/tokenring

# Short fuzzing pass over every fuzz target.
fuzz:
	$(GO) test -run=Fuzz -fuzz=FuzzFIFOOps -fuzztime=15s ./internal/channel/
	$(GO) test -run=Fuzz -fuzz=FuzzAcceptForward -fuzztime=15s ./internal/ring/
	$(GO) test -run=Fuzz -fuzz=FuzzParseSystem -fuzztime=15s ./cmd/gbcheck/
	$(GO) test -run=Fuzz -fuzz=FuzzEventHeap -fuzztime=15s ./internal/engine/
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeFrame -fuzztime=15s ./internal/wire/
	$(GO) test -run=Fuzz -fuzz=FuzzLoadSchedule -fuzztime=15s ./internal/workload/

clean:
	$(GO) clean ./...
