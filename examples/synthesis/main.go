// Synthesis: the paper's §6 future work, running. Given only a finite
// specification (graybox knowledge), synthesize (a) a stabilization wrapper
// and (b) a masking fault-tolerance wrapper, then verify both with the
// model checker — and reuse them on a different implementation of the same
// spec.
//
//	go run ./examples/synthesis
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/ftsynth"
	"github.com/graybox-stabilization/graybox/internal/graybox"
	"github.com/graybox-stabilization/graybox/internal/synth"
)

func main() {
	// --- (a) Stabilization wrapper for Figure 1's C -------------------
	a, c := graybox.Fig1A(), graybox.Fig1C()
	fmt.Println("spec A and implementation C of the paper's Figure 1:")
	okC, lasso := graybox.StabilizingTo(c, a)
	fmt.Printf("  C stabilizing to A before synthesis: %v (%v)\n", okC, lasso)

	st, err := synth.Synthesize(a, synth.AllCandidates(a.NumStates()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  synthesized strategy acts on states %v (max recovery %d step)\n",
		st.Active(), st.MaxDistance())
	okW, _ := graybox.StabilizingTo(st.Wrapped(c), a)
	fmt.Printf("  wrapped C stabilizing to A: %v\n\n", okW)

	// --- (b) Masking tolerance for a spec with a bad state ------------
	// Legitimate ring 0→1→2→0; perturbed state 3 can slide into bad
	// state 4; a fault kicks 1→3.
	spec := graybox.NewBuilder("demo", 5).
		AddChain(0, 1, 2, 0).
		AddTransition(3, 4).
		AddTransition(3, 0).
		AddTransition(4, 4).
		SetInit(0).
		MustBuild()
	problem := ftsynth.Problem{
		Spec:   spec,
		Faults: [][2]int{{1, 3}},
		Bad:    []bool{false, false, false, false, true},
	}
	fmt.Println("masking synthesis for a 5-state spec with fault 1→3 and bad state 4:")
	m, err := ftsynth.SynthesizeMasking(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  recovery: state 3 → %d (distance %d); unsafe slide 3→4 pruned\n",
		m.Recovery(3), m.Distance(3))

	wrapped := m.Apply(spec)
	if msg := ftsynth.VerifyMasking(problem, wrapped); msg != "" {
		log.Fatalf("verification failed: %s", msg)
	}
	fmt.Println("  verified: no bad state reachable, every fault-span state recovers")

	// Graybox reusability: the SAME tolerance applies to any everywhere-
	// implementation of the spec.
	rng := rand.New(rand.NewSource(1))
	impl := graybox.RandomSub(rng, "impl", spec)
	if msg := ftsynth.VerifyMasking(problem, m.Apply(impl)); msg != "" {
		log.Fatalf("reuse failed: %s", msg)
	}
	fmt.Println("  reused unchanged on a random everywhere-implementation — still verified")
}
