// Tokenring: the graybox method on a second problem. Token circulation on
// a ring dies permanently when the token is lost — unless a graybox
// regeneration wrapper, reading only the TCspec variables (holding, seq),
// revives it. The same wrapper works for two structurally different
// implementations.
//
//	go run ./examples/tokenring
package main

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/ring"
)

func scenario(name string, factory func(id, n int) ring.Node, delta int) {
	s := ring.NewSim(ring.SimConfig{N: 5, Seed: 11, NewNode: factory, WrapperDelta: delta})
	s.Run(60)
	accBefore := total(s)
	fmt.Printf("  t=60  circulation healthy: %d token deliveries so far\n", accBefore)

	s.DropAllInFlight()
	s.StealToken()
	fmt.Println("  t=60  FAULT: token lost (in-flight dropped, holders cleared)")

	s.Run(600)
	accAfter := total(s)
	switch {
	case accAfter == accBefore:
		fmt.Printf("  t=660 ring is DEAD: no delivery since the fault (%s)\n", name)
	default:
		fmt.Printf("  t=660 ring recovered: %d more deliveries, %d regeneration(s), %d stale discard(s)\n",
			accAfter-accBefore, s.Metrics().Regenerations, s.Metrics().Discards)
	}
}

func total(s *ring.Sim) int {
	t := 0
	for _, a := range s.Metrics().Accepts {
		t += a
	}
	return t
}

func main() {
	eager := func(id, n int) ring.Node { return ring.NewEager(id, n, 2) }
	lazy := func(id, n int) ring.Node { return ring.NewLazy(id, n, 4, 2) }

	fmt.Println("=== eager implementation, no wrapper ===")
	scenario("eager", eager, 0)
	fmt.Println()
	fmt.Println("=== eager implementation, graybox regenerator (δ=25) ===")
	scenario("eager", eager, 25)
	fmt.Println()
	fmt.Println("=== lazy implementation, SAME wrapper, same fault ===")
	scenario("lazy", lazy, 25)
	fmt.Println()
	fmt.Println("the regenerator reads only the spec variables (ring.View), so it")
	fmt.Println("stabilizes every implementation of TCspec — the paper's method, reused")
}
