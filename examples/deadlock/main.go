// Deadlock: the paper's §4 scenario, step by step, in the deterministic
// simulator. All processes request the critical section simultaneously,
// every request is lost, and the processes' local copies become mutually
// inconsistent: each believes its own request is not yet the earliest and
// waits for replies that will never come. Without the wrapper the deadlock
// is permanent; with W' it is resolved within a few timeouts.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

func scenario(withWrapper bool) {
	const n = 3
	cfg := sim.Config{
		N:       n,
		Seed:    7,
		NewNode: func(id, nn int) tme.Node { return ra.New(id, nn) },
	}
	if withWrapper {
		cfg.NewWrapper = func(int) wrapper.Level2 { return wrapper.NewTimed(10) }
		cfg.WrapperEvery = 10
	}
	s := sim.New(cfg)

	// t=10: everyone requests. t=11: every request is dropped in flight.
	s.At(10, func(s *sim.Sim) {
		for i := 0; i < n; i++ {
			s.Request(i)
		}
	})
	s.At(11, func(s *sim.Sim) {
		fmt.Printf("  t=11   FAULT: all %d in-flight requests dropped\n", s.Net().TotalQueued())
		fault.DropAllInFlight(s)
	})

	// Narrate entries as they happen.
	seen := 0
	s.SetObserver(func(s *sim.Sim) {
		for _, e := range s.Metrics().Entries[seen:] {
			fmt.Printf("  t=%-4d process %d entered the CS (request %s)\n", e.Time, e.ID, e.REQ)
			seen++
			s.Release(e.ID) // eat for an instant, then release
		}
	})

	s.Run(2000)

	if len(s.Metrics().Entries) == 0 {
		fmt.Println("  t=2000 horizon reached: NO process ever entered — deadlock")
		for i := 0; i < n; i++ {
			st := tme.Snapshot(s.Node(i))
			fmt.Printf("         process %d: phase=%v REQ=%s (waiting forever)\n", i, st.Phase, st.REQ)
		}
	} else {
		fmt.Printf("  all %d processes served; wrapper sent %d recovery requests\n",
			len(s.Metrics().Entries), s.Metrics().WrapperMsgs)
	}
}

func main() {
	fmt.Println("=== without wrapper (plain RA ME) ===")
	scenario(false)
	fmt.Println()
	fmt.Println("=== with graybox wrapper W' (δ=10) ===")
	scenario(true)
}
