// Tuning: the W' timeout δ trades recovery latency against steady-state
// message overhead (DSN 2001 §4, "Implementation of W"). Small δ recovers
// fast but spams requests while the system is already consistent; large δ
// is quiet but slow to notice inconsistency. δ=0 is the eager W.
//
//	go run ./examples/tuning
package main

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/harness"
)

func main() {
	fmt.Println("W' timeout sweep on Ricart–Agrawala, n=4")
	fmt.Println()
	fmt.Printf("%-8s %-24s %-26s\n", "δ", "recovery latency (ticks)", "wrapper msgs (fault-free run)")

	for _, delta := range []int64{0, 1, 2, 5, 10, 20, 50, 100} {
		// Deliberate deadlock: how fast does W' break it?
		faulty := harness.Run(harness.RunConfig{
			Algo: harness.RA, N: 4, Seed: 1,
			Delta:         delta,
			DeadlockFault: true,
			Horizon:       30000,
		})
		latency := "never"
		if faulty.FirstEntryAfterFault >= 0 {
			latency = fmt.Sprint(faulty.FirstEntryAfterFault - faulty.LastFault)
		}
		// Fault-free workload: what does W' cost at steady state?
		clean := harness.Run(harness.RunConfig{
			Algo: harness.RA, N: 4, Seed: 1,
			Delta: delta,
		})
		fmt.Printf("%-8d %-24s %d (%.2f per CS entry)\n",
			delta, latency, clean.WrapperMsgs, clean.WrapperMsgsPerEntry())
	}

	fmt.Println()
	fmt.Println("pick δ near your request round-trip time: recovery stays prompt")
	fmt.Println("while the consistent-state overhead collapses")
}
