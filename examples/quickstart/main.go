// Quickstart: wrap Ricart–Agrawala mutual exclusion with the graybox
// wrapper W' and watch it survive a lossy network on real goroutines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/runtime"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

func main() {
	const n = 3
	// A cluster that drops 30% of all messages — enough to wedge plain
	// RA ME regularly — wrapped with the paper's W (evaluated every
	// millisecond per process).
	cluster, err := runtime.NewCluster(runtime.Config{
		N:        n,
		Seed:     42,
		NewNode:  func(id, nn int) tme.Node { return ra.New(id, nn) },
		LossRate: 0.3,
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.Func(wrapper.W)
		},
		WrapperTick: time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	entries := make(chan runtime.Entry, n)
	cluster.OnEntry(func(e runtime.Entry) { entries <- e })
	cluster.Start()
	defer cluster.Stop()

	fmt.Printf("3 processes, 30%% message loss, graybox wrapper W attached\n\n")
	for i := 0; i < n; i++ {
		cluster.Request(i)
		fmt.Printf("process %d requested the critical section\n", i)
	}

	served := 0
	deadline := time.After(30 * time.Second)
	for served < n {
		select {
		case e := <-entries:
			fmt.Printf("process %d ENTERED the critical section (entry #%d)\n", e.ID, e.Seq+1)
			time.Sleep(2 * time.Millisecond) // "eat"
			cluster.Release(e.ID)
			fmt.Printf("process %d released it\n", e.ID)
			served++
		case <-deadline:
			log.Fatal("starvation: the wrapper should have prevented this")
		}
	}
	fmt.Printf("\nall %d processes were served despite the losses — W kept the\n", n)
	fmt.Println("spec-level state mutually consistent (DSN 2001, Theorem 8)")
}
