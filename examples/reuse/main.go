// Reuse: the whole point of graybox stabilization — one wrapper, designed
// from Lspec alone, stabilizes two completely different implementations
// (Ricart–Agrawala and Lamport ME) under identical fault schedules
// (Corollary 11). The wrapper code never changes; only the node factory
// does.
//
//	go run ./examples/reuse
package main

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/harness"
)

func main() {
	fmt.Println("one wrapper W'(δ=5), two implementations, same fault schedule")
	fmt.Println("(3 bursts of mixed faults: loss, duplication, corruption, state)")
	fmt.Println()
	fmt.Printf("%-18s %-10s %-10s %-14s %-8s\n",
		"implementation", "wrapper", "converged", "conv. time", "starved")

	for _, algo := range []harness.Algo{harness.RA, harness.Lamport} {
		for _, delta := range []int64{harness.NoWrapper, 5} {
			r := harness.Run(harness.RunConfig{
				Algo: algo, N: 5,
				Seed: 3, FaultSeed: 1003,
				Delta:      delta,
				FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 15,
				MaxRequests: 40,
				Horizon:     40000,
				Monitor:     true,
			})
			wname := "W'(δ=5)"
			if delta == harness.NoWrapper {
				wname = "none"
			}
			fmt.Printf("%-18s %-10s %-10v %-14d %v\n",
				algo, wname, r.Converged, r.ConvergenceTime, r.Starved)
		}
	}

	fmt.Println()
	fmt.Println("the wrapper reads only the Lspec variables (tme.SpecView), so the")
	fmt.Println("same code stabilizes every everywhere-implementation of Lspec")
}
