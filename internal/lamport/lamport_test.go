package lamport

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// pump delivers all outstanding messages synchronously until quiescence.
func pump(t *testing.T, nodes []*Node, pending []tme.Message) (entries int) {
	t.Helper()
	for len(pending) > 0 {
		m := pending[0]
		pending = pending[1:]
		out := nodes[m.To].Deliver(m)
		pending = append(pending, out...)
		for _, nd := range nodes {
			if ok, msgs := nd.Step(); ok {
				entries++
				pending = append(pending, msgs...)
			}
		}
	}
	return entries
}

func newCluster(n int) []*Node {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = New(i, n)
	}
	return nodes
}

func TestInitState(t *testing.T) {
	nd := New(2, 4)
	if nd.ID() != 2 || nd.N() != 4 || nd.Phase() != tme.Thinking {
		t.Error("init header wrong")
	}
	if got := nd.REQ(); got.Clock != 0 || got.PID != 2 {
		t.Errorf("initial REQ = %v, want 0.2", got)
	}
	if len(nd.QueueSnapshot()) != 0 {
		t.Error("init queue not empty")
	}
	for k := 0; k < 4; k++ {
		if ts, pending := nd.LocalREQ(k); !ts.IsZero() || pending {
			t.Errorf("LocalREQ(%d) = (%v,%v)", k, ts, pending)
		}
	}
}

func TestRequestEnqueuesOwnEntry(t *testing.T) {
	nd := New(0, 3)
	msgs := nd.RequestCS()
	if len(msgs) != 2 {
		t.Fatalf("sent %d, want 2", len(msgs))
	}
	q := nd.QueueSnapshot()
	if len(q) != 1 || q[0] != nd.REQ() {
		t.Fatalf("queue = %v, want own request", q)
	}
	if nd.RequestCS() != nil {
		t.Error("second RequestCS not a no-op")
	}
}

func TestSoloRound(t *testing.T) {
	nodes := newCluster(3)
	entries := pump(t, nodes, nodes[1].RequestCS())
	if entries != 1 || nodes[1].Phase() != tme.Eating {
		t.Fatalf("entries=%d phase=%v", entries, nodes[1].Phase())
	}
	rel := nodes[1].ReleaseCS()
	if len(rel) != 2 {
		t.Fatalf("release broadcast %d, want 2", len(rel))
	}
	for _, m := range rel {
		if m.Kind != tme.Release {
			t.Errorf("release message kind = %v", m.Kind)
		}
	}
	pump(t, nodes, rel)
	// Releases must clear node 1's entry everywhere.
	for _, nd := range nodes {
		for _, q := range nd.QueueSnapshot() {
			if q.PID == 1 {
				t.Errorf("node %d still queues 1's request", nd.ID())
			}
		}
	}
}

func TestMutualExclusionUnderContention(t *testing.T) {
	nodes := newCluster(2)
	m0 := nodes[0].RequestCS()
	m1 := nodes[1].RequestCS()
	entries := pump(t, nodes, append(m0, m1...))
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	if nodes[0].Phase() != tme.Eating || nodes[1].Phase() != tme.Hungry {
		t.Fatalf("tie must go to pid 0: %v %v", nodes[0].Phase(), nodes[1].Phase())
	}
	// Node 0 releases; node 1 must then enter.
	entries = pump(t, nodes, nodes[0].ReleaseCS())
	if entries != 1 || nodes[1].Phase() != tme.Eating {
		t.Fatalf("node 1 did not enter after release: %v", nodes[1].Phase())
	}
}

func TestFCFSOrder(t *testing.T) {
	const n = 5
	nodes := newCluster(n)
	// All request in pid order before any delivery: entries must then
	// occur in timestamp (pid) order.
	var pending []tme.Message
	for _, nd := range nodes {
		pending = append(pending, nd.RequestCS()...)
	}
	for want := 0; want < n; want++ {
		entries := pump(t, nodes, pending)
		pending = nil
		if entries != 1 {
			t.Fatalf("round %d: entries = %d", want, entries)
		}
		if nodes[want].Phase() != tme.Eating {
			t.Fatalf("round %d: expected node %d eating", want, want)
		}
		pending = nodes[want].ReleaseCS()
	}
	pump(t, nodes, pending)
}

func TestInsertKeepsOneEntryPerProcess(t *testing.T) {
	nd := New(0, 3)
	// Two requests from process 1 (the second corrects the first —
	// modification 1).
	nd.Deliver(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 9, PID: 1}, From: 1, To: 0})
	nd.Deliver(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 4, PID: 1}, From: 1, To: 0})
	q := nd.QueueSnapshot()
	if len(q) != 1 || q[0].Clock != 4 {
		t.Fatalf("queue = %v, want single corrected entry 4.1", q)
	}
}

func TestQueueSortedByTimestamp(t *testing.T) {
	nd := New(0, 4)
	nd.Deliver(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 9, PID: 1}, From: 1, To: 0})
	nd.Deliver(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 2, PID: 2}, From: 2, To: 0})
	nd.Deliver(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 5, PID: 3}, From: 3, To: 0})
	q := nd.QueueSnapshot()
	for i := 1; i < len(q); i++ {
		if q[i].Less(q[i-1]) {
			t.Fatalf("queue out of order: %v", q)
		}
	}
}

func TestRequestMessagePIDSpoofingDefused(t *testing.T) {
	nd := New(0, 3)
	// A corrupted request from 1 claims pid 2 in its timestamp; the node
	// must index it under the true sender 1.
	nd.Deliver(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 5, PID: 2}, From: 1, To: 0})
	if ts, pending := nd.LocalREQ(1); !pending || ts.PID != 1 {
		t.Errorf("LocalREQ(1) = (%v,%v), want pending entry under pid 1", ts, pending)
	}
}

func TestStaleReplyIgnored(t *testing.T) {
	nd := New(0, 2)
	nd.RequestCS()
	// A reply with a timestamp at or before our request must not grant.
	nd.Deliver(tme.Message{Kind: tme.Reply, TS: ltime.Zero, From: 1, To: 0})
	if ok, _ := nd.Step(); ok {
		t.Fatal("entered on a stale reply")
	}
	// A later reply grants.
	nd.Deliver(tme.Message{Kind: tme.Reply, TS: ltime.Timestamp{Clock: 99, PID: 1}, From: 1, To: 0})
	if ok, _ := nd.Step(); !ok {
		t.Fatal("did not enter after valid grant")
	}
}

func TestModification2EntersWhenOwnEntryMissing(t *testing.T) {
	// Corruption may erase the own queue entry; with grants held, the
	// process must still be able to enter (REQ_j ≤ head vacuously or via
	// a later head) so CS Entry Spec holds in any state.
	nd := New(0, 2)
	nd.RequestCS()
	nd.Deliver(tme.Message{Kind: tme.Reply, TS: ltime.Timestamp{Clock: 99, PID: 1}, From: 1, To: 0})
	nd.Corrupt(tme.Corruption{DropReceived: []int{0}}) // drops own queue entry
	if ok, _ := nd.Step(); !ok {
		t.Fatal("modification 2 violated: could not enter with missing own entry")
	}
}

func TestEntryBlockedByEarlierHead(t *testing.T) {
	nd := New(0, 2)
	nd.Deliver(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 1, PID: 1}, From: 1, To: 0})
	nd.RequestCS()
	nd.Deliver(tme.Message{Kind: tme.Reply, TS: ltime.Timestamp{Clock: 99, PID: 1}, From: 1, To: 0})
	if ok, _ := nd.Step(); ok {
		t.Fatal("entered past an earlier queued request")
	}
	// Release from 1 unblocks.
	nd.Deliver(tme.Message{Kind: tme.Release, TS: ltime.Timestamp{Clock: 100, PID: 1}, From: 1, To: 0})
	if ok, _ := nd.Step(); !ok {
		t.Fatal("did not enter after release")
	}
}

func TestDeliverIgnoresGarbage(t *testing.T) {
	nd := New(0, 2)
	for _, m := range []tme.Message{
		{Kind: tme.Request, From: -1, To: 0},
		{Kind: tme.Request, From: 5, To: 0},
		{Kind: tme.Request, From: 0, To: 0},
		{Kind: tme.Kind(42), From: 1, To: 0},
	} {
		if out := nd.Deliver(m); out != nil {
			t.Errorf("Deliver(%v) = %v", m, out)
		}
	}
}

func TestReleaseCSOnlyWhenEating(t *testing.T) {
	nd := New(0, 2)
	if nd.ReleaseCS() != nil {
		t.Error("ReleaseCS while thinking produced messages")
	}
}

func TestLocalREQBounds(t *testing.T) {
	nd := New(1, 3)
	for _, k := range []int{-1, 1, 7} {
		if ts, p := nd.LocalREQ(k); !ts.IsZero() || p {
			t.Errorf("LocalREQ(%d) = (%v,%v)", k, ts, p)
		}
	}
}

func TestCorruptScrambleDeterministic(t *testing.T) {
	a, b := New(0, 4), New(0, 4)
	a.Corrupt(tme.Corruption{ScrambleInternal: true, Seed: 7})
	b.Corrupt(tme.Corruption{ScrambleInternal: true, Seed: 7})
	qa, qb := a.QueueSnapshot(), b.QueueSnapshot()
	if len(qa) != len(qb) {
		t.Fatal("scramble not deterministic (queue length)")
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatal("scramble not deterministic (queue content)")
		}
	}
}

// Regression: an all-hungry cluster whose grants were corrupted away must
// still present stale local copies through SpecView, or the wrapper's guard
// closes on every node and the deadlock becomes permanent. Per the paper's
// definition, REQ_j lt j.REQ_k requires grant.j.k — a queued-but-later
// entry without a grant reads as stale.
func TestLocalREQStaleWithoutGrant(t *testing.T) {
	nd := New(0, 2)
	nd.RequestCS()
	// Process 1's later request is queued, but no grant from 1.
	later := ltime.Timestamp{Clock: 99, PID: 1}
	nd.Deliver(tme.Message{Kind: tme.Request, TS: later, From: 1, To: 0})
	nd.Corrupt(tme.Corruption{}) // no-op; grants were never set for this round
	ts, _ := nd.LocalREQ(1)
	if !ts.Less(nd.REQ()) {
		t.Fatalf("LocalREQ(1) = %v not less than REQ %v: wrapper guard would close without a grant",
			ts, nd.REQ())
	}
	// After a grant, the queued entry is the local copy.
	nd.Deliver(tme.Message{Kind: tme.Reply, TS: ltime.Timestamp{Clock: 100, PID: 1}, From: 1, To: 0})
	ts, pending := nd.LocalREQ(1)
	if ts != later || !pending {
		t.Fatalf("after grant: LocalREQ(1) = (%v,%v), want (%v,true)", ts, pending, later)
	}
}

func TestCorruptFields(t *testing.T) {
	nd := New(0, 3)
	ts := ltime.Timestamp{Clock: 11, PID: 0}
	clk := uint64(40)
	nd.Corrupt(tme.Corruption{
		Phase:    tme.Hungry,
		REQ:      &ts,
		LocalREQ: map[int]ltime.Timestamp{2: {Clock: 3, PID: 9}},
		Clock:    &clk,
	})
	if nd.Phase() != tme.Hungry || nd.REQ() != ts {
		t.Error("phase/REQ not corrupted")
	}
	got, pending := nd.LocalREQ(2)
	if !pending || got.PID != 2 || got.Clock != 3 {
		t.Errorf("forged local entry = (%v,%v)", got, pending)
	}
	nd.Corrupt(tme.Corruption{ForgeReceived: []int{1}})
	if ts, _ := nd.LocalREQ(1); ts != nd.heard[1] {
		t.Error("forged grant did not expose heard value")
	}
}
