// Package lamport implements Lamport's timestamp-based mutual exclusion
// program Lamport_ME as modified in DSN 2001 §5.2 so that it everywhere
// implements Lspec (Theorem 10):
//
//  1. Insert keeps at most one request per process in request_queue.j, so a
//     fresh request from k corrects any old (possibly corrupted) entry.
//  2. A process enters the CS when it holds grants from everyone and its
//     request is equal to or earlier than the head of its request queue
//     (rather than exactly at the head), so CS Entry Spec holds in any
//     state.
//
// The Lspec variable j.REQ_k is not stored; the paper defines the relation
//
//	REQ_j lt j.REQ_k  ≡  grant.j.k ∧ (REQ_k is not ahead of REQ_j in
//	                                   request_queue.j)
//
// We expose a concrete j.REQ_k consistent with that definition: k's queued
// request if one is queued, else the latest timestamp heard from k if
// grant.j.k holds, else the zero timestamp (nothing known). This gives the
// graybox wrapper the same SpecView it gets from RA_ME.
package lamport

import (
	"math/rand"
	"sort"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Node is one Lamport ME process. Construct with New; all methods are
// driven from a single goroutine.
type Node struct {
	id, n int
	clock *ltime.Clock
	phase tme.Phase
	req   ltime.Timestamp
	// queue is request_queue.j: pending requests ordered by timestamp,
	// at most one per process (modification 1).
	queue []ltime.Timestamp
	// grant[k] is grant.j.k: whether k has replied to our current request.
	grant []bool
	// heard[k] is the latest timestamp received from k in a reply or
	// release message; it realizes j.REQ_k when k has nothing queued.
	heard []ltime.Timestamp
}

var (
	_ tme.Node        = (*Node)(nil)
	_ tme.Corruptible = (*Node)(nil)
	_ tme.ClockHolder = (*Node)(nil)
)

// New returns process id of an n-process Lamport_ME system in the Init
// state: thinking, REQ_j = 0 (clock 0 at j), empty queue, no grants.
func New(id, n int) *Node {
	clock := ltime.NewClock(id)
	return &Node{
		id:    id,
		n:     n,
		clock: clock,
		phase: tme.Thinking,
		req:   clock.Now(), // CS Release Spec: t.j ⇒ REQ_j = ts.j
		grant: make([]bool, n),
		heard: make([]ltime.Timestamp, n),
	}
}

// ID returns the process id j.
func (nd *Node) ID() int { return nd.id }

// N returns the number of processes.
func (nd *Node) N() int { return nd.n }

// Phase returns the current client phase.
func (nd *Node) Phase() tme.Phase { return nd.phase }

// REQ returns REQ_j.
func (nd *Node) REQ() ltime.Timestamp { return nd.req }

// ClockNow returns ts.j, the timestamp of the most current event (for spec
// monitors, not for wrappers).
func (nd *Node) ClockNow() ltime.Timestamp { return nd.clock.Now() }

// LocalREQ returns the realized j.REQ_k and whether a request from k is
// currently recorded. It must agree with the paper's definition
//
//	REQ_j lt j.REQ_k  ≡  grant.j.k ∧ (REQ_k not ahead in request_queue.j)
//
// in particular j.REQ_k may read as later than REQ_j ONLY under a grant:
// without one, a queued-but-later entry still reads as stale (zero), so the
// wrapper's guard stays open and W keeps pinging k until k's reply restores
// the grant. (Returning the raw queue entry here once deadlocked an
// all-hungry cluster whose grants had been corrupted away: every local copy
// read "later", every wrapper guard closed, and no reply was ever sent.)
func (nd *Node) LocalREQ(k int) (ltime.Timestamp, bool) {
	if k < 0 || k >= nd.n || k == nd.id {
		return ltime.Zero, false
	}
	if ts, ok := nd.queued(k); ok && (nd.grant[k] || ts.Less(nd.req)) {
		return ts, true
	}
	if nd.grant[k] {
		return nd.heard[k], false
	}
	return ltime.Zero, false
}

// queued returns k's entry in the request queue, if any.
func (nd *Node) queued(k int) (ltime.Timestamp, bool) {
	for _, ts := range nd.queue {
		if ts.PID == k {
			return ts, true
		}
	}
	return ltime.Zero, false
}

// insert places ts into the request queue, evicting any existing entry of
// the same process first (modification 1) and keeping timestamp order.
func (nd *Node) insert(ts ltime.Timestamp) {
	nd.removePID(ts.PID)
	i := sort.Search(len(nd.queue), func(i int) bool { return ts.Less(nd.queue[i]) })
	nd.queue = append(nd.queue, ltime.Timestamp{})
	copy(nd.queue[i+1:], nd.queue[i:])
	nd.queue[i] = ts
}

// removePID deletes any queued entry belonging to process k.
func (nd *Node) removePID(k int) {
	for i, ts := range nd.queue {
		if ts.PID == k {
			nd.queue = append(nd.queue[:i], nd.queue[i+1:]...)
			return
		}
	}
}

// RequestCS performs the "Request CS" action: take a fresh timestamp,
// enqueue it, clear grants, become hungry, and broadcast the request.
func (nd *Node) RequestCS() []tme.Message {
	if nd.phase != tme.Thinking {
		return nil
	}
	nd.req = nd.clock.Tick()
	nd.insert(nd.req)
	for k := range nd.grant {
		nd.grant[k] = false
	}
	nd.phase = tme.Hungry
	msgs := make([]tme.Message, 0, nd.n-1)
	for k := 0; k < nd.n; k++ {
		if k != nd.id {
			msgs = append(msgs, tme.Message{Kind: tme.Request, TS: nd.req, From: nd.id, To: k})
		}
	}
	return msgs
}

// ReleaseCS performs the "Release CS" action: dequeue the own request,
// broadcast a release, and return to thinking.
func (nd *Node) ReleaseCS() []tme.Message {
	if nd.phase != tme.Eating {
		return nil
	}
	nd.removePID(nd.id)
	ts := nd.clock.Tick()
	msgs := make([]tme.Message, 0, nd.n-1)
	for k := 0; k < nd.n; k++ {
		if k != nd.id {
			msgs = append(msgs, tme.Message{Kind: tme.Release, TS: ts, From: nd.id, To: k})
		}
	}
	nd.req = nd.clock.Now() // CS Release Spec: t.j ⇒ REQ_j = ts.j
	nd.phase = tme.Thinking
	return msgs
}

// Deliver handles one incoming message. Unknown kinds and out-of-range
// senders (message-corruption artifacts) are dropped.
func (nd *Node) Deliver(m tme.Message) []tme.Message {
	k := m.From
	if k < 0 || k >= nd.n || k == nd.id {
		return nil
	}
	switch m.Kind {
	case tme.Request:
		return nd.receiveRequest(k, m.TS)
	case tme.Reply:
		nd.receiveReply(k, m.TS)
	case tme.Release:
		nd.receiveRelease(k, m.TS)
	}
	return nil
}

// receiveRequest enqueues k's request and replies immediately.
func (nd *Node) receiveRequest(k int, ts ltime.Timestamp) []tme.Message {
	nd.clock.Observe(ts)
	// Defend the queue against corrupted messages claiming another pid:
	// index the entry under the channel's true sender.
	ts.PID = k
	nd.insert(ts)
	if nd.phase == tme.Thinking {
		nd.req = nd.clock.Now()
	}
	return []tme.Message{{Kind: tme.Reply, TS: nd.clock.Now(), From: nd.id, To: k}}
}

// receiveReply grants k if the reply postdates our request (stale replies
// from before the current request are ignored, per the paper's guard
// REQ_j lt lc:k).
func (nd *Node) receiveReply(k int, ts ltime.Timestamp) {
	nd.clock.Observe(ts)
	if nd.req.Less(ts) {
		nd.grant[k] = true
	}
	if nd.heard[k].Less(ts) {
		nd.heard[k] = ts
	}
	if nd.phase == tme.Thinking {
		nd.req = nd.clock.Now()
	}
}

// receiveRelease removes k's queued request wherever it sits (the robust
// reading of the paper's Dequeue under modification 1).
func (nd *Node) receiveRelease(k int, ts ltime.Timestamp) {
	nd.clock.Observe(ts)
	nd.removePID(k)
	if nd.heard[k].Less(ts) {
		nd.heard[k] = ts
	}
	if nd.phase == tme.Thinking {
		nd.req = nd.clock.Now()
	}
}

// Step attempts CS entry: hungry, granted by all, and the own request is
// equal to or earlier than the queue head (modification 2).
func (nd *Node) Step() (entered bool, msgs []tme.Message) {
	if nd.phase != tme.Hungry {
		return false, nil
	}
	for k := 0; k < nd.n; k++ {
		if k != nd.id && !nd.grant[k] {
			return false, nil
		}
	}
	if len(nd.queue) > 0 && nd.queue[0].Less(nd.req) {
		return false, nil
	}
	nd.phase = tme.Eating
	return true, nil
}

// Corrupt applies a transient state-corruption fault.
func (nd *Node) Corrupt(c tme.Corruption) {
	if c.Phase != 0 {
		// Invalid phases model corruption breaking Structural Spec; the
		// level-1 PhaseGuard wrapper repairs them.
		nd.phase = c.Phase
	}
	if c.REQ != nil {
		nd.req = *c.REQ
	}
	for k, ts := range c.LocalREQ {
		if k >= 0 && k < nd.n && k != nd.id {
			// Realize a forged j.REQ_k as a forged queue entry.
			ts.PID = k
			nd.insert(ts)
		}
	}
	for _, k := range c.DropReceived {
		if k >= 0 && k < nd.n {
			nd.removePID(k)
			nd.grant[k] = false
		}
	}
	for _, k := range c.ForgeReceived {
		if k >= 0 && k < nd.n && k != nd.id {
			nd.grant[k] = true
		}
	}
	if c.Clock != nil {
		nd.clock.Corrupt(*c.Clock)
	}
	if c.ScrambleInternal {
		rng := rand.New(rand.NewSource(c.Seed))
		nd.queue = nd.queue[:0]
		for k := 0; k < nd.n; k++ {
			if k == nd.id {
				continue
			}
			if rng.Intn(2) == 0 {
				nd.insert(ltime.Timestamp{Clock: uint64(rng.Intn(64)), PID: k})
			}
			nd.grant[k] = rng.Intn(2) == 0
			nd.heard[k] = ltime.Timestamp{Clock: uint64(rng.Intn(64)), PID: k}
		}
	}
}

// QueueSnapshot returns a copy of request_queue.j, head first (for tests
// and the gbcheck CLI).
func (nd *Node) QueueSnapshot() []ltime.Timestamp {
	out := make([]ltime.Timestamp, len(nd.queue))
	copy(out, nd.queue)
	return out
}
