package synth

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/graybox"
)

// Synthesis fixes Figure 1's C: the strategy gives s* a recovery transition
// and the wrapped system stabilizes to A.
func TestSynthesizeRepairsFig1C(t *testing.T) {
	a := graybox.Fig1A()
	c := graybox.Fig1C()
	if ok, _ := graybox.StabilizingTo(c, a); ok {
		t.Fatal("precondition: C must not be stabilizing to A")
	}
	st, err := Synthesize(a, AllCandidates(a.NumStates()))
	if err != nil {
		t.Fatal(err)
	}
	// Strategy acts exactly on s* (the only illegitimate state of A).
	if got := st.Active(); len(got) != 1 || got[0] != graybox.Fig1Star {
		t.Errorf("Active = %v, want [s*]", got)
	}
	if st.Distance(graybox.Fig1Star) != 1 {
		t.Errorf("Distance(s*) = %d, want 1", st.Distance(graybox.Fig1Star))
	}
	// Overriding C at the strategy's states stabilizes it.
	wrapped := st.Wrapped(c)
	if ok, l := graybox.StabilizingTo(wrapped, a); !ok {
		t.Fatalf("wrapped C not stabilizing to A: %v", l)
	}
	// Interference freedom: legitimate transitions are untouched.
	for _, e := range a.Transitions() {
		u := e[0]
		if u == graybox.Fig1Star {
			continue
		}
		if !wrapped.HasTransition(e[0], e[1]) {
			t.Errorf("legit transition %v lost", e)
		}
	}
}

func TestSynthesizeUnreachable(t *testing.T) {
	// Two disconnected self-loop islands; candidates that never leave
	// state 1 make synthesis impossible.
	a := graybox.NewBuilder("a", 2).
		AddTransition(0, 0).
		AddTransition(1, 1).
		SetInit(0).
		MustBuild()
	_, err := Synthesize(a, [][2]int{{0, 1}}) // only 0→1, useless for state 1
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
	// With the right candidate it succeeds.
	st, err := Synthesize(a, [][2]int{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Next(1) != 0 || st.Next(0) != -1 {
		t.Errorf("strategy = next(1)=%d next(0)=%d", st.Next(1), st.Next(0))
	}
}

func TestSynthesizeRejectsBadCandidates(t *testing.T) {
	a := graybox.NewBuilder("a", 1).AddTransition(0, 0).SetInit(0).MustBuild()
	if _, err := Synthesize(a, [][2]int{{0, 7}}); err == nil {
		t.Error("out-of-range candidate accepted")
	}
}

func TestAllCandidates(t *testing.T) {
	c := AllCandidates(3)
	if len(c) != 6 {
		t.Fatalf("len = %d, want 6", len(c))
	}
	for _, e := range c {
		if e[0] == e[1] {
			t.Errorf("self-loop candidate %v", e)
		}
	}
}

// Property: for random specs, synthesis over all candidates succeeds and the
// wrapped system is stabilizing and interference-free.
func TestSynthesizeRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		a := graybox.Random(rng, "a", 2+rng.Intn(15), 1.6)
		st, err := Synthesize(a, AllCandidates(a.NumStates()))
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		wrapped := st.Wrapped(a)
		if ok, l := graybox.StabilizingTo(wrapped, a); !ok {
			t.Fatalf("iter %d: wrapped not stabilizing: %v", i, l)
		}
		// Interference freedom: on legitimate states the wrapped system
		// has exactly a's transitions.
		legit := a.Legitimate()
		for u := 0; u < a.NumStates(); u++ {
			if !legit[u] {
				continue
			}
			au, wu := a.Successors(u), wrapped.Successors(u)
			if len(au) != len(wu) {
				t.Fatalf("iter %d: legit state %d transitions changed", i, u)
			}
			for k := range au {
				if au[k] != wu[k] {
					t.Fatalf("iter %d: legit state %d transitions changed", i, u)
				}
			}
		}
		// Distances are bounded by the state count.
		if st.MaxDistance() >= a.NumStates() {
			t.Fatalf("iter %d: MaxDistance %d ≥ n", i, st.MaxDistance())
		}
		// Following the strategy from any state reaches L within
		// MaxDistance steps.
		for s := 0; s < a.NumStates(); s++ {
			cur, steps := s, 0
			for st.Next(cur) >= 0 {
				cur = st.Next(cur)
				steps++
				if steps > a.NumStates() {
					t.Fatalf("iter %d: strategy loops from %d", i, s)
				}
			}
			if !legit[cur] {
				t.Fatalf("iter %d: strategy from %d ends outside L", i, s)
			}
			if steps != st.Distance(s) {
				t.Fatalf("iter %d: distance mismatch at %d: %d vs %d", i, s, steps, st.Distance(s))
			}
		}
	}
}

// The synthesized strategy is graybox: it is a function of A alone, so the
// same strategy stabilizes EVERY everywhere-implementation of A (the
// synthesis analogue of Theorem 8).
func TestStrategyReusableAcrossImplementations(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 100; i++ {
		a := graybox.Random(rng, "a", 3+rng.Intn(10), 2.0)
		st, err := Synthesize(a, AllCandidates(a.NumStates()))
		if err != nil {
			t.Fatal(err)
		}
		for impl := 0; impl < 3; impl++ {
			c := graybox.RandomSub(rng, "c", a)
			wrapped := st.Wrapped(c)
			if ok, l := graybox.StabilizingTo(wrapped, a); !ok {
				t.Fatalf("iter %d impl %d: strategy failed on an implementation: %v", i, impl, l)
			}
		}
	}
}
