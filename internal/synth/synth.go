// Package synth implements the research direction named in the paper's
// concluding remarks: automatic synthesis of graybox stabilization. Given a
// finite specification A (as a graybox.System) and a set of candidate
// recovery transitions, it computes a wrapper strategy that makes A
// stabilizing to itself — using only A (graybox knowledge), never an
// implementation.
//
// # Composition semantics
//
// A synthesized wrapper is not a plain transition union: under the ▯
// (union) composition, added transitions can never remove A's illegitimate
// cycles. Operationally a wrapper preempts the wrapped system while
// recovery is needed — exactly how W' runs in the simulator, where the
// timer action fires with priority whenever the guard is open. We model
// that as the Override composition: in illegitimate states where the
// strategy is defined, the strategy's transition replaces the system's; in
// legitimate states the wrapper is silent (interference freedom, the
// synthesis analogue of Lemma 6).
//
// # Algorithm
//
// Backward BFS from the legitimate set L = Reach_A(init(A)) over the
// candidate transitions. Each illegitimate state is assigned the first
// candidate edge that decreases its BFS distance to L, so the strategy
// graph is a DAG into L and convergence is immediate by construction
// (every escape path has length < |Σ|).
package synth

import (
	"errors"
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/graybox"
)

// ErrUnreachable is returned when some illegitimate state cannot reach the
// legitimate set through any candidate transition; no strategy over those
// candidates can stabilize the specification.
var ErrUnreachable = errors.New("synth: some state cannot reach the legitimate set via the candidates")

// Strategy is a synthesized recovery strategy for one specification: a
// deterministic choice of recovery successor per illegitimate state.
type Strategy struct {
	// next[s] is the recovery successor of state s, or -1 where the
	// strategy is silent (legitimate states).
	next []int
	// dist[s] is the number of recovery steps from s to the legitimate
	// set (0 inside it).
	dist []int
}

// Next returns the recovery successor of s, or -1 if the strategy is silent
// at s.
func (st *Strategy) Next(s int) int { return st.next[s] }

// Distance returns the number of recovery steps from s to the legitimate
// set (0 for legitimate states).
func (st *Strategy) Distance(s int) int { return st.dist[s] }

// MaxDistance returns the worst-case recovery length.
func (st *Strategy) MaxDistance() int {
	max := 0
	for _, d := range st.dist {
		if d > max {
			max = d
		}
	}
	return max
}

// Active returns the states at which the strategy acts, ascending.
func (st *Strategy) Active() []int {
	var out []int
	for s, nx := range st.next {
		if nx >= 0 {
			out = append(out, s)
		}
	}
	return out
}

// AllCandidates returns every possible transition over n states except
// self-loops — the unconstrained (reset-capable) candidate set.
func AllCandidates(n int) [][2]int {
	out := make([][2]int, 0, n*(n-1))
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Synthesize computes a recovery strategy for spec a over the given
// candidate transitions. It returns ErrUnreachable (wrapped, with the stuck
// states) if any state cannot reach a's legitimate set.
func Synthesize(a *graybox.System, candidates [][2]int) (*Strategy, error) {
	n := a.NumStates()
	legit := a.Legitimate()

	// rev[v] lists candidate sources u with an edge u→v.
	rev := make([][]int, n)
	for _, e := range candidates {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("synth: candidate %d->%d out of range [0,%d)", u, v, n)
		}
		rev[v] = append(rev[v], u)
	}

	const inf = int(^uint(0) >> 1)
	st := &Strategy{next: make([]int, n), dist: make([]int, n)}
	var frontier []int
	for s := 0; s < n; s++ {
		st.next[s] = -1
		if legit[s] {
			st.dist[s] = 0
			frontier = append(frontier, s)
		} else {
			st.dist[s] = inf
		}
	}
	// Backward BFS: settle states by increasing distance to L.
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, u := range rev[v] {
				if st.dist[u] != inf {
					continue
				}
				st.dist[u] = st.dist[v] + 1
				st.next[u] = v
				next = append(next, u)
			}
		}
		frontier = next
	}

	var stuck []int
	for s := 0; s < n; s++ {
		if st.dist[s] == inf {
			stuck = append(stuck, s)
		}
	}
	if len(stuck) > 0 {
		return nil, fmt.Errorf("%w: states %v", ErrUnreachable, stuck)
	}
	return st, nil
}

// Wrapped returns the Override composition of a with the strategy: in
// states where the strategy acts, its single recovery transition replaces
// a's transitions; elsewhere a is unchanged. The result is stabilizing to a
// by construction (verified in tests via graybox.StabilizingTo).
func (st *Strategy) Wrapped(a *graybox.System) *graybox.System {
	n := a.NumStates()
	b := graybox.NewBuilder(a.Name()+" [override-synth]", n)
	for u := 0; u < n; u++ {
		if nx := st.next[u]; nx >= 0 {
			b.AddTransition(u, nx)
			continue
		}
		for _, v := range a.Successors(u) {
			b.AddTransition(u, v)
		}
	}
	b.SetInit(a.Init()...)
	return b.MustBuild()
}
