package synth_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/graybox"
	"github.com/graybox-stabilization/graybox/internal/synth"
)

// ExampleSynthesize repairs the paper's Figure 1: the synthesized strategy
// gives the fault state s* a recovery transition, after which the wrapped
// implementation stabilizes to the specification.
func ExampleSynthesize() {
	a, c := graybox.Fig1A(), graybox.Fig1C()
	st, err := synth.Synthesize(a, synth.AllCandidates(a.NumStates()))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("strategy acts on states:", st.Active())
	ok, _ := graybox.StabilizingTo(st.Wrapped(c), a)
	fmt.Println("wrapped C stabilizing to A:", ok)
	// Output:
	// strategy acts on states: [4]
	// wrapped C stabilizing to A: true
}
