// Package scenario is the declarative gray-failure matrix: a Spec names a
// fault environment — perturb-heavy slow links, asymmetric partitions,
// crash/recover churn, clock skew — and compiles it to the repository's
// existing fault primitives so the *same* scenario runs identically on the
// virtual-time simulator (fault.Mix + injector burst times), the goroutine
// runtime, and the live TCP cluster (wire.FaultSchedule applied through the
// chaos proxy).
//
// Compilation is a pure function of (Spec, seed, run length): the same
// seed yields byte-identical fault plans, which is what makes a workload ×
// scenario sweep comparable across substrates. The shapes follow the
// adversary taxonomy of Devismes/Tixeuil/Yamashita (stabilization behavior
// depends on the scheduler/adversary) and the gray-failure literature:
// "slow but alive" is a first-class failure mode here, not a crash.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/wire"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

// Spec declares one fault environment. The zero value is a fault-free run.
type Spec struct {
	Name string `json:"name"`
	// Mix weights the injected fault classes (zero = fault.DefaultMix when
	// Bursts > 0).
	Mix fault.Mix `json:"mix,omitempty"`
	// Bursts is how many fault bursts to plan; FaultsPerBurst bounds each
	// burst's size (live schedules draw 1..FaultsPerBurst, the simulator
	// injects exactly FaultsPerBurst).
	Bursts         int `json:"bursts,omitempty"`
	FaultsPerBurst int `json:"faults_per_burst,omitempty"`
	// DelayFactor > 1 slows every link by that factor — the gray-failure
	// "slow but alive" network. 0/1 = nominal delays.
	DelayFactor int64 `json:"delay_factor,omitempty"`
	// Partition plans an isolate/heal pair around mid-run; Asymmetric makes
	// the cut one-way (the isolated group's outbound traffic drops, inbound
	// still arrives). Live substrates cut the wire; the simulator
	// approximates the cut with channel-flush bursts (see CompileSim).
	Partition  bool `json:"partition,omitempty"`
	Asymmetric bool `json:"asymmetric,omitempty"`
	// Churn plans this many crash/recover cycles (single-node isolate/heal
	// pairs on the wire; state+flush bursts on the simulator).
	Churn int `json:"churn,omitempty"`
}

// SimPlan is a scenario compiled for the virtual-time simulator: injector
// burst times plus link-delay bounds.
type SimPlan struct {
	Mix            fault.Mix
	FaultTimes     []int64
	FaultsPerBurst int
	// MinDelay/MaxDelay are link-delay bounds in virtual ticks (0 = the
	// simulator's defaults).
	MinDelay, MaxDelay int64
}

// LivePlan is a scenario compiled for the wire substrates: a pre-drawn
// fault schedule plus the chaos proxy's hold window.
type LivePlan struct {
	Schedule *wire.FaultSchedule
	// MinDelay/MaxDelay are the chaos proxy's per-message hold bounds
	// (zero = the proxy's defaults).
	MinDelay, MaxDelay time.Duration
}

func (sc Spec) withDefaults() Spec {
	if sc.Bursts > 0 && sc.Mix.Loss+sc.Mix.Dup+sc.Mix.Corrupt+sc.Mix.State+sc.Mix.Flush == 0 {
		sc.Mix = fault.DefaultMix
	}
	if sc.Bursts > 0 && sc.FaultsPerBurst <= 0 {
		sc.FaultsPerBurst = 4
	}
	return sc
}

// CompileSim compiles the scenario for a simulator run of the given
// horizon. Wire-only shapes map onto the simulator's fault verbs: a
// partition becomes a channel-flush burst at the cut point (every in-flight
// message on the cut dies) and churn becomes state+flush bursts (the
// recovering process restarts with corrupted state). Burst times are drawn
// from a named stream of seed, so the plan is a pure function of
// (Spec, seed, horizon).
//
// Bursts land in the [0.5%, 2%] window of the horizon: harness runs treat
// the horizon as a drain bound (generous, so liveness obligations can
// settle), while the bounded MaxRequests workload is active only early —
// faults must land inside that active window for "entries after the last
// fault" to be a meaningful convergence signal.
func CompileSim(sc Spec, seed, horizon int64) SimPlan {
	sc = sc.withDefaults()
	if horizon < 10 {
		horizon = 10
	}
	p := SimPlan{Mix: sc.Mix, FaultsPerBurst: sc.FaultsPerBurst}
	if sc.DelayFactor > 1 {
		p.MinDelay, p.MaxDelay = 1, 5*sc.DelayFactor
	}
	rng := workload.Stream(seed, "scenario/"+sc.Name+"/sim")
	lo, hi := horizon/200, horizon/50
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	for i := 0; i < sc.Bursts; i++ {
		p.FaultTimes = append(p.FaultTimes, lo+rng.Int63n(hi-lo))
	}
	if sc.Partition {
		// The cut, as the simulator can express it: all in-flight messages
		// on the partition instant are lost.
		p.FaultTimes = append(p.FaultTimes, horizon/100)
		p.Mix = addWeight(p.Mix, fault.Mix{Flush: 2})
	}
	for i := 0; i < sc.Churn; i++ {
		p.FaultTimes = append(p.FaultTimes, lo+rng.Int63n(hi-lo))
	}
	if sc.Churn > 0 {
		p.Mix = addWeight(p.Mix, fault.Mix{State: 2, Flush: 1})
	}
	if len(p.FaultTimes) > 0 && p.FaultsPerBurst <= 0 {
		p.FaultsPerBurst = 4
	}
	if len(p.FaultTimes) > 0 && p.Mix.Loss+p.Mix.Dup+p.Mix.Corrupt+p.Mix.State+p.Mix.Flush == 0 {
		p.Mix = fault.DefaultMix
	}
	sort.Slice(p.FaultTimes, func(i, j int) bool { return p.FaultTimes[i] < p.FaultTimes[j] })
	return p
}

// CompileLive compiles the scenario for a wire run (goroutine runtime or
// live TCP) of n processes and the given duration. The fault schedule is a
// pure function of (Spec, seed, n, duration): same seed, same plan bytes.
func CompileLive(sc Spec, seed int64, n int, duration time.Duration) LivePlan {
	sc = sc.withDefaults()
	p := LivePlan{}
	if sc.DelayFactor > 1 {
		// Nominal chaos hold is 500µs..3ms; a gray network stretches it.
		p.MinDelay = 500 * time.Microsecond * time.Duration(sc.DelayFactor)
		p.MaxDelay = 3 * time.Millisecond * time.Duration(sc.DelayFactor)
	}
	if sc.Bursts > 0 || sc.Partition || sc.Churn > 0 {
		p.Schedule = wire.NewFaultSchedule(seed, wire.ScheduleConfig{
			N:           n,
			Duration:    duration,
			Bursts:      sc.Bursts,
			MaxPerBurst: sc.FaultsPerBurst,
			Mix:         sc.Mix,
			Partition:   sc.Partition,
			Asymmetric:  sc.Asymmetric,
			Churn:       sc.Churn,
		})
	}
	return p
}

func addWeight(m, extra fault.Mix) fault.Mix {
	m.Loss += extra.Loss
	m.Dup += extra.Dup
	m.Corrupt += extra.Corrupt
	m.State += extra.State
	m.Flush += extra.Flush
	return m
}

// Preset scenario names. Registered as a kind set so any future switch
// dispatching over presets must stay total as the matrix grows.
//
//gblint:kindset scenario-preset
const (
	// PresetNone is the fault-free baseline: common-case performance.
	PresetNone = "none"
	// PresetMixedBurst is the repo's historical chaos diet: bursts of the
	// default mix.
	PresetMixedBurst = "mixed-burst"
	// PresetGray is the slow-but-alive network: links 4× slower than
	// nominal with perturb-heavy (state-corruption) bursts — processes
	// stay up and reachable while their state and timing rot.
	PresetGray = "gray"
	// PresetGrayBurst pairs the gray network with heavier fault pressure;
	// the CI soak runs it under a bursty workload.
	PresetGrayBurst = "gray-burst"
	// PresetPartition is a clean symmetric cut with a light fault diet on
	// top.
	PresetPartition = "partition"
	// PresetPartitionAsym is the gray cut: the isolated group can hear
	// the cluster but not be heard.
	PresetPartitionAsym = "partition-asym"
	// PresetChurn crash/recovers individual nodes repeatedly.
	PresetChurn = "churn"
	// PresetClockskew rots logical clocks: corruption-dominant faults
	// that rewrite timestamps, the simulator-expressible form of skewed
	// clocks.
	PresetClockskew = "clockskew"
)

// presets is the named scenario matrix. Every E16 cell and every
// `gbload -scenario` run comes from this table.
var presets = map[string]func() Spec{
	PresetNone: func() Spec { return Spec{Name: PresetNone} },
	PresetMixedBurst: func() Spec {
		return Spec{Name: PresetMixedBurst, Bursts: 3, FaultsPerBurst: 4}
	},
	PresetGray: func() Spec {
		return Spec{Name: PresetGray, Bursts: 3, FaultsPerBurst: 3, DelayFactor: 4,
			Mix: fault.Mix{Loss: 1, Dup: 1, Corrupt: 2, State: 4, Flush: 1}}
	},
	PresetGrayBurst: func() Spec {
		return Spec{Name: PresetGrayBurst, Bursts: 5, FaultsPerBurst: 4, DelayFactor: 4,
			Mix: fault.Mix{Loss: 2, Dup: 1, Corrupt: 2, State: 4, Flush: 1}}
	},
	PresetPartition: func() Spec {
		return Spec{Name: PresetPartition, Bursts: 2, FaultsPerBurst: 2, Partition: true}
	},
	PresetPartitionAsym: func() Spec {
		return Spec{Name: PresetPartitionAsym, Bursts: 2, FaultsPerBurst: 2,
			Partition: true, Asymmetric: true}
	},
	PresetChurn: func() Spec {
		return Spec{Name: PresetChurn, Bursts: 1, FaultsPerBurst: 2, Churn: 3}
	},
	PresetClockskew: func() Spec {
		return Spec{Name: PresetClockskew, Bursts: 4, FaultsPerBurst: 3,
			Mix: fault.Mix{Corrupt: 5, State: 2}}
	},
}

// Preset returns the named scenario. The error lists the known names.
func Preset(name string) (Spec, error) {
	if f, ok := presets[name]; ok {
		return f(), nil
	}
	return Spec{}, fmt.Errorf("unknown scenario %q (known: %v)", name, Names())
}

// Names lists the preset scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(presets))
	//gblint:ignore determinism keys are sorted before returning
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
