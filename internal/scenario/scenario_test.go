package scenario

import (
	"bytes"
	"testing"
	"time"
)

// The acceptance property: same seed ⇒ identical compiled plans, for every
// preset, on both compilation targets.
func TestCompileDeterministicForSeed(t *testing.T) {
	for _, name := range Names() {
		sc, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		a := CompileSim(sc, 42, 20000)
		b := CompileSim(sc, 42, 20000)
		if len(a.FaultTimes) != len(b.FaultTimes) {
			t.Fatalf("%s: sim plan lengths differ", name)
		}
		for i := range a.FaultTimes {
			if a.FaultTimes[i] != b.FaultTimes[i] {
				t.Errorf("%s: sim fault times differ at %d", name, i)
			}
		}
		if a.Mix != b.Mix || a.MaxDelay != b.MaxDelay {
			t.Errorf("%s: sim plan knobs differ", name)
		}

		la := CompileLive(sc, 42, 5, 10*time.Second)
		lb := CompileLive(sc, 42, 5, 10*time.Second)
		if (la.Schedule == nil) != (lb.Schedule == nil) {
			t.Fatalf("%s: live schedule presence differs", name)
		}
		if la.Schedule != nil && !bytes.Equal(la.Schedule.JSON(), lb.Schedule.JSON()) {
			t.Errorf("%s: same seed produced different live schedules", name)
		}
	}
}

func TestCompileSimShapes(t *testing.T) {
	sc, _ := Preset("gray")
	p := CompileSim(sc, 7, 20000)
	if p.MaxDelay != 20 || p.MinDelay != 1 {
		t.Errorf("gray sim delays = [%d, %d], want [1, 20]", p.MinDelay, p.MaxDelay)
	}
	if len(p.FaultTimes) != sc.Bursts {
		t.Errorf("gray sim plan has %d bursts, want %d", len(p.FaultTimes), sc.Bursts)
	}
	if p.Mix.State < p.Mix.Loss {
		t.Error("gray mix should be perturb-heavy")
	}
	for i, ft := range p.FaultTimes {
		if ft < 100 || ft > 400 {
			t.Errorf("fault %d at %d outside the [0.5%%, 2%%] window", i, ft)
		}
		if i > 0 && ft < p.FaultTimes[i-1] {
			t.Error("fault times not sorted")
		}
	}

	// none compiles to an empty plan.
	none, _ := Preset("none")
	np := CompileSim(none, 7, 20000)
	if len(np.FaultTimes) != 0 || np.MaxDelay != 0 {
		t.Errorf("none compiled to a non-empty plan: %+v", np)
	}
	if CompileLive(none, 7, 5, time.Second).Schedule != nil {
		t.Error("none compiled to a live schedule")
	}

	// partition adds a cut-point burst and flush weight on sim.
	part, _ := Preset("partition")
	pp := CompileSim(part, 7, 20000)
	if len(pp.FaultTimes) != part.Bursts+1 {
		t.Errorf("partition sim plan has %d bursts, want %d", len(pp.FaultTimes), part.Bursts+1)
	}
	if pp.Mix.Flush == 0 {
		t.Error("partition sim mix lacks flush weight")
	}

	// churn adds per-cycle bursts and state weight.
	ch, _ := Preset("churn")
	cp := CompileSim(ch, 7, 20000)
	if len(cp.FaultTimes) != ch.Bursts+ch.Churn {
		t.Errorf("churn sim plan has %d bursts, want %d", len(cp.FaultTimes), ch.Bursts+ch.Churn)
	}
	if cp.Mix.State == 0 {
		t.Error("churn sim mix lacks state weight")
	}
}

func TestCompileLiveShapes(t *testing.T) {
	sc, _ := Preset("partition-asym")
	p := CompileLive(sc, 9, 5, 10*time.Second)
	if p.Schedule == nil {
		t.Fatal("partition-asym compiled without a schedule")
	}
	var oneway, heals int
	for _, e := range p.Schedule.Events {
		switch e.Verb {
		case "partition-oneway":
			oneway++
		case "partition":
			t.Error("asymmetric scenario planned a symmetric partition")
		case "heal":
			heals++
		}
	}
	if oneway != 1 || heals != 1 {
		t.Errorf("partition-asym planned %d one-way cuts / %d heals, want 1/1", oneway, heals)
	}

	ch, _ := Preset("churn")
	cp := CompileLive(ch, 9, 5, 10*time.Second)
	var parts int
	for _, e := range cp.Schedule.Events {
		if e.Verb == "partition" {
			parts++
			if len(e.Group) != 1 {
				t.Errorf("churn cut group %v, want single node", e.Group)
			}
		}
	}
	if parts != ch.Churn {
		t.Errorf("churn planned %d cuts, want %d", parts, ch.Churn)
	}

	gray, _ := Preset("gray")
	gp := CompileLive(gray, 9, 5, 10*time.Second)
	if gp.MinDelay != 2*time.Millisecond || gp.MaxDelay != 12*time.Millisecond {
		t.Errorf("gray live delays = [%v, %v], want 4x nominal", gp.MinDelay, gp.MaxDelay)
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("Preset(nope) should error")
	}
}
