package channel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 10; i++ {
		q.Send(i)
	}
	for i := 0; i < 10; i++ {
		m, ok := q.Recv()
		if !ok || m != i {
			t.Fatalf("Recv #%d = (%d,%v), want (%d,true)", i, m, ok, i)
		}
	}
	if _, ok := q.Recv(); ok {
		t.Error("Recv on empty queue returned ok")
	}
}

func TestFIFOZeroValueUsable(t *testing.T) {
	var q FIFO[string]
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("zero FIFO not empty")
	}
	q.Send("a")
	if q.Empty() || q.Len() != 1 {
		t.Fatal("Send on zero FIFO failed")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	var q FIFO[int]
	q.Send(7)
	m, ok := q.Peek()
	if !ok || m != 7 {
		t.Fatalf("Peek = (%d,%v)", m, ok)
	}
	if q.Len() != 1 {
		t.Fatal("Peek consumed the message")
	}
}

func TestDrop(t *testing.T) {
	var q FIFO[int]
	for i := 0; i < 5; i++ {
		q.Send(i)
	}
	if !q.Drop(2) {
		t.Fatal("Drop(2) failed")
	}
	want := []int{0, 1, 3, 4}
	got := q.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("after Drop: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after Drop: %v, want %v", got, want)
		}
	}
	if q.Drop(99) || q.Drop(-1) {
		t.Error("Drop out of range returned true")
	}
}

func TestDuplicate(t *testing.T) {
	var q FIFO[int]
	q.Send(1)
	q.Send(2)
	q.Send(3)
	if !q.Duplicate(1) {
		t.Fatal("Duplicate(1) failed")
	}
	want := []int{1, 2, 2, 3}
	got := q.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after Duplicate: %v, want %v", got, want)
		}
	}
	if q.Duplicate(10) {
		t.Error("Duplicate out of range returned true")
	}
}

func TestMutate(t *testing.T) {
	var q FIFO[int]
	q.Send(5)
	if !q.Mutate(0, func(m *int) { *m = 99 }) {
		t.Fatal("Mutate failed")
	}
	m, _ := q.Peek()
	if m != 99 {
		t.Errorf("after Mutate: head = %d, want 99", m)
	}
	if q.Mutate(3, func(*int) {}) {
		t.Error("Mutate out of range returned true")
	}
}

func TestClear(t *testing.T) {
	var q FIFO[int]
	q.Send(1)
	q.Send(2)
	q.Clear()
	if !q.Empty() {
		t.Error("Clear left messages queued")
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	var q FIFO[int]
	q.Send(1)
	s := q.Snapshot()
	s[0] = 42
	m, _ := q.Peek()
	if m != 1 {
		t.Error("Snapshot aliases queue storage")
	}
}

// Property: any interleaving of sends and receives preserves FIFO order.
func TestFIFOOrderProperty(t *testing.T) {
	f := func(ops []bool, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q FIFO[int]
		next := 0     // next value to send
		expected := 0 // next value we must receive
		for range ops {
			if rng.Intn(2) == 0 {
				q.Send(next)
				next++
			} else if m, ok := q.Recv(); ok {
				if m != expected {
					return false
				}
				expected++
			}
		}
		for {
			m, ok := q.Recv()
			if !ok {
				break
			}
			if m != expected {
				return false
			}
			expected++
		}
		return expected == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Drop/Duplicate/Clear never break the relative order of the
// surviving original messages (FIFO channels stay FIFO under faults).
func TestFaultsPreserveRelativeOrderProperty(t *testing.T) {
	f := func(nMsgs uint8, faults []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q FIFO[int]
		n := int(nMsgs%20) + 1
		for i := 0; i < n; i++ {
			q.Send(i)
		}
		for _, fop := range faults {
			if q.Len() == 0 {
				break
			}
			i := rng.Intn(q.Len())
			switch fop % 2 {
			case 0:
				q.Drop(i)
			case 1:
				q.Duplicate(i)
			}
		}
		// Surviving sequence must be non-decreasing.
		prev := -1
		for _, m := range q.Snapshot() {
			if m < prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetFullMesh(t *testing.T) {
	nn := NewNet[int](4)
	if nn.N() != 4 {
		t.Fatalf("N = %d", nn.N())
	}
	eps := nn.Endpoints()
	if len(eps) != 12 {
		t.Fatalf("Endpoints = %d, want 12", len(eps))
	}
	for _, e := range eps {
		if nn.Chan(e.Src, e.Dst) == nil {
			t.Fatalf("missing channel %v", e)
		}
	}
	if nn.Chan(0, 0) != nil {
		t.Error("self channel exists")
	}
	if nn.Chan(0, 99) != nil {
		t.Error("out-of-range channel exists")
	}
}

func TestNetSendAndTotals(t *testing.T) {
	nn := NewNet[string](3)
	if !nn.Send(0, 1, "a") || !nn.Send(1, 2, "b") {
		t.Fatal("Send failed")
	}
	if nn.Send(0, 0, "self") {
		t.Error("Send to self succeeded")
	}
	if got := nn.TotalQueued(); got != 2 {
		t.Errorf("TotalQueued = %d, want 2", got)
	}
	nn.ClearAll()
	if got := nn.TotalQueued(); got != 0 {
		t.Errorf("after ClearAll: TotalQueued = %d", got)
	}
}

func TestEndpointString(t *testing.T) {
	e := Endpoint{Src: 1, Dst: 2}
	if e.String() != "1->2" {
		t.Errorf("String = %q", e.String())
	}
}
