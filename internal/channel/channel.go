// Package channel models the interprocess channels of the TME system model:
// FIFO queues subject to arbitrary-but-finite delay, whose contents faults
// may lose, duplicate, or corrupt at any time (DSN 2001, §3.1).
//
// The queues here are pure data structures; delivery timing belongs to the
// simulator (internal/sim) or the goroutine runtime (internal/runtime).
package channel

import "fmt"

// FIFO is a first-in first-out queue of messages between one ordered pair of
// processes. The zero value is an empty, usable queue.
//
// FIFO is not safe for concurrent use; the owning scheduler serializes
// access.
type FIFO[T any] struct {
	items []T
}

// Len returns the number of queued messages.
func (q *FIFO[T]) Len() int { return len(q.items) }

// Empty reports whether the queue holds no messages.
func (q *FIFO[T]) Empty() bool { return len(q.items) == 0 }

// Send enqueues m at the tail.
func (q *FIFO[T]) Send(m T) {
	q.items = append(q.items, m)
}

// Recv dequeues the head message. ok is false when the queue is empty.
func (q *FIFO[T]) Recv() (m T, ok bool) {
	if len(q.items) == 0 {
		return m, false
	}
	m = q.items[0]
	// Shift rather than re-slice so the backing array does not pin
	// delivered messages.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return m, true
}

// Peek returns the head message without removing it.
func (q *FIFO[T]) Peek() (m T, ok bool) {
	if len(q.items) == 0 {
		return m, false
	}
	return q.items[0], true
}

// At returns the i-th queued message (0 = head). It panics if i is out of
// range; callers index only within [0, Len()).
func (q *FIFO[T]) At(i int) T { return q.items[i] }

// Drop removes the i-th queued message, modelling message loss.
// It returns false if i is out of range.
func (q *FIFO[T]) Drop(i int) bool {
	if i < 0 || i >= len(q.items) {
		return false
	}
	q.items = append(q.items[:i], q.items[i+1:]...)
	return true
}

// Duplicate inserts a copy of the i-th queued message immediately after it,
// modelling message duplication. It returns false if i is out of range.
func (q *FIFO[T]) Duplicate(i int) bool {
	if i < 0 || i >= len(q.items) {
		return false
	}
	q.items = append(q.items, *new(T))
	copy(q.items[i+2:], q.items[i+1:])
	q.items[i+1] = q.items[i]
	return true
}

// Mutate applies f to the i-th queued message in place, modelling message
// corruption. It returns false if i is out of range.
func (q *FIFO[T]) Mutate(i int, f func(*T)) bool {
	if i < 0 || i >= len(q.items) {
		return false
	}
	f(&q.items[i])
	return true
}

// Clear discards every queued message (channel flush / improper init).
func (q *FIFO[T]) Clear() {
	q.items = q.items[:0]
}

// Snapshot returns a copy of the queued messages, head first.
func (q *FIFO[T]) Snapshot() []T {
	out := make([]T, len(q.items))
	copy(out, q.items)
	return out
}

// Endpoint names one directed channel: from Src to Dst.
type Endpoint struct {
	Src, Dst int
}

// String renders the endpoint as "src->dst".
func (e Endpoint) String() string { return fmt.Sprintf("%d->%d", e.Src, e.Dst) }

// Net is the full mesh of directed FIFO channels among n processes. The
// paper assumes the processes are connected; we model the complete graph,
// which both RA ME and Lamport ME require (requests go to all processes).
//
// Channels live in a dense n×n array indexed by src*n+dst, so the per-
// delivery lookup is an index computation instead of a map hash — the
// lookup sits on the simulator's hottest path.
type Net[T any] struct {
	n     int
	chans []FIFO[T] // row-major [src][dst]; the diagonal stays empty
}

// NewNet returns a network of n processes with empty channels between every
// ordered pair of distinct processes.
func NewNet[T any](n int) *Net[T] {
	return &Net[T]{n: n, chans: make([]FIFO[T], n*n)}
}

// N returns the number of processes.
func (nn *Net[T]) N() int { return nn.n }

// Chan returns the directed channel src→dst, or nil if the endpoint is
// invalid (out of range or src == dst). The returned pointer stays valid
// for the network's lifetime.
func (nn *Net[T]) Chan(src, dst int) *FIFO[T] {
	if src < 0 || src >= nn.n || dst < 0 || dst >= nn.n || src == dst {
		return nil
	}
	return &nn.chans[src*nn.n+dst]
}

// Send enqueues m on src→dst. It returns false for invalid endpoints.
func (nn *Net[T]) Send(src, dst int, m T) bool {
	q := nn.Chan(src, dst)
	if q == nil {
		return false
	}
	q.Send(m)
	return true
}

// TotalQueued returns the number of messages in flight across all channels.
func (nn *Net[T]) TotalQueued() int {
	total := 0
	for i := range nn.chans {
		total += nn.chans[i].Len()
	}
	return total
}

// ClearAll flushes every channel (the "all channels are empty" Init state).
func (nn *Net[T]) ClearAll() {
	for i := range nn.chans {
		nn.chans[i].Clear()
	}
}

// Endpoints returns every directed endpoint in deterministic order
// (src-major, then dst), for seeded fault injection and snapshots.
func (nn *Net[T]) Endpoints() []Endpoint {
	eps := make([]Endpoint, 0, nn.n*(nn.n-1))
	for i := 0; i < nn.n; i++ {
		for j := 0; j < nn.n; j++ {
			if i != j {
				eps = append(eps, Endpoint{Src: i, Dst: j})
			}
		}
	}
	return eps
}
