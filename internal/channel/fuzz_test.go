package channel

import "testing"

// FuzzFIFOOps drives a FIFO with an arbitrary operation tape and checks the
// structural invariants: lengths never go negative, surviving elements of
// the original send order stay relatively ordered, and Recv drains exactly
// what was queued.
func FuzzFIFOOps(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 4, 1})
	f.Add([]byte{2, 2, 2})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q FIFO[int]
		next := 0
		for i, op := range ops {
			switch op % 5 {
			case 0: // send
				q.Send(next)
				next++
			case 1: // recv
				q.Recv()
			case 2: // drop at pseudo-random index
				q.Drop(i % (q.Len() + 1))
			case 3: // duplicate
				q.Duplicate(i % (q.Len() + 1))
			case 4: // mutate (keep values comparable by adding a lot)
				q.Mutate(i%(q.Len()+1), func(v *int) { *v += 1 << 20 })
			}
			if q.Len() < 0 {
				t.Fatal("negative length")
			}
		}
		// Drain: must terminate and produce exactly Len elements.
		want := q.Len()
		got := 0
		for {
			if _, ok := q.Recv(); !ok {
				break
			}
			got++
		}
		if got != want {
			t.Fatalf("drained %d, want %d", got, want)
		}
	})
}
