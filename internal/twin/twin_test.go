package twin

import (
	"math"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/workload"
)

// TestProtocolConstants pins the fault-free message cost: RA spends
// 2(n-1) program messages per entry, Lamport 3(n-1), and sharding does
// not change the constant (each shard instance spans all n processes).
func TestProtocolConstants(t *testing.T) {
	for _, tc := range []struct {
		algo string
		n    int
		want float64
	}{
		{AlgoRA, 3, 4}, {AlgoRA, 5, 8}, {AlgoRA, 8, 14},
		{AlgoLamport, 3, 6}, {AlgoLamport, 5, 12},
	} {
		if got := protocolMsgsPerEntry(tc.algo, tc.n); got != tc.want {
			t.Errorf("protocolMsgsPerEntry(%s, n=%d) = %v, want %v", tc.algo, tc.n, got, tc.want)
		}
	}
	// With a huge δ the wrapper echo vanishes and MsgsPerEntry approaches
	// the protocol constant from above.
	p := Predict(Params{N: 5, Delta: 1 << 20})
	if p.MsgsPerEntry < 8 || p.MsgsPerEntry > 8.1 {
		t.Errorf("MsgsPerEntry at huge δ = %v, want ≈8", p.MsgsPerEntry)
	}
}

// TestEMaxUniform checks the exact max-expectation sums against hand
// computations.
func TestEMaxUniform(t *testing.T) {
	// Single draw: the plain mean.
	if got := eMaxUniform(1, 1, 5); math.Abs(got-3) > 1e-12 {
		t.Errorf("eMaxUniform(1,1,5) = %v, want 3", got)
	}
	// Two draws on {1..5}: E = sum x((x/5)^2-((x-1)/5)^2) = 95/25.
	if got := eMaxUniform(2, 1, 5); math.Abs(got-3.8) > 1e-12 {
		t.Errorf("eMaxUniform(2,1,5) = %v, want 3.8", got)
	}
	// Degenerate range: the constant, regardless of m.
	if got := eMaxUniform(7, 4, 4); got != 4 {
		t.Errorf("eMaxUniform(7,4,4) = %v, want 4", got)
	}
	// Round trips of degenerate legs: twice the constant.
	if got := eMaxRoundTrip(3, 2, 2); got != 4 {
		t.Errorf("eMaxRoundTrip(3,2,2) = %v, want 4", got)
	}
	// Max of round trips dominates max of single legs.
	if eMaxRoundTrip(4, 1, 5) <= eMaxUniform(4, 1, 5) {
		t.Error("round-trip max should exceed one-way max")
	}
}

// TestFirstPassage checks the renewal DP that models the polling client.
func TestFirstPassage(t *testing.T) {
	fp := newFirstPassage(Params{ThinkMin: 5, ThinkMax: 20}.withDefaults())
	// A window shorter than the minimum draw is cleared by the first tick.
	if got := fp.expect(3); got != 12.5 {
		t.Errorf("expect(3) = %v, want the single-draw mean 12.5", got)
	}
	// Longer windows never take less time, and always exceed the window.
	prev := 0.0
	for _, x := range []float64{0, 4, 10, 30, 100, 500} {
		got := fp.expect(x)
		if got < prev {
			t.Errorf("expect(%v) = %v, decreasing (prev %v)", x, got, prev)
		}
		if got <= x {
			t.Errorf("expect(%v) = %v, must exceed the window", x, got)
		}
		prev = got
	}
	// Deep in the table the overshoot settles near the renewal asymptote
	// E[T]/1 + E[T^2]/(2E[T]) − ... : expect(x) − x ∈ (mean/2, mean].
	over := fp.expect(5000) - 5000
	if over <= 6 || over > 13 {
		t.Errorf("asymptotic overshoot = %v, want within (6, 13]", over)
	}
	// Memoryless model: the residual is exactly one mean.
	open := newFirstPassage(Params{ThinkMean: 40}.withDefaults())
	if got := open.expect(17); got != 57 {
		t.Errorf("memoryless expect(17) = %v, want 57", got)
	}
}

// TestPredictShape checks qualitative laws any capacity model must obey.
func TestPredictShape(t *testing.T) {
	base := Params{N: 5, Delta: 25, ThinkMin: 5, ThinkMax: 20, Horizon: 20000}
	p := Predict(base)
	if p.Entries <= 0 || p.EntryRate <= 0 {
		t.Fatalf("degenerate prediction: %+v", p)
	}
	if p.Requests < p.Entries {
		t.Errorf("requests %v < entries %v", p.Requests, p.Entries)
	}
	if p.Utilization <= 0 || p.Utilization > 1 {
		t.Errorf("utilization %v outside (0,1]", p.Utilization)
	}
	if p.EntryRate > p.SaturationRate*1.0001 {
		t.Errorf("entry rate %v exceeds saturation %v", p.EntryRate, p.SaturationRate)
	}

	// Slower clients: fewer entries, lower utilization.
	slow := base
	slow.ThinkMin, slow.ThinkMax = 200, 400
	ps := Predict(slow)
	if ps.Entries >= p.Entries || ps.Utilization >= p.Utilization {
		t.Errorf("slower think did not reduce load: %v vs %v entries", ps.Entries, p.Entries)
	}

	// More shards: more capacity, shorter waits.
	sharded := base
	sharded.N, sharded.Shards = 16, 4
	flat := base
	flat.N = 16
	if Predict(sharded).WaitTicks >= Predict(flat).WaitTicks {
		t.Error("sharding did not shorten the predicted wait")
	}
	if Predict(sharded).SaturationRate <= Predict(flat).SaturationRate {
		t.Error("sharding did not raise the saturation ceiling")
	}

	// Larger δ: fewer resends, cheaper entries, slower recovery.
	tight, loose := base, base
	tight.Delta, loose.Delta = 5, 100
	pt, pl := Predict(tight), Predict(loose)
	if pt.WrapperMsgsPerEntry <= pl.WrapperMsgsPerEntry {
		t.Error("smaller δ should resend more")
	}
	if pt.MsgsPerEntry <= pl.MsgsPerEntry {
		t.Error("smaller δ should cost more program messages (permission echo)")
	}
	if pt.ConvergenceTicks >= pl.ConvergenceTicks {
		t.Error("smaller δ should recover faster")
	}

	// No wrapper: no resends, no recovery.
	bare := base
	bare.Delta = -1
	pb := Predict(bare)
	if pb.WrapperMsgs != 0 {
		t.Errorf("unwrapped system predicted %v wrapper msgs", pb.WrapperMsgs)
	}
	if !math.IsInf(pb.ConvergenceTicks, 1) {
		t.Errorf("unwrapped convergence = %v, want +Inf", pb.ConvergenceTicks)
	}
}

// TestConvergenceArithmetic pins the §4 recovery formula: δ-grid firing
// gap plus the expected max one-way flight.
func TestConvergenceArithmetic(t *testing.T) {
	// n=3, δ=10, fault at 11: first firing at t=20, flight E[max2 U{1..5}]
	// = 3.8 → 9 + 3.8.
	p := Predict(Params{N: 3, Delta: 10})
	if math.Abs(p.ConvergenceTicks-12.8) > 1e-9 {
		t.Errorf("conv(n=3, δ=10) = %v, want 12.8", p.ConvergenceTicks)
	}
	// δ=50: firing at t=50 → 39 + 3.8.
	p = Predict(Params{N: 3, Delta: 50})
	if math.Abs(p.ConvergenceTicks-42.8) > 1e-9 {
		t.Errorf("conv(n=3, δ=50) = %v, want 42.8", p.ConvergenceTicks)
	}
	// Eager W (δ=0): evaluated every tick, fires right after the fault.
	p = Predict(Params{N: 3, Delta: 0})
	if math.Abs(p.ConvergenceTicks-(1+3.8)) > 1e-9 {
		t.Errorf("conv(n=3, eager) = %v, want 4.8", p.ConvergenceTicks)
	}
}

// TestMaxRequestsCap checks the liveness-drain bound caps entries.
func TestMaxRequestsCap(t *testing.T) {
	p := Predict(Params{N: 4, Delta: 25, MaxRequests: 3, Horizon: 1 << 20})
	if p.Entries != 12 {
		t.Errorf("capped entries = %v, want N*MaxRequests = 12", p.Entries)
	}
}

// TestSpecMeans checks the workload-spec algebra against closed forms.
func TestSpecMeans(t *testing.T) {
	think, hold := SpecMeans(workload.UniformSpec(10, 30, 4))
	if think != 20 || hold != 4 {
		t.Errorf("UniformSpec means = (%v, %v), want (20, 4)", think, hold)
	}
	// Empty spec falls back to the default workload.
	think, hold = SpecMeans(workload.Spec{})
	if think <= 0 || hold <= 0 {
		t.Errorf("default spec means = (%v, %v)", think, hold)
	}
	// Poisson arrivals contribute MeanGap; lognormal holds exp(mu+s^2/2).
	spec := workload.Spec{Cohorts: []workload.Cohort{{
		Weight:  1,
		Arrival: workload.Arrival{Kind: workload.OpenPoisson, MeanGap: 50},
		Hold:    workload.Hold{Kind: workload.HoldLognormal, Mu: 1, Sigma: 0.5},
	}}}
	think, hold = SpecMeans(spec)
	if think != 50 {
		t.Errorf("poisson mean gap = %v, want 50", think)
	}
	want := math.Exp(1.125)
	if math.Abs(hold-want) > 1e-9 {
		t.Errorf("lognormal hold mean = %v, want %v", hold, want)
	}
	// Infinite-mean Pareto: the cap dominates.
	spec.Cohorts[0].Hold = workload.Hold{Kind: workload.HoldPareto, Alpha: 0.9, XMin: 2, Cap: 64}
	if _, hold = SpecMeans(spec); hold != 64 {
		t.Errorf("capped pareto hold mean = %v, want 64", hold)
	}
}

// TestSpecParams checks the exact-uniform vs memoryless dispatch.
func TestSpecParams(t *testing.T) {
	p := SpecParams(Params{N: 4}, workload.UniformSpec(15, 35, 2))
	if p.ThinkMin != 15 || p.ThinkMax != 35 || p.ThinkMean != 0 {
		t.Errorf("uniform spec params = %+v, want exact bounds", p)
	}
	if p.HoldMean != 2 {
		t.Errorf("hold mean = %v, want 2", p.HoldMean)
	}
	open := workload.Spec{Cohorts: []workload.Cohort{{
		Weight:  1,
		Arrival: workload.Arrival{Kind: workload.OpenPoisson, MeanGap: 80},
		Hold:    workload.Hold{Kind: workload.HoldFixed, Fixed: 3},
	}}}
	p = SpecParams(Params{N: 4}, open)
	if p.ThinkMean != 80 {
		t.Errorf("open spec ThinkMean = %v, want 80", p.ThinkMean)
	}
}

// TestSnapshot checks the obs projection: counter/gauge names, integer
// scaling, and the +Inf clamp.
func TestSnapshot(t *testing.T) {
	pr := Predict(Params{N: 5, Delta: 25, Horizon: 20000})
	s := pr.Snapshot()
	if got := s.Counter("sim_cs_entries_total"); got != round(pr.Entries) {
		t.Errorf("entries counter = %v, want %v", got, round(pr.Entries))
	}
	if got := s.Gauge("twin_msgs_per_entry_x1000", -1); got != round(pr.MsgsPerEntry*1000) {
		t.Errorf("mpe gauge = %v, want %v", got, round(pr.MsgsPerEntry*1000))
	}
	if got := s.Gauge("twin_utilization_x1000", -1); got <= 0 || got > 1000 {
		t.Errorf("utilization gauge = %v, want within (0,1000]", got)
	}
	// Unwrapped: the +Inf convergence clamps to MaxInt64.
	bare := Predict(Params{N: 5, Delta: -1})
	if got := bare.Snapshot().Gauge("twin_conv_ticks_x1000", -1); got != math.MaxInt64 {
		t.Errorf("unwrapped conv gauge = %v, want MaxInt64", got)
	}
	if round(-3) != 0 {
		t.Errorf("round(-3) = %v, want 0", round(-3))
	}
}
