// Package twin is the analytical capacity model — the repository's fourth
// execution substrate. Where sim, runtime, and wire *measure* a wrapped
// system, twin *predicts* it in closed form: expected CS entries, requests,
// and program-message cost over a horizon, W' resend volume, the
// deadlock-recovery latency of the §4 scenario, and the saturation point,
// all as functions of n, the shard count S, the wrapper timeout δ, the
// workload's think/hold parameters, and the link-delay bounds.
//
// The model mirrors the substrates' mechanics piece by piece:
//
//   - Clients are polling loops: a client tick fires every think draw and
//     issues a request only when it finds the process Thinking, so the
//     entry cycle is a renewal first passage — the expected first partial
//     sum of think draws exceeding the request→release time (solved
//     exactly on the integer grid for uniform draws, memorylessly for
//     open-loop mean-gap workloads).
//
//   - The critical section is one FCFS station per shard whose service
//     time is the hold plus one link delay (the release→grant handoff).
//     Queueing comes from exact Mean Value Analysis with a residual
//     correction for the near-deterministic service (an M/D/1-style
//     halving of the in-service remainder, scaled by the service cv²).
//
//   - An uncontended request enters after its request/permission round
//     trip to every peer: the expected max over n−1 two-leg trips, each
//     leg uniform on the integer delay range — an exact finite sum.
//
//   - Message cost needs no queueing: Ricart-Agrawala spends exactly
//     2(n−1) program messages per entry (requests out, permissions back;
//     RA has no release messages) and Lamport 3(n−1). W' resends echo:
//     a resent request provokes a permission reply, which is why measured
//     msgs/entry sits above the protocol constant at small δ.
//
//   - §4 deadlock recovery is scheduling arithmetic: W' fires on exact
//     multiples of δ, every process is hungry and mutually stale, and the
//     winner re-enters once the resent requests refresh its local copies
//     — the fault→next-firing gap plus the expected max one-way flight.
//
// Everything here is arithmetic on the parameters: no RNG, no clock, no
// substrate. The gblint layering rule for this package enforces that —
// twin may read the obs snapshot vocabulary and the workload spec algebra
// (to derive means), never a protocol, wrapper, or execution substrate.
// Predictions are exposed through the same obs-snapshot shape the
// substrates publish (Prediction.Snapshot), so the harness diffs predicted
// against measured runs with the one snapshot-diff helper.
package twin

import (
	"math"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

// Algorithm names, matching harness.Algo.String() so call sites can pass
// the measured run's own label.
const (
	AlgoRA      = "ricart-agrawala"
	AlgoLamport = "lamport"
)

// Params describes the system being predicted. Times are in abstract ticks
// — the same unit the workload draws use, so one Params predicts the
// simulator (1 tick = 1 virtual tick) and the live cluster (1 tick = 1 ms,
// harness.LiveTick) alike.
type Params struct {
	// N is the number of processes; each runs one polling client.
	N int
	// Shards is the number of independent critical sections (default 1).
	// Clients spread uniformly: contention is per shard.
	Shards int
	// Algo names the protocol (AlgoRA default, AlgoLamport). It only
	// changes the per-entry message constant.
	Algo string
	// Delta is the W' timeout δ in ticks. 0 is the eager W (evaluated
	// every tick); negative disables the wrapper (no resend volume and no
	// deadlock recovery — ConvergenceTicks becomes +Inf).
	Delta int64
	// MinDelay/MaxDelay bound the link delay, drawn uniformly on the
	// integers [MinDelay, MaxDelay]. Defaults 1 and 5 (the sim's).
	MinDelay, MaxDelay int64
	// ThinkMin/ThinkMax bound the closed-loop think draw, uniform on the
	// integers (defaults 5 and 20, the sim's client). Ignored when
	// ThinkMean is set.
	ThinkMin, ThinkMax int64
	// ThinkMean, when > 0, models an open-loop (memoryless) gap stream
	// with this mean instead of the uniform closed loop: at sub-saturation
	// load the two agree on throughput.
	ThinkMean float64
	// HoldMean is the mean CS hold time in ticks (default 3, the sim's
	// EatTime).
	HoldMean float64
	// Horizon is the predicted run length in ticks.
	Horizon int64
	// MaxRequests caps each client's requests (0 = unbounded); the sim's
	// liveness-drain bound.
	MaxRequests int
	// FaultTime is when the §4 deadlock fault lands (default 11: requests
	// at t=10, every in-flight message dropped at t=11 — the harness's
	// DeadlockFault schedule).
	FaultTime int64
}

func (p Params) withDefaults() Params {
	if p.N < 2 {
		p.N = 2
	}
	if p.Shards < 1 {
		p.Shards = 1
	}
	if p.Algo == "" {
		p.Algo = AlgoRA
	}
	if p.MinDelay <= 0 {
		p.MinDelay = 1
	}
	if p.MaxDelay < p.MinDelay {
		p.MaxDelay = 5
	}
	if p.ThinkMean <= 0 && (p.ThinkMin <= 0 || p.ThinkMax < p.ThinkMin) {
		p.ThinkMin, p.ThinkMax = 5, 20
	}
	if p.HoldMean <= 0 {
		p.HoldMean = 3
	}
	if p.Horizon <= 0 {
		p.Horizon = 20000
	}
	if p.FaultTime <= 0 {
		p.FaultTime = 11
	}
	return p
}

// Prediction is the closed-form forecast for one Params.
type Prediction struct {
	// Entries and Requests are expected totals over the horizon.
	Entries, Requests float64
	// EntryRate is expected entries per tick across all shards.
	EntryRate float64
	// MsgsPerEntry is the program-message cost per CS entry: the
	// protocol's fault-free constant plus the permission echo of W'
	// resends. ProgramMsgs is the horizon total.
	MsgsPerEntry float64
	ProgramMsgs  float64
	// WaitTicks is the expected request→entry latency.
	WaitTicks float64
	// WrapperMsgsPerEntry estimates W' resend volume: one firing per
	// δ-window spent hungry, resending to every peer not known to hold a
	// newer request. This is the model's loosest number (the stale-peer
	// count varies with timestamp interleaving); treat it as a flood
	// indicator with a stated wide tolerance, not a ≤25% prediction.
	WrapperMsgsPerEntry float64
	WrapperMsgs         float64
	// ConvergenceTicks is the expected §4 deadlock-recovery latency:
	// first W' firing after the fault plus the max one-way flight of the
	// resent requests. +Inf without a wrapper.
	ConvergenceTicks float64
	// SaturationRate is the system-wide entry-rate ceiling (entries/tick);
	// Utilization is the per-shard station load in [0,1] — how close the
	// offered load sits to that ceiling.
	SaturationRate float64
	Utilization    float64
}

// Predict solves the model for p.
func Predict(p Params) Prediction {
	p = p.withDefaults()
	dMean := float64(p.MinDelay+p.MaxDelay) / 2
	service := p.HoldMean + dMean
	clients := float64(p.N) / float64(p.Shards)
	// Residual correction: service is hold (deterministic) + one uniform
	// delay, so an arriving request sees about half the in-service
	// remainder an exponential server would show.
	cv2 := uniformVar(p.MinDelay, p.MaxDelay) / (service * service)
	uncontended := eMaxRoundTrip(p.N-1, p.MinDelay, p.MaxDelay)
	fp := newFirstPassage(p)

	// Fixed point between the queueing model and the polling cycle: the
	// station's wait lengthens the request→release window, which moves the
	// client's next request to a later think tick, which sets the think
	// stage the queueing model sees. Damped iteration converges in a few
	// dozen rounds everywhere on the sane parameter space.
	inService := p.HoldMean + uncontended
	cycle := fp.expect(inService)
	var wq, queue float64
	for i := 0; i < 64; i++ {
		think := cycle - inService
		if think < 0 {
			think = 0
		}
		resp, q := mva(clients, service, think, cv2)
		wq = resp - service
		if wq < 0 {
			wq = 0
		}
		queue = q
		next := p.HoldMean + uncontended + wq
		inService += 0.5 * (next - inService)
		cycle += 0.5 * (fp.expect(inService) - cycle)
	}

	xClient := 1 / cycle
	pred := Prediction{
		EntryRate:      xClient * float64(p.N),
		WaitTicks:      uncontended + wq,
		SaturationRate: float64(p.Shards) / service,
		Utilization:    xClient * clients * service,
	}
	pred.Entries = pred.EntryRate * float64(p.Horizon)
	if p.MaxRequests > 0 {
		if most := float64(p.N * p.MaxRequests); pred.Entries > most {
			pred.Entries = most
		}
	}
	// Requests lead entries by the clients still hungry at the horizon.
	pred.Requests = pred.Entries + queue*float64(p.Shards)

	// W' resend volume: every δ-window spent hungry fires once, resending
	// to the peers whose known request is not newer — all of them except
	// the later half of the hungry queue.
	if p.Delta > 0 {
		stale := float64(p.N-1) - queue/2
		if stale < 1 {
			stale = 1
		}
		pred.WrapperMsgsPerEntry = pred.WaitTicks / float64(p.Delta) * stale
	}
	pred.WrapperMsgs = pred.WrapperMsgsPerEntry * pred.Entries

	// Each resent request provokes one permission reply from a peer that
	// is not already ahead of the resender — the echo that lifts measured
	// msgs/entry above the protocol constant at small δ.
	echo := 2 / float64(p.N-1)
	if echo > 1 {
		echo = 1
	}
	pred.MsgsPerEntry = protocolMsgsPerEntry(p.Algo, p.N) + echo*pred.WrapperMsgsPerEntry
	pred.ProgramMsgs = pred.Entries * pred.MsgsPerEntry

	pred.ConvergenceTicks = convergenceTicks(p)
	return pred
}

// protocolMsgsPerEntry is the fault-free program-message cost of one CS
// entry. Ricart-Agrawala: n−1 requests out, n−1 permissions back, no
// release messages (permission travels in the deferred replies). Lamport:
// n−1 requests, n−1 acks, n−1 releases. Each shard's instance spans all n
// processes in this repo's design, so sharding leaves the constant alone.
func protocolMsgsPerEntry(algo string, n int) float64 {
	peers := float64(n - 1)
	if algo == AlgoLamport {
		return 3 * peers
	}
	return 2 * peers
}

// mva runs the Mean Value Analysis recursion for a closed network of one
// FCFS station (service s, squared coefficient of variation cv2) and a
// think stage z, returning the station response time and mean queue length
// at the given population (fractional populations interpolate linearly).
// The cv2 term is the deterministic-service correction: an arriving
// customer sees the in-service remainder scaled by (1+cv2)/2 rather than a
// full memoryless service.
func mva(clients, s, z float64, cv2 float64) (resp, queue float64) {
	if clients <= 0 {
		return s, 0
	}
	n := int(clients)
	frac := clients - float64(n)
	var q, x float64
	var rLo, qLo float64 // values at population n
	steps := n
	if frac > 0 {
		steps = n + 1
	}
	for k := 1; k <= steps; k++ {
		util := x * s
		if util > 1 {
			util = 1
		}
		r := s*(1+q) - util*s*(1-cv2)/2
		if r < s {
			r = s
		}
		x = float64(k) / (z + r)
		q = x * r
		if k == n {
			rLo, qLo = r, q
		}
		if k == steps {
			resp, queue = r, q
		}
	}
	if n == 0 {
		// Sub-unit population: scale the single-customer point down.
		return s, frac * queue
	}
	if frac > 0 {
		resp = rLo + frac*(resp-rLo)
		queue = qLo + frac*(queue-qLo)
	}
	return resp, queue
}

// convergenceTicks predicts the §4 deadlock-recovery latency. After the
// fault every process is hungry with every request lost and every local
// copy stale. W' evaluations land on exact multiples of δ (the substrates
// schedule wrapper ticks at t=0 with period δ), so the first corrective
// firing is at the first multiple of δ at or after FaultTime+1; every
// wrapper fires at once, and the winner re-enters when the resent requests
// have refreshed all n−1 of its local copies — the expected max one-way
// flight over the discrete uniform link delays.
func convergenceTicks(p Params) float64 {
	if p.Delta < 0 {
		return math.Inf(1)
	}
	var firstFire float64
	earliest := p.FaultTime + 1
	if p.Delta <= 1 {
		firstFire = float64(earliest) // eager W: evaluated every tick
	} else {
		k := (earliest + p.Delta - 1) / p.Delta
		firstFire = float64(k * p.Delta)
	}
	return firstFire - float64(p.FaultTime) + eMaxUniform(p.N-1, p.MinDelay, p.MaxDelay)
}

// uniformVar is the variance of the discrete uniform on [lo, hi].
func uniformVar(lo, hi int64) float64 {
	span := float64(hi - lo + 1)
	return (span*span - 1) / 12
}

// eMaxUniform is the exact expectation of the maximum of m iid discrete
// uniform [lo, hi] draws: Σ_x x·(F(x)^m − F(x−1)^m).
func eMaxUniform(m int, lo, hi int64) float64 {
	if m < 1 {
		return 0
	}
	span := float64(hi - lo + 1)
	e, prev := 0.0, 0.0
	for x := lo; x <= hi; x++ {
		c := math.Pow(float64(x-lo+1)/span, float64(m))
		e += float64(x) * (c - prev)
		prev = c
	}
	return e
}

// eMaxRoundTrip is the exact expectation of the maximum over m independent
// round trips, each the sum of two iid discrete uniform [lo, hi] legs (the
// convolution is triangular on [2lo, 2hi]).
func eMaxRoundTrip(m int, lo, hi int64) float64 {
	if m < 1 {
		return 0
	}
	span := int(hi - lo + 1)
	pmf := make([]float64, 2*span-1)
	for a := 0; a < span; a++ {
		for b := 0; b < span; b++ {
			pmf[a+b] += 1 / float64(span*span)
		}
	}
	e, cdf, prev := 0.0, 0.0, 0.0
	for i, q := range pmf {
		cdf += q
		c := math.Pow(cdf, float64(m))
		e += float64(2*lo+int64(i)) * (c - prev)
		prev = c
	}
	return e
}

// firstPassage answers the polling question: client ticks recur with iid
// think gaps, a request is issued at the first tick after the
// request→release window closes — what is the expected time of that tick?
type firstPassage struct {
	mean float64
	// h[x] is the expected first partial sum of uniform integer draws
	// strictly exceeding x; nil for the memoryless (open-loop) model.
	h        []float64
	lo, span int64
}

// fpTable bounds the exact first-passage grid; far beyond any sane
// request→release window, and past it the asymptotic form is exact enough.
const fpTable = 1 << 14

func newFirstPassage(p Params) *firstPassage {
	if p.ThinkMean > 0 {
		return &firstPassage{mean: p.ThinkMean}
	}
	lo, hi := p.ThinkMin, p.ThinkMax
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	span := hi - lo + 1
	f := &firstPassage{mean: float64(lo+hi) / 2, lo: lo, span: span}
	f.h = make([]float64, fpTable)
	prob := 1 / float64(span)
	for x := int64(0); x < fpTable; x++ {
		v := f.mean // every draw's own contribution
		for t := lo; t <= hi && t <= x; t++ {
			v += prob * f.h[x-t]
		}
		f.h[x] = v
	}
	return f
}

// expect returns the expected first tick-sum strictly exceeding x.
func (f *firstPassage) expect(x float64) float64 {
	if x <= 0 {
		return f.mean
	}
	if f.h == nil {
		return x + f.mean // memoryless gaps: the residual is a full mean
	}
	i := int64(x)
	if i < fpTable {
		return f.h[i]
	}
	// Asymptotic renewal form: overshoot E[T²]/(2E[T]) past the window.
	varT := uniformVar(f.lo, f.lo+f.span-1)
	return x + (varT+f.mean*f.mean)/(2*f.mean)
}

// SpecMeans derives the think/hold means the model needs from a workload
// spec, weighting cohorts by their client share. Open-loop shapes
// contribute their mean inter-arrival gap; heavy-tailed holds use their
// closed-form means (capped draws are approximated by the uncapped mean —
// caps exist to drain liveness obligations, not to reshape the mass).
func SpecMeans(spec workload.Spec) (thinkMean, holdMean float64) {
	if len(spec.Cohorts) == 0 {
		spec = workload.DefaultSpec()
	}
	total := 0.0
	for _, c := range spec.Cohorts {
		w := float64(c.Weight)
		if w < 1 {
			w = 1
		}
		total += w
		thinkMean += w * arrivalMean(c.Arrival)
		holdMean += w * holdMeanOf(c.Hold)
	}
	return thinkMean / total, holdMean / total
}

// SpecParams fills the workload-shaped fields of a Params from a spec: the
// exact uniform bounds when every cohort is one closed uniform loop (the
// first-passage grid is exact there), the memoryless mean otherwise.
func SpecParams(p Params, spec workload.Spec) Params {
	if len(spec.Cohorts) == 0 {
		spec = workload.DefaultSpec()
	}
	uniform := true
	for _, c := range spec.Cohorts {
		if c.Arrival.Kind != workload.ClosedUniform && c.Arrival.Kind != 0 {
			uniform = false
		}
	}
	think, hold := SpecMeans(spec)
	p.HoldMean = hold
	if uniform && len(spec.Cohorts) == 1 {
		p.ThinkMin = spec.Cohorts[0].Arrival.ThinkMin
		p.ThinkMax = spec.Cohorts[0].Arrival.ThinkMax
		p.ThinkMean = 0
	} else {
		p.ThinkMean = think
	}
	return p
}

// arrivalMean is the mean gap of one arrival shape.
func arrivalMean(a workload.Arrival) float64 {
	switch a.Kind {
	case workload.OpenPoisson:
		return a.MeanGap
	case workload.OpenBursty:
		// Rate averages over the on/off duty cycle.
		on, off := float64(a.On), float64(a.Off)
		if on <= 0 || a.BurstGap <= 0 {
			return a.MeanGap
		}
		return a.BurstGap * (on + off) / on
	case workload.OpenDiurnal:
		// The curve multiplies the rate; its mean multiplies the gap back.
		if len(a.Curve) == 0 {
			return a.MeanGap
		}
		sum := 0.0
		for _, c := range a.Curve {
			sum += c
		}
		if sum == 0 {
			return a.MeanGap
		}
		return a.MeanGap * float64(len(a.Curve)) / sum
	case workload.ClosedUniform:
		return float64(a.ThinkMin+a.ThinkMax) / 2
	default: // zero value: the sim's built-in think draw
		return float64(a.ThinkMin+a.ThinkMax) / 2
	}
}

// holdMeanOf is the mean of one hold distribution.
func holdMeanOf(h workload.Hold) float64 {
	switch h.Kind {
	case workload.HoldUniform:
		return float64(h.Min+h.Max) / 2
	case workload.HoldLognormal:
		return math.Exp(h.Mu + h.Sigma*h.Sigma/2)
	case workload.HoldPareto:
		if h.Alpha > 1 {
			return h.XMin * h.Alpha / (h.Alpha - 1)
		}
		// Infinite-mean tail: the cap is the only thing keeping draws
		// finite, so it dominates the mean.
		return float64(h.Cap)
	case workload.HoldFixed:
		return float64(h.Fixed)
	default: // zero value: fixed hold of h.Fixed ticks
		return float64(h.Fixed)
	}
}

// Snapshot renders the prediction in the substrates' obs-snapshot shape:
// the sim's counter names for the quantities the sim counts, twin_* gauges
// for the model-only quantities. Rates and ratios are scaled (×1000) into
// integers, matching the snapshot's int64-only vocabulary.
func (pr Prediction) Snapshot() *obs.Snapshot {
	s := obs.NewSnapshot()
	s.Counters["sim_cs_entries_total"] = round(pr.Entries)
	s.Counters["sim_requests_total"] = round(pr.Requests)
	s.Counters["sim_msgs_program_total"] = round(pr.ProgramMsgs)
	s.Counters["sim_msgs_wrapper_total"] = round(pr.WrapperMsgs)
	s.Gauges["twin_entry_rate_per_ktick"] = round(pr.EntryRate * 1000)
	s.Gauges["twin_msgs_per_entry_x1000"] = round(pr.MsgsPerEntry * 1000)
	s.Gauges["twin_wrapper_msgs_per_entry_x1000"] = round(pr.WrapperMsgsPerEntry * 1000)
	s.Gauges["twin_wait_ticks_x1000"] = round(pr.WaitTicks * 1000)
	s.Gauges["twin_conv_ticks_x1000"] = round(pr.ConvergenceTicks * 1000)
	s.Gauges["twin_saturation_per_ktick"] = round(pr.SaturationRate * 1000)
	s.Gauges["twin_utilization_x1000"] = round(pr.Utilization * 1000)
	return s
}

// round converts a prediction to the snapshot's integer vocabulary,
// clamping the +Inf convergence of unwrapped systems to MaxInt64.
func round(v float64) int64 {
	if math.IsInf(v, 1) || v >= math.MaxInt64 {
		return math.MaxInt64
	}
	if v <= 0 {
		return 0
	}
	return int64(v + 0.5)
}
