package sim

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/lamport"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

func raFactory(id, n int) tme.Node      { return ra.New(id, n) }
func lamportFactory(id, n int) tme.Node { return lamport.New(id, n) }

func TestNewValidatesConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New did not panic without NewNode")
		}
	}()
	New(Config{N: 2})
}

func TestWorkloadRunRA(t *testing.T) {
	s := New(Config{N: 4, Seed: 1, NewNode: raFactory, Workload: true})
	s.Run(2000)
	m := s.Metrics()
	if len(m.Entries) == 0 {
		t.Fatal("no CS entries in a fault-free workload run")
	}
	if m.Requests == 0 || m.Releases == 0 {
		t.Fatalf("requests=%d releases=%d", m.Requests, m.Releases)
	}
	// Fault-free: every request eventually enters (within slack).
	if len(m.Entries) < m.Requests-4 {
		t.Errorf("entries=%d far below requests=%d", len(m.Entries), m.Requests)
	}
	if m.MsgsByKind(tme.Request) == 0 || m.MsgsByKind(tme.Reply) == 0 {
		t.Error("expected request and reply traffic")
	}
}

func TestWorkloadRunLamport(t *testing.T) {
	s := New(Config{N: 4, Seed: 2, NewNode: lamportFactory, Workload: true})
	s.Run(2000)
	m := s.Metrics()
	if len(m.Entries) == 0 {
		t.Fatal("no CS entries")
	}
	if m.MsgsByKind(tme.Release) == 0 {
		t.Error("lamport run has no release messages")
	}
}

// Mutual exclusion holds in fault-free runs: no two processes eat at once.
func TestFaultFreeMutualExclusion(t *testing.T) {
	for name, factory := range map[string]func(int, int) tme.Node{
		"ra": raFactory, "lamport": lamportFactory,
	} {
		s := New(Config{N: 5, Seed: 3, NewNode: factory, Workload: true})
		s.SetObserver(func(s *Sim) {
			eating := 0
			for i := 0; i < s.N(); i++ {
				if s.Node(i).Phase() == tme.Eating {
					eating++
				}
			}
			if eating > 1 {
				t.Errorf("%s: %d processes eating at t=%d", name, eating, s.Now())
				s.Stop()
			}
		})
		s.Run(3000)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int, int) {
		s := New(Config{N: 4, Seed: 99, NewNode: raFactory, Workload: true})
		s.Run(1500)
		m := s.Metrics()
		var lastEntry int64
		if len(m.Entries) > 0 {
			lastEntry = m.Entries[len(m.Entries)-1].Time
		}
		return lastEntry, len(m.Entries), m.ProgramMsgs
	}
	t1, e1, p1 := run()
	t2, e2, p2 := run()
	if t1 != t2 || e1 != e2 || p1 != p2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", t1, e1, p1, t2, e2, p2)
	}
	// A different seed should (essentially always) differ somewhere.
	s := New(Config{N: 4, Seed: 100, NewNode: raFactory, Workload: true})
	s.Run(1500)
	if s.Metrics().ProgramMsgs == p1 && len(s.Metrics().Entries) == e1 {
		t.Log("different seed produced identical coarse metrics (possible but unlikely)")
	}
}

func TestFIFODeliveryOrder(t *testing.T) {
	// Deliveries pop channel heads, so per-channel order is FIFO even
	// though delivery delays vary.
	s := New(Config{N: 2, Seed: 7, NewNode: raFactory, MinDelay: 1, MaxDelay: 10})
	var delivered []tme.Message
	// Wrap node 1 observations via observer reading Delivered counter is
	// not enough; instead send distinguishable messages directly.
	s.At(0, func(s *Sim) {
		for i := 0; i < 5; i++ {
			ts := ltime.Timestamp{Clock: uint64(i + 1), PID: 0}
			s.send([]tme.Message{{Kind: tme.Reply, TS: ts, From: 0, To: 1}}, false)
		}
	})
	s.SetObserver(func(s *Sim) {
		// After each event, record node 1's view of 0's timestamp.
		ts, _ := s.Node(1).LocalREQ(0)
		if len(delivered) == 0 || delivered[len(delivered)-1].TS != ts {
			delivered = append(delivered, tme.Message{TS: ts})
		}
	})
	s.Run(100)
	for i := 1; i < len(delivered); i++ {
		if delivered[i].TS.Less(delivered[i-1].TS) {
			t.Fatalf("LocalREQ regressed: %v after %v (FIFO broken)",
				delivered[i].TS, delivered[i-1].TS)
		}
	}
	if s.Metrics().Delivered != 5 {
		t.Errorf("Delivered = %d, want 5", s.Metrics().Delivered)
	}
}

func TestManualRequestRelease(t *testing.T) {
	s := New(Config{N: 3, Seed: 5, NewNode: raFactory})
	s.Request(0)
	s.Run(100)
	if s.Node(0).Phase() != tme.Eating {
		t.Fatalf("node 0 phase = %v, want eating", s.Node(0).Phase())
	}
	if len(s.Metrics().Entries) != 1 {
		t.Fatalf("entries = %d", len(s.Metrics().Entries))
	}
	s.Release(0)
	s.Run(200)
	if s.Node(0).Phase() != tme.Thinking {
		t.Fatalf("after release phase = %v", s.Node(0).Phase())
	}
}

func TestWrapperMessagesAttributed(t *testing.T) {
	s := New(Config{
		N:       2,
		Seed:    8,
		NewNode: raFactory,
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.NewTimed(0) // eager W: fires every tick
		},
	})
	// Make node 0 hungry with its requests lost: drop them right away.
	s.Request(0)
	s.At(1, func(s *Sim) {
		s.Net().Chan(0, 1).Clear()
	})
	s.Run(50)
	if s.Metrics().WrapperMsgs == 0 {
		t.Error("wrapper sent no messages despite a stale local copy")
	}
	if s.Metrics().ProgramMsgs == 0 {
		t.Error("program messages not counted")
	}
}

// The paper's §4 scenario end-to-end: both requests dropped, unwrapped runs
// deadlock, wrapped runs recover. This is the headline behavioural claim
// (Theorem 8) at the simulator level.
func TestDeadlockWithoutWrapperRecoveryWithWrapper(t *testing.T) {
	scenario := func(withWrapper bool) *Sim {
		cfg := Config{N: 2, Seed: 11, NewNode: raFactory}
		if withWrapper {
			cfg.NewWrapper = func(int) wrapper.Level2 { return wrapper.NewTimed(5) }
		}
		s := New(cfg)
		s.Request(0)
		s.Request(1)
		// Drop every request in flight shortly after issue.
		s.At(1, func(s *Sim) {
			s.Net().Chan(0, 1).Clear()
			s.Net().Chan(1, 0).Clear()
		})
		s.Run(500)
		return s
	}

	bare := scenario(false)
	if n := len(bare.Metrics().Entries); n != 0 {
		t.Fatalf("unwrapped: %d entries, want deadlock (0)", n)
	}
	if bare.Node(0).Phase() != tme.Hungry || bare.Node(1).Phase() != tme.Hungry {
		t.Fatal("unwrapped: processes should be stuck hungry")
	}

	wrapped := scenario(true)
	if n := len(wrapped.Metrics().Entries); n == 0 {
		t.Fatal("wrapped: no recovery — wrapper failed to resolve the deadlock")
	}
}

func TestLevel1WrapperRuns(t *testing.T) {
	s := New(Config{
		N:       2,
		Seed:    13,
		NewNode: raFactory,
		Level1:  wrapper.PhaseGuard{},
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.NewTimed(3)
		},
		Workload: true,
	})
	// Break node 0's phase mid-run; PhaseGuard must repair it and the
	// workload continue.
	s.At(50, func(s *Sim) {
		s.Node(0).(tme.Corruptible).Corrupt(tme.Corruption{Phase: tme.Phase(7)})
	})
	s.Run(2000)
	if !s.Node(0).Phase().Valid() {
		t.Fatal("phase still invalid at horizon")
	}
	var node0After int
	for _, e := range s.Metrics().Entries {
		if e.ID == 0 && e.Time > 50 {
			node0After++
		}
	}
	if node0After == 0 {
		t.Error("node 0 never re-entered CS after phase repair")
	}
}

// Regression: a corrupted node that receives no messages must still be
// repaired — level-1 runs on the periodic ticks, not only on deliveries.
// (Found by BenchmarkLevel1Ablation at a seed whose run was quiescent at
// the moment of corruption.)
func TestLevel1RepairsQuiescentNode(t *testing.T) {
	s := New(Config{
		N:       2,
		Seed:    1,
		NewNode: raFactory,
		Level1:  wrapper.PhaseGuard{},
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.NewTimed(5)
		},
		WrapperEvery: 5,
	})
	// No workload, no messages: corrupt both nodes while fully quiescent.
	s.At(10, func(s *Sim) {
		for i := 0; i < s.N(); i++ {
			s.Node(i).(tme.Corruptible).Corrupt(tme.Corruption{Phase: tme.Phase(9)})
		}
	})
	s.Run(100)
	for i := 0; i < s.N(); i++ {
		if !s.Node(i).Phase().Valid() {
			t.Fatalf("node %d phase still invalid with no traffic", i)
		}
	}
}

func TestAtClampsPastTimes(t *testing.T) {
	s := New(Config{N: 1, Seed: 1, NewNode: raFactory})
	fired := int64(-1)
	s.At(5, func(s *Sim) {
		s.At(2, func(s *Sim) { fired = s.Now() }) // in the past
	})
	s.Run(100)
	if fired != 5 {
		t.Errorf("past event fired at %d, want clamped to 5", fired)
	}
}

func TestSnapshot(t *testing.T) {
	s := New(Config{N: 3, Seed: 17, NewNode: raFactory})
	s.Request(1)
	s.Run(0) // process only the request event at t=0
	g := s.Snapshot()
	if len(g.Nodes) != 3 {
		t.Fatalf("snapshot nodes = %d", len(g.Nodes))
	}
	if g.Nodes[1].Phase != tme.Hungry {
		t.Errorf("node 1 snapshot phase = %v", g.Nodes[1].Phase)
	}
	if len(g.InFlight) != 2 {
		t.Errorf("in flight = %d, want 2 requests", len(g.InFlight))
	}
	if got := g.Eating(); len(got) != 0 {
		t.Errorf("Eating = %v", got)
	}
}

func TestMaxRequestsCapsWorkload(t *testing.T) {
	s := New(Config{N: 2, Seed: 19, NewNode: raFactory, Workload: true, MaxRequests: 3})
	s.Run(100000)
	if s.Metrics().Requests > 6 {
		t.Errorf("requests = %d, want ≤ 6", s.Metrics().Requests)
	}
	if s.Metrics().Requests < 6 {
		t.Errorf("requests = %d, want 6 (cap should be reached)", s.Metrics().Requests)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(Config{N: 2, Seed: 23, NewNode: raFactory, Workload: true})
	count := 0
	s.SetObserver(func(s *Sim) {
		count++
		if count == 10 {
			s.Stop()
		}
	})
	s.Run(1 << 40)
	if count != 10 {
		t.Errorf("processed %d events after Stop", count)
	}
}

func TestStringSummary(t *testing.T) {
	s := New(Config{N: 2, Seed: 29, NewNode: raFactory})
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSendDropsMalformedMessages(t *testing.T) {
	s := New(Config{N: 2, Seed: 31, NewNode: raFactory})
	s.At(0, func(s *Sim) {
		s.send([]tme.Message{
			{From: -1, To: 0},
			{From: 0, To: 5},
			{From: 1, To: 1},
		}, false)
	})
	s.Run(10)
	if s.Metrics().ProgramMsgs != 0 {
		t.Errorf("malformed messages counted: %d", s.Metrics().ProgramMsgs)
	}
	if s.Net().TotalQueued() != 0 {
		t.Error("malformed messages queued")
	}
}

func TestScheduleDeliveryOnEmptyChannelIsNoop(t *testing.T) {
	s := New(Config{N: 2, Seed: 37, NewNode: raFactory})
	s.ScheduleDelivery(channel.Endpoint{Src: 0, Dst: 1}, 1)
	s.Run(10)
	if s.Metrics().Delivered != 0 {
		t.Error("delivered from an empty channel")
	}
}

// fixedStream is a deterministic ClientStream for hook tests.
type fixedStream struct {
	think, hold int64
	open        bool
}

func (f *fixedStream) NextThink() int64 { return f.think }
func (f *fixedStream) NextHold() int64  { return f.hold }
func (f *fixedStream) Open() bool       { return f.open }

// The NewClient hook replaces the built-in uniform draws: a closed-loop
// stream with fixed think/hold drives the run, and its hold time is
// honored (every meal lasts exactly the drawn ticks, not cfg.EatTime).
func TestNewClientHookDrivesDraws(t *testing.T) {
	s := New(Config{
		N: 3, Seed: 1, NewNode: raFactory, Workload: true,
		MaxRequests: 5, EatTime: 1,
		NewClient: func(id int) ClientStream {
			return &fixedStream{think: 7, hold: 4}
		},
	})
	var mealStart [8]int64
	s.SetObserver(func(s *Sim) {
		for i := 0; i < s.N(); i++ {
			if s.Node(i).Phase() == tme.Eating {
				if mealStart[i] == 0 {
					mealStart[i] = s.Now()
				}
			} else if mealStart[i] != 0 {
				if d := s.Now() - mealStart[i]; d < 4 {
					t.Errorf("node %d meal lasted %d ticks, want >= 4 (stream hold)", i, d)
				}
				mealStart[i] = 0
			}
		}
	})
	s.Run(5000)
	m := s.Metrics()
	if len(m.Entries) != 15 {
		t.Fatalf("entries=%d, want 15 (3 clients x 5 requests)", len(m.Entries))
	}
}

// An open-loop stream issues arrivals on its own clock: arrivals landing
// while the client is hungry or eating queue in pending and drain on
// release, so the request budget is still spent in full.
func TestOpenLoopArrivalsQueueAndDrain(t *testing.T) {
	s := New(Config{
		N: 3, Seed: 1, NewNode: raFactory, Workload: true,
		MaxRequests: 6,
		// Arrivals every 2 ticks against 5-tick meals: most arrivals find
		// the client busy and must queue.
		NewClient: func(id int) ClientStream {
			return &fixedStream{think: 2, hold: 5, open: true}
		},
	})
	s.Run(8000)
	m := s.Metrics()
	if m.Requests != 18 {
		t.Fatalf("requests=%d, want 18 (3 clients x 6 budget)", m.Requests)
	}
	if len(m.Entries) != 18 {
		t.Fatalf("entries=%d, want every queued arrival served", len(m.Entries))
	}
}

// Without NewClient the historical uniform path runs bit-for-bit: the hook
// being nil must not change anything (the golden metrics tests pin the
// exact bytes; this is the cheap in-package guard).
func TestNilNewClientKeepsLegacyPath(t *testing.T) {
	run := func(hook func(int) ClientStream) (int, int) {
		s := New(Config{N: 4, Seed: 11, NewNode: raFactory, Workload: true,
			MaxRequests: 8, NewClient: hook})
		s.Run(5000)
		return len(s.Metrics().Entries), s.Metrics().ProgramMsgs
	}
	e1, p1 := run(nil)
	e2, p2 := run(nil)
	if e1 != e2 || p1 != p2 {
		t.Fatalf("legacy path nondeterministic: (%d,%d) vs (%d,%d)", e1, p1, e2, p2)
	}
}
