// Package sim is the TME system model of DSN 2001 §3.1 — asynchronous
// processes communicating over FIFO channels with arbitrary-but-finite
// delays — built on the deterministic discrete-event core in
// internal/engine. It is the paper's (unstated) testbed, rebuilt: every
// run is a pure function of its configuration and seed, so experiments are
// reproducible and convergence can be measured in virtual time.
//
// The simulator drives tme.Node implementations (internal/ra,
// internal/lamport), optionally composes each with a graybox wrapper
// (internal/wrapper) — realizing the M ▯ W composition operationally — and
// exposes hooks for the fault injector (internal/fault) and for spec
// monitors (internal/lspec) via per-event observers.
//
// The hot path is allocation-free in steady state: scheduled occurrences
// are typed engine event records (no closure per event) interpreted by the
// dispatch switch, and observers can keep snapshots current with
// SnapshotDeltaInto, which reobserves only the processes and channels that
// changed since the observer last looked.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/engine"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// Config parameterizes a simulation. NewNode and N are required; zero
// values elsewhere select sensible defaults (see field comments).
type Config struct {
	// N is the number of processes (required, ≥ 1).
	N int
	// Seed drives every random choice in the run.
	Seed int64
	// NewNode constructs process id of n (required): ra.New, lamport.New,
	// or any other tme.Node implementation.
	NewNode func(id, n int) tme.Node
	// NewWrapper, when non-nil, attaches a level-2 wrapper to each
	// process, realizing M ▯ W. Called once per process id.
	NewWrapper func(id int) wrapper.Level2
	// Level1, when non-nil, is the level-1 wrapper run on each process
	// after every event at it.
	Level1 wrapper.Level1
	// WrapperEvery is the cadence (virtual ticks) of wrapper timer
	// events; default 1. Only meaningful when NewWrapper is set.
	WrapperEvery int64
	// MinDelay and MaxDelay bound per-message transmission delay in
	// virtual ticks. Defaults: 1 and 5.
	MinDelay, MaxDelay int64
	// Workload, when true, runs a closed-loop client at every process:
	// think, request, eat, release, repeat.
	Workload bool
	// ThinkMin/ThinkMax bound think time. Defaults: 5 and 20.
	ThinkMin, ThinkMax int64
	// EatTime is how long a process eats before releasing. Default 3.
	EatTime int64
	// NewClient, when non-nil (and Workload is on), replaces the built-in
	// uniform client at each process with the returned draw stream —
	// internal/workload plugs in here. The default nil keeps the master-rng
	// draw path bit-for-bit identical to the historical behavior, which the
	// golden metrics tests pin. Open-loop streams (Open() true) arrive
	// independently of service: arrivals that find the client busy queue
	// and drain on release.
	NewClient func(id int) ClientStream
	// MaxRequests caps requests issued per process (0 = unlimited).
	MaxRequests int
	// Obs, when non-nil, receives metrics and trace events for the run.
	// The nil default costs only no-op calls on nil instruments.
	Obs *obs.Obs
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MinDelay == 0 && out.MaxDelay == 0 {
		out.MinDelay, out.MaxDelay = 1, 5
	}
	if out.MaxDelay < out.MinDelay {
		out.MaxDelay = out.MinDelay
	}
	if out.WrapperEvery <= 0 {
		out.WrapperEvery = 1
	}
	if out.ThinkMin == 0 && out.ThinkMax == 0 {
		out.ThinkMin, out.ThinkMax = 5, 20
	}
	if out.ThinkMax < out.ThinkMin {
		out.ThinkMax = out.ThinkMin
	}
	if out.EatTime <= 0 {
		out.EatTime = 3
	}
	return out
}

// ClientStream is one client's workload draw stream, defined here (rather
// than importing internal/workload) so the simulator stays a leaf the
// workload layer can build on. workload.Client satisfies it structurally.
// All values are in virtual ticks.
type ClientStream interface {
	// NextThink returns the next gap: release-to-request think time for a
	// closed-loop client, arrival-to-arrival gap for an open-loop one.
	NextThink() int64
	// NextHold returns the next CS hold (eat) time.
	NextHold() int64
	// Open reports whether the stream is an open-loop arrival source.
	Open() bool
}

// Entry records one CS entry.
type Entry struct {
	// Time is the virtual time of the entry.
	Time int64
	// ID is the entering process.
	ID int
	// REQ is the request timestamp it entered with.
	REQ ltime.Timestamp
}

// Metrics accumulates counters over a run.
type Metrics struct {
	// Entries lists every CS entry in order.
	Entries []Entry
	// ProgramMsgs and WrapperMsgs count messages by origin.
	ProgramMsgs, WrapperMsgs int
	// kindCounts counts sent messages by kind (program + wrapper),
	// indexed by kindSlot. A fixed array instead of a map keeps the send
	// path allocation- and hash-free; read through MsgsByKind.
	kindCounts [4]int
	// Delivered counts messages actually delivered.
	Delivered int
	// Requests and Releases count client actions performed.
	Requests, Releases int
	// Events counts processed simulator events.
	Events int64
}

// MsgsByKind returns the number of sent messages of kind k (program +
// wrapper). Invalid kinds share one slot.
func (m *Metrics) MsgsByKind(k tme.Kind) int { return m.kindCounts[kindSlot(k)] }

// GlobalState is a plain-data snapshot of the whole system, consumed by
// spec monitors.
type GlobalState struct {
	// Time is the snapshot's virtual time.
	Time int64
	// Nodes holds one SpecState per process, indexed by id.
	Nodes []tme.SpecState
	// InFlight holds all queued messages, in deterministic endpoint
	// order, head first per channel.
	InFlight []tme.Message
}

// Eating returns the ids of processes currently eating. It allocates;
// monitors on the per-event path use NumEating instead.
func (g *GlobalState) Eating() []int {
	var out []int
	for _, s := range g.Nodes {
		if s.Phase == tme.Eating {
			out = append(out, s.ID)
		}
	}
	return out
}

// NumEating returns how many processes are currently eating, without
// allocating (ME1 only needs the count).
func (g *GlobalState) NumEating() int {
	n := 0
	for i := range g.Nodes {
		if g.Nodes[i].Phase == tme.Eating {
			n++
		}
	}
	return n
}

// Observer is called after every processed event with the up-to-date
// simulation. Observers may read state (Snapshot, Node, Now) but must not
// mutate the simulation.
type Observer func(s *Sim)

// The typed event kinds of the TME hot path. Every recurring occurrence
// (delivery, client tick, wrapper tick, release) is a plain engine record
// dispatched by a switch; only the rare path — At, used by fault injectors
// and tests — carries a closure (engine.KindFunc).
//
//gblint:kindset sim-ev
const (
	// evDeliver pops the head of channel a→b into node b.
	evDeliver uint8 = iota + 1
	// evClientTick runs the closed-loop client at node a.
	evClientTick
	// evWrapperTick fires node a's level-2 wrapper.
	evWrapperTick
	// evRequest performs the client "Request CS" action at node a.
	evRequest
	// evRelease performs the client "Release CS" action at node a.
	evRelease
)

// Sim is one simulation instance. Construct with New, then Run.
type Sim struct {
	cfg      Config
	core     *engine.Core
	mesh     *engine.Mesh[tme.Message]
	rng      *rand.Rand // the core's master stream, cached
	nodes    []tme.Node
	wrappers []wrapper.Level2
	net      *channel.Net[tme.Message]
	requests []int          // requests issued per node
	relPend  []bool         // release scheduled and not yet performed, per node
	clients  []ClientStream // per-process draw streams; nil without NewClient
	pending  []int          // open-loop arrivals queued while the client was busy
	lastReq  []int64        // time of each client's outstanding request (-1 = none)
	manual   []bool         // nodes whose releases an external coordinator owns
	metrics  Metrics
	observer Observer
	ins      instruments

	// onEntry/onRelease are the sharded coordinator's harvest hooks. They
	// fire inside the event loop, so in a parallel shard window they must
	// write only shard-confined state (the coordinator's per-shard buffer).
	onEntry   func(node int, t int64)
	onRelease func(node int, t int64)

	// Dirty tracking for incremental snapshots: a version counter per
	// node, one for the whole network, and a global generation bumped
	// whenever an At-closure ran (closures may mutate anything, so they
	// invalidate everything). Together these are a compressed delta log:
	// an observer holding SnapVersions can tell exactly which processes
	// and whether any channel changed since it last synchronized.
	verGlobal uint64
	verNet    uint64
	verNodes  []uint64
}

// instruments caches the simulator's obs handles. Every field is nil when
// observability is off, so publishing degrades to nil-receiver no-ops.
type instruments struct {
	obs        *obs.Obs
	trace      *obs.Trace
	conv       *obs.Convergence
	fair       *obs.Fairness
	progMsgs   *obs.Counter
	wrapMsgs   *obs.Counter
	byKind     [4]*obs.Counter // indexed by tme.Kind; slot 0 catches invalid kinds
	delivered  *obs.Counter
	lost       *obs.Counter
	entries    *obs.Counter
	requests   *obs.Counter
	releases   *obs.Counter
	repairs    *obs.Counter
	events     *obs.Counter
	simTime    *obs.Gauge
	entryGap   *obs.Histogram // virtual ticks between consecutive CS entries
	lastEntry  int64
	haveEntry  bool
	kindDetail [4]string // static labels for trace events (no per-event alloc)
}

func newInstruments(o *obs.Obs) instruments {
	ins := instruments{obs: o}
	if o == nil {
		return ins
	}
	r := o.Registry()
	ins.trace = o.Tracer()
	ins.conv = o.Convergence()
	ins.fair = o.Fairness()
	ins.progMsgs = r.Counter("sim_msgs_program_total", "messages sent by the programs")
	ins.wrapMsgs = r.Counter("sim_msgs_wrapper_total", "messages sent by wrappers")
	ins.byKind[0] = r.Counter("sim_msgs_kind_invalid_total", "messages sent with an invalid kind")
	ins.byKind[tme.Request] = r.Counter("sim_msgs_kind_request_total", "request messages sent")
	ins.byKind[tme.Reply] = r.Counter("sim_msgs_kind_reply_total", "reply messages sent")
	ins.byKind[tme.Release] = r.Counter("sim_msgs_kind_release_total", "release messages sent")
	ins.delivered = r.Counter("sim_msgs_delivered_total", "messages delivered")
	ins.lost = r.Counter("sim_delivery_misses_total", "delivery opportunities that found the channel empty (message lost to a fault)")
	ins.entries = r.Counter("sim_cs_entries_total", "critical-section entries")
	ins.requests = r.Counter("sim_requests_total", "client CS requests")
	ins.releases = r.Counter("sim_releases_total", "client CS releases")
	ins.repairs = r.Counter("sim_level1_repairs_total", "level-1 wrapper in-place repairs")
	ins.events = r.Counter("sim_events_total", "simulator events processed")
	ins.simTime = r.Gauge("sim_time", "current virtual time")
	ins.entryGap = r.Histogram("sim_entry_gap_ticks", "virtual ticks between consecutive CS entries",
		[]int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
	ins.kindDetail = [4]string{"invalid", "request", "reply", "release"}
	return ins
}

// kindSlot maps a message kind to its counter slot (0 for invalid kinds).
func kindSlot(k tme.Kind) int {
	if k == tme.Request || k == tme.Reply || k == tme.Release {
		return int(k)
	}
	return 0
}

// New constructs a simulator from cfg. It panics only on a nil NewNode or
// non-positive N (programming errors, not runtime conditions).
func New(cfg Config) *Sim {
	if cfg.N < 1 || cfg.NewNode == nil {
		panic("sim: Config.N and Config.NewNode are required")
	}
	c := cfg.withDefaults()
	core := engine.New(c.Seed)
	mesh := engine.NewMesh[tme.Message](core, c.N, c.MinDelay, c.MaxDelay, evDeliver)
	s := &Sim{
		cfg:       c,
		core:      core,
		mesh:      mesh,
		rng:       core.RNG(),
		nodes:     make([]tme.Node, c.N),
		net:       mesh.Net(),
		requests:  make([]int, c.N),
		relPend:   make([]bool, c.N),
		manual:    make([]bool, c.N),
		verGlobal: 1,
		verNodes:  make([]uint64, c.N),
	}
	s.ins = newInstruments(c.Obs)
	core.SetHandler(s.dispatch)
	core.SetAfterEvent(s.afterEvent)
	if c.Workload && c.MaxRequests > 0 {
		// One entry per granted request is the common shape; pre-sizing
		// keeps append from reallocating on the hot path.
		s.metrics.Entries = make([]Entry, 0, c.N*c.MaxRequests)
	}
	for i := range s.nodes {
		s.nodes[i] = c.NewNode(i, c.N)
	}
	if c.NewWrapper != nil {
		s.wrappers = make([]wrapper.Level2, c.N)
		for i := range s.wrappers {
			s.wrappers[i] = wrapper.InstrumentLevel2(c.Obs, i, c.NewWrapper(i))
			s.core.Schedule(0, evWrapperTick, int32(i), 0)
		}
	}
	if c.Workload {
		if c.NewClient != nil {
			s.clients = make([]ClientStream, c.N)
			s.pending = make([]int, c.N)
			for i := range s.clients {
				s.clients[i] = c.NewClient(i)
			}
		}
		s.lastReq = make([]int64, c.N)
		for i := range s.lastReq {
			s.lastReq[i] = -1
		}
		for i := 0; i < c.N; i++ {
			s.core.Schedule(s.thinkTimeAt(i), evClientTick, int32(i), 0)
		}
	}
	return s
}

// SetObserver installs the per-event observer (nil to remove).
func (s *Sim) SetObserver(o Observer) { s.observer = o }

// SetEntryHook installs a callback fired on every CS entry (nil to
// remove). The sharded coordinator harvests entries through it; during a
// parallel shard window the hook must touch only shard-confined state.
func (s *Sim) SetEntryHook(fn func(node int, t int64)) { s.onEntry = fn }

// SetReleaseHook installs a callback fired on every release event —
// including releases a fault already emptied (the node is free either
// way, which is what a coordinator needs to know). Same confinement rule
// as SetEntryHook.
func (s *Sim) SetReleaseHook(fn func(node int, t int64)) { s.onRelease = fn }

// SetManualRelease transfers ownership of node i's releases to an external
// coordinator: while set, a CS entry does not auto-schedule the workload
// release, so the node holds its shard until ReleaseAt. The hierarchical
// (cross-shard) path uses this to keep earlier shards of a lock set held
// while later ones are acquired.
func (s *Sim) SetManualRelease(i int, on bool) { s.manual[i] = on }

// RequestAt schedules node i's "Request CS" action at absolute virtual
// time t (clamped to now for past times), as a typed event. External
// coordinators use it to admit arrivals into a barrier window.
func (s *Sim) RequestAt(t int64, i int) {
	d := t - s.core.Now()
	if d < 0 {
		d = 0
	}
	s.core.Schedule(d, evRequest, int32(i), 0)
}

// ReleaseAt schedules node i's "Release CS" action at absolute virtual
// time t (clamped to now), as a typed event.
func (s *Sim) ReleaseAt(t int64, i int) {
	d := t - s.core.Now()
	if d < 0 {
		d = 0
	}
	s.core.Schedule(d, evRelease, int32(i), 0)
}

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.core.Now() }

// Node returns process i.
func (s *Sim) Node(i int) tme.Node { return s.nodes[i] }

// N returns the number of processes.
func (s *Sim) N() int { return s.cfg.N }

// Net exposes the channel mesh for fault injection.
func (s *Sim) Net() *channel.Net[tme.Message] { return s.net }

// RNG returns the simulation's seeded random source. Fault injectors use it
// so that a whole experiment remains a function of one seed.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// Core returns the underlying engine core (the generic fault surface and
// tests schedule through it).
func (s *Sim) Core() *engine.Core { return s.core }

// Metrics returns the accumulated metrics.
func (s *Sim) Metrics() *Metrics { return &s.metrics }

// Obs returns the run's observability bundle (nil when disabled). The
// fault injector and spec monitors publish through it so that one handle
// collects the whole run.
func (s *Sim) Obs() *obs.Obs { return s.cfg.Obs }

// Stop ends the run after the current event.
func (s *Sim) Stop() { s.core.Stop() }

// dirtyNode marks process i's spec-visible state as possibly changed.
func (s *Sim) dirtyNode(i int) { s.verNodes[i]++ }

// dirtyNet marks the channel contents as possibly changed.
func (s *Sim) dirtyNet() { s.verNet++ }

// dirtyAll invalidates every cached snapshot: an At-closure (fault
// injection, tests) may have mutated any node or channel behind the
// simulator's back.
func (s *Sim) dirtyAll() { s.verGlobal++ }

func (s *Sim) thinkTime() int64 {
	return s.cfg.ThinkMin + s.rng.Int63n(s.cfg.ThinkMax-s.cfg.ThinkMin+1)
}

// thinkTimeAt draws node i's next think/arrival gap: from its workload
// stream when one is installed, otherwise from the master rng exactly as
// the historical default did.
//
//gblint:hotpath
func (s *Sim) thinkTimeAt(i int) int64 {
	if s.clients != nil && s.clients[i] != nil {
		return s.clients[i].NextThink()
	}
	return s.thinkTime()
}

// holdTimeAt draws node i's next CS hold (eat) time.
//
//gblint:hotpath
func (s *Sim) holdTimeAt(i int) int64 {
	if s.clients != nil && s.clients[i] != nil {
		return s.clients[i].NextHold()
	}
	return s.cfg.EatTime
}

// At schedules fn at absolute virtual time t (clamped to now for past
// times). Fault injectors and tests use it to place faults precisely. This
// is the rare-path escape hatch: it allocates a closure and conservatively
// invalidates incremental snapshots when it runs, so recurring occurrences
// use typed events instead.
func (s *Sim) At(t int64, fn func(s *Sim)) {
	s.core.At(t, func() { fn(s) })
}

// send routes msgs into the network, scheduling deliveries. fromWrapper
// attributes the messages in the metrics.
//
//gblint:hotpath
func (s *Sim) send(msgs []tme.Message, fromWrapper bool) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= s.cfg.N || m.To < 0 || m.To >= s.cfg.N || m.From == m.To {
			continue
		}
		s.mesh.Send(m.From, m.To, m)
		s.dirtyNet()
		slot := kindSlot(m.Kind)
		s.metrics.kindCounts[slot]++
		s.ins.byKind[slot].Inc()
		if fromWrapper {
			s.metrics.WrapperMsgs++
			s.ins.wrapMsgs.Inc()
		} else {
			s.metrics.ProgramMsgs++
			s.ins.progMsgs.Inc()
		}
		s.ins.trace.Emit(obs.Event{
			Time: s.core.Now(), Kind: obs.EvSend, A: m.From, B: m.To,
			Detail: s.ins.kindDetail[slot],
		})
	}
}

// ScheduleDelivery schedules one head-of-channel delivery on ep after the
// given delay. The fault injector calls this when it duplicates a message,
// so the extra copy has a delivery opportunity.
//
//gblint:hotpath
func (s *Sim) ScheduleDelivery(ep channel.Endpoint, delay int64) {
	s.mesh.ScheduleDelivery(ep, delay)
}

// deliver pops the channel head (if any) into the destination node.
//
//gblint:hotpath
func (s *Sim) deliver(ep channel.Endpoint) {
	m, ok := s.mesh.Recv(ep)
	if !ok {
		s.ins.lost.Inc()
		return // lost to a fault; the delivery opportunity passes
	}
	s.dirtyNet()
	s.dirtyNode(ep.Dst)
	s.metrics.Delivered++
	s.ins.delivered.Inc()
	s.ins.trace.Emit(obs.Event{Time: s.core.Now(), Kind: obs.EvDeliver, A: ep.Src, B: ep.Dst})
	out := s.nodes[ep.Dst].Deliver(m)
	s.send(out, false)
	s.afterEventAt(ep.Dst)
}

// afterEventAt runs the internal step (CS entry) and level-1 wrapper of
// node i after an event touched it.
//
//gblint:hotpath
func (s *Sim) afterEventAt(i int) {
	s.runLevel1(i)
	if entered, msgs := s.nodes[i].Step(); entered {
		s.send(msgs, false)
		now := s.core.Now()
		s.metrics.Entries = append(s.metrics.Entries, Entry{
			Time: now, ID: i, REQ: s.nodes[i].REQ(),
		})
		s.ins.entries.Inc()
		s.ins.conv.RecordProgress(now)
		s.ins.trace.Emit(obs.Event{Time: now, Kind: obs.EvProgress, A: i, B: -1, Detail: "cs-entry"})
		if s.ins.entryGap != nil {
			if s.ins.haveEntry {
				s.ins.entryGap.Observe(now - s.ins.lastEntry)
			}
			s.ins.lastEntry, s.ins.haveEntry = now, true
		}
		if s.lastReq != nil {
			lat := int64(-1)
			if s.lastReq[i] >= 0 {
				lat = now - s.lastReq[i]
				s.lastReq[i] = -1
			}
			s.ins.fair.RecordEntry(i, lat)
		}
		if s.onEntry != nil {
			s.onEntry(i, now)
		}
		if s.cfg.Workload && !s.relPend[i] && !s.manual[i] {
			s.relPend[i] = true
			s.core.Schedule(s.holdTimeAt(i), evRelease, int32(i), 0)
		}
	}
}

// runLevel1 executes the level-1 wrapper on node i, if configured. It is
// driven from every occasion the process "runs" — deliveries, client
// actions, and the periodic ticks — because a corrupted process that
// receives no messages still must repair itself (the level-1 wrapper is a
// local program, not a message handler).
//
//gblint:hotpath
func (s *Sim) runLevel1(i int) {
	if s.cfg.Level1 != nil {
		if repaired, _ := s.cfg.Level1.CheckRepair(s.nodes[i]); repaired {
			s.dirtyNode(i)
			s.ins.repairs.Inc()
			s.ins.trace.Emit(obs.Event{Time: s.core.Now(), Kind: obs.EvRepair, A: i, B: -1})
		}
	}
}

// clientTick drives one process's closed-loop client: request when thinking,
// audit a missing release when eating (a fault may have moved the phase
// without the client noticing — CS Spec obliges the client to keep eating
// transient from any state), wait when hungry. The loop parks — stops
// rescheduling itself — once the request budget is spent and the process is
// back to thinking, so bounded workloads drain the event queue and Run can
// terminate before its horizon.
//
//gblint:hotpath
func (s *Sim) clientTick(i int) {
	s.runLevel1(i)
	budgetLeft := s.cfg.MaxRequests == 0 || s.requests[i] < s.cfg.MaxRequests
	if s.clients != nil && s.clients[i] != nil && s.clients[i].Open() {
		// Open loop: every tick is an arrival, independent of service.
		// Arrivals that find the client busy queue in pending and drain on
		// release. The same parking rule applies once the budget is spent.
		if !budgetLeft {
			return
		}
		switch s.nodes[i].Phase() {
		case tme.Thinking:
			s.doRequest(i)
		case tme.Eating:
			if !s.relPend[i] && !s.manual[i] {
				s.release(i) // audit: a fault moved the phase mid-meal
			}
			s.pending[i]++
		case tme.Hungry:
			s.pending[i]++ // waiting on the algorithm: the arrival queues
		default:
			s.pending[i]++ // invalid phase (corruption): the arrival queues
		}
		s.core.Schedule(s.thinkTimeAt(i), evClientTick, int32(i), 0)
		return
	}
	switch s.nodes[i].Phase() {
	case tme.Thinking:
		if !budgetLeft {
			return // park: the client's work is done
		}
		s.doRequest(i)
	case tme.Eating:
		if !s.relPend[i] && !s.manual[i] {
			s.release(i)
		}
	case tme.Hungry:
		// Waiting on the algorithm: nothing for the client to do.
	default:
		// Invalid phase (level-1 wrapper territory): nothing to do.
	}
	s.core.Schedule(s.thinkTimeAt(i), evClientTick, int32(i), 0)
}

// doRequest performs the client "Request CS" action at node i if thinking.
//
//gblint:hotpath
func (s *Sim) doRequest(i int) {
	if s.nodes[i].Phase() != tme.Thinking {
		return
	}
	s.dirtyNode(i)
	s.requests[i]++
	s.metrics.Requests++
	s.ins.requests.Inc()
	if s.lastReq != nil {
		s.lastReq[i] = s.core.Now()
	}
	s.send(s.nodes[i].RequestCS(), false)
	s.afterEventAt(i)
}

// release performs the client "Release CS" action at node i.
//
//gblint:hotpath
func (s *Sim) release(i int) {
	s.relPend[i] = false
	if s.onRelease != nil {
		s.onRelease(i, s.core.Now())
	}
	if s.nodes[i].Phase() != tme.Eating {
		return // a fault moved the phase; nothing to release
	}
	s.dirtyNode(i)
	s.metrics.Releases++
	s.ins.releases.Inc()
	s.send(s.nodes[i].ReleaseCS(), false)
	s.afterEventAt(i)
	if s.pending != nil && s.pending[i] > 0 {
		// Drain one queued open-loop arrival now that the client is free.
		if s.cfg.MaxRequests == 0 || s.requests[i] < s.cfg.MaxRequests {
			s.pending[i]--
			s.core.Schedule(1, evRequest, int32(i), 0)
		} else {
			s.pending[i] = 0 // budget spent: queued arrivals will never be served
		}
	}
}

// Request asks node i to request the CS now (manual workload control for
// examples and tests). It is a no-op unless the node is thinking.
func (s *Sim) Request(i int) { s.core.Schedule(0, evRequest, int32(i), 0) }

// Release asks node i to release the CS now.
func (s *Sim) Release(i int) { s.core.Schedule(0, evRelease, int32(i), 0) }

// wrapperTick fires node i's level-2 wrapper and re-arms the timer.
//
//gblint:hotpath
func (s *Sim) wrapperTick(i int) {
	s.runLevel1(i)
	msgs := s.wrappers[i].Fire(s.core.Now(), s.nodes[i])
	s.send(msgs, true)
	s.core.Schedule(s.cfg.WrapperEvery, evWrapperTick, int32(i), 0)
}

// dispatch executes one engine event record.
//
//gblint:hotpath
func (s *Sim) dispatch(ev *engine.Event) {
	switch ev.Kind {
	case evDeliver:
		s.deliver(channel.Endpoint{Src: int(ev.A), Dst: int(ev.B)})
	case evClientTick:
		s.clientTick(int(ev.A))
	case evWrapperTick:
		s.wrapperTick(int(ev.A))
	case evRequest:
		s.doRequest(int(ev.A))
	case evRelease:
		s.release(int(ev.A))
	default:
		ev.Call()
		// The closure may have mutated any node or channel (fault
		// injection does exactly that), so cached snapshots are stale.
		s.dirtyAll()
	}
}

// afterEvent is the engine's per-event hook: metrics and the observer.
//
//gblint:hotpath
func (s *Sim) afterEvent() {
	s.metrics.Events++
	s.ins.events.Inc()
	if s.observer != nil {
		s.observer(s)
	}
}

// Run processes events until the queue drains, time exceeds horizon, or
// Stop is called. It returns the number of events processed in this call.
//
//gblint:hotpath
func (s *Sim) Run(horizon int64) int64 {
	// State may have been mutated directly between Run calls (tests poke
	// channels and nodes through Net and Node); invalidate snapshots once.
	s.dirtyAll()
	n := s.core.Run(horizon)
	s.ins.simTime.Set(s.core.Now())
	s.ins.fair.Publish()
	return n
}

// Snapshot captures the global state for spec monitors.
func (s *Sim) Snapshot() GlobalState {
	var g GlobalState
	s.SnapshotInto(&g)
	return g
}

// SnapshotInto fills g with the current global state, reusing g's slices.
// Observers that snapshot on every event use SnapshotDeltaInto instead,
// which skips the unchanged parts.
//
//gblint:hotpath
func (s *Sim) SnapshotInto(g *GlobalState) {
	g.Time = s.core.Now()
	if cap(g.Nodes) < s.cfg.N {
		g.Nodes = make([]tme.SpecState, s.cfg.N)
	}
	g.Nodes = g.Nodes[:s.cfg.N]
	for i, nd := range s.nodes {
		tme.SnapshotInto(nd, &g.Nodes[i])
	}
	s.snapshotInFlight(g)
}

// snapshotInFlight rebuilds g.InFlight from the live channels.
//
//gblint:hotpath
func (s *Sim) snapshotInFlight(g *GlobalState) {
	g.InFlight = g.InFlight[:0]
	for _, ep := range s.endpoints() {
		q := s.net.Chan(ep.Src, ep.Dst)
		for i := 0; i < q.Len(); i++ {
			g.InFlight = append(g.InFlight, q.At(i))
		}
	}
}

// SnapVersions records which state generation a GlobalState buffer
// reflects, for SnapshotDeltaInto. The zero value means "never
// synchronized" and forces a full rebuild on first use.
type SnapVersions struct {
	global uint64
	net    uint64
	nodes  []uint64
}

// SnapshotDeltaInto brings g — a buffer previously filled through v — up to
// the current global state, re-snapshotting only the processes whose state
// changed and rebuilding InFlight only if some channel was touched since
// v's last synchronization. After an At-closure ran (fault injection),
// everything is conservatively treated as changed. The result is
// byte-identical to SnapshotInto; only the work is smaller.
//
//gblint:hotpath
func (s *Sim) SnapshotDeltaInto(g *GlobalState, v *SnapVersions) {
	g.Time = s.core.Now()
	n := s.cfg.N
	full := v.global != s.verGlobal || len(v.nodes) != n
	if cap(g.Nodes) < n {
		g.Nodes = make([]tme.SpecState, n)
	}
	g.Nodes = g.Nodes[:n]
	if cap(v.nodes) < n {
		v.nodes = make([]uint64, n)
	}
	v.nodes = v.nodes[:n]
	for i, nd := range s.nodes {
		if full || v.nodes[i] != s.verNodes[i] {
			tme.SnapshotInto(nd, &g.Nodes[i])
			v.nodes[i] = s.verNodes[i]
		}
	}
	if full || v.net != s.verNet {
		s.snapshotInFlight(g)
		v.net = s.verNet
	}
	v.global = s.verGlobal
}

// endpoints caches the deterministic endpoint order.
func (s *Sim) endpoints() []channel.Endpoint {
	return s.mesh.Endpoints()
}

// String summarizes the run for logs.
func (s *Sim) String() string {
	return fmt.Sprintf("sim{n=%d t=%d entries=%d msgs=%d+%d}",
		s.cfg.N, s.core.Now(), len(s.metrics.Entries), s.metrics.ProgramMsgs, s.metrics.WrapperMsgs)
}
