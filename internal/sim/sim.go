// Package sim is a deterministic discrete-event simulator for the TME
// system model of DSN 2001 §3.1: asynchronous processes communicating over
// FIFO channels with arbitrary-but-finite delays. It is the paper's
// (unstated) testbed, rebuilt: every run is a pure function of its
// configuration and seed, so experiments are reproducible and convergence
// can be measured in virtual time.
//
// The simulator drives tme.Node implementations (internal/ra,
// internal/lamport), optionally composes each with a graybox wrapper
// (internal/wrapper) — realizing the M ▯ W composition operationally — and
// exposes hooks for the fault injector (internal/fault) and for spec
// monitors (internal/lspec) via per-event observers.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// Config parameterizes a simulation. NewNode and N are required; zero
// values elsewhere select sensible defaults (see field comments).
type Config struct {
	// N is the number of processes (required, ≥ 1).
	N int
	// Seed drives every random choice in the run.
	Seed int64
	// NewNode constructs process id of n (required): ra.New, lamport.New,
	// or any other tme.Node implementation.
	NewNode func(id, n int) tme.Node
	// NewWrapper, when non-nil, attaches a level-2 wrapper to each
	// process, realizing M ▯ W. Called once per process id.
	NewWrapper func(id int) wrapper.Level2
	// Level1, when non-nil, is the level-1 wrapper run on each process
	// after every event at it.
	Level1 wrapper.Level1
	// WrapperEvery is the cadence (virtual ticks) of wrapper timer
	// events; default 1. Only meaningful when NewWrapper is set.
	WrapperEvery int64
	// MinDelay and MaxDelay bound per-message transmission delay in
	// virtual ticks. Defaults: 1 and 5.
	MinDelay, MaxDelay int64
	// Workload, when true, runs a closed-loop client at every process:
	// think, request, eat, release, repeat.
	Workload bool
	// ThinkMin/ThinkMax bound think time. Defaults: 5 and 20.
	ThinkMin, ThinkMax int64
	// EatTime is how long a process eats before releasing. Default 3.
	EatTime int64
	// MaxRequests caps requests issued per process (0 = unlimited).
	MaxRequests int
	// Obs, when non-nil, receives metrics and trace events for the run.
	// The nil default costs only no-op calls on nil instruments.
	Obs *obs.Obs
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MinDelay == 0 && out.MaxDelay == 0 {
		out.MinDelay, out.MaxDelay = 1, 5
	}
	if out.MaxDelay < out.MinDelay {
		out.MaxDelay = out.MinDelay
	}
	if out.WrapperEvery <= 0 {
		out.WrapperEvery = 1
	}
	if out.ThinkMin == 0 && out.ThinkMax == 0 {
		out.ThinkMin, out.ThinkMax = 5, 20
	}
	if out.ThinkMax < out.ThinkMin {
		out.ThinkMax = out.ThinkMin
	}
	if out.EatTime <= 0 {
		out.EatTime = 3
	}
	return out
}

// Entry records one CS entry.
type Entry struct {
	// Time is the virtual time of the entry.
	Time int64
	// ID is the entering process.
	ID int
	// REQ is the request timestamp it entered with.
	REQ ltime.Timestamp
}

// Metrics accumulates counters over a run.
type Metrics struct {
	// Entries lists every CS entry in order.
	Entries []Entry
	// ProgramMsgs and WrapperMsgs count messages by origin.
	ProgramMsgs, WrapperMsgs int
	// MsgsByKind counts sent messages by kind (program + wrapper).
	MsgsByKind map[tme.Kind]int
	// Delivered counts messages actually delivered.
	Delivered int
	// Requests and Releases count client actions performed.
	Requests, Releases int
	// Events counts processed simulator events.
	Events int64
}

// GlobalState is a plain-data snapshot of the whole system, consumed by
// spec monitors.
type GlobalState struct {
	// Time is the snapshot's virtual time.
	Time int64
	// Nodes holds one SpecState per process, indexed by id.
	Nodes []tme.SpecState
	// InFlight holds all queued messages, in deterministic endpoint
	// order, head first per channel.
	InFlight []tme.Message
}

// Eating returns the ids of processes currently eating.
func (g *GlobalState) Eating() []int {
	var out []int
	for _, s := range g.Nodes {
		if s.Phase == tme.Eating {
			out = append(out, s.ID)
		}
	}
	return out
}

// Observer is called after every processed event with the up-to-date
// simulation. Observers may read state (Snapshot, Node, Now) but must not
// mutate the simulation.
type Observer func(s *Sim)

// event is one scheduled occurrence. seq breaks time ties deterministically
// in schedule order.
type event struct {
	time int64
	seq  uint64
	act  func(s *Sim)
}

// Sim is one simulation instance. Construct with New, then Run.
type Sim struct {
	cfg      Config
	rng      *rand.Rand
	now      int64
	seq      uint64
	queue    eventHeap
	nodes    []tme.Node
	wrappers []wrapper.Level2
	net      *channel.Net[tme.Message]
	eps      []channel.Endpoint // cached deterministic endpoint order
	requests []int              // requests issued per node
	relPend  []bool             // release scheduled and not yet performed, per node
	metrics  Metrics
	observer Observer
	stopped  bool
	ins      instruments
}

// instruments caches the simulator's obs handles. Every field is nil when
// observability is off, so publishing degrades to nil-receiver no-ops.
type instruments struct {
	obs        *obs.Obs
	trace      *obs.Trace
	conv       *obs.Convergence
	progMsgs   *obs.Counter
	wrapMsgs   *obs.Counter
	byKind     [4]*obs.Counter // indexed by tme.Kind; slot 0 catches invalid kinds
	delivered  *obs.Counter
	lost       *obs.Counter
	entries    *obs.Counter
	requests   *obs.Counter
	releases   *obs.Counter
	repairs    *obs.Counter
	events     *obs.Counter
	simTime    *obs.Gauge
	entryGap   *obs.Histogram // virtual ticks between consecutive CS entries
	lastEntry  int64
	haveEntry  bool
	kindDetail [4]string // static labels for trace events (no per-event alloc)
}

func newInstruments(o *obs.Obs) instruments {
	ins := instruments{obs: o}
	if o == nil {
		return ins
	}
	r := o.Registry()
	ins.trace = o.Tracer()
	ins.conv = o.Convergence()
	ins.progMsgs = r.Counter("sim_msgs_program_total", "messages sent by the programs")
	ins.wrapMsgs = r.Counter("sim_msgs_wrapper_total", "messages sent by wrappers")
	ins.byKind[0] = r.Counter("sim_msgs_kind_invalid_total", "messages sent with an invalid kind")
	ins.byKind[tme.Request] = r.Counter("sim_msgs_kind_request_total", "request messages sent")
	ins.byKind[tme.Reply] = r.Counter("sim_msgs_kind_reply_total", "reply messages sent")
	ins.byKind[tme.Release] = r.Counter("sim_msgs_kind_release_total", "release messages sent")
	ins.delivered = r.Counter("sim_msgs_delivered_total", "messages delivered")
	ins.lost = r.Counter("sim_delivery_misses_total", "delivery opportunities that found the channel empty (message lost to a fault)")
	ins.entries = r.Counter("sim_cs_entries_total", "critical-section entries")
	ins.requests = r.Counter("sim_requests_total", "client CS requests")
	ins.releases = r.Counter("sim_releases_total", "client CS releases")
	ins.repairs = r.Counter("sim_level1_repairs_total", "level-1 wrapper in-place repairs")
	ins.events = r.Counter("sim_events_total", "simulator events processed")
	ins.simTime = r.Gauge("sim_time", "current virtual time")
	ins.entryGap = r.Histogram("sim_entry_gap_ticks", "virtual ticks between consecutive CS entries",
		[]int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
	ins.kindDetail = [4]string{"invalid", "request", "reply", "release"}
	return ins
}

// kindSlot maps a message kind to its counter slot (0 for invalid kinds).
func kindSlot(k tme.Kind) int {
	if k == tme.Request || k == tme.Reply || k == tme.Release {
		return int(k)
	}
	return 0
}

// New constructs a simulator from cfg. It panics only on a nil NewNode or
// non-positive N (programming errors, not runtime conditions).
func New(cfg Config) *Sim {
	if cfg.N < 1 || cfg.NewNode == nil {
		panic("sim: Config.N and Config.NewNode are required")
	}
	c := cfg.withDefaults()
	s := &Sim{
		cfg:      c,
		rng:      rand.New(rand.NewSource(c.Seed)),
		nodes:    make([]tme.Node, c.N),
		net:      channel.NewNet[tme.Message](c.N),
		requests: make([]int, c.N),
		relPend:  make([]bool, c.N),
		metrics:  Metrics{MsgsByKind: make(map[tme.Kind]int)},
		ins:      newInstruments(c.Obs),
	}
	for i := range s.nodes {
		s.nodes[i] = c.NewNode(i, c.N)
	}
	if c.NewWrapper != nil {
		s.wrappers = make([]wrapper.Level2, c.N)
		for i := range s.wrappers {
			s.wrappers[i] = wrapper.InstrumentLevel2(c.Obs, i, c.NewWrapper(i))
			s.scheduleWrapperTick(i, 0)
		}
	}
	if c.Workload {
		for i := 0; i < c.N; i++ {
			s.scheduleClientTick(i, s.thinkTime())
		}
	}
	return s
}

// SetObserver installs the per-event observer (nil to remove).
func (s *Sim) SetObserver(o Observer) { s.observer = o }

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.now }

// Node returns process i.
func (s *Sim) Node(i int) tme.Node { return s.nodes[i] }

// N returns the number of processes.
func (s *Sim) N() int { return s.cfg.N }

// Net exposes the channel mesh for fault injection.
func (s *Sim) Net() *channel.Net[tme.Message] { return s.net }

// RNG returns the simulation's seeded random source. Fault injectors use it
// so that a whole experiment remains a function of one seed.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// Metrics returns the accumulated metrics.
func (s *Sim) Metrics() *Metrics { return &s.metrics }

// Obs returns the run's observability bundle (nil when disabled). The
// fault injector and spec monitors publish through it so that one handle
// collects the whole run.
func (s *Sim) Obs() *obs.Obs { return s.cfg.Obs }

// Stop ends the run after the current event.
func (s *Sim) Stop() { s.stopped = true }

func (s *Sim) thinkTime() int64 {
	return s.cfg.ThinkMin + s.rng.Int63n(s.cfg.ThinkMax-s.cfg.ThinkMin+1)
}

func (s *Sim) delay() int64 {
	return s.cfg.MinDelay + s.rng.Int63n(s.cfg.MaxDelay-s.cfg.MinDelay+1)
}

// At schedules fn at absolute virtual time t (clamped to now for past
// times). Fault injectors and tests use it to place faults precisely.
func (s *Sim) At(t int64, fn func(s *Sim)) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.queue.push(event{time: t, seq: s.seq, act: fn})
}

// send routes msgs into the network, scheduling deliveries. fromWrapper
// attributes the messages in the metrics.
func (s *Sim) send(msgs []tme.Message, fromWrapper bool) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= s.cfg.N || m.To < 0 || m.To >= s.cfg.N || m.From == m.To {
			continue
		}
		s.net.Send(m.From, m.To, m)
		s.metrics.MsgsByKind[m.Kind]++
		slot := kindSlot(m.Kind)
		s.ins.byKind[slot].Inc()
		if fromWrapper {
			s.metrics.WrapperMsgs++
			s.ins.wrapMsgs.Inc()
		} else {
			s.metrics.ProgramMsgs++
			s.ins.progMsgs.Inc()
		}
		s.ins.trace.Emit(obs.Event{
			Time: s.now, Kind: obs.EvSend, A: m.From, B: m.To,
			Detail: s.ins.kindDetail[slot],
		})
		s.ScheduleDelivery(channel.Endpoint{Src: m.From, Dst: m.To}, s.delay())
	}
}

// ScheduleDelivery schedules one head-of-channel delivery on ep after the
// given delay. The fault injector calls this when it duplicates a message,
// so the extra copy has a delivery opportunity.
func (s *Sim) ScheduleDelivery(ep channel.Endpoint, delay int64) {
	s.At(s.now+delay, func(s *Sim) { s.deliver(ep) })
}

// deliver pops the channel head (if any) into the destination node.
func (s *Sim) deliver(ep channel.Endpoint) {
	q := s.net.Chan(ep.Src, ep.Dst)
	if q == nil {
		return
	}
	m, ok := q.Recv()
	if !ok {
		s.ins.lost.Inc()
		return // lost to a fault; the delivery opportunity passes
	}
	s.metrics.Delivered++
	s.ins.delivered.Inc()
	s.ins.trace.Emit(obs.Event{Time: s.now, Kind: obs.EvDeliver, A: ep.Src, B: ep.Dst})
	out := s.nodes[ep.Dst].Deliver(m)
	s.send(out, false)
	s.afterEventAt(ep.Dst)
}

// afterEventAt runs the internal step (CS entry) and level-1 wrapper of
// node i after an event touched it.
func (s *Sim) afterEventAt(i int) {
	s.runLevel1(i)
	if entered, msgs := s.nodes[i].Step(); entered {
		s.send(msgs, false)
		s.metrics.Entries = append(s.metrics.Entries, Entry{
			Time: s.now, ID: i, REQ: s.nodes[i].REQ(),
		})
		s.ins.entries.Inc()
		s.ins.conv.RecordProgress(s.now)
		s.ins.trace.Emit(obs.Event{Time: s.now, Kind: obs.EvProgress, A: i, B: -1, Detail: "cs-entry"})
		if s.ins.entryGap != nil {
			if s.ins.haveEntry {
				s.ins.entryGap.Observe(s.now - s.ins.lastEntry)
			}
			s.ins.lastEntry, s.ins.haveEntry = s.now, true
		}
		if s.cfg.Workload && !s.relPend[i] {
			s.relPend[i] = true
			s.At(s.now+s.cfg.EatTime, func(s *Sim) { s.release(i) })
		}
	}
}

// scheduleClientTick arms the next closed-loop client action at node i.
func (s *Sim) scheduleClientTick(i int, after int64) {
	s.At(s.now+after, func(s *Sim) { s.clientTick(i) })
}

// runLevel1 executes the level-1 wrapper on node i, if configured. It is
// driven from every occasion the process "runs" — deliveries, client
// actions, and the periodic ticks — because a corrupted process that
// receives no messages still must repair itself (the level-1 wrapper is a
// local program, not a message handler).
func (s *Sim) runLevel1(i int) {
	if s.cfg.Level1 != nil {
		if repaired, _ := s.cfg.Level1.CheckRepair(s.nodes[i]); repaired {
			s.ins.repairs.Inc()
			s.ins.trace.Emit(obs.Event{Time: s.now, Kind: obs.EvRepair, A: i, B: -1})
		}
	}
}

// clientTick drives one process's closed-loop client: request when thinking,
// audit a missing release when eating (a fault may have moved the phase
// without the client noticing — CS Spec obliges the client to keep eating
// transient from any state), wait when hungry. The loop parks — stops
// rescheduling itself — once the request budget is spent and the process is
// back to thinking, so bounded workloads drain the event queue and Run can
// terminate before its horizon.
func (s *Sim) clientTick(i int) {
	s.runLevel1(i)
	budgetLeft := s.cfg.MaxRequests == 0 || s.requests[i] < s.cfg.MaxRequests
	switch s.nodes[i].Phase() {
	case tme.Thinking:
		if !budgetLeft {
			return // park: the client's work is done
		}
		s.doRequest(i)
	case tme.Eating:
		if !s.relPend[i] {
			s.release(i)
		}
	default:
		// Hungry (waiting on the algorithm) or an invalid phase (level-1
		// wrapper territory): nothing for the client to do.
	}
	s.scheduleClientTick(i, s.thinkTime())
}

// doRequest performs the client "Request CS" action at node i if thinking.
func (s *Sim) doRequest(i int) {
	if s.nodes[i].Phase() != tme.Thinking {
		return
	}
	s.requests[i]++
	s.metrics.Requests++
	s.ins.requests.Inc()
	s.send(s.nodes[i].RequestCS(), false)
	s.afterEventAt(i)
}

// release performs the client "Release CS" action at node i.
func (s *Sim) release(i int) {
	s.relPend[i] = false
	if s.nodes[i].Phase() != tme.Eating {
		return // a fault moved the phase; nothing to release
	}
	s.metrics.Releases++
	s.ins.releases.Inc()
	s.send(s.nodes[i].ReleaseCS(), false)
	s.afterEventAt(i)
}

// Request asks node i to request the CS now (manual workload control for
// examples and tests). It is a no-op unless the node is thinking.
func (s *Sim) Request(i int) { s.At(s.now, func(s *Sim) { s.doRequest(i) }) }

// Release asks node i to release the CS now.
func (s *Sim) Release(i int) { s.At(s.now, func(s *Sim) { s.release(i) }) }

// scheduleWrapperTick arms node i's next wrapper timer event.
func (s *Sim) scheduleWrapperTick(i int, after int64) {
	s.At(s.now+after, func(s *Sim) {
		s.runLevel1(i)
		msgs := s.wrappers[i].Fire(s.now, s.nodes[i])
		s.send(msgs, true)
		s.scheduleWrapperTick(i, s.cfg.WrapperEvery)
	})
}

// Run processes events until the queue drains, time exceeds horizon, or
// Stop is called. It returns the number of events processed in this call.
func (s *Sim) Run(horizon int64) int64 {
	var n int64
	for !s.stopped {
		ev, ok := s.queue.peek()
		if !ok || ev.time > horizon {
			break
		}
		s.queue.pop()
		s.now = ev.time
		ev.act(s)
		s.metrics.Events++
		s.ins.events.Inc()
		n++
		if s.observer != nil {
			s.observer(s)
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
	s.ins.simTime.Set(s.now)
	return n
}

// Snapshot captures the global state for spec monitors.
func (s *Sim) Snapshot() GlobalState {
	var g GlobalState
	s.SnapshotInto(&g)
	return g
}

// SnapshotInto fills g with the current global state, reusing g's slices.
// Observers that snapshot on every event use two rotating buffers to avoid
// per-event allocation (see lspec.Monitors.AsObserver).
func (s *Sim) SnapshotInto(g *GlobalState) {
	g.Time = s.now
	if cap(g.Nodes) < s.cfg.N {
		g.Nodes = make([]tme.SpecState, s.cfg.N)
	}
	g.Nodes = g.Nodes[:s.cfg.N]
	for i, nd := range s.nodes {
		tme.SnapshotInto(nd, &g.Nodes[i])
	}
	g.InFlight = g.InFlight[:0]
	for _, ep := range s.endpoints() {
		q := s.net.Chan(ep.Src, ep.Dst)
		for i := 0; i < q.Len(); i++ {
			g.InFlight = append(g.InFlight, q.At(i))
		}
	}
}

// endpoints caches the deterministic endpoint order.
func (s *Sim) endpoints() []channel.Endpoint {
	if s.eps == nil {
		s.eps = s.net.Endpoints()
	}
	return s.eps
}

// String summarizes the run for logs.
func (s *Sim) String() string {
	return fmt.Sprintf("sim{n=%d t=%d entries=%d msgs=%d+%d}",
		s.cfg.N, s.now, len(s.metrics.Entries), s.metrics.ProgramMsgs, s.metrics.WrapperMsgs)
}

// eventHeap is a binary min-heap ordered by (time, seq).
type eventHeap struct {
	items []event
}

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].time != h.items[j].time {
		return h.items[i].time < h.items[j].time
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *eventHeap) push(e event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) peek() (event, bool) {
	if len(h.items) == 0 {
		return event{}, false
	}
	return h.items[0], true
}

func (h *eventHeap) pop() (event, bool) {
	if len(h.items) == 0 {
		return event{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top, true
}

func (h *eventHeap) len() int { return len(h.items) }
