// Sharded simulation: S independent single-shard TME instances — each its
// own Sim with its own engine core, seed streams, W' wrappers, and obs —
// advanced in parallel between deterministic merge barriers by an
// engine.Group, under a serial coordinator that owns every workload
// decision.
//
// The split is what keeps parallelism deterministic. Inside a barrier
// window the shard cores share nothing: protocol events, deliveries, and
// W' ticks are all shard-local, and the entry/release hooks write only to
// a per-shard harvest buffer. Everything cross-shard — admitting client
// arrivals, drawing think/hold/shard-skew values, moving hierarchical
// acquisitions to their next shard, serving parked arrivals — happens
// between windows, serially, in canonical shard order. A run is therefore
// a pure function of the seed regardless of how the shard goroutines
// interleave.
//
// Clients are logical loops multiplexed onto home nodes (client c lives on
// node c mod N of every shard), so a 100-node system can carry 10k+ client
// loops. Parked arrivals — a client whose home node is already serving
// another client on that shard — are linked-list records recycled through
// an engine.Pool, keeping the coordinator allocation-free in steady state.
// Cross-shard lock sets follow internal/hme: canonical ascending order,
// observed by the hme.Monitor on the coordinator's obs.
package sim

import (
	"fmt"
	"hash/fnv"

	"github.com/graybox-stabilization/graybox/internal/engine"
	"github.com/graybox-stabilization/graybox/internal/hme"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// ShardClient is one logical client's workload draw stream in a sharded
// run: think/hold gaps plus the shard-skew draw. workload.Client satisfies
// it structurally (the simulator stays a leaf, as with ClientStream).
type ShardClient interface {
	ClientStream
	// NextResource draws the target shard for the next request, in [0, n).
	NextResource(n int) int
}

// ShardedConfig parameterizes a sharded simulation. Shards, N, NewNode,
// and NewClient are required.
type ShardedConfig struct {
	// Shards is the number of independent single-CS instances (S ≥ 1).
	Shards int
	// N is the number of processes; every shard runs an instance over all
	// N of them.
	N int
	// Clients is the number of logical client loops, multiplexed onto home
	// nodes (client c → node c mod N). Default N.
	Clients int
	// Seed drives every draw; shard s derives its own seed from it.
	Seed int64
	// NewNode constructs process id of n for one shard instance (required).
	NewNode func(id, n int) tme.Node
	// NewWrapper, when non-nil, attaches a level-2 W' to each process of
	// each shard — per-shard wrappers, the first level of the hierarchy.
	NewWrapper func(shard, id int) wrapper.Level2
	// Level1 is the level-1 wrapper shared by every shard instance.
	Level1 wrapper.Level1
	// WrapperEvery is the W' tick cadence; default 1.
	WrapperEvery int64
	// MinDelay/MaxDelay bound per-message delay, as in Config.
	MinDelay, MaxDelay int64
	// NewClient constructs logical client c's draw stream (required).
	NewClient func(client int) ShardClient
	// MaxLoops caps completed request/hold/release loops per client
	// (0 = unlimited, run to the horizon).
	MaxLoops int
	// Window is the barrier window length in virtual ticks; default 64.
	// Cross-shard handoffs and new arrivals are admitted at window
	// granularity — the cost of running shards in parallel.
	Window int64
	// RetryAfter is how long an issued request may sit unanswered before
	// the coordinator re-probes the node (re-request after a fault ate the
	// request, or synthesize the grant/release a corruption skipped).
	// Default 512.
	RetryAfter int64
	// CrossEvery makes every k-th loop of each client a cross-shard
	// acquisition of two skew-drawn shards (0 = never). Lock sets follow
	// hme's canonical ascending order.
	CrossEvery int
	// Obs is the coordinator-level bundle: hme monitor instruments and
	// per-client fairness. Per-shard metrics live on the shard obs.
	Obs *obs.Obs
	// NewShardObs, when non-nil, supplies each shard instance's obs bundle
	// (per-shard fairness percentiles, convergence, message counters).
	NewShardObs func(shard int) *obs.Obs
}

func (c *ShardedConfig) withDefaults() ShardedConfig {
	out := *c
	if out.Clients <= 0 {
		out.Clients = out.N
	}
	if out.Window <= 0 {
		out.Window = 64
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = 512
	}
	return out
}

// dormantStream parks the built-in per-node client loop of a shard Sim far
// beyond any horizon: the coordinator owns all workload decisions, the
// shard instance only runs the protocol.
type dormantStream struct{}

const dormantTick = int64(1) << 61

func (dormantStream) NextThink() int64 { return dormantTick }
func (dormantStream) NextHold() int64  { return 1 } // never consulted: all releases are manual
func (dormantStream) Open() bool       { return false }

// hookRec is one harvested shard event, buffered shard-locally during the
// parallel window and drained serially at the barrier.
type hookRec struct {
	op   uint8 // opEntry or opRelease
	node int32
	t    int64
}

const (
	opEntry uint8 = iota
	opRelease
)

// parked is one client arrival waiting for its home node to free up on a
// shard; recycled through the coordinator's pool.
type parked struct {
	client int
	at     int64
	next   *parked
}

// nodeSlot is the coordinator's bookkeeping for one (shard, node) pair.
type nodeSlot struct {
	occ      int   // client being served, -1 when free
	entered  bool  // the occupant's CS entry has been harvested
	reqAt    int64 // when the occupant's request was issued (for retries)
	qh, qt   *parked
	qlen     int
}

// clientState tracks one logical client loop.
type clientState struct {
	acq       *hme.Acq // in-flight acquisition; nil between loops
	arriveAt  int64    // arrival time of the current loop (latency baseline)
	relLeft   int      // shard releases outstanding before the loop completes
	recorded  bool     // fairness entry recorded for this loop
	loops     int      // completed loops
	done      bool
}

// arrival is one heap element: client's next arrival time.
type arrival struct {
	at     int64
	client int32
}

// Sharded is a sharded simulation. Construct with NewSharded, then Run.
type Sharded struct {
	cfg     ShardedConfig
	sims    []*Sim
	group   *engine.Group
	monitor *hme.Monitor
	fair    *obs.Fairness
	clients []ShardClient
	cst     []clientState
	slots   [][]nodeSlot // [shard][node]
	bufs    [][]hookRec  // per-shard harvest buffers
	heap    []arrival    // min-heap of pending arrivals, ordered by (at, client)
	pool    engine.Pool[parked]
	done    int
	now     int64
	events  int64
}

// NewSharded constructs a sharded simulation. Like New, it panics only on
// missing required fields.
func NewSharded(cfg ShardedConfig) *Sharded {
	if cfg.Shards < 1 || cfg.N < 1 || cfg.NewNode == nil || cfg.NewClient == nil {
		panic("sim: ShardedConfig.Shards, N, NewNode, and NewClient are required")
	}
	c := cfg.withDefaults()
	sh := &Sharded{
		cfg:     c,
		sims:    make([]*Sim, c.Shards),
		monitor: hme.NewMonitor(registryOf(c.Obs)),
		clients: make([]ShardClient, c.Clients),
		cst:     make([]clientState, c.Clients),
		slots:   make([][]nodeSlot, c.Shards),
		bufs:    make([][]hookRec, c.Shards),
	}
	if c.Obs != nil {
		sh.fair = c.Obs.Fairness()
	}
	cores := make([]*engine.Core, c.Shards)
	for s := 0; s < c.Shards; s++ {
		s := s
		var shardObs *obs.Obs
		if c.NewShardObs != nil {
			shardObs = c.NewShardObs(s)
		}
		var newWrap func(id int) wrapper.Level2
		if c.NewWrapper != nil {
			newWrap = func(id int) wrapper.Level2 { return c.NewWrapper(s, id) }
		}
		sim := New(Config{
			N:            c.N,
			Seed:         shardSeed(c.Seed, s),
			NewNode:      c.NewNode,
			NewWrapper:   newWrap,
			Level1:       c.Level1,
			WrapperEvery: c.WrapperEvery,
			MinDelay:     c.MinDelay,
			MaxDelay:     c.MaxDelay,
			Workload:     true,
			NewClient:    func(int) ClientStream { return dormantStream{} },
			Obs:          shardObs,
		})
		sim.SetEntryHook(func(node int, t int64) {
			sh.bufs[s] = append(sh.bufs[s], hookRec{op: opEntry, node: int32(node), t: t})
		})
		sim.SetReleaseHook(func(node int, t int64) {
			sh.bufs[s] = append(sh.bufs[s], hookRec{op: opRelease, node: int32(node), t: t})
		})
		for i := 0; i < c.N; i++ {
			sim.SetManualRelease(i, true) // the coordinator owns every release
		}
		sh.sims[s] = sim
		cores[s] = sim.Core()
		sh.slots[s] = make([]nodeSlot, c.N)
		for i := range sh.slots[s] {
			sh.slots[s][i].occ = -1
		}
	}
	sh.group = engine.NewGroup(cores)
	for cid := 0; cid < c.Clients; cid++ {
		sh.clients[cid] = c.NewClient(cid)
		sh.pushArrival(arrival{at: sh.clients[cid].NextThink(), client: int32(cid)})
	}
	return sh
}

func registryOf(o *obs.Obs) *obs.Registry {
	if o == nil {
		return nil
	}
	return o.Registry()
}

// shardSeed derives shard s's seed from the run seed (FNV-1a over the
// shard id), mirroring engine.Core.Stream's scheme so shard instances are
// independent pure functions of (seed, shard).
func shardSeed(seed int64, s int) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(s) >> (8 * i))
	}
	h.Write([]byte("shard/"))
	h.Write(b[:])
	return seed ^ int64(h.Sum64())
}

// Shard returns shard s's underlying Sim (its nodes, metrics, obs, and At
// hook for per-shard fault injection).
func (sh *Sharded) Shard(s int) *Sim { return sh.sims[s] }

// Shards returns the shard count.
func (sh *Sharded) Shards() int { return sh.cfg.Shards }

// Monitor returns the level-2 hme monitor (nil without coordinator obs).
func (sh *Sharded) Monitor() *hme.Monitor { return sh.monitor }

// Now returns the coordinator's virtual time (every shard core agrees with
// it at a barrier).
func (sh *Sharded) Now() int64 { return sh.now }

// Events returns total events processed across all shards.
func (sh *Sharded) Events() int64 { return sh.events }

// LoopsDone returns how many clients have finished their loop budget.
func (sh *Sharded) LoopsDone() int { return sh.done }

// Loops returns client c's completed loop count.
func (sh *Sharded) Loops(c int) int { return sh.cst[c].loops }

// Run advances the system to the horizon (or until every client finishes
// its loop budget) in barrier windows and returns the events processed.
func (sh *Sharded) Run(horizon int64) int64 {
	start := sh.events
	for sh.now < horizon && sh.done < len(sh.clients) {
		end := sh.now + sh.cfg.Window
		if end > horizon {
			end = horizon
		}
		sh.serialPhase(sh.now, end)
		sh.events += sh.group.RunBarrier(end)
		sh.now = end
		sh.harvest(end)
		sh.skipAhead(horizon)
	}
	for _, s := range sh.sims {
		s.ins.simTime.Set(s.core.Now())
		s.ins.fair.Publish()
	}
	sh.fair.Publish()
	return sh.events - start
}

// serialPhase admits arrivals due in (start, end] and re-probes stuck
// requests. Runs with every shard core quiescent at time start.
func (sh *Sharded) serialPhase(start, end int64) {
	for len(sh.heap) > 0 && sh.heap[0].at <= end {
		a := sh.popArrival()
		at := a.at
		if at < start {
			at = start
		}
		sh.startLoop(int(a.client), at)
	}
	// Retry scan: a request can be eaten by a corruption fault (the phase
	// was not Thinking when the event fired, or the in-flight REQs were
	// scrambled past repair). The coordinator re-probes old occupants:
	// re-request a Thinking node, and synthesize the entry a corruption
	// skipped when the node is visibly Eating without one.
	for s := range sh.slots {
		for i := range sh.slots[s] {
			sl := &sh.slots[s][i]
			if sl.occ < 0 {
				// A corruption can forge Eating on a node nobody occupies.
				// Releases are coordinator-owned here, so no client loop will
				// ever clear it — and one forged eater starves its whole
				// shard. Force the release (the single-shard sim's
				// audit-release, hoisted to the coordinator).
				if sh.sims[s].Node(i).Phase() == tme.Eating {
					sh.sims[s].ReleaseAt(start, i)
				}
				continue
			}
			if sl.entered || start-sl.reqAt <= sh.cfg.RetryAfter {
				continue
			}
			ph := sh.sims[s].Node(i).Phase()
			if ph == tme.Eating {
				sh.handleEntry(s, i, start)
			} else if ph == tme.Thinking {
				sh.sims[s].RequestAt(start, i)
				sl.reqAt = start
			}
			// Hungry (or invalid, which level-1/W' repairs): keep waiting.
		}
	}
}

// startLoop begins client c's next loop at time at: draw the lock set from
// its skew stream and request the first shard.
func (sh *Sharded) startLoop(c int, at int64) {
	cl := sh.clients[c]
	st := &sh.cst[c]
	var set [2]int
	n := 1
	set[0] = cl.NextResource(sh.cfg.Shards)
	if sh.cfg.CrossEvery > 0 && (st.loops+1)%sh.cfg.CrossEvery == 0 {
		set[1] = cl.NextResource(sh.cfg.Shards)
		n = 2
	}
	st.acq = hme.NewAcq(c, set[:n])
	st.arriveAt = at
	st.recorded = false
	st.relLeft = 0
	if len(st.acq.Set()) > 1 {
		sh.monitor.Observe(hme.OpAcquire, c, 0, st.acq.Set())
	}
	shard, _ := st.acq.Pending()
	sh.requestShard(c, shard, at)
}

// requestShard routes client c's request for one shard to its home node:
// issue it when the node is free on that shard, park it otherwise.
func (sh *Sharded) requestShard(c, shard int, at int64) {
	i := c % sh.cfg.N
	sl := &sh.slots[shard][i]
	if sl.occ < 0 {
		sl.occ = c
		sl.entered = false
		sl.reqAt = at
		sh.sims[shard].RequestAt(at, i)
		return
	}
	rec := sh.pool.Get()
	rec.client, rec.at, rec.next = c, at, nil
	if sl.qt != nil {
		sl.qt.next = rec
	} else {
		sl.qh = rec
	}
	sl.qt = rec
	sl.qlen++
}

// harvest drains every shard's hook buffer, serially in shard order, and
// advances the cross-shard state machines. Runs at the barrier (time end).
func (sh *Sharded) harvest(end int64) {
	for s := range sh.bufs {
		for k := range sh.bufs[s] {
			r := sh.bufs[s][k]
			if r.op == opEntry {
				sh.handleEntry(s, int(r.node), r.t)
			} else {
				sh.handleRelease(s, int(r.node), r.t)
			}
		}
		sh.bufs[s] = sh.bufs[s][:0]
	}
}

// handleEntry processes one CS entry of node i on shard s at time t.
func (sh *Sharded) handleEntry(s, i int, t int64) {
	sl := &sh.slots[s][i]
	c := sl.occ
	if c < 0 || sl.entered {
		return // spurious: a corruption forged the phase with nobody served
	}
	st := &sh.cst[c]
	if st.acq == nil {
		return
	}
	sl.entered = true
	multi := len(st.acq.Set()) > 1
	if !st.recorded {
		sh.fair.RecordEntry(c, t-st.arriveAt)
		st.recorded = true
	}
	if multi {
		sh.monitor.Observe(hme.OpGrant, c, s, nil)
	}
	if err := st.acq.Grant(s); err != nil {
		// Ordering bug in the coordinator itself; the monitor's order
		// violation counter has already seen it via OpGrant.
		return
	}
	if next, ok := st.acq.Pending(); ok {
		sh.requestShard(c, next, t)
		return
	}
	// Whole set held: audit the holder's spec views, then release every
	// held shard together after the client's hold time.
	if multi {
		sh.monitor.Audit(c, func(shard int) tme.Phase { return sh.sims[shard].Node(i).Phase() })
	}
	relT := t + sh.clients[c].NextHold()
	held := st.acq.Held()
	st.relLeft = len(held)
	for _, shard := range held {
		sh.sims[shard].ReleaseAt(relT, i)
	}
}

// handleRelease processes one release event of node i on shard s at time
// t: free the slot, serve the next parked arrival, and complete the
// client's loop when its last shard is released.
func (sh *Sharded) handleRelease(s, i int, t int64) {
	sl := &sh.slots[s][i]
	c := sl.occ
	if c < 0 {
		return
	}
	sl.occ = -1
	sl.entered = false
	if rec := sl.qh; rec != nil {
		sl.qh = rec.next
		if sl.qh == nil {
			sl.qt = nil
		}
		sl.qlen--
		sl.occ = rec.client
		sl.entered = false
		sl.reqAt = t
		sh.sims[s].RequestAt(t, i)
		sh.pool.Put(rec)
	}
	st := &sh.cst[c]
	if st.relLeft > 0 {
		st.relLeft--
	}
	if st.relLeft > 0 || st.acq == nil || !st.acq.Done() {
		return
	}
	if len(st.acq.Set()) > 1 {
		sh.monitor.Observe(hme.OpRelease, c, 0, nil)
	}
	st.acq = nil
	st.loops++
	if sh.cfg.MaxLoops == 0 || st.loops < sh.cfg.MaxLoops {
		sh.pushArrival(arrival{at: t + sh.clients[c].NextThink(), client: int32(c)})
	} else if !st.done {
		st.done = true
		sh.done++
	}
}

// skipAhead fast-forwards over windows in which no shard has events and no
// arrival is due, using the group's virtual-clock low-water-mark.
func (sh *Sharded) skipAhead(horizon int64) {
	next := int64(-1)
	if low, ok := sh.group.LowWater(); ok {
		next = low
	}
	if len(sh.heap) > 0 && (next < 0 || sh.heap[0].at < next) {
		next = sh.heap[0].at
	}
	if next < 0 || next <= sh.now+sh.cfg.Window {
		return
	}
	if next > horizon {
		next = horizon
	}
	// Land the interesting time inside the next window.
	w := sh.cfg.Window
	sh.now += (next - sh.now - 1) / w * w
	for _, s := range sh.sims {
		// Advance quiescent cores so RequestAt/ReleaseAt clamp correctly.
		s.core.Run(sh.now)
	}
}

// String summarizes the run for logs.
func (sh *Sharded) String() string {
	total := 0
	for i := range sh.cst {
		total += sh.cst[i].loops
	}
	return fmt.Sprintf("sharded{s=%d n=%d c=%d t=%d loops=%d done=%d}",
		sh.cfg.Shards, sh.cfg.N, len(sh.clients), sh.now, total, sh.done)
}

// Arrival heap: a plain binary min-heap ordered by (at, client) — the
// coordinator's only scheduling structure, kept dependency-free like the
// engine's event heap.

func (sh *Sharded) pushArrival(a arrival) {
	sh.heap = append(sh.heap, a)
	i := len(sh.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !arrivalLess(sh.heap[i], sh.heap[p]) {
			break
		}
		sh.heap[i], sh.heap[p] = sh.heap[p], sh.heap[i]
		i = p
	}
}

func (sh *Sharded) popArrival() arrival {
	h := sh.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sh.heap = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && arrivalLess(h[l], h[small]) {
			small = l
		}
		if r < last && arrivalLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

func arrivalLess(a, b arrival) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.client < b.client
}
