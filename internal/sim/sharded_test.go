package sim

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// testShardClient is a deterministic ShardClient: fixed think/hold gaps
// and a cycled resource-draw sequence.
type testShardClient struct {
	think, hold int64
	seq         []int
	i           int
}

func (c *testShardClient) NextThink() int64 { return c.think }
func (c *testShardClient) NextHold() int64  { return c.hold }
func (c *testShardClient) Open() bool       { return false }
func (c *testShardClient) NextResource(n int) int {
	r := c.seq[c.i%len(c.seq)] % n
	c.i++
	return r
}

func shardedCfg(seed int64) ShardedConfig {
	return ShardedConfig{
		Shards:   3,
		N:        4,
		Clients:  8,
		Seed:     seed,
		NewNode:  raFactory,
		MaxLoops: 5,
		NewWrapper: func(shard, id int) wrapper.Level2 {
			return wrapper.NewTimed(200)
		},
		WrapperEvery: 50,
		NewClient: func(c int) ShardClient {
			return &testShardClient{think: 10, hold: 3, seq: []int{c, c + 1, c + 2}}
		},
		Obs:         obs.New(obs.Options{}),
		NewShardObs: func(int) *obs.Obs { return obs.New(obs.Options{}) },
	}
}

func TestShardedCompletesAllLoops(t *testing.T) {
	sh := NewSharded(shardedCfg(1))
	sh.Run(100000)
	if sh.LoopsDone() != 8 {
		t.Fatalf("clients done = %d, want 8 (%s)", sh.LoopsDone(), sh)
	}
	total := 0
	for s := 0; s < sh.Shards(); s++ {
		total += len(sh.Shard(s).Metrics().Entries)
	}
	if total != 8*5 {
		t.Fatalf("total entries across shards = %d, want 40", total)
	}
}

func TestShardedIsDeterministic(t *testing.T) {
	run := func() ([][]Entry, []int) {
		sh := NewSharded(shardedCfg(42))
		sh.Run(100000)
		entries := make([][]Entry, sh.Shards())
		for s := range entries {
			entries[s] = sh.Shard(s).Metrics().Entries
		}
		loops := make([]int, 8)
		for c := range loops {
			loops[c] = sh.Loops(c)
		}
		return entries, loops
	}
	e1, l1 := run()
	e2, l2 := run()
	for s := range e1 {
		if len(e1[s]) != len(e2[s]) {
			t.Fatalf("shard %d: %d vs %d entries across runs", s, len(e1[s]), len(e2[s]))
		}
		for i := range e1[s] {
			if e1[s][i] != e2[s][i] {
				t.Fatalf("shard %d entry %d differs: %+v vs %+v", s, i, e1[s][i], e2[s][i])
			}
		}
	}
	for c := range l1 {
		if l1[c] != l2[c] {
			t.Fatalf("client %d loops differ: %d vs %d", c, l1[c], l2[c])
		}
	}
}

func TestShardedResourceDrawsTargetShards(t *testing.T) {
	cfg := shardedCfg(7)
	// Every client draws shard 2 only: all traffic must land there.
	cfg.NewClient = func(c int) ShardClient {
		return &testShardClient{think: 10, hold: 3, seq: []int{2}}
	}
	sh := NewSharded(cfg)
	sh.Run(100000)
	if n := len(sh.Shard(2).Metrics().Entries); n != 8*5 {
		t.Fatalf("shard 2 entries = %d, want 40", n)
	}
	for _, s := range []int{0, 1} {
		if n := len(sh.Shard(s).Metrics().Entries); n != 0 {
			t.Fatalf("shard %d entries = %d, want 0", s, n)
		}
	}
}

func TestShardedCrossShardAcquisitions(t *testing.T) {
	cfg := shardedCfg(9)
	cfg.CrossEvery = 2 // every second loop locks two skew-drawn shards
	sh := NewSharded(cfg)
	sh.Run(200000)
	if sh.LoopsDone() != 8 {
		t.Fatalf("clients done = %d, want 8 (%s)", sh.LoopsDone(), sh)
	}
	if got := sh.Monitor().InFlight(); got != 0 {
		t.Fatalf("hme in-flight at quiescence = %d, want 0", got)
	}
	snap := cfg.Obs.Registry().Snapshot()
	if snap.Counter("hme_acquisitions_total") == 0 {
		t.Fatal("no cross-shard acquisitions recorded")
	}
	if v := snap.Counter("hme_order_violations_total"); v != 0 {
		t.Fatalf("hme order violations = %d, want 0", v)
	}
	if v := snap.Counter("hme_audit_violations_total"); v != 0 {
		t.Fatalf("hme audit violations = %d, want 0", v)
	}
	if snap.Counter("hme_releases_total") != snap.Counter("hme_acquisitions_total") {
		t.Fatalf("releases %d != acquisitions %d",
			snap.Counter("hme_releases_total"), snap.Counter("hme_acquisitions_total"))
	}
}

func TestShardedSingleShardDegenerates(t *testing.T) {
	cfg := shardedCfg(3)
	cfg.Shards = 1
	sh := NewSharded(cfg)
	sh.Run(100000)
	if sh.LoopsDone() != 8 {
		t.Fatalf("clients done = %d, want 8 (%s)", sh.LoopsDone(), sh)
	}
	if n := len(sh.Shard(0).Metrics().Entries); n != 8*5 {
		t.Fatalf("entries = %d, want 40", n)
	}
}
