package sim

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// This file implements engine.Surface (and the richer TME-aware extension
// the fault injector type-asserts for), so that one substrate-agnostic
// injector drives faults into the TME model. The generic Fault* methods
// keep incremental snapshots honest by bumping the dirty counters the
// same way the simulator's own mutations do.

// Channels enumerates the mesh's channels in deterministic order.
func (s *Sim) Channels() []channel.Endpoint { return s.endpoints() }

// QueueLen returns the number of messages in flight on ep.
func (s *Sim) QueueLen(ep channel.Endpoint) int {
	q := s.net.Chan(ep.Src, ep.Dst)
	if q == nil {
		return 0
	}
	return q.Len()
}

// FaultDrop removes the i-th in-flight message on ep.
func (s *Sim) FaultDrop(ep channel.Endpoint, i int) bool {
	q := s.net.Chan(ep.Src, ep.Dst)
	if q == nil || !q.Drop(i) {
		return false
	}
	s.dirtyNet()
	return true
}

// FaultDuplicate duplicates the i-th in-flight message on ep and gives the
// copy its own delivery opportunity after redeliver ticks.
func (s *Sim) FaultDuplicate(ep channel.Endpoint, i int, redeliver int64) bool {
	q := s.net.Chan(ep.Src, ep.Dst)
	if q == nil || !q.Duplicate(i) {
		return false
	}
	s.dirtyNet()
	s.ScheduleDelivery(ep, redeliver)
	return true
}

// FaultCorrupt damages the i-th in-flight message on ep with a generic
// field overwrite drawn from rng. TME-aware injectors use MutateInFlight
// for the paper's field-by-field corruption model instead.
func (s *Sim) FaultCorrupt(ep channel.Endpoint, i int, rng *rand.Rand) bool {
	return s.MutateInFlight(ep, i, func(m *tme.Message) {
		m.From = rng.Intn(s.cfg.N + 1) // may be out of range: receivers drop it
	})
}

// FaultPerturb corrupts the local state of process id, scrambling its
// implementation-internal structures from rng. Returns false when the node
// does not support corruption.
func (s *Sim) FaultPerturb(id int, rng *rand.Rand) bool {
	if id < 0 || id >= s.cfg.N {
		return false
	}
	node, ok := s.nodes[id].(tme.Corruptible)
	if !ok {
		return false
	}
	node.Corrupt(tme.Corruption{ScrambleInternal: true, Seed: rng.Int63()})
	s.dirtyNode(id)
	return true
}

// FaultFlush drops every in-flight message on ep.
func (s *Sim) FaultFlush(ep channel.Endpoint) bool {
	q := s.net.Chan(ep.Src, ep.Dst)
	if q == nil {
		return false
	}
	q.Clear()
	s.dirtyNet()
	return true
}

// MutateInFlight applies f to the i-th in-flight message on ep — the
// TME-typed corruption hook behind the generic fault surface.
func (s *Sim) MutateInFlight(ep channel.Endpoint, i int, f func(*tme.Message)) bool {
	q := s.net.Chan(ep.Src, ep.Dst)
	if q == nil || !q.Mutate(i, f) {
		return false
	}
	s.dirtyNet()
	return true
}

// CorruptibleNode returns process id's corruption hook, or nil when the
// node does not support state corruption.
func (s *Sim) CorruptibleNode(id int) tme.Corruptible {
	if id < 0 || id >= s.cfg.N {
		return nil
	}
	node, ok := s.nodes[id].(tme.Corruptible)
	if !ok {
		return nil
	}
	return node
}
