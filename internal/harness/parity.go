// Sim-to-real parity gate (E18): one seeded workload runs on the
// deterministic simulator AND the loopback live TCP cluster, both runs are
// projected onto a shared semantic snapshot (CS entries, requests, sampled
// ME1 violations, spec violations, convergence ticks), and the projections
// are diffed against each other and against the analytical twin's
// prediction under stated per-metric tolerances. Any divergence fails the
// gate — this is the regression net that lets substrates refactor
// aggressively: a change that shifts *semantics* (not timings) on one
// substrate breaks the build.
//
// The parity workload is deliberately think-dominated. The substrates'
// client loops differ mechanically — the sim client polls (a request rides
// the first think tick that finds the process thinking), the live driver
// blocks on entry — so their cycles only coincide when request latency and
// hold are small against the think draw. There the cycle is the think time
// on every substrate, counts become substrate-invariant, and the gate can
// afford tight tolerances. Safety metrics carry zero tolerance
// unconditionally: a clean run must be clean everywhere.
package harness

import (
	"fmt"
	"time"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/twin"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

// ParityConfig parameterizes one E18 parity run.
type ParityConfig struct {
	// N is the cluster size (default 3).
	N int
	// Seed drives the workload draws, the sim schedule, and the live
	// chaos proxy.
	Seed int64
	// Delta is the W' timeout in ticks (default 25); the live cluster
	// reads ticks as LiveTick (1ms).
	Delta int64
	// Horizon is the run length in ticks; the live run lasts
	// Horizon×LiveTick (default 1500).
	Horizon int64
	// Spec shapes the traffic on both substrates. Default: the parity
	// workload — think uniform [25,45], hold 1, think-dominated so the
	// substrates' cycle semantics coincide (see the package comment).
	Spec *workload.Spec
}

func (c ParityConfig) withDefaults() ParityConfig {
	if c.N <= 0 {
		c.N = 3
	}
	if c.Delta == 0 {
		c.Delta = 25
	}
	if c.Horizon <= 0 {
		c.Horizon = 2000
	}
	if c.Spec == nil {
		spec := workload.UniformSpec(40, 70, 1)
		c.Spec = &spec
	}
	return c
}

// ParityResult carries the three projections and their pairwise diffs.
type ParityResult struct {
	Sim  RunResult
	Live LiveResult
	Pred twin.Prediction
	// SimVsLive, SimVsTwin, LiveVsTwin are the pairwise semantic diffs.
	SimVsLive, SimVsTwin, LiveVsTwin []obs.MetricDiff
	// OK reports every diff of every pair inside its tolerance.
	OK bool
}

// Parity tolerances: counts get a relative band wide enough for the
// substrates' residual timing differences (the live blocking driver pays
// request latency per cycle that the polling sim client absorbs); safety
// and convergence metrics get zero — a fault-free run must be violation-
// free and convergence-free on every substrate, exactly.
const (
	parityCountTol = 0.20
	parityExactTol = 0.0
)

// parityTols maps each semantic metric to its gate tolerance.
func parityTols() map[string]float64 {
	return map[string]float64{
		"parity_entries":     parityCountTol,
		"parity_requests":    parityCountTol,
		"parity_me1_samples": parityExactTol,
		"parity_violations":  parityExactTol,
		"parity_conv_ticks":  parityExactTol,
	}
}

// RunParity executes the seeded workload on sim and live cluster, predicts
// it with the twin, and diffs the three semantic projections.
func RunParity(cfg ParityConfig) (ParityResult, error) {
	cfg = cfg.withDefaults()
	spec := *cfg.Spec

	simRes := Run(RunConfig{
		Algo: RA, N: cfg.N, Seed: cfg.Seed, Delta: cfg.Delta,
		Monitor:     true,
		Workload:    workload.NewGen(spec, cfg.Seed+100, cfg.N),
		Horizon:     cfg.Horizon,
		MaxRequests: 1 << 20,
	})

	// The chaos band is tighter than the live default: the blocking live
	// driver pays the request round trip once per cycle (the polling sim
	// client absorbs it inside a think draw), so parity keeps that round
	// trip small against the think time to stay inside the count tolerance.
	liveRes, err := RunLive(LiveConfig{
		N: cfg.N, Seed: cfg.Seed,
		Duration:      time.Duration(cfg.Horizon) * LiveTick,
		Delta:         time.Duration(cfg.Delta) * LiveTick,
		ChaosMinDelay: 500 * time.Microsecond,
		ChaosMaxDelay: 1500 * time.Microsecond,
		Workload:      &spec,
	})
	if err != nil {
		return ParityResult{Sim: simRes}, err
	}

	pred := twin.Predict(twin.SpecParams(twin.Params{
		N: cfg.N, Delta: cfg.Delta, Horizon: cfg.Horizon,
	}, spec))

	res := parityEval(simRes, liveRes, pred)
	return res, nil
}

// parityEval projects the three results onto the semantic snapshot and
// diffs them pairwise. Split from RunParity so the negative test can
// perturb one projection and watch the gate fail without a second live
// run.
func parityEval(simRes RunResult, liveRes LiveResult, pred twin.Prediction) ParityResult {
	res := ParityResult{Sim: simRes, Live: liveRes, Pred: pred}
	tols := parityTols()
	sim := paritySnapshot(simRes)
	live := liveParitySnapshot(liveRes)
	tw := twinParitySnapshot(pred)
	res.SimVsLive = obs.DiffSnapshots(sim, live, tols)
	res.SimVsTwin = obs.DiffSnapshots(sim, tw, tols)
	res.LiveVsTwin = obs.DiffSnapshots(live, tw, tols)
	res.OK = obs.AllWithin(res.SimVsLive) && obs.AllWithin(res.SimVsTwin) &&
		obs.AllWithin(res.LiveVsTwin)
	return res
}

// paritySnapshot projects a sim run onto the semantic parity metrics. ME1
// violations surface in the monitor summary under the "invariant" operator
// (ME1 is the one invariant in the suite).
func paritySnapshot(r RunResult) *obs.Snapshot {
	s := obs.NewSnapshot()
	s.Counters["parity_entries"] = int64(r.Entries)
	s.Counters["parity_requests"] = int64(r.Requests)
	s.Counters["parity_me1_samples"] = int64(r.ViolationSummary["invariant"].Count)
	s.Counters["parity_violations"] = int64(r.Violations)
	s.Gauges["parity_conv_ticks"] = r.ConvergenceTime
	return s
}

// liveParitySnapshot projects a live run. The live safety monitor samples
// ME1 only, so sampled violations stand in for both safety metrics; a
// never-converged run projects its -1 sentinel, which diverges from any
// clean projection — exactly the failure the gate wants to catch.
func liveParitySnapshot(r LiveResult) *obs.Snapshot {
	s := obs.NewSnapshot()
	s.Counters["parity_entries"] = int64(r.Entries)
	s.Counters["parity_requests"] = int64(r.Requests)
	s.Counters["parity_me1_samples"] = int64(r.SafetyViolations)
	s.Counters["parity_violations"] = int64(r.SafetyViolations)
	s.Gauges["parity_conv_ticks"] = r.ConvergenceMS // 1 tick = 1ms live
	return s
}

// twinParitySnapshot projects the analytical prediction: expected counts,
// and a clean (zero) safety/convergence picture — the model predicts the
// fault-free run.
func twinParitySnapshot(p twin.Prediction) *obs.Snapshot {
	s := obs.NewSnapshot()
	s.Counters["parity_entries"] = int64(p.Entries + 0.5)
	s.Counters["parity_requests"] = int64(p.Requests + 0.5)
	s.Counters["parity_me1_samples"] = 0
	s.Counters["parity_violations"] = 0
	s.Gauges["parity_conv_ticks"] = 0
	return s
}

// ParityGate runs E18 at the given scale and renders the gate table. The
// boolean is the gate verdict: false means some pair of substrates (or a
// substrate and the twin) diverged beyond tolerance.
func ParityGate(scale Scale) (*Table, bool) {
	cfg := ParityConfig{Seed: 11}
	if scale == Full {
		cfg.Horizon = 4000
	}
	res, err := RunParity(cfg)
	cfg = cfg.withDefaults()
	t := &Table{
		Title: fmt.Sprintf("E18: sim-to-real parity gate, n=%d, δ=%d, horizon=%d ticks (live: %s)",
			cfg.N, cfg.Delta, cfg.Horizon, time.Duration(cfg.Horizon)*LiveTick),
		Header: []string{"pair", "metric", "a", "b", "rel %", "tol %", "verdict"},
	}
	if err != nil {
		t.AddRow("live", "error: "+err.Error(), "-", "-", "-", "-", "-")
		return t, false
	}
	for _, pair := range []struct {
		name  string
		diffs []obs.MetricDiff
	}{
		{"sim vs live", res.SimVsLive},
		{"sim vs twin", res.SimVsTwin},
		{"live vs twin", res.LiveVsTwin},
	} {
		for _, d := range pair.diffs {
			verdict := "ok"
			if !d.Within {
				verdict = "DIVERGED"
			}
			t.AddRow(pair.name, d.Name,
				fmt.Sprint(d.A), fmt.Sprint(d.B),
				fmt.Sprintf("%.1f", 100*d.Rel), fmt.Sprintf("%.1f", 100*d.Tol),
				verdict)
		}
	}
	t.Notes = append(t.Notes,
		"one seeded think-dominated workload on sim (virtual ticks) and live TCP loopback (1 tick = 1ms), plus the twin's closed-form prediction",
		"counts gate at ±20%; ME1 samples, violations, and convergence ticks gate exactly — a clean run must be clean on every substrate",
		fmt.Sprintf("gate verdict: ok=%v", res.OK),
	)
	return t, res.OK
}
