package harness

import (
	"fmt"
	"math"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/twin"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

// The twin's acceptance contract (ISSUE 10): convergence ticks and
// messages-per-entry predicted within 25% of sim measurements across an
// n×δ×load grid. Entries carry the same bound; W' resend volume is the
// model's stated loose metric and gets a factor-2 band instead.
const (
	twinTol        = 0.25
	twinWrapperTol = 2.0
)

// twinCell is one grid point of the validation sweep.
type twinCell struct {
	n                int
	delta            int64
	load             string
	tmin, tmax, hold int64
}

func twinGrid() []twinCell {
	var grid []twinCell
	for _, n := range []int{3, 5, 8} {
		for _, delta := range []int64{10, 25, 50} {
			for _, load := range []struct {
				name             string
				tmin, tmax, hold int64
			}{
				{"heavy", 5, 20, 3},  // the sim's default client, near saturation at n≥5
				{"light", 30, 60, 3}, // think-dominated, sub-saturation everywhere
			} {
				grid = append(grid, twinCell{n, delta, load.name, load.tmin, load.tmax, load.hold})
			}
		}
	}
	return grid
}

// TestTwinValidationGrid is the model-vs-measurement gate: every cell of
// the n×δ×load grid must see sim throughput and message cost inside the
// stated tolerance of the closed-form prediction.
func TestTwinValidationGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep; skipped under -short")
	}
	const (
		horizon = 20000
		seeds   = 2
	)
	grid := twinGrid()
	type cellResult struct {
		cell              twinCell
		entries, mpe, wpe float64
		pred              twin.Prediction
	}
	results := ParMap(len(grid), func(i int) cellResult {
		c := grid[i]
		spec := workload.UniformSpec(c.tmin, c.tmax, c.hold)
		var entries, prog, wrap int
		for s := 0; s < seeds; s++ {
			r := Run(RunConfig{
				Algo: RA, N: c.n, Seed: int64(s), Delta: c.delta,
				Workload: workload.NewGen(spec, int64(s)+100, c.n),
				Horizon:  horizon, MaxRequests: 1 << 20,
			})
			entries += r.Entries
			prog += r.ProgramMsgs
			wrap += r.WrapperMsgs
		}
		pred := twin.Predict(twin.SpecParams(twin.Params{
			N: c.n, Delta: c.delta, Horizon: horizon,
		}, spec))
		return cellResult{
			cell:    c,
			entries: float64(entries) / seeds,
			mpe:     float64(prog) / float64(entries),
			wpe:     float64(wrap) / float64(entries),
			pred:    pred,
		}
	})
	for _, r := range results {
		name := fmt.Sprintf("n=%d δ=%d %s", r.cell.n, r.cell.delta, r.cell.load)
		if rel := relErr(r.pred.Entries, r.entries); rel > twinTol {
			t.Errorf("%s: entries sim=%.0f twin=%.0f (%.0f%% > %.0f%%)",
				name, r.entries, r.pred.Entries, 100*rel, 100*twinTol)
		}
		if rel := relErr(r.pred.MsgsPerEntry, r.mpe); rel > twinTol {
			t.Errorf("%s: msgs/entry sim=%.2f twin=%.2f (%.0f%% > %.0f%%)",
				name, r.mpe, r.pred.MsgsPerEntry, 100*rel, 100*twinTol)
		}
		if ratio := bandRatio(r.pred.WrapperMsgsPerEntry, r.wpe); ratio > twinWrapperTol {
			t.Errorf("%s: wrapper msgs/entry sim=%.2f twin=%.2f (×%.2f > ×%.1f)",
				name, r.wpe, r.pred.WrapperMsgsPerEntry, ratio, twinWrapperTol)
		}
	}
}

// TestTwinConvergenceGrid validates the §4 deadlock-recovery prediction
// against the measured fault→re-entry latency on the same n×δ grid.
func TestTwinConvergenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep; skipped under -short")
	}
	type cell struct {
		n     int
		delta int64
	}
	var grid []cell
	for _, n := range []int{3, 5, 8} {
		for _, delta := range []int64{10, 25, 50} {
			grid = append(grid, cell{n, delta})
		}
	}
	const seeds = 3
	type convResult struct {
		cell cell
		sim  float64
		pred float64
	}
	results := ParMap(len(grid), func(i int) convResult {
		c := grid[i]
		var lat float64
		for s := 0; s < seeds; s++ {
			r := Run(RunConfig{
				Algo: RA, N: c.n, Seed: int64(s), Delta: c.delta,
				DeadlockFault: true, Horizon: 20000,
			})
			if !r.Converged {
				lat += math.Inf(1)
				continue
			}
			lat += float64(r.FirstEntryAfterFault - r.LastFault)
		}
		pred := twin.Predict(twin.Params{N: c.n, Delta: c.delta, Horizon: 20000})
		return convResult{cell: c, sim: lat / seeds, pred: pred.ConvergenceTicks}
	})
	for _, r := range results {
		if rel := relErr(r.pred, r.sim); rel > twinTol {
			t.Errorf("n=%d δ=%d: convergence sim=%.1f twin=%.1f (%.0f%% > %.0f%%)",
				r.cell.n, r.cell.delta, r.sim, r.pred, 100*rel, 100*twinTol)
		}
	}
}

// relErr is the symmetric relative error |a−b| / max(|a|,|b|).
func relErr(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// bandRatio is the larger-over-smaller ratio, the natural band for a
// quantity that is only order-of-magnitude modeled.
func bandRatio(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		if a == b {
			return 1
		}
		return math.Inf(1)
	}
	return math.Max(a/b, b/a)
}
