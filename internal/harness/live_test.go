package harness

import (
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/wire"
)

// A fault-free loopback cluster makes progress with zero safety
// violations.
func TestRunLiveCleanRun(t *testing.T) {
	res, err := RunLive(LiveConfig{N: 3, Seed: 1, Duration: 900 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries == 0 {
		t.Fatal("no CS entries in a clean run")
	}
	if res.SafetyViolations != 0 {
		t.Errorf("%d safety violations in a fault-free run", res.SafetyViolations)
	}
	if !res.Converged || res.ConvergenceMS != 0 {
		t.Errorf("clean run: converged=%v convergence=%dms, want true/0", res.Converged, res.ConvergenceMS)
	}
	if res.FaultsApplied != 0 {
		t.Errorf("FaultsApplied = %d without a schedule", res.FaultsApplied)
	}
	if res.Snapshot == nil || res.Snapshot.Counter("runtime_entries_total") == 0 {
		t.Error("snapshot missing runtime entry counter")
	}
}

// The partition/heal integration test of the issue: isolate one node, heal,
// and assert the wrapped cluster re-converges to Lspec-conformant behaviour
// (progress, no post-convergence violations) within the W' timeout bound.
func TestRunLivePartitionHealReconverges(t *testing.T) {
	const (
		dur   = 2500 * time.Millisecond
		delta = 25 * time.Millisecond
	)
	sched := &wire.FaultSchedule{
		Seed: 5,
		Events: []wire.FaultEvent{
			{AtMS: 500, Verb: "partition", Group: []int{0}},
			{AtMS: 1100, Verb: "heal"},
		},
	}
	res, err := RunLive(LiveConfig{
		N: 3, Seed: 5, Duration: dur, Delta: delta, Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsApplied != 2 {
		t.Errorf("FaultsApplied = %d, want 2 (partition + heal)", res.FaultsApplied)
	}
	if !res.Converged {
		t.Fatalf("cluster did not re-converge after heal: %+v", res)
	}
	if res.SafetyViolationsAfterConvergence != 0 {
		t.Errorf("%d safety violations after convergence", res.SafetyViolationsAfterConvergence)
	}
	if res.ConvergenceMS < 0 {
		t.Errorf("ConvergenceMS = %d, want finite", res.ConvergenceMS)
	}
	// Re-convergence bound: progress must resume within a small number of
	// W' timeouts after the heal (generous ×20 for loaded CI machines —
	// the wrapper itself fires within ~2δ).
	if res.FirstEntryAfterFaultMS < 0 {
		t.Fatal("no entry after the heal")
	}
	healMS := int64(1100)
	bound := 20 * delta.Milliseconds()
	if gap := res.FirstEntryAfterFaultMS - healMS; gap > bound {
		t.Errorf("first entry %dms after heal, want ≤ %dms (W' bound)", gap, bound)
	}
}

// A full seeded chaos schedule (every fault class) leaves the wrapped
// cluster converged.
func TestRunLiveSeededScheduleConverges(t *testing.T) {
	dur := 1800 * time.Millisecond
	sched := wire.NewFaultSchedule(3, wire.ScheduleConfig{
		N: 3, Duration: dur, Bursts: 3, MaxPerBurst: 3,
		Mix: fault.DefaultMix, Partition: true,
	})
	res, err := RunLive(LiveConfig{N: 3, Seed: 3, Duration: dur, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsApplied == 0 {
		t.Error("schedule applied no faults")
	}
	if !res.Converged {
		t.Fatalf("wrapped cluster did not converge under schedule: %+v", res)
	}
	if res.SafetyViolationsAfterConvergence != 0 {
		t.Errorf("%d violations after convergence", res.SafetyViolationsAfterConvergence)
	}
}

func TestLiveClusterTableQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("live experiment")
	}
	tab := LiveCluster(Quick)
	if len(tab.Rows) != 2 {
		t.Fatalf("E15 rows = %d, want 2", len(tab.Rows))
	}
	// The wrapped row (last) must have converged with no post-convergence
	// violations.
	wrapped := tab.Rows[len(tab.Rows)-1]
	if wrapped[6] != "0" || wrapped[7] != "true" {
		t.Errorf("wrapped row = %v, want after-conv 0 / converged true", wrapped)
	}
}
