package harness

import (
	"fmt"
	"time"

	"github.com/graybox-stabilization/graybox/internal/scenario"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

// WorkloadMatrix runs E16: the seeded workload × scenario matrix. Every
// cell shapes client traffic with a workload preset and injects a named
// gray-failure scenario, wrapped (W' δ=5) versus unwrapped, and reports
// convergence plus the per-client fairness telemetry (entry-count ratio
// and latency tail) from the obs snapshot. The same presets compile for
// the live TCP substrate, so the table closes with live rows driven by
// the identical seeded matrix — the workload/scenario pair is a property
// of the run description, not of any one substrate.
func WorkloadMatrix(scale Scale) *Table {
	workloads := []string{"uniform", "bursty", "hotshard"}
	scenarios := []string{"mixed-burst", "gray"}
	if scale == Full {
		workloads = append(workloads, "poisson", "diurnal", "heavytail", "mixed")
		scenarios = append(scenarios, "gray-burst", "partition", "churn")
	}
	t := &Table{
		Title: "E16 (workload × scenario matrix): traffic shape vs gray failure, wrapped vs unwrapped",
		Header: []string{"substrate", "workload", "scenario", "wrapper",
			"converged", "mean conv", "mean entries", "fair ratio", "fair p95"},
	}
	seeds := scale.seeds()
	for _, wl := range workloads {
		spec, err := workload.Preset(wl)
		if err != nil {
			t.AddRow("sim", wl, "-", "-", "error: "+err.Error(), "-", "-", "-", "-")
			continue
		}
		for _, scName := range scenarios {
			sc, err := scenario.Preset(scName)
			if err != nil {
				t.AddRow("sim", wl, scName, "-", "error: "+err.Error(), "-", "-", "-", "-")
				continue
			}
			for _, delta := range []int64{NoWrapper, 5} {
				wl, spec, sc, delta := wl, spec, sc, delta
				results := ParMap(seeds, func(seed int) RunResult {
					return Run(RunConfig{
						Algo: RA, N: 4,
						Seed: int64(seed), FaultSeed: int64(seed) + 6000,
						Delta:       delta,
						Workload:    workload.NewGen(spec, int64(seed)+100, 4),
						Scenario:    &sc,
						MaxRequests: 40,
						Horizon:     40000,
					})
				})
				var converged int
				var convSum int64
				var entries int
				var ratioSum, p95Sum int64
				for _, r := range results {
					if r.Converged {
						converged++
						convSum += r.ConvergenceTime
					}
					entries += r.Entries
					ratioSum += r.Obs.Gauge("fair_entry_ratio_x1000", 0)
					p95Sum += r.Obs.Gauge("fair_latency_p95", 0)
				}
				meanConv := "-"
				if converged > 0 {
					meanConv = fmt.Sprintf("%.1f", float64(convSum)/float64(converged))
				}
				t.AddRow("sim", wl, sc.Name, wrapperName(delta),
					fmt.Sprintf("%d/%d", converged, seeds), meanConv,
					fmt.Sprintf("%.1f", float64(entries)/float64(seeds)),
					fmt.Sprintf("%.2f", float64(ratioSum)/float64(seeds)/1000),
					fmt.Sprintf("%.1f", float64(p95Sum)/float64(seeds)))
			}
		}
	}

	// Live rows: the same named presets, compiled for the TCP loopback
	// cluster — one seeded matrix, two substrates.
	liveDur := 1200 * time.Millisecond
	if scale == Full {
		liveDur = 4 * time.Second
	}
	liveSC, _ := scenario.Preset("gray-burst")
	liveWL, _ := workload.Preset("bursty")
	for _, row := range []struct {
		name  string
		delta time.Duration
	}{
		{"none", -1},
		{"W' δ=25ms", 25 * time.Millisecond},
	} {
		res, err := RunLive(LiveConfig{
			N: 3, Seed: 7, Duration: liveDur, Delta: row.delta,
			Workload: &liveWL, Scenario: &liveSC,
		})
		if err != nil {
			t.AddRow("live", "bursty", "gray-burst", row.name,
				"error: "+err.Error(), "-", "-", "-", "-")
			continue
		}
		t.AddRow("live", "bursty", "gray-burst", row.name,
			fmt.Sprint(res.Converged),
			fmt.Sprintf("%dms", res.ConvergenceMS),
			fmt.Sprint(res.Entries),
			fmt.Sprintf("%.2f", float64(res.Snapshot.Gauge("fair_entry_ratio_x1000", 0))/1000),
			fmt.Sprint(res.Snapshot.Gauge("fair_latency_p95", 0)))
	}

	t.Notes = append(t.Notes,
		"fair ratio = max/min per-client entry count (0 = a client starved); fair p95 = per-client",
		"entry-latency tail in workload ticks (1 virtual tick on sim, 1ms live)",
		"expected shape: wrapped rows converge under every traffic shape × failure scenario with",
		"fair ratio near 1 (hotshard skews it by design); unwrapped rows starve or inflate the",
		"fairness tail under gray scenarios — graybox stabilization is workload-independent")
	return t
}

// wrapperName labels a δ column value.
func wrapperName(delta int64) string {
	if delta == NoWrapper {
		return "none"
	}
	return fmt.Sprintf("W'(δ=%d)", delta)
}
