package harness

import (
	"fmt"
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/graybox"
	"github.com/graybox-stabilization/graybox/internal/ring"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/synth"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/tokenring"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// Scale sizes an experiment sweep: Quick for tests and CI, Full for the
// paper-reproduction run of cmd/experiments.
type Scale int

// Sweep scales.
const (
	Quick Scale = iota + 1
	Full
)

func (s Scale) seeds() int {
	if s == Full {
		return 15
	}
	return 5
}

func (s Scale) ns() []int {
	if s == Full {
		return []int{3, 5, 8, 12, 16, 20}
	}
	return []int{3, 5}
}

func (s Scale) deltas() []int64 {
	if s == Full {
		return []int64{0, 1, 2, 5, 10, 20, 50, 100}
	}
	return []int64{0, 5, 50}
}

// Fig1 runs experiment E1: the Figure 1 counterexample, decided by the
// model checker. Rows are the three formal queries with their outcomes.
func Fig1() *Table {
	a, c := graybox.Fig1A(), graybox.Fig1C()
	t := &Table{
		Title:  "E1 (Figure 1): [C⇒A]_init ∧ A self-stabilizing ⇏ C stabilizing",
		Header: []string{"query", "result", "witness"},
	}
	r := graybox.Implements(c, a)
	t.AddRow("[C ⇒ A]_init", fmt.Sprint(r.Holds), "-")
	okA, _ := graybox.SelfStabilizing(a)
	t.AddRow("A stabilizing to A", fmt.Sprint(okA), "-")
	okC, l := graybox.StabilizingTo(c, a)
	witness := "-"
	if l != nil {
		witness = l.String()
	}
	t.AddRow("C stabilizing to A", fmt.Sprint(okC), witness)
	re := graybox.EverywhereImplements(c, a)
	t.AddRow("[C ⇒ A] (everywhere)", fmt.Sprint(re.Holds), re.String())
	t.Notes = append(t.Notes,
		"expected: true, true, false, false — exactly the paper's Figure 1")
	return t
}

// Stabilization runs E2/E3: convergence of algo ▯ W' under mixed fault
// bursts, swept over system size, versus the unwrapped baseline.
func Stabilization(algo Algo, scale Scale) *Table {
	t := &Table{
		Title: fmt.Sprintf("E%d (Thm 8%s): stabilization of %v under fault bursts",
			map[Algo]int{RA: 2, Lamport: 3}[algo],
			map[Algo]string{RA: "", Lamport: ", Cor 11"}[algo], algo),
		Header: []string{"n", "wrapper", "converged", "mean conv time", "max conv time",
			"mean entries after fault", "runs starved"},
	}
	for _, n := range scale.ns() {
		for _, delta := range []int64{NoWrapper, 5} {
			var (
				converged, starved int
				sumConv, maxConv   int64
				sumEntries         int
			)
			seeds := scale.seeds()
			n, delta := n, delta
			results := ParMap(seeds, func(seed int) RunResult {
				return Run(RunConfig{
					Algo: algo, N: n,
					Seed: int64(seed), FaultSeed: int64(seed) + 1000,
					Delta:      delta,
					FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 3 * n,
					// Enough post-fault workload that every process pair
					// exchanges messages again: corrupted local copies
					// are corrected by Request/Reply Spec traffic, per
					// the Lemma 7 proof sketch.
					MaxRequests: 40,
					Horizon:     40000,
					Monitor:     true,
				})
			})
			for _, r := range results {
				if r.Converged {
					converged++
				}
				if len(r.Starved) > 0 {
					starved++
				}
				sumConv += r.ConvergenceTime
				if r.ConvergenceTime > maxConv {
					maxConv = r.ConvergenceTime
				}
				sumEntries += r.EntriesAfterFault
			}
			wname := "W'(δ=5)"
			if delta == NoWrapper {
				wname = "none"
			}
			t.AddRow(fmt.Sprint(n), wname,
				fmt.Sprintf("%d/%d", converged, seeds),
				fmt.Sprintf("%.1f", float64(sumConv)/float64(seeds)),
				fmt.Sprint(maxConv),
				fmt.Sprintf("%.1f", float64(sumEntries)/float64(seeds)),
				fmt.Sprint(starved))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: wrapped rows converge on every seed with bounded convergence time;",
		"unwrapped rows starve on a substantial fraction of seeds (faults leave permanent inconsistency)")
	return t
}

// Deadlock runs E4: the §4 mutual-inconsistency deadlock — all in-flight
// messages dropped while requests are outstanding.
func Deadlock(scale Scale) *Table {
	t := &Table{
		Title: "E4 (§4): deadlock without W, recovery with W'",
		Header: []string{"algo", "wrapper", "recovered runs",
			"mean recovery latency", "max recovery latency"},
	}
	for _, algo := range []Algo{RA, Lamport} {
		for _, delta := range []int64{NoWrapper, 0, 10} {
			var recovered int
			var sumLat, maxLat int64
			seeds := scale.seeds()
			for seed := 0; seed < seeds; seed++ {
				r := Run(RunConfig{
					Algo: algo, N: 4,
					Seed:          int64(seed),
					Delta:         delta,
					DeadlockFault: true,
					Horizon:       30000,
				})
				if r.EntriesAfterFault > 0 {
					recovered++
					lat := r.FirstEntryAfterFault - r.LastFault
					sumLat += lat
					if lat > maxLat {
						maxLat = lat
					}
				}
			}
			wname := fmt.Sprintf("W'(δ=%d)", delta)
			if delta == NoWrapper {
				wname = "none"
			}
			mean := "-"
			if recovered > 0 {
				mean = fmt.Sprintf("%.1f", float64(sumLat)/float64(recovered))
			}
			t.AddRow(algo.String(), wname,
				fmt.Sprintf("%d/%d", recovered, seeds), mean, fmt.Sprint(maxLat))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: 0 recoveries without the wrapper (deadlock is permanent);",
		"all runs recover with W', with latency growing in δ")
	return t
}

// TimeoutSweep runs E5: δ trades recovery latency against steady-state
// wrapper message overhead; δ=0 is the eager W.
func TimeoutSweep(algo Algo, scale Scale) *Table {
	t := &Table{
		Title: fmt.Sprintf("E5 (W' tuning): timeout δ sweep on %v", algo),
		Header: []string{"δ", "mean recovery latency", "wrapper msgs (faulty)",
			"wrapper msgs (fault-free)", "wrapper msgs/entry (fault-free)"},
	}
	seeds := scale.seeds()
	for _, delta := range scale.deltas() {
		var sumLat int64
		var recovered, faultyWrap int
		var cleanWrap, cleanEntries int
		for seed := 0; seed < seeds; seed++ {
			// Faulty run: deliberate deadlock, measure recovery.
			r := Run(RunConfig{
				Algo: algo, N: 4,
				Seed:          int64(seed),
				Delta:         delta,
				DeadlockFault: true,
				Horizon:       30000,
			})
			if r.EntriesAfterFault > 0 {
				recovered++
				sumLat += r.FirstEntryAfterFault - r.LastFault
			}
			faultyWrap += r.WrapperMsgs
			// Fault-free run: measure steady-state overhead.
			c := Run(RunConfig{
				Algo: algo, N: 4,
				Seed:  int64(seed),
				Delta: delta,
			})
			cleanWrap += c.WrapperMsgs
			cleanEntries += c.Entries
		}
		mean := "-"
		if recovered > 0 {
			mean = fmt.Sprintf("%.1f", float64(sumLat)/float64(recovered))
		}
		perEntry := "-"
		if cleanEntries > 0 {
			perEntry = fmt.Sprintf("%.2f", float64(cleanWrap)/float64(cleanEntries))
		}
		t.AddRow(fmt.Sprint(delta), mean,
			fmt.Sprint(faultyWrap/seeds), fmt.Sprint(cleanWrap/seeds), perEntry)
	}
	t.Notes = append(t.Notes,
		"expected shape: recovery latency grows roughly linearly in δ;",
		"steady-state wrapper messages fall sharply as δ grows (the paper's tuning claim);",
		"δ=0 reproduces the eager W exactly")
	return t
}

// Interference runs E6 (Lemma 6): in fault-free runs the wrapper changes no
// observable behaviour — identical entries, zero violations — only extra
// messages.
func Interference(scale Scale) *Table {
	t := &Table{
		Title: "E6 (Lemma 6): interference freedom in fault-free runs",
		Header: []string{"algo", "wrapper", "entries", "violations",
			"starved", "program msgs", "wrapper msgs"},
	}
	for _, algo := range []Algo{RA, Lamport} {
		for _, delta := range []int64{NoWrapper, 0, 10} {
			var entries, violations, starved, pmsgs, wmsgs int
			seeds := scale.seeds()
			for seed := 0; seed < seeds; seed++ {
				r := Run(RunConfig{
					Algo: algo, N: 5,
					Seed:    int64(seed),
					Delta:   delta,
					Monitor: true,
				})
				entries += r.Entries
				violations += r.Violations
				starved += len(r.Starved)
				pmsgs += r.ProgramMsgs
				wmsgs += r.WrapperMsgs
			}
			wname := fmt.Sprintf("W'(δ=%d)", delta)
			if delta == NoWrapper {
				wname = "none"
			}
			t.AddRow(algo.String(), wname, fmt.Sprint(entries),
				fmt.Sprint(violations), fmt.Sprint(starved),
				fmt.Sprint(pmsgs), fmt.Sprint(wmsgs))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: identical entry counts and zero violations across wrapper settings;",
		"the wrapper's only observable effect in legitimate runs is its own request traffic")
	return t
}

// LspecImpliesTME runs E7 (Thm 5): fault-free monitored runs of both
// programs satisfy every Lspec component and, with it, ME1/ME2/ME3.
func LspecImpliesTME(scale Scale) *Table {
	t := &Table{
		Title:  "E7 (Thm 5): Lspec ⇒ TME_Spec on monitored runs",
		Header: []string{"algo", "runs", "Lspec violations", "ME violations", "open obligations"},
	}
	for _, algo := range []Algo{RA, Lamport} {
		var lv, mv, open, runs int
		seeds := scale.seeds()
		for seed := 0; seed < seeds; seed++ {
			r := Run(RunConfig{
				Algo: algo, N: 4,
				Seed:    int64(seed),
				Delta:   NoWrapper,
				Monitor: true,
			})
			runs++
			// Violations conflates Lspec and ME monitors; for this table
			// both must be zero, so the split is informational only.
			lv += r.Violations
			mv += r.Violations
			open += len(r.Starved)
		}
		t.AddRow(algo.String(), fmt.Sprint(runs), fmt.Sprint(lv), fmt.Sprint(mv), fmt.Sprint(open))
	}
	t.Notes = append(t.Notes,
		"expected: all-zero rows — programs satisfying Lspec satisfy TME_Spec (Theorem 5)")
	return t
}

// Scalability runs E8: wrapper overhead as a function of system size and of
// the implementation behind the same SpecView (the graybox scalability and
// reusability argument of §1).
func Scalability(scale Scale) *Table {
	t := &Table{
		Title: "E8 (§1): wrapper cost scales with the spec, not the implementation",
		Header: []string{"n", "algo", "wrapper msgs/entry", "program msgs/entry",
			"converged"},
	}
	for _, n := range scale.ns() {
		for _, algo := range []Algo{RA, Lamport} {
			var wm, pm, entries, converged int
			seeds := scale.seeds()
			for seed := 0; seed < seeds; seed++ {
				r := Run(RunConfig{
					Algo: algo, N: n,
					Seed: int64(seed), FaultSeed: int64(seed) + 4000,
					Delta:      10,
					FaultTimes: []int64{200}, FaultsPerBurst: 2 * n,
					// Enough workload that the fault lands mid-run on
					// every seed (otherwise "converged" is vacuous).
					MaxRequests: 40,
					Horizon:     40000,
				})
				wm += r.WrapperMsgs
				pm += r.ProgramMsgs
				entries += r.Entries
				if r.Converged {
					converged++
				}
			}
			wPer, pPer := "-", "-"
			if entries > 0 {
				wPer = fmt.Sprintf("%.2f", float64(wm)/float64(entries))
				pPer = fmt.Sprintf("%.2f", float64(pm)/float64(entries))
			}
			t.AddRow(fmt.Sprint(n), algo.String(), wPer, pPer,
				fmt.Sprintf("%d/%d", converged, seeds))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: per-entry wrapper cost is nearly identical for both implementations at",
		"each n (the wrapper sees only the spec); it grows ~O(n²) — a hungry period lasts Θ(n)",
		"service rounds and each W' firing pings up to n−1 peers — while the programs' own",
		"per-entry cost grows ~O(n)")
	return t
}

// Synthesis runs E9 (§6 future work): synthesized recovery strategies match
// the hand-designed wrapper's guarantees on random finite specifications.
func Synthesis(scale Scale) *Table {
	t := &Table{
		Title: "E9 (§6): synthesized graybox wrappers on finite specs",
		Header: []string{"states", "specs", "synth ok", "wrapped stabilizing",
			"reusable on impls", "mean recovery steps"},
	}
	rng := rand.New(rand.NewSource(2001))
	sizes := []int{4, 8, 16}
	if scale == Full {
		sizes = []int{4, 8, 16, 32, 64, 128}
	}
	perSize := scale.seeds() * 4
	for _, n := range sizes {
		var ok, stab, reuse, specs int
		var sumDist, distCount int
		for i := 0; i < perSize; i++ {
			a := graybox.Random(rng, "a", n, 1.8)
			specs++
			st, err := synth.Synthesize(a, synth.AllCandidates(n))
			if err != nil {
				continue
			}
			ok++
			if s, _ := graybox.StabilizingTo(st.Wrapped(a), a); s {
				stab++
			}
			c := graybox.RandomSub(rng, "c", a)
			if s, _ := graybox.StabilizingTo(st.Wrapped(c), a); s {
				reuse++
			}
			sumDist += st.MaxDistance()
			distCount++
		}
		mean := "-"
		if distCount > 0 {
			mean = fmt.Sprintf("%.2f", float64(sumDist)/float64(distCount))
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprint(specs), fmt.Sprint(ok),
			fmt.Sprintf("%d/%d", stab, ok), fmt.Sprintf("%d/%d", reuse, ok), mean)
	}
	t.Notes = append(t.Notes,
		"expected: synthesis succeeds on every spec (unconstrained candidates),",
		"every wrapped spec and wrapped implementation is stabilizing, recovery ≤ diameter")
	return t
}

// WhiteboxBaseline runs E10: Dijkstra's K-state token ring — the canonical
// whitebox stabilization design — against the graybox-wrapped RA system
// under comparable transient state corruption. Both stabilize; the contrast
// the paper draws is in the design input (implementation vs specification)
// and hence reusability, not in whether convergence happens.
func WhiteboxBaseline(scale Scale) *Table {
	t := &Table{
		Title: "E10 (baseline, §1/§6): whitebox token ring vs graybox-wrapped RA",
		Header: []string{"n", "whitebox conv (moves, mean/max)",
			"graybox conv (ticks, mean/max)", "whitebox converged", "graybox converged"},
	}
	seeds := scale.seeds()
	for _, n := range scale.ns() {
		var (
			wbSum, wbMax int
			wbOK         int
			gbSum, gbMax int64
			gbOK         int
		)
		for seed := 0; seed < seeds; seed++ {
			ts := tokenring.NewSim(tokenring.SimConfig{N: n, Seed: int64(seed)})
			ts.CorruptAll()
			moves, ok := ts.Converge(100 * n * n * (n + 1))
			if ok {
				wbOK++
				wbSum += moves
				if moves > wbMax {
					wbMax = moves
				}
			}

			r := Run(RunConfig{
				Algo: RA, N: n,
				Seed: int64(seed), FaultSeed: int64(seed) + 5000,
				Delta:      5,
				FaultTimes: []int64{200}, FaultsPerBurst: n,
				Mix:         fault.Mix{State: 1}, // state corruption only, like the ring
				MaxRequests: 40,
				Horizon:     40000,
				Monitor:     true,
			})
			if r.Converged {
				gbOK++
				gbSum += r.ConvergenceTime
				if r.ConvergenceTime > gbMax {
					gbMax = r.ConvergenceTime
				}
			}
		}
		wbMean, gbMean := "-", "-"
		if wbOK > 0 {
			wbMean = fmt.Sprintf("%.1f/%d", float64(wbSum)/float64(wbOK), wbMax)
		}
		if gbOK > 0 {
			gbMean = fmt.Sprintf("%.1f/%d", float64(gbSum)/float64(gbOK), gbMax)
		}
		t.AddRow(fmt.Sprint(n), wbMean, gbMean,
			fmt.Sprintf("%d/%d", wbOK, seeds), fmt.Sprintf("%d/%d", gbOK, seeds))
	}
	t.Notes = append(t.Notes,
		"both designs converge on every seed; units differ (daemon moves vs virtual ticks) — the",
		"comparison is qualitative: the ring's stabilization is welded to one implementation,",
		"the wrapper's applies to every everywhere-implementation of Lspec")
	return t
}

// TokenCirculation runs E11: the graybox method re-applied to a second
// problem (internal/ring) — token circulation with a regeneration wrapper.
// One wrapper, two structurally different implementations (eager and lazy),
// identical fault schedule: token loss at t=50.
func TokenCirculation(scale Scale) *Table {
	t := &Table{
		Title: "E11 (method reuse): graybox token circulation on a ring",
		Header: []string{"impl", "wrapper", "recovered runs", "mean recovery ticks",
			"regenerations", "discards"},
	}
	seeds := scale.seeds()
	impls := map[string]func(id, n int) ring.Node{
		"eager": func(id, n int) ring.Node { return ring.NewEager(id, n, 2) },
		"lazy":  func(id, n int) ring.Node { return ring.NewLazy(id, n, 4, 2) },
	}
	for _, name := range []string{"eager", "lazy"} {
		factory := impls[name]
		for _, delta := range []int{0, 25} {
			var recovered, regens, discards int
			var latSum int64
			for seed := 0; seed < seeds; seed++ {
				s := ring.NewSim(ring.SimConfig{
					N: 6, Seed: int64(seed), NewNode: factory, WrapperDelta: delta,
				})
				s.Run(50)
				s.DropAllInFlight()
				s.StealToken()
				faultAt := s.Now()
				before := 0
				for _, a := range s.Metrics().Accepts {
					before += a
				}
				// Advance until circulation resumes or the horizon.
				recoveredAt := int64(-1)
				for s.Now() < faultAt+3000 {
					s.Tick()
					total := 0
					for _, a := range s.Metrics().Accepts {
						total += a
					}
					if total > before {
						recoveredAt = s.Now()
						break
					}
				}
				if recoveredAt >= 0 {
					recovered++
					latSum += recoveredAt - faultAt
				}
				regens += s.Metrics().Regenerations
				discards += s.Metrics().Discards
			}
			wname := fmt.Sprintf("regen(δ=%d)", delta)
			if delta == 0 {
				wname = "none"
			}
			mean := "-"
			if recovered > 0 {
				mean = fmt.Sprintf("%.1f", float64(latSum)/float64(recovered))
			}
			t.AddRow(name, wname, fmt.Sprintf("%d/%d", recovered, seeds),
				mean, fmt.Sprint(regens), fmt.Sprint(discards))
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: 0 recoveries without the wrapper (a lost token is permanent);",
		"all runs recover with the regenerator, within ~δ ticks, for BOTH implementations —",
		"the §2.2 method carries to a new problem without touching implementation internals")
	return t
}

// RefinementAblation runs E12: the paper's §4 refinement of W — send only
// to processes whose local copy is stale, instead of to everyone — ablated.
// Both variants stabilize (the refinement is an optimization, not a
// correctness fix); the refined wrapper sends strictly fewer messages.
func RefinementAblation(scale Scale) *Table {
	t := &Table{
		Title: "E12 (ablation, §4): refined vs unrefined W",
		Header: []string{"variant", "recovered runs", "mean recovery latency",
			"wrapper msgs (deadlock run)", "wrapper msgs (fault-free)"},
	}
	seeds := scale.seeds()
	for _, unrefined := range []bool{false, true} {
		var recovered, faultyMsgs, cleanMsgs int
		var latSum int64
		for seed := 0; seed < seeds; seed++ {
			r := Run(RunConfig{
				Algo: RA, N: 4, Seed: int64(seed),
				Delta: 5, Unrefined: unrefined,
				DeadlockFault: true, Horizon: 30000,
			})
			if r.EntriesAfterFault > 0 {
				recovered++
				latSum += r.FirstEntryAfterFault - r.LastFault
			}
			faultyMsgs += r.WrapperMsgs
			c := Run(RunConfig{
				Algo: RA, N: 4, Seed: int64(seed),
				Delta: 5, Unrefined: unrefined,
			})
			cleanMsgs += c.WrapperMsgs
		}
		name := "refined W"
		if unrefined {
			name = "unrefined W"
		}
		mean := "-"
		if recovered > 0 {
			mean = fmt.Sprintf("%.1f", float64(latSum)/float64(recovered))
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", recovered, seeds), mean,
			fmt.Sprint(faultyMsgs/seeds), fmt.Sprint(cleanMsgs/seeds))
	}
	t.Notes = append(t.Notes,
		"expected shape: both variants recover every run with the same latency;",
		"the refined guard sends strictly fewer messages — the paper's refinement is",
		"an overhead optimization, not a correctness change")
	return t
}

// Level1Ablation runs E13: faults below the Lspec abstraction (invalid
// phase values, which no everywhere-implementation of Lspec produces) need
// the level-1 wrapper of §2.2 — the level-2 W alone cannot repair them.
func Level1Ablation(scale Scale) *Table {
	t := &Table{
		Title: "E13 (ablation, §2.2): level-1 wrapper under sub-Lspec corruption",
		Header: []string{"level-1 wrapper", "recovered runs",
			"mean entries after fault", "invalid phases at horizon"},
	}
	seeds := scale.seeds()
	for _, withGuard := range []bool{false, true} {
		var recovered, entries, invalid int
		for seed := 0; seed < seeds; seed++ {
			simCfg := sim.Config{
				N: 4, Seed: int64(seed),
				NewNode:     RA.Factory(),
				Workload:    true,
				MaxRequests: 30,
				NewWrapper: func(int) wrapper.Level2 {
					return wrapper.NewTimed(5)
				},
				WrapperEvery: 5,
			}
			if withGuard {
				simCfg.Level1 = wrapper.PhaseGuard{}
			}
			s := sim.New(simCfg)
			// Corrupt every phase to an invalid value at t=200.
			s.At(200, func(s *sim.Sim) {
				for i := 0; i < s.N(); i++ {
					if c, ok := s.Node(i).(tme.Corruptible); ok {
						c.Corrupt(tme.Corruption{Phase: tme.Phase(7)})
					}
				}
			})
			s.Run(20000)
			after := 0
			for _, e := range s.Metrics().Entries {
				if e.Time > 200 {
					after++
				}
			}
			if after > 0 {
				recovered++
			}
			entries += after
			for i := 0; i < s.N(); i++ {
				if !s.Node(i).Phase().Valid() {
					invalid++
				}
			}
		}
		name := "none"
		if withGuard {
			name = "PhaseGuard"
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", recovered, seeds),
			fmt.Sprintf("%.1f", float64(entries)/float64(seeds)),
			fmt.Sprint(invalid))
	}
	t.Notes = append(t.Notes,
		"expected shape: without a level-1 wrapper the invalid phases persist and no",
		"process is served again (W reads phases but cannot write them); with PhaseGuard",
		"every run recovers — the two-level method of §2.2 is load-bearing for faults",
		"below the specification's abstraction")
	return t
}

// UnifiedFaults runs E14: the engine's substrate-agnostic fault surface.
// ONE fault.Mix — the same weighted blend of message loss, duplication,
// corruption, state perturbation, and channel flush — is pushed through
// identical injectors into all three protocol substrates: the TME
// message-passing simulator, the token-circulation ring, and Dijkstra's
// shared-memory token-ring daemon. Each substrate interprets the classes it
// structurally supports (the shared-memory ring has no channels, so only
// state perturbation lands there) and every substrate recovers.
func UnifiedFaults(scale Scale) *Table {
	t := &Table{
		Title: "E14 (unified fault surface): one Mix drives all three substrates",
		Header: []string{"substrate", "faults injected", "recovered runs",
			"mean recovery"},
	}
	mix := fault.Mix{Loss: 2, Dup: 1, Corrupt: 1, State: 2, Flush: 1}
	seeds := scale.seeds()

	// TME mutual exclusion: wrapped RA under fault bursts mid-workload;
	// recovery = critical-section entries resume after the last burst.
	{
		var faults, recovered int
		var entSum int
		for seed := 0; seed < seeds; seed++ {
			s := sim.New(sim.Config{
				N: 4, Seed: int64(seed),
				NewNode:      RA.Factory(),
				Workload:     true,
				MaxRequests:  40,
				NewWrapper:   func(int) wrapper.Level2 { return wrapper.NewTimed(5) },
				WrapperEvery: 5,
			})
			in := fault.NewInjector(int64(seed)+1000, mix, fault.Options{})
			in.Schedule(s, []int64{200, 300, 400}, 6)
			s.Run(20000)
			after := 0
			for _, e := range s.Metrics().Entries {
				if e.Time > 400 {
					after++
				}
			}
			if after > 0 {
				recovered++
				entSum += after
			}
			faults += in.Count()
		}
		mean := "-"
		if recovered > 0 {
			mean = fmt.Sprintf("%.1f entries", float64(entSum)/float64(recovered))
		}
		t.AddRow("TME (wrapped RA)", fmt.Sprint(faults),
			fmt.Sprintf("%d/%d", recovered, seeds), mean)
	}

	// Token-circulation ring: regenerator-wrapped eager nodes; recovery =
	// token deliveries resume after the bursts.
	{
		var faults, recovered int
		var latSum int64
		for seed := 0; seed < seeds; seed++ {
			s := ring.NewSim(ring.SimConfig{
				N: 6, Seed: int64(seed),
				NewNode:      func(id, n int) ring.Node { return ring.NewEager(id, n, 2) },
				WrapperDelta: 25,
			})
			in := fault.NewInjector(int64(seed)+2000, mix, fault.Options{})
			in.Schedule(s, []int64{50, 80}, 4)
			s.Run(100)
			faultAt := s.Now()
			before := 0
			for _, a := range s.Metrics().Accepts {
				before += a
			}
			recoveredAt := int64(-1)
			for s.Now() < faultAt+3000 {
				s.Tick()
				total := 0
				for _, a := range s.Metrics().Accepts {
					total += a
				}
				if total > before {
					recoveredAt = s.Now()
					break
				}
			}
			if recoveredAt >= 0 {
				recovered++
				latSum += recoveredAt - faultAt
			}
			faults += in.Count()
		}
		mean := "-"
		if recovered > 0 {
			mean = fmt.Sprintf("%.1f ticks", float64(latSum)/float64(recovered))
		}
		t.AddRow("ring (regen δ=25)", fmt.Sprint(faults),
			fmt.Sprintf("%d/%d", recovered, seeds), mean)
	}

	// Dijkstra token-ring daemon: shared memory, so of the Mix only state
	// perturbation is applicable; recovery = the ring re-legitimizes.
	{
		var faults, recovered int
		var moveSum int
		for seed := 0; seed < seeds; seed++ {
			n := 5
			s := tokenring.NewSim(tokenring.SimConfig{N: n, Seed: int64(seed)})
			in := fault.NewInjector(int64(seed)+3000, mix, fault.Options{})
			in.Schedule(s, []int64{10}, 2*n)
			s.Run(10) // run to just past the burst, then count recovery moves
			start := s.Moves()
			moves, ok := s.Converge(start + 100*n*n*(n+1))
			if ok {
				recovered++
				moveSum += moves - start
			}
			faults += in.Count()
		}
		mean := "-"
		if recovered > 0 {
			mean = fmt.Sprintf("%.1f moves", float64(moveSum)/float64(recovered))
		}
		t.AddRow("tokenring (daemon)", fmt.Sprint(faults),
			fmt.Sprintf("%d/%d", recovered, seeds), mean)
	}

	t.Notes = append(t.Notes,
		"one injector type, one Mix, three substrates behind engine.Surface;",
		"each substrate applies the fault classes its structure supports and",
		"recovers — the fault model is now a property of the engine, not of any",
		"single protocol simulator")
	return t
}

// All returns every experiment table at the given scale, in index order.
func All(scale Scale) []*Table {
	return []*Table{
		Fig1(),
		Stabilization(RA, scale),
		Stabilization(Lamport, scale),
		Deadlock(scale),
		TimeoutSweep(RA, scale),
		Interference(scale),
		LspecImpliesTME(scale),
		Scalability(scale),
		Synthesis(scale),
		WhiteboxBaseline(scale),
		TokenCirculation(scale),
		RefinementAblation(scale),
		Level1Ablation(scale),
		UnifiedFaults(scale),
		LiveCluster(scale),
		WorkloadMatrix(scale),
		ShardScale(scale),
	}
}
