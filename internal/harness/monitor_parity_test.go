package harness

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/lspec"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// monitoredRun mirrors RunObserved but hands back the monitors themselves,
// so the parity tests can compare the raw violation streams — not just the
// aggregates — between the incremental and full-snapshot observer paths.
// It also returns the final obs snapshot rendered as JSON, which is what
// -metrics-json writes.
func monitoredRun(cfg RunConfig, full bool) (*lspec.Monitors, RunResult, []byte) {
	cfg = cfg.withDefaults()
	o := obs.New(obs.Options{})
	simCfg := sim.Config{
		N:           cfg.N,
		Seed:        cfg.Seed,
		NewNode:     cfg.Algo.Factory(),
		Workload:    true,
		MaxRequests: cfg.MaxRequests,
		Obs:         o,
	}
	if cfg.DeadlockFault {
		simCfg.ThinkMin, simCfg.ThinkMax = cfg.Horizon+1, cfg.Horizon+2
	}
	if cfg.Delta >= 0 {
		delta := cfg.Delta
		simCfg.NewWrapper = func(int) wrapper.Level2 { return wrapper.NewTimed(delta) }
		if delta > 1 {
			simCfg.WrapperEvery = delta
		}
	}
	s := sim.New(simCfg)

	mon := lspec.New(cfg.N)
	mon.Instrument(o)
	if full {
		s.SetObserver(mon.AsFullSnapshotObserver())
	} else {
		s.SetObserver(mon.AsObserver())
	}

	if cfg.DeadlockFault {
		const reqAt = 10
		s.At(reqAt, func(s *sim.Sim) {
			for i := 0; i < s.N(); i++ {
				s.Request(i)
			}
		})
		s.At(reqAt+1, func(s *sim.Sim) { fault.DropAllInFlight(s) })
	}
	if len(cfg.FaultTimes) > 0 && cfg.FaultsPerBurst > 0 {
		in := fault.NewInjector(cfg.FaultSeed, cfg.Mix, fault.Options{})
		in.Schedule(s, cfg.FaultTimes, cfg.FaultsPerBurst)
	}

	s.Run(cfg.Horizon)

	conv := o.Convergence()
	snap := o.Registry().Snapshot()
	res := RunResult{
		LastFault:            conv.LastFault(),
		LastViolation:        conv.LastViolation(),
		ConvergenceTime:      conv.Time(),
		FirstEntryAfterFault: conv.FirstProgressAfterFault(),
		Entries:              int(snap.Counter("sim_cs_entries_total")),
		EntriesAfterFault:    int(conv.ProgressAfterFault()),
		Requests:             int(snap.Counter("sim_requests_total")),
		ProgramMsgs:          int(snap.Counter("sim_msgs_program_total")),
		WrapperMsgs:          int(snap.Counter("sim_msgs_wrapper_total")),
		Violations:           int(conv.Violations()),
		ViolationSummary:     mon.Summary(),
		Starved:              mon.StarvedProcesses(),
		Obs:                  snap,
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		panic(err)
	}
	return mon, res, buf.Bytes()
}

// streamString renders a violation stream for byte-for-byte comparison.
func streamString(vs []lspec.TimedViolation) string {
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func assertMonitorParity(t *testing.T, name string, cfg RunConfig) {
	t.Helper()
	incMon, incRes, incJSON := monitoredRun(cfg, false)
	fullMon, fullRes, fullJSON := monitoredRun(cfg, true)

	if got, want := streamString(incMon.Violations()), streamString(fullMon.Violations()); got != want {
		t.Errorf("%s: violation streams differ\nincremental:\n%s\nfull:\n%s", name, got, want)
	}
	if got, want := streamString(incMon.FCFSViolations()), streamString(fullMon.FCFSViolations()); got != want {
		t.Errorf("%s: FCFS violation streams differ\nincremental:\n%s\nfull:\n%s", name, got, want)
	}
	if incRes.ConvergenceTime != fullRes.ConvergenceTime {
		t.Errorf("%s: ConvergenceTime = %d incremental, %d full",
			name, incRes.ConvergenceTime, fullRes.ConvergenceTime)
	}
	if incRes.LastViolation != fullRes.LastViolation {
		t.Errorf("%s: LastViolation = %d incremental, %d full",
			name, incRes.LastViolation, fullRes.LastViolation)
	}
	if incRes.Violations != fullRes.Violations {
		t.Errorf("%s: Violations = %d incremental, %d full",
			name, incRes.Violations, fullRes.Violations)
	}
	if !reflect.DeepEqual(incRes.Starved, fullRes.Starved) {
		t.Errorf("%s: Starved = %v incremental, %v full", name, incRes.Starved, fullRes.Starved)
	}
	if !reflect.DeepEqual(incMon.StuckEaters(), fullMon.StuckEaters()) {
		t.Errorf("%s: StuckEaters = %v incremental, %v full",
			name, incMon.StuckEaters(), fullMon.StuckEaters())
	}
	if !reflect.DeepEqual(incRes.ViolationSummary, fullRes.ViolationSummary) {
		t.Errorf("%s: ViolationSummary = %v incremental, %v full",
			name, incRes.ViolationSummary, fullRes.ViolationSummary)
	}
	if incMon.OpenReplyObligations() != fullMon.OpenReplyObligations() {
		t.Errorf("%s: OpenReplyObligations = %d incremental, %d full",
			name, incMon.OpenReplyObligations(), fullMon.OpenReplyObligations())
	}
	if !bytes.Equal(incJSON, fullJSON) {
		t.Errorf("%s: obs snapshot JSON differs between incremental and full paths", name)
	}
}

// TestMonitorParityConfigs proves the incremental (dirty-tracked) observer
// produces measurements identical to the full-rebuild reference observer on
// the E2 stabilization and E4 deadlock configurations: same violation
// streams (times and operators), same convergence times, same starvation
// verdicts, and byte-identical metrics JSON.
func TestMonitorParityConfigs(t *testing.T) {
	configs := map[string]RunConfig{
		"E2-stabilization": {
			Algo: RA, N: 4, Seed: 3, FaultSeed: 1003, Delta: 5,
			FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 12,
			MaxRequests: 40, Horizon: 40000, Monitor: true,
		},
		"E2-lamport": {
			Algo: Lamport, N: 4, Seed: 11, FaultSeed: 1011, Delta: 5,
			FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 12,
			MaxRequests: 40, Horizon: 40000, Monitor: true,
		},
		"E2-unwrapped": {
			Algo: RA, N: 4, Seed: 7, FaultSeed: 1007, Delta: NoWrapper,
			FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 12,
			MaxRequests: 40, Horizon: 40000, Monitor: true,
		},
		"E4-deadlock": {
			Algo: RA, N: 4, Seed: 5, Delta: 5,
			DeadlockFault: true, Horizon: 30000, Monitor: true,
		},
	}
	for name, cfg := range configs {
		assertMonitorParity(t, name, cfg)
	}
}

// TestMonitorParityRandomSeeds sweeps randomized seeds and fault schedules
// through both observer paths. The generator itself is seeded, so the sweep
// is reproducible; it exists to catch dirty-tracking bugs that only a fault
// pattern nobody hand-picked would expose.
func TestMonitorParityRandomSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20010701)) // DSN 2001
	for i := 0; i < 6; i++ {
		cfg := RunConfig{
			Algo:      RA,
			N:         3 + rng.Intn(3),
			Seed:      rng.Int63n(1 << 20),
			FaultSeed: rng.Int63n(1 << 20),
			Delta:     int64(rng.Intn(3) * 5),
			FaultTimes: []int64{
				100 + rng.Int63n(200),
				400 + rng.Int63n(200),
			},
			FaultsPerBurst: 4 + rng.Intn(12),
			MaxRequests:    20,
			Horizon:        20000,
			Monitor:        true,
		}
		if i%3 == 2 {
			cfg.Delta = NoWrapper
		}
		assertMonitorParity(t, cfg.Algo.String(), cfg)
	}
}
