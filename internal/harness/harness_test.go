package harness

import (
	"strings"
	"testing"
)

func TestAlgoString(t *testing.T) {
	if RA.String() != "ricart-agrawala" || Lamport.String() != "lamport" {
		t.Error("Algo names wrong")
	}
	if !strings.Contains(Algo(9).String(), "algo") {
		t.Error("unknown algo String")
	}
}

func TestRunFaultFreeConverges(t *testing.T) {
	for _, algo := range []Algo{RA, Lamport} {
		r := Run(RunConfig{Algo: algo, N: 3, Seed: 1, Delta: NoWrapper, Monitor: true})
		if !r.Converged {
			t.Errorf("%v fault-free run did not converge: %+v", algo, r)
		}
		if r.Violations != 0 {
			t.Errorf("%v fault-free run has %d violations", algo, r.Violations)
		}
		if r.WrapperMsgs != 0 {
			t.Errorf("%v unwrapped run counted wrapper msgs", algo)
		}
		if r.LastFault != -1 || r.LastViolation != -1 {
			t.Errorf("%v: LastFault=%d LastViolation=%d", algo, r.LastFault, r.LastViolation)
		}
	}
}

func TestRunDeadlockScenario(t *testing.T) {
	base := RunConfig{
		Algo: RA, N: 3, Seed: 2,
		DeadlockFault: true,
		Horizon:       20000,
	}
	unwrapped := base
	unwrapped.Delta = NoWrapper
	r := Run(unwrapped)
	if r.Converged {
		t.Errorf("unwrapped deadlock run converged: %+v", r)
	}
	if r.Entries != 0 {
		t.Errorf("unwrapped deadlock run had %d entries, want 0", r.Entries)
	}

	wrapped := base
	wrapped.Delta = 5
	r = Run(wrapped)
	if !r.Converged {
		t.Errorf("wrapped deadlock run did not converge: %+v", r)
	}
	if r.FirstEntryAfterFault < 0 {
		t.Error("no entry after fault despite wrapper")
	}
	// All three processes must eventually be served once the deadlock
	// breaks (the workload releases eaters even in deadlock mode).
	if r.Entries != 3 {
		t.Errorf("entries = %d, want 3", r.Entries)
	}
	if r.WrapperMsgs == 0 {
		t.Error("wrapper recovered without sending messages?")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := RunConfig{
		Algo: Lamport, N: 4, Seed: 7, FaultSeed: 8,
		Delta: 10, FaultTimes: []int64{100, 200}, Monitor: true,
	}
	a, b := Run(cfg), Run(cfg)
	if a.Entries != b.Entries || a.ProgramMsgs != b.ProgramMsgs ||
		a.LastViolation != b.LastViolation {
		t.Errorf("same config diverged: %+v vs %+v", a, b)
	}
}

func TestWrapperMsgsPerEntry(t *testing.T) {
	r := RunResult{WrapperMsgs: 10, Entries: 5}
	if got := r.WrapperMsgsPerEntry(); got != 2 {
		t.Errorf("per entry = %v", got)
	}
	r = RunResult{WrapperMsgs: 7}
	if got := r.WrapperMsgsPerEntry(); got != 7 {
		t.Errorf("zero-entry per entry = %v", got)
	}
}

func TestUnrefinedWrapperSendsMore(t *testing.T) {
	base := RunConfig{
		Algo: RA, N: 4, Seed: 3,
		DeadlockFault: true,
		Horizon:       20000, Delta: 5,
	}
	refined := Run(base)
	unref := base
	unref.Unrefined = true
	u := Run(unref)
	if !refined.Converged || !u.Converged {
		t.Fatalf("both variants must converge: %v %v", refined.Converged, u.Converged)
	}
	if u.WrapperMsgs <= refined.WrapperMsgs {
		t.Errorf("unrefined (%d msgs) should exceed refined (%d msgs)",
			u.WrapperMsgs, refined.WrapperMsgs)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("1", "2")
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "a note") {
		t.Errorf("String = %q", s)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown = %q", md)
	}
}

func TestParMapOrderAndCoverage(t *testing.T) {
	got := ParMap(37, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("ParMap[%d] = %d", i, v)
		}
	}
	if out := ParMap(0, func(i int) int { return i }); len(out) != 0 {
		t.Errorf("ParMap(0) = %v", out)
	}
}

// Parallel and sequential sweeps agree (each run is seed-deterministic).
func TestParMapMatchesSequentialRuns(t *testing.T) {
	cfg := func(seed int) RunConfig {
		return RunConfig{
			Algo: RA, N: 3, Seed: int64(seed), FaultSeed: int64(seed) + 1,
			Delta: 5, FaultTimes: []int64{100}, FaultsPerBurst: 5,
			MaxRequests: 10, Horizon: 10000, Monitor: true,
		}
	}
	par := ParMap(4, func(seed int) RunResult { return Run(cfg(seed)) })
	for seed := 0; seed < 4; seed++ {
		seq := Run(cfg(seed))
		if par[seed].Entries != seq.Entries ||
			par[seed].LastViolation != seq.LastViolation ||
			par[seed].ProgramMsgs != seq.ProgramMsgs {
			t.Fatalf("seed %d: parallel %+v ≠ sequential %+v", seed, par[seed], seq)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow("1", "x,y") // comma must be quoted
	got := tab.CSV()
	if !strings.Contains(got, "a,b\n") || !strings.Contains(got, `1,"x,y"`) {
		t.Errorf("CSV = %q", got)
	}
}

func TestViolationSummaryInRunResult(t *testing.T) {
	r := Run(RunConfig{
		Algo: RA, N: 2, Seed: 4, FaultSeed: 5,
		Delta:      5,
		FaultTimes: []int64{100}, FaultsPerBurst: 8,
		MaxRequests: 20, Horizon: 20000,
		Monitor: true,
	})
	total := 0
	for _, s := range r.ViolationSummary {
		total += s.Count
	}
	if total != r.Violations {
		t.Errorf("summary total %d ≠ Violations %d", total, r.Violations)
	}
}

func TestFig1Table(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	want := []string{"true", "true", "false", "false"}
	for i, w := range want {
		if tab.Rows[i][1] != w {
			t.Errorf("row %d result = %q, want %q", i, tab.Rows[i][1], w)
		}
	}
}

func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds")
	}
	tables := All(Quick)
	if len(tables) != 17 {
		t.Fatalf("tables = %d, want 17", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("table %q has no rows", tab.Title)
		}
		if tab.String() == "" {
			t.Errorf("table %q renders empty", tab.Title)
		}
	}
}
