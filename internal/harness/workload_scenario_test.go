package harness

import (
	"bytes"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/scenario"
	"github.com/graybox-stabilization/graybox/internal/workload"
)

// The PR's acceptance property at the harness level: a (workload, scenario,
// seed) triple fully determines the traffic and the fault plan on every
// substrate. The simulator consumes it as draw streams plus injector burst
// times; the goroutine runtime and the live TCP cluster consume the same
// draw streams plus the same pre-drawn wire.FaultSchedule bytes.

// snapshotJSON renders a run's full metrics snapshot deterministically.
func snapshotJSON(t *testing.T, r RunResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Obs.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// Every workload preset records byte-identical schedule JSON for a given
// seed, and every scenario preset compiles to byte-identical wire schedule
// bytes (the plan the runtime and TCP substrates share) plus an identical
// sim plan.
func TestSeededPlansAreBytesIdentical(t *testing.T) {
	for _, name := range workload.Names() {
		spec, err := workload.Preset(name)
		if err != nil {
			t.Fatalf("workload.Preset(%q): %v", name, err)
		}
		a := workload.Record(spec, 42, 4, 32).JSON()
		b := workload.Record(spec, 42, 4, 32).JSON()
		if !bytes.Equal(a, b) {
			t.Errorf("workload %s: same seed produced different schedule bytes", name)
		}
	}
	for _, name := range scenario.Names() {
		sc, err := scenario.Preset(name)
		if err != nil {
			t.Fatalf("scenario.Preset(%q): %v", name, err)
		}
		la := scenario.CompileLive(sc, 42, 4, 2*time.Second)
		lb := scenario.CompileLive(sc, 42, 4, 2*time.Second)
		if (la.Schedule == nil) != (lb.Schedule == nil) {
			t.Fatalf("scenario %s: schedule presence differs", name)
		}
		if la.Schedule != nil && !bytes.Equal(la.Schedule.JSON(), lb.Schedule.JSON()) {
			t.Errorf("scenario %s: same seed produced different wire schedule bytes", name)
		}
		sa := scenario.CompileSim(sc, 42, 20000)
		sb := scenario.CompileSim(sc, 42, 20000)
		if len(sa.FaultTimes) != len(sb.FaultTimes) || sa.Mix != sb.Mix {
			t.Fatalf("scenario %s: sim plans differ", name)
		}
		for i := range sa.FaultTimes {
			if sa.FaultTimes[i] != sb.FaultTimes[i] {
				t.Errorf("scenario %s: sim fault time %d differs", name, i)
			}
		}
	}
}

// A simulator run driven by the live generator and one driven by a recorded
// trace of that generator are indistinguishable — replay fidelity, the
// property that lets a live cluster re-run a simulator workload (and vice
// versa) from a JSON file.
func TestSimReplayMatchesGenerator(t *testing.T) {
	for _, name := range []string{"uniform", "poisson", "bursty", "hotshard"} {
		spec, err := workload.Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		cfg := RunConfig{
			Algo: RA, N: 4, Seed: 3, FaultSeed: 1003,
			Delta: 5, MaxRequests: 12, Horizon: 30000,
		}
		gen := cfg
		gen.Workload = workload.NewGen(spec, 103, 4)
		replay := cfg
		trace, err := workload.LoadSchedule(workload.Record(spec, 103, 4, 128).JSON())
		if err != nil {
			t.Fatalf("LoadSchedule(%s): %v", name, err)
		}
		replay.Workload = trace
		a := snapshotJSON(t, Run(gen))
		b := snapshotJSON(t, Run(replay))
		if !bytes.Equal(a, b) {
			t.Errorf("%s: generator-driven and trace-driven sim runs diverge", name)
		}
	}
}

// End-to-end sim determinism with the full new surface: same (workload,
// scenario, seed) → identical snapshot; different seed → different run.
func TestSimWorkloadScenarioDeterministic(t *testing.T) {
	spec, _ := workload.Preset("bursty")
	sc, _ := scenario.Preset("gray")
	mk := func(seed int64) RunConfig {
		return RunConfig{
			Algo: RA, N: 4, Seed: seed, FaultSeed: seed + 1000,
			Delta: 5, Workload: workload.NewGen(spec, seed+100, 4),
			Scenario: &sc, MaxRequests: 15, Horizon: 30000,
		}
	}
	a := snapshotJSON(t, Run(mk(7)))
	b := snapshotJSON(t, Run(mk(7)))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different workload+scenario sim runs")
	}
	c := snapshotJSON(t, Run(mk(8)))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical runs (seed unused?)")
	}
}

// The live TCP substrate accepts the same presets: a short run under a
// workload and scenario completes with entries and publishes the per-client
// fairness gauges.
func TestLiveWorkloadScenarioSmoke(t *testing.T) {
	spec, _ := workload.Preset("bursty")
	sc, _ := scenario.Preset("gray")
	res, err := RunLive(LiveConfig{
		N: 3, Seed: 5, Duration: 600 * time.Millisecond,
		Workload: &spec, Scenario: &sc,
	})
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	if res.Entries == 0 {
		t.Fatal("no CS entries under bursty × gray")
	}
	if res.Snapshot.Gauge("fair_entries_max", -1) <= 0 {
		t.Error("fair_entries_max missing from the live snapshot")
	}
	if res.Snapshot.Gauge("fair_latency_p95", -1) < 0 {
		t.Error("fair_latency_p95 missing from the live snapshot")
	}
}
