package harness

import (
	"reflect"
	"testing"
)

// TestParMapOrder checks results land at their own indices.
func TestParMapOrder(t *testing.T) {
	got := ParMap(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if out := ParMap(0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("ParMap(0) returned %d results", len(out))
	}
}

// TestParMapDeterministicSweep runs an E2-style seeded sweep through ParMap
// and sequentially and requires identical results: every run is a pure
// function of its configuration, so parallelism must not change any
// measurement. Run under -race (make test-race) this also proves the sweep
// pattern used by the experiment harness is data-race free.
func TestParMapDeterministicSweep(t *testing.T) {
	cfg := func(seed int) RunConfig {
		return RunConfig{
			Algo: RA, N: 3,
			Seed: int64(seed), FaultSeed: int64(seed) + 1000,
			Delta:      5,
			FaultTimes: []int64{200}, FaultsPerBurst: 6,
			MaxRequests: 8,
			Horizon:     6000,
			Monitor:     true,
		}
	}
	const runs = 8
	par := ParMap(runs, func(i int) RunResult { return Run(cfg(i)) })
	seq := make([]RunResult, runs)
	for i := range seq {
		seq[i] = Run(cfg(i))
	}
	for i := range seq {
		p, s := par[i], seq[i]
		// Obs snapshots are pointer-laden; compare the JSON-visible maps.
		if !reflect.DeepEqual(p.Obs, s.Obs) {
			t.Errorf("seed %d: parallel obs snapshot differs from sequential", i)
		}
		p.Obs, s.Obs = nil, nil
		if !reflect.DeepEqual(p, s) {
			t.Errorf("seed %d: parallel result %+v differs from sequential %+v", i, p, s)
		}
	}
}
