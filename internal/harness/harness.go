// Package harness measures the paper's claims: it configures faulty
// simulation runs, measures convergence with the Lspec/TME_Spec monitors,
// and renders the experiment tables of EXPERIMENTS.md. Every run is a
// deterministic function of its configuration.
package harness

import (
	"encoding/csv"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/lamport"
	"github.com/graybox-stabilization/graybox/internal/lspec"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/scenario"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/workload"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// Algo selects a reference implementation of Lspec.
type Algo int

// The two reference programs of §5.
const (
	RA Algo = iota + 1
	Lamport
)

// String names the algorithm.
func (a Algo) String() string {
	switch a {
	case RA:
		return "ricart-agrawala"
	case Lamport:
		return "lamport"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// Factory returns the node constructor for the algorithm.
func (a Algo) Factory() func(id, n int) tme.Node {
	switch a {
	case Lamport:
		return func(id, n int) tme.Node { return lamport.New(id, n) }
	default:
		return func(id, n int) tme.Node { return ra.New(id, n) }
	}
}

// NoWrapper as RunConfig.Delta disables the wrapper entirely.
const NoWrapper int64 = -1

// RunConfig describes one measured run.
type RunConfig struct {
	// Algo and N pick the system.
	Algo Algo
	N    int
	// Seed drives the simulation; FaultSeed the injector.
	Seed, FaultSeed int64
	// Delta is the wrapper timeout δ (0 = eager W, NoWrapper = none).
	Delta int64
	// Unrefined uses the unrefined W (resend to all) instead of the
	// refined guard; only meaningful when Delta ≥ 0.
	Unrefined bool
	// FaultTimes and FaultsPerBurst schedule injector bursts; Mix weights
	// the classes.
	FaultTimes     []int64
	FaultsPerBurst int
	Mix            fault.Mix
	// DeadlockFault, when true, replaces the random workload with the §4
	// scenario: every process requests simultaneously at t=10 and every
	// in-flight message is dropped at t=11, leaving all processes hungry
	// with mutually inconsistent local copies. (With a live workload this
	// state is unreachable deterministically — later requests from other
	// processes refill the hungry guards, so RA self-heals; the paper's
	// deadlock needs ALL processes hungry with ALL requests lost.)
	// FaultTimes/FaultsPerBurst/Mix still apply on top if set.
	DeadlockFault bool
	// Workload, when non-nil, shapes the client traffic (a workload.Gen or
	// a recorded workload.Schedule for replay). Nil keeps the historical
	// built-in uniform closed loop, bit-for-bit.
	Workload workload.Source
	// Scenario, when non-nil, compiles to this run's fault plan, overriding
	// FaultTimes/FaultsPerBurst/Mix and the link-delay bounds — the same
	// declarative scenario a live run applies through the chaos proxy.
	Scenario *scenario.Spec
	// Horizon is the virtual-time end of the run. MaxRequests bounds the
	// per-process workload so liveness obligations can drain.
	Horizon     int64
	MaxRequests int
	// Monitor enables the Lspec/TME monitors (costs an incremental
	// snapshot per event). Message-economy experiments can turn it off.
	Monitor bool
	// MonitorFullSnapshot forces the reference full-rebuild snapshot path
	// instead of incremental dirty-tracking. Slower; it exists for the
	// monitor parity tests, which prove both paths produce identical
	// measurements.
	MonitorFullSnapshot bool
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Algo == 0 {
		c.Algo = RA
	}
	if c.N == 0 {
		c.N = 4
	}
	if c.Horizon == 0 {
		c.Horizon = 20000
	}
	if c.MaxRequests == 0 {
		c.MaxRequests = 10
	}
	if c.FaultsPerBurst == 0 {
		c.FaultsPerBurst = 10
	}
	if c.Mix.Loss+c.Mix.Dup+c.Mix.Corrupt+c.Mix.State+c.Mix.Flush == 0 {
		c.Mix = fault.DefaultMix
	}
	return c
}

// RunResult summarizes one run.
type RunResult struct {
	// Converged reports a clean end state: no open starvation or stuck
	// eaters, and progress after the last fault.
	Converged bool
	// LastFault is the time of the last scheduled fault burst (-1 if none).
	LastFault int64
	// LastViolation is the time of the last safety/FCFS violation (-1 if
	// none). Requires Monitor.
	LastViolation int64
	// ConvergenceTime is max(0, LastViolation−LastFault) when monitoring;
	// the safety-convergence latency.
	ConvergenceTime int64
	// FirstEntryAfterFault is the first CS entry time after LastFault
	// (-1 when none) — the liveness-recovery latency for deadlock runs.
	FirstEntryAfterFault int64
	// Entries and EntriesAfterFault count CS entries.
	Entries, EntriesAfterFault int
	// Requests counts client requests issued.
	Requests int
	// ProgramMsgs and WrapperMsgs attribute message overhead.
	ProgramMsgs, WrapperMsgs int
	// Starved lists processes with open ME2 obligations at the horizon.
	Starved []int
	// Violations counts recorded safety/FCFS violations.
	Violations int
	// ViolationSummary breaks violations down by operator (monitored
	// runs only).
	ViolationSummary map[string]lspec.Stat
	// Obs is the final metrics snapshot of the run — the raw telemetry all
	// the fields above are computed from.
	Obs *obs.Snapshot
}

// WrapperMsgsPerEntry is the wrapper's steady-state message overhead.
func (r RunResult) WrapperMsgsPerEntry() float64 {
	if r.Entries == 0 {
		return float64(r.WrapperMsgs)
	}
	return float64(r.WrapperMsgs) / float64(r.Entries)
}

// Run executes one configured run and returns its measurements.
func Run(cfg RunConfig) RunResult { return RunObserved(cfg, nil) }

// RunObserved executes one configured run, publishing telemetry into o (a
// private bundle is created when o is nil — pass your own to keep the trace
// ring or serve the metrics over HTTP). Every RunResult field is computed
// from the final obs snapshot and convergence tracker: the telemetry IS the
// measurement, with no parallel harness bookkeeping to drift from it.
func RunObserved(cfg RunConfig, o *obs.Obs) RunResult {
	cfg = cfg.withDefaults()
	if o == nil {
		o = obs.New(obs.Options{})
	}
	simCfg := sim.Config{
		N:           cfg.N,
		Seed:        cfg.Seed,
		NewNode:     cfg.Algo.Factory(),
		Workload:    true,
		MaxRequests: cfg.MaxRequests,
		Obs:         o,
	}
	if cfg.Workload != nil {
		src := cfg.Workload
		simCfg.NewClient = func(id int) sim.ClientStream { return src.Client(id) }
	}
	if cfg.Scenario != nil {
		plan := scenario.CompileSim(*cfg.Scenario, cfg.FaultSeed, cfg.Horizon)
		cfg.FaultTimes = plan.FaultTimes
		cfg.FaultsPerBurst = plan.FaultsPerBurst
		cfg.Mix = plan.Mix
		simCfg.MinDelay, simCfg.MaxDelay = plan.MinDelay, plan.MaxDelay
	}
	if cfg.DeadlockFault {
		// Dormant workload: the client never requests on its own (think
		// time beyond the horizon) but still releases after entries, so
		// every process can eventually be served once the deadlock is
		// broken.
		simCfg.ThinkMin, simCfg.ThinkMax = cfg.Horizon+1, cfg.Horizon+2
	}
	if cfg.Delta >= 0 {
		delta := cfg.Delta
		unrefined := cfg.Unrefined
		simCfg.NewWrapper = func(int) wrapper.Level2 {
			if unrefined {
				return &unrefinedTimed{delta: delta}
			}
			return wrapper.NewTimed(delta)
		}
		if delta > 1 {
			simCfg.WrapperEvery = delta
		}
	}
	s := sim.New(simCfg)

	var mon *lspec.Monitors
	if cfg.Monitor {
		mon = lspec.New(cfg.N)
		mon.Instrument(o)
		if cfg.MonitorFullSnapshot {
			s.SetObserver(mon.AsFullSnapshotObserver())
		} else {
			s.SetObserver(mon.AsObserver())
		}
	}

	if cfg.DeadlockFault {
		const reqAt = 10
		s.At(reqAt, func(s *sim.Sim) {
			for i := 0; i < s.N(); i++ {
				s.Request(i)
			}
		})
		// Requests are in flight for at least one tick (MinDelay ≥ 1);
		// dropping at reqAt+1 loses every one of them.
		s.At(reqAt+1, func(s *sim.Sim) { fault.DropAllInFlight(s) })
	}
	if len(cfg.FaultTimes) > 0 && cfg.FaultsPerBurst > 0 {
		in := fault.NewInjector(cfg.FaultSeed, cfg.Mix, fault.Options{})
		in.Schedule(s, cfg.FaultTimes, cfg.FaultsPerBurst)
	}

	s.Run(cfg.Horizon)

	// Every measurement below is read back from the telemetry: the injector
	// stamped the fault window, the sim stamped entries/messages/requests,
	// the monitors stamped violations — the snapshot is the ground truth.
	conv := o.Convergence()
	snap := o.Registry().Snapshot()
	res := RunResult{
		LastFault:            conv.LastFault(),
		LastViolation:        conv.LastViolation(),
		ConvergenceTime:      conv.Time(),
		FirstEntryAfterFault: conv.FirstProgressAfterFault(),
		Entries:              int(snap.Counter("sim_cs_entries_total")),
		EntriesAfterFault:    int(conv.ProgressAfterFault()),
		Requests:             int(snap.Counter("sim_requests_total")),
		ProgramMsgs:          int(snap.Counter("sim_msgs_program_total")),
		WrapperMsgs:          int(snap.Counter("sim_msgs_wrapper_total")),
		Obs:                  snap,
	}
	if mon != nil {
		res.Violations = int(conv.Violations())
		res.ViolationSummary = mon.Summary()
		res.Starved = mon.StarvedProcesses()
		res.Converged = len(res.Starved) == 0 &&
			len(mon.StuckEaters()) == 0 &&
			res.EntriesAfterFault > 0
	} else {
		res.Converged = res.EntriesAfterFault > 0
	}
	hookMu.Lock()
	if runHook != nil {
		runHook(cfg, res)
	}
	hookMu.Unlock()
	return res
}

// runHook receives every completed run; see SetRunHook.
var (
	hookMu  sync.Mutex
	runHook func(RunConfig, RunResult)
)

// SetRunHook installs fn to be called (under a global mutex, so a plain
// closure is safe against ParMap concurrency) with every completed run's
// configuration and result. Pass nil to uninstall. The experiments CLI uses
// it to aggregate per-experiment obs snapshots for JSON export.
func SetRunHook(fn func(RunConfig, RunResult)) {
	hookMu.Lock()
	runHook = fn
	hookMu.Unlock()
}

// unrefinedTimed is the unrefined W behind a timeout, for the ablation.
type unrefinedTimed struct {
	delta int64
	next  int64
}

func (u *unrefinedTimed) Fire(now int64, v tme.SpecView) []tme.Message {
	if now < u.next {
		return nil
	}
	u.next = now + u.delta
	return wrapper.Unrefined(v)
}

// ParMap runs fn for each index 0..n-1 concurrently (bounded by the CPU
// count) and returns the results in index order. Experiment sweeps use it
// to parallelize independent seeded runs; since every run is a pure
// function of its configuration, the aggregated tables are identical to a
// sequential sweep.
func ParMap[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes records caveats and the expected shape.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first, notes omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
