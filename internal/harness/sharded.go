// Sharded-simulator harness: RunSharded drives sim.Sharded — S per-shard
// RA/Lamport instances under their own W' wrappers, advanced in parallel
// between merge barriers — and reads every measurement back from the
// coordinator and per-shard obs snapshots. ShardScale is experiment E17.
package harness

import (
	"bytes"
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/workload"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// ShardedRunConfig describes one sharded simulator run.
type ShardedRunConfig struct {
	// Algo and N pick the per-shard protocol and process count.
	Algo Algo
	N    int
	// Shards is the number of independent critical sections. Shards ≤ 1
	// delegates to the legacy single-CS Run — N node-attached clients
	// (Clients is ignored), MaxLoops mapped onto MaxRequests — so an
	// unsharded run stays byte-identical to earlier releases.
	Shards int
	// Clients is the number of logical client loops (default N), each
	// drawing its target shard from the workload's skew stream.
	Clients int
	// Seed drives all workload and delay draws; FaultSeed the injectors.
	Seed, FaultSeed int64
	// Delta is the per-shard W' timeout δ (0 = eager W, NoWrapper = none).
	Delta int64
	// CrossEvery makes every k-th loop of each client a two-shard
	// hierarchical acquisition (0 = never).
	CrossEvery int
	// MaxLoops caps completed loops per client (0 = run to the horizon).
	MaxLoops int
	// Horizon is the virtual-time end of the run.
	Horizon int64
	// FaultTimes and FaultsPerBurst schedule one injector per shard (each
	// seeded from FaultSeed and its shard id); Mix weights the classes.
	FaultTimes     []int64
	FaultsPerBurst int
	Mix            fault.Mix
	// Workload shapes the traffic; nil uses workload.DefaultSpec with a
	// Zipf skew over the shards (s = 1.2) so low shards run hot.
	Workload *workload.Spec
}

func (c ShardedRunConfig) withDefaults() ShardedRunConfig {
	if c.Algo == 0 {
		c.Algo = RA
	}
	if c.N == 0 {
		c.N = 4
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Clients <= 0 {
		c.Clients = c.N
	}
	if c.Horizon == 0 {
		c.Horizon = 100000
	}
	if c.FaultsPerBurst == 0 {
		c.FaultsPerBurst = 10
	}
	if c.Mix.Loss+c.Mix.Dup+c.Mix.Corrupt+c.Mix.State+c.Mix.Flush == 0 {
		c.Mix = fault.DefaultMix
	}
	return c
}

// ShardedRunResult summarizes one sharded run.
type ShardedRunResult struct {
	// Entries counts CS entries across every shard; EntriesByShard breaks
	// them down (length Shards).
	Entries        int
	EntriesByShard []int
	// ClientsDone counts clients that finished their loop budget; Loops the
	// completed loops across all clients.
	ClientsDone, Loops int
	// Events is the total engine events processed across shard cores.
	Events int64
	// FaultsApplied sums the per-shard injectors.
	FaultsApplied int
	// CrossAcquisitions / OrderViolations / AuditViolations / InFlight are
	// the hme monitor's deadlock-freedom evidence: every multi-shard lock
	// set acquired in canonical order and fully released.
	CrossAcquisitions, OrderViolations, AuditViolations int64
	InFlight                                            int
	// ShardsConverged counts shards with progress after their last fault
	// (all of them, for a converging run; equals Shards when fault-free).
	ShardsConverged int
	// Obs is the coordinator snapshot (hme instruments, cross-shard
	// fairness); ShardObs holds each shard's snapshot (per-shard fairness
	// percentiles, convergence, message counters).
	Obs      *obs.Snapshot
	ShardObs []*obs.Snapshot
}

// MetricsJSON renders every snapshot of the run — coordinator first, then
// each shard — as one deterministic JSON document (byte-identical across
// runs with equal seeds; the cross-substrate determinism tests diff it).
func (r ShardedRunResult) MetricsJSON() []byte {
	var buf bytes.Buffer
	app := func(label string, s *obs.Snapshot) {
		fmt.Fprintf(&buf, "-- %s --\n", label)
		if err := s.WriteJSON(&buf); err != nil {
			fmt.Fprintf(&buf, "error: %v\n", err)
		}
	}
	app("coordinator", r.Obs)
	for s, snap := range r.ShardObs {
		app(fmt.Sprintf("shard %d", s), snap)
	}
	return buf.Bytes()
}

// RunSharded executes one sharded run and returns its measurements.
func RunSharded(cfg ShardedRunConfig) ShardedRunResult {
	cfg = cfg.withDefaults()
	if cfg.Shards <= 1 {
		return runShardedLegacy(cfg)
	}
	spec := cfg.Workload
	if spec == nil {
		d := workload.DefaultSpec()
		for i := range d.Cohorts {
			d.Cohorts[i].Skew = workload.Skew{Resources: cfg.Shards, S: 1.2}
		}
		spec = &d
	}
	// Seed+100 is the harness-wide workload seed convention (see RunLive),
	// so a sim and a live run share draw streams for equal seeds.
	src := workload.NewGen(*spec, cfg.Seed+100, cfg.Clients)

	coord := obs.New(obs.Options{})
	shardObs := make([]*obs.Obs, cfg.Shards)
	scfg := sim.ShardedConfig{
		Shards:     cfg.Shards,
		N:          cfg.N,
		Clients:    cfg.Clients,
		Seed:       cfg.Seed,
		NewNode:    cfg.Algo.Factory(),
		Level1:     wrapper.PhaseGuard{},
		MaxLoops:   cfg.MaxLoops,
		CrossEvery: cfg.CrossEvery,
		NewClient:  func(c int) sim.ShardClient { return src.Client(c) },
		Obs:        coord,
		NewShardObs: func(s int) *obs.Obs {
			shardObs[s] = obs.New(obs.Options{})
			return shardObs[s]
		},
	}
	if cfg.Delta >= 0 {
		delta := cfg.Delta
		scfg.NewWrapper = func(shard, id int) wrapper.Level2 { return wrapper.NewTimed(delta) }
		if delta > 1 {
			scfg.WrapperEvery = delta
		}
	}
	sh := sim.NewSharded(scfg)

	injectors := make([]*fault.Injector, 0, cfg.Shards)
	if len(cfg.FaultTimes) > 0 && cfg.FaultsPerBurst > 0 {
		for s := 0; s < cfg.Shards; s++ {
			in := fault.NewInjector(cfg.FaultSeed+int64(s)*7919, cfg.Mix, fault.Options{})
			in.Schedule(sh.Shard(s), cfg.FaultTimes, cfg.FaultsPerBurst)
			injectors = append(injectors, in)
		}
	}

	sh.Run(cfg.Horizon)

	res := ShardedRunResult{
		EntriesByShard: make([]int, cfg.Shards),
		ClientsDone:    sh.LoopsDone(),
		Events:         sh.Events(),
		InFlight:       sh.Monitor().InFlight(),
		Obs:            coord.Registry().Snapshot(),
		ShardObs:       make([]*obs.Snapshot, cfg.Shards),
	}
	for c := 0; c < cfg.Clients; c++ {
		res.Loops += sh.Loops(c)
	}
	for _, in := range injectors {
		res.FaultsApplied += in.Count()
	}
	for s := 0; s < cfg.Shards; s++ {
		snap := shardObs[s].Registry().Snapshot()
		res.ShardObs[s] = snap
		res.EntriesByShard[s] = int(snap.Counter("sim_cs_entries_total"))
		res.Entries += res.EntriesByShard[s]
		conv := shardObs[s].Convergence()
		if conv.LastFault() < 0 || conv.ProgressAfterFault() > 0 {
			res.ShardsConverged++
		}
	}
	res.CrossAcquisitions = res.Obs.Counter("hme_acquisitions_total")
	res.OrderViolations = res.Obs.Counter("hme_order_violations_total")
	res.AuditViolations = res.Obs.Counter("hme_audit_violations_total")
	return res
}

// runShardedLegacy is the Shards ≤ 1 path: the exact single-CS Run of
// earlier releases, its result reshaped. Keeping the degenerate case on the
// old code path is what makes `-shards 1` byte-identical by construction.
func runShardedLegacy(cfg ShardedRunConfig) ShardedRunResult {
	var src workload.Source
	if cfg.Workload != nil {
		src = workload.NewGen(*cfg.Workload, cfg.Seed+100, cfg.N)
	}
	o := obs.New(obs.Options{})
	r := RunObserved(RunConfig{
		Algo: cfg.Algo, N: cfg.N,
		Seed: cfg.Seed, FaultSeed: cfg.FaultSeed,
		Delta:          cfg.Delta,
		FaultTimes:     cfg.FaultTimes,
		FaultsPerBurst: cfg.FaultsPerBurst,
		Mix:            cfg.Mix,
		Workload:       src,
		Horizon:        cfg.Horizon,
		MaxRequests:    cfg.MaxLoops,
	}, o)
	res := ShardedRunResult{
		Entries:         r.Entries,
		EntriesByShard:  []int{r.Entries},
		Loops:           r.Entries,
		ShardsConverged: boolToInt(r.EntriesAfterFault > 0 || o.Convergence().LastFault() < 0),
		Obs:             r.Obs,
		ShardObs:        []*obs.Snapshot{r.Obs},
	}
	if len(cfg.FaultTimes) > 0 && cfg.FaultsPerBurst > 0 {
		res.FaultsApplied = len(cfg.FaultTimes) * cfg.FaultsPerBurst
	}
	return res
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ShardScale is experiment E17: the hierarchical sharded system at scale —
// Full runs 100 processes × 8 shards × 640 client loops to 10k+ completed
// loops with per-shard fault bursts and every 5th loop a two-shard
// hierarchical acquisition. Each wrapped shard must converge under its own
// W' (progress after its last fault), the hme monitor must show zero order
// and audit violations with nothing left in flight (the ordered-resource
// deadlock-freedom argument, observed), and each shard's obs carries its
// own fairness percentiles.
func ShardScale(scale Scale) *Table {
	shards, n, clients, loops := 4, 16, 64, 5
	horizon, delta := int64(200000), int64(200)
	if scale == Full {
		// 640 clients on 100 nodes over 8 Zipf-hot shards queue legitimately
		// for thousands of ticks; δ must sit above that wait or W' floods the
		// system with resends for stalls that are really just contention.
		shards, n, clients, loops = 8, 100, 640, 16
		horizon, delta = 4000000, 20000
	}
	cfg := ShardedRunConfig{
		Algo: RA, N: n, Shards: shards, Clients: clients,
		Seed: 17, FaultSeed: 23,
		Delta:      delta,
		CrossEvery: 5,
		MaxLoops:   loops,
		Horizon:    horizon,
		FaultTimes: []int64{500, 1500},
		FaultsPerBurst: 4,
	}
	res := RunSharded(cfg)

	t := &Table{
		Title: fmt.Sprintf("E17: sharded hierarchy, s=%d, n=%d, %d clients × %d loops, W' δ=%d, per-shard faults",
			shards, n, clients, loops, cfg.Delta),
		Header: []string{"shard", "entries", "p50", "p95", "p99", "converged"},
	}
	for s := 0; s < shards; s++ {
		snap := res.ShardObs[s]
		conv := "yes"
		if snap.Gauge("conv_progress_after_fault", 0) == 0 && snap.Gauge("conv_last_fault_time", -1) >= 0 {
			conv = "NO"
		}
		t.AddRow(fmt.Sprint(s),
			fmt.Sprint(res.EntriesByShard[s]),
			fmt.Sprint(snap.Gauge("fair_latency_p50", -1)),
			fmt.Sprint(snap.Gauge("fair_latency_p95", -1)),
			fmt.Sprint(snap.Gauge("fair_latency_p99", -1)),
			conv,
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d/%d clients completed their loop budget (%d loops, %d entries, %d engine events, %d faults)",
			res.ClientsDone, clients, res.Loops, res.Entries, res.Events, res.FaultsApplied),
		fmt.Sprintf("hme: %d cross-shard acquisitions, %d order violations, %d audit violations, %d in flight at the horizon",
			res.CrossAcquisitions, res.OrderViolations, res.AuditViolations, res.InFlight),
		fmt.Sprintf("%d/%d shards converged under their own W'; latencies are per-shard fairness percentiles (ticks)",
			res.ShardsConverged, shards),
		"expected: all clients done, all shards converged, zero hme violations, zero in flight",
	)
	return t
}
