package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/ring"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/tokenring"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// Cross-substrate determinism: every engine-backed substrate, driven by the
// unified fault injector, is a pure function of its seeds — the same seed
// yields byte-identical metrics JSON and byte-identical trace streams.

// runFingerprint renders a run's observable output: the metrics snapshot as
// JSON plus every trace event, concatenated.
func runFingerprint(t *testing.T, o *obs.Obs) string {
	t.Helper()
	var buf bytes.Buffer
	if err := o.Registry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var sb strings.Builder
	sb.Write(buf.Bytes())
	for _, e := range o.Tracer().Events() {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func tmeRun(t *testing.T, seed int64) string {
	o := obs.New(obs.Options{TraceCapacity: 4096})
	s := sim.New(sim.Config{
		N: 4, Seed: seed,
		NewNode:      RA.Factory(),
		Workload:     true,
		MaxRequests:  20,
		NewWrapper:   func(int) wrapper.Level2 { return wrapper.NewTimed(5) },
		WrapperEvery: 5,
		Obs:          o,
	})
	in := fault.NewInjector(seed+1001, fault.DefaultMix, fault.Options{})
	in.Schedule(s, []int64{200, 300}, 8)
	s.Run(10000)
	return runFingerprint(t, o)
}

func ringRun(t *testing.T, seed int64) string {
	o := obs.New(obs.Options{TraceCapacity: 4096})
	s := ring.NewSim(ring.SimConfig{
		N: 6, Seed: seed,
		NewNode:      func(id, n int) ring.Node { return ring.NewEager(id, n, 2) },
		WrapperDelta: 25,
		Obs:          o,
	})
	in := fault.NewInjector(seed+2002, fault.DefaultMix, fault.Options{})
	in.Schedule(s, []int64{50, 80}, 4)
	s.Run(1500)
	return runFingerprint(t, o)
}

func tokenringRun(t *testing.T, seed int64) string {
	o := obs.New(obs.Options{TraceCapacity: 4096})
	s := tokenring.NewSim(tokenring.SimConfig{N: 5, Seed: seed, Obs: o})
	in := fault.NewInjector(seed+3003, fault.DefaultMix, fault.Options{})
	in.Schedule(s, []int64{10}, 5)
	s.Run(2000)
	return runFingerprint(t, o)
}

func TestCrossSubstrateDeterminism(t *testing.T) {
	substrates := []struct {
		name string
		run  func(*testing.T, int64) string
	}{
		{"tme", tmeRun},
		{"ring", ringRun},
		{"tokenring", tokenringRun},
	}
	for _, sub := range substrates {
		sub := sub
		t.Run(sub.name, func(t *testing.T) {
			a := sub.run(t, 7)
			b := sub.run(t, 7)
			if a != b {
				t.Fatalf("%s: same seed produced different output\n--- run 1 ---\n%.2000s\n--- run 2 ---\n%.2000s", sub.name, a, b)
			}
			if len(a) == 0 {
				t.Fatalf("%s: empty fingerprint — run produced no observable output", sub.name)
			}
			c := sub.run(t, 8)
			if a == c {
				t.Fatalf("%s: different seeds produced identical output (seed unused?)", sub.name)
			}
		})
	}
}
