// Live-cluster harness: the loopback counterpart of Run. Where Run drives
// the deterministic simulator, RunLive boots one runtime.Cluster per
// process over real TCP sockets (internal/wire), threads every message
// through a shared chaos proxy, applies a pre-drawn fault schedule at
// wall-clock offsets, and measures throughput, CS-entry latency, safety
// (ME1 sampled live), and convergence time after the last fault.
//
// Determinism contract: a live run's *timings* are not reproducible — the
// schedule is. NewFaultSchedule pre-draws every fault kind, burst size,
// and partition group from the seed, so two runs with the same seed apply
// the identical fault sequence; wall-clock outcomes (which message a loss
// hits) legitimately differ. This file is therefore full of sanctioned
// wall-clock reads and goroutines, each annotated for gblint.
package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/runtime"
	"github.com/graybox-stabilization/graybox/internal/scenario"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wire"
	"github.com/graybox-stabilization/graybox/internal/workload"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// LiveTick is the live harness's reading of one abstract workload tick:
// one millisecond. Workload draws are unitless, so a schedule recorded on
// the simulator (1 tick = 1 virtual tick) replays on a live cluster (1 tick
// = 1ms) byte-identically.
const LiveTick = time.Millisecond

// Default driver timings, exported so callers (cmd/gbload's -trace-out)
// can reconstruct the exact uniform spec RunLive falls back to.
const (
	DefaultThinkMin = 2 * time.Millisecond
	DefaultThinkMax = 15 * time.Millisecond
	DefaultEatTime  = time.Millisecond
)

// liveNowNS reads the wall clock; live runs measure real time by design.
//
//gblint:ignore determinism live cluster runs are wall-clock by design; determinism lives in the fault schedule
func liveNowNS() int64 { return time.Now().UnixNano() }

// LiveConfig parameterizes a loopback live-cluster run.
type LiveConfig struct {
	// N is the cluster size. Default 3.
	N int
	// Shards is the number of independent critical sections (default 1).
	// Each process runs one protocol instance per shard; drivers pick the
	// shard of each attempt from the workload's resource draw (Zipf-skewed
	// when the spec says so), and ME1 is sampled per shard. Shards == 1 is
	// the single-CS run of earlier versions, draw-for-draw identical.
	Shards int
	// Algo selects the protocol. Default RA.
	Algo Algo
	// Seed drives the chaos proxy's delays, the drivers' think times, and
	// (via NewFaultSchedule) the fault plan.
	Seed int64
	// Duration is the measured run length. Default 2s.
	Duration time.Duration
	// Delta is the W' timeout on the real timer. 0 = default 25ms;
	// negative = no wrapper (the unwrapped baseline).
	Delta time.Duration
	// WrapperTick is the wrapper evaluation cadence. Default 2ms.
	WrapperTick time.Duration
	// ChaosMinDelay/ChaosMaxDelay bound the proxy's per-message hold.
	// Defaults 500µs / 3ms.
	ChaosMinDelay, ChaosMaxDelay time.Duration
	// ThinkMin/ThinkMax bound each driver's think time between CS
	// attempts. Defaults 2ms / 15ms.
	ThinkMin, ThinkMax time.Duration
	// EatTime is how long a process holds the CS. Default 1ms.
	EatTime time.Duration
	// SampleEvery is the ME1 sampler cadence. Default 500µs.
	SampleEvery time.Duration
	// Workload, when non-nil, shapes the drivers' traffic (ticks read as
	// LiveTick each); nil uses ThinkMin/ThinkMax/EatTime as a uniform
	// closed loop — through the same workload draw path either way.
	Workload *workload.Spec
	// WorkloadTrace, when non-nil, replays a recorded schedule instead of
	// generating draws (takes precedence over Workload).
	WorkloadTrace *workload.Schedule
	// Scenario, when non-nil, compiles to the fault schedule and chaos
	// delay bounds, overriding Schedule and ChaosMinDelay/ChaosMaxDelay.
	Scenario *scenario.Spec
	// Schedule, when non-nil, is the pre-drawn fault plan to apply.
	Schedule *wire.FaultSchedule
	// V2Nodes lists process ids whose transports send with the compact v2
	// wire codec; everyone else stays on v1. Receivers auto-detect, so any
	// mix is a valid cluster — listing one node exercises v1/v2 interop on
	// live edges.
	V2Nodes []int
	// Obs, when non-nil, receives all metrics; otherwise RunLive builds a
	// private bundle (returned in LiveResult.Snapshot either way).
	Obs *obs.Obs
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.N <= 0 {
		c.N = 3
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Algo == 0 {
		c.Algo = RA
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Delta == 0 {
		c.Delta = 25 * time.Millisecond
	}
	if c.WrapperTick <= 0 {
		c.WrapperTick = 2 * time.Millisecond
	}
	if c.ChaosMinDelay <= 0 {
		c.ChaosMinDelay = 500 * time.Microsecond
	}
	if c.ChaosMaxDelay < c.ChaosMinDelay {
		c.ChaosMaxDelay = 3 * time.Millisecond
	}
	if c.ThinkMin <= 0 {
		c.ThinkMin = DefaultThinkMin
	}
	if c.ThinkMax < c.ThinkMin {
		c.ThinkMax = DefaultThinkMax
	}
	if c.EatTime <= 0 {
		c.EatTime = DefaultEatTime
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 500 * time.Microsecond
	}
	return c
}

// LiveResult reports one live run.
type LiveResult struct {
	N          int   `json:"n"`
	DurationMS int64 `json:"duration_ms"`
	// Entries counts CS entries across the cluster; Requests counts CS
	// attempts the drivers issued.
	Entries  int `json:"entries"`
	Requests int `json:"requests"`
	// EntriesByShard breaks Entries down per shard (omitted when the run
	// is unsharded); skewed workloads show their heat here.
	EntriesByShard []int `json:"entries_by_shard,omitempty"`
	// ThroughputPerSec is entries per wall-clock second.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// CS-entry latency percentiles (request → entry), microseconds.
	LatP50US int64 `json:"lat_p50_us"`
	LatP95US int64 `json:"lat_p95_us"`
	LatP99US int64 `json:"lat_p99_us"`
	// FaultsApplied counts injector faults plus partition/heal events.
	FaultsApplied int `json:"faults_applied"`
	// SafetyViolations counts sampled ME1 violations (>1 process eating).
	SafetyViolations int `json:"safety_violations"`
	// SafetyViolationsAfterConvergence counts violations after the
	// convergence point — zero iff the run converged and stayed safe.
	SafetyViolationsAfterConvergence int `json:"safety_violations_after_convergence"`
	// Converged reports whether progress resumed after the convergence
	// point (always true for fault-free runs that made progress at all).
	Converged bool `json:"converged"`
	// ConvergenceMS is the gap between the last fault and the convergence
	// point (last fault or last violation, whichever is later); -1 when
	// the run never converged.
	ConvergenceMS int64 `json:"convergence_ms"`
	// LastFaultMS / LastViolationMS / FirstEntryAfterFaultMS are offsets
	// from run start (-1 = none).
	LastFaultMS            int64 `json:"last_fault_ms"`
	LastViolationMS        int64 `json:"last_violation_ms"`
	FirstEntryAfterFaultMS int64 `json:"first_entry_after_fault_ms"`
	// Snapshot is the run's full metrics snapshot (runtime, wire, chaos,
	// fault, and wrapper instruments).
	Snapshot *obs.Snapshot `json:"-"`
}

// RunLive executes one loopback live-cluster run: N single-process
// runtime.Clusters, each hosting one node over its own wire.Transport,
// all outbound traffic piped through one shared wire.Chaos.
func RunLive(cfg LiveConfig) (LiveResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Scenario != nil {
		plan := scenario.CompileLive(*cfg.Scenario, cfg.Seed, cfg.N, cfg.Duration)
		cfg.Schedule = plan.Schedule
		if plan.MinDelay > 0 {
			cfg.ChaosMinDelay, cfg.ChaosMaxDelay = plan.MinDelay, plan.MaxDelay
		}
	}
	o := cfg.Obs
	if o == nil {
		o = obs.New(obs.Options{})
	}
	n := cfg.N

	// All driver traffic flows through the workload engine: an explicit
	// Spec/trace when configured, otherwise the LiveConfig think/eat bounds
	// expressed as a uniform spec (ticks are LiveTick-sized, so min == max
	// degenerates to a constant instead of an Int63n edge case).
	var src workload.Source
	switch {
	case cfg.WorkloadTrace != nil:
		src = cfg.WorkloadTrace
	case cfg.Workload != nil:
		src = workload.NewGen(*cfg.Workload, cfg.Seed+100, n)
	default:
		src = workload.NewGen(workload.UniformSpec(
			int64(cfg.ThinkMin/LiveTick), int64(cfg.ThinkMax/LiveTick),
			int64(cfg.EatTime/LiveTick)), cfg.Seed+100, n)
	}

	shards := cfg.Shards
	chaos := wire.NewChaos(wire.ChaosConfig{
		N: n, Shards: shards, Seed: cfg.Seed + 1,
		MinDelay: cfg.ChaosMinDelay, MaxDelay: cfg.ChaosMaxDelay,
		Obs: o,
	})
	defer chaos.Close()

	v2 := make(map[int]bool, len(cfg.V2Nodes))
	for _, id := range cfg.V2Nodes {
		v2[id] = true
	}
	transports := make([]*wire.Transport, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		codec := wire.Version
		if v2[i] {
			codec = wire.Version2
		}
		tr, err := wire.NewTransport(wire.Config{N: n, Local: []int{i}, Codec: codec, Obs: o})
		if err != nil {
			for j := 0; j < i; j++ {
				_ = transports[j].Close()
			}
			return LiveResult{}, err
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
	}
	for _, tr := range transports {
		tr.SetPeers(addrs)
	}

	var newWrapper func(int) wrapper.Level2
	if cfg.Delta >= 0 {
		delta := cfg.Delta.Nanoseconds() // Timed.Fire receives UnixNano
		newWrapper = func(int) wrapper.Level2 { return wrapper.NewTimed(delta) }
	}
	clusters := make([]*runtime.Cluster, n)
	for i := 0; i < n; i++ {
		cl, err := runtime.NewCluster(runtime.Config{
			N: n, Shards: shards, Seed: cfg.Seed + int64(i), Local: []int{i},
			NewNode:     cfg.Algo.Factory(),
			NewWrapper:  newWrapper,
			WrapperTick: cfg.WrapperTick,
			Level1:      wrapper.PhaseGuard{},
			Obs:         o,
			Transport:   chaos.Pipe(transports[i]),
		})
		if err != nil {
			for _, tr := range transports {
				_ = tr.Close()
			}
			return LiveResult{}, err
		}
		clusters[i] = cl
	}

	chaos.SetPerturb(func(id int, rng *rand.Rand) bool {
		if id < 0 || id >= n {
			return false
		}
		clusters[id].Corrupt(id, fault.RandomCorruptionFrom(rng, id, n, fault.Options{}))
		return true
	})

	// Shared measurement state. reqAt is per (shard, process): a process
	// can have independent requests in flight on different shards.
	var (
		mu            sync.Mutex
		entryTimes    []int64
		latencies     []int64
		violTimes     []int64
		requests      int64
		entriesByShrd = make([]int, shards)
	)
	reqAt := make([][]atomic.Int64, shards)
	for s := range reqAt {
		reqAt[s] = make([]atomic.Int64, n)
	}
	fair := o.Fairness()
	for i := range clusters {
		i := i
		clusters[i].OnEntry(func(e runtime.Entry) {
			at := e.At.UnixNano()
			var lat int64 = -1
			if r := reqAt[e.Shard][i].Load(); r > 0 {
				lat = at - r
			}
			latTicks := int64(-1)
			if lat >= 0 {
				latTicks = lat / int64(LiveTick)
			}
			fair.RecordEntry(i, latTicks)
			mu.Lock()
			entryTimes = append(entryTimes, at)
			entriesByShrd[e.Shard]++
			if lat >= 0 {
				latencies = append(latencies, lat)
			}
			mu.Unlock()
		})
	}

	for _, cl := range clusters {
		cl.Start()
	}
	start := liveNowNS()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Drivers: one client loop per process, drawing every think/arrival gap
	// and hold time from the workload stream (ticks scaled by LiveTick).
	// Closed-loop clients gap release-to-request; open-loop clients keep an
	// arrival clock that runs independently of service, so a backlog of
	// arrivals drains back-to-back once the client frees up.
	for i := 0; i < n; i++ {
		i := i
		client := src.Client(i)
		wg.Add(1)
		//gblint:ignore determinism one client-driver goroutine per process is the live harness's execution model
		go func() {
			defer wg.Done()
			open := client.Open()
			nextArrival := liveNowNS()
			for {
				var wait time.Duration
				if open {
					nextArrival += client.NextThink() * int64(LiveTick)
					wait = time.Duration(nextArrival - liveNowNS())
				} else {
					wait = time.Duration(client.NextThink()) * LiveTick
				}
				if !liveSleep(stop, wait) {
					return
				}
				// The workload's resource draw picks this attempt's shard
				// (Zipf-skewed when the spec says so; always 0 unsharded).
				shard := client.NextResource(shards)
				switch clusters[i].PhaseShard(shard, i) {
				case tme.Eating:
					// State corruption can forge the eating phase without
					// a matching request; the client's contract is to eat
					// for a bounded time, so release and move on.
					clusters[i].ReleaseShard(shard, i)
					continue
				case tme.Thinking:
				case tme.Hungry:
					continue // a request is already in flight
				default:
					continue // invalid phase (corruption): skip the cycle
				}
				reqAt[shard][i].Store(liveNowNS())
				atomic.AddInt64(&requests, 1)
				clusters[i].RequestShard(shard, i)
				if !liveWaitPhase(stop, clusters[i], shard, i, tme.Eating) {
					if clusters[i].PhaseShard(shard, i) != tme.Eating {
						return
					}
				}
				if !liveSleep(stop, time.Duration(client.NextHold())*LiveTick) {
					clusters[i].ReleaseShard(shard, i)
					return
				}
				clusters[i].ReleaseShard(shard, i)
			}
		}()
	}

	// ME1 sampler: more than one process eating is a safety violation.
	// A violation is only recorded when an immediate re-check agrees, so
	// a release racing the scan doesn't count.
	wg.Add(1)
	//gblint:ignore determinism the live safety monitor samples wall-clock state by design
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(cfg.SampleEvery)
		defer ticker.Stop()
		conv := o.Convergence()
		eating := func(s int) int {
			c := 0
			for i := 0; i < n; i++ {
				if clusters[i].PhaseShard(s, i) == tme.Eating {
					c++
				}
			}
			return c
		}
		// ME1 is per shard: shards are independent critical sections, so
		// two eaters are only a violation on the same shard.
		anyViolation := func() bool {
			for s := 0; s < shards; s++ {
				if eating(s) > 1 {
					return true
				}
			}
			return false
		}
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				// Double-read: only count when the second scan agrees,
				// so an entry/release racing the first scan doesn't.
				if anyViolation() && anyViolation() {
					at := liveNowNS()
					conv.RecordViolation(at)
					mu.Lock()
					violTimes = append(violTimes, at)
					mu.Unlock()
				}
			}
		}
	}()

	// Schedule applier: fire each pre-drawn event at its offset.
	var extraFaults int64 // partitions + heals (not injector-counted)
	in := fault.NewInjector(cfg.Seed+2, fault.DefaultMix, fault.Options{})
	if cfg.Schedule != nil {
		wg.Add(1)
		//gblint:ignore determinism the schedule applier replays a pre-drawn plan at wall-clock offsets
		go func() {
			defer wg.Done()
			for _, e := range cfg.Schedule.Events {
				due := time.Duration(e.AtMS)*time.Millisecond - time.Duration(liveNowNS()-start)
				if due > 0 && !liveSleep(stop, due) {
					return
				}
				switch e.Verb {
				case wire.VerbPartition:
					chaos.Isolate(e.Group...)
					atomic.AddInt64(&extraFaults, 1)
				case wire.VerbPartitionOneWay:
					chaos.IsolateOneWay(e.Group...)
					atomic.AddInt64(&extraFaults, 1)
				case wire.VerbHeal:
					chaos.Heal()
					atomic.AddInt64(&extraFaults, 1)
				default:
					k, ok := e.FaultKind()
					if !ok {
						continue
					}
					count := e.Count
					if count < 1 {
						count = 1
					}
					for j := 0; j < count; j++ {
						in.Apply(chaos, k)
					}
				}
			}
		}()
	}

	liveSleep(nil, cfg.Duration)
	close(stop)
	wg.Wait()
	for _, cl := range clusters {
		cl.Stop() // also closes its pipe and TCP transport
	}
	_ = chaos.Close()

	// Derive the result.
	res := LiveResult{
		N:          n,
		DurationMS: (liveNowNS() - start) / int64(time.Millisecond),
	}
	mu.Lock()
	defer mu.Unlock()
	res.Entries = len(entryTimes)
	res.Requests = int(atomic.LoadInt64(&requests))
	if shards > 1 {
		res.EntriesByShard = entriesByShrd
	}
	if res.DurationMS > 0 {
		res.ThroughputPerSec = float64(res.Entries) * 1000 / float64(res.DurationMS)
	}
	res.LatP50US, res.LatP95US, res.LatP99US = percentilesUS(latencies)
	res.FaultsApplied = in.Count() + int(atomic.LoadInt64(&extraFaults))
	res.SafetyViolations = len(violTimes)

	lastFault := o.Convergence().LastFault()
	lastViol := int64(-1)
	if len(violTimes) > 0 {
		lastViol = violTimes[len(violTimes)-1]
	}
	convPoint := lastFault
	if lastViol > convPoint {
		convPoint = lastViol
	}
	entriesAfter := 0
	firstAfterFault := int64(-1)
	for _, t := range entryTimes {
		if t > convPoint {
			entriesAfter++
		}
		if lastFault >= 0 && t > lastFault && (firstAfterFault < 0 || t < firstAfterFault) {
			firstAfterFault = t
		}
	}
	for _, t := range violTimes {
		if t > convPoint { // convPoint ≥ every violation, so this stays 0
			res.SafetyViolationsAfterConvergence++
		}
	}
	res.Converged = entriesAfter > 0
	switch {
	case !res.Converged:
		res.ConvergenceMS = -1
	case lastFault < 0:
		res.ConvergenceMS = 0
	default:
		res.ConvergenceMS = (convPoint - lastFault) / int64(time.Millisecond)
	}
	res.LastFaultMS = offsetMS(lastFault, start)
	res.LastViolationMS = offsetMS(lastViol, start)
	res.FirstEntryAfterFaultMS = offsetMS(firstAfterFault, start)
	fair.Publish()
	res.Snapshot = o.Registry().Snapshot()
	return res, nil
}

func offsetMS(t, start int64) int64 {
	if t < 0 {
		return -1
	}
	return (t - start) / int64(time.Millisecond)
}

// percentilesUS reports p50/p95/p99 of ns latencies, in microseconds.
func percentilesUS(lat []int64) (p50, p95, p99 int64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	s := append([]int64(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pick := func(q float64) int64 {
		i := int(q * float64(len(s)-1))
		return s[i] / int64(time.Microsecond)
	}
	return pick(0.50), pick(0.95), pick(0.99)
}

// liveSleep waits d or until stop closes; false means stopped early.
func liveSleep(stop <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}

// liveWaitPhase polls until process id of cl reaches phase on shard or
// stop closes.
func liveWaitPhase(stop <-chan struct{}, cl *runtime.Cluster, shard, id int, phase tme.Phase) bool {
	for {
		if cl.PhaseShard(shard, id) == phase {
			return true
		}
		if !liveSleep(stop, 200*time.Microsecond) {
			return false
		}
	}
}

// LiveCluster is experiment E15: the wrapped and unwrapped cluster on real
// TCP loopback sockets under a seeded fault schedule (including a
// partition/heal pair). The wrapped rows must converge — zero safety
// violations after convergence, finite convergence time — which is the
// paper's claim surviving contact with a real network.
func LiveCluster(scale Scale) *Table {
	n, dur := 3, 1200*time.Millisecond
	if scale == Full {
		n, dur = 5, 5*time.Second
	}
	t := &Table{
		Title: fmt.Sprintf("E15: live TCP loopback cluster, n=%d, %s, seeded chaos schedule", n, dur),
		Header: []string{"wrapper", "entries", "thruput/s", "p95 µs", "faults",
			"violations", "after-conv", "converged", "conv ms"},
	}
	for _, row := range []struct {
		name  string
		delta time.Duration
	}{
		{"none", -1},
		{"W' δ=25ms", 25 * time.Millisecond},
	} {
		sched := wire.NewFaultSchedule(7, wire.ScheduleConfig{
			N: n, Duration: dur, Bursts: 3, MaxPerBurst: 3,
			Mix: fault.DefaultMix, Partition: true,
		})
		res, err := RunLive(LiveConfig{
			N: n, Seed: 7, Duration: dur, Delta: row.delta, Schedule: sched,
		})
		if err != nil {
			t.AddRow(row.name, "error: "+err.Error(), "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(row.name,
			fmt.Sprint(res.Entries),
			fmt.Sprintf("%.0f", res.ThroughputPerSec),
			fmt.Sprint(res.LatP95US),
			fmt.Sprint(res.FaultsApplied),
			fmt.Sprint(res.SafetyViolations),
			fmt.Sprint(res.SafetyViolationsAfterConvergence),
			fmt.Sprint(res.Converged),
			fmt.Sprint(res.ConvergenceMS),
		)
	}
	t.Notes = append(t.Notes,
		"live wall-clock run: the fault schedule (kinds, bursts, partition group) is seed-deterministic; timings are not",
		"expected: the wrapped row converges (after-conv = 0, finite conv ms) despite losses, duplication, corruption, and a partition/heal",
	)
	return t
}
