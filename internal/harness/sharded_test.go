package harness

import (
	"bytes"
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/workload"
)

func shardedTestCfg() ShardedRunConfig {
	return ShardedRunConfig{
		Algo: RA, N: 6, Shards: 4, Clients: 12,
		Seed: 5, FaultSeed: 11,
		Delta:      200,
		CrossEvery: 3,
		MaxLoops:   4,
		Horizon:    200000,
	}
}

// Same seed ⇒ identical metrics JSON, coordinator and every shard — the
// merge-barrier design's determinism claim, measured end to end.
func TestRunShardedDeterministicMetricsJSON(t *testing.T) {
	a := RunSharded(shardedTestCfg()).MetricsJSON()
	b := RunSharded(shardedTestCfg()).MetricsJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("metrics JSON differs across identical runs:\n%s\n--- vs ---\n%s", a, b)
	}
}

// Faulted sharded runs stay deterministic too: the injectors live on the
// shard cores and draw from seeded streams.
func TestRunShardedDeterministicUnderFaults(t *testing.T) {
	cfg := shardedTestCfg()
	cfg.FaultTimes = []int64{300, 900}
	cfg.FaultsPerBurst = 3
	a := RunSharded(cfg)
	b := RunSharded(cfg)
	if !bytes.Equal(a.MetricsJSON(), b.MetricsJSON()) {
		t.Fatal("faulted sharded runs diverge across identical seeds")
	}
	if a.FaultsApplied == 0 {
		t.Fatal("no faults applied")
	}
}

// Shards = 1 takes the legacy single-CS path byte-for-byte: the result must
// match a direct Run with the same knobs, snapshot included.
func TestRunShardedSingleShardParity(t *testing.T) {
	cfg := ShardedRunConfig{
		Algo: RA, N: 5, Shards: 1,
		Seed: 9, FaultSeed: 13,
		Delta:          200,
		MaxLoops:       8,
		Horizon:        20000,
		FaultTimes:     []int64{100},
		FaultsPerBurst: 5,
	}
	got := RunSharded(cfg)
	want := Run(RunConfig{
		Algo: RA, N: 5, Seed: 9, FaultSeed: 13, Delta: 200,
		MaxRequests: 8, Horizon: 20000,
		FaultTimes: []int64{100}, FaultsPerBurst: 5,
	})
	if got.Entries != want.Entries {
		t.Fatalf("entries: sharded=1 %d vs legacy %d", got.Entries, want.Entries)
	}
	var a, b bytes.Buffer
	if err := got.Obs.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := want.Obs.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("shards=1 snapshot diverges from the legacy path:\n%s\n--- vs ---\n%s",
			a.Bytes(), b.Bytes())
	}
}

// A Zipf-skewed workload must show its heat in the per-shard entry counts:
// shard 0 is the hot shard and collects strictly more entries than the
// coolest shard.
func TestRunShardedSkewShowsInEntryCounts(t *testing.T) {
	cfg := shardedTestCfg()
	cfg.CrossEvery = 0
	cfg.Clients = 32
	cfg.MaxLoops = 6
	spec := workload.DefaultSpec()
	for i := range spec.Cohorts {
		spec.Cohorts[i].Skew = workload.Skew{Resources: cfg.Shards, S: 1.6}
	}
	cfg.Workload = &spec
	res := RunSharded(cfg)
	if res.ClientsDone != cfg.Clients {
		t.Fatalf("clients done = %d, want %d", res.ClientsDone, cfg.Clients)
	}
	hot := res.EntriesByShard[0]
	cold := res.EntriesByShard[0]
	for _, n := range res.EntriesByShard[1:] {
		if n > hot {
			hot = n
		}
		if n < cold {
			cold = n
		}
	}
	if res.EntriesByShard[0] != hot {
		t.Fatalf("shard 0 is not the hot shard: per-shard entries %v", res.EntriesByShard)
	}
	if hot <= cold {
		t.Fatalf("Zipf skew invisible in entry counts: %v", res.EntriesByShard)
	}
}

// E17 at Quick scale: every client completes, every shard converges, and
// the hme monitor certifies deadlock-freedom (no violations, no lock set
// left in flight).
func TestShardScaleQuick(t *testing.T) {
	tab := ShardScale(Quick)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("shard %s did not converge:\n%s", row[0], tab)
		}
	}
	joined := strings.Join(tab.Notes, "\n")
	if !strings.Contains(joined, "0 order violations, 0 audit violations, 0 in flight") {
		t.Fatalf("hme deadlock-freedom evidence missing:\n%s", joined)
	}
	if strings.Contains(joined, "0 cross-shard acquisitions") {
		t.Fatalf("no cross-shard acquisitions exercised:\n%s", joined)
	}
}
