package harness

import (
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/lspec"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/twin"
)

// cleanParityInputs builds a sim result, live result, and prediction that
// agree exactly — the fixture the negative tests perturb.
func cleanParityInputs() (RunResult, LiveResult, twin.Prediction) {
	simRes := RunResult{
		Entries: 100, Requests: 102,
		ViolationSummary: map[string]lspec.Stat{},
	}
	liveRes := LiveResult{Entries: 100, Requests: 102, Converged: true}
	pred := twin.Prediction{Entries: 100, Requests: 102}
	return simRes, liveRes, pred
}

// TestParityEvalClean checks that agreeing projections pass the gate.
func TestParityEvalClean(t *testing.T) {
	simRes, liveRes, pred := cleanParityInputs()
	res := parityEval(simRes, liveRes, pred)
	if !res.OK {
		t.Fatalf("clean projections should pass:\nsim vs live:\n%ssim vs twin:\n%slive vs twin:\n%s",
			obs.FormatDiffs(res.SimVsLive), obs.FormatDiffs(res.SimVsTwin), obs.FormatDiffs(res.LiveVsTwin))
	}
}

// TestParityEvalNegative is the ISSUE's demanded negative test: perturbing
// a semantic metric beyond its tolerance must fail the gate.
func TestParityEvalNegative(t *testing.T) {
	t.Run("entries beyond 20%", func(t *testing.T) {
		simRes, liveRes, pred := cleanParityInputs()
		liveRes.Entries = 160 // 37% off the sim's 100
		res := parityEval(simRes, liveRes, pred)
		if res.OK {
			t.Fatal("perturbed entries should fail the gate")
		}
		if !diverged(res.SimVsLive, "parity_entries") {
			t.Errorf("sim-vs-live entries should be the diverged metric:\n%s",
				obs.FormatDiffs(res.SimVsLive))
		}
		// The untouched pair still agrees.
		if !obs.AllWithin(res.SimVsTwin) {
			t.Errorf("sim-vs-twin should stay within tolerance:\n%s",
				obs.FormatDiffs(res.SimVsTwin))
		}
	})
	t.Run("entries within 20% passes", func(t *testing.T) {
		simRes, liveRes, pred := cleanParityInputs()
		liveRes.Entries = 110
		liveRes.Requests = 112
		if res := parityEval(simRes, liveRes, pred); !res.OK {
			t.Fatalf("10%% drift should pass:\n%s", obs.FormatDiffs(res.SimVsLive))
		}
	})
	t.Run("safety violation is zero-tolerance", func(t *testing.T) {
		simRes, liveRes, pred := cleanParityInputs()
		liveRes.SafetyViolations = 1
		res := parityEval(simRes, liveRes, pred)
		if res.OK {
			t.Fatal("one live ME1 violation should fail the gate")
		}
		if !diverged(res.SimVsLive, "parity_me1_samples") {
			t.Errorf("me1 samples should be the diverged metric:\n%s",
				obs.FormatDiffs(res.SimVsLive))
		}
	})
	t.Run("convergence drift is zero-tolerance", func(t *testing.T) {
		simRes, liveRes, pred := cleanParityInputs()
		simRes.ConvergenceTime = 40
		res := parityEval(simRes, liveRes, pred)
		if res.OK {
			t.Fatal("sim-only convergence time should fail the gate")
		}
	})
	t.Run("never-converged live run fails", func(t *testing.T) {
		simRes, liveRes, pred := cleanParityInputs()
		liveRes.Converged = false
		liveRes.ConvergenceMS = -1
		if res := parityEval(simRes, liveRes, pred); res.OK {
			t.Fatal("a stalled live cluster should fail the gate")
		}
	})
}

// TestRunParity is the E18 positive gate: the same seeded workload on sim
// and loopback live cluster, plus the twin, all within tolerance. It boots
// a real TCP cluster for over a second, so -short skips it.
func TestRunParity(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback cluster run; skipped under -short")
	}
	res, err := RunParity(ParityConfig{Seed: 11})
	if err != nil {
		t.Fatalf("RunParity: %v", err)
	}
	report := "sim vs live:\n" + obs.FormatDiffs(res.SimVsLive) +
		"sim vs twin:\n" + obs.FormatDiffs(res.SimVsTwin) +
		"live vs twin:\n" + obs.FormatDiffs(res.LiveVsTwin)
	if !res.OK {
		t.Fatalf("parity gate diverged:\n%s", report)
	}
	if res.Sim.Entries == 0 || res.Live.Entries == 0 {
		t.Fatalf("degenerate parity run (sim=%d live=%d entries):\n%s",
			res.Sim.Entries, res.Live.Entries, report)
	}
}

// TestParityGateTable checks the E18 renderer marks verdicts per row.
func TestParityGateTable(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback cluster run; skipped under -short")
	}
	tbl, ok := ParityGate(Quick)
	out := tbl.String()
	if !strings.Contains(out, "parity_entries") || !strings.Contains(out, "sim vs live") {
		t.Errorf("gate table missing rows:\n%s", out)
	}
	if !ok && !strings.Contains(out, "DIVERGED") {
		t.Errorf("failed gate must show a DIVERGED row:\n%s", out)
	}
	if !ok {
		t.Fatalf("E18 gate diverged:\n%s", out)
	}
}

// diverged reports whether the named metric is out of tolerance in diffs.
func diverged(diffs []obs.MetricDiff, name string) bool {
	for _, d := range diffs {
		if d.Name == name {
			return !d.Within
		}
	}
	return false
}
