package harness

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/lspec"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// legacyRun replays cfg without observability and computes the measurements
// the way the harness did before obs existed: the fault window from the
// configuration, entries-after-fault by a post-hoc recount over sim.Metrics,
// violations from the monitors. It is the independent baseline the
// obs-derived Run must reproduce exactly.
func legacyRun(cfg RunConfig) RunResult {
	cfg = cfg.withDefaults()
	simCfg := sim.Config{
		N:           cfg.N,
		Seed:        cfg.Seed,
		NewNode:     cfg.Algo.Factory(),
		Workload:    true,
		MaxRequests: cfg.MaxRequests,
	}
	if cfg.DeadlockFault {
		simCfg.ThinkMin, simCfg.ThinkMax = cfg.Horizon+1, cfg.Horizon+2
	}
	if cfg.Delta >= 0 {
		delta := cfg.Delta
		simCfg.NewWrapper = func(int) wrapper.Level2 { return wrapper.NewTimed(delta) }
		if delta > 1 {
			simCfg.WrapperEvery = delta
		}
	}
	s := sim.New(simCfg)

	var mon *lspec.Monitors
	if cfg.Monitor {
		mon = lspec.New(cfg.N)
		s.SetObserver(mon.AsObserver())
	}

	lastFault := int64(-1)
	if cfg.DeadlockFault {
		const reqAt = 10
		s.At(reqAt, func(s *sim.Sim) {
			for i := 0; i < s.N(); i++ {
				s.Request(i)
			}
		})
		s.At(reqAt+1, func(s *sim.Sim) { fault.DropAllInFlight(s) })
		lastFault = reqAt + 1
	}
	if len(cfg.FaultTimes) > 0 && cfg.FaultsPerBurst > 0 {
		in := fault.NewInjector(cfg.FaultSeed, cfg.Mix, fault.Options{})
		in.Schedule(s, cfg.FaultTimes, cfg.FaultsPerBurst)
		for _, t := range cfg.FaultTimes {
			if t > lastFault {
				lastFault = t
			}
		}
	}

	s.Run(cfg.Horizon)

	m := s.Metrics()
	res := RunResult{
		LastFault:            lastFault,
		LastViolation:        -1,
		FirstEntryAfterFault: -1,
		Entries:              len(m.Entries),
		Requests:             m.Requests,
		ProgramMsgs:          m.ProgramMsgs,
		WrapperMsgs:          m.WrapperMsgs,
	}
	for _, e := range m.Entries {
		if e.Time > lastFault {
			res.EntriesAfterFault++
			if res.FirstEntryAfterFault < 0 {
				res.FirstEntryAfterFault = e.Time
			}
		}
	}
	if mon != nil {
		res.LastViolation = mon.LastViolationTime()
		res.Violations = len(mon.Violations()) + len(mon.FCFSViolations())
		if res.LastViolation > lastFault {
			res.ConvergenceTime = res.LastViolation - lastFault
		}
	}
	return res
}

// TestObsMatchesLegacyComputation checks the acceptance criterion that the
// telemetry-derived measurements agree with the pre-obs harness bookkeeping
// on the E2 (stabilization under fault bursts) and E4 (deadlock recovery)
// configurations.
func TestObsMatchesLegacyComputation(t *testing.T) {
	configs := map[string]RunConfig{
		"E2-stabilization": {
			Algo: RA, N: 4, Seed: 3, FaultSeed: 1003, Delta: 5,
			FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 12,
			MaxRequests: 40, Horizon: 40000, Monitor: true,
		},
		"E2-unwrapped": {
			Algo: RA, N: 4, Seed: 7, FaultSeed: 1007, Delta: NoWrapper,
			FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 12,
			MaxRequests: 40, Horizon: 40000, Monitor: true,
		},
		"E4-deadlock": {
			Algo: RA, N: 4, Seed: 5, Delta: 5,
			DeadlockFault: true, Horizon: 30000, Monitor: true,
		},
	}
	for name, cfg := range configs {
		want := legacyRun(cfg)
		got := Run(cfg)
		if got.LastFault != want.LastFault {
			t.Errorf("%s: LastFault = %d, legacy %d", name, got.LastFault, want.LastFault)
		}
		if got.LastViolation != want.LastViolation {
			t.Errorf("%s: LastViolation = %d, legacy %d", name, got.LastViolation, want.LastViolation)
		}
		if got.ConvergenceTime != want.ConvergenceTime {
			t.Errorf("%s: ConvergenceTime = %d, legacy %d", name, got.ConvergenceTime, want.ConvergenceTime)
		}
		if got.FirstEntryAfterFault != want.FirstEntryAfterFault {
			t.Errorf("%s: FirstEntryAfterFault = %d, legacy %d", name, got.FirstEntryAfterFault, want.FirstEntryAfterFault)
		}
		if got.EntriesAfterFault != want.EntriesAfterFault {
			t.Errorf("%s: EntriesAfterFault = %d, legacy %d", name, got.EntriesAfterFault, want.EntriesAfterFault)
		}
		if got.Entries != want.Entries || got.Requests != want.Requests {
			t.Errorf("%s: Entries/Requests = %d/%d, legacy %d/%d",
				name, got.Entries, got.Requests, want.Entries, want.Requests)
		}
		if got.ProgramMsgs != want.ProgramMsgs || got.WrapperMsgs != want.WrapperMsgs {
			t.Errorf("%s: ProgramMsgs/WrapperMsgs = %d/%d, legacy %d/%d",
				name, got.ProgramMsgs, got.WrapperMsgs, want.ProgramMsgs, want.WrapperMsgs)
		}
		if got.Violations != want.Violations {
			t.Errorf("%s: Violations = %d, legacy %d", name, got.Violations, want.Violations)
		}
		if got.Obs == nil || got.Obs.Counter("sim_cs_entries_total") != int64(got.Entries) {
			t.Errorf("%s: RunResult.Obs snapshot missing or inconsistent", name)
		}
	}
}
