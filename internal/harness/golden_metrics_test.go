package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata")

// checkGolden compares got against testdata/<name>, rewriting the file
// when -update is set. Byte identity is the point: these goldens pin the
// full metrics output of reference configurations, so any refactor that
// perturbs event order, instrument wiring, or snapshot encoding fails
// loudly instead of silently shifting the paper's measurements.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/harness -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (rerun with -update only if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// e2Config is one cell of the E2 stabilization experiment: RA with the
// timed wrapper under three mixed fault bursts.
func e2Config() RunConfig {
	return RunConfig{
		Algo: RA, N: 4,
		Seed: 1, FaultSeed: 1001,
		Delta:      5,
		FaultTimes: []int64{200, 300, 400}, FaultsPerBurst: 12,
		MaxRequests: 40,
		Horizon:     40000,
		Monitor:     true,
	}
}

// e4Config is one cell of the E4 deadlock experiment: all in-flight
// requests dropped, recovery owed to the timed wrapper.
func e4Config() RunConfig {
	return RunConfig{
		Algo: RA, N: 4,
		Seed:          1,
		Delta:         10,
		DeadlockFault: true,
		Horizon:       30000,
	}
}

// TestGoldenMetricsE2 pins the complete metrics JSON of the E2 reference
// run.
func TestGoldenMetricsE2(t *testing.T) {
	r := Run(e2Config())
	var buf bytes.Buffer
	if err := r.Obs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e2_metrics.json", buf.Bytes())
}

// TestGoldenMetricsE4 pins the complete metrics JSON of the E4 reference
// run.
func TestGoldenMetricsE4(t *testing.T) {
	r := Run(e4Config())
	var buf bytes.Buffer
	if err := r.Obs.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e4_metrics.json", buf.Bytes())
}

// TestGoldenFig1 pins the rendered Figure-1 table: the paper's
// counterexample, answer for answer.
func TestGoldenFig1(t *testing.T) {
	checkGolden(t, "fig1_table.txt", []byte(Fig1().String()))
}

// TestGoldenRunsAreReproducible re-runs the E2 configuration and demands
// byte-identical JSON — the determinism contract at the telemetry level,
// independent of the checked-in goldens.
func TestGoldenRunsAreReproducible(t *testing.T) {
	var a, b bytes.Buffer
	if err := Run(e2Config()).Obs.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := Run(e2Config()).Obs.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical configs produced different metrics JSON:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
}
