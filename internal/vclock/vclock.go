// Package vclock implements vector clocks and a resettable, bounded-space
// variant modelled on "Resettable Vector Clocks" (Arora, Kulkarni, Demirbas
// — PODC 2000), the case study the paper cites ([1], [4]) as its own
// earlier exercise in graybox fault-tolerance design.
//
// Plain vector clocks characterize causality exactly — e happened-before f
// iff V(e) < V(f) — but their components grow without bound. The resettable
// variant runs in bounded space: clocks live inside an *epoch*; when any
// component approaches the bound, a distinguished coordinator opens a fresh
// epoch in which vectors restart from zero. Epoch adoption is monotone (a
// process joins the highest epoch it hears of and discards stamps from
// older ones), so the scheme tolerates lost or duplicated reset
// announcements and arbitrarily corrupted epoch counters the same way the
// TME wrapper tolerates corrupted REQ copies: stale information is
// out-ordered rather than repaired in place. Causality comparisons are
// exact within an epoch and conservative across epochs (a later epoch is
// treated as causally later — correct whenever epochs are opened by a
// message-propagated announcement).
package vclock

import (
	"fmt"
	"strings"
)

// V is a plain vector clock over a fixed number of processes.
type V []uint32

// NewV returns the zero vector for n processes.
func NewV(n int) V { return make(V, n) }

// Copy returns an independent copy.
func (v V) Copy() V {
	out := make(V, len(v))
	copy(out, v)
	return out
}

// Tick increments process i's component, recording a local event.
func (v V) Tick(i int) { v[i]++ }

// Join takes the componentwise maximum of v and u into v.
func (v V) Join(u V) {
	for i := range v {
		if i < len(u) && u[i] > v[i] {
			v[i] = u[i]
		}
	}
}

// Leq reports v ≤ u componentwise.
func (v V) Leq(u V) bool {
	for i := range v {
		var ui uint32
		if i < len(u) {
			ui = u[i]
		}
		if v[i] > ui {
			return false
		}
	}
	return true
}

// Less reports v < u: componentwise ≤ and different.
func (v V) Less(u V) bool {
	if !v.Leq(u) {
		return false
	}
	for i := range v {
		var ui uint32
		if i < len(u) {
			ui = u[i]
		}
		if v[i] != ui {
			return true
		}
	}
	return len(u) > len(v) && anyNonzero(u[len(v):])
}

// Concurrent reports that neither v ≤ u nor u ≤ v.
func (v V) Concurrent(u V) bool { return !v.Leq(u) && !u.Leq(v) }

// Max returns the largest component.
func (v V) Max() uint32 {
	var m uint32
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// String renders the vector as "[a b c]".
func (v V) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func anyNonzero(xs V) bool {
	for _, x := range xs {
		if x != 0 {
			return true
		}
	}
	return false
}

// Stamp is the timestamp a resettable clock attaches to a message: the
// epoch it was produced in plus the vector within that epoch.
type Stamp struct {
	Epoch uint64
	Vec   V
}

// Before reports whether s is causally before t under the conservative
// cross-epoch order: an earlier epoch is before a later one; within an
// epoch, strict vector order decides.
func (s Stamp) Before(t Stamp) bool {
	if s.Epoch != t.Epoch {
		return s.Epoch < t.Epoch
	}
	return s.Vec.Less(t.Vec)
}

// Concurrent reports that neither stamp is Before the other.
func (s Stamp) Concurrent(t Stamp) bool { return !s.Before(t) && !t.Before(s) }

// Resettable is one process's bounded-space resettable vector clock.
// Construct with NewResettable; drive from a single goroutine.
type Resettable struct {
	id, n int
	bound uint32
	epoch uint64
	vec   V
}

// NewResettable returns process id of n with the given component bound
// (≥ 2; space is n·log₂(bound) bits plus the epoch).
func NewResettable(id, n int, bound uint32) *Resettable {
	if bound < 2 {
		bound = 2
	}
	return &Resettable{id: id, n: n, bound: bound, vec: NewV(n)}
}

// ID returns the owning process id.
func (r *Resettable) ID() int { return r.id }

// Epoch returns the current epoch.
func (r *Resettable) Epoch() uint64 { return r.epoch }

// Vec returns a copy of the current vector.
func (r *Resettable) Vec() V { return r.vec.Copy() }

// NeedsReset reports whether any component is within one tick of the
// bound — the spec-level condition the reset coordinator watches.
func (r *Resettable) NeedsReset() bool { return r.vec.Max()+1 >= r.bound }

// Tick records a local event and returns its stamp.
func (r *Resettable) Tick() Stamp {
	r.vec.Tick(r.id)
	return Stamp{Epoch: r.epoch, Vec: r.vec.Copy()}
}

// Observe merges a received stamp (and the implied receive event),
// returning the receive event's stamp. Epoch adoption is monotone:
//
//   - stamp from a NEWER epoch: adopt it — epoch := stamp's, vector :=
//     stamp's vector (this is how reset announcements propagate, and how a
//     process whose epoch was corrupted low rejoins);
//   - same epoch: standard vector-clock join;
//   - OLDER epoch: the stamp is stale; it is discarded, only the local
//     event is recorded.
func (r *Resettable) Observe(s Stamp) Stamp {
	switch {
	case s.Epoch > r.epoch:
		r.epoch = s.Epoch
		r.vec = NewV(r.n)
		r.vec.Join(s.Vec)
	case s.Epoch == r.epoch:
		r.vec.Join(s.Vec)
	}
	return r.Tick()
}

// Reset opens a fresh epoch locally: epoch := max(epoch+1, to) and the
// vector restarts from zero. The coordinator calls it, then announces the
// new epoch by stamping its next messages (Observe propagates it).
func (r *Resettable) Reset(to uint64) {
	if to <= r.epoch {
		to = r.epoch + 1
	}
	r.epoch = to
	r.vec = NewV(r.n)
}

// Corrupt arbitrarily overwrites epoch and vector (transient state
// corruption, for fault-injection tests).
func (r *Resettable) Corrupt(epoch uint64, vec V) {
	r.epoch = epoch
	r.vec = NewV(r.n)
	r.vec.Join(vec)
}

// Coordinator is the graybox reset wrapper: it watches one distinguished
// process's spec-level state (NeedsReset, Epoch) and decides when to open a
// new epoch. Like the TME wrapper it is implementation-blind — any
// Resettable-compatible clock gets the same treatment.
type Coordinator struct {
	// Resets counts epochs opened by this coordinator.
	Resets int
}

// Step inspects the coordinated clock and opens a new epoch when any
// component nears the bound. It returns true when a reset was performed;
// the caller is responsible for letting the new epoch reach other
// processes (normal message traffic suffices, since Observe adopts newer
// epochs).
func (c *Coordinator) Step(r *Resettable) bool {
	if !r.NeedsReset() {
		return false
	}
	r.Reset(r.Epoch() + 1)
	c.Resets++
	return true
}
