package vclock_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/vclock"
)

// ExampleResettable shows the bounded-space protocol: when a component
// nears the bound, the coordinator opens a new epoch, and other processes
// adopt it through normal message traffic.
func ExampleResettable() {
	alice := vclock.NewResettable(0, 2, 4)
	bob := vclock.NewResettable(1, 2, 4)
	var coord vclock.Coordinator

	for i := 0; i < 3; i++ {
		stamp := alice.Tick()
		bob.Observe(stamp)
		coord.Step(alice)
	}
	fmt.Println("alice epoch:", alice.Epoch(), "resets:", coord.Resets)
	// Bob adopts the new epoch from alice's next message.
	bob.Observe(alice.Tick())
	fmt.Println("bob epoch:  ", bob.Epoch())
	// Output:
	// alice epoch: 1 resets: 1
	// bob epoch:   1
}
