package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVBasics(t *testing.T) {
	v := NewV(3)
	v.Tick(1)
	v.Tick(1)
	v.Tick(2)
	if v.String() != "[0 2 1]" {
		t.Errorf("String = %q", v.String())
	}
	u := v.Copy()
	u.Tick(0)
	if v[0] != 0 {
		t.Error("Copy aliases storage")
	}
	if !v.Leq(u) || !v.Less(u) || u.Leq(v) {
		t.Error("order wrong after tick")
	}
	if v.Concurrent(u) {
		t.Error("ordered vectors reported concurrent")
	}
	if v.Max() != 2 {
		t.Errorf("Max = %d", v.Max())
	}
}

func TestVJoin(t *testing.T) {
	a := V{1, 5, 0}
	b := V{3, 2, 4}
	a.Join(b)
	want := V{3, 5, 4}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Join = %v, want %v", a, want)
		}
	}
}

func TestVConcurrent(t *testing.T) {
	a := V{1, 0}
	b := V{0, 1}
	if !a.Concurrent(b) {
		t.Error("independent ticks not concurrent")
	}
	if a.Less(a) {
		t.Error("Less not irreflexive")
	}
}

func TestVDifferentLengths(t *testing.T) {
	short := V{1}
	long := V{1, 2}
	if !short.Leq(long) || !short.Less(long) {
		t.Error("short vs long order wrong")
	}
	if long.Leq(short) {
		t.Error("long ≤ short with nonzero tail")
	}
	zeroTail := V{1, 0}
	if !zeroTail.Leq(short) == false && zeroTail.Less(short) {
		t.Error("zero tail handled wrong")
	}
}

// The fundamental vector-clock theorem, property-tested: over a random
// message-passing history, e happened-before f iff V(e) < V(f).
func TestCausalityCharacterization(t *testing.T) {
	const (
		nProcs  = 4
		nEvents = 120
	)
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		clocks := make([]V, nProcs)
		for i := range clocks {
			clocks[i] = NewV(nProcs)
		}
		type event struct {
			vec    V
			proc   int
			causes []int
		}
		var events []event
		lastAt := make([]int, nProcs)
		for i := range lastAt {
			lastAt[i] = -1
		}
		var inflight []int
		for e := 0; e < nEvents; e++ {
			p := rng.Intn(nProcs)
			var ev event
			ev.proc = p
			if lastAt[p] >= 0 {
				ev.causes = append(ev.causes, lastAt[p])
			}
			if len(inflight) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(inflight))
				sendIdx := inflight[k]
				inflight = append(inflight[:k], inflight[k+1:]...)
				ev.causes = append(ev.causes, sendIdx)
				clocks[p].Join(events[sendIdx].vec)
			}
			clocks[p].Tick(p)
			ev.vec = clocks[p].Copy()
			if rng.Intn(2) == 0 {
				inflight = append(inflight, len(events))
			}
			lastAt[p] = len(events)
			events = append(events, ev)
		}
		// hb via transitive closure of cause edges.
		hb := make([][]bool, len(events))
		for i := range hb {
			hb[i] = make([]bool, len(events))
		}
		for i, ev := range events {
			for _, c := range ev.causes {
				hb[c][i] = true
				for a := range events {
					if hb[a][c] {
						hb[a][i] = true
					}
				}
			}
		}
		for a := range events {
			for b := range events {
				if a == b {
					continue
				}
				got := events[a].vec.Less(events[b].vec)
				if got != hb[a][b] {
					t.Fatalf("trial %d: V(e%d)<V(e%d) = %v but hb = %v",
						trial, a, b, got, hb[a][b])
				}
			}
		}
	}
}

func TestStampOrder(t *testing.T) {
	older := Stamp{Epoch: 1, Vec: V{5, 5}}
	newer := Stamp{Epoch: 2, Vec: V{0, 1}}
	if !older.Before(newer) || newer.Before(older) {
		t.Error("cross-epoch order wrong")
	}
	a := Stamp{Epoch: 1, Vec: V{1, 0}}
	b := Stamp{Epoch: 1, Vec: V{0, 1}}
	if !a.Concurrent(b) {
		t.Error("same-epoch concurrent stamps not detected")
	}
}

func TestResettableBasics(t *testing.T) {
	r := NewResettable(0, 2, 10)
	if r.ID() != 0 || r.Epoch() != 0 {
		t.Error("header wrong")
	}
	s := r.Tick()
	if s.Epoch != 0 || s.Vec[0] != 1 {
		t.Errorf("tick stamp = %+v", s)
	}
	if r.NeedsReset() {
		t.Error("fresh clock needs reset")
	}
}

func TestResettableBoundClamped(t *testing.T) {
	r := NewResettable(0, 1, 0)
	if r.bound != 2 {
		t.Errorf("bound = %d", r.bound)
	}
}

func TestObserveEpochAdoption(t *testing.T) {
	r := NewResettable(1, 2, 100)
	r.Tick()
	r.Tick()
	// Newer epoch: adopt, vector restarts from the stamp.
	out := r.Observe(Stamp{Epoch: 5, Vec: V{3, 0}})
	if r.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", r.Epoch())
	}
	if out.Vec[0] != 3 || out.Vec[1] != 1 {
		t.Errorf("adopted vector = %v, want [3 1]", out.Vec)
	}
	// Older epoch: stale, discarded (only the local tick registers).
	before := r.Vec()
	r.Observe(Stamp{Epoch: 2, Vec: V{99, 99}})
	after := r.Vec()
	if after[0] != before[0] || after[1] != before[1]+1 {
		t.Errorf("stale stamp leaked: %v -> %v", before, after)
	}
}

func TestResetMonotone(t *testing.T) {
	r := NewResettable(0, 2, 10)
	r.Reset(7)
	if r.Epoch() != 7 {
		t.Errorf("epoch = %d", r.Epoch())
	}
	// Reset to a lower target still moves forward.
	r.Reset(3)
	if r.Epoch() != 8 {
		t.Errorf("epoch after low reset = %d, want 8", r.Epoch())
	}
	if r.Vec().Max() != 0 {
		t.Error("vector not zeroed by reset")
	}
}

func TestCoordinatorResetsNearBound(t *testing.T) {
	r := NewResettable(0, 2, 5)
	var c Coordinator
	for i := 0; i < 3; i++ {
		r.Tick()
		if c.Step(r) {
			t.Fatalf("reset fired early at tick %d (vec %v)", i+1, r.Vec())
		}
	}
	r.Tick() // component now 4 = bound-1
	if !c.Step(r) {
		t.Fatal("reset did not fire at the bound")
	}
	if c.Resets != 1 || r.Epoch() != 1 || r.Vec().Max() != 0 {
		t.Errorf("after reset: resets=%d epoch=%d vec=%v", c.Resets, r.Epoch(), r.Vec())
	}
}

// Bounded-space property: under any workload, with the coordinator driving
// process 0 and epochs propagating through normal traffic, no component
// ever exceeds the bound.
func TestBoundedSpaceProperty(t *testing.T) {
	f := func(seed int64, tape []byte) bool {
		const n, bound = 3, 8
		rng := rand.New(rand.NewSource(seed))
		clocks := make([]*Resettable, n)
		for i := range clocks {
			clocks[i] = NewResettable(i, n, bound)
		}
		var coord Coordinator
		var inflight []Stamp
		for _, b := range tape {
			p := int(b) % n
			switch (b / 3) % 2 {
			case 0:
				inflight = append(inflight, clocks[p].Tick())
			case 1:
				if len(inflight) > 0 {
					k := rng.Intn(len(inflight))
					s := inflight[k]
					inflight = append(inflight[:k], inflight[k+1:]...)
					clocks[p].Observe(s)
				}
			}
			coord.Step(clocks[0])
			// Other processes reset locally too when THEY hit the bound
			// before hearing of a new epoch (the local half of the RVC
			// protocol); epoch monotonicity keeps them consistent.
			for _, c := range clocks[1:] {
				if c.NeedsReset() {
					c.Reset(c.Epoch() + 1)
				}
			}
			for _, c := range clocks {
				if c.Vec().Max() >= bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Stabilization story: corrupt a clock's epoch absurdly high — the others
// adopt it through traffic and the system keeps one consistent epoch (stale
// states are out-ordered, not repaired, exactly the graybox recipe).
func TestEpochCorruptionConverges(t *testing.T) {
	const n = 3
	clocks := make([]*Resettable, n)
	for i := range clocks {
		clocks[i] = NewResettable(i, n, 1000)
	}
	clocks[1].Corrupt(999, V{5, 5, 5})
	// A round of all-pairs traffic.
	for round := 0; round < 2; round++ {
		for i := 0; i < n; i++ {
			s := clocks[i].Tick()
			for j := 0; j < n; j++ {
				if j != i {
					clocks[j].Observe(s)
				}
			}
		}
	}
	for i, c := range clocks {
		if c.Epoch() != 999 {
			t.Errorf("process %d epoch = %d, want 999 (adopted)", i, c.Epoch())
		}
	}
}
