package runtime

import "sync"

// mailbox is an unbounded FIFO queue with channel-based readiness
// signalling. The transport uses one per directed edge and one per process
// inbox; unboundedness means producers never block, so the mesh cannot
// backpressure-deadlock (an event loop blocked on a full channel while its
// own inbox fills).
type mailbox[T any] struct {
	mu     sync.Mutex
	items  []T           //gblint:guardedby mu
	signal chan struct{} // capacity 1: "items may be non-empty"
	closed bool          //gblint:guardedby mu
}

func newMailbox[T any]() *mailbox[T] {
	return &mailbox[T]{signal: make(chan struct{}, 1)}
}

// put enqueues v. It is a no-op after close.
func (m *mailbox[T]) put(v T) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.items = append(m.items, v)
	m.mu.Unlock()
	select {
	case m.signal <- struct{}{}:
	default:
	}
}

// tryGet dequeues the head without blocking.
func (m *mailbox[T]) tryGet() (v T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.items) == 0 {
		return v, false
	}
	v = m.items[0]
	copy(m.items, m.items[1:])
	m.items = m.items[:len(m.items)-1]
	return v, true
}

// ready returns a channel that receives whenever items may be available.
func (m *mailbox[T]) ready() <-chan struct{} { return m.signal }

// close marks the mailbox closed; subsequent puts are dropped.
func (m *mailbox[T]) close() {
	m.mu.Lock()
	m.closed = true
	m.items = nil
	m.mu.Unlock()
}

// len returns the current queue length.
func (m *mailbox[T]) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
