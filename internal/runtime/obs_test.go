package runtime

import (
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// An instrumented cluster publishes from event-loop and forwarder
// goroutines concurrently; under -race this doubles as the proof that the
// obs hot path is goroutine-safe end to end.
func TestClusterPublishesObs(t *testing.T) {
	o := obs.New(obs.Options{TraceCapacity: 1024})
	c, err := NewCluster(Config{
		N:        3,
		Seed:     11,
		NewNode:  func(id, n int) tme.Node { return ra.New(id, n) },
		LossRate: 0.2,
		DupRate:  0.2,
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.Func(wrapper.W)
		},
		WrapperTick: time.Millisecond,
		Level1:      wrapper.PhaseGuard{},
		Obs:         o,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	for i := 0; i < 3; i++ {
		c.Request(i)
	}
	served := map[int]bool{}
	deadline := time.Now().Add(20 * time.Second)
	for len(served) < 3 && time.Now().Before(deadline) {
		for _, e := range c.Entries() {
			if !served[e.ID] {
				served[e.ID] = true
				c.Release(e.ID)
			}
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if len(served) != 3 {
		t.Fatalf("served %v, want all of 0..2", served)
	}

	snap := o.Reg.Snapshot()
	if got, want := snap.Counter("runtime_entries_total"), int64(len(c.Entries())); got != want {
		t.Errorf("runtime_entries_total = %d, want %d", got, want)
	}
	if snap.Counter("runtime_msgs_sent_total") == 0 {
		t.Error("no sent messages recorded")
	}
	if snap.Counter("runtime_msgs_delivered_total") == 0 {
		t.Error("no delivered messages recorded")
	}
	if snap.Counter("wrapper_evals_total") == 0 {
		t.Error("no wrapper evaluations recorded")
	}
	if h, ok := snap.Histograms["runtime_transport_delay_us"]; !ok || h.Count == 0 {
		t.Error("transport delay histogram empty")
	}
	if o.Trace.Total() == 0 {
		t.Error("no trace events emitted")
	}
}

// A cluster without Obs runs every instrument call against nil receivers.
func TestClusterNilObsSafe(t *testing.T) {
	c, err := NewCluster(Config{
		N:       2,
		Seed:    1,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Request(0)
	deadline := time.Now().Add(5 * time.Second)
	for len(c.Entries()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if len(c.Entries()) == 0 {
		t.Fatal("no entry without obs")
	}
}
