// Package runtime executes a TME system on real goroutines and channels —
// the concurrent counterpart of internal/sim. Each process runs its own
// event-loop goroutine; each directed edge has a forwarder goroutine that
// imposes (seeded) random delay while preserving FIFO order; a lossy
// transport option injects message loss and duplication in flight.
//
// The simulator is the measurement substrate (deterministic virtual time);
// this package demonstrates the same wrapper recovering real concurrent
// executions, and backs the runnable examples.
package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// Config parameterizes a cluster.
type Config struct {
	// N is the number of processes (required, ≥ 1).
	N int
	// Seed drives delays and fault draws.
	Seed int64
	// NewNode constructs each process (required).
	NewNode func(id, n int) tme.Node
	// NewWrapper, when non-nil, attaches a level-2 wrapper per process,
	// driven every WrapperTick of wall-clock time.
	NewWrapper func(id int) wrapper.Level2
	// WrapperTick is the wrapper evaluation cadence. Default 2ms.
	WrapperTick time.Duration
	// Level1, when non-nil, is the level-1 wrapper run on a process after
	// every event at it (intra-process repair, §2.2).
	Level1 wrapper.Level1
	// MinDelay/MaxDelay bound per-message transport delay.
	// Defaults 100µs / 1ms.
	MinDelay, MaxDelay time.Duration
	// LossRate and DupRate are per-message fault probabilities in [0,1].
	LossRate, DupRate float64
	// Obs, when non-nil, receives runtime metrics and trace events. All
	// instruments are goroutine-safe; nil disables observability at
	// nil-method-call cost.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.WrapperTick <= 0 {
		c.WrapperTick = 2 * time.Millisecond
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 100 * time.Microsecond
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	return c
}

// Entry reports one CS entry observed by the cluster.
type Entry struct {
	// ID is the entering process; Seq numbers entries cluster-wide.
	ID, Seq int
	// At is the wall-clock entry time.
	At time.Time
}

// Cluster is a running TME system on goroutines. Construct with NewCluster,
// then Start; always Stop to reclaim every goroutine.
type Cluster struct {
	cfg   Config
	procs []*proc
	edges []*edge
	ins   rtInstruments

	mu      sync.Mutex
	rng     *rand.Rand
	entries []Entry
	onEntry func(Entry)

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// rtInstruments caches the cluster's obs handles; every field is nil when
// the cluster runs without observability (all publishes become no-ops).
// Counters and gauges are atomics and the trace ring is mutex-guarded, so
// publishing from event-loop and forwarder goroutines is race-free.
type rtInstruments struct {
	sent      *obs.Counter
	delivered *obs.Counter
	lost      *obs.Counter
	dup       *obs.Counter
	entries   *obs.Counter
	repairs   *obs.Counter
	delayUS   *obs.Histogram
	trace     *obs.Trace
	conv      *obs.Convergence
}

func newRTInstruments(o *obs.Obs) rtInstruments {
	if o == nil {
		return rtInstruments{}
	}
	r := o.Registry()
	return rtInstruments{
		sent:      r.Counter("runtime_msgs_sent_total", "messages routed onto edges"),
		delivered: r.Counter("runtime_msgs_delivered_total", "messages delivered to inboxes"),
		lost:      r.Counter("runtime_msgs_lost_total", "messages lost in transport"),
		dup:       r.Counter("runtime_msgs_dup_total", "messages duplicated in transport"),
		entries:   r.Counter("runtime_entries_total", "CS entries observed"),
		repairs:   r.Counter("runtime_level1_repairs_total", "level-1 wrapper repairs"),
		delayUS:   r.Histogram("runtime_transport_delay_us", "per-message transport delay (µs)", []int64{100, 250, 500, 1000, 2500, 5000, 10000}),
		trace:     o.Tracer(),
		conv:      o.Convergence(),
	}
}

// proc is one process: its node, guarded by mu, plus its inbox.
type proc struct {
	id    int
	mu    sync.Mutex
	node  tme.Node
	wrap  wrapper.Level2
	inbox *mailbox[tme.Message]
}

// edge is one directed transport link with FIFO-preserving delay.
type edge struct {
	src, dst int
	queue    *mailbox[tme.Message]
}

// NewCluster builds a cluster; it does not start any goroutine.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.N < 1 || cfg.NewNode == nil {
		return nil, fmt.Errorf("runtime: Config.N (%d) and NewNode are required", cfg.N)
	}
	c := &Cluster{
		cfg:  cfg.withDefaults(),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		ins:  newRTInstruments(cfg.Obs),
		stop: make(chan struct{}),
	}
	for i := 0; i < cfg.N; i++ {
		p := &proc{id: i, node: cfg.NewNode(i, cfg.N), inbox: newMailbox[tme.Message]()}
		if cfg.NewWrapper != nil {
			p.wrap = wrapper.InstrumentLevel2(cfg.Obs, i, cfg.NewWrapper(i))
		}
		c.procs = append(c.procs, p)
	}
	for s := 0; s < cfg.N; s++ {
		for d := 0; d < cfg.N; d++ {
			if s != d {
				c.edges = append(c.edges, &edge{src: s, dst: d, queue: newMailbox[tme.Message]()})
			}
		}
	}
	return c, nil
}

// OnEntry installs a callback invoked (from the entering process's event
// loop) at every CS entry. Install before Start.
func (c *Cluster) OnEntry(f func(Entry)) { c.onEntry = f }

// Start launches the event-loop and forwarder goroutines.
func (c *Cluster) Start() {
	for _, p := range c.procs {
		p := p
		c.wg.Add(1)
		//gblint:ignore determinism this package IS the real-concurrency substrate; determinism is the simulator's job
		go func() {
			defer c.wg.Done()
			c.eventLoop(p)
		}()
	}
	for _, e := range c.edges {
		e := e
		c.wg.Add(1)
		//gblint:ignore determinism one forwarder goroutine per edge is the package's execution model
		go func() {
			defer c.wg.Done()
			c.forward(e)
		}()
	}
}

// Stop terminates every goroutine and waits for them to exit.
func (c *Cluster) Stop() {
	c.once.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// eventLoop drives one process: deliver messages, run the wrapper on its
// tick, detect CS entries.
func (c *Cluster) eventLoop(p *proc) {
	var tick <-chan time.Time
	if p.wrap != nil {
		t := time.NewTicker(c.cfg.WrapperTick)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-c.stop:
			return
		case <-p.inbox.ready():
			for {
				m, ok := p.inbox.tryGet()
				if !ok {
					break
				}
				p.mu.Lock()
				out := p.node.Deliver(m)
				if c.cfg.Level1 != nil {
					if repaired, _ := c.cfg.Level1.CheckRepair(p.node); repaired {
						c.ins.repairs.Inc()
					}
				}
				entered, more := p.node.Step()
				p.mu.Unlock()
				c.ins.delivered.Inc()
				c.route(append(out, more...))
				if entered {
					c.recordEntry(p.id)
				}
			}
		case now := <-tick:
			p.mu.Lock()
			if c.cfg.Level1 != nil {
				if repaired, _ := c.cfg.Level1.CheckRepair(p.node); repaired {
					c.ins.repairs.Inc()
				}
			}
			msgs := p.wrap.Fire(now.UnixNano(), p.node)
			entered, more := p.node.Step()
			p.mu.Unlock()
			c.route(append(msgs, more...))
			if entered {
				c.recordEntry(p.id)
			}
		}
	}
}

// forward drains one edge serially — delay then deliver — so FIFO order is
// preserved per channel while delays remain random.
func (c *Cluster) forward(e *edge) {
	for {
		select {
		case <-c.stop:
			return
		case <-e.queue.ready():
			for {
				m, ok := e.queue.tryGet()
				if !ok {
					break
				}
				d, lost, dup := c.transportDraw()
				c.ins.delayUS.Observe(int64(d / time.Microsecond))
				select {
				case <-time.After(d):
				case <-c.stop:
					return
				}
				if lost {
					c.ins.lost.Inc()
					if c.ins.trace != nil {
						//gblint:ignore determinism trace timestamps under the goroutine runtime are wall-clock by definition
						c.ins.trace.Emit(obs.Event{Time: time.Now().UnixNano(), Kind: obs.EvDrop, A: e.src, B: e.dst})
					}
					continue
				}
				c.procs[e.dst].inbox.put(m)
				if dup {
					c.ins.dup.Inc()
					c.procs[e.dst].inbox.put(m)
				}
			}
		}
	}
}

// transportDraw samples delay and fault outcomes under the cluster lock
// (rand.Rand is not goroutine-safe).
func (c *Cluster) transportDraw() (delay time.Duration, lost, dup bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	span := int64(c.cfg.MaxDelay - c.cfg.MinDelay)
	delay = c.cfg.MinDelay
	if span > 0 {
		delay += time.Duration(c.rng.Int63n(span + 1))
	}
	lost = c.rng.Float64() < c.cfg.LossRate
	dup = c.rng.Float64() < c.cfg.DupRate
	return delay, lost, dup
}

// route dispatches messages onto their edges.
func (c *Cluster) route(msgs []tme.Message) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= c.cfg.N || m.To < 0 || m.To >= c.cfg.N || m.From == m.To {
			continue
		}
		c.edges[c.edgeIndex(m.From, m.To)].queue.put(m)
		c.ins.sent.Inc()
	}
}

// edgeIndex maps (src,dst) to the edges slice layout built in NewCluster.
func (c *Cluster) edgeIndex(src, dst int) int {
	idx := src * (c.cfg.N - 1)
	if dst > src {
		return idx + dst - 1
	}
	return idx + dst
}

func (c *Cluster) recordEntry(id int) {
	c.mu.Lock()
	e := Entry{ID: id, Seq: len(c.entries), At: time.Now()} //gblint:ignore determinism entry timestamps under the goroutine runtime are wall-clock by definition
	c.entries = append(c.entries, e)
	cb := c.onEntry
	c.mu.Unlock()
	c.ins.entries.Inc()
	c.ins.conv.RecordProgress(e.At.UnixNano())
	if c.ins.trace != nil {
		c.ins.trace.Emit(obs.Event{Time: e.At.UnixNano(), Kind: obs.EvProgress, A: id, B: -1, N: e.Seq, Detail: "cs-entry"})
	}
	if cb != nil {
		cb(e)
	}
}

// Entries returns a copy of the entries recorded so far.
func (c *Cluster) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// Request asks process id to request the CS (no-op unless thinking).
func (c *Cluster) Request(id int) {
	p := c.procs[id]
	p.mu.Lock()
	out := p.node.RequestCS()
	entered, more := p.node.Step()
	p.mu.Unlock()
	c.route(append(out, more...))
	if entered {
		c.recordEntry(id)
	}
}

// Release asks process id to release the CS (no-op unless eating).
func (c *Cluster) Release(id int) {
	p := c.procs[id]
	p.mu.Lock()
	out := p.node.ReleaseCS()
	p.mu.Unlock()
	c.route(out)
}

// Phase returns process id's current phase.
func (c *Cluster) Phase(id int) tme.Phase {
	p := c.procs[id]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node.Phase()
}

// Snapshot returns process id's spec-level state.
func (c *Cluster) Snapshot(id int) tme.SpecState {
	p := c.procs[id]
	p.mu.Lock()
	defer p.mu.Unlock()
	return tme.Snapshot(p.node)
}

// Corrupt applies a transient state corruption to process id (fault
// injection for demos and tests).
func (c *Cluster) Corrupt(id int, corr tme.Corruption) {
	p := c.procs[id]
	p.mu.Lock()
	defer p.mu.Unlock()
	if node, ok := p.node.(tme.Corruptible); ok {
		node.Corrupt(corr)
	}
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.cfg.N }
