// Package runtime executes a TME system on real goroutines — the
// concurrent counterpart of internal/sim. Each process runs its own
// event-loop goroutine; messages travel through a pluggable Transport. The
// default in-process transport gives each directed edge a forwarder
// goroutine that imposes (seeded) random delay while preserving FIFO
// order, with optional message loss and duplication in flight;
// internal/wire supplies a TCP transport with the same contract, so one
// event loop serves both single-process demos and real clusters.
//
// The simulator is the measurement substrate (deterministic virtual time);
// this package demonstrates the same wrapper recovering real concurrent
// executions, and backs the runnable examples.
package runtime

import (
	"fmt"
	"sync"
	"time"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// Config parameterizes a cluster.
type Config struct {
	// N is the number of processes (required, ≥ 1).
	N int
	// Shards is the number of independent protocol instances every process
	// participates in (default 1). Each shard runs its own node state and
	// wrapper per process; messages carry the shard in tme.Message.Resource
	// and are routed to the matching instance. Shard 0 with Shards == 1 is
	// the single-CS system of the paper, byte-identical on the wire.
	Shards int
	// Seed drives delays and fault draws.
	Seed int64
	// NewNode constructs each process (required).
	NewNode func(id, n int) tme.Node
	// NewWrapper, when non-nil, attaches a level-2 wrapper per process,
	// driven every WrapperTick of wall-clock time.
	NewWrapper func(id int) wrapper.Level2
	// WrapperTick is the wrapper evaluation cadence. Default 2ms.
	WrapperTick time.Duration
	// Level1, when non-nil, is the level-1 wrapper run on a process after
	// every event at it (intra-process repair, §2.2).
	Level1 wrapper.Level1
	// MinDelay/MaxDelay bound per-message transport delay.
	// Defaults 100µs / 1ms.
	MinDelay, MaxDelay time.Duration
	// LossRate and DupRate are per-message fault probabilities in [0,1].
	LossRate, DupRate float64
	// Obs, when non-nil, receives runtime metrics and trace events. All
	// instruments are goroutine-safe; nil disables observability at
	// nil-method-call cost.
	Obs *obs.Obs
	// Transport, when non-nil, carries inter-process messages instead of
	// the default in-process goroutine/mailbox mesh (which uses the
	// MinDelay/MaxDelay/LossRate/DupRate knobs above). internal/wire's TCP
	// transport satisfies this seam. The cluster owns the transport: Stop
	// closes it.
	Transport Transport
	// Local lists the process ids hosted by this cluster (event loop +
	// node state). Empty means all N — the single-process default. With a
	// subset, messages to remote ids go through Transport and calls
	// addressing remote ids are no-ops.
	Local []int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.WrapperTick <= 0 {
		c.WrapperTick = 2 * time.Millisecond
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 100 * time.Microsecond
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	return c
}

// Entry reports one CS entry observed by the cluster.
type Entry struct {
	// ID is the entering process; Seq numbers entries cluster-wide.
	ID, Seq int
	// Shard is the protocol instance entered (0 in unsharded clusters).
	Shard int
	// At is the wall-clock entry time.
	At time.Time
}

// Cluster is a running TME system on goroutines. Construct with NewCluster,
// then Start; always Stop to reclaim every goroutine.
type Cluster struct {
	cfg       Config
	procs     [][]*proc // indexed [shard][id]; nil for ids not in cfg.Local
	transport Transport
	ins       rtInstruments

	mu      sync.Mutex
	entries []Entry     //gblint:guardedby mu
	onEntry func(Entry) //gblint:guardedby mu

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// rtInstruments caches the cluster's obs handles; every field is nil when
// the cluster runs without observability (all publishes become no-ops).
// Counters and gauges are atomics and the trace ring is mutex-guarded, so
// publishing from event-loop and forwarder goroutines is race-free.
type rtInstruments struct {
	sent      *obs.Counter
	delivered *obs.Counter
	lost      *obs.Counter
	dup       *obs.Counter
	entries   *obs.Counter
	repairs   *obs.Counter
	delayUS   *obs.Histogram
	trace     *obs.Trace
	conv      *obs.Convergence
}

func newRTInstruments(o *obs.Obs) rtInstruments {
	if o == nil {
		return rtInstruments{}
	}
	r := o.Registry()
	return rtInstruments{
		sent:      r.Counter("runtime_msgs_sent_total", "messages routed onto edges"),
		delivered: r.Counter("runtime_msgs_delivered_total", "messages delivered to inboxes"),
		lost:      r.Counter("runtime_msgs_lost_total", "messages lost in transport"),
		dup:       r.Counter("runtime_msgs_dup_total", "messages duplicated in transport"),
		entries:   r.Counter("runtime_entries_total", "CS entries observed"),
		repairs:   r.Counter("runtime_level1_repairs_total", "level-1 wrapper repairs"),
		delayUS:   r.Histogram("runtime_transport_delay_us", "per-message transport delay (µs)", []int64{100, 250, 500, 1000, 2500, 5000, 10000}),
		trace:     o.Tracer(),
		conv:      o.Convergence(),
	}
}

// proc is one process: its node, guarded by mu, plus its inbox. wrap is
// set once in NewCluster before any goroutine exists and never reassigned,
// so it carries no guard annotation.
type proc struct {
	id    int
	shard int
	mu    sync.Mutex
	node  tme.Node //gblint:guardedby mu
	wrap  wrapper.Level2
	inbox *mailbox[tme.Message]
}

// NewCluster builds a cluster; it does not start any goroutine.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.N < 1 || cfg.NewNode == nil {
		return nil, fmt.Errorf("runtime: Config.N (%d) and NewNode are required", cfg.N)
	}
	c := &Cluster{
		cfg:  cfg.withDefaults(),
		ins:  newRTInstruments(cfg.Obs),
		stop: make(chan struct{}),
	}
	local := make([]bool, cfg.N)
	if len(cfg.Local) == 0 {
		for i := range local {
			local[i] = true
		}
	} else {
		for _, id := range cfg.Local {
			if id < 0 || id >= cfg.N {
				return nil, fmt.Errorf("runtime: Config.Local id %d out of range [0,%d)", id, cfg.N)
			}
			local[id] = true
		}
	}
	c.procs = make([][]*proc, c.cfg.Shards)
	for s := 0; s < c.cfg.Shards; s++ {
		c.procs[s] = make([]*proc, cfg.N)
		for i := 0; i < cfg.N; i++ {
			if !local[i] {
				continue
			}
			p := &proc{id: i, shard: s, node: cfg.NewNode(i, cfg.N), inbox: newMailbox[tme.Message]()}
			if cfg.NewWrapper != nil {
				// Instrumentation is per process id; shard instances of one
				// process share its wrapper gauges, which sum naturally.
				p.wrap = wrapper.InstrumentLevel2(cfg.Obs, i, cfg.NewWrapper(i))
			}
			c.procs[s][i] = p
		}
	}
	c.transport = cfg.Transport
	if c.transport == nil {
		c.transport = newChanTransport(c.cfg, &c.ins)
	}
	return c, nil
}

// OnEntry installs a callback invoked (from the entering process's event
// loop) at every CS entry. Install before Start; installing later is safe
// but entries already recorded are not replayed.
func (c *Cluster) OnEntry(f func(Entry)) {
	c.mu.Lock()
	c.onEntry = f
	c.mu.Unlock()
}

// Start launches the transport and the event-loop goroutines.
func (c *Cluster) Start() {
	c.transport.Start(c.deliver)
	for _, shard := range c.procs {
		for _, p := range shard {
			if p == nil {
				continue
			}
			p := p
			c.wg.Add(1)
			//gblint:ignore determinism this package IS the real-concurrency substrate; determinism is the simulator's job
			go func() {
				defer c.wg.Done()
				c.eventLoop(p)
			}()
		}
	}
}

// Stop terminates every goroutine (event loops, then the transport's) and
// waits for them to exit.
func (c *Cluster) Stop() {
	c.once.Do(func() {
		close(c.stop)
		c.wg.Wait()
		_ = c.transport.Close()
	})
	c.wg.Wait()
}

// deliver is the transport's callback: enqueue m for local process dst on
// the shard instance its Resource names. Messages to remote/out-of-range
// ids are dropped (the transport on the hosting machine delivers those);
// so are messages whose resource id no local shard runs — a forged or
// corrupted shard id is semantic garbage, dropped like any other.
func (c *Cluster) deliver(dst int, m tme.Message) {
	if dst < 0 || dst >= c.cfg.N || m.Resource < 0 || m.Resource >= c.cfg.Shards {
		return
	}
	p := c.procs[m.Resource][dst]
	if p == nil {
		return
	}
	p.inbox.put(m)
}

// eventLoop drives one process: deliver messages, run the wrapper on its
// tick, detect CS entries.
func (c *Cluster) eventLoop(p *proc) {
	var tick <-chan time.Time
	if p.wrap != nil {
		t := time.NewTicker(c.cfg.WrapperTick)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-c.stop:
			return
		case <-p.inbox.ready():
			for {
				m, ok := p.inbox.tryGet()
				if !ok {
					break
				}
				p.mu.Lock()
				out := p.node.Deliver(m)
				if c.cfg.Level1 != nil {
					if repaired, _ := c.cfg.Level1.CheckRepair(p.node); repaired {
						c.ins.repairs.Inc()
					}
				}
				entered, more := p.node.Step()
				p.mu.Unlock()
				c.ins.delivered.Inc()
				c.route(p.shard, append(out, more...))
				if entered {
					c.recordEntry(p.shard, p.id)
				}
			}
		case now := <-tick:
			p.mu.Lock()
			if c.cfg.Level1 != nil {
				if repaired, _ := c.cfg.Level1.CheckRepair(p.node); repaired {
					c.ins.repairs.Inc()
				}
			}
			msgs := p.wrap.Fire(now.UnixNano(), p.node)
			entered, more := p.node.Step()
			p.mu.Unlock()
			c.route(p.shard, append(msgs, more...))
			if entered {
				c.recordEntry(p.shard, p.id)
			}
		}
	}
}

// route dispatches messages onto the transport, stamping the originating
// shard into Resource (protocol nodes are shard-blind; the cluster owns
// the shard dimension).
func (c *Cluster) route(shard int, msgs []tme.Message) {
	for _, m := range msgs {
		if m.From < 0 || m.From >= c.cfg.N || m.To < 0 || m.To >= c.cfg.N || m.From == m.To {
			continue
		}
		m.Resource = shard
		c.transport.Send(m)
		c.ins.sent.Inc()
	}
}

func (c *Cluster) recordEntry(shard, id int) {
	c.mu.Lock()
	e := Entry{ID: id, Seq: len(c.entries), Shard: shard, At: time.Now()} //gblint:ignore determinism entry timestamps under the goroutine runtime are wall-clock by definition
	c.entries = append(c.entries, e)
	cb := c.onEntry
	c.mu.Unlock()
	c.ins.entries.Inc()
	c.ins.conv.RecordProgress(e.At.UnixNano())
	if c.ins.trace != nil {
		c.ins.trace.Emit(obs.Event{Time: e.At.UnixNano(), Kind: obs.EvProgress, A: id, B: shard, N: e.Seq, Detail: "cs-entry"})
	}
	if cb != nil {
		cb(e)
	}
}

// Entries returns a copy of the entries recorded so far.
func (c *Cluster) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

// procAt resolves a (shard, id) pair to its local proc, nil when either
// index is out of range or the id is not hosted locally.
func (c *Cluster) procAt(shard, id int) *proc {
	if shard < 0 || shard >= c.cfg.Shards || id < 0 || id >= c.cfg.N {
		return nil
	}
	return c.procs[shard][id]
}

// Request asks process id to request the CS on shard 0 (no-op unless
// thinking, or when id is not hosted locally).
func (c *Cluster) Request(id int) { c.RequestShard(0, id) }

// RequestShard asks process id to request the CS of the given shard.
func (c *Cluster) RequestShard(shard, id int) {
	p := c.procAt(shard, id)
	if p == nil {
		return
	}
	p.mu.Lock()
	out := p.node.RequestCS()
	entered, more := p.node.Step()
	p.mu.Unlock()
	c.route(shard, append(out, more...))
	if entered {
		c.recordEntry(shard, id)
	}
}

// Release asks process id to release the CS on shard 0 (no-op unless
// eating, or when id is not hosted locally).
func (c *Cluster) Release(id int) { c.ReleaseShard(0, id) }

// ReleaseShard asks process id to release the CS of the given shard.
func (c *Cluster) ReleaseShard(shard, id int) {
	p := c.procAt(shard, id)
	if p == nil {
		return
	}
	p.mu.Lock()
	out := p.node.ReleaseCS()
	p.mu.Unlock()
	c.route(shard, out)
}

// Phase returns process id's current phase on shard 0 (the zero Phase when
// id is not hosted locally).
func (c *Cluster) Phase(id int) tme.Phase { return c.PhaseShard(0, id) }

// PhaseShard returns process id's current phase on the given shard.
func (c *Cluster) PhaseShard(shard, id int) tme.Phase {
	p := c.procAt(shard, id)
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node.Phase()
}

// Snapshot returns process id's spec-level state on shard 0 (zero value
// when id is not hosted locally).
func (c *Cluster) Snapshot(id int) tme.SpecState { return c.SnapshotShard(0, id) }

// SnapshotShard returns process id's spec-level state on the given shard.
func (c *Cluster) SnapshotShard(shard, id int) tme.SpecState {
	p := c.procAt(shard, id)
	if p == nil {
		return tme.SpecState{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return tme.Snapshot(p.node)
}

// Corrupt applies a transient state corruption to process id on shard 0
// (fault injection for demos and tests).
func (c *Cluster) Corrupt(id int, corr tme.Corruption) { c.CorruptShard(0, id, corr) }

// CorruptShard applies a transient state corruption to process id on the
// given shard.
func (c *Cluster) CorruptShard(shard, id int, corr tme.Corruption) {
	p := c.procAt(shard, id)
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if node, ok := p.node.(tme.Corruptible); ok {
		node.Corrupt(corr)
	}
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.cfg.N }

// Shards returns the number of protocol instances per process.
func (c *Cluster) Shards() int { return c.cfg.Shards }
