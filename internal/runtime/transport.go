package runtime

import (
	"math/rand"
	"sync"
	"time"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Transport is the seam between the node event loops and the medium that
// carries their messages. The in-process implementation (chanTransport,
// the default) forwards over goroutines and mailboxes with seeded random
// delay/loss/duplication; internal/wire provides a TCP implementation with
// the same contract, so the event loop is transport-agnostic.
//
// The contract: Send never blocks indefinitely and preserves FIFO order
// per directed (From,To) edge; deliver is invoked from transport-owned
// goroutines and must be goroutine-safe; after Close returns no further
// deliver calls are made. Send after Close is a silent no-op.
type Transport interface {
	// Start installs the delivery callback and launches the transport's
	// goroutines. Called exactly once, before any Send.
	Start(deliver func(dst int, m tme.Message))
	// Send hands one message to the transport. The caller has already
	// validated From/To against the cluster size.
	Send(m tme.Message)
	// Close terminates the transport's goroutines and waits for them.
	Close() error
}

// edge is one directed in-process link with FIFO-preserving delay.
type edge struct {
	src, dst int
	queue    *mailbox[tme.Message]
}

// chanTransport is the default in-process transport: one forwarder
// goroutine per directed edge, imposing (seeded) random delay while
// preserving FIFO order, with probabilistic loss and duplication.
type chanTransport struct {
	n        int
	min, max time.Duration
	loss     float64
	dupRate  float64
	ins      *rtInstruments

	mu  sync.Mutex
	rng *rand.Rand //gblint:guardedby mu

	edges   []*edge
	deliver func(dst int, m tme.Message)

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// newChanTransport builds the in-process transport from the cluster's
// delay/fault knobs. ins points at the cluster's instrument bundle (fields
// nil without observability; publishing is then a no-op).
func newChanTransport(cfg Config, ins *rtInstruments) *chanTransport {
	t := &chanTransport{
		n:       cfg.N,
		min:     cfg.MinDelay,
		max:     cfg.MaxDelay,
		loss:    cfg.LossRate,
		dupRate: cfg.DupRate,
		ins:     ins,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stop:    make(chan struct{}),
	}
	for s := 0; s < cfg.N; s++ {
		for d := 0; d < cfg.N; d++ {
			if s != d {
				t.edges = append(t.edges, &edge{src: s, dst: d, queue: newMailbox[tme.Message]()})
			}
		}
	}
	return t
}

// Start launches one forwarder goroutine per directed edge.
func (t *chanTransport) Start(deliver func(dst int, m tme.Message)) {
	t.deliver = deliver
	for _, e := range t.edges {
		e := e
		t.wg.Add(1)
		//gblint:ignore determinism one forwarder goroutine per edge is the package's execution model
		go func() {
			defer t.wg.Done()
			t.forward(e)
		}()
	}
}

// Send enqueues m on its edge. From/To were validated by the caller.
func (t *chanTransport) Send(m tme.Message) {
	t.edges[t.edgeIndex(m.From, m.To)].queue.put(m)
}

// Close terminates every forwarder and waits for them to exit.
func (t *chanTransport) Close() error {
	t.once.Do(func() { close(t.stop) })
	t.wg.Wait()
	return nil
}

// forward drains one edge serially — delay then deliver — so FIFO order is
// preserved per channel while delays remain random.
func (t *chanTransport) forward(e *edge) {
	for {
		select {
		case <-t.stop:
			return
		case <-e.queue.ready():
			for {
				m, ok := e.queue.tryGet()
				if !ok {
					break
				}
				d, lost, dup := t.draw()
				t.ins.delayUS.Observe(int64(d / time.Microsecond))
				select {
				case <-time.After(d):
				case <-t.stop:
					return
				}
				if lost {
					t.ins.lost.Inc()
					if t.ins.trace != nil {
						//gblint:ignore determinism trace timestamps under the goroutine runtime are wall-clock by definition
						t.ins.trace.Emit(obs.Event{Time: time.Now().UnixNano(), Kind: obs.EvDrop, A: e.src, B: e.dst})
					}
					continue
				}
				t.deliver(e.dst, m)
				if dup {
					t.ins.dup.Inc()
					t.deliver(e.dst, m)
				}
			}
		}
	}
}

// draw samples delay and fault outcomes under the transport lock
// (rand.Rand is not goroutine-safe).
func (t *chanTransport) draw() (delay time.Duration, lost, dup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	span := int64(t.max - t.min)
	delay = t.min
	if span > 0 {
		delay += time.Duration(t.rng.Int63n(span + 1))
	}
	lost = t.rng.Float64() < t.loss
	dup = t.rng.Float64() < t.dupRate
	return delay, lost, dup
}

// edgeIndex maps (src,dst) to the edges slice layout built in
// newChanTransport.
func (t *chanTransport) edgeIndex(src, dst int) int {
	idx := src * (t.n - 1)
	if dst > src {
		return idx + dst - 1
	}
	return idx + dst
}
