package runtime

import (
	"sync"
	"testing"
	"time"
)

// A put after close must be dropped, not resurrect the queue.
func TestMailboxPutAfterClose(t *testing.T) {
	m := newMailbox[int]()
	m.put(1)
	m.close()
	m.put(2)
	if m.len() != 0 {
		t.Errorf("len after close = %d, want 0", m.len())
	}
	if _, ok := m.tryGet(); ok {
		t.Error("tryGet returned an item after close")
	}
	m.close() // closing twice is harmless
}

// Concurrent producers and a draining consumer must neither lose nor
// duplicate items (run under -race via `make test-race`).
func TestMailboxConcurrentPutTryGet(t *testing.T) {
	const producers, perProducer = 8, 500
	m := newMailbox[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.put(p*perProducer + i)
			}
		}()
	}

	seen := make(map[int]bool, producers*perProducer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		deadline := time.After(5 * time.Second)
		for len(seen) < producers*perProducer {
			select {
			case <-m.ready():
			case <-deadline:
				return
			}
			for {
				v, ok := m.tryGet()
				if !ok {
					break
				}
				if seen[v] {
					t.Errorf("item %d delivered twice", v)
				}
				seen[v] = true
			}
		}
	}()
	wg.Wait()
	<-done
	if len(seen) != producers*perProducer {
		t.Errorf("delivered %d items, want %d", len(seen), producers*perProducer)
	}
}

// The signal channel has capacity 1: many puts may coalesce into one
// wakeup, so a consumer must drain the queue fully per signal. A consumer
// that takes only one item per signal would starve — this test pins the
// invariant that the queue still holds the rest (regression guard for the
// drain loops in eventLoop/forward).
func TestMailboxSignalCoalescing(t *testing.T) {
	m := newMailbox[int]()
	for i := 0; i < 100; i++ {
		m.put(i)
	}
	// All 100 puts coalesced into at most one pending signal.
	select {
	case <-m.ready():
	default:
		t.Fatal("no signal pending after puts")
	}
	select {
	case <-m.ready():
		t.Fatal("second signal pending: signals are not coalescing")
	default:
	}
	// Everything must be drainable without further signals.
	for i := 0; i < 100; i++ {
		v, ok := m.tryGet()
		if !ok || v != i {
			t.Fatalf("drain item %d: got %d ok=%v", i, v, ok)
		}
	}
	if _, ok := m.tryGet(); ok {
		t.Error("queue not empty after drain")
	}
	// A put after the drain must raise a fresh signal (no lost wakeups).
	m.put(7)
	select {
	case <-m.ready():
	case <-time.After(time.Second):
		t.Fatal("signal lost after drain")
	}
}
