package runtime

import (
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/lamport"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox[int]()
	for i := 0; i < 100; i++ {
		m.put(i)
	}
	if m.len() != 100 {
		t.Fatalf("len = %d", m.len())
	}
	for i := 0; i < 100; i++ {
		v, ok := m.tryGet()
		if !ok || v != i {
			t.Fatalf("tryGet #%d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := m.tryGet(); ok {
		t.Error("tryGet on empty mailbox succeeded")
	}
}

func TestMailboxSignal(t *testing.T) {
	m := newMailbox[int]()
	select {
	case <-m.ready():
		t.Fatal("ready before put")
	default:
	}
	m.put(1)
	select {
	case <-m.ready():
	case <-time.After(time.Second):
		t.Fatal("no readiness signal after put")
	}
}

func TestMailboxClose(t *testing.T) {
	m := newMailbox[int]()
	m.put(1)
	m.close()
	if _, ok := m.tryGet(); ok {
		t.Error("items survive close")
	}
	m.put(2)
	if m.len() != 0 {
		t.Error("put after close enqueued")
	}
}

func TestNewClusterValidates(t *testing.T) {
	if _, err := NewCluster(Config{N: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

func TestClusterSoloRound(t *testing.T) {
	c, err := NewCluster(Config{
		N:       3,
		Seed:    1,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	c.Request(0)
	if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Eating }) {
		t.Fatal("node 0 never entered")
	}
	if got := c.Entries(); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("entries = %v", got)
	}
	c.Release(0)
	if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Thinking }) {
		t.Fatal("node 0 never released")
	}
}

func TestClusterMutualExclusionUnderContention(t *testing.T) {
	const n = 4
	c, err := NewCluster(Config{
		N:       n,
		Seed:    2,
		NewNode: func(id, nn int) tme.Node { return lamport.New(id, nn) },
	})
	if err != nil {
		t.Fatal(err)
	}
	entryCh := make(chan Entry, 64)
	c.OnEntry(func(e Entry) { entryCh <- e })
	c.Start()
	defer c.Stop()

	const rounds = 3
	for round := 0; round < rounds; round++ {
		for i := 0; i < n; i++ {
			c.Request(i)
		}
		for i := 0; i < n; i++ {
			select {
			case e := <-entryCh:
				// Exactly one eater at a time: the entrant must be the
				// only eating process right now.
				eating := 0
				for j := 0; j < n; j++ {
					if c.Phase(j) == tme.Eating {
						eating++
					}
				}
				if eating > 1 {
					t.Fatalf("round %d: %d simultaneous eaters", round, eating)
				}
				c.Release(e.ID)
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d: timed out waiting for entry %d", round, i)
			}
		}
	}
	if got := len(c.Entries()); got != rounds*n {
		t.Errorf("total entries = %d, want %d", got, rounds*n)
	}
}

// The wrapper recovers a real concurrent cluster from heavy message loss —
// Theorem 8 on goroutines instead of virtual time.
func TestClusterWrapperRecoversFromLoss(t *testing.T) {
	c, err := NewCluster(Config{
		N:        3,
		Seed:     3,
		NewNode:  func(id, n int) tme.Node { return ra.New(id, n) },
		LossRate: 0.4,
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.Func(wrapper.W) // eager: every tick
		},
		WrapperTick: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for i := 0; i < 3; i++ {
		c.Request(i)
	}
	// All three must eventually eat despite 40% loss.
	served := map[int]bool{}
	deadline := time.Now().Add(20 * time.Second)
	for len(served) < 3 && time.Now().Before(deadline) {
		for _, e := range c.Entries() {
			if !served[e.ID] {
				served[e.ID] = true
				c.Release(e.ID)
			}
		}
		time.Sleep(time.Millisecond)
	}
	if len(served) != 3 {
		t.Fatalf("served %v, want all of 0..2 (starvation under loss)", served)
	}
}

func TestClusterDuplicationTolerated(t *testing.T) {
	c, err := NewCluster(Config{
		N:       2,
		Seed:    4,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
		DupRate: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	for round := 0; round < 5; round++ {
		c.Request(0)
		if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Eating }) {
			t.Fatalf("round %d: node 0 never entered", round)
		}
		c.Release(0)
		if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Thinking }) {
			t.Fatalf("round %d: node 0 never released", round)
		}
	}
}

func TestClusterCorruptAndSnapshot(t *testing.T) {
	c, err := NewCluster(Config{
		N:       2,
		Seed:    5,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	c.Corrupt(0, tme.Corruption{Phase: tme.Hungry})
	snap := c.Snapshot(0)
	if snap.Phase != tme.Hungry {
		t.Errorf("snapshot phase = %v, want hungry", snap.Phase)
	}
	if c.N() != 2 {
		t.Errorf("N = %d", c.N())
	}
}

func TestStopIsIdempotentAndJoinsGoroutines(t *testing.T) {
	c, err := NewCluster(Config{
		N:       3,
		Seed:    6,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.NewTimed(0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Request(0)
	time.Sleep(10 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Stop()
		c.Stop() // second call must not panic or hang
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not join all goroutines")
	}
}

// A level-1 wrapper repairs an invalid phase on the live cluster while the
// level-2 wrapper keeps inter-process state consistent.
func TestClusterLevel1Repair(t *testing.T) {
	c, err := NewCluster(Config{
		N:       2,
		Seed:    8,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
		Level1:  wrapper.PhaseGuard{},
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.Func(wrapper.W)
		},
		WrapperTick: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	c.Corrupt(0, tme.Corruption{Phase: tme.Phase(9)})
	if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0).Valid() }) {
		t.Fatal("PhaseGuard never repaired the phase")
	}
	// The repaired process can then be served normally.
	c.Request(0)
	if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Eating }) {
		t.Fatal("repaired process never entered the CS")
	}
}

func TestNewTimedClampsNegativeDelta(t *testing.T) {
	w := wrapper.NewTimed(-7)
	if w.Delta != 0 {
		t.Errorf("Delta = %d, want 0", w.Delta)
	}
}

// Soak: a lossy, duplicating cluster with wrapper and level-1 guard under
// repeated corruption keeps serving requests. Guarded by -short.
func TestClusterSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n = 4
	c, err := NewCluster(Config{
		N:        n,
		Seed:     99,
		NewNode:  func(id, nn int) tme.Node { return ra.New(id, nn) },
		LossRate: 0.2,
		DupRate:  0.1,
		Level1:   wrapper.PhaseGuard{},
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.Func(wrapper.W)
		},
		WrapperTick: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	served := 0
	deadline := time.Now().Add(20 * time.Second)
	round := 0
	for served < 12 && time.Now().Before(deadline) {
		round++
		for i := 0; i < n; i++ {
			c.Request(i)
		}
		if round%2 == 0 {
			// Periodic transient corruption.
			c.Corrupt(round%n, tme.Corruption{Phase: tme.Thinking})
		}
		start := len(c.Entries())
		for time.Now().Before(deadline) {
			entries := c.Entries()
			if len(entries) > start {
				for _, e := range entries[start:] {
					c.Release(e.ID)
					served++
				}
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if served < 12 {
		t.Fatalf("only %d entries served under soak", served)
	}
}

func TestEdgeIndexCoversAllPairs(t *testing.T) {
	c, err := NewCluster(Config{
		N:       5,
		Seed:    7,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := c.transport.(*chanTransport)
	if !ok {
		t.Fatalf("default transport is %T, want *chanTransport", c.transport)
	}
	seen := map[int]bool{}
	for s := 0; s < 5; s++ {
		for d := 0; d < 5; d++ {
			if s == d {
				continue
			}
			idx := tr.edgeIndex(s, d)
			if idx < 0 || idx >= len(tr.edges) {
				t.Fatalf("edgeIndex(%d,%d) = %d out of range", s, d, idx)
			}
			e := tr.edges[idx]
			if e.src != s || e.dst != d {
				t.Fatalf("edgeIndex(%d,%d) → edge (%d,%d)", s, d, e.src, e.dst)
			}
			if seen[idx] {
				t.Fatalf("edgeIndex collision at %d", idx)
			}
			seen[idx] = true
		}
	}
}

// TestOnEntryInstallDuringRun is the regression test for the unlocked
// onEntry write: OnEntry used to assign the field without taking c.mu,
// racing with recordEntry's read from the event-loop goroutines. The
// assertion is the race detector's — installing callbacks while entries
// are being recorded must be clean under -race.
func TestOnEntryInstallDuringRun(t *testing.T) {
	c, err := NewCluster(Config{
		N:       2,
		Seed:    11,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	installed := make(chan struct{})
	go func() {
		defer close(installed)
		for i := 0; i < 100; i++ {
			c.OnEntry(func(Entry) {})
		}
	}()
	for round := 0; round < 5; round++ {
		c.Request(0)
		if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Eating }) {
			t.Fatal("node 0 never entered")
		}
		c.Release(0)
		if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Thinking }) {
			t.Fatal("node 0 never released")
		}
	}
	<-installed
	if got := len(c.Entries()); got != 5 {
		t.Fatalf("entries = %d, want 5", got)
	}
}

// Two shards are two independent protocol instances: the same process can
// eat on both simultaneously, entries carry the shard id, and legacy
// (unsharded) calls address shard 0.
func TestClusterShardsAreIndependent(t *testing.T) {
	c, err := NewCluster(Config{
		N:       3,
		Shards:  2,
		Seed:    12,
		NewNode: func(id, n int) tme.Node { return ra.New(id, n) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	c.RequestShard(0, 0)
	c.RequestShard(1, 0)
	ok := waitFor(t, 5*time.Second, func() bool {
		return c.PhaseShard(0, 0) == tme.Eating && c.PhaseShard(1, 0) == tme.Eating
	})
	if !ok {
		t.Fatalf("node 0 phases = %v/%v, want Eating on both shards",
			c.PhaseShard(0, 0), c.PhaseShard(1, 0))
	}
	// Contention is per shard: node 1 can eat on shard 1 only after node 0
	// releases there, independent of shard 0's holder.
	c.RequestShard(1, 1)
	c.ReleaseShard(1, 0)
	if !waitFor(t, 5*time.Second, func() bool { return c.PhaseShard(1, 1) == tme.Eating }) {
		t.Fatal("node 1 never entered shard 1 after the release")
	}
	if got := c.PhaseShard(0, 0); got != tme.Eating {
		t.Fatalf("shard 0 holder disturbed: phase = %v", got)
	}
	c.Release(0) // legacy call addresses shard 0
	if !waitFor(t, 5*time.Second, func() bool { return c.Phase(0) == tme.Thinking }) {
		t.Fatal("node 0 never released shard 0 via the legacy call")
	}
	c.ReleaseShard(1, 1)

	byShard := map[int]int{}
	for _, e := range c.Entries() {
		byShard[e.Shard]++
	}
	if byShard[0] != 1 || byShard[1] != 2 {
		t.Fatalf("entries per shard = %v, want map[0:1 1:2]", byShard)
	}
}
