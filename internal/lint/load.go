package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	// Path is the import path.
	Path string
	// Fset positions every file (shared across the run).
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types and Info hold the type-checker's results. Type-checking is
	// best-effort: when an import cannot be resolved the maps are still
	// populated for everything that resolved, and passes degrade to
	// their syntactic subset. Info maps are always non-nil.
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checker complaints, informational only.
	TypeErrors []error
}

// LoadDir parses and type-checks the non-test .go files of one directory
// as the package importPath. exports maps import paths to export-data
// files (see Exports); imports without an entry leave partial type info.
func LoadDir(fset *token.FileSet, dir, importPath string, exports map[string]string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	return loadFiles(fset, importPath, names, exports)
}

func loadFiles(fset *token.FileSet, importPath string, fileNames []string, exports map[string]string) (*Package, error) {
	pkg := &Package{Path: importPath, Fset: fset}
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("no Go files for %s", importPath)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: newExportImporter(fset, exports),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the (possibly incomplete) package even on error; the
	// errors are already collected above.
	pkg.Types, _ = conf.Check(importPath, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// exportImporter resolves imports from compiler export data located via a
// path -> file map (produced by `go list -export`). Missing entries error,
// which the type-checker surfaces as a collected (non-fatal) problem.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	imp := &exportImporter{exports: exports}
	imp.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := imp.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return imp
}

func (imp *exportImporter) Import(path string) (*types.Package, error) {
	if _, ok := imp.exports[path]; !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return imp.gc.Import(path)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports builds the export-data map for the given packages and their
// whole dependency closure by shelling out to `go list -export`. The go
// tool compiles (from its build cache) whatever is stale, so the map is
// complete for any package that builds.
func Exports(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Run lints the packages matched by patterns (relative to dir) with cfg
// and returns the findings. It walks packages via `go list -json`,
// type-checks against `go list -export` export data, and applies
// //gblint:ignore suppressions.
func Run(dir string, patterns []string, cfg *Config) ([]Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	// Export data for type-checking is best-effort: a tree that does not
	// fully compile still gets the syntactic passes.
	exports, expErr := Exports(dir, patterns...)
	fset := token.NewFileSet()
	runner := NewRunner(cfg, fset)
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, 0, len(t.GoFiles))
		for _, g := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, g))
		}
		pkg, err := loadFiles(fset, t.ImportPath, files, exports)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", t.ImportPath, err)
		}
		runner.Lint(pkg)
	}
	diags := runner.Finish()
	if len(diags) == 0 && expErr != nil {
		// Surface the compile failure rather than claiming a clean tree.
		return nil, expErr
	}
	return diags, nil
}
