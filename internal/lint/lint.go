// Package lint is gblint's analysis engine: a stdlib-only static analyzer
// (go/ast, go/parser, go/types) that makes the repo's graybox and
// determinism conventions hold by construction instead of by code review.
// Seven passes run over every package:
//
//   - layering: an import-DAG check encoding the graybox rule — wrappers
//     and specs are designed from local everywhere specifications, never
//     from protocol internals, so internal/wrapper and internal/(l)spec
//     must not import the protocol implementations, protocols must not
//     import the wrapper or simulator layers, and internal/obs stays a
//     leaf. The rules live in a declarative table (Config.Layering).
//
//   - determinism: in the simulator, harness, and protocol packages —
//     whose output must be a pure function of configuration and seed —
//     flags wall-clock reads (time.Now), the global math/rand source,
//     map iteration that feeds ordered output, and goroutine spawns
//     outside the sanctioned ParMap.
//
//   - hotpath: inside functions marked //gblint:hotpath, flags closure
//     literals, fmt formatting calls, and interface-boxing conversions —
//     the allocation sources the PR 2 benchmarks eliminated.
//
//   - obs: observability discipline — instrument types whose methods
//     promise nil-receiver no-op behavior must guard every exported
//     method, and every metric name is registered at exactly one site.
//
//   - guardedby: concurrency discipline — struct fields annotated
//     //gblint:guardedby <mu> may only be touched while that sibling
//     mutex is held (lock/unlock flow tracked lexically per function
//     body), and fields with atomic.* types or fields reached through
//     sync/atomic calls must never also be accessed plainly outside
//     their constructor (the mixed-access bug class).
//
//   - exhaustive: switches dispatching over a declared kind set (a const
//     block marked //gblint:kindset <name>) must cover every member or
//     carry a default that fails loudly, so a newly added kind can never
//     silently fall through.
//
//   - spawn: every `go` statement in Config.SpawnScope must be tied to a
//     visible stop path (WaitGroup Add before the spawn, or a stop/done
//     channel or ctx.Done() reachable from the spawned body) or carry a
//     reasoned //gblint:spawn directive — goroutine-leak hygiene.
//
// Findings are suppressed line-by-line with //gblint:ignore <passes>; see
// the directive helpers below for the exact grammar.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Pass names, used in -pass selections, want comments, and ignore
// directives.
const (
	PassLayering    = "layering"
	PassDeterminism = "determinism"
	PassHotpath     = "hotpath"
	PassObs         = "obs"
	PassGuardedBy   = "guardedby"
	PassExhaustive  = "exhaustive"
	PassSpawn       = "spawn"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Pos  token.Position
	Pass string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Msg)
}

// HotRequiredRule pins the //gblint:hotpath marker onto the functions of
// the packages matching Scope: each entry of Funcs ("Name" or
// "Type.Method") must exist there and be marked.
type HotRequiredRule struct {
	Scope  string
	Funcs  []string
	Reason string
}

// LayerRule constrains the imports of the packages matching Scope.
// Patterns match an import path exactly or as a path-boundary suffix, so
// "internal/sim" matches "example.com/mod/internal/sim"; a trailing "/..."
// matches the whole subtree. The special deny pattern DenyModule rejects
// every in-module import, expressing "this package is a leaf".
type LayerRule struct {
	Scope  string
	Deny   []string
	Reason string
}

// DenyModule, as a LayerRule deny pattern, matches every import inside
// Config.Module.
const DenyModule = "MODULE"

// Config is the declarative rule table the passes interpret. New packages
// slot into the architecture by editing DefaultConfig, not the passes.
type Config struct {
	// Module is the module path; imports with this prefix are in-module.
	Module string
	// Passes selects which passes run (nil = all seven).
	Passes []string

	// Layering is the import-DAG rule table.
	Layering []LayerRule

	// DetScope lists the package patterns under the determinism contract.
	DetScope []string
	// DetGoAllowed names functions in which `go` statements are
	// sanctioned (the harness's ParMap).
	DetGoAllowed []string
	// DetTimeFuncs are the time-package functions that read the wall
	// clock.
	DetTimeFuncs []string
	// DetRandAllowed are the math/rand members that do not touch the
	// global source (seeded constructors).
	DetRandAllowed []string
	// OrderedSinks are method names whose calls inside a map-range body
	// mark the iteration as feeding ordered output.
	OrderedSinks []string

	// HotFmtFuncs are the fmt functions banned in hotpath functions.
	HotFmtFuncs []string
	// HotRequired lists functions that MUST carry the //gblint:hotpath
	// marker — the benchmarked chains whose allocation discipline is
	// enforced, not optional. A rule only applies when a linted package
	// matches its scope (so partial lint runs stay quiet); within a
	// matching package, a listed function that is missing or unmarked is
	// a finding. Methods are named "Type.Method".
	HotRequired []HotRequiredRule

	// ObsPackage is the package pattern holding the nil-safe instrument
	// types and the Registry whose Counter/Gauge/Histogram methods
	// register metrics.
	ObsPackage string

	// SpawnScope lists the package patterns under the spawn-lifecycle
	// contract: every `go` statement there needs a visible stop path or a
	// reasoned //gblint:spawn directive.
	SpawnScope []string
	// SpawnStopNames are the identifier substrings (lowercased) that mark
	// a channel as a stop signal when the spawned body receives from it.
	SpawnStopNames []string
}

// DefaultConfig returns the graybox repository's rule table.
func DefaultConfig() *Config {
	protocols := []string{
		"internal/ra", "internal/lamport", "internal/tokenring", "internal/ring",
	}
	specSide := "wrappers and specs are designed from local everywhere specifications, never from protocol internals (the graybox rule)"
	implSide := "protocol implementations must stay runnable without the wrapper/simulator layers"
	return &Config{
		Module: "github.com/graybox-stabilization/graybox",
		Layering: []LayerRule{
			{Scope: "internal/wrapper", Deny: protocols, Reason: specSide},
			{Scope: "internal/spec", Deny: protocols, Reason: specSide},
			{Scope: "internal/lspec", Deny: protocols, Reason: specSide},
			{Scope: "internal/hme", Deny: append([]string{
				"internal/wrapper", "internal/sim", "internal/runtime", "internal/harness",
			}, protocols...), Reason: "the hierarchical wrapper-of-wrappers sees per-shard spec views only: no protocol internals (graybox rule) and no substrates (they drive it, never the reverse)"},
			{Scope: "internal/ra", Deny: []string{"internal/wrapper", "internal/sim"}, Reason: implSide},
			{Scope: "internal/lamport", Deny: []string{"internal/wrapper", "internal/sim"}, Reason: implSide},
			{Scope: "internal/tokenring", Deny: []string{"internal/wrapper", "internal/sim"}, Reason: implSide},
			{Scope: "internal/ring", Deny: []string{"internal/wrapper", "internal/sim"}, Reason: implSide},
			{Scope: "internal/obs", Deny: []string{DenyModule},
				Reason: "obs is a leaf every layer publishes into, so it may depend on nothing in-module"},
			{Scope: "internal/engine", Deny: []string{
				"internal/ra", "internal/lamport", "internal/tokenring", "internal/ring",
				"internal/wrapper", "internal/spec", "internal/lspec",
				"internal/sim", "internal/fault", "internal/harness",
			}, Reason: "the event engine is protocol-agnostic: substrates build on it, never the reverse"},
			{Scope: "internal/wire", Deny: []string{
				"internal/ra", "internal/lamport", "internal/tokenring", "internal/ring",
				"internal/wrapper", "internal/spec", "internal/lspec",
				"internal/sim", "internal/runtime", "internal/harness",
			}, Reason: "the wire layer moves opaque TME frames: it may build on engine/fault/obs but never on protocols, wrappers, specs, or its own consumers"},
			{Scope: "internal/workload", Deny: []string{
				"internal/ra", "internal/lamport", "internal/tokenring", "internal/ring",
				"internal/wrapper", "internal/spec", "internal/lspec",
				"internal/sim", "internal/runtime", "internal/harness",
				"internal/fault", "internal/wire", "internal/scenario", "internal/channel",
			}, Reason: "workload generation is substrate-blind seeded draw streams: engine/obs at most, so every substrate replays the same schedule"},
			{Scope: "internal/scenario", Deny: []string{
				"internal/ra", "internal/lamport", "internal/tokenring", "internal/ring",
				"internal/wrapper", "internal/spec", "internal/lspec",
				"internal/sim", "internal/runtime", "internal/harness",
			}, Reason: "scenarios compile onto workload/fault/wire/engine/obs primitives; they must not reach into substrates or protocols (the harness adapts, never the reverse)"},
			{Scope: "internal/twin", Deny: []string{
				"internal/ra", "internal/lamport", "internal/tokenring", "internal/ring",
				"internal/wrapper", "internal/spec", "internal/lspec", "internal/tme",
				"internal/sim", "internal/runtime", "internal/harness", "internal/hme",
				"internal/fault", "internal/wire", "internal/scenario", "internal/channel",
				"internal/engine", "internal/ltime",
			}, Reason: "the analytical twin is closed-form arithmetic over published parameters: workload specs in, obs snapshots out — the moment it imports a substrate or protocol it stops being an independent prediction and starts being a second simulator"},
		},
		DetScope: []string{
			"internal/sim", "internal/runtime", "internal/harness",
			"internal/fault", "internal/channel", "internal/lspec",
			"internal/ra", "internal/lamport", "internal/tokenring", "internal/ring",
			"internal/engine", "internal/wire",
			"internal/workload", "internal/scenario", "internal/hme",
		},
		// ParMap is the harness's deterministic parallel sweep; RunBarrier is
		// the engine group's parallel shard window — both join before any
		// result is observed, so the spawned goroutines cannot order-race.
		DetGoAllowed:   []string{"ParMap", "RunBarrier"},
		DetTimeFuncs:   []string{"Now", "Since", "Until"},
		DetRandAllowed: []string{"New", "NewSource", "NewZipf"},
		OrderedSinks: []string{
			"Emit", "Observe", "AddRow", "Write", "WriteString",
			"Fprintf", "Fprint", "Fprintln", "Printf", "Print", "Println",
		},
		HotFmtFuncs: []string{
			"Sprintf", "Sprint", "Sprintln", "Errorf",
			"Fprintf", "Fprint", "Fprintln", "Printf", "Print", "Println",
		},
		HotRequired: []HotRequiredRule{
			{Scope: "internal/wire", Funcs: []string{
				"AppendFrame", "DecodePayload", "Reader.ReadMessage",
				"V2Encoder.AppendFrame", "V2Reader.ReadMessage",
				"Transport.encodeBatch", "msgQueue.put", "msgQueue.drain",
			}, Reason: "the wire send/recv chain is benchmarked allocation-free (bench_wire_throughput); the hotpath contract on it is load-bearing, not decorative"},
		},
		ObsPackage: "internal/obs",
		SpawnScope: []string{
			"internal/runtime", "internal/wire", "internal/harness", "cmd/...",
		},
		SpawnStopNames: []string{"stop", "done", "quit", "close"},
	}
}

// matchPath reports whether path matches pattern: exact match, a
// path-boundary suffix, or a "/..."-subtree.
func matchPath(pattern, path string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return matchPath(sub, path) || strings.Contains(path, "/"+sub+"/") ||
			strings.HasPrefix(path, sub+"/")
	}
	return pattern == path || strings.HasSuffix(path, "/"+pattern)
}

func matchAny(patterns []string, path string) bool {
	for _, p := range patterns {
		if matchPath(p, path) {
			return true
		}
	}
	return false
}

// inModule reports whether path is inside module.
func inModule(path, module string) bool {
	return module != "" && (path == module || strings.HasPrefix(path, module+"/"))
}

// Pass checks one loaded package at a time, reporting findings through
// report. Passes needing cross-package state implement Finisher as well.
type Pass interface {
	Name() string
	Check(cfg *Config, pkg *Package, report Reporter)
}

// Finisher is an optional Pass extension that fires after every package
// was checked (for whole-program properties such as metric-name
// uniqueness).
type Finisher interface {
	Finish(cfg *Config, report Reporter)
}

// Reporter records one finding at pos.
type Reporter func(pos token.Pos, format string, args ...any)

// Runner drives the passes over a package stream and owns suppression and
// ordering of the combined findings.
type Runner struct {
	cfg    *Config
	fset   *token.FileSet
	passes []Pass
	diags  []Diagnostic
	// ignores maps file -> line -> pass names suppressed there ("" = all).
	ignores map[string]map[int][]string
}

// NewRunner returns a runner over cfg with the selected passes (all seven
// when cfg.Passes is nil). All linted packages must share fset.
func NewRunner(cfg *Config, fset *token.FileSet) *Runner {
	all := []Pass{
		layeringPass{},
		determinismPass{},
		newHotpathPass(),
		newObsPass(),
		newGuardedPass(),
		newExhaustivePass(),
		spawnPass{},
	}
	r := &Runner{cfg: cfg, fset: fset, ignores: map[string]map[int][]string{}}
	for _, p := range all {
		if cfg.Passes == nil || containsStr(cfg.Passes, p.Name()) {
			r.passes = append(r.passes, p)
		}
	}
	return r
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// Lint runs every selected pass over pkg.
func (r *Runner) Lint(pkg *Package) {
	r.collectIgnores(pkg)
	for _, p := range r.passes {
		name := p.Name()
		p.Check(r.cfg, pkg, func(pos token.Pos, format string, args ...any) {
			r.diags = append(r.diags, Diagnostic{
				Pos:  r.fset.Position(pos),
				Pass: name,
				Msg:  fmt.Sprintf(format, args...),
			})
		})
	}
}

// Finish runs the cross-package finishers and returns the suppressed,
// sorted findings.
func (r *Runner) Finish() []Diagnostic {
	for _, p := range r.passes {
		f, ok := p.(Finisher)
		if !ok {
			continue
		}
		name := p.Name()
		f.Finish(r.cfg, func(pos token.Pos, format string, args ...any) {
			r.diags = append(r.diags, Diagnostic{
				Pos:  r.fset.Position(pos),
				Pass: name,
				Msg:  fmt.Sprintf(format, args...),
			})
		})
	}
	out := r.diags[:0]
	for _, d := range r.diags {
		if !r.suppressed(d) {
			out = append(out, d)
		}
	}
	r.diags = out
	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return r.diags
}

// collectIgnores indexes every //gblint:ignore directive of pkg by file
// and line. A directive suppresses findings on its own line and on the
// line directly below it, so both trailing and preceding placements work:
//
//	t := time.Now() //gblint:ignore determinism wall-clock is fine here
//
//	//gblint:ignore determinism,hotpath reason...
//	t := time.Now()
//
// With no pass list the directive suppresses every pass.
func (r *Runner) collectIgnores(pkg *Package) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := directive(c.Text, "ignore")
				if !ok {
					continue
				}
				var passes []string
				if fields := strings.Fields(rest); len(fields) > 0 {
					for _, p := range strings.Split(fields[0], ",") {
						if knownPass(p) {
							passes = append(passes, p)
						}
					}
					// An unknown first token is a reason, not a pass
					// list: suppress everything.
					if len(passes) == 0 {
						passes = []string{""}
					}
				} else {
					passes = []string{""}
				}
				pos := r.fset.Position(c.Pos())
				m := r.ignores[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					r.ignores[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], passes...)
			}
		}
	}
}

func knownPass(p string) bool {
	switch p {
	case PassLayering, PassDeterminism, PassHotpath, PassObs,
		PassGuardedBy, PassExhaustive, PassSpawn:
		return true
	}
	return false
}

func (r *Runner) suppressed(d Diagnostic) bool {
	m := r.ignores[d.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, p := range m[line] {
			if p == "" || p == d.Pass {
				return true
			}
		}
	}
	return false
}

// directive parses a "//gblint:<name> rest" comment, returning the rest.
func directive(comment, name string) (string, bool) {
	s := strings.TrimPrefix(comment, "//")
	s = strings.TrimSpace(s)
	rest, ok := strings.CutPrefix(s, "gblint:"+name)
	if !ok {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. gblint:ignorefoo
	}
	return strings.TrimSpace(rest), true
}
