package lint

import (
	"bufio"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// fixtureModule is the fake module path the testdata packages live under;
// suffix matching makes DefaultConfig's layer scopes apply to them.
const fixtureModule = "example.com/fix"

// fixtures maps fixture import paths to their testdata directories.
var fixtures = map[string]string{
	fixtureModule + "/internal/wrapper": "testdata/layering",
	fixtureModule + "/internal/sim":     "testdata/det",
	fixtureModule + "/internal/hot":     "testdata/hot",
	fixtureModule + "/internal/obs":     "testdata/obsd",
	fixtureModule + "/internal/guarded": "testdata/guarded",
	fixtureModule + "/internal/kinds":   "testdata/kinds",
	// The spawn fixture's import path sits in both DetScope and
	// SpawnScope, pinning multi-pass findings on one line.
	fixtureModule + "/internal/runtime": "testdata/spawn",
}

// want is one expected diagnostic, declared in a fixture file as a
// trailing comment: // want:<pass> "substring of the message"
type want struct {
	file   string
	line   int
	pass   string
	substr string
}

var wantRE = regexp.MustCompile(`want:(\w+)\s+"([^"]*)"`)

func collectWants(t *testing.T, dirs ...string) []want {
	t.Helper()
	var wants []want
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				for _, m := range wantRE.FindAllStringSubmatch(sc.Text(), -1) {
					wants = append(wants, want{
						file: filepath.ToSlash(path), line: line,
						pass: m[1], substr: m[2],
					})
				}
			}
			f.Close()
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments under %v", dirs)
	}
	return wants
}

// lintFixtures loads every fixture package and returns the findings.
func lintFixtures(t *testing.T, cfg *Config, exports map[string]string) []Diagnostic {
	t.Helper()
	paths := make([]string, 0, len(fixtures))
	for p := range fixtures {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	r := NewRunner(cfg, fset)
	for _, p := range paths {
		pkg, err := LoadDir(fset, fixtures[p], p, exports)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		r.Lint(pkg)
	}
	return r.Finish()
}

func fixtureConfig() *Config {
	cfg := DefaultConfig()
	cfg.Module = fixtureModule
	// The hot fixture also exercises HotRequired: Encode is marked
	// (quiet), ring.pop is required but unmarked (finding). The default
	// internal/wire rule stays in the table and must stay silent — no
	// fixture package matches its scope.
	cfg.HotRequired = append(cfg.HotRequired, HotRequiredRule{
		Scope:  "internal/hot",
		Funcs:  []string{"Encode", "ring.pop"},
		Reason: "fixture: required hot chain",
	})
	return cfg
}

// TestFixtures runs all seven passes over the fixture packages with full
// type information and checks the findings against the want comments:
// every seeded violation is caught, every //gblint:ignore twin and every
// legitimate construct stays quiet.
func TestFixtures(t *testing.T) {
	exports, err := Exports(".", "time", "math/rand", "fmt", "sync", "sync/atomic")
	if err != nil {
		t.Fatalf("building export data: %v", err)
	}
	diags := lintFixtures(t, fixtureConfig(), exports)

	dirs := make([]string, 0, len(fixtures))
	for _, d := range fixtures {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	wants := collectWants(t, dirs...)

	matched := make([]bool, len(wants))
diags:
	for _, d := range diags {
		file := filepath.ToSlash(d.Pos.Filename)
		for i, w := range wants {
			if !matched[i] && file == w.file && d.Pos.Line == w.line &&
				d.Pass == w.pass && strings.Contains(d.Msg, w.substr) {
				matched[i] = true
				continue diags
			}
		}
		t.Errorf("unexpected finding: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding: %s:%d [%s] containing %q", w.file, w.line, w.pass, w.substr)
		}
	}
}

// TestSyntacticDegradation reruns the fixtures with no export data at
// all. Intra-package and universe types still resolve (the checker
// type-checks source directly), imported types degrade to the syntactic
// fallbacks (the file import table), and the checks that genuinely need
// missing type info — like MapOpaque's range — skip instead of guessing,
// so the findings must come out identical to the fully typed run.
func TestSyntacticDegradation(t *testing.T) {
	exports, err := Exports(".", "time", "math/rand", "fmt", "sync", "sync/atomic")
	if err != nil {
		t.Fatalf("building export data: %v", err)
	}
	asStrings := func(ds []Diagnostic) []string {
		out := make([]string, len(ds))
		for i, d := range ds {
			out[i] = d.String()
		}
		return out
	}
	full := asStrings(lintFixtures(t, fixtureConfig(), exports))
	bare := asStrings(lintFixtures(t, fixtureConfig(), nil))
	if strings.Join(full, "\n") != strings.Join(bare, "\n") {
		t.Errorf("findings differ without export data:\nfull:\n%s\nbare:\n%s",
			strings.Join(full, "\n"), strings.Join(bare, "\n"))
	}
}

// TestPassSelection checks Config.Passes subsets the runner.
func TestPassSelection(t *testing.T) {
	cfg := fixtureConfig()
	cfg.Passes = []string{PassLayering}
	for _, d := range lintFixtures(t, cfg, nil) {
		if d.Pass != PassLayering {
			t.Errorf("pass %q ran despite selection: %s", d.Pass, d)
		}
	}
}

func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"internal/sim", "example.com/mod/internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"internal/sim", "example.com/mod/internal/simx", false},
		{"internal/sim", "example.com/mod/xinternal/sim", false},
		{"internal/sim", "example.com/mod/internal/sim/sub", false},
		{"internal/sim/...", "example.com/mod/internal/sim/sub", true},
		{"internal/sim/...", "example.com/mod/internal/sim", true},
		{"internal/sim/...", "example.com/mod/internal/simx", false},
	}
	for _, c := range cases {
		if got := matchPath(c.pattern, c.path); got != c.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

func TestDirective(t *testing.T) {
	cases := []struct {
		comment, name string
		rest          string
		ok            bool
	}{
		{"//gblint:ignore determinism reason", "ignore", "determinism reason", true},
		{"//gblint:ignore", "ignore", "", true},
		{"// gblint:ignore x", "ignore", "x", true},
		{"//gblint:ignorefoo", "ignore", "", false},
		{"//gblint:hotpath", "hotpath", "", true},
		{"// some other comment", "ignore", "", false},
	}
	for _, c := range cases {
		rest, ok := directive(c.comment, c.name)
		if rest != c.rest || ok != c.ok {
			t.Errorf("directive(%q, %q) = (%q, %v), want (%q, %v)",
				c.comment, c.name, rest, ok, c.rest, c.ok)
		}
	}
}

// TestHotRequiredMissingFunction checks the no-such-function arm of the
// HotRequired rule: a required name that exists nowhere in the scope is a
// finding (at no position — there is no declaration to point at), so the
// table cannot silently rot when a hot function is renamed away.
func TestHotRequiredMissingFunction(t *testing.T) {
	cfg := fixtureConfig()
	cfg.Passes = []string{PassHotpath}
	cfg.HotRequired = append(cfg.HotRequired, HotRequiredRule{
		Scope:  "internal/hot",
		Funcs:  []string{"VanishedFrame"},
		Reason: "unit test",
	})
	found := false
	for _, d := range lintFixtures(t, cfg, nil) {
		if d.Pass == PassHotpath && strings.Contains(d.Msg, "VanishedFrame not found") {
			found = true
		}
	}
	if !found {
		t.Error("no finding for a HotRequired function that does not exist")
	}
}

// TestRepoIsClean is gblint's self-check: the analyzer (and the whole
// repository, including internal/lint and cmd/gblint themselves) must lint
// clean with the shipped rule table.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go tool")
	}
	diags, err := Run("../..", []string{"./..."}, DefaultConfig())
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on clean tree: %s", d)
	}
}
