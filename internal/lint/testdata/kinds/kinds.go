// Package kinds exercises the exhaustiveness pass: a //gblint:kindset
// const block and the dispatch shapes around it — full coverage, loud
// defaults, the silent-fall-through bug class, and the escape-kind
// pattern (a non-member routed by a default once all members are
// covered).
package kinds

// evKind tags this fixture's typed event records.
type evKind uint8

// The fixture's kind set; dispatch sites over these must be total.
//
//gblint:kindset fixture-ev
const (
	evA evKind = iota + 1
	evB
	evC
)

// kindEscape is deliberately outside the kindset block: substrates route
// it through default arms.
const kindEscape evKind = 0

func dispatchFull(k evKind) int {
	switch k {
	case evA:
		return 1
	case evB:
		return 2
	case evC:
		return 3
	}
	return 0
}

func dispatchLoud(k evKind) int {
	switch k {
	case evA:
		return 1
	default:
		panic("unhandled event kind")
	}
}

func dispatchEscape(k evKind) int {
	switch k {
	case evA, evB:
		return 1
	case evC:
		return 3
	default:
		return -1 // kindEscape and forged values land here
	}
}

// dispatchLeaky is the bug class: a quiet default swallows evB and evC —
// and any kind added to the block later.
func dispatchLeaky(k evKind) int {
	switch k { // want:exhaustive "misses evB, evC"
	case evA:
		return 1
	default:
		return 0
	}
}

func dispatchMissing(k evKind) int {
	switch k { // want:exhaustive "misses evC"
	case evA, evB:
		return 1
	}
	return 0
}

func dispatchLeakyTwin(k evKind) int {
	//gblint:ignore exhaustive fixture: suppressed twin of dispatchLeaky
	switch k {
	case evA:
		return 1
	default:
		return 0
	}
}
