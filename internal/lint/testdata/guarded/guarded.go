// Package guarded exercises the guardedby/atomic pass: locked-field
// discipline (lexical lock flow, constructor exemption, function-level
// preconditions, RWMutex read/write split) and the mixed atomic/plain
// access bug class in both of its forms (atomic-typed fields and fields
// reached through sync/atomic package functions).
package guarded

import (
	"sync"
	"sync/atomic"
)

// queue is the locked shape: buf and n only move under mu.
type queue struct {
	mu  sync.Mutex
	buf []int //gblint:guardedby mu
	n   int   //gblint:guardedby mu
}

// newQueue initializes unshared state: constructors are exempt.
func newQueue() *queue {
	q := &queue{}
	q.buf = make([]int, 0, 8)
	return q
}

func (q *queue) put(v int) {
	q.mu.Lock()
	q.buf = append(q.buf, v)
	q.n++
	q.mu.Unlock()
}

func (q *queue) lenRacy() int {
	return q.n // want:guardedby "accessed without holding it"
}

func (q *queue) lenRacyTwin() int {
	return q.n //gblint:ignore guardedby fixture: suppressed twin of lenRacy
}

func (q *queue) afterUnlock() int {
	q.mu.Lock()
	n := q.n
	q.mu.Unlock()
	return n + q.n // want:guardedby "accessed without holding it"
}

func (q *queue) deferred() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// grow runs with q.mu held by every caller.
//
//gblint:guardedby mu
func (q *queue) grow() {
	q.buf = append(q.buf, 0)
}

// closureLeak escapes a literal that reads q.n after the lock is gone: a
// literal is its own lock scope.
func (q *queue) closureLeak() func() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return func() int {
		return q.n // want:guardedby "accessed without holding it"
	}
}

// rw exercises the RWMutex split: RLock satisfies reads, never writes.
type rw struct {
	mu sync.RWMutex
	m  map[string]int //gblint:guardedby mu
}

func (r *rw) get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

func (r *rw) putRacy(k string, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.m[k] = v // want:guardedby "written under RLock"
}

func (r *rw) putLocked(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

// counter reproduces the mixed-access bug class: hits is written through
// sync/atomic on the hot path, total is an atomic-typed field; both are
// then touched plainly in reporting code.
type counter struct {
	hits  int64
	total atomic.Int64
}

func newCounter() *counter {
	c := &counter{}
	c.total.Store(0)
	return c
}

func (c *counter) hit() {
	atomic.AddInt64(&c.hits, 1)
	c.total.Add(1)
}

func (c *counter) reportRacy() int64 {
	return c.hits // want:guardedby "via sync/atomic elsewhere"
}

func (c *counter) reportRacyTwin() int64 {
	return c.hits //gblint:ignore guardedby fixture: suppressed twin of reportRacy
}

func (c *counter) resetRacy() {
	c.total = atomic.Int64{} // want:guardedby "atomic type"
}

func (c *counter) ok() int64 {
	return atomic.LoadInt64(&c.hits) + c.total.Load()
}
