// Package runtime exercises the spawn-lifecycle pass. Its fixture import
// path sits in both DetScope and SpawnScope, so the leak case also pins
// multi-pass findings on one line and their joint suppression.
package runtime

import "sync"

// leak is the bug class: a goroutine with no WaitGroup, no stop channel,
// and no directive. Both the determinism and spawn passes fire on it.
func leak(work func()) {
	go work() // want:determinism "goroutine spawned" want:spawn "no visible stop path"
}

func leakTwin(work func()) {
	go work() //gblint:ignore determinism,spawn fixture: suppressed twin of leak for both passes
}

func waited(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	//gblint:ignore determinism fixture: spawn-pass subject, determinism noise
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func stopped(stop chan struct{}, work func()) {
	//gblint:ignore determinism fixture: spawn-pass subject, determinism noise
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// ranged's worker ends when the producer closes the channel.
func ranged(jobs chan int, work func(int)) {
	//gblint:ignore determinism fixture: spawn-pass subject, determinism noise
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

// server spawns a named method whose body carries the stop path.
type server struct {
	wg   sync.WaitGroup
	stop chan struct{}
}

func (s *server) start() {
	//gblint:ignore determinism fixture: spawn-pass subject, determinism noise
	go s.loop()
}

func (s *server) loop() {
	defer s.wg.Done()
	<-s.stop
}

func reasoned(work func()) {
	//gblint:spawn fixture: process-lifetime worker, reaped at exit
	go work() //gblint:ignore determinism fixture: spawn-pass subject, determinism noise
}

// ParMap is named for DetGoAllowed so only the spawn pass judges the bare
// directive below.
func ParMap(work func()) {
	//gblint:spawn
	go work() // want:spawn "needs a reason"
}
