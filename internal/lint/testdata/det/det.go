// Package sim is a determinism-pass fixture. Its import path places it
// under the determinism contract, so wall-clock reads, the global
// math/rand source, order-leaking map iteration, and unsanctioned
// goroutine spawns must all be flagged — and the seeded/sorted/ParMap
// forms must not.
package sim

import (
	"math/rand"
	"time"

	"example.com/fix/internal/missing"
)

// Clock reads the wall clock, which the contract forbids.
func Clock() int64 {
	return time.Now().UnixNano() // want:determinism "time.Now reads the wall clock"
}

// ClockSuppressed is the ignore-directive twin of Clock.
func ClockSuppressed() int64 {
	//gblint:ignore determinism fixture: sanctioned wall-clock read
	return time.Now().UnixNano()
}

// Elapsed uses time arithmetic that never reads the clock: allowed.
func Elapsed(d time.Duration) int64 { return d.Nanoseconds() }

// GlobalRand draws from the global math/rand source.
func GlobalRand() int {
	return rand.Intn(6) // want:determinism "global math/rand source"
}

// SeededRand is the sanctioned form: an explicit seeded generator.
func SeededRand(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// Spawn starts a goroutine outside the sanctioned spawner.
func Spawn(ch chan int) {
	go post(ch) // want:determinism "goroutine"
}

// ParMap is the sanctioned spawner name, so its go statement is allowed.
func ParMap(ch chan int) {
	go post(ch)
}

func post(ch chan int) { ch <- 1 }

// MapOrder appends under map iteration: the slice order leaks map order.
func MapOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want:determinism "map iteration appends"
		out = append(out, k)
	}
	return out
}

// MapSum folds commutatively over a map: order cannot leak, allowed.
func MapSum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// MapOpaque ranges over a value whose type never resolves (the import is
// unresolvable): the map check must stay silent rather than guess.
func MapOpaque() []int {
	var out []int
	for k := range missing.Table() {
		out = append(out, k)
	}
	return out
}

// SliceOrder ranges over a slice, not a map: allowed.
func SliceOrder(s []int) []int {
	var out []int
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
