// Package obs is an obs-pass fixture covering both contracts: the
// nil-receiver no-op discipline of instrument types and single-site
// metric registration. Its import path matches Config.ObsPackage, and the
// leaf rule of the layering table applies to it too.
package obs

import (
	_ "example.com/fix/internal/sim" // want:layering "may depend on nothing"
)

// Counter promises nil-receiver no-op behavior: Inc anchors the claim.
type Counter struct{ n int64 }

// Inc is guarded, establishing the type's nil-safety contract.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add dereferences without a guard: a latent panic on the disabled path.
func (c *Counter) Add(d int64) { // want:obs "without a nil guard"
	c.n += d
}

// Twice inherits nil-safety by only calling nil-safe methods.
func (c *Counter) Twice() {
	c.Inc()
	c.Inc()
}

// Value compares the receiver against nil before any dereference.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge also claims nil-safety but suppresses its known-unsafe method.
type Gauge struct{ v int64 }

// Get anchors Gauge's nil-safety claim.
func (g *Gauge) Get() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Set is the ignore-directive twin of Counter.Add.
//
//gblint:ignore obs fixture: acknowledged unguarded method
func (g *Gauge) Set(v int64) { g.v = v }

// raw makes no nil-safety claim (no guarded exported method), so its
// unguarded methods are fine.
type raw struct{ n int64 }

func (r *raw) bump() { r.n++ }

// Registry registers instruments by name; it makes no nil-safety claim.
type Registry struct{ counters map[string]*Counter }

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	_ = help
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = map[string]*Counter{}
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Wire registers the fixture's metrics.
func Wire(r *Registry) {
	once := r.Counter("fix_ok_total", "registered once: fine")
	dup1 := r.Counter("fix_dup_total", "first site")
	dup2 := r.Counter("fix_dup_total", "second site") // want:obs "registered at 2 call sites"
	sup1 := r.Counter("fix_sup_total", "first site")
	//gblint:ignore obs fixture: this duplicate is sanctioned
	sup2 := r.Counter("fix_sup_total", "second site")
	_, _, _, _, _ = once, dup1, dup2, sup1, sup2
}

// WireDynamic builds names at runtime: exempt from the single-site rule.
func WireDynamic(r *Registry, suffix string) *Counter {
	return r.Counter("fix_dyn_"+suffix, "dynamic name")
}
