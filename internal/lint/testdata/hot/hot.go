// Package hot is a hotpath-pass fixture: allocation discipline inside
// //gblint:hotpath functions. Closures, fmt formatting, and interface
// boxing are flagged in marked functions and ignored in unmarked ones.
package hot

import "fmt"

func sink(v any) { _ = v }

// Dispatch is marked hot and commits each violation once.
//
//gblint:hotpath
func Dispatch(vals []int) func() int {
	fn := func() int { return len(vals) } // want:hotpath "closure literal"
	_ = fmt.Sprintf("%d", len(vals))      // want:hotpath "fmt.Sprintf"
	sink(len(vals))                       // want:hotpath "boxes"
	_ = any(len(vals))                    // want:hotpath "boxes a concrete value"
	return fn
}

// DispatchSuppressed is the ignore-directive twin of Dispatch.
//
//gblint:hotpath
func DispatchSuppressed(vals []int) {
	//gblint:ignore hotpath fixture: sanctioned closure
	fn := func() int { return len(vals) }
	_ = fn()
	_ = fmt.Sprintf("%d", len(vals)) //gblint:ignore hotpath fixture: sanctioned formatting
}

// DispatchClean is marked hot but allocation-free: no findings.
//
//gblint:hotpath
func DispatchClean(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}

// Cold is unmarked, so formatting and closures are fine here.
func Cold(vals []int) string {
	fn := func() int { return len(vals) }
	return fmt.Sprintf("%d", fn())
}
