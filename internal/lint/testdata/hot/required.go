// HotRequired fixture half: the fixture config pins the marker onto
// Encode, ring.pop, and a function that does not exist. Encode carries
// it (quiet), ring.pop forgot it (finding at the declaration), and the
// missing one is reported with no position.
package hot

// Encode is required and marked: no finding.
//
//gblint:hotpath
func Encode(dst []byte, v int) []byte {
	return append(dst, byte(v))
}

type ring struct{ items []int }

// pop is on the required list but lost its marker.
func (r *ring) pop() int { // want:hotpath "must be marked //gblint:hotpath"
	v := r.items[0]
	r.items = r.items[1:]
	return v
}
