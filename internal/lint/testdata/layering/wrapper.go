// Package wrapper is a layering-pass fixture. It stands in for the
// spec/wrapper layer, which the graybox rule forbids from importing
// protocol implementations.
package wrapper

import (
	_ "example.com/fix/internal/lspec"
	_ "example.com/fix/internal/ra" // want:layering "must not import"

	//gblint:ignore layering fixture: the suppressed twin of the ra import
	_ "example.com/fix/internal/tokenring"
)
