package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guardedPass enforces the concurrency-access discipline the runtime, wire,
// and obs packages rely on:
//
//  1. Guarded fields. A struct field annotated //gblint:guardedby <mu>
//     (doc or trailing comment on the field; <mu> names a sibling mutex
//     field) may only be read or written while that mutex is held on the
//     same base expression. Lock state is tracked lexically per function
//     body: the latest base.mu.Lock/RLock/Unlock/RUnlock call before the
//     access decides (deferred unlocks are ignored — they release at
//     return). A function whose callers hold the lock declares the
//     precondition with //gblint:guardedby <mu> in its doc comment, which
//     covers receiver-based accesses throughout its body. Writes under
//     RLock are their own finding when the guard is an RWMutex.
//
//  2. Atomic fields. A field declared with a sync/atomic type (atomic.Int64,
//     atomic.Pointer[T], ...) may only be used as the receiver of its atomic
//     methods; a field ever passed as &x.f to a sync/atomic package function
//     may only be accessed that way. Both rules exempt constructors —
//     functions whose results include the owning struct type — where the
//     value is still unshared. Everything else is the mixed atomic/plain
//     access bug class: one racing plain read invalidates every atomic site.
//
// Function literals are analyzed as their own lock scopes (a closure runs
// at an unknown time, so it cannot inherit the spawner's lock state).
// Analysis is per package and object-resolution based: accesses that do
// not resolve to a known field are skipped, never guessed, so findings
// stay identical when export data is missing.
type guardedPass struct{}

func newGuardedPass() guardedPass { return guardedPass{} }

func (guardedPass) Name() string { return PassGuardedBy }

// guardInfo is the discipline attached to one struct field.
type guardInfo struct {
	owner string // declaring struct type name
	field string
	mu    string // sibling mutex field name ("" when only atomic-typed)
	rw    bool   // the guard is an RWMutex
}

// guardState is the per-package collection result.
type guardState struct {
	guards    map[types.Object]*guardInfo // //gblint:guardedby fields
	atomics   map[types.Object]*guardInfo // fields with atomic.* declared types
	viaFunc   map[types.Object]bool       // fields passed as &x.f to sync/atomic funcs
	allFields map[types.Object]string     // every named struct field -> owner type
	pre       map[*ast.FuncDecl][]string  // function-level lock preconditions
	ctors     map[*ast.FuncDecl]map[string]bool
}

func (guardedPass) Check(cfg *Config, pkg *Package, report Reporter) {
	st := collectGuards(pkg, report)
	if len(st.guards) == 0 && len(st.atomics) == 0 && len(st.viaFunc) == 0 {
		return
	}
	for _, f := range pkg.Files {
		imports := fileImports(f)
		parents := parentMap(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardFunc(pkg, imports, fd, st, parents, report)
		}
	}
}

// collectGuards gathers the package's field annotations, atomic-typed and
// atomic-accessed fields, constructors, and function preconditions.
func collectGuards(pkg *Package, report Reporter) *guardState {
	st := &guardState{
		guards:    map[types.Object]*guardInfo{},
		atomics:   map[types.Object]*guardInfo{},
		viaFunc:   map[types.Object]bool{},
		allFields: map[types.Object]string{},
		pre:       map[*ast.FuncDecl][]string{},
		ctors:     map[*ast.FuncDecl]map[string]bool{},
	}
	for _, f := range pkg.Files {
		imports := fileImports(f)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if s, ok := ts.Type.(*ast.StructType); ok {
						collectStructGuards(pkg, imports, ts.Name.Name, s, st, report)
					}
				}
			case *ast.FuncDecl:
				if d.Doc != nil {
					for _, c := range d.Doc.List {
						rest, ok := directive(c.Text, "guardedby")
						if !ok {
							continue
						}
						mu := firstToken(rest)
						if mu == "" {
							report(c.Pos(), "guardedby directive needs a mutex field name")
							continue
						}
						st.pre[d] = append(st.pre[d], mu)
					}
				}
				if names := resultTypeNames(d); names != nil {
					st.ctors[d] = names
				}
			}
		}
		// Fields reached through sync/atomic package functions.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if path, ok := selectorPackage(pkg, imports, sel); !ok || path != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fs, ok := un.X.(*ast.SelectorExpr); ok {
					if obj := fieldObjOf(pkg, fs); obj != nil {
						st.viaFunc[obj] = true
					}
				}
			}
			return true
		})
	}
	return st
}

func collectStructGuards(pkg *Package, imports map[string]string, owner string, s *ast.StructType, st *guardState, report Reporter) {
	for _, fld := range s.Fields.List {
		mu := ""
		var dirPos token.Pos
		for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				if rest, ok := directive(c.Text, "guardedby"); ok {
					mu, dirPos = firstToken(rest), c.Pos()
					if mu == "" {
						report(dirPos, "guardedby directive needs a mutex field name")
					}
				}
			}
		}
		atomicTyped := isAtomicFieldType(fld.Type, imports)
		var rw bool
		if mu != "" {
			sib := structField(s, mu)
			if sib == nil {
				report(dirPos, "guardedby names %q but struct %s has no such field", mu, owner)
				mu = ""
			} else {
				rw = isRWMutexType(sib.Type, imports)
			}
		}
		for _, name := range fld.Names {
			if name.Name == "_" {
				continue
			}
			obj := pkg.Info.Defs[name]
			if obj == nil {
				continue
			}
			st.allFields[obj] = owner
			gi := &guardInfo{owner: owner, field: name.Name, mu: mu, rw: rw}
			if mu != "" {
				st.guards[obj] = gi
			}
			if atomicTyped {
				st.atomics[obj] = gi
			}
		}
	}
}

// checkGuardFunc judges every guarded/atomic field access in fd.
func checkGuardFunc(pkg *Package, imports map[string]string, fd *ast.FuncDecl, st *guardState, parents map[ast.Node]ast.Node, report Reporter) {
	events := collectLockEvents(fd, parents)
	recv := ""
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = fd.Recv.List[0].Names[0].Name
	}
	pre := map[string]bool{}
	for _, mu := range st.pre[fd] {
		pre[mu] = true
	}
	ctor := st.ctors[fd]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := fieldObjOf(pkg, sel)
		if obj == nil {
			return true
		}
		gi, guarded := st.guards[obj]
		ai, atomicTyped := st.atomics[obj]
		viaFunc := st.viaFunc[obj]
		if !guarded && !atomicTyped && !viaFunc {
			return true
		}
		scope := scopeOf(sel, parents, fd)
		base := exprString(sel.X)
		inCtor := func(owner string) bool { return owner != "" && ctor != nil && ctor[owner] }
		if guarded && !inCtor(gi.owner) {
			held := heldNone
			if pre[gi.mu] && scope == ast.Node(fd) && base == recv && recv != "" {
				held = heldLock
			} else {
				held = lockStateAt(events[scope], base+"."+gi.mu, sel.Pos())
			}
			write := accessIsWrite(sel, parents)
			switch {
			case held == heldNone:
				report(sel.Pos(), "field %s.%s is guarded by %q and accessed without holding it: lock %s.%s around the access, or mark the enclosing function //gblint:guardedby %s if its callers hold the lock",
					gi.owner, gi.field, gi.mu, base, gi.mu, gi.mu)
			case held == heldRLock && write:
				report(sel.Pos(), "field %s.%s is written under RLock: writes to a guarded field need the exclusive Lock", gi.owner, gi.field)
			}
		}
		if atomicTyped && !inCtor(ai.owner) && !isAtomicMethodUse(sel, parents) {
			report(sel.Pos(), "field %s.%s has an atomic type and must only be used through its atomic methods outside the constructor (plain access races with the atomic sites)",
				ai.owner, ai.field)
		}
		if viaFunc && !atomicTyped && !inCtor(st.allFields[obj]) && !isAtomicCallArg(pkg, imports, sel, parents) {
			report(sel.Pos(), "field %s is accessed via sync/atomic elsewhere and must not be read or written plainly outside the constructor (mixed atomic/plain access races)",
				exprString(sel))
		}
		return true
	})
}

// --- lock-flow tracking ---

const (
	heldNone = iota
	heldRLock
	heldLock
)

type lockEvent struct {
	key string // rendered "base.mu"
	op  int    // heldLock, heldRLock, or heldNone for unlocks
	pos token.Pos
}

// collectLockEvents gathers base.mu.Lock/RLock/Unlock/RUnlock calls per
// lock scope (the FuncDecl body or each FuncLit body), in source order.
// Deferred unlocks are skipped: they hold the lock to scope exit.
func collectLockEvents(fd *ast.FuncDecl, parents map[ast.Node]ast.Node) map[ast.Node][]lockEvent {
	out := map[ast.Node][]lockEvent{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var op int
		switch sel.Sel.Name {
		case "Lock":
			op = heldLock
		case "RLock":
			op = heldRLock
		case "Unlock", "RUnlock":
			op = heldNone
		default:
			return true
		}
		if isDeferred(call, parents) {
			return true
		}
		scope := scopeOf(call, parents, fd)
		out[scope] = append(out[scope], lockEvent{key: exprString(sel.X), op: op, pos: call.Pos()})
		return true
	})
	return out
}

// lockStateAt returns the lock state of key at pos: the op of the latest
// earlier event, or heldNone without one.
func lockStateAt(events []lockEvent, key string, pos token.Pos) int {
	state := heldNone
	for _, e := range events {
		if e.key == key && e.pos < pos {
			state = e.op
		}
	}
	return state
}

// scopeOf returns the nearest enclosing function-like node: a FuncLit, or
// fd itself.
func scopeOf(n ast.Node, parents map[ast.Node]ast.Node, fd *ast.FuncDecl) ast.Node {
	for p := parents[n]; p != nil; p = parents[p] {
		if lit, ok := p.(*ast.FuncLit); ok {
			return lit
		}
	}
	return fd
}

// isDeferred reports whether call sits directly under a defer statement
// within its own lock scope.
func isDeferred(call ast.Node, parents map[ast.Node]ast.Node) bool {
	for p := parents[call]; p != nil; p = parents[p] {
		switch p.(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// accessIsWrite reports whether sel is on the writing side: an assignment
// target (including through index/star chains), an inc/dec operand, or an
// address-taken operand.
func accessIsWrite(sel ast.Expr, parents map[ast.Node]ast.Node) bool {
	n := ast.Node(sel)
	for {
		parent := parents[n]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			n = p
			continue
		case *ast.IndexExpr:
			if p.X == n {
				n = p
				continue
			}
		case *ast.StarExpr:
			n = p
			continue
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == n {
					return true
				}
			}
		case *ast.IncDecStmt:
			return p.X == n
		case *ast.UnaryExpr:
			return p.Op == token.AND
		}
		return false
	}
}

// --- atomic discipline helpers ---

// atomicMethods are the methods of the sync/atomic value types.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// isAtomicMethodUse reports whether sel (an atomic-typed field access) is
// the receiver of an atomic method call: x.f.Load(), x.f.Store(v), ...
func isAtomicMethodUse(sel ast.Expr, parents map[ast.Node]ast.Node) bool {
	outer, ok := parents[sel].(*ast.SelectorExpr)
	if !ok || outer.X != ast.Node(sel) || !atomicMethods[outer.Sel.Name] {
		return false
	}
	call, ok := parents[outer].(*ast.CallExpr)
	return ok && call.Fun == ast.Node(outer)
}

// isAtomicCallArg reports whether sel appears as &sel in the arguments of
// a sync/atomic package function call.
func isAtomicCallArg(pkg *Package, imports map[string]string, sel ast.Expr, parents map[ast.Node]ast.Node) bool {
	un, ok := parents[sel].(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return false
	}
	call, ok := parents[un].(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	path, ok := selectorPackage(pkg, imports, fun)
	return ok && path == "sync/atomic"
}

// fieldObjOf resolves a selector to the struct field it reads, or nil when
// it is not a (resolvable) field selection.
func fieldObjOf(pkg *Package, sel *ast.SelectorExpr) types.Object {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// --- syntax helpers ---

// parentMap indexes every node's parent under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// exprString renders the lock-relevant shape of an expression; two
// accesses guard-match when their renderings are equal.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return exprString(e.X)
	case *ast.UnaryExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "()"
	case *ast.BasicLit:
		return e.Value
	}
	return "?"
}

// firstToken returns the first whitespace-delimited token of s.
func firstToken(s string) string {
	if fields := strings.Fields(s); len(fields) > 0 {
		return fields[0]
	}
	return ""
}

// structField finds the named field in s.
func structField(s *ast.StructType, name string) *ast.Field {
	for _, fld := range s.Fields.List {
		for _, n := range fld.Names {
			if n.Name == name {
				return fld
			}
		}
	}
	return nil
}

// isAtomicFieldType reports whether a field's declared type is a
// sync/atomic value type (atomic.Int64, atomic.Pointer[T], ...), resolved
// through the file's import table so detection works without export data.
func isAtomicFieldType(t ast.Expr, imports map[string]string) bool {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		default:
			sel, ok := t.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			id, ok := sel.X.(*ast.Ident)
			return ok && imports[id.Name] == "sync/atomic"
		}
	}
}

// isRWMutexType reports whether a field's declared type is sync.RWMutex.
func isRWMutexType(t ast.Expr, imports map[string]string) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "RWMutex" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && imports[id.Name] == "sync"
}

// resultTypeNames collects the intra-package named types in fd's results —
// the types fd constructs, whose fields it may initialize unshared.
func resultTypeNames(fd *ast.FuncDecl) map[string]bool {
	if fd.Type.Results == nil {
		return nil
	}
	var out map[string]bool
	for _, r := range fd.Type.Results.List {
		t := r.Type
	unwrap:
		for {
			switch x := t.(type) {
			case *ast.StarExpr:
				t = x.X
			case *ast.ParenExpr:
				t = x.X
			case *ast.IndexExpr:
				t = x.X
			default:
				break unwrap
			}
		}
		if id, ok := t.(*ast.Ident); ok {
			if out == nil {
				out = map[string]bool{}
			}
			out[id.Name] = true
		}
	}
	return out
}
