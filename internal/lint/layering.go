package lint

import "strings"

// layeringPass enforces the import DAG of Config.Layering: the graybox
// rule as an architecture check. Wrappers and specs see protocols only
// through local everywhere specifications, so their packages must not
// import protocol implementations; protocols must not depend back on the
// wrapper or simulator layers; observability stays a leaf. The pass is
// purely syntactic — it reads import declarations, no type information.
type layeringPass struct{}

func (layeringPass) Name() string { return PassLayering }

func (layeringPass) Check(cfg *Config, pkg *Package, report Reporter) {
	for _, rule := range cfg.Layering {
		if !matchPath(rule.Scope, pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				for _, deny := range rule.Deny {
					denied := false
					if deny == DenyModule {
						denied = inModule(path, cfg.Module)
					} else {
						denied = matchPath(deny, path)
					}
					if denied {
						report(imp.Pos(), "%s must not import %s: %s",
							rule.Scope, path, rule.Reason)
						break
					}
				}
			}
		}
	}
}
