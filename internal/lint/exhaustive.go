package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// exhaustivePass makes kind-dispatch switches total. A const block marked
//
//	//gblint:kindset <name>
//
// declares a kind set: every constant in the block is a member. Any switch
// statement (with a tag) whose case arms reference at least one member of
// a set is then dispatching over that set and must either list every
// member in its case arms or carry a default that fails loudly (a panic —
// or log.Fatal/Panic — inside the default body). A quiet default is
// exactly the bug this pass exists for: adding a kind to the const block
// silently falls through at every dispatch site instead of failing there.
// A default handling non-member values (forged bytes off the wire, an
// escape-hatch kind like the engine's KindFunc) is fine once all declared
// members are covered.
//
// Member and case-arm resolution is purely syntactic — unqualified
// constants key as "this package", qualified ones through the file's
// import table — so findings are identical with or without export data.
// Sets and switches are collected per package and judged in Finish, so a
// switch may live in a different package than its kind set.
type exhaustivePass struct {
	sets     map[string]*kindset
	setOrder []string
	switches []switchRec
}

type kindset struct {
	name    string
	pos     token.Pos
	keys    map[string]bool // canonical "pkgpath.Const" member keys
	display []string        // member names in declaration order
}

type switchRec struct {
	pos         token.Pos
	refs        map[string]bool // resolved case-arm keys
	loudDefault bool
}

func newExhaustivePass() *exhaustivePass {
	return &exhaustivePass{sets: map[string]*kindset{}}
}

func (*exhaustivePass) Name() string { return PassExhaustive }

func (p *exhaustivePass) Check(cfg *Config, pkg *Package, report Reporter) {
	for _, f := range pkg.Files {
		imports := fileImports(f)
		for _, decl := range f.Decls {
			if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.CONST {
				p.collectKindset(pkg, gd, report)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			p.collectSwitch(pkg, imports, sw)
			return true
		})
	}
}

func (p *exhaustivePass) collectKindset(pkg *Package, gd *ast.GenDecl, report Reporter) {
	name := ""
	var dirPos token.Pos
	if gd.Doc != nil {
		for _, c := range gd.Doc.List {
			if rest, ok := directive(c.Text, "kindset"); ok {
				name, dirPos = firstToken(rest), c.Pos()
			}
		}
	}
	if name == "" {
		if dirPos != token.NoPos {
			report(dirPos, "kindset directive needs a set name")
		}
		return
	}
	if _, dup := p.sets[name]; dup {
		report(dirPos, "kindset %q is declared on more than one const block: each set has one owning block", name)
		return
	}
	set := &kindset{name: name, pos: dirPos, keys: map[string]bool{}}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, id := range vs.Names {
			if id.Name == "_" {
				continue
			}
			set.keys[pkg.Path+"."+id.Name] = true
			set.display = append(set.display, id.Name)
		}
	}
	if len(set.keys) == 0 {
		report(dirPos, "kindset %q has no members", name)
		return
	}
	p.sets[name] = set
	p.setOrder = append(p.setOrder, name)
}

func (p *exhaustivePass) collectSwitch(pkg *Package, imports map[string]string, sw *ast.SwitchStmt) {
	rec := switchRec{pos: sw.Pos(), refs: map[string]bool{}}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			rec.loudDefault = loudBody(cc.Body)
			continue
		}
		for _, e := range cc.List {
			if key, ok := kindRefKey(pkg, imports, e); ok {
				rec.refs[key] = true
			}
		}
	}
	if len(rec.refs) > 0 {
		p.switches = append(p.switches, rec)
	}
}

// kindRefKey resolves a case expression to a canonical constant key:
// unqualified idents belong to the linting package, qualified selectors to
// the imported package. Literals and compound expressions do not resolve.
func kindRefKey(pkg *Package, imports map[string]string, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		switch e.Name {
		case "nil", "true", "false":
			return "", false
		}
		return pkg.Path + "." + e.Name, true
	case *ast.SelectorExpr:
		if path, ok := selectorPackage(pkg, imports, e); ok {
			return path + "." + e.Sel.Name, true
		}
	case *ast.ParenExpr:
		return kindRefKey(pkg, imports, e.X)
	}
	return "", false
}

// loudFuncs are the callee names that make a default arm fail loudly.
var loudFuncs = map[string]bool{
	"panic": true, "Panic": true, "Panicf": true, "Panicln": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
}

func loudBody(stmts []ast.Stmt) bool {
	loud := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				loud = loud || loudFuncs[fun.Name]
			case *ast.SelectorExpr:
				loud = loud || loudFuncs[fun.Sel.Name]
			}
			return !loud
		})
		if loud {
			break
		}
	}
	return loud
}

// Finish matches every collected switch against every kind set it
// references and reports the missing members.
func (p *exhaustivePass) Finish(cfg *Config, report Reporter) {
	for _, sw := range p.switches {
		for _, name := range p.setOrder {
			set := p.sets[name]
			shared := false
			for key := range sw.refs {
				if set.keys[key] {
					shared = true
					break
				}
			}
			if !shared {
				continue
			}
			var missing []string
			for _, display := range set.display {
				covered := false
				for key := range sw.refs {
					if set.keys[key] && strings.HasSuffix(key, "."+display) {
						covered = true
						break
					}
				}
				if !covered {
					missing = append(missing, display)
				}
			}
			if len(missing) > 0 && !sw.loudDefault {
				sort.Strings(missing)
				report(sw.pos, "switch dispatches over kindset %q but misses %s: add the missing case arms or a default that panics, so a new kind cannot silently fall through",
					set.name, strings.Join(missing, ", "))
			}
		}
	}
}
