package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathPass enforces allocation discipline inside functions marked
// //gblint:hotpath (in the function's doc comment). The markers sit on
// the simulator's event-dispatch path and the incremental monitor path —
// the code whose allocs/op the benchmark gate holds near zero. Flagged:
//
//   - closure literals (each one the compiler cannot prove non-escaping
//     allocates, and even stack-allocated ones add indirection);
//   - fmt formatting calls (Config.HotFmtFuncs) — they allocate for the
//     result and box every argument;
//   - interface-boxing conversions: passing a concrete value to an
//     interface parameter or converting it to an interface type.
//
// Boxing detection needs type information; without it only the syntactic
// checks run.
//
// The pass also enforces Config.HotRequired: within packages matching a
// rule's scope, every listed function ("Name" or "Type.Method") must
// exist and carry the marker — the benchmarked chains cannot silently
// drop out of the discipline. Collection happens per package; the verdict
// fires in Finish so multi-package scopes aggregate first.
type hotpathPass struct {
	req []*hotReqState
}

// hotReqState accumulates the evidence for one HotRequired rule.
type hotReqState struct {
	matched bool                 // some linted package matched the scope
	decl    map[string]token.Pos // declared functions by display name
	marked  map[string]bool      // ...which of them carry the marker
}

func newHotpathPass() *hotpathPass { return &hotpathPass{} }

func (*hotpathPass) Name() string { return PassHotpath }

func (p *hotpathPass) Check(cfg *Config, pkg *Package, report Reporter) {
	if p.req == nil {
		p.req = make([]*hotReqState, len(cfg.HotRequired))
		for i := range p.req {
			p.req[i] = &hotReqState{decl: map[string]token.Pos{}, marked: map[string]bool{}}
		}
	}
	var tracking []*hotReqState
	for i, rule := range cfg.HotRequired {
		if matchPath(rule.Scope, pkg.Path) {
			p.req[i].matched = true
			tracking = append(tracking, p.req[i])
		}
	}
	for _, f := range pkg.Files {
		imports := fileImports(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			hot := isHotpath(fd)
			for _, st := range tracking {
				dn := declName(fd)
				if _, seen := st.decl[dn]; !seen {
					st.decl[dn] = fd.Name.Pos()
				}
				if hot {
					st.marked[dn] = true
				}
			}
			if !hot || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					report(n.Pos(), "closure literal in hotpath function %s: hot-path occurrences are typed event records, not closures", name)
				case *ast.CallExpr:
					checkHotCall(cfg, pkg, imports, name, n, report)
				}
				return true
			})
		}
	}
}

// Finish reports HotRequired violations: a required function that is
// unmarked (at its declaration) or missing entirely (at no position).
func (p *hotpathPass) Finish(cfg *Config, report Reporter) {
	for i, rule := range cfg.HotRequired {
		if i >= len(p.req) || !p.req[i].matched {
			continue // scope never linted this run; stay quiet
		}
		st := p.req[i]
		for _, fn := range rule.Funcs {
			pos, declared := st.decl[fn]
			switch {
			case !declared:
				report(token.NoPos, "HotRequired function %s not found in %s (renamed or removed? %s)", fn, rule.Scope, rule.Reason)
			case !st.marked[fn]:
				report(pos, "function %s must be marked //gblint:hotpath: %s", fn, rule.Reason)
			}
		}
	}
}

// declName is a FuncDecl's HotRequired display name: "Name" for plain
// functions, "Type.Method" for methods (pointer receivers included).
func declName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if _, ok := directive(c.Text, "hotpath"); ok {
			return true
		}
	}
	return false
}

func checkHotCall(cfg *Config, pkg *Package, imports map[string]string, fn string, call *ast.CallExpr, report Reporter) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if path, ok := selectorPackage(pkg, imports, sel); ok && path == "fmt" &&
			containsStr(cfg.HotFmtFuncs, sel.Sel.Name) {
			report(call.Pos(), "fmt.%s in hotpath function %s allocates (formatting plus argument boxing)", sel.Sel.Name, fn)
			return
		}
	}
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing when T is an interface.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(pkg, call.Args[0]) {
			report(call.Pos(), "conversion to %s in hotpath function %s boxes a concrete value into an interface", tv.Type.String(), fn)
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return // builtin or untypeable
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			slice, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isBoxingParam(pt) && boxes(pkg, arg) {
			report(arg.Pos(), "argument boxes %s into %s in hotpath function %s",
				typeString(pkg, arg), pt.String(), fn)
		}
	}
}

// isBoxingParam reports whether passing a concrete value for a parameter
// of type pt allocates: pt is an interface (but not a type parameter,
// which instantiates concretely).
func isBoxingParam(pt types.Type) bool {
	if _, isTP := pt.(*types.TypeParam); isTP {
		return false
	}
	return types.IsInterface(pt)
}

// boxes reports whether arg is a concrete (non-interface, non-nil) value,
// i.e. converting it to an interface stores it in a new allocation.
func boxes(pkg *Package, arg ast.Expr) bool {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if _, isTP := t.(*types.TypeParam); isTP {
		return false
	}
	return !types.IsInterface(t)
}

func typeString(pkg *Package, e ast.Expr) string {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "value"
}
