package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// spawnPass is goroutine-leak hygiene for the packages in
// Config.SpawnScope (the concurrent runtime/wire/harness/cmd layers, where
// goroutines outlive requests and a leak accumulates). Every `go`
// statement there must show its stop path at or near the spawn site:
//
//   - a WaitGroup Add call earlier in the spawning function (the
//     repo-wide wg.Add(1) / go / defer wg.Done() idiom), or
//   - a spawned body — the function literal, or the body of a
//     same-package named callee — that visibly terminates: it receives
//     from a stop/done channel (Config.SpawnStopNames, which also covers
//     <-ctx.Done()), ranges over a channel (the range ends when the
//     producer closes it), or calls Done on a WaitGroup.
//
// A spawn whose lifecycle is managed some other way carries
// //gblint:spawn <reason> on its line or the line above; the reason is
// mandatory — a bare directive is its own finding, so suppressions stay
// auditable. WaitGroup and channel identification uses type information
// when present and falls back to identifier naming (wg, stop, done, ...),
// so conventionally named code lints identically without export data.
type spawnPass struct{}

func (spawnPass) Name() string { return PassSpawn }

func (spawnPass) Check(cfg *Config, pkg *Package, report Reporter) {
	if !matchAny(cfg.SpawnScope, pkg.Path) {
		return
	}
	// Named function/method bodies, for one-level callee lookup.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = fd
			}
		}
	}
	for _, f := range pkg.Files {
		dirs := spawnDirectives(pkg, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				line := pkg.Fset.Position(gs.Pos()).Line
				for _, l := range []int{line, line - 1} {
					if reason, ok := dirs[l]; ok {
						if reason == "" {
							report(gs.Pos(), "//gblint:spawn needs a reason explaining how this goroutine stops")
						}
						return true
					}
				}
				if wgAddBefore(pkg, fd, gs) {
					return true
				}
				if body := spawnedBody(gs, decls); body != nil && hasStopPath(cfg, pkg, body) {
					return true
				}
				report(gs.Pos(), "goroutine has no visible stop path: add a WaitGroup before the spawn, give the body a stop/done channel, or annotate //gblint:spawn <reason>")
				return true
			})
		}
	}
}

// spawnDirectives indexes //gblint:spawn directives of f by line.
func spawnDirectives(pkg *Package, f *ast.File) map[int]string {
	dirs := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if reason, ok := directive(c.Text, "spawn"); ok {
				dirs[pkg.Fset.Position(c.Pos()).Line] = reason
			}
		}
	}
	return dirs
}

// wgAddBefore reports whether fd calls Add on a WaitGroup before the
// spawn — the Add/go/Done idiom, whose Wait is the stop path.
func wgAddBefore(pkg *Package, fd *ast.FuncDecl, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Add" && isWaitGroupish(pkg, sel.X) {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroupish reports whether e is a sync.WaitGroup, by type when
// resolvable and by naming convention otherwise.
func isWaitGroupish(pkg *Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if obj := named.Obj(); obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				return true
			}
		}
	}
	s := strings.ToLower(exprString(e))
	return strings.Contains(s, "wg") || strings.Contains(s, "waitgroup")
}

// spawnedBody resolves the spawned function's body: a literal's own body,
// or the body of a same-package function/method named by the call.
func spawnedBody(gs *ast.GoStmt, decls map[string]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fd := decls[fun.Name]; fd != nil {
			return fd.Body
		}
	case *ast.SelectorExpr:
		if fd := decls[fun.Sel.Name]; fd != nil {
			return fd.Body
		}
	}
	return nil
}

// hasStopPath reports whether body visibly terminates: a receive from a
// stop-named channel (covering <-ctx.Done()), a range over a channel, or
// a WaitGroup Done call.
func hasStopPath(cfg *Config, pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && stopish(cfg, exprString(n.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if stopish(cfg, exprString(n.X)) || isChannelType(pkg, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroupish(pkg, sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

func stopish(cfg *Config, rendered string) bool {
	s := strings.ToLower(rendered)
	for _, name := range cfg.SpawnStopNames {
		if strings.Contains(s, name) {
			return true
		}
	}
	return false
}

func isChannelType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}
