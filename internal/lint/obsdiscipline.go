package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// obsPass enforces the observability subsystem's two API contracts:
//
//  1. Nil-receiver no-op discipline. Instruments are pointers whose
//     methods are documented no-ops on a nil receiver, so disabled
//     observability costs nothing at call sites. The contract is
//     type-level: once any exported pointer-receiver method of a type
//     guards `if x == nil`, every exported pointer-receiver method of
//     that type must be nil-safe — either by guarding before it touches
//     the receiver, or by only calling other nil-safe methods on it
//     (method calls on a nil pointer are legal; dereferences are not).
//     A single unguarded method is a latent panic on the disabled path.
//
//  2. Single registration. Every metric name is registered (via
//     Registry.Counter/Gauge/Histogram with a literal name) at exactly
//     one call site across the repository, so two subsystems cannot
//     silently collide on a name. Registration is idempotent at runtime;
//     this check keeps the *source* authoritative about who owns a name.
//     Dynamically built names (non-literal first argument) are exempt.
//
// Check 1 runs on the package matching Config.ObsPackage; check 2
// aggregates call sites across every linted package and reports in
// Finish.
type obsPass struct {
	// regs maps metric name -> registration call sites, across packages.
	regs map[string][]token.Pos
}

func newObsPass() *obsPass { return &obsPass{regs: map[string][]token.Pos{}} }

func (*obsPass) Name() string { return PassObs }

func (p *obsPass) Check(cfg *Config, pkg *Package, report Reporter) {
	if matchPath(cfg.ObsPackage, pkg.Path) {
		checkNilGuards(pkg, report)
	}
	p.collectRegistrations(cfg, pkg)
}

// --- check 1: nil-receiver discipline ---

// method is the analysis record for one pointer-receiver method.
type method struct {
	decl     *ast.FuncDecl
	typeName string
	recvObj  types.Object // receiver variable, nil without type info
	recvName string
	// guarded: a top-level `if recv == nil { return }` appears before
	// any statement that uses the receiver.
	guarded bool
	// calls are the names of same-type methods invoked directly on the
	// receiver; other receiver uses set deref.
	calls []string
	deref bool
}

func checkNilGuards(pkg *Package, report Reporter) {
	byType := map[string][]*method{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			star, ok := fd.Recv.List[0].Type.(*ast.StarExpr)
			if !ok {
				continue // value receiver: cannot be nil
			}
			tn, ok := receiverTypeName(star.X)
			if !ok {
				continue
			}
			m := &method{decl: fd, typeName: tn}
			if names := fd.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
				m.recvName = names[0].Name
				m.recvObj = pkg.Info.Defs[names[0]]
			}
			m.analyze(pkg)
			byType[tn] = append(byType[tn], m)
		}
	}
	for _, ms := range byType {
		// The nil-safety contract is claimed by any guarded exported
		// method.
		claimed := false
		for _, m := range ms {
			if m.guarded && m.decl.Name.IsExported() {
				claimed = true
				break
			}
		}
		if !claimed {
			continue
		}
		safe := nilSafeFixpoint(ms)
		for _, m := range ms {
			if !m.decl.Name.IsExported() || safe[m.decl.Name.Name] {
				continue
			}
			report(m.decl.Name.Pos(),
				"(*%s).%s dereferences its receiver without a nil guard, but other %s methods promise nil-receiver no-op behavior",
				m.typeName, m.decl.Name.Name, m.typeName)
		}
	}
}

func receiverTypeName(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return "", false
}

// analyze fills guarded, calls, and deref.
func (m *method) analyze(pkg *Package) {
	if m.recvName == "" {
		return // receiver unused: trivially safe
	}
	// Guard placement: scan top-level statements in order; the guard
	// must come before the first statement that touches the receiver.
	for _, stmt := range m.decl.Body.List {
		if isNilGuard(stmt, m.recvName, m.recvObj, pkg) {
			m.guarded = true
			break
		}
		if usesIdent(stmt, m.recvName, m.recvObj, pkg) {
			break
		}
	}
	if m.guarded {
		return
	}
	// Unguarded: classify every receiver use. Method calls on the
	// receiver are legal on nil pointers (deferred to the fixpoint);
	// nil comparisons are benign; anything else is a potential deref.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(m.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !m.isRecv(id, pkg) {
			return true
		}
		switch parent := parents[id].(type) {
		case *ast.BinaryExpr:
			if (parent.Op == token.EQL || parent.Op == token.NEQ) &&
				(isNilIdent(parent.X) || isNilIdent(parent.Y)) {
				return true // nil comparison
			}
		case *ast.SelectorExpr:
			if parent.X == id {
				if call, ok := parents[parent].(*ast.CallExpr); ok && call.Fun == parent {
					m.calls = append(m.calls, parent.Sel.Name)
					return true
				}
			}
		}
		m.deref = true
		return true
	})
}

func (m *method) isRecv(id *ast.Ident, pkg *Package) bool {
	if id.Name != m.recvName {
		return false
	}
	if m.recvObj != nil {
		return pkg.Info.Uses[id] == m.recvObj
	}
	return true // no type info: match by name (shadowing is tolerated noise)
}

// isNilGuard matches `if recv == nil { ...return }` including guards with
// extra "||" disjuncts (`if c == nil || d < 0 { return }`).
func isNilGuard(stmt ast.Stmt, recvName string, recvObj types.Object, pkg *Package) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Body == nil || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	return condHasNilCheck(ifs.Cond, recvName, recvObj, pkg)
}

func condHasNilCheck(e ast.Expr, recvName string, recvObj types.Object, pkg *Package) bool {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.LOR {
			return condHasNilCheck(e.X, recvName, recvObj, pkg) ||
				condHasNilCheck(e.Y, recvName, recvObj, pkg)
		}
		if e.Op != token.EQL {
			return false
		}
		return (isRecvIdent(e.X, recvName, recvObj, pkg) && isNilIdent(e.Y)) ||
			(isRecvIdent(e.Y, recvName, recvObj, pkg) && isNilIdent(e.X))
	case *ast.ParenExpr:
		return condHasNilCheck(e.X, recvName, recvObj, pkg)
	}
	return false
}

func isRecvIdent(e ast.Expr, recvName string, recvObj types.Object, pkg *Package) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != recvName {
		return false
	}
	if recvObj != nil {
		return pkg.Info.Uses[id] == recvObj
	}
	return true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func usesIdent(n ast.Node, name string, obj types.Object, pkg *Package) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if obj == nil || pkg.Info.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// nilSafeFixpoint computes which methods are nil-safe: guarded methods
// are, and a method whose receiver uses are only calls to nil-safe
// methods (no dereferences) inherits safety. Cycles of unguarded methods
// stay unsafe.
func nilSafeFixpoint(ms []*method) map[string]bool {
	safe := map[string]bool{}
	byName := map[string]*method{}
	for _, m := range ms {
		byName[m.decl.Name.Name] = m
		if m.guarded || m.recvName == "" {
			safe[m.decl.Name.Name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, m := range ms {
			name := m.decl.Name.Name
			if safe[name] || m.deref {
				continue
			}
			ok := true
			for _, callee := range m.calls {
				if _, known := byName[callee]; !known {
					// Promoted/embedded or interface method: assume the
					// worst.
					ok = false
					break
				}
				if !safe[callee] {
					ok = false
					break
				}
			}
			if ok {
				safe[name] = true
				changed = true
			}
		}
	}
	return safe
}

// --- check 2: single metric registration ---

var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// collectRegistrations records literal-name Registry.Counter/Gauge/
// Histogram call sites. Receiver identification requires type info (a
// *Registry of the obs package); without it the call is skipped, so
// snapshot readers with the same method names never false-positive.
func (p *obsPass) collectRegistrations(cfg *Config, pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			named := namedOf(sig.Recv().Type())
			if named == nil || named.Obj().Name() != "Registry" ||
				named.Obj().Pkg() == nil || !matchPath(cfg.ObsPackage, named.Obj().Pkg().Path()) {
				return true
			}
			name := lit.Value[1 : len(lit.Value)-1]
			p.regs[name] = append(p.regs[name], lit.Pos())
			return true
		})
	}
}

func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// Finish reports metric names registered at more than one call site.
func (p *obsPass) Finish(cfg *Config, report Reporter) {
	names := make([]string, 0, len(p.regs))
	for n := range p.regs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sites := p.regs[n]
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		for _, pos := range sites[1:] {
			report(pos, "metric %q is registered at %d call sites: register each name exactly once and share the instrument", n, len(sites))
		}
	}
}
