package lint

import (
	"go/ast"
	"go/types"
)

// determinismPass enforces the simulation determinism contract on the
// packages in Config.DetScope: every run must be a pure function of its
// configuration and seed, because the parity tests and the benchmark
// regression gate compare runs byte-for-byte. It flags
//
//   - wall-clock reads (time.Now and friends, per Config.DetTimeFuncs);
//   - the global math/rand source (package-level rand.Intn etc.; seeded
//     rand.New(rand.NewSource(seed)) generators are the sanctioned form);
//   - `range` over a map whose body feeds ordered output — appends,
//     channel sends, or calls to emitting sinks (Config.OrderedSinks) —
//     since map iteration order would leak into the event stream;
//   - goroutine spawns outside the functions named in Config.DetGoAllowed
//     (the harness's ParMap, whose merge order is deterministic).
//
// Map detection needs type information; without it that sub-check is
// skipped (never false-positives).
type determinismPass struct{}

func (determinismPass) Name() string { return PassDeterminism }

// randTypeNames are math/rand type names, never flaggable (they carry no
// state); needed only when type information is unavailable.
var randTypeNames = map[string]bool{"Rand": true, "Source": true, "Source64": true, "Zipf": true}

func (determinismPass) Check(cfg *Config, pkg *Package, report Reporter) {
	if !matchAny(cfg.DetScope, pkg.Path) {
		return
	}
	for _, f := range pkg.Files {
		imports := fileImports(f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			goAllowed := containsStr(cfg.DetGoAllowed, fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if !goAllowed {
						report(n.Pos(), "goroutine spawned outside the sanctioned %v: in-scope packages schedule work through the deterministic event loop or ParMap", cfg.DetGoAllowed)
					}
				case *ast.CallExpr:
					checkDetCall(cfg, pkg, imports, n, report)
				case *ast.RangeStmt:
					checkMapRange(cfg, pkg, n, report)
				}
				return true
			})
		}
	}
}

// checkDetCall flags wall-clock and global-rand calls.
func checkDetCall(cfg *Config, pkg *Package, imports map[string]string, call *ast.CallExpr, report Reporter) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	path, ok := selectorPackage(pkg, imports, sel)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch path {
	case "time":
		if containsStr(cfg.DetTimeFuncs, name) {
			report(call.Pos(), "time.%s reads the wall clock: simulated time must come from the event loop so runs are a pure function of seed", name)
		}
	case "math/rand", "math/rand/v2":
		if containsStr(cfg.DetRandAllowed, name) {
			return
		}
		if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
			if _, isType := obj.(*types.TypeName); isType {
				return
			}
		} else if randTypeNames[name] {
			return
		}
		report(call.Pos(), "rand.%s draws from the global math/rand source: use a seeded rand.New(rand.NewSource(seed)) generator", name)
	}
}

// checkMapRange flags map iteration whose body emits into ordered output.
func checkMapRange(cfg *Config, pkg *Package, r *ast.RangeStmt, report Reporter) {
	tv, ok := pkg.Info.Types[r.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(r.Pos(), "map iteration sends on a channel: map order is nondeterministic, so the receive order differs between runs")
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				report(r.Pos(), "map iteration appends to a slice: map order is nondeterministic, so the slice order differs between runs (collect keys, sort, then iterate)")
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && containsStr(cfg.OrderedSinks, sel.Sel.Name) {
				report(r.Pos(), "map iteration calls %s, an ordered-output sink: map order is nondeterministic (collect keys, sort, then iterate)", sel.Sel.Name)
				return false
			}
		}
		return true
	})
}

// fileImports maps the local import names of f to import paths.
func fileImports(f *ast.File) map[string]string {
	m := map[string]string{}
	for _, imp := range f.Imports {
		path := imp.Path.Value
		path = path[1 : len(path)-1]
		name := path
		if i := lastSlash(path); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// selectorPackage resolves sel.X to an imported package path, via type
// info when available and the file's import table otherwise. The second
// result is false when sel.X is not a package name (a field or variable).
func selectorPackage(pkg *Package, imports map[string]string, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return "", false
		}
		return pn.Imported().Path(), true
	}
	path, ok := imports[id.Name]
	return path, ok
}
