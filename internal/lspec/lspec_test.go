package lspec

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/lamport"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/tme"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

func raFactory(id, n int) tme.Node      { return ra.New(id, n) }
func lamportFactory(id, n int) tme.Node { return lamport.New(id, n) }

// Fault-free runs of both reference programs satisfy every monitored
// property — the operational content of Theorems 9, 10 (everywhere
// implementation of Lspec) and Theorem 5 (Lspec ⇒ TME_Spec).
func TestFaultFreeRunsAreClean(t *testing.T) {
	for name, factory := range map[string]func(int, int) tme.Node{
		"ra": raFactory, "lamport": lamportFactory,
	} {
		for seed := int64(0); seed < 5; seed++ {
			s := sim.New(sim.Config{N: 4, Seed: seed, NewNode: factory, Workload: true, MaxRequests: 8})
			m := New(4)
			s.SetObserver(m.AsObserver())
			s.Run(20000)
			if !m.Clean() {
				t.Errorf("%s seed %d: violations=%v fcfs=%v starved=%v stuck=%v openReplies=%d",
					name, seed, m.Violations(), m.FCFSViolations(),
					m.StarvedProcesses(), m.StuckEaters(), m.OpenReplyObligations())
			}
			if m.LastViolationTime() != -1 {
				t.Errorf("%s seed %d: LastViolationTime = %d, want -1",
					name, seed, m.LastViolationTime())
			}
		}
	}
}

func TestInvariantIPredicateDirect(t *testing.T) {
	mk := func(localJK, reqK ltime.Timestamp) sim.GlobalState {
		g := sim.GlobalState{Nodes: make([]tme.SpecState, 2)}
		for i := range g.Nodes {
			g.Nodes[i] = tme.SpecState{
				ID:       i,
				Phase:    tme.Thinking,
				Local:    make([]ltime.Timestamp, 2),
				Received: make([]bool, 2),
			}
		}
		g.Nodes[0].Local[1] = localJK
		g.Nodes[1].REQ = reqK
		return g
	}
	// Local copy behind the truth: fine.
	if !InvariantI(mk(ltime.Timestamp{Clock: 1, PID: 1}, ltime.Timestamp{Clock: 5, PID: 1})) {
		t.Error("I rejected a lagging copy")
	}
	// Equal: fine.
	ts := ltime.Timestamp{Clock: 3, PID: 1}
	if !InvariantI(mk(ts, ts)) {
		t.Error("I rejected an exact copy")
	}
	// Copy ahead of the truth: violation.
	if InvariantI(mk(ltime.Timestamp{Clock: 9, PID: 1}, ltime.Timestamp{Clock: 2, PID: 1})) {
		t.Error("I accepted a leading copy")
	}
}

// A forged local copy that leads the truth must be flagged by the invariant
// monitor at the moment of corruption.
func TestInvariantIViolationDetected(t *testing.T) {
	s := sim.New(sim.Config{N: 2, Seed: 3, NewNode: raFactory})
	m := New(2)
	s.SetObserver(m.AsObserver())
	s.At(5, func(s *sim.Sim) {
		s.Node(0).(tme.Corruptible).Corrupt(tme.Corruption{
			LocalREQ: map[int]ltime.Timestamp{1: {Clock: 999, PID: 1}},
		})
	})
	// Need at least one event after the corruption for the observer to see
	// it (the corruption callback itself is an event, so it is observed).
	s.Run(20)
	found := false
	for _, v := range m.Violations() {
		if v.V.Op == "invariant" && v.Time >= 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("invariant-I violation not detected: %v", m.Violations())
	}
}

func TestME1ViolationDetected(t *testing.T) {
	s := sim.New(sim.Config{N: 2, Seed: 4, NewNode: raFactory})
	m := New(2)
	s.SetObserver(m.AsObserver())
	s.At(5, func(s *sim.Sim) {
		for i := 0; i < 2; i++ {
			s.Node(i).(tme.Corruptible).Corrupt(tme.Corruption{Phase: tme.Eating})
		}
	})
	s.Run(20)
	found := false
	for _, v := range m.Violations() {
		if v.Time >= 5 {
			found = true
		}
	}
	if !found {
		t.Error("two simultaneous eaters not flagged")
	}
	if got := m.StuckEaters(); len(got) != 2 {
		t.Errorf("StuckEaters = %v, want both", got)
	}
}

func TestStarvationDetected(t *testing.T) {
	// Deadlock scenario: requests dropped, no wrapper — ME2 obligations
	// stay open.
	s := sim.New(sim.Config{N: 2, Seed: 5, NewNode: raFactory})
	m := New(2)
	s.SetObserver(m.AsObserver())
	s.Request(0)
	s.Request(1)
	s.At(1, func(s *sim.Sim) { fault.DropAllInFlight(s) })
	s.Run(500)
	starved := m.StarvedProcesses()
	if len(starved) != 2 {
		t.Errorf("StarvedProcesses = %v, want both", starved)
	}
	if m.Clean() {
		t.Error("deadlocked run reported clean")
	}
}

// Convergence measurement: with the wrapper, violations stop and the last
// violation time is finite; liveness obligations drain.
func TestConvergenceAfterBurst(t *testing.T) {
	s := sim.New(sim.Config{
		N:           3,
		Seed:        6,
		NewNode:     raFactory,
		Workload:    true,
		MaxRequests: 10, // bounded workload: the run quiesces, so open
		// liveness obligations at the horizon are genuine starvation
		NewWrapper: func(int) wrapper.Level2 {
			return wrapper.NewTimed(5)
		},
	})
	m := New(3)
	s.SetObserver(m.AsObserver())
	in := fault.NewInjector(7, fault.DefaultMix, fault.Options{})
	in.Schedule(s, []int64{100}, 10)
	s.Run(20000)
	if starved := m.StarvedProcesses(); len(starved) != 0 {
		t.Fatalf("starved after convergence: %v", starved)
	}
	if stuck := m.StuckEaters(); len(stuck) != 0 {
		t.Fatalf("stuck eaters after convergence: %v", stuck)
	}
	last := m.LastViolationTime()
	if last >= 9000 {
		t.Fatalf("violations continued to t=%d — no convergence", last)
	}
}

func TestSummaryAggregates(t *testing.T) {
	s := sim.New(sim.Config{N: 2, Seed: 10, NewNode: raFactory})
	m := New(2)
	s.SetObserver(m.AsObserver())
	s.At(3, func(s *sim.Sim) {
		s.Node(0).(tme.Corruptible).Corrupt(tme.Corruption{
			LocalREQ: map[int]ltime.Timestamp{1: {Clock: 50, PID: 1}},
		})
	})
	s.At(5, func(s *sim.Sim) {
		s.Node(1).(tme.Corruptible).Corrupt(tme.Corruption{
			LocalREQ: map[int]ltime.Timestamp{0: {Clock: 60, PID: 0}},
		})
	})
	// Give the observer activity to snapshot on.
	s.Request(0)
	s.Run(50)
	sum := m.Summary()
	inv, ok := sum["invariant"]
	if !ok || inv.Count == 0 {
		t.Fatalf("summary missing invariant violations: %v", sum)
	}
	if inv.Last < 3 {
		t.Errorf("invariant Last = %d", inv.Last)
	}
	total := 0
	for _, st := range sum {
		total += st.Count
	}
	if total != len(m.Violations())+len(m.FCFSViolations()) {
		t.Errorf("summary total %d ≠ violations %d", total, len(m.Violations()))
	}
}

func TestTimedViolationString(t *testing.T) {
	s := sim.New(sim.Config{N: 2, Seed: 8, NewNode: raFactory})
	m := New(2)
	s.SetObserver(m.AsObserver())
	s.At(0, func(s *sim.Sim) {
		s.Node(0).(tme.Corruptible).Corrupt(tme.Corruption{Phase: tme.Phase(9)})
	})
	s.Run(5)
	if len(m.Violations()) == 0 {
		t.Fatal("structural violation not recorded")
	}
	if m.Violations()[0].String() == "" {
		t.Error("empty TimedViolation string")
	}
}

// FCFS knowing-overtake detector: forge node 1's state so it enters while
// it provably knows node 0's earlier pending request.
func TestFCFSKnowingOvertakeDetected(t *testing.T) {
	s := sim.New(sim.Config{N: 2, Seed: 9, NewNode: raFactory})
	m := New(2)
	s.SetObserver(m.AsObserver())
	// Node 0 requests first; its request reaches node 1.
	s.Request(0)
	s.At(20, func(s *sim.Sim) {
		// By now node 1 knows 0's request. Forge node 1 hungry with a
		// later REQ but a local copy of 0 that wrongly permits entry.
		req := ltime.Timestamp{Clock: 50, PID: 1}
		s.Node(1).(tme.Corruptible).Corrupt(tme.Corruption{
			Phase: tme.Hungry,
			REQ:   &req,
			LocalREQ: map[int]ltime.Timestamp{
				0: {Clock: 60, PID: 0}, // forged: "0 is later than me"
			},
		})
	})
	// Wait: node 0 is eating by t=20 (solo entry) — release it first so
	// it is hungry again when 1 overtakes. Simpler: hold node 0 hungry by
	// dropping its requests.
	s.Run(1000)
	// This scenario may or may not produce the exact interleaving; the
	// precise unit check is below.
	t.Log("fcfs violations:", m.FCFSViolations())
}

// Direct unit test of the FCFS detector on hand-built snapshots.
func TestFCFSDetectorUnit(t *testing.T) {
	m := New(2)
	reqJ := ltime.Timestamp{Clock: 1, PID: 0}
	reqK := ltime.Timestamp{Clock: 5, PID: 1}
	mk := func(phaseK tme.Phase) sim.GlobalState {
		g := sim.GlobalState{Nodes: make([]tme.SpecState, 2)}
		g.Nodes[0] = tme.SpecState{
			ID: 0, Phase: tme.Hungry, REQ: reqJ,
			Local: make([]ltime.Timestamp, 2), Received: make([]bool, 2),
		}
		g.Nodes[1] = tme.SpecState{
			ID: 1, Phase: phaseK, REQ: reqK,
			Local: []ltime.Timestamp{reqJ, {}}, Received: make([]bool, 2),
		}
		return g
	}
	m.Observe(mk(tme.Hungry))
	m.Observe(mk(tme.Eating)) // k enters knowing j's earlier request
	if len(m.FCFSViolations()) != 1 {
		t.Fatalf("FCFS violations = %v, want exactly 1", m.FCFSViolations())
	}
}
