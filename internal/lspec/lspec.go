// Package lspec realizes the paper's two specifications as executable
// monitors over simulation snapshots:
//
//   - Lspec (DSN 2001 §3.2) — the local everywhere specification for TME:
//     Structural, Flow, CS, Request, Reply, CS Entry, CS Release, Timestamp
//     and Communication Specs, plus the invariant I of Theorem A.1:
//
//     (I)  ∀ j,k, j≠k :  j.REQ_k = REQ_k  ∨  j.REQ_k lt REQ_k
//
//   - TME_Spec (§3.1) — ME1 mutual exclusion, ME2 starvation freedom, ME3
//     first-come first-serve.
//
// Monitors are how stabilization is *measured*: during fault bursts they
// record violations with their virtual times; convergence time is the last
// violation time after the last fault (plus liveness obligations draining).
// Theorem 5 (Lspec ⇒ TME_Spec) becomes the testable statement that runs
// with no Lspec violations have no TME_Spec violations.
package lspec

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/spec"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// TimedViolation is a spec violation stamped with virtual time.
type TimedViolation struct {
	Time int64
	V    *spec.Violation
}

func (t TimedViolation) String() string {
	return fmt.Sprintf("t=%d %v", t.Time, t.V)
}

// Monitors checks a full simulation run against Lspec and TME_Spec.
// Construct with New, feed every snapshot to Observe (typically from a
// sim.Observer), and read the verdicts at the end.
type Monitors struct {
	n     int
	suite *spec.Suite[sim.GlobalState]
	// me2 tracks h.j ↦ e.j per process (liveness: open obligations at the
	// end of a run are starvation).
	me2 []*spec.LeadsToMonitor[sim.GlobalState]
	// csTransient tracks e.j ↦ ¬e.j per process (CS Spec).
	csTransient []*spec.LeadsToMonitor[sim.GlobalState]
	// replyPending tracks Reply Spec: a pending earlier request is
	// eventually discharged, per ordered pair.
	replyPending []*spec.LeadsToMonitor[sim.GlobalState]

	violations []TimedViolation
	// prevPhases retains the previous observation's client phases — all
	// checkFCFS needs from the prior state — so observing costs no heap
	// copy of the snapshot.
	prevPhases []tme.Phase
	havePrev   bool
	obs        int
	// fcfs counts knowing-overtake events (operational ME3 violations).
	fcfsViolations []TimedViolation

	// observability (nil fields when not instrumented): every verdict
	// becomes a first-class violation event with convergence bookkeeping.
	otel struct {
		bundle *obs.Obs
		total  *obs.Counter
		byOp   map[string]*obs.Counter
		trace  *obs.Trace
		conv   *obs.Convergence
	}
}

// Instrument publishes every violation verdict to o: a per-operator
// counter, the convergence tracker (so convergence time falls out of the
// snapshot), and an EvViolation trace event. A nil o is a no-op.
func (m *Monitors) Instrument(o *obs.Obs) {
	if o == nil {
		return
	}
	m.otel.bundle = o
	m.otel.total = o.Registry().Counter("spec_violations_total", "spec-monitor violations (Lspec + TME_Spec + ME3)")
	m.otel.byOp = make(map[string]*obs.Counter)
	m.otel.trace = o.Tracer()
	m.otel.conv = o.Convergence()
}

// record publishes one violation verdict.
func (m *Monitors) record(v TimedViolation) {
	if m.otel.bundle == nil {
		return
	}
	m.otel.total.Inc()
	c, ok := m.otel.byOp[v.V.Op]
	if !ok {
		c = m.otel.bundle.Registry().Counter("spec_violations_"+sanitize(v.V.Op)+"_total",
			"violations of the "+v.V.Op+" operator")
		m.otel.byOp[v.V.Op] = c
	}
	c.Inc()
	m.otel.conv.RecordViolation(v.Time)
	m.otel.trace.Emit(obs.Event{Time: v.Time, Kind: obs.EvViolation, A: -1, B: -1, Detail: v.V.Op})
}

// sanitize maps an operator name onto the metric-name alphabet.
func sanitize(s string) string {
	out := []byte(s)
	for i, b := range out {
		switch {
		case b >= 'a' && b <= 'z', b >= '0' && b <= '9', b == '_':
		case b >= 'A' && b <= 'Z':
			out[i] = b + ('a' - 'A')
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// New returns monitors for an n-process system.
func New(n int) *Monitors {
	m := &Monitors{n: n, suite: spec.NewSuite[sim.GlobalState]()}

	// Structural Spec: every phase is exactly one of {t,h,e}.
	m.suite.Add(spec.NewInvariant("structural", func(g sim.GlobalState) bool {
		for _, s := range g.Nodes {
			if !s.Phase.Valid() {
				return false
			}
		}
		return true
	}))

	// ME1 (TME_Spec): at most one process eats.
	m.suite.Add(spec.NewInvariant("ME1", func(g sim.GlobalState) bool {
		return g.NumEating() <= 1
	}))

	// Invariant I of Theorem A.1: local copies never lead the truth.
	m.suite.Add(spec.NewInvariant("invariant-I", InvariantI))

	// Timestamp Spec: ts.j never decreases (checked pairwise between
	// consecutive snapshots via an unless monitor over the previous-state
	// trick below; here as a stable-difference check).
	for j := 0; j < n; j++ {
		j := j
		m.suite.Add(&monotoneTS{name: fmt.Sprintf("timestamp.%d", j), j: j})
	}

	// Flow Spec: t unless h, h unless e, e unless t — per process.
	for j := 0; j < n; j++ {
		j := j
		phaseIs := func(p tme.Phase) spec.Predicate[sim.GlobalState] {
			return func(g sim.GlobalState) bool { return g.Nodes[j].Phase == p }
		}
		m.suite.Add(spec.NewUnless(fmt.Sprintf("flow.t.%d", j), phaseIs(tme.Thinking), phaseIs(tme.Hungry)))
		m.suite.Add(spec.NewUnless(fmt.Sprintf("flow.h.%d", j), phaseIs(tme.Hungry), phaseIs(tme.Eating)))
		m.suite.Add(spec.NewUnless(fmt.Sprintf("flow.e.%d", j), phaseIs(tme.Eating), phaseIs(tme.Thinking)))
	}

	// Request Spec (safety half): while hungry, REQ_j is unchanged.
	for j := 0; j < n; j++ {
		j := j
		m.suite.Add(&stableREQ{name: fmt.Sprintf("request.req-stable.%d", j), j: j})
	}

	// CS Release Spec: while thinking, REQ_j equals ts.j.
	for j := 0; j < n; j++ {
		j := j
		m.suite.Add(spec.NewInvariant(fmt.Sprintf("release.req-tracks-ts.%d", j),
			func(g sim.GlobalState) bool {
				s := g.Nodes[j]
				if s.Phase != tme.Thinking || !s.HasTS {
					return true
				}
				return s.REQ == s.TS
			}))
	}

	// CS Spec (liveness): e.j ↦ ¬e.j.
	for j := 0; j < n; j++ {
		j := j
		lt := spec.NewLeadsToNot(fmt.Sprintf("cs-transient.%d", j),
			func(g sim.GlobalState) bool { return g.Nodes[j].Phase == tme.Eating })
		m.csTransient = append(m.csTransient, lt)
		m.suite.Add(lt)
	}

	// ME2 (liveness): h.j ↦ e.j.
	for j := 0; j < n; j++ {
		j := j
		lt := spec.NewLeadsTo(fmt.Sprintf("ME2.%d", j),
			func(g sim.GlobalState) bool { return g.Nodes[j].Phase == tme.Hungry },
			func(g sim.GlobalState) bool { return g.Nodes[j].Phase == tme.Eating })
		m.me2 = append(m.me2, lt)
		m.suite.Add(lt)
	}

	// Reply Spec (liveness): received(j.REQ_k) ∧ j.REQ_k lt REQ_j — a
	// pending request that is earlier than ours — is eventually
	// discharged (flag cleared or our request resolved).
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			if j == k {
				continue
			}
			j, k := j, k
			p := func(g sim.GlobalState) bool {
				s := &g.Nodes[j]
				return s.Received[k] && s.Local[k].Less(s.REQ)
			}
			lt := spec.NewLeadsToNot(fmt.Sprintf("reply.%d.%d", j, k), p)
			m.replyPending = append(m.replyPending, lt)
			m.suite.Add(lt)
		}
	}

	return m
}

// InvariantI is the paper's invariant I as a predicate over a snapshot:
// every local copy equals or precedes the copied process's current REQ.
func InvariantI(g sim.GlobalState) bool {
	for j := range g.Nodes {
		for k := range g.Nodes {
			if j == k {
				continue
			}
			local := g.Nodes[j].Local[k]
			if !local.LessEq(g.Nodes[k].REQ) {
				return false
			}
		}
	}
	return true
}

// Observe feeds the next snapshot to all monitors.
//
//gblint:hotpath
func (m *Monitors) Observe(g sim.GlobalState) {
	before := len(m.suite.Violations())
	m.suite.Observe(g)
	for _, v := range m.suite.Violations()[before:] {
		tv := TimedViolation{Time: g.Time, V: v}
		m.violations = append(m.violations, tv)
		m.record(tv)
	}
	m.checkFCFS(g)
	if cap(m.prevPhases) < len(g.Nodes) {
		m.prevPhases = make([]tme.Phase, len(g.Nodes))
	}
	m.prevPhases = m.prevPhases[:len(g.Nodes)]
	for i := range g.Nodes {
		m.prevPhases[i] = g.Nodes[i].Phase
	}
	m.havePrev = true
	m.obs++
}

// checkFCFS flags a "knowing overtake": process k transitions into eating
// while some hungry j holds an earlier request that k has recorded exactly
// (k.REQ_j = REQ_j). Recording j's request implies it causally preceded k's
// entry, so this is an operational ME3 violation.
func (m *Monitors) checkFCFS(g sim.GlobalState) {
	if !m.havePrev {
		return
	}
	for k := range g.Nodes {
		if g.Nodes[k].Phase != tme.Eating || m.prevPhases[k] == tme.Eating {
			continue
		}
		// k just entered.
		for j := range g.Nodes {
			if j == k || g.Nodes[j].Phase != tme.Hungry {
				continue
			}
			reqJ := g.Nodes[j].REQ
			if g.Nodes[k].Local[j] == reqJ && reqJ.Less(g.Nodes[k].REQ) {
				tv := TimedViolation{
					Time: g.Time,
					V: &spec.Violation{
						Op:    "ME3",
						Index: m.obs,
						Detail: fmt.Sprintf("process %d entered knowing %d's earlier request %s < %s",
							k, j, reqJ, g.Nodes[k].REQ),
					},
				}
				m.fcfsViolations = append(m.fcfsViolations, tv)
				m.record(tv)
			}
		}
	}
}

// AsObserver adapts the monitors to a sim.Observer. To keep monitoring
// affordable on long runs, snapshots are taken only after events that
// changed an activity counter (deliveries, client actions, sends) and at
// most once per virtual-time instant otherwise: repeated closed-guard
// wrapper ticks within one instant cannot have changed any node. State
// corruption between activity events is observed at the next observed
// event; violation times shift by at most one event.
//
// Snapshots are maintained incrementally: the simulator's dirty tracking
// tells the observer which processes changed and whether any channel was
// touched, so each observation re-reads only the changed parts instead of
// rebuilding the whole GlobalState. The observation stream is identical to
// AsFullSnapshotObserver's (proven by the monitor parity tests); only the
// per-event work differs.
func (m *Monitors) AsObserver() sim.Observer {
	lastActivity := -1
	lastTime := int64(-1)
	// Two rotating snapshot buffers: every monitor retains at most the
	// immediately previous state, so a buffer is never overwritten while
	// a monitor still reads it. Each buffer carries its own versions, so
	// delta updates account for everything that changed since *that*
	// buffer was last synchronized (two observations ago).
	var bufs [2]sim.GlobalState
	var vers [2]sim.SnapVersions
	cur := 0
	return func(s *sim.Sim) {
		mt := s.Metrics()
		activity := mt.Delivered + mt.Requests + mt.Releases +
			mt.ProgramMsgs + mt.WrapperMsgs + len(mt.Entries)
		if activity == lastActivity && s.Now() == lastTime {
			return
		}
		lastActivity, lastTime = activity, s.Now()
		s.SnapshotDeltaInto(&bufs[cur], &vers[cur])
		m.Observe(bufs[cur])
		cur = 1 - cur
	}
}

// AsFullSnapshotObserver is the reference observer: identical observation
// cadence to AsObserver, but every snapshot is rebuilt from scratch with
// SnapshotInto. It exists so the parity tests can prove the incremental
// path equivalent; production callers want AsObserver.
func (m *Monitors) AsFullSnapshotObserver() sim.Observer {
	lastActivity := -1
	lastTime := int64(-1)
	var bufs [2]sim.GlobalState
	cur := 0
	return func(s *sim.Sim) {
		mt := s.Metrics()
		activity := mt.Delivered + mt.Requests + mt.Releases +
			mt.ProgramMsgs + mt.WrapperMsgs + len(mt.Entries)
		if activity == lastActivity && s.Now() == lastTime {
			return
		}
		lastActivity, lastTime = activity, s.Now()
		s.SnapshotInto(&bufs[cur])
		m.Observe(bufs[cur])
		cur = 1 - cur
	}
}

// Violations returns all safety violations (Lspec + ME1) with times.
func (m *Monitors) Violations() []TimedViolation { return m.violations }

// FCFSViolations returns the operational ME3 violations with times.
func (m *Monitors) FCFSViolations() []TimedViolation { return m.fcfsViolations }

// Stat summarizes one operator's violations.
type Stat struct {
	// Count is the number of violations; Last the latest virtual time.
	Count int
	Last  int64
}

// Summary aggregates violations by operator ("invariant", "unless",
// "request", "timestamp", "ME3"), with counts and last occurrence times.
func (m *Monitors) Summary() map[string]Stat {
	out := make(map[string]Stat)
	add := func(op string, t int64) {
		e := out[op]
		e.Count++
		if t > e.Last {
			e.Last = t
		}
		out[op] = e
	}
	for _, v := range m.violations {
		add(v.V.Op, v.Time)
	}
	for _, v := range m.fcfsViolations {
		add(v.V.Op, v.Time)
	}
	return out
}

// LastViolationTime returns the virtual time of the last safety or FCFS
// violation, or -1 if the run was clean.
func (m *Monitors) LastViolationTime() int64 {
	last := int64(-1)
	for _, v := range m.violations {
		if v.Time > last {
			last = v.Time
		}
	}
	for _, v := range m.fcfsViolations {
		if v.Time > last {
			last = v.Time
		}
	}
	return last
}

// StarvedProcesses returns the ids whose ME2 obligation (h.j ↦ e.j) is
// still open — hungry at the end of the run with no subsequent entry.
func (m *Monitors) StarvedProcesses() []int {
	var out []int
	for j, lt := range m.me2 {
		if lt.Pending() > 0 {
			out = append(out, j)
		}
	}
	return out
}

// StuckEaters returns the ids whose CS Spec obligation (e.j ↦ ¬e.j) is
// still open at the end of the run.
func (m *Monitors) StuckEaters() []int {
	var out []int
	for j, lt := range m.csTransient {
		if lt.Pending() > 0 {
			out = append(out, j)
		}
	}
	return out
}

// OpenReplyObligations counts Reply Spec obligations still pending.
func (m *Monitors) OpenReplyObligations() int {
	total := 0
	for _, lt := range m.replyPending {
		if lt.Pending() > 0 {
			total++
		}
	}
	return total
}

// Clean reports whether the run satisfied every monitored property: no
// safety violations, no FCFS violations, and no open liveness obligations.
func (m *Monitors) Clean() bool {
	return len(m.violations) == 0 &&
		len(m.fcfsViolations) == 0 &&
		len(m.StarvedProcesses()) == 0 &&
		len(m.StuckEaters()) == 0 &&
		m.OpenReplyObligations() == 0
}

// monotoneTS checks Timestamp Spec: ts.j never decreases across snapshots.
// It retains only the previous ts.j — not the whole snapshot — so observing
// copies two words per state instead of a GlobalState.
type monotoneTS struct {
	name      string
	j         int
	have      bool
	lastTS    ltime.Timestamp
	lastHasTS bool
}

func (mt *monotoneTS) Name() string { return mt.name }
func (mt *monotoneTS) Pending() int { return 0 }

//gblint:hotpath
func (mt *monotoneTS) Observe(g sim.GlobalState) *spec.Violation {
	cur := &g.Nodes[mt.j]
	prevTS, prevHas, first := mt.lastTS, mt.lastHasTS, !mt.have
	mt.lastTS, mt.lastHasTS, mt.have = cur.TS, cur.HasTS, true
	if first || !prevHas || !cur.HasTS {
		return nil
	}
	if cur.TS.Less(prevTS) {
		//gblint:ignore hotpath violation path is cold; formatting only on failure
		return &spec.Violation{Op: "timestamp", Detail: fmt.Sprintf(
			"%s: ts regressed from %s to %s", mt.name, prevTS, cur.TS)}
	}
	return nil
}

// stableREQ checks the safety half of Request Spec / CS Entry Spec: while a
// process stays hungry, REQ_j does not change. Like monotoneTS it retains
// only the fields the next comparison needs.
type stableREQ struct {
	name      string
	j         int
	have      bool
	lastPhase tme.Phase
	lastREQ   ltime.Timestamp
}

func (sr *stableREQ) Name() string { return sr.name }
func (sr *stableREQ) Pending() int { return 0 }

//gblint:hotpath
func (sr *stableREQ) Observe(g sim.GlobalState) *spec.Violation {
	cur := &g.Nodes[sr.j]
	prevPhase, prevREQ, first := sr.lastPhase, sr.lastREQ, !sr.have
	sr.lastPhase, sr.lastREQ, sr.have = cur.Phase, cur.REQ, true
	if first {
		return nil
	}
	if prevPhase == tme.Hungry && cur.Phase == tme.Hungry && prevREQ != cur.REQ {
		//gblint:ignore hotpath violation path is cold; formatting only on failure
		return &spec.Violation{Op: "request", Detail: fmt.Sprintf(
			"%s: REQ changed from %s to %s while hungry", sr.name, prevREQ, cur.REQ)}
	}
	return nil
}

var (
	_ spec.Monitor[sim.GlobalState] = (*monotoneTS)(nil)
	_ spec.Monitor[sim.GlobalState] = (*stableREQ)(nil)
)
