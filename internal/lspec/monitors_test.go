package lspec

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/sim"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// mkState builds a 2-process snapshot with the given per-process phases,
// REQs and clocks.
func mkState(t int64, phases [2]tme.Phase, reqs [2]ltime.Timestamp, ts [2]ltime.Timestamp) sim.GlobalState {
	g := sim.GlobalState{Time: t, Nodes: make([]tme.SpecState, 2)}
	for i := range g.Nodes {
		g.Nodes[i] = tme.SpecState{
			ID:       i,
			Phase:    phases[i],
			REQ:      reqs[i],
			Local:    make([]ltime.Timestamp, 2),
			Received: make([]bool, 2),
			TS:       ts[i],
			HasTS:    true,
		}
	}
	return g
}

func reqAt(c uint64, pid int) ltime.Timestamp { return ltime.Timestamp{Clock: c, PID: pid} }

func countOp(vs []TimedViolation, op string) int {
	n := 0
	for _, v := range vs {
		if v.V.Op == op {
			n++
		}
	}
	return n
}

func TestFlowSpecMonitorCatchesIllegalTransition(t *testing.T) {
	m := New(2)
	// Process 0: hungry → thinking directly (h unless e violated).
	thinking := mkState(0,
		[2]tme.Phase{tme.Hungry, tme.Thinking},
		[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)},
		[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)})
	m.Observe(thinking)
	after := mkState(1,
		[2]tme.Phase{tme.Thinking, tme.Thinking},
		[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)},
		[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)})
	m.Observe(after)
	if countOp(m.Violations(), "unless") == 0 {
		t.Errorf("flow violation not caught: %v", m.Violations())
	}
}

func TestRequestSpecMonitorCatchesREQChangeWhileHungry(t *testing.T) {
	m := New(2)
	s1 := mkState(0,
		[2]tme.Phase{tme.Hungry, tme.Thinking},
		[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)},
		[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)})
	m.Observe(s1)
	s2 := mkState(1,
		[2]tme.Phase{tme.Hungry, tme.Thinking},
		[2]ltime.Timestamp{reqAt(9, 0), reqAt(0, 1)}, // REQ changed while hungry
		[2]ltime.Timestamp{reqAt(9, 0), reqAt(0, 1)})
	m.Observe(s2)
	if countOp(m.Violations(), "request") == 0 {
		t.Errorf("request violation not caught: %v", m.Violations())
	}
}

func TestTimestampSpecMonitorCatchesClockRegression(t *testing.T) {
	m := New(2)
	s1 := mkState(0,
		[2]tme.Phase{tme.Thinking, tme.Thinking},
		[2]ltime.Timestamp{reqAt(5, 0), reqAt(0, 1)},
		[2]ltime.Timestamp{reqAt(5, 0), reqAt(0, 1)})
	m.Observe(s1)
	s2 := mkState(1,
		[2]tme.Phase{tme.Thinking, tme.Thinking},
		[2]ltime.Timestamp{reqAt(2, 0), reqAt(0, 1)},
		[2]ltime.Timestamp{reqAt(2, 0), reqAt(0, 1)}) // clock went backwards
	m.Observe(s2)
	if countOp(m.Violations(), "timestamp") == 0 {
		t.Errorf("timestamp regression not caught: %v", m.Violations())
	}
}

func TestCSReleaseSpecMonitorCatchesStaleREQWhileThinking(t *testing.T) {
	m := New(2)
	g := mkState(0,
		[2]tme.Phase{tme.Thinking, tme.Thinking},
		[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)}, // REQ ≠ ts for process 0
		[2]ltime.Timestamp{reqAt(4, 0), reqAt(0, 1)})
	m.Observe(g)
	if countOp(m.Violations(), "invariant") == 0 {
		t.Errorf("CS Release violation not caught: %v", m.Violations())
	}
}

func TestStructuralSpecMonitorCatchesInvalidPhase(t *testing.T) {
	m := New(2)
	g := mkState(0,
		[2]tme.Phase{tme.Phase(7), tme.Thinking},
		[2]ltime.Timestamp{reqAt(0, 0), reqAt(0, 1)},
		[2]ltime.Timestamp{reqAt(0, 0), reqAt(0, 1)})
	m.Observe(g)
	if len(m.Violations()) == 0 {
		t.Error("invalid phase not caught")
	}
}

func TestCleanSequencePassesAllMonitors(t *testing.T) {
	m := New(2)
	// A legal little history: both thinking, 0 goes hungry, eats, thinks.
	states := []sim.GlobalState{
		mkState(0, [2]tme.Phase{tme.Thinking, tme.Thinking},
			[2]ltime.Timestamp{reqAt(0, 0), reqAt(0, 1)},
			[2]ltime.Timestamp{reqAt(0, 0), reqAt(0, 1)}),
		mkState(1, [2]tme.Phase{tme.Hungry, tme.Thinking},
			[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)},
			[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)}),
		mkState(2, [2]tme.Phase{tme.Eating, tme.Thinking},
			[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)},
			[2]ltime.Timestamp{reqAt(1, 0), reqAt(0, 1)}),
		mkState(3, [2]tme.Phase{tme.Thinking, tme.Thinking},
			[2]ltime.Timestamp{reqAt(2, 0), reqAt(0, 1)},
			[2]ltime.Timestamp{reqAt(2, 0), reqAt(0, 1)}),
	}
	for _, g := range states {
		m.Observe(g)
	}
	if len(m.Violations()) != 0 {
		t.Errorf("clean sequence flagged: %v", m.Violations())
	}
	if !m.Clean() {
		t.Errorf("Clean() = false: starved=%v stuck=%v open=%d",
			m.StarvedProcesses(), m.StuckEaters(), m.OpenReplyObligations())
	}
}

func TestReplyObligationAccounting(t *testing.T) {
	m := New(2)
	// Process 0 hungry with a pending EARLIER request from 1 that never
	// gets discharged.
	g := mkState(0,
		[2]tme.Phase{tme.Hungry, tme.Hungry},
		[2]ltime.Timestamp{reqAt(5, 0), reqAt(1, 1)},
		[2]ltime.Timestamp{reqAt(5, 0), reqAt(1, 1)})
	g.Nodes[0].Local[1] = reqAt(1, 1)
	g.Nodes[0].Received[1] = true
	m.Observe(g)
	if m.OpenReplyObligations() != 1 {
		t.Errorf("OpenReplyObligations = %d, want 1", m.OpenReplyObligations())
	}
	// Discharge it.
	g2 := mkState(1,
		[2]tme.Phase{tme.Hungry, tme.Hungry},
		[2]ltime.Timestamp{reqAt(5, 0), reqAt(1, 1)},
		[2]ltime.Timestamp{reqAt(5, 0), reqAt(1, 1)})
	m.Observe(g2)
	if m.OpenReplyObligations() != 0 {
		t.Errorf("after discharge: OpenReplyObligations = %d", m.OpenReplyObligations())
	}
}
