package workload

import (
	"encoding/json"
	"fmt"
)

// ClientTrace is one client's pre-drawn draw sequences. Values are in
// ticks, exactly as the generator produced them, so a trace carries no
// substrate unit and replays identically everywhere.
type ClientTrace struct {
	Client int    `json:"client"`
	Cohort string `json:"cohort"`
	Open   bool   `json:"open,omitempty"`
	// Thinks and Holds are consumed in order; Resources only when the
	// cohort has shard skew.
	Thinks    []int64 `json:"thinks"`
	Holds     []int64 `json:"holds"`
	Resources []int   `json:"resources,omitempty"`
}

// Schedule is a recorded workload: per-client draw sequences plus the
// provenance needed to regenerate it. It implements Source; replay cycles
// when a sequence is exhausted, so a short trace still drives an
// arbitrarily long run deterministically.
type Schedule struct {
	Spec    string        `json:"spec"`
	Seed    int64         `json:"seed"`
	N       int           `json:"n"`
	Items   int           `json:"items_per_client"`
	Clients []ClientTrace `json:"clients"`
}

// Record pre-draws items think/hold/resource triples for each of n clients
// of spec — a pure function of its arguments, so two calls with the same
// inputs produce byte-identical JSON.
func Record(spec Spec, seed int64, n, items int) *Schedule {
	if items < 1 {
		items = 1
	}
	g := NewGen(spec, seed, n)
	s := &Schedule{Spec: specName(spec), Seed: seed, N: n, Items: items}
	for i := 0; i < n; i++ {
		c := g.Client(i)
		ct := ClientTrace{
			Client: i,
			Cohort: c.Cohort(),
			Open:   c.Open(),
			Thinks: make([]int64, items),
			Holds:  make([]int64, items),
		}
		skewed := false
		if gc, ok := c.(*genClient); ok {
			skewed = gc.cohort.Skew.Resources > 1
		}
		if skewed {
			ct.Resources = make([]int, items)
		}
		for j := 0; j < items; j++ {
			ct.Thinks[j] = c.NextThink()
			ct.Holds[j] = c.NextHold()
			if skewed {
				if gc, ok := c.(*genClient); ok {
					ct.Resources[j] = c.NextResource(gc.cohort.Skew.Resources)
				}
			}
		}
		s.Clients = append(s.Clients, ct)
	}
	return s
}

func specName(spec Spec) string {
	if spec.Name != "" {
		return spec.Name
	}
	return "custom"
}

// JSON renders the schedule deterministically (struct field order, no
// maps), for the same-seed ⇒ same-bytes acceptance check and for replay
// files.
func (s *Schedule) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // plain data; cannot fail
		return []byte("{}")
	}
	return append(b, '\n')
}

// LoadSchedule parses a schedule previously written with JSON.
func LoadSchedule(b []byte) (*Schedule, error) {
	s := &Schedule{}
	if err := json.Unmarshal(b, s); err != nil {
		return nil, fmt.Errorf("workload schedule: %w", err)
	}
	if len(s.Clients) == 0 {
		return nil, fmt.Errorf("workload schedule: no clients")
	}
	for i := range s.Clients {
		if len(s.Clients[i].Thinks) == 0 || len(s.Clients[i].Holds) == 0 {
			return nil, fmt.Errorf("workload schedule: client %d has empty draw sequences", i)
		}
	}
	return s, nil
}

// Client returns a replay stream over client id's recorded draws, cycling
// at the end. Ids beyond the recorded set reuse traces round-robin, so a
// trace recorded for n clients can drive a larger cluster.
func (s *Schedule) Client(id int) Client {
	if id < 0 {
		id = -id
	}
	return &replayClient{trace: &s.Clients[id%len(s.Clients)]}
}

type replayClient struct {
	trace      *ClientTrace
	ti, hi, ri int // cursors
}

func (r *replayClient) Cohort() string { return r.trace.Cohort }
func (r *replayClient) Open() bool     { return r.trace.Open }

func (r *replayClient) NextThink() int64 {
	v := r.trace.Thinks[r.ti%len(r.trace.Thinks)]
	r.ti++
	if v < 1 {
		v = 1
	}
	return v
}

func (r *replayClient) NextHold() int64 {
	v := r.trace.Holds[r.hi%len(r.trace.Holds)]
	r.hi++
	if v < 1 {
		v = 1
	}
	return v
}

func (r *replayClient) NextResource(n int) int {
	if n <= 1 || len(r.trace.Resources) == 0 {
		return 0
	}
	v := r.trace.Resources[r.ri%len(r.trace.Resources)]
	r.ri++
	if v < 0 || v >= n {
		v %= n
		if v < 0 {
			v += n
		}
	}
	return v
}
