package workload

import (
	"bytes"
	"testing"
)

// Same (spec, seed, n) ⇒ byte-identical schedule JSON: the acceptance
// criterion that makes any run replayable.
func TestRecordDeterministic(t *testing.T) {
	for _, name := range Names() {
		spec, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		a := Record(spec, 42, 6, 50).JSON()
		b := Record(spec, 42, 6, 50).JSON()
		if !bytes.Equal(a, b) {
			t.Errorf("workload %q: same seed produced different schedule JSON", name)
		}
		c := Record(spec, 43, 6, 50).JSON()
		if bytes.Equal(a, c) {
			t.Errorf("workload %q: different seeds produced identical schedules", name)
		}
	}
}

// A recorded schedule replays exactly the draws the generator produces.
func TestReplayMatchesGenerator(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Preset(name)
		const n, items = 4, 40
		sched, err := LoadSchedule(Record(spec, 7, n, items).JSON())
		if err != nil {
			t.Fatalf("load %q: %v", name, err)
		}
		gen := NewGen(spec, 7, n)
		for id := 0; id < n; id++ {
			gc, rc := gen.Client(id), sched.Client(id)
			if gc.Open() != rc.Open() || gc.Cohort() != rc.Cohort() {
				t.Fatalf("workload %q client %d: open/cohort mismatch", name, id)
			}
			for j := 0; j < items; j++ {
				if g, r := gc.NextThink(), rc.NextThink(); g != r {
					t.Fatalf("workload %q client %d think %d: gen %d, replay %d", name, id, j, g, r)
				}
				if g, r := gc.NextHold(), rc.NextHold(); g != r {
					t.Fatalf("workload %q client %d hold %d: gen %d, replay %d", name, id, j, g, r)
				}
			}
		}
	}
}

// Replay cycles when the recorded sequence is exhausted instead of
// panicking or zeroing out.
func TestReplayCycles(t *testing.T) {
	spec, _ := Preset("uniform")
	sched := Record(spec, 1, 2, 3)
	c := sched.Client(0)
	var first [3]int64
	for i := range first {
		first[i] = c.NextThink()
	}
	for i := range first {
		if v := c.NextThink(); v != first[i] {
			t.Fatalf("cycle draw %d: got %d, want %d", i, v, first[i])
		}
	}
	// Ids beyond the recorded set reuse traces round-robin.
	if sched.Client(5).Cohort() != sched.Client(1).Cohort() {
		t.Fatal("out-of-range client id should wrap onto a recorded trace")
	}
}

// Draws are always ≥ 1 (the simulator schedules them as event delays and
// must make progress), including under degenerate parameters.
func TestDrawsPositive(t *testing.T) {
	degenerate := Spec{Name: "degenerate", Cohorts: []Cohort{
		{Name: "a", Arrival: Arrival{Kind: ClosedUniform, ThinkMin: 0, ThinkMax: 0}, Hold: Hold{Kind: HoldFixed, Fixed: 0}},
		{Name: "b", Arrival: Arrival{Kind: OpenPoisson, MeanGap: 0}, Hold: Hold{Kind: HoldLognormal, Mu: -10, Sigma: 0}},
		{Name: "c", Arrival: Arrival{Kind: OpenBursty, On: 0, Off: 0, BurstGap: 0}, Hold: Hold{Kind: HoldPareto, Alpha: 0, XMin: 0}},
		{Name: "d", Arrival: Arrival{Kind: OpenDiurnal, MeanGap: 0, Period: 0, Curve: nil}, Hold: Hold{Kind: HoldUniform, Min: 0, Max: 0}},
	}}
	g := NewGen(degenerate, 3, 8)
	for id := 0; id < 8; id++ {
		c := g.Client(id)
		for j := 0; j < 200; j++ {
			if v := c.NextThink(); v < 1 {
				t.Fatalf("client %d: think %d < 1", id, v)
			}
			if v := c.NextHold(); v < 1 {
				t.Fatalf("client %d: hold %d < 1", id, v)
			}
		}
	}
}

// The equal-bounds uniform draw (the old Int63n edge case) is exact.
func TestUniformEqualBounds(t *testing.T) {
	g := NewGen(UniformSpec(7, 7, 2), 1, 1)
	c := g.Client(0)
	for i := 0; i < 10; i++ {
		if v := c.NextThink(); v != 7 {
			t.Fatalf("think = %d, want 7", v)
		}
		if v := c.NextHold(); v != 2 {
			t.Fatalf("hold = %d, want 2", v)
		}
	}
}

// Hot-shard skew concentrates load on shard 0.
func TestHotShardSkew(t *testing.T) {
	spec, _ := Preset("hotshard")
	g := NewGen(spec, 9, 1)
	c := g.Client(0)
	counts := make([]int, 8)
	for i := 0; i < 4000; i++ {
		counts[c.NextResource(8)]++
	}
	if counts[0] <= counts[7]*2 {
		t.Fatalf("shard 0 (%d) not hot vs shard 7 (%d)", counts[0], counts[7])
	}
}

// Cohort assignment is proportional and deterministic.
func TestCohortAssignment(t *testing.T) {
	spec, _ := Preset("mixed") // weights 2:1:1
	seen := map[string]int{}
	g := NewGen(spec, 1, 8)
	for i := 0; i < 8; i++ {
		seen[g.Client(i).Cohort()]++
	}
	if seen["steady"] != 4 || seen["poisson"] != 2 || seen["bursty-heavy"] != 2 {
		t.Fatalf("cohort split = %v, want steady:4 poisson:2 bursty-heavy:2", seen)
	}
}

// Heavy-tailed holds actually produce a spread (and respect the cap).
func TestHeavyTailSpread(t *testing.T) {
	for _, name := range []string{"heavytail", "pareto"} {
		spec, _ := Preset(name)
		g := NewGen(spec, 11, 1)
		c := g.Client(0)
		min, max := int64(1<<62), int64(0)
		cap := spec.Cohorts[0].Hold.Cap
		for i := 0; i < 2000; i++ {
			v := c.NextHold()
			if v > cap {
				t.Fatalf("%s: hold %d exceeds cap %d", name, v, cap)
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max < 4*min {
			t.Errorf("%s: hold spread [%d, %d] suspiciously tight for a heavy tail", name, min, max)
		}
	}
}

// Bursty sources produce on/off structure: long silences between packed
// arrival trains.
func TestBurstyStructure(t *testing.T) {
	spec, _ := Preset("bursty")
	g := NewGen(spec, 5, 1)
	c := g.Client(0)
	var gaps []int64
	for i := 0; i < 500; i++ {
		gaps = append(gaps, c.NextThink())
	}
	long := 0
	off := spec.Cohorts[0].Arrival.Off
	for _, g := range gaps {
		if g >= off {
			long++
		}
	}
	if long == 0 {
		t.Fatal("bursty source never produced an off-window gap")
	}
	if long > len(gaps)/2 {
		t.Fatalf("bursty source produced %d/%d long gaps; bursts missing", long, len(gaps))
	}
}

func TestPresetUnknown(t *testing.T) {
	if _, err := Preset("nope"); err == nil {
		t.Fatal("Preset(nope) should error")
	}
}

func TestLoadScheduleRejectsEmpty(t *testing.T) {
	if _, err := LoadSchedule([]byte(`{"clients":[]}`)); err == nil {
		t.Fatal("empty schedule should be rejected")
	}
	if _, err := LoadSchedule([]byte(`{"clients":[{"client":0,"thinks":[],"holds":[]}]}`)); err == nil {
		t.Fatal("empty draw sequences should be rejected")
	}
	if _, err := LoadSchedule([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON should be rejected")
	}
}
