package workload

import "testing"

// FuzzLoadSchedule drives the schedule loader with arbitrary bytes: any
// input LoadSchedule accepts must yield replay streams that never panic
// and honor the Client contract (positive think/hold draws, in-range
// resource picks) — including ids beyond the recorded client set, which
// reuse traces round-robin.
func FuzzLoadSchedule(f *testing.F) {
	f.Add(Record(UniformSpec(1, 8, 2), 1, 3, 4).JSON())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"clients":[{"thinks":[1],"holds":[1]}]}`))
	f.Add([]byte(`{"clients":[{"thinks":[-5,0],"holds":[9e18],"resources":[-3,99]}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := LoadSchedule(data)
		if err != nil {
			return
		}
		for id := 0; id <= len(s.Clients); id++ {
			c := s.Client(id)
			c.Cohort()
			c.Open()
			for j := 0; j < 8; j++ {
				if v := c.NextThink(); v < 1 {
					t.Fatalf("client %d: NextThink = %d, want ≥ 1", id, v)
				}
				if v := c.NextHold(); v < 1 {
					t.Fatalf("client %d: NextHold = %d, want ≥ 1", id, v)
				}
				if r := c.NextResource(4); r < 0 || r >= 4 {
					t.Fatalf("client %d: NextResource(4) = %d out of range", id, r)
				}
			}
		}
	})
}
