// Package workload is the seed-deterministic traffic generator: it turns a
// declarative Spec — named client cohorts, each with an arrival shape and a
// hold-time distribution — into per-client draw streams that every
// execution substrate (the virtual-time simulator, the goroutine runtime,
// and the live TCP cluster) consumes through one code path.
//
// The paper's experiments (and the speculation literature they connect to:
// Dubois & Guerraoui's common-case figure of merit) are judged *under
// load*, so the load must be as reproducible as the faults: every draw
// comes from a per-client named RNG stream derived from the run seed with
// the same FNV-1a scheme as engine.Core.Stream, which makes a whole
// workload a pure function of (Spec, seed, n) — adding draws to one client
// cannot perturb another, and the same seed yields the same schedule on
// every substrate.
//
// Times are expressed in abstract ticks. Consumers own the unit: the
// simulator reads a tick as one virtual tick, the live harness as one
// millisecond (see harness.LiveTick). Because drawn values are unitless,
// a schedule recorded on one substrate (Record/Schedule) replays
// byte-identically on any other.
package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// ArrivalKind selects how a client's CS attempts arrive.
type ArrivalKind int

// Arrival shapes. NextThink and String dispatch over these; both must
// name every shape.
//
//gblint:kindset workload-arrival
const (
	// ClosedUniform is the classic closed loop: after each release the
	// client thinks for a uniform random time, then requests again. This is
	// the repository's historical default.
	ClosedUniform ArrivalKind = iota + 1
	// OpenPoisson is an open loop: arrivals form a Poisson process
	// (exponential gaps) independent of service completion; arrivals that
	// find the client busy queue and are served as soon as it frees.
	OpenPoisson
	// OpenBursty is an on/off source: Poisson arrivals at a high rate
	// during On windows, silence during Off windows.
	OpenBursty
	// OpenDiurnal modulates a Poisson process with a periodic rate curve —
	// the multi-period "day" of production traffic.
	OpenDiurnal
)

// String names the arrival shape.
func (k ArrivalKind) String() string {
	switch k {
	case ClosedUniform:
		return "closed-uniform"
	case OpenPoisson:
		return "poisson"
	case OpenBursty:
		return "bursty"
	case OpenDiurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("arrival(%d)", int(k))
	}
}

// Open reports whether the shape is open-loop (gaps measured
// arrival-to-arrival rather than release-to-request).
func (k ArrivalKind) Open() bool { return k != ClosedUniform }

// Arrival describes one cohort's arrival process. Fields are interpreted
// per Kind; times are in ticks.
type Arrival struct {
	Kind ArrivalKind `json:"kind"`
	// ThinkMin/ThinkMax bound the closed-loop think time (ClosedUniform).
	ThinkMin int64 `json:"think_min,omitempty"`
	ThinkMax int64 `json:"think_max,omitempty"`
	// MeanGap is the mean inter-arrival gap (OpenPoisson, OpenDiurnal).
	MeanGap float64 `json:"mean_gap,omitempty"`
	// On/Off are the burst window lengths and BurstGap the mean gap inside
	// an On window (OpenBursty).
	On       int64   `json:"on,omitempty"`
	Off      int64   `json:"off,omitempty"`
	BurstGap float64 `json:"burst_gap,omitempty"`
	// Period and Curve shape the diurnal rate: the instantaneous rate is
	// Curve[i]/MeanGap over the i-th fraction of each Period (OpenDiurnal).
	Period int64     `json:"period,omitempty"`
	Curve  []float64 `json:"curve,omitempty"`
}

// HoldKind selects a cohort's CS hold-time distribution.
type HoldKind int

// Hold-time distributions. NextHold and String dispatch over these; both
// must name every distribution.
//
//gblint:kindset workload-hold
const (
	// HoldFixed holds the CS for a constant time.
	HoldFixed HoldKind = iota + 1
	// HoldUniform draws uniformly from [Min, Max].
	HoldUniform
	// HoldLognormal draws exp(N(Mu, Sigma)) — a mild heavy tail.
	HoldLognormal
	// HoldPareto draws XMin·U^(-1/Alpha) — a power-law heavy tail.
	HoldPareto
)

// String names the hold distribution.
func (k HoldKind) String() string {
	switch k {
	case HoldFixed:
		return "fixed"
	case HoldUniform:
		return "uniform"
	case HoldLognormal:
		return "lognormal"
	case HoldPareto:
		return "pareto"
	default:
		return fmt.Sprintf("hold(%d)", int(k))
	}
}

// Hold describes one cohort's CS hold-time distribution (ticks).
type Hold struct {
	Kind HoldKind `json:"kind"`
	// Fixed is the constant hold (HoldFixed).
	Fixed int64 `json:"fixed,omitempty"`
	// Min/Max bound a uniform hold (HoldUniform).
	Min int64 `json:"min,omitempty"`
	Max int64 `json:"max,omitempty"`
	// Mu/Sigma parameterize the lognormal (HoldLognormal).
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Alpha/XMin parameterize the Pareto tail (HoldPareto).
	Alpha float64 `json:"alpha,omitempty"`
	XMin  float64 `json:"xmin,omitempty"`
	// Cap truncates heavy-tailed draws (0 = uncapped). Keeping the tail
	// finite keeps liveness obligations drainable within a run horizon.
	Cap int64 `json:"cap,omitempty"`
}

// Skew describes hot-shard resource selection: each attempt targets one of
// Resources shards, drawn Zipf(S)-distributed so low-numbered shards are
// hot. The zero value (Resources ≤ 1) means a single shared resource.
type Skew struct {
	Resources int     `json:"resources,omitempty"`
	S         float64 `json:"s,omitempty"` // Zipf exponent, > 1 for skew
}

// Cohort is a named group of clients sharing one traffic shape.
type Cohort struct {
	Name string `json:"name"`
	// Weight is the cohort's share of clients (proportional; min 1).
	Weight  int     `json:"weight"`
	Arrival Arrival `json:"arrival"`
	Hold    Hold    `json:"hold"`
	Skew    Skew    `json:"skew,omitempty"`
}

// Spec is a complete workload description: a named set of cohorts.
type Spec struct {
	Name    string   `json:"name"`
	Cohorts []Cohort `json:"cohorts"`
}

// Client is one client's draw stream. All values are in ticks; consumers
// scale to their substrate's unit. Draws are deterministic per (spec, seed,
// client id) and independent across clients.
type Client interface {
	// NextThink returns the next gap: release-to-request think time for
	// closed-loop shapes, arrival-to-arrival gap for open-loop shapes.
	// Always ≥ 1.
	NextThink() int64
	// NextHold returns the next CS hold time. Always ≥ 1.
	NextHold() int64
	// NextResource returns the target shard for the next attempt, in
	// [0, n); hot shards have low ids. Uniform (or 0) without skew.
	NextResource(n int) int
	// Open reports whether the client is an open-loop source.
	Open() bool
	// Cohort names the cohort the client belongs to.
	Cohort() string
}

// Source hands out per-client draw streams. Gen (live generation) and
// Schedule (trace replay) both implement it.
type Source interface {
	Client(id int) Client
}

// Gen generates workload draws for n clients from spec and seed.
type Gen struct {
	spec    Spec
	seed    int64
	clients []*genClient
}

// NewGen validates nothing it can tolerate: an empty spec falls back to
// DefaultSpec, zero-weight cohorts count as weight 1.
func NewGen(spec Spec, seed int64, n int) *Gen {
	if len(spec.Cohorts) == 0 {
		spec = DefaultSpec()
	}
	g := &Gen{spec: spec, seed: seed, clients: make([]*genClient, n)}
	for i := 0; i < n; i++ {
		c := spec.Cohorts[cohortOf(spec, i)]
		g.clients[i] = newGenClient(c, seed, i)
	}
	return g
}

// Spec returns the generating spec.
func (g *Gen) Spec() Spec { return g.spec }

// N returns the number of clients.
func (g *Gen) N() int { return len(g.clients) }

// Client returns client id's draw stream. Ids outside [0, n) get a stream
// of their own (deterministically derived), so ad-hoc callers cannot
// panic the generator.
func (g *Gen) Client(id int) Client {
	if id >= 0 && id < len(g.clients) {
		return g.clients[id]
	}
	c := g.spec.Cohorts[cohortOf(g.spec, id)]
	return newGenClient(c, g.seed, id)
}

// cohortOf assigns client i to a cohort index, proportionally by weight
// and deterministically: clients cycle through a weight-expanded pattern.
func cohortOf(spec Spec, i int) int {
	total := 0
	for _, c := range spec.Cohorts {
		total += weightOf(c)
	}
	if i < 0 {
		i = -i
	}
	slot := i % total
	for ci, c := range spec.Cohorts {
		slot -= weightOf(c)
		if slot < 0 {
			return ci
		}
	}
	return len(spec.Cohorts) - 1
}

func weightOf(c Cohort) int {
	if c.Weight < 1 {
		return 1
	}
	return c.Weight
}

// Stream derives a named RNG deterministically from seed — the same FNV-1a
// scheme as engine.Core.Stream. Exported for sibling packages (the scenario
// compiler) that need independent named streams without an engine.Core.
func Stream(seed int64, name string) *rand.Rand { return stream(seed, name) }

// stream derives a named RNG deterministically from seed — the same
// FNV-1a scheme as engine.Core.Stream, reimplemented here so the workload
// layer stays free of an engine.Core instance (live runs have none).
func stream(seed int64, name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// genClient is one client's generator state. Separate streams drive
// arrivals, holds, and resource picks, so consuming more of one cannot
// perturb the others.
type genClient struct {
	cohort   Cohort
	arrive   *rand.Rand
	hold     *rand.Rand
	shard    *rand.Rand
	zipf     *rand.Zipf
	zipfN    int
	cyclePos int64 // position inside the on/off or diurnal cycle
}

func newGenClient(c Cohort, seed int64, id int) *genClient {
	base := "workload/" + c.Name + "/" + strconv.Itoa(id)
	return &genClient{
		cohort: c,
		arrive: stream(seed, base+"/arrive"),
		hold:   stream(seed, base+"/hold"),
		shard:  stream(seed, base+"/shard"),
	}
}

func (g *genClient) Cohort() string { return g.cohort.Name }

func (g *genClient) Open() bool { return g.cohort.Arrival.Kind.Open() }

// expGap draws an exponential gap with the given mean, floored at 1 tick.
func expGap(rng *rand.Rand, mean float64) int64 {
	if mean < 1 {
		mean = 1
	}
	g := int64(rng.ExpFloat64() * mean)
	if g < 1 {
		g = 1
	}
	return g
}

func uniformGap(rng *rand.Rand, min, max int64) int64 {
	if min < 1 {
		min = 1
	}
	if max <= min {
		return min
	}
	return min + rng.Int63n(max-min+1)
}

func (g *genClient) NextThink() int64 {
	a := g.cohort.Arrival
	switch a.Kind {
	case OpenPoisson:
		return expGap(g.arrive, a.MeanGap)
	case OpenBursty:
		return g.burstyGap(a)
	case OpenDiurnal:
		return g.diurnalGap(a)
	case ClosedUniform:
		return uniformGap(g.arrive, a.ThinkMin, a.ThinkMax)
	}
	// Zero-value configs take the historical closed-loop default.
	return uniformGap(g.arrive, a.ThinkMin, a.ThinkMax)
}

// burstyGap draws Poisson gaps in "on-time" and converts them to real
// time by skipping Off windows: arrivals only happen inside On windows, so
// a drawn gap that crosses a window boundary carries the silent Off time
// with it. cyclePos tracks the client's real-time position in the cycle.
func (g *genClient) burstyGap(a Arrival) int64 {
	on, off := a.On, a.Off
	if on < 1 {
		on = 1
	}
	if off < 0 {
		off = 0
	}
	cycle := on + off
	want := expGap(g.arrive, a.BurstGap) // on-time to consume
	real := int64(0)
	pos := g.cyclePos % cycle
	for want > 0 {
		if pos >= on { // inside an Off window: dead air until the next On
			real += cycle - pos
			pos = 0
			continue
		}
		take := on - pos
		if take > want {
			take = want
		}
		pos += take
		real += take
		want -= take
	}
	g.cyclePos = (g.cyclePos + real) % cycle
	if real < 1 {
		real = 1
	}
	return real
}

// diurnalGap modulates the Poisson rate by the curve: the multiplier for
// the current position scales the mean gap down (multiplier > 1 = faster
// arrivals).
func (g *genClient) diurnalGap(a Arrival) int64 {
	period := a.Period
	if period < 1 {
		period = 1
	}
	curve := a.Curve
	if len(curve) == 0 {
		curve = []float64{1}
	}
	idx := int((g.cyclePos % period) * int64(len(curve)) / period)
	if idx < 0 || idx >= len(curve) {
		idx = 0
	}
	m := curve[idx]
	if m <= 0 {
		m = 0.01
	}
	gap := expGap(g.arrive, a.MeanGap/m)
	g.cyclePos += gap
	return gap
}

func (g *genClient) NextHold() int64 {
	h := g.cohort.Hold
	var v int64
	switch h.Kind {
	case HoldUniform:
		v = uniformGap(g.hold, h.Min, h.Max)
	case HoldLognormal:
		v = int64(math.Exp(g.hold.NormFloat64()*h.Sigma + h.Mu))
	case HoldPareto:
		u := g.hold.Float64()
		if u <= 0 {
			u = 1e-9
		}
		alpha := h.Alpha
		if alpha <= 0 {
			alpha = 1.5
		}
		xmin := h.XMin
		if xmin < 1 {
			xmin = 1
		}
		v = int64(xmin * math.Pow(u, -1/alpha))
	case HoldFixed:
		v = h.Fixed
	default: // zero-value configs behave as HoldFixed
		v = h.Fixed
	}
	if h.Cap > 0 && v > h.Cap {
		v = h.Cap
	}
	if v < 1 {
		v = 1
	}
	return v
}

func (g *genClient) NextResource(n int) int {
	if n <= 1 {
		return 0
	}
	sk := g.cohort.Skew
	if sk.Resources > 1 && sk.S > 1 {
		if g.zipf == nil || g.zipfN != n {
			// rand.Zipf is deterministic given its source; rebinding on a
			// changed n keeps the rank space aligned with the caller's.
			g.zipf = rand.NewZipf(g.shard, sk.S, 1, uint64(n-1))
			g.zipfN = n
		}
		return int(g.zipf.Uint64())
	}
	return g.shard.Intn(n)
}

// DefaultSpec is the repository's historical client behavior: one cohort,
// closed-loop uniform think in [5, 20] ticks, fixed 3-tick holds — the
// simulator's former built-in defaults, now expressed as data.
func DefaultSpec() Spec {
	return Spec{Name: "uniform", Cohorts: []Cohort{{
		Name:    "uniform",
		Weight:  1,
		Arrival: Arrival{Kind: ClosedUniform, ThinkMin: 5, ThinkMax: 20},
		Hold:    Hold{Kind: HoldFixed, Fixed: 3},
	}}}
}

// UniformSpec builds a single-cohort closed-loop uniform spec with explicit
// bounds — the adapter the live harness uses so its configured think/eat
// durations flow through the same draw path as every other shape.
func UniformSpec(thinkMin, thinkMax, hold int64) Spec {
	return Spec{Name: "uniform", Cohorts: []Cohort{{
		Name:    "uniform",
		Weight:  1,
		Arrival: Arrival{Kind: ClosedUniform, ThinkMin: thinkMin, ThinkMax: thinkMax},
		Hold:    Hold{Kind: HoldFixed, Fixed: hold},
	}}}
}

// presets is the named workload table. Times are in ticks (the simulator
// reads a tick as one virtual tick; the live harness as one millisecond).
var presets = map[string]func() Spec{
	"uniform": DefaultSpec,
	"poisson": func() Spec {
		return Spec{Name: "poisson", Cohorts: []Cohort{{
			Name:    "poisson",
			Arrival: Arrival{Kind: OpenPoisson, MeanGap: 15},
			Hold:    Hold{Kind: HoldFixed, Fixed: 3},
		}}}
	},
	"bursty": func() Spec {
		return Spec{Name: "bursty", Cohorts: []Cohort{{
			Name:    "bursty",
			Arrival: Arrival{Kind: OpenBursty, On: 40, Off: 160, BurstGap: 4},
			Hold:    Hold{Kind: HoldFixed, Fixed: 3},
		}}}
	},
	"diurnal": func() Spec {
		return Spec{Name: "diurnal", Cohorts: []Cohort{{
			Name: "diurnal",
			Arrival: Arrival{Kind: OpenDiurnal, MeanGap: 20, Period: 400,
				Curve: []float64{0.25, 0.5, 1.5, 3, 1.5, 0.5}},
			Hold: Hold{Kind: HoldFixed, Fixed: 3},
		}}}
	},
	"heavytail": func() Spec {
		return Spec{Name: "heavytail", Cohorts: []Cohort{{
			Name:    "heavytail",
			Arrival: Arrival{Kind: ClosedUniform, ThinkMin: 5, ThinkMax: 20},
			Hold:    Hold{Kind: HoldLognormal, Mu: 1.1, Sigma: 1.0, Cap: 60},
		}}}
	},
	"pareto": func() Spec {
		return Spec{Name: "pareto", Cohorts: []Cohort{{
			Name:    "pareto",
			Arrival: Arrival{Kind: ClosedUniform, ThinkMin: 5, ThinkMax: 20},
			Hold:    Hold{Kind: HoldPareto, Alpha: 1.5, XMin: 2, Cap: 80},
		}}}
	},
	"hotshard": func() Spec {
		return Spec{Name: "hotshard", Cohorts: []Cohort{{
			Name:    "hotshard",
			Arrival: Arrival{Kind: ClosedUniform, ThinkMin: 5, ThinkMax: 20},
			Hold:    Hold{Kind: HoldFixed, Fixed: 3},
			Skew:    Skew{Resources: 8, S: 1.3},
		}}}
	},
	"mixed": func() Spec {
		return Spec{Name: "mixed", Cohorts: []Cohort{
			{
				Name: "steady", Weight: 2,
				Arrival: Arrival{Kind: ClosedUniform, ThinkMin: 5, ThinkMax: 20},
				Hold:    Hold{Kind: HoldFixed, Fixed: 3},
			},
			{
				Name: "poisson", Weight: 1,
				Arrival: Arrival{Kind: OpenPoisson, MeanGap: 15},
				Hold:    Hold{Kind: HoldFixed, Fixed: 3},
			},
			{
				Name: "bursty-heavy", Weight: 1,
				Arrival: Arrival{Kind: OpenBursty, On: 40, Off: 160, BurstGap: 4},
				Hold:    Hold{Kind: HoldLognormal, Mu: 1.1, Sigma: 1.0, Cap: 60},
			},
		}}
	},
}

// Preset returns the named workload spec. The error lists the known names.
func Preset(name string) (Spec, error) {
	if f, ok := presets[name]; ok {
		return f(), nil
	}
	return Spec{}, fmt.Errorf("unknown workload %q (known: %v)", name, Names())
}

// Names lists the preset workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(presets))
	//gblint:ignore determinism keys are sorted before returning
	for n := range presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
