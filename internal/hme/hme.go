// Package hme is the hierarchical mutual-exclusion layer: a level-2
// "wrapper of wrappers" that grants cross-shard acquisitions on top of S
// independent single-shard TME instances, each already stabilized by its
// own W'.
//
// The design mirrors the paper's wrapper discipline one level up. A
// single-shard instance exports only its Lspec-level view (tme.SpecView);
// this package sees only shard ids and those views — never protocol
// internals and never a substrate — so the graybox rule holds at level 2
// exactly as it does at level 1. Deadlock freedom needs no timestamps at
// this level: every multi-shard lock set is acquired in canonical
// ascending shard order, so the waits-for relation is a sub-order of the
// shard order and cannot cycle (the classic ordered-resource argument).
// Liveness of each single acquisition is delegated downward: each shard's
// W' guarantees the hungry client eventually eats on that shard.
//
// The Monitor is the level-2 analogue of the Lspec monitors: a spec-only
// observer that checks the ordering invariant on every grant, audits that
// held shards actually show the Eating phase, and publishes hme_* obs
// instruments (acquisitions, grants, releases, violations, in-flight
// depth) for the harness's shard-scale experiment.
package hme

import (
	"fmt"
	"slices"
	"sync"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Op discriminates the hierarchical-acquisition vocabulary the monitor
// observes: one acquire per lock set, one grant per shard, one release for
// the whole set.
type Op int

// Hierarchical ops. They start at one so a zero value is detectably
// invalid, matching the repo's kind conventions; switches over them must
// name every op or route the rest through an explicit default.
//
//gblint:kindset hme-msg
const (
	OpAcquire Op = iota + 1
	OpGrant
	OpRelease
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case OpAcquire:
		return "acquire"
	case OpGrant:
		return "grant"
	case OpRelease:
		return "release"
	default:
		return fmt.Sprintf("invalid(%d)", int(o))
	}
}

// Canonicalize sorts shards ascending and drops duplicates — the canonical
// acquisition order that makes cross-shard lock sets deadlock-free. The
// input slice is not modified.
func Canonicalize(shards []int) []int {
	set := slices.Clone(shards)
	slices.Sort(set)
	return slices.Compact(set)
}

// Acq is one in-flight cross-shard acquisition: a client working through
// its canonical lock set one shard at a time. The substrate drives it —
// request Pending()'s shard on the level-1 instance, report the CS entry
// with Grant, repeat until Done, then hold all shards and release them
// together.
type Acq struct {
	client int
	set    []int
	next   int
}

// NewAcq returns an acquisition of the given shards (canonicalized) by
// client.
func NewAcq(client int, shards []int) *Acq {
	return &Acq{client: client, set: Canonicalize(shards)}
}

// Client returns the acquiring client id.
func (a *Acq) Client() int { return a.client }

// Set returns the full canonical lock set.
func (a *Acq) Set() []int { return a.set }

// Pending returns the next shard to request, or ok=false when every shard
// in the set has been granted.
func (a *Acq) Pending() (shard int, ok bool) {
	if a.next >= len(a.set) {
		return 0, false
	}
	return a.set[a.next], true
}

// Held returns the prefix of the lock set already granted.
func (a *Acq) Held() []int { return a.set[:a.next] }

// Done reports whether the whole set is held.
func (a *Acq) Done() bool { return a.next >= len(a.set) }

// Grant records that the level-1 instance for shard admitted the client.
// Granting any shard other than the pending one is an ordering bug in the
// driver and returns an error.
func (a *Acq) Grant(shard int) error {
	want, ok := a.Pending()
	if !ok {
		return fmt.Errorf("hme: grant of shard %d after set %v complete", shard, a.set)
	}
	if shard != want {
		return fmt.Errorf("hme: grant of shard %d out of order, want %d of set %v", shard, want, a.set)
	}
	a.next++
	return nil
}

// Monitor is the level-2 spec monitor. It watches the op stream of every
// client, enforces the ascending-order invariant grant by grant, and
// publishes the hme_* instruments. All methods are no-ops on a nil
// receiver, matching the obs discipline. Methods are safe for concurrent
// use: the sharded substrate drives acquisitions from per-core goroutines,
// so grants for different clients race into one monitor.
type Monitor struct {
	mu   sync.Mutex
	held map[int][]int //gblint:guardedby mu -- client → shards currently held, in grant order

	acquisitions *obs.Counter
	grants       *obs.Counter
	releases     *obs.Counter
	orderViol    *obs.Counter
	auditViol    *obs.Counter
	inflight     *obs.Gauge
	maxSet       *obs.Gauge
}

// NewMonitor registers the hme instruments on r (nil r yields a nil, no-op
// monitor).
func NewMonitor(r *obs.Registry) *Monitor {
	if r == nil {
		return nil
	}
	return &Monitor{
		held:         map[int][]int{},
		acquisitions: r.Counter("hme_acquisitions_total", "cross-shard lock-set acquisitions started"),
		grants:       r.Counter("hme_grants_total", "single-shard grants inside cross-shard acquisitions"),
		releases:     r.Counter("hme_releases_total", "cross-shard lock sets released"),
		orderViol:    r.Counter("hme_order_violations_total", "grants that broke the canonical ascending shard order"),
		auditViol:    r.Counter("hme_audit_violations_total", "held shards whose spec view was not Eating at audit"),
		inflight:     r.Gauge("hme_inflight", "cross-shard acquisitions currently holding at least one shard"),
		maxSet:       r.Gauge("hme_max_set", "largest lock-set size observed"),
	}
}

// Observe feeds one op into the monitor. shard is meaningful only for
// OpGrant; for OpAcquire, set is the canonical lock set being started.
func (m *Monitor) Observe(op Op, client, shard int, set []int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch op {
	case OpAcquire:
		m.acquisitions.Inc()
		m.maxSet.SetMax(int64(len(set)))
	case OpGrant:
		m.grants.Inc()
		h := m.held[client]
		if len(h) > 0 && shard <= h[len(h)-1] {
			m.orderViol.Inc()
		}
		if len(h) == 0 {
			m.inflight.Add(1)
		}
		m.held[client] = append(h, shard)
	case OpRelease:
		m.releases.Inc()
		if len(m.held[client]) > 0 {
			m.inflight.Add(-1)
		}
		m.held[client] = m.held[client][:0]
	default:
		// Ops are produced in-process, never decoded off the wire, so an
		// unknown value is a programming error, not a fault to absorb.
		panic(fmt.Sprintf("hme: unknown op %d", int(op)))
	}
}

// InFlight returns the number of clients currently holding at least one
// shard of an incomplete-or-held lock set — zero at quiescence, which is
// the harness's deadlock-freedom check at end of run.
func (m *Monitor) InFlight() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, h := range m.held {
		if len(h) > 0 {
			n++
		}
	}
	return n
}

// Audit checks that every shard the monitor believes client holds shows
// the Eating phase in that shard's spec view — the level-2 analogue of the
// Lspec safety probe. Violations are counted, not fatal: transient faults
// can legitimately scramble a phase, and W' is what repairs it.
func (m *Monitor) Audit(client int, phase func(shard int) tme.Phase) {
	if m == nil {
		return
	}
	// Snapshot under the lock, probe outside it: phase reads the shard's
	// spec view, which must not nest inside the monitor's mutex.
	m.mu.Lock()
	held := slices.Clone(m.held[client])
	m.mu.Unlock()
	for _, s := range held {
		if phase(s) != tme.Eating {
			m.auditViol.Inc()
		}
	}
}
