package hme

import (
	"slices"
	"sync"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

func TestCanonicalize(t *testing.T) {
	got := Canonicalize([]int{3, 1, 3, 0, 1})
	if !slices.Equal(got, []int{0, 1, 3}) {
		t.Fatalf("Canonicalize = %v, want [0 1 3]", got)
	}
}

func TestAcqAscendingOrder(t *testing.T) {
	a := NewAcq(7, []int{2, 0, 2, 1})
	want := []int{0, 1, 2}
	for i, s := range want {
		shard, ok := a.Pending()
		if !ok || shard != s {
			t.Fatalf("step %d: pending = %d,%v, want %d,true", i, shard, ok, s)
		}
		if err := a.Grant(shard); err != nil {
			t.Fatalf("Grant(%d): %v", shard, err)
		}
		if !slices.Equal(a.Held(), want[:i+1]) {
			t.Fatalf("step %d: held = %v", i, a.Held())
		}
	}
	if !a.Done() {
		t.Fatal("acquisition not done after all grants")
	}
	if err := a.Grant(0); err == nil {
		t.Fatal("grant after completion did not error")
	}
}

func TestAcqRejectsOutOfOrderGrant(t *testing.T) {
	a := NewAcq(1, []int{0, 2})
	if err := a.Grant(2); err == nil {
		t.Fatal("out-of-order grant accepted")
	}
}

func TestMonitorCountsAndOrder(t *testing.T) {
	r := obs.NewRegistry()
	m := NewMonitor(r)
	m.Observe(OpAcquire, 1, 0, []int{0, 2, 3})
	m.Observe(OpGrant, 1, 0, nil)
	m.Observe(OpGrant, 1, 2, nil)
	m.Observe(OpGrant, 1, 3, nil)
	if m.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", m.InFlight())
	}
	m.Observe(OpRelease, 1, 0, nil)
	if m.InFlight() != 0 {
		t.Fatalf("InFlight after release = %d, want 0", m.InFlight())
	}

	// A descending grant is an order violation.
	m.Observe(OpAcquire, 2, 0, []int{1, 4})
	m.Observe(OpGrant, 2, 4, nil)
	m.Observe(OpGrant, 2, 1, nil)

	s := r.Snapshot()
	checks := map[string]int64{
		"hme_acquisitions_total":     2,
		"hme_grants_total":           5,
		"hme_releases_total":         1,
		"hme_order_violations_total": 1,
	}
	for name, want := range checks {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := s.Gauge("hme_max_set", 0); got != 3 {
		t.Errorf("hme_max_set = %d, want 3", got)
	}
}

func TestMonitorAudit(t *testing.T) {
	r := obs.NewRegistry()
	m := NewMonitor(r)
	m.Observe(OpAcquire, 0, 0, []int{1, 2})
	m.Observe(OpGrant, 0, 1, nil)
	m.Observe(OpGrant, 0, 2, nil)
	m.Audit(0, func(shard int) tme.Phase {
		if shard == 2 {
			return tme.Hungry // scrambled: held but not eating
		}
		return tme.Eating
	})
	if got := r.Snapshot().Counter("hme_audit_violations_total"); got != 1 {
		t.Fatalf("audit violations = %d, want 1", got)
	}
}

// TestMonitorConcurrentMultiShard drives one monitor from many goroutines —
// the sharded substrate's shape, where per-core loops race grants for
// different clients into the shared monitor. Run under -race this is the
// regression test for the Monitor's internal locking; it also pins the
// exact violation counts, which must stay deterministic because each
// client's own op stream is sequential even when clients interleave.
func TestMonitorConcurrentMultiShard(t *testing.T) {
	const (
		clients = 8
		rounds  = 50
	)
	r := obs.NewRegistry()
	m := NewMonitor(r)

	var wg sync.WaitGroup
	for c := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			set := []int{c % 4, c%4 + 2, c%4 + 4} // overlapping multi-shard sets
			for round := range rounds {
				m.Observe(OpAcquire, c, 0, set)
				if c == 0 && round%10 == 0 {
					// Client 0 misbehaves every 10th round: grants arrive
					// descending, each a separate order violation.
					m.Observe(OpGrant, c, set[2], nil)
					m.Observe(OpGrant, c, set[1], nil)
					m.Observe(OpGrant, c, set[0], nil)
				} else {
					for _, s := range set {
						m.Observe(OpGrant, c, s, nil)
					}
				}
				// Audit while holding: client 1 always sees one scrambled
				// phase, everyone else audits clean.
				m.Audit(c, func(shard int) tme.Phase {
					if c == 1 && shard == set[0] {
						return tme.Hungry
					}
					return tme.Eating
				})
				m.Observe(OpRelease, c, 0, nil)
			}
		}()
	}
	wg.Wait()

	if got := m.InFlight(); got != 0 {
		t.Errorf("InFlight at quiescence = %d, want 0", got)
	}
	s := r.Snapshot()
	checks := map[string]int64{
		"hme_acquisitions_total": clients * rounds,
		"hme_grants_total":       clients * rounds * 3,
		"hme_releases_total":     clients * rounds,
		// Client 0's 5 descending rounds: shard c+4 then c+2 then c, two
		// backwards grants each.
		"hme_order_violations_total": 2 * (rounds / 10),
		// Client 1's every round: one held shard not Eating.
		"hme_audit_violations_total": rounds,
	}
	for name, want := range checks {
		if got := s.Counter(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := s.Gauge("hme_max_set", 0); got != 3 {
		t.Errorf("hme_max_set = %d, want 3", got)
	}
}

func TestNilMonitorIsNoOp(t *testing.T) {
	var m *Monitor
	m.Observe(OpAcquire, 0, 0, nil)
	m.Observe(OpGrant, 0, 0, nil)
	m.Audit(0, nil)
	if m.InFlight() != 0 {
		t.Fatal("nil monitor reports in-flight work")
	}
}
