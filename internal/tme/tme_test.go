package tme

import (
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/ltime"
)

func TestPhaseValid(t *testing.T) {
	for _, p := range []Phase{Thinking, Hungry, Eating} {
		if !p.Valid() {
			t.Errorf("%v.Valid() = false", p)
		}
	}
	for _, p := range []Phase{0, 4, -1} {
		if p.Valid() {
			t.Errorf("Phase(%d).Valid() = true", int(p))
		}
	}
}

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{Thinking: "t", Hungry: "h", Eating: "e"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if !strings.Contains(Phase(9).String(), "invalid") {
		t.Error("invalid phase String not marked")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Request: "request", Reply: "reply", Release: "release"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind %d = %q, want %q", int(k), got, want)
		}
	}
	if !strings.Contains(Kind(0).String(), "invalid") {
		t.Error("invalid kind String not marked")
	}
}

func TestMessageString(t *testing.T) {
	m := Message{Kind: Request, TS: ltime.Timestamp{Clock: 3, PID: 1}, From: 1, To: 2}
	if got, want := m.String(), "request(3.1) 1->2"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// fakeView is a minimal SpecView for Snapshot tests.
type fakeView struct {
	id, n int
	phase Phase
	req   ltime.Timestamp
	local map[int]ltime.Timestamp
	recvd map[int]bool
}

func (f *fakeView) ID() int              { return f.id }
func (f *fakeView) N() int               { return f.n }
func (f *fakeView) Phase() Phase         { return f.phase }
func (f *fakeView) REQ() ltime.Timestamp { return f.req }
func (f *fakeView) LocalREQ(k int) (ltime.Timestamp, bool) {
	return f.local[k], f.recvd[k]
}

func TestSnapshot(t *testing.T) {
	v := &fakeView{
		id:    1,
		n:     3,
		phase: Hungry,
		req:   ltime.Timestamp{Clock: 5, PID: 1},
		local: map[int]ltime.Timestamp{0: {Clock: 2, PID: 0}, 2: {Clock: 9, PID: 2}},
		recvd: map[int]bool{0: true},
	}
	s := Snapshot(v)
	if s.ID != 1 || s.Phase != Hungry || s.REQ != v.req {
		t.Errorf("snapshot header wrong: %+v", s)
	}
	if s.Local[0] != v.local[0] || !s.Received[0] {
		t.Errorf("snapshot local[0] wrong: %+v", s)
	}
	if s.Local[2] != v.local[2] || s.Received[2] {
		t.Errorf("snapshot local[2] wrong: %+v", s)
	}
	// Own index untouched (zero values).
	if !s.Local[1].IsZero() || s.Received[1] {
		t.Errorf("snapshot self index touched: %+v", s)
	}
}

func TestEarlier(t *testing.T) {
	a := ltime.Timestamp{Clock: 1, PID: 0}
	b := ltime.Timestamp{Clock: 1, PID: 1}
	if !Earlier(a, b) || Earlier(b, a) || Earlier(a, a) {
		t.Error("Earlier inconsistent with lt")
	}
}
