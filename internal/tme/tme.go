// Package tme defines the timestamp-based distributed mutual exclusion (TME)
// problem domain of DSN 2001 §3: client phases, the message vocabulary of
// Lspec, and — centrally — the SpecView interface, which is the *only* state
// a graybox wrapper may read.
//
// Graybox-ness is enforced by the type system: internal/wrapper receives a
// SpecView, never a concrete *ra.Node or *lamport.Node, so a wrapper
// physically cannot depend on implementation variables such as RA's deferred
// set or Lamport's request queue. Any implementation of Lspec exposes the
// same view, which is why one wrapper stabilizes them all (Theorem 8,
// Corollary 11).
package tme

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/ltime"
)

// Phase is the client phase of a process: exactly one of thinking, hungry,
// or eating holds at any time (Structural Spec).
type Phase int

// Client phases. They start at one so the zero value is detectably invalid
// (useful when fault injection scrambles a phase variable). Switches
// dispatching over phases must name all three or panic on the rest:
// corrupted phases may hold any value, so the escape arm is a default that
// handles them deliberately, never one that absorbs a real phase.
//
//gblint:kindset tme-phase
const (
	Thinking Phase = iota + 1
	Hungry
	Eating
)

// Valid reports whether p is one of the three legal phases.
func (p Phase) Valid() bool { return p >= Thinking && p <= Eating }

// String renders the phase using the paper's predicate names.
func (p Phase) String() string {
	switch p {
	case Thinking:
		return "t"
	case Hungry:
		return "h"
	case Eating:
		return "e"
	default:
		return fmt.Sprintf("invalid(%d)", int(p))
	}
}

// Kind discriminates the message vocabulary of Lspec and its two reference
// implementations. Request and Reply are required by Request Spec / Reply
// Spec; Release is used only by Lamport ME.
type Kind int

// Message kinds. Corruption can forge kinds outside this set, so receivers
// route unknowns through an explicit default — but every declared kind
// must have its own arm (gblint's exhaustiveness pass enforces it).
//
//gblint:kindset tme-msg
const (
	Request Kind = iota + 1
	Reply
	Release
)

// String renders the kind name.
func (k Kind) String() string {
	switch k {
	case Request:
		return "request"
	case Reply:
		return "reply"
	case Release:
		return "release"
	default:
		return fmt.Sprintf("invalid(%d)", int(k))
	}
}

// Message is one interprocess message. TS carries the sender's REQ (for
// requests) or current logical clock (for replies and releases), per the
// paper's send(REQ_j, j, k) notation.
type Message struct {
	Kind Kind
	// TS is the timestamp payload.
	TS ltime.Timestamp
	// From and To are the source and destination process ids.
	From, To int
	// Resource is the shard (critical section) this message belongs to.
	// Each shard runs an independent protocol instance; substrates route
	// inbound messages to the instance named here. The single-CS system of
	// the paper is shard 0, which keeps legacy frames byte-identical.
	Resource int
}

// String renders the message compactly, e.g. "request(3.1) 1->2"; sharded
// messages append the resource id, e.g. "request(3.1) 1->2 @2".
func (m Message) String() string {
	if m.Resource != 0 {
		return fmt.Sprintf("%s(%s) %d->%d @%d", m.Kind, m.TS, m.From, m.To, m.Resource)
	}
	return fmt.Sprintf("%s(%s) %d->%d", m.Kind, m.TS, m.From, m.To)
}

// SpecView exposes exactly the Lspec-level variables of one process:
// its phase (h.j / e.j / t.j), REQ_j, and its local copies j.REQ_k. This is
// the wrapper's entire window into a process — graybox knowledge.
type SpecView interface {
	// ID returns the process id j.
	ID() int
	// N returns the number of processes in the system.
	N() int
	// Phase returns the current client phase of the process.
	Phase() Phase
	// REQ returns REQ_j: the timestamp of the current request if the
	// process is hungry or eating, else the timestamp of its most recent
	// event (CS Release Spec).
	REQ() ltime.Timestamp
	// LocalREQ returns j.REQ_k, the process's latest information about
	// REQ_k, and whether a value for k has been received since the last
	// local request was issued (the received(j.REQ_k) flag of Lspec).
	LocalREQ(k int) (ts ltime.Timestamp, received bool)
}

// Node is a TME process as driven by an execution substrate (the
// discrete-event simulator or the goroutine runtime). All methods are
// invoked from a single goroutine per node.
type Node interface {
	SpecView

	// RequestCS performs the client's "Request CS" action; it is a no-op
	// unless the process is thinking. It returns the messages to send.
	RequestCS() []Message
	// ReleaseCS performs the client's "Release CS" action; it is a no-op
	// unless the process is eating. It returns the messages to send.
	ReleaseCS() []Message
	// Deliver handles one incoming message and returns the messages to
	// send in response.
	Deliver(m Message) []Message
	// Step attempts one internal action (CS entry). entered reports
	// whether the process transitioned hungry→eating.
	Step() (entered bool, msgs []Message)
}

// ClockHolder is implemented by nodes that expose their logical clock's
// current value ts.j. It exists for spec monitors (Timestamp Spec, CS
// Release Spec); it is deliberately NOT part of SpecView, so wrappers cannot
// depend on it.
type ClockHolder interface {
	// ClockNow returns the timestamp of the most current event at the
	// process (the paper's ts.j).
	ClockNow() ltime.Timestamp
}

// Corruptible is implemented by nodes that support transient-state
// corruption faults: Corrupt overwrites implementation state with the given
// arbitrary values, and may scramble implementation-internal structures
// (queues, sets) as it sees fit. Values are supplied by internal/fault.
type Corruptible interface {
	// Corrupt applies a transient state corruption described by c.
	Corrupt(c Corruption)
}

// Corruption describes one transient state-corruption fault, produced by the
// seeded fault injector. Implementations apply the fields they understand.
type Corruption struct {
	// Phase, if Valid, overwrites the client phase.
	Phase Phase
	// REQ, if non-nil, overwrites REQ_j.
	REQ *ltime.Timestamp
	// LocalREQ maps k → forged j.REQ_k values to install.
	LocalREQ map[int]ltime.Timestamp
	// DropReceived lists k whose received(j.REQ_k) flag is cleared.
	DropReceived []int
	// ForgeReceived lists k whose received(j.REQ_k) flag is set.
	ForgeReceived []int
	// Clock, if non-nil, overwrites the logical clock scalar.
	Clock *uint64
	// ScrambleInternal asks the node to permute/damage implementation-
	// internal structures (RA's deferred set, Lamport's request queue)
	// using the given seed.
	ScrambleInternal bool
	// Seed drives any randomized scrambling deterministically.
	Seed int64
}

// SpecState is a plain-data snapshot of one process's SpecView plus the
// bookkeeping monitors need. Snapshots decouple monitors from live nodes.
type SpecState struct {
	ID    int
	Phase Phase
	REQ   ltime.Timestamp
	// Local[k] is j.REQ_k; Received[k] is the received flag. Index j
	// itself is unused.
	Local    []ltime.Timestamp
	Received []bool
	// TS is ts.j when the node is a ClockHolder (HasTS true).
	TS    ltime.Timestamp
	HasTS bool
}

// Snapshot captures the SpecView of v into a SpecState.
func Snapshot(v SpecView) SpecState {
	var s SpecState
	SnapshotInto(v, &s)
	return s
}

// SnapshotInto fills s from v, reusing s's slices when they are large
// enough (for allocation-free periodic snapshots).
func SnapshotInto(v SpecView, s *SpecState) {
	n := v.N()
	s.ID = v.ID()
	s.Phase = v.Phase()
	s.REQ = v.REQ()
	if cap(s.Local) < n {
		s.Local = make([]ltime.Timestamp, n)
	}
	s.Local = s.Local[:n]
	if cap(s.Received) < n {
		s.Received = make([]bool, n)
	}
	s.Received = s.Received[:n]
	for k := 0; k < n; k++ {
		if k == s.ID {
			s.Local[k], s.Received[k] = ltime.Timestamp{}, false
			continue
		}
		s.Local[k], s.Received[k] = v.LocalREQ(k)
	}
	s.TS, s.HasTS = ltime.Timestamp{}, false
	if ch, ok := v.(ClockHolder); ok {
		s.TS, s.HasTS = ch.ClockNow(), true
	}
}

// Earlier reports the paper's earlier:(j,k) relation on two REQ values:
// REQ_j lt REQ_k.
func Earlier(reqJ, reqK ltime.Timestamp) bool { return reqJ.Less(reqK) }
