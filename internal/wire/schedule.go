package wire

import (
	"encoding/json"
	"math/rand"
	"sort"
	"time"

	"github.com/graybox-stabilization/graybox/internal/fault"
)

// Wire-only fault verbs: the chaos proxy's own actions, beyond the
// fault.Kind classes (whose verbs are the Kind.String() names). The live
// schedule applier dispatches over these; a verb added here must get an
// arm there (gblint's exhaustiveness pass enforces it).
//
//gblint:kindset wire-verb
const (
	// VerbPartition isolates the event's Group from the rest.
	VerbPartition = "partition"
	// VerbPartitionOneWay installs the asymmetric (gray) cut: the group's
	// outbound messages drop, inbound still arrive.
	VerbPartitionOneWay = "partition-oneway"
	// VerbHeal removes the partition.
	VerbHeal = "heal"
)

// FaultEvent is one planned chaos action, at a fixed offset from run
// start. The plan is drawn entirely up front from a seed, so two runs
// with the same seed apply the identical fault sequence even though live
// queue contents (and therefore each fault's exact victims) differ — the
// schedule is the deterministic contract, the wire is not.
type FaultEvent struct {
	// AtMS is the offset from run start, in milliseconds.
	AtMS int64 `json:"at_ms"`
	// Verb is a fault.Kind name ("loss", "dup", "corrupt", "state",
	// "flush") or the wire-only "partition" / "partition-oneway" / "heal".
	Verb string `json:"verb"`
	// Count is how many faults of this kind fire back-to-back (burst
	// size; 0 means 1). Unused for partition/heal.
	Count int `json:"count,omitempty"`
	// Group is the process group isolated by a partition event.
	Group []int `json:"group,omitempty"`
}

// FaultKind maps the verb back to its fault.Kind (ok=false for
// partition/heal, which are the proxy's own verbs).
func (e FaultEvent) FaultKind() (fault.Kind, bool) {
	for k := fault.MessageLoss; k <= fault.ChannelFlush; k++ {
		if e.Verb == k.String() {
			return k, true
		}
	}
	return 0, false
}

// FaultSchedule is a seeded, pre-drawn fault plan for a live run.
type FaultSchedule struct {
	Seed   int64        `json:"seed"`
	Events []FaultEvent `json:"events"`
}

// JSON renders the schedule deterministically (for the same-seed ⇒
// same-schedule acceptance check and for audit logs).
func (s *FaultSchedule) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // a schedule is plain data; this cannot fail
		return []byte("{}")
	}
	return append(b, '\n')
}

// ScheduleConfig parameterizes schedule generation.
type ScheduleConfig struct {
	// N is the cluster size (required when Partition is set).
	N int
	// Duration is the planned run length (required).
	Duration time.Duration
	// Bursts is how many fault bursts to plan. Default 3.
	Bursts int
	// MaxPerBurst bounds each burst's fault count. Default 4.
	MaxPerBurst int
	// Mix weights the fault classes (zero value = fault.DefaultMix).
	Mix fault.Mix
	// Partition adds an Isolate/Heal pair around the middle of the run.
	Partition bool
	// Asymmetric makes the planned partition one-way (IsolateOneWay):
	// the isolated group's outbound messages drop, inbound still arrive.
	Asymmetric bool
	// Churn plans this many extra crash/recover cycles: each isolates a
	// single random node briefly and then heals, modelling process churn.
	Churn int
}

func (c ScheduleConfig) withDefaults() ScheduleConfig {
	if c.Bursts <= 0 {
		c.Bursts = 3
	}
	if c.MaxPerBurst <= 0 {
		c.MaxPerBurst = 4
	}
	return c
}

// NewFaultSchedule draws a fault plan from seed: Bursts bursts of mixed
// faults inside the first 60% of the run (so convergence after the last
// fault fits inside the run), plus an optional partition/heal pair. The
// result is a pure function of (seed, cfg).
func NewFaultSchedule(seed int64, cfg ScheduleConfig) *FaultSchedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	durMS := cfg.Duration.Milliseconds()
	if durMS < 1 {
		durMS = 1
	}
	// Faults land in [10%, 60%] of the run.
	lo, hi := durMS/10, durMS*6/10
	if hi <= lo {
		hi = lo + 1
	}
	s := &FaultSchedule{Seed: seed}
	for i := 0; i < cfg.Bursts; i++ {
		at := lo + rng.Int63n(hi-lo)
		count := 1 + rng.Intn(cfg.MaxPerBurst)
		kind := cfg.Mix.Pick(rng)
		s.Events = append(s.Events, FaultEvent{AtMS: at, Verb: kind.String(), Count: count})
	}
	if cfg.Partition && cfg.N > 1 {
		size := 1
		if cfg.N > 2 {
			size += rng.Intn(cfg.N / 2)
		}
		group := rng.Perm(cfg.N)[:size]
		sort.Ints(group)
		verb := VerbPartition
		if cfg.Asymmetric {
			verb = VerbPartitionOneWay
		}
		s.Events = append(s.Events,
			FaultEvent{AtMS: durMS * 3 / 10, Verb: verb, Group: group},
			FaultEvent{AtMS: durMS * 55 / 100, Verb: VerbHeal},
		)
	}
	if cfg.Churn > 0 && cfg.N > 0 {
		// Crash/recover cycles: isolate one node for a short window, then
		// heal. Cycles are spread over the fault window so the last heal
		// still leaves room for convergence.
		for i := 0; i < cfg.Churn; i++ {
			at := lo + rng.Int63n(hi-lo)
			down := 1 + rng.Int63n(durMS/20+1) // outage ≤ 5% of the run
			node := rng.Intn(cfg.N)
			s.Events = append(s.Events,
				FaultEvent{AtMS: at, Verb: VerbPartition, Group: []int{node}},
				FaultEvent{AtMS: at + down, Verb: VerbHeal},
			)
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].AtMS < s.Events[j].AtMS })
	return s
}
