package wire

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Ring-buffer msgQueue: FIFO must survive wrap-around, steady-state
// put/get must be O(1) pops (head advances, nothing shifts) and
// allocation-free, and drain must hand over everything under one lock.

func TestMsgQueueFIFOAcrossWrap(t *testing.T) {
	q := newMsgQueue()
	stop := make(chan struct{})
	next := uint64(0) // next clock to put
	want := uint64(0) // next clock expected from get
	put := func(k int) {
		for i := 0; i < k; i++ {
			q.put(tme.Message{TS: ltime.Timestamp{Clock: next}})
			next++
		}
	}
	get := func(k int) {
		for i := 0; i < k; i++ {
			m, ok := q.get(stop)
			if !ok || m.TS.Clock != want {
				t.Fatalf("get = (%+v, %v), want clock %d", m, ok, want)
			}
			want++
		}
	}
	// Offset head, then cycle enough to wrap the ring several times.
	put(10)
	get(7)
	for i := 0; i < 20; i++ {
		put(13)
		get(13)
	}
	get(3)
	if q.len() != 0 {
		t.Fatalf("queue not drained: len %d", q.len())
	}
}

func TestMsgQueueSteadyStateReusesCapacity(t *testing.T) {
	q := newMsgQueue()
	stop := make(chan struct{})
	// Warm up: grow the ring once, then drain it.
	for i := 0; i < 100; i++ {
		q.put(tme.Message{})
	}
	for i := 0; i < 100; i++ {
		q.get(stop)
	}
	capBefore := q.capacity()
	allocs := testing.AllocsPerRun(1000, func() {
		q.put(tme.Message{})
		if _, ok := q.get(stop); !ok {
			t.Fatal("get failed")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state put+get allocates %.1f per op, want 0", allocs)
	}
	if c := q.capacity(); c != capBefore {
		t.Errorf("capacity changed %d -> %d in steady state", capBefore, c)
	}
}

func TestMsgQueueDrainTakesAllInOrder(t *testing.T) {
	q := newMsgQueue()
	stop := make(chan struct{})
	// Wrap the head first so drain has to stitch two ring segments.
	for i := 0; i < 20; i++ {
		q.put(tme.Message{})
	}
	for i := 0; i < 20; i++ {
		q.get(stop)
	}
	const n = 25
	for i := 0; i < n; i++ {
		q.put(tme.Message{TS: ltime.Timestamp{Clock: uint64(i)}})
	}
	got, ok := q.drain(stop, nil)
	if !ok || len(got) != n {
		t.Fatalf("drain = %d msgs, ok=%v; want %d", len(got), ok, n)
	}
	for i, m := range got {
		if m.TS.Clock != uint64(i) {
			t.Fatalf("drain[%d].Clock = %d (order lost)", i, m.TS.Clock)
		}
	}
	if q.len() != 0 {
		t.Fatalf("len after drain = %d", q.len())
	}
	// Empty queue + closed stop: drain must return without items.
	close(stop)
	if got, ok := q.drain(stop, got[:0]); ok || len(got) != 0 {
		t.Fatalf("drain after stop = (%d msgs, %v), want (0, false)", len(got), ok)
	}
}

// A burst queued before the peer is dialable must go out in a handful of
// flushes, not one write per message — the batching contract.
func TestSenderBatchesBurstIntoFewFlushes(t *testing.T) {
	o := obs.New(obs.Options{})
	t0, err := NewTransport(Config{N: 2, Local: []int{0}, Obs: o, DialBackoffMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = t0.Close(); _ = t1.Close() })
	c1 := &collector{}
	t0.Start(func(int, tme.Message) {})
	t1.Start(c1.deliver)

	const n = 1000
	for i := 0; i < n; i++ {
		t0.Send(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: uint64(i)}, From: 0, To: 1})
	}
	t0.SetPeers([]string{"", t1.Addr()}) // release the burst
	c1.waitLen(t, n, 5*time.Second)

	r := o.Registry()
	sent := r.Counter("wire_msgs_sent_total", "").Value()
	flushes := r.Counter("wire_flushes_total", "").Value()
	if sent != n {
		t.Fatalf("wire_msgs_sent_total = %d, want %d", sent, n)
	}
	// The sender may split the burst across a few drain turns (one before
	// the address lands, one after), but per-message writes would be ~n.
	if flushes == 0 || flushes > 10 {
		t.Errorf("wire_flushes_total = %d for a %d-message burst, want a handful", flushes, n)
	}
}

// SetPeers while senders and remote readers are running must be safe (the
// atomic peers snapshot) and must not lose messages. Run under -race this
// is the repoint-while-sending regression test.
func TestSetPeersRepointWhileSending(t *testing.T) {
	t0, t1, _, c1 := newPair(t)
	addrs := []string{t0.Addr(), t1.Addr()}
	const n = 500
	var wg sync.WaitGroup
	wg.Add(2)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Alternate a bogus address for the *other* direction; the
			// 0->1 edge this test asserts on always stays correct.
			if i&1 == 0 {
				t0.SetPeers(addrs)
			} else {
				t0.SetPeers([]string{"127.0.0.1:1", addrs[1]})
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			t0.Send(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: uint64(i)}, From: 0, To: 1})
		}
	}()
	got := c1.waitLen(t, n, 10*time.Second)
	close(stop)
	wg.Wait()
	for i, m := range got[:n] {
		if m.TS.Clock != uint64(i) {
			t.Fatalf("message %d = %+v (order lost across repoints)", i, m)
		}
	}
}

// A peer that accepts every dial but kills the connection before a write
// succeeds must see backed-off dials, not a tight dial loop: the backoff
// only resets after a successful flush.
func TestBackoffNotResetByDialAlone(t *testing.T) {
	tr, err := NewTransport(Config{
		N: 2, Local: []int{0},
		DialBackoffMin: time.Millisecond,
		DialBackoffMax: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	var dials atomic.Int64
	tr.dial = func(string) (net.Conn, error) {
		dials.Add(1)
		// Dial "succeeds" but the far end is already gone: every write
		// (well, flush) fails with io.ErrClosedPipe, deterministically.
		client, server := net.Pipe()
		_ = server.Close()
		return client, nil
	}
	tr.Start(func(int, tme.Message) {})
	tr.SetPeers([]string{"", "127.0.0.1:1"})
	tr.Send(tme.Message{Kind: tme.Request, From: 0, To: 1})

	time.Sleep(400 * time.Millisecond)
	got := dials.Load()
	// With backoff growing 1,2,4,...,250ms across failed *writes*, ~10
	// dials fit in 400ms. The old reset-on-dial bug made this ~400.
	if got == 0 || got > 25 {
		t.Fatalf("%d dials in 400ms: backoff defeated by successful dials", got)
	}
}

// Encode errors drop the message (it could never be sent anywhere) while
// the rest of the batch still flows — they must not poison the edge.
func TestSenderDropsUnencodableKeepsRest(t *testing.T) {
	o := obs.New(obs.Options{})
	t0, err := NewTransport(Config{N: 2, Local: []int{0}, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = t0.Close(); _ = t1.Close() })
	c1 := &collector{}
	t0.Start(func(int, tme.Message) {})
	t1.Start(c1.deliver)
	t0.SetPeers([]string{"", t1.Addr()})

	t0.Send(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 1}, From: 0, To: 1})
	t0.Send(tme.Message{Kind: -1, TS: ltime.Timestamp{Clock: 2}, From: 0, To: 1}) // unencodable
	t0.Send(tme.Message{Kind: tme.Reply, TS: ltime.Timestamp{Clock: 3}, From: 0, To: 1})
	got := c1.waitLen(t, 2, 5*time.Second)
	if got[0].TS.Clock != 1 || got[1].TS.Clock != 3 {
		t.Fatalf("delivered %+v, want clocks 1 then 3", got)
	}
	if d := o.Registry().Counter("wire_msgs_dropped_total", "").Value(); d != 1 {
		t.Errorf("wire_msgs_dropped_total = %d, want 1", d)
	}
}
