package wire

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Config parameterizes a TCP transport.
type Config struct {
	// N is the cluster size (required, ≥ 1).
	N int
	// Local lists the process ids this transport hosts (required, at
	// least one). Messages to local ids are delivered in-process;
	// messages to the rest are framed onto per-edge TCP connections.
	Local []int
	// Listen is the TCP listen address. Default "127.0.0.1:0" (loopback,
	// kernel-chosen port — read it back with Addr).
	Listen string
	// DialBackoffMin/Max bound the exponential reconnect backoff.
	// Defaults 20ms / 2s.
	DialBackoffMin, DialBackoffMax time.Duration
	// Obs, when non-nil, receives wire metrics (all goroutine-safe).
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.DialBackoffMin <= 0 {
		c.DialBackoffMin = 20 * time.Millisecond
	}
	if c.DialBackoffMax < c.DialBackoffMin {
		c.DialBackoffMax = 2 * time.Second
	}
	return c
}

// wireInstruments caches the transport's obs handles; nil fields (no
// observability) make every publish a no-op.
type wireInstruments struct {
	sent       *obs.Counter
	recv       *obs.Counter
	dropped    *obs.Counter
	dials      *obs.Counter
	dialErrors *obs.Counter
	connErrors *obs.Counter
}

func newWireInstruments(o *obs.Obs) wireInstruments {
	if o == nil {
		return wireInstruments{}
	}
	r := o.Registry()
	return wireInstruments{
		sent:       r.Counter("wire_msgs_sent_total", "messages framed onto TCP connections"),
		recv:       r.Counter("wire_msgs_recv_total", "messages deframed from TCP connections"),
		dropped:    r.Counter("wire_msgs_dropped_total", "messages dropped (unknown peer, no delivery callback, or misrouted)"),
		dials:      r.Counter("wire_dials_total", "successful TCP dials"),
		dialErrors: r.Counter("wire_dial_errors_total", "failed TCP dial attempts"),
		connErrors: r.Counter("wire_conn_errors_total", "connection read/write errors (excluding clean close)"),
	}
}

// Transport carries TME messages over TCP: one framed connection per
// directed edge, established lazily and redialed with exponential backoff,
// so each edge is a FIFO stream exactly like the simulator's channels. It
// satisfies the runtime.Transport seam.
//
// Lifecycle: NewTransport listens immediately (Addr returns the bound
// address, useful with ":0"), SetPeers installs the dial addresses, Start
// installs the delivery callback and begins accepting, Close tears
// everything down.
type Transport struct {
	cfg   Config
	ln    net.Listener
	local []bool
	ins   wireInstruments

	mu      sync.Mutex
	peers   []string
	edges   map[edgeKey]*outEdge
	deliver func(dst int, m tme.Message)
	conns   map[net.Conn]struct{}
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type edgeKey struct{ src, dst int }

// outEdge is one directed outgoing link: an unbounded FIFO queue drained
// by a sender goroutine that owns the edge's connection.
type outEdge struct {
	dst int
	q   *msgQueue
}

// NewTransport validates cfg and binds the listener.
func NewTransport(cfg Config) (*Transport, error) {
	if cfg.N < 1 || len(cfg.Local) == 0 {
		return nil, fmt.Errorf("wire: Config.N (%d) and Local are required", cfg.N)
	}
	cfg = cfg.withDefaults()
	t := &Transport{
		cfg:   cfg,
		local: make([]bool, cfg.N),
		ins:   newWireInstruments(cfg.Obs),
		edges: make(map[edgeKey]*outEdge),
		peers: make([]string, cfg.N),
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
	for _, id := range cfg.Local {
		if id < 0 || id >= cfg.N {
			return nil, fmt.Errorf("wire: Config.Local id %d out of range [0,%d)", id, cfg.N)
		}
		t.local[id] = true
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Listen, err)
	}
	t.ln = ln
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeers installs the dial address of every process id (entries for
// local ids are ignored). May be called again to repoint edges; the next
// (re)dial uses the new address.
func (t *Transport) SetPeers(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	copy(t.peers, addrs)
}

// Start installs the delivery callback and begins accepting inbound
// connections. Part of the runtime.Transport contract.
func (t *Transport) Start(deliver func(dst int, m tme.Message)) {
	t.mu.Lock()
	t.deliver = deliver
	t.mu.Unlock()
	t.wg.Add(1)
	//gblint:ignore determinism the TCP transport runs on real sockets; determinism is the simulator's job
	go t.acceptLoop()
}

// Send routes m: local destinations deliver in-process, remote ones go to
// the (lazily created) edge sender. Never blocks on the network.
func (t *Transport) Send(m tme.Message) {
	if m.To < 0 || m.To >= t.cfg.N {
		t.ins.dropped.Inc()
		return
	}
	if t.local[m.To] {
		t.mu.Lock()
		d := t.deliver
		t.mu.Unlock()
		if d == nil {
			t.ins.dropped.Inc()
			return
		}
		d(m.To, m)
		return
	}
	e := t.edge(m.From, m.To)
	if e == nil {
		t.ins.dropped.Inc()
		return
	}
	e.q.put(m)
}

// edge returns the sender for (src,dst), creating it on first use.
func (t *Transport) edge(src, dst int) *outEdge {
	k := edgeKey{src, dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if e, ok := t.edges[k]; ok {
		return e
	}
	e := &outEdge{dst: dst, q: newMsgQueue()}
	t.edges[k] = e
	t.wg.Add(1)
	//gblint:ignore determinism one sender goroutine per TCP edge mirrors the in-process forwarder model
	go t.sender(e)
	return e
}

// Close stops accepting, closes every connection, and joins all transport
// goroutines. Part of the runtime.Transport contract.
func (t *Transport) Close() error {
	t.once.Do(func() {
		t.mu.Lock()
		t.closed = true
		for c := range t.conns {
			_ = c.Close()
		}
		t.mu.Unlock()
		close(t.stop)
		_ = t.ln.Close()
	})
	t.wg.Wait()
	return nil
}

func (t *Transport) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *Transport) untrack(c net.Conn) {
	_ = c.Close()
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

func (t *Transport) peerAddr(id int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peers[id]
}

// acceptLoop owns the listener.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		if !t.track(c) {
			return
		}
		t.wg.Add(1)
		//gblint:ignore determinism one reader goroutine per inbound TCP connection
		go t.serveConn(c)
	}
}

// serveConn deframes one inbound connection until error or close. A
// malformed frame loses stream framing, so the connection is dropped (the
// peer redials).
func (t *Transport) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer t.untrack(c)
	r := NewReader(c)
	for {
		m, err := r.ReadMessage()
		if err != nil {
			if err != io.EOF {
				t.ins.connErrors.Inc()
			}
			return
		}
		t.ins.recv.Inc()
		if m.To < 0 || m.To >= t.cfg.N || !t.local[m.To] {
			t.ins.dropped.Inc()
			continue
		}
		t.mu.Lock()
		d := t.deliver
		t.mu.Unlock()
		if d == nil {
			t.ins.dropped.Inc()
			continue
		}
		d(m.To, m)
	}
}

// sender drains one edge in FIFO order. The current message is retried
// across redials (with exponential backoff), so a crashed-and-restarted
// peer picks the stream back up; unsendable messages only die with the
// transport.
func (t *Transport) sender(e *outEdge) {
	defer t.wg.Done()
	var conn net.Conn
	var w *Writer
	dropConn := func() {
		if conn != nil {
			t.untrack(conn)
			conn, w = nil, nil
		}
	}
	defer dropConn()
	backoff := t.cfg.DialBackoffMin
	for {
		m, ok := e.q.get(t.stop)
		if !ok {
			return
		}
		for {
			if conn == nil {
				addr := t.peerAddr(e.dst)
				if addr == "" {
					// Peer address not yet known: wait and retry, the
					// queue keeps FIFO order in the meantime.
					if !sleepUntil(t.stop, backoff) {
						return
					}
					backoff = nextBackoff(backoff, t.cfg.DialBackoffMax)
					continue
				}
				c, err := net.DialTimeout("tcp", addr, time.Second)
				if err != nil {
					t.ins.dialErrors.Inc()
					if !sleepUntil(t.stop, backoff) {
						return
					}
					backoff = nextBackoff(backoff, t.cfg.DialBackoffMax)
					continue
				}
				if !t.track(c) {
					return
				}
				t.ins.dials.Inc()
				conn, w = c, NewWriter(c)
				backoff = t.cfg.DialBackoffMin
			}
			if err := w.WriteMessage(m); err != nil {
				t.ins.connErrors.Inc()
				dropConn()
				select {
				case <-t.stop:
					return
				default:
				}
				continue
			}
			t.ins.sent.Inc()
			break
		}
	}
}

// sleepUntil waits d or until stop closes; false means stop.
func sleepUntil(stop <-chan struct{}, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

func nextBackoff(cur, max time.Duration) time.Duration {
	cur *= 2
	if cur > max {
		return max
	}
	return cur
}

// msgQueue is an unbounded FIFO with blocking get — the wire-side twin of
// the runtime's mailbox (which this package cannot import).
type msgQueue struct {
	mu     sync.Mutex
	items  []tme.Message
	signal chan struct{} // capacity 1: "items may be non-empty"
}

func newMsgQueue() *msgQueue {
	return &msgQueue{signal: make(chan struct{}, 1)}
}

func (q *msgQueue) put(m tme.Message) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// get blocks until an item is available or stop closes.
func (q *msgQueue) get(stop <-chan struct{}) (tme.Message, bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			m := q.items[0]
			copy(q.items, q.items[1:])
			q.items = q.items[:len(q.items)-1]
			q.mu.Unlock()
			return m, true
		}
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-stop:
			return tme.Message{}, false
		}
	}
}

func (q *msgQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
