package wire

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Config parameterizes a TCP transport.
type Config struct {
	// N is the cluster size (required, ≥ 1).
	N int
	// Local lists the process ids this transport hosts (required, at
	// least one). Messages to local ids are delivered in-process;
	// messages to the rest are framed onto per-edge TCP connections.
	Local []int
	// Listen is the TCP listen address. Default "127.0.0.1:0" (loopback,
	// kernel-chosen port — read it back with Addr).
	Listen string
	// Codec selects the frame encoding for *outgoing* connections:
	// Version (1, the default) or Version2 (compact varint frames,
	// announced per connection with a preamble). Inbound connections
	// always auto-detect, so mixed-codec clusters interoperate.
	Codec int
	// DialBackoffMin/Max bound the exponential reconnect backoff.
	// Defaults 20ms / 2s.
	DialBackoffMin, DialBackoffMax time.Duration
	// Obs, when non-nil, receives wire metrics (all goroutine-safe).
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Codec == 0 {
		c.Codec = Version
	}
	if c.DialBackoffMin <= 0 {
		c.DialBackoffMin = 20 * time.Millisecond
	}
	if c.DialBackoffMax < c.DialBackoffMin {
		c.DialBackoffMax = 2 * time.Second
	}
	return c
}

// wireInstruments caches the transport's obs handles; nil fields (no
// observability) make every publish a no-op.
type wireInstruments struct {
	sent       *obs.Counter
	recv       *obs.Counter
	dropped    *obs.Counter
	dials      *obs.Counter
	dialErrors *obs.Counter
	connErrors *obs.Counter
	flushes    *obs.Counter
	bytesSent  *obs.Counter
	v2Conns    *obs.Counter
	batchSize  *obs.Histogram
}

func newWireInstruments(o *obs.Obs) wireInstruments {
	if o == nil {
		return wireInstruments{}
	}
	r := o.Registry()
	return wireInstruments{
		sent:       r.Counter("wire_msgs_sent_total", "messages framed onto TCP connections"),
		recv:       r.Counter("wire_msgs_recv_total", "messages deframed from TCP connections"),
		dropped:    r.Counter("wire_msgs_dropped_total", "messages dropped (unknown peer, no delivery callback, misrouted, or unencodable)"),
		dials:      r.Counter("wire_dials_total", "successful TCP dials"),
		dialErrors: r.Counter("wire_dial_errors_total", "failed TCP dial attempts"),
		connErrors: r.Counter("wire_conn_errors_total", "connection read/write errors (excluding clean close)"),
		flushes:    r.Counter("wire_flushes_total", "batched sender flushes (≈ write syscalls)"),
		bytesSent:  r.Counter("wire_bytes_sent_total", "frame bytes flushed onto TCP connections"),
		v2Conns:    r.Counter("wire_v2_conns_total", "inbound connections negotiated to the v2 codec"),
		batchSize:  r.Histogram("wire_batch_size", "messages per sender flush", []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}),
	}
}

// Transport carries TME messages over TCP: one framed connection per
// directed edge, established lazily and redialed with exponential backoff,
// so each edge is a FIFO stream exactly like the simulator's channels. It
// satisfies the runtime.Transport seam.
//
// Lifecycle: NewTransport listens immediately (Addr returns the bound
// address, useful with ":0"), SetPeers installs the dial addresses, Start
// installs the delivery callback and begins accepting, Close tears
// everything down.
type Transport struct {
	cfg   Config
	ln    net.Listener
	local []bool
	ins   wireInstruments

	// deliver and peers are read on every message by Send, the edge
	// senders, and every inbound reader, so both live behind atomic
	// pointers instead of the mutex: Start/SetPeers publish a fresh
	// value, hot paths Load without contention.
	deliver atomic.Pointer[func(dst int, m tme.Message)]
	peers   atomic.Pointer[[]string]

	// dial is the edge dialer, swappable by tests (backoff behaviour
	// under dial-succeeds-write-fails peers needs a deterministic conn).
	dial func(addr string) (net.Conn, error)

	mu     sync.Mutex
	edges  map[edgeKey]*outEdge  //gblint:guardedby mu
	conns  map[net.Conn]struct{} //gblint:guardedby mu
	closed bool                  //gblint:guardedby mu

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type edgeKey struct{ src, dst int }

// outEdge is one directed outgoing link: an unbounded FIFO queue drained
// by a sender goroutine that owns the edge's connection.
type outEdge struct {
	dst int
	q   *msgQueue
}

// NewTransport validates cfg and binds the listener.
func NewTransport(cfg Config) (*Transport, error) {
	if cfg.N < 1 || len(cfg.Local) == 0 {
		return nil, fmt.Errorf("wire: Config.N (%d) and Local are required", cfg.N)
	}
	cfg = cfg.withDefaults()
	if cfg.Codec != Version && cfg.Codec != Version2 {
		return nil, fmt.Errorf("wire: Config.Codec %d is not a known version (want %d or %d)", cfg.Codec, Version, Version2)
	}
	t := &Transport{
		cfg:   cfg,
		local: make([]bool, cfg.N),
		ins:   newWireInstruments(cfg.Obs),
		edges: make(map[edgeKey]*outEdge),
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
	t.dial = func(addr string) (net.Conn, error) { return net.DialTimeout("tcp", addr, time.Second) }
	peers := make([]string, cfg.N)
	t.peers.Store(&peers)
	for _, id := range cfg.Local {
		if id < 0 || id >= cfg.N {
			return nil, fmt.Errorf("wire: Config.Local id %d out of range [0,%d)", id, cfg.N)
		}
		t.local[id] = true
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("wire: listen %s: %w", cfg.Listen, err)
	}
	t.ln = ln
	return t, nil
}

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// SetPeers installs the dial address of every process id (entries for
// local ids are ignored). May be called again to repoint edges; the next
// (re)dial uses the new address.
func (t *Transport) SetPeers(addrs []string) {
	peers := make([]string, t.cfg.N)
	copy(peers, addrs)
	t.peers.Store(&peers)
}

// Start installs the delivery callback and begins accepting inbound
// connections. Part of the runtime.Transport contract.
func (t *Transport) Start(deliver func(dst int, m tme.Message)) {
	if deliver != nil {
		t.deliver.Store(&deliver)
	}
	t.wg.Add(1)
	//gblint:ignore determinism the TCP transport runs on real sockets; determinism is the simulator's job
	go t.acceptLoop()
}

// Send routes m: local destinations deliver in-process, remote ones go to
// the (lazily created) edge sender. Never blocks on the network.
func (t *Transport) Send(m tme.Message) {
	if m.To < 0 || m.To >= t.cfg.N {
		t.ins.dropped.Inc()
		return
	}
	if t.local[m.To] {
		d := t.deliver.Load()
		if d == nil {
			t.ins.dropped.Inc()
			return
		}
		(*d)(m.To, m)
		return
	}
	e := t.edge(m.From, m.To)
	if e == nil {
		t.ins.dropped.Inc()
		return
	}
	e.q.put(m)
}

// edge returns the sender for (src,dst), creating it on first use.
func (t *Transport) edge(src, dst int) *outEdge {
	k := edgeKey{src, dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if e, ok := t.edges[k]; ok {
		return e
	}
	e := &outEdge{dst: dst, q: newMsgQueue()}
	t.edges[k] = e
	t.wg.Add(1)
	//gblint:ignore determinism one sender goroutine per TCP edge mirrors the in-process forwarder model
	go t.sender(e)
	return e
}

// Close stops accepting, closes every connection, and joins all transport
// goroutines. Part of the runtime.Transport contract.
func (t *Transport) Close() error {
	t.once.Do(func() {
		t.mu.Lock()
		t.closed = true
		for c := range t.conns {
			_ = c.Close()
		}
		t.mu.Unlock()
		close(t.stop)
		_ = t.ln.Close()
	})
	t.wg.Wait()
	return nil
}

func (t *Transport) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *Transport) untrack(c net.Conn) {
	_ = c.Close()
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

func (t *Transport) peerAddr(id int) string {
	return (*t.peers.Load())[id]
}

// acceptLoop owns the listener.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		if !t.track(c) {
			return
		}
		t.wg.Add(1)
		//gblint:ignore determinism one reader goroutine per inbound TCP connection
		go t.serveConn(c)
	}
}

// serveConn deframes one inbound connection until error or close. The
// whole stream goes through one buffered reader, so a frame costs a
// buffer copy, not a syscall; the codec version is negotiated once from
// the connection preamble (v2 announces itself, anything else is v1). A
// malformed frame loses stream framing, so the connection is dropped
// (the peer redials).
func (t *Transport) serveConn(c net.Conn) {
	defer t.wg.Done()
	defer t.untrack(c)
	br := bufio.NewReaderSize(c, connBufSize)
	var r1 *Reader
	var r2 *V2Reader
	if sniffV2(br) {
		t.ins.v2Conns.Inc()
		r2 = NewV2Reader(br)
	} else {
		r1 = NewReader(br)
	}
	for {
		var m tme.Message
		var err error
		if r2 != nil {
			m, err = r2.ReadMessage()
		} else {
			m, err = r1.ReadMessage()
		}
		if err != nil {
			if err != io.EOF {
				t.ins.connErrors.Inc()
			}
			return
		}
		t.ins.recv.Inc()
		if m.To < 0 || m.To >= t.cfg.N || !t.local[m.To] {
			t.ins.dropped.Inc()
			continue
		}
		d := t.deliver.Load()
		if d == nil {
			t.ins.dropped.Inc()
			continue
		}
		(*d)(m.To, m)
	}
}

// sniffV2 reports whether the connection opens with the v2 preamble,
// consuming it when present. Any other prefix (including a short or
// already-EOF stream) leaves the reader untouched for the v1 deframer.
func sniffV2(br *bufio.Reader) bool {
	pre, err := br.Peek(len(v2Preamble))
	if err != nil || string(pre) != v2Preamble {
		return false
	}
	_, _ = br.Discard(len(v2Preamble))
	return true
}

// Retained-buffer bounds for the per-edge sender: a burst may grow the
// pending batch and frame buffer arbitrarily, but between drain turns the
// sender keeps at most this much, so one spike does not pin memory for
// the life of the edge.
const (
	connBufSize      = 64 << 10
	maxRetainedMsgs  = 16 << 10
	maxRetainedBytes = 1 << 20
)

// sender drains one edge in FIFO order, batching: every message queued at
// drain time is encoded into one pooled frame buffer and flushed with a
// single write, so the syscall and lock cost is per *batch*, not per
// message. Messages drained but not yet flushed are retried across
// redials (with exponential backoff), so a crashed-and-restarted peer
// picks the stream back up; unsendable messages only die with the
// transport. The backoff resets only after a successful flush — a peer
// that accepts dials and immediately resets cannot hold the sender in a
// tight dial loop.
func (t *Transport) sender(e *outEdge) {
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	var enc *V2Encoder // nil on v1 connections
	var pending []tme.Message
	var frames []byte
	dropConn := func() {
		if conn != nil {
			t.untrack(conn)
			conn, bw, enc = nil, nil, nil
		}
	}
	defer dropConn()
	backoff := t.cfg.DialBackoffMin
	for {
		if len(pending) == 0 {
			var ok bool
			pending, ok = e.q.drain(t.stop, pending[:0])
			if !ok {
				return
			}
		}
		if conn == nil {
			addr := t.peerAddr(e.dst)
			if addr == "" {
				// Peer address not yet known: wait and retry, the
				// queue keeps FIFO order in the meantime.
				if !sleepUntil(t.stop, backoff) {
					return
				}
				backoff = nextBackoff(backoff, t.cfg.DialBackoffMax)
				continue
			}
			c, err := t.dial(addr)
			if err != nil {
				t.ins.dialErrors.Inc()
				if !sleepUntil(t.stop, backoff) {
					return
				}
				backoff = nextBackoff(backoff, t.cfg.DialBackoffMax)
				continue
			}
			if !t.track(c) {
				return
			}
			t.ins.dials.Inc()
			conn, bw = c, bufio.NewWriterSize(c, connBufSize)
			if t.cfg.Codec == Version2 {
				// Announce v2 for this connection; the encoder state
				// (clock delta, intern table) starts fresh on both ends.
				enc = NewV2Encoder()
				_, _ = bw.WriteString(v2Preamble)
			}
		}
		var err error
		frames, pending, err = t.encodeBatch(frames[:0], pending, enc)
		if err == nil {
			if len(frames) > 0 {
				_, err = bw.Write(frames)
			}
			if err == nil {
				err = bw.Flush()
			}
		}
		if err != nil {
			t.ins.connErrors.Inc()
			dropConn()
			// The pending batch is retried on the next connection; back
			// off first so a peer that resets straight after accepting
			// is still dialed at the backed-off cadence.
			if !sleepUntil(t.stop, backoff) {
				return
			}
			backoff = nextBackoff(backoff, t.cfg.DialBackoffMax)
			continue
		}
		t.ins.sent.Add(int64(len(pending)))
		t.ins.flushes.Inc()
		t.ins.bytesSent.Add(int64(len(frames)))
		t.ins.batchSize.Observe(int64(len(pending)))
		pending = pending[:0]
		backoff = t.cfg.DialBackoffMin
		if cap(pending) > maxRetainedMsgs {
			pending = nil
		}
		if cap(frames) > maxRetainedBytes {
			frames = nil
		}
	}
}

// encodeBatch appends the frames for every message of batch to dst using
// enc (nil = v1 codec). Unencodable messages (fields outside the wire
// shape) are dropped from the batch — they could never be sent on any
// connection — and the surviving batch is returned; an error return means
// nothing was appended beyond the already-encoded prefix and the caller
// must treat the connection as poisoned (cannot happen today: both codecs
// only fail per message).
//
//gblint:hotpath
func (t *Transport) encodeBatch(dst []byte, batch []tme.Message, enc *V2Encoder) ([]byte, []tme.Message, error) {
	kept := batch[:0]
	for _, m := range batch {
		var b []byte
		var err error
		if enc != nil {
			b, err = enc.AppendFrame(dst, m)
		} else {
			b, err = AppendFrame(dst, m)
		}
		if err != nil {
			t.ins.dropped.Inc()
			continue
		}
		dst = b
		kept = append(kept, m)
	}
	return dst, kept, nil
}

// sleepUntil waits d or until stop closes; false means stop.
func sleepUntil(stop <-chan struct{}, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-stop:
		return false
	}
}

func nextBackoff(cur, max time.Duration) time.Duration {
	cur *= 2
	if cur > max {
		return max
	}
	return cur
}

// msgQueue is an unbounded FIFO with blocking drain — the wire-side twin
// of the runtime's mailbox (which this package cannot import). Storage is
// a head-indexed ring, so steady-state put/get/drain never shift elements
// and never allocate: capacity grows only when the queue outpaces its
// consumer and is reused forever after.
type msgQueue struct {
	mu sync.Mutex
	//gblint:guardedby mu
	buf []tme.Message // ring storage; len(buf) is the capacity
	//gblint:guardedby mu
	head int // index of the oldest item
	//gblint:guardedby mu
	n      int           // items queued
	signal chan struct{} // capacity 1: "items may be non-empty"
}

func newMsgQueue() *msgQueue {
	return &msgQueue{signal: make(chan struct{}, 1)}
}

//gblint:hotpath
func (q *msgQueue) put(m tme.Message) {
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = m
	q.n++
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// grow doubles the ring (called with q.mu held, queue full).
//
//gblint:guardedby mu
func (q *msgQueue) grow() {
	c := len(q.buf) * 2
	if c < 16 {
		c = 16
	}
	buf := make([]tme.Message, c)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = buf, 0
}

// get pops one message, blocking until an item is available or stop
// closes. Pops are O(1): the head index advances, nothing shifts.
//
//gblint:hotpath
func (q *msgQueue) get(stop <-chan struct{}) (tme.Message, bool) {
	for {
		q.mu.Lock()
		if q.n > 0 {
			m := q.buf[q.head]
			q.head = (q.head + 1) % len(q.buf)
			q.n--
			q.mu.Unlock()
			return m, true
		}
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-stop:
			return tme.Message{}, false
		}
	}
}

// drain appends every queued message to dst in FIFO order under one lock
// acquisition, blocking until at least one is available or stop closes.
//
//gblint:hotpath
func (q *msgQueue) drain(stop <-chan struct{}, dst []tme.Message) ([]tme.Message, bool) {
	for {
		q.mu.Lock()
		if q.n > 0 {
			first := q.head + q.n
			if first > len(q.buf) {
				first = len(q.buf)
			}
			dst = append(dst, q.buf[q.head:first]...)
			if wrapped := q.head + q.n - len(q.buf); wrapped > 0 {
				dst = append(dst, q.buf[:wrapped]...)
			}
			q.head, q.n = 0, 0
			q.mu.Unlock()
			return dst, true
		}
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-stop:
			return dst, false
		}
	}
}

func (q *msgQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// capacity reports the ring's current storage size (for reuse tests).
func (q *msgQueue) capacity() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}
