package wire

import (
	"bytes"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/fault"
)

func scheduleCfg() ScheduleConfig {
	return ScheduleConfig{N: 5, Duration: 10 * time.Second, Bursts: 4, MaxPerBurst: 5, Partition: true}
}

// The acceptance property: same seed ⇒ byte-identical schedule.
func TestScheduleDeterministicForSeed(t *testing.T) {
	a := NewFaultSchedule(42, scheduleCfg())
	b := NewFaultSchedule(42, scheduleCfg())
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatalf("same seed produced different schedules:\n%s\nvs\n%s", a.JSON(), b.JSON())
	}
	c := NewFaultSchedule(43, scheduleCfg())
	if bytes.Equal(a.JSON(), c.JSON()) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestScheduleShape(t *testing.T) {
	cfg := scheduleCfg()
	s := NewFaultSchedule(7, cfg)
	durMS := cfg.Duration.Milliseconds()
	var faults, partitions, heals int
	last := int64(-1)
	for _, e := range s.Events {
		if e.AtMS < last {
			t.Fatalf("events out of order: %+v", s.Events)
		}
		last = e.AtMS
		if e.AtMS < 0 || e.AtMS > durMS*6/10 {
			t.Errorf("event at %dms outside the fault window", e.AtMS)
		}
		switch e.Verb {
		case "partition":
			partitions++
			if len(e.Group) < 1 || len(e.Group) > cfg.N/2 {
				t.Errorf("partition group %v out of bounds", e.Group)
			}
		case "heal":
			heals++
		default:
			k, ok := e.FaultKind()
			if !ok {
				t.Fatalf("unknown verb %q", e.Verb)
			}
			if k < fault.MessageLoss || k > fault.ChannelFlush {
				t.Fatalf("verb %q maps to invalid kind %d", e.Verb, k)
			}
			if e.Count < 1 || e.Count > cfg.MaxPerBurst {
				t.Errorf("burst count %d out of bounds", e.Count)
			}
			faults++
		}
	}
	if faults != cfg.Bursts || partitions != 1 || heals != 1 {
		t.Errorf("schedule has %d bursts / %d partitions / %d heals, want %d/1/1",
			faults, partitions, heals, cfg.Bursts)
	}
}

func TestFaultKindRoundTrip(t *testing.T) {
	for k := fault.MessageLoss; k <= fault.ChannelFlush; k++ {
		e := FaultEvent{Verb: k.String()}
		got, ok := e.FaultKind()
		if !ok || got != k {
			t.Errorf("FaultKind(%q) = (%v,%v), want %v", e.Verb, got, ok, k)
		}
	}
	if _, ok := (FaultEvent{Verb: "partition"}).FaultKind(); ok {
		t.Error("partition mapped to a fault.Kind")
	}
}

func TestScheduleAsymmetricVerb(t *testing.T) {
	cfg := scheduleCfg()
	cfg.Asymmetric = true
	s := NewFaultSchedule(7, cfg)
	var oneway, heals int
	for _, e := range s.Events {
		switch e.Verb {
		case "partition-oneway":
			oneway++
			if len(e.Group) < 1 {
				t.Errorf("one-way partition with empty group")
			}
		case "partition":
			t.Error("Asymmetric schedule planned a symmetric partition")
		case "heal":
			heals++
		}
	}
	if oneway != 1 || heals != 1 {
		t.Errorf("schedule has %d one-way partitions / %d heals, want 1/1", oneway, heals)
	}
	// Group draw is shared with the symmetric path: same seed, same victims.
	sym := NewFaultSchedule(7, scheduleCfg())
	for i := range s.Events {
		if s.Events[i].AtMS != sym.Events[i].AtMS {
			t.Fatal("asymmetric flag changed the event timeline")
		}
	}
}

func TestScheduleChurn(t *testing.T) {
	cfg := ScheduleConfig{N: 5, Duration: 10 * time.Second, Bursts: 1, Churn: 3}
	s := NewFaultSchedule(9, cfg)
	var parts, heals int
	for _, e := range s.Events {
		switch e.Verb {
		case "partition":
			parts++
			if len(e.Group) != 1 {
				t.Errorf("churn partition group %v, want a single node", e.Group)
			}
		case "heal":
			heals++
		}
	}
	if parts != 3 || heals != 3 {
		t.Errorf("churn planned %d partitions / %d heals, want 3/3", parts, heals)
	}
	a := NewFaultSchedule(9, cfg)
	if !bytes.Equal(s.JSON(), a.JSON()) {
		t.Error("churn schedule not deterministic for seed")
	}
}
