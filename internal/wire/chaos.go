package wire

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/engine"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// nowNS reads the wall clock; the chaos proxy shares the runtime's
// real-time convergence timeline.
//
//gblint:ignore determinism the chaos proxy runs on wall-clock time by design; determinism lives in the schedule, not the clock
func nowNS() int64 { return time.Now().UnixNano() }

// Link is the transport-shaped seam Chaos interposes on — structurally
// identical to runtime.Transport (which this package must not import).
// *Transport implements it, and Chaos.Pipe returns one.
type Link interface {
	Start(deliver func(dst int, m tme.Message))
	Send(m tme.Message)
	Close() error
}

// ChaosConfig parameterizes the fault proxy.
type ChaosConfig struct {
	// N is the cluster size (required).
	N int
	// Shards is how many protocol instances share the wire (default 1).
	// Each shard gets its own delay-draw rng keyed off Seed, so one shard's
	// traffic volume cannot shift the delays another shard sees; shard 0
	// uses Seed directly, keeping unsharded draw sequences unchanged.
	Shards int
	// Seed drives the proxy's delay draws.
	Seed int64
	// MinDelay/MaxDelay bound the per-message hold time. The hold window
	// is what gives in-flight messages a queue the fault verbs can reach
	// — with zero delay the wire would never have anything to drop.
	// Defaults 500µs / 3ms.
	MinDelay, MaxDelay time.Duration
	// Obs, when non-nil, receives chaos metrics, trace events, and the
	// convergence timeline (fault times feed RecordFault).
	Obs *obs.Obs
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 500 * time.Microsecond
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = 3 * time.Millisecond
	}
	return c
}

// chaosEntry is one held message: due says when the scheduler releases it
// onto out.
type chaosEntry struct {
	m   tme.Message
	due int64 // wall-clock ns
	out Link
}

type chaosInstruments struct {
	held       *obs.Counter
	released   *obs.Counter
	partDrop   *obs.Counter
	partitions *obs.Counter
	heals      *obs.Counter
	trace      *obs.Trace
	conv       *obs.Convergence
}

func newChaosInstruments(o *obs.Obs) chaosInstruments {
	if o == nil {
		return chaosInstruments{}
	}
	r := o.Registry()
	return chaosInstruments{
		held:       r.Counter("chaos_msgs_held_total", "messages entering the chaos proxy"),
		released:   r.Counter("chaos_msgs_released_total", "messages released downstream"),
		partDrop:   r.Counter("chaos_partition_dropped_total", "messages dropped for crossing a partition"),
		partitions: r.Counter("chaos_partitions_total", "Isolate calls"),
		heals:      r.Counter("chaos_heals_total", "Heal calls"),
		trace:      o.Tracer(),
		conv:       o.Convergence(),
	}
}

// Chaos is an in-path fault proxy: every message Pipe'd through it is held
// in a per-edge FIFO queue for a (seeded) random delay before being
// released downstream. While held, messages are exposed through the
// engine.Surface fault verbs — drop, duplicate, corrupt, flush — so
// internal/fault's Mix and Injector drive live TCP traffic exactly as they
// drive the simulators. Isolate/Heal add the partition verb: messages
// crossing the cut are dropped at release time.
//
// Chaos implements engine.Surface with wall-clock Now (sharing the
// convergence timeline with the runtime's entry records) and a nil Core:
// Injector.Burst and Injector.Apply work against it; At-based Schedule
// does not (live runs schedule faults by wall clock — see FaultSchedule).
type Chaos struct {
	cfg ChaosConfig
	eps []channel.Endpoint
	ins chaosInstruments

	mu       sync.Mutex
	rngs     []*rand.Rand                      //gblint:guardedby mu -- one delay stream per shard
	queues   [][]chaosEntry                    //gblint:guardedby mu -- indexed by edge (src-major, self-edges omitted)
	isolated []bool                            //gblint:guardedby mu
	oneWay   bool                              //gblint:guardedby mu -- isolation drops only group→rest (gray asymmetric cut)
	perturb  func(id int, rng *rand.Rand) bool //gblint:guardedby mu
	closed   bool                              //gblint:guardedby mu

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewChaos builds the proxy and starts its release scheduler.
func NewChaos(cfg ChaosConfig) *Chaos {
	cfg2 := cfg.withDefaults()
	c := &Chaos{
		cfg:      cfg2,
		ins:      newChaosInstruments(cfg2.Obs),
		rngs:     make([]*rand.Rand, cfg2.Shards),
		queues:   make([][]chaosEntry, cfg2.N*(cfg2.N-1)),
		isolated: make([]bool, cfg2.N),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	for s := range c.rngs {
		c.rngs[s] = rand.New(rand.NewSource(chaosShardSeed(cfg2.Seed, s)))
	}
	for s := 0; s < cfg2.N; s++ {
		for d := 0; d < cfg2.N; d++ {
			if s != d {
				c.eps = append(c.eps, channel.Endpoint{Src: s, Dst: d})
			}
		}
	}
	c.wg.Add(1)
	//gblint:ignore determinism the release scheduler is a wall-clock goroutine by design
	go c.scheduler()
	return c
}

// Pipe interposes the proxy in front of next: the returned Link delays
// and fault-injects every Send before forwarding to next. Start and Close
// pass straight through (next stays owned by its cluster).
func (c *Chaos) Pipe(next Link) Link { return &pipeLink{c: c, next: next} }

type pipeLink struct {
	c    *Chaos
	next Link
}

func (p *pipeLink) Start(deliver func(dst int, m tme.Message)) { p.next.Start(deliver) }
func (p *pipeLink) Send(m tme.Message)                         { p.c.submit(m, p.next) }
func (p *pipeLink) Close() error                               { return p.next.Close() }

// SetPerturb installs the process-state corruption hook backing
// FaultPerturb (the wire cannot reach node state itself; the cluster
// owner can). Install before faults fire.
func (c *Chaos) SetPerturb(f func(id int, rng *rand.Rand) bool) {
	c.mu.Lock()
	c.perturb = f
	c.mu.Unlock()
}

// Isolate partitions the cluster: messages between the given group and
// the rest are dropped at release time until Heal. A second call replaces
// the first group.
func (c *Chaos) Isolate(ids ...int) { c.isolate(false, ids) }

// IsolateOneWay installs an asymmetric cut: messages FROM the group to
// the rest are dropped, but messages TO the group still arrive — the
// gray-failure shape where a sick node hears the cluster yet cannot be
// heard. A second Isolate/IsolateOneWay call replaces the cut.
func (c *Chaos) IsolateOneWay(ids ...int) { c.isolate(true, ids) }

func (c *Chaos) isolate(oneWay bool, ids []int) {
	now := nowNS()
	c.mu.Lock()
	for i := range c.isolated {
		c.isolated[i] = false
	}
	for _, id := range ids {
		if id >= 0 && id < c.cfg.N {
			c.isolated[id] = true
		}
	}
	c.oneWay = oneWay
	c.mu.Unlock()
	c.ins.partitions.Inc()
	c.ins.conv.RecordFault(now)
	detail := "partition"
	if oneWay {
		detail = "partition-oneway"
	}
	c.ins.trace.Emit(obs.Event{Time: now, Kind: obs.EvFault, A: -1, B: -1, Detail: detail})
}

// Heal removes the partition. The heal restarts the convergence window:
// recovery time is measured from the network becoming whole again.
func (c *Chaos) Heal() {
	now := nowNS()
	c.mu.Lock()
	for i := range c.isolated {
		c.isolated[i] = false
	}
	c.oneWay = false
	c.mu.Unlock()
	c.ins.heals.Inc()
	c.ins.conv.RecordFault(now)
	c.ins.trace.Emit(obs.Event{Time: now, Kind: obs.EvFault, A: -1, B: -1, Detail: "heal"})
}

// Close stops the scheduler and drops everything still held.
func (c *Chaos) Close() error {
	c.once.Do(func() {
		c.mu.Lock()
		c.closed = true
		for i := range c.queues {
			c.queues[i] = nil
		}
		c.mu.Unlock()
		close(c.stop)
	})
	c.wg.Wait()
	return nil
}

// submit holds m for a random delay before release onto out.
func (c *Chaos) submit(m tme.Message, out Link) {
	idx, ok := c.edgeIndex(m.From, m.To)
	if !ok {
		out.Send(m) // not a proxyable edge (shouldn't happen: route validates)
		return
	}
	if !c.hold(idx, m, out) {
		return
	}
	c.ins.held.Inc()
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// chaosShardSeed derives shard s's delay-stream seed. Shard 0 returns the
// base seed unchanged (unsharded runs keep their historical draw
// sequences); later shards mix the shard id through FNV-1a.
func chaosShardSeed(seed int64, s int) int64 {
	if s == 0 {
		return seed
	}
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(s))
	_, _ = h.Write([]byte("chaos/shard/"))
	_, _ = h.Write(b[:])
	return seed ^ int64(h.Sum64())
}

// hold draws the delay from the message's shard stream and appends the
// entry under the lock; false when the proxy is closed. A Resource outside
// the configured shard range (corruption, unsharded senders) falls back to
// stream 0.
func (c *Chaos) hold(idx int, m tme.Message, out Link) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	rng := c.rngs[0]
	if m.Resource > 0 && m.Resource < len(c.rngs) {
		rng = c.rngs[m.Resource]
	}
	span := int64(c.cfg.MaxDelay - c.cfg.MinDelay)
	delay := int64(c.cfg.MinDelay)
	if span > 0 {
		delay += rng.Int63n(span + 1)
	}
	c.queues[idx] = append(c.queues[idx], chaosEntry{m: m, due: nowNS() + delay, out: out})
	return true
}

// scheduler releases due messages in edge-scan order, preserving FIFO per
// edge (queues are due-ordered except for duplicates, released in queue
// order anyway).
func (c *Chaos) scheduler() {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := nowNS()
		var release []chaosEntry
		next := int64(-1)
		c.mu.Lock()
		for i := range c.queues {
			q := c.queues[i]
			n := 0
			for n < len(q) && q[n].due <= now {
				n++
			}
			if n > 0 {
				for _, e := range q[:n] {
					// Corruption may have forged From out of range; such
					// messages are inside no partition group.
					srcIso := e.m.From >= 0 && e.m.From < c.cfg.N && c.isolated[e.m.From]
					dstIso := e.m.To >= 0 && e.m.To < c.cfg.N && c.isolated[e.m.To]
					cut := srcIso != dstIso
					if c.oneWay {
						cut = srcIso && !dstIso
					}
					if cut {
						c.ins.partDrop.Inc()
						continue
					}
					release = append(release, e)
				}
				c.queues[i] = append(q[:0:0], q[n:]...)
				q = c.queues[i]
			}
			if len(q) > 0 && (next < 0 || q[0].due < next) {
				next = q[0].due
			}
		}
		c.mu.Unlock()
		for _, e := range release {
			e.out.Send(e.m)
			c.ins.released.Inc()
		}
		wait := time.Hour
		if next >= 0 {
			wait = time.Duration(next - now)
			if wait < 0 {
				wait = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-c.stop:
			return
		case <-c.kick:
		case <-timer.C:
		}
	}
}

// edgeIndex maps (src,dst) to the dense queue layout; ok=false for
// self-edges and out-of-range ids.
func (c *Chaos) edgeIndex(src, dst int) (int, bool) {
	if src < 0 || src >= c.cfg.N || dst < 0 || dst >= c.cfg.N || src == dst {
		return 0, false
	}
	idx := src * (c.cfg.N - 1)
	if dst > src {
		return idx + dst - 1, true
	}
	return idx + dst, true
}

// ---- engine.Surface ----

var _ engine.Surface = (*Chaos)(nil)

// Now returns the wall clock in nanoseconds — the proxy's "virtual time"
// is real time, shared with the runtime's entry and convergence records.
func (c *Chaos) Now() int64 { return nowNS() }

// N returns the cluster size.
func (c *Chaos) N() int { return c.cfg.N }

// Obs returns the proxy's observability bundle.
func (c *Chaos) Obs() *obs.Obs { return c.cfg.Obs }

// Core returns nil: the proxy has no virtual-time event core, so
// injectors must use Burst/Apply (wall-clock scheduling lives in
// FaultSchedule), never Schedule.
func (c *Chaos) Core() *engine.Core { return nil }

// Channels enumerates the directed edges in deterministic (src-major)
// order.
func (c *Chaos) Channels() []channel.Endpoint { return c.eps }

// QueueLen returns how many messages are currently held on ep.
func (c *Chaos) QueueLen(ep channel.Endpoint) int {
	idx, ok := c.edgeIndex(ep.Src, ep.Dst)
	if !ok {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queues[idx])
}

// FaultDrop removes the i-th held message on ep. Because the scheduler
// drains concurrently, i may have gone stale between the injector's
// QueueLen and this call; stale indexes return false.
func (c *Chaos) FaultDrop(ep channel.Endpoint, i int) bool {
	idx, ok := c.edgeIndex(ep.Src, ep.Dst)
	if !ok {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queues[idx]
	if i < 0 || i >= len(q) {
		return false
	}
	c.queues[idx] = append(q[:i], q[i+1:]...)
	return true
}

// FaultDuplicate copies the i-th held message on ep, due redeliver
// milliseconds after the original (the surface's redeliver is in substrate
// ticks; on the wire a tick is a millisecond).
func (c *Chaos) FaultDuplicate(ep channel.Endpoint, i int, redeliver int64) bool {
	idx, ok := c.edgeIndex(ep.Src, ep.Dst)
	if !ok {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queues[idx]
	if i < 0 || i >= len(q) {
		return false
	}
	dup := q[i]
	dup.due += redeliver * int64(time.Millisecond)
	c.queues[idx] = append(q, dup)
	return true
}

// FaultCorrupt scrambles one field of the i-th held message on ep — the
// same field-by-field damage the TME simulator applies, drawn from the
// injector's rng.
func (c *Chaos) FaultCorrupt(ep channel.Endpoint, i int, rng *rand.Rand) bool {
	idx, ok := c.edgeIndex(ep.Src, ep.Dst)
	if !ok {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queues[idx]
	if i < 0 || i >= len(q) {
		return false
	}
	m := &q[i].m
	switch rng.Intn(3) {
	case 0:
		m.TS = ltime.Timestamp{Clock: uint64(rng.Int63n(64)), PID: rng.Intn(c.cfg.N)}
	case 1:
		m.Kind = tme.Kind(rng.Intn(4)) // may be invalid: receivers drop it
	case 2:
		m.From = rng.Intn(c.cfg.N + 1) // may be out of range
	}
	return true
}

// FaultPerturb corrupts process id's state through the installed hook
// (false without one).
func (c *Chaos) FaultPerturb(id int, rng *rand.Rand) bool {
	c.mu.Lock()
	f := c.perturb
	c.mu.Unlock()
	if f == nil {
		return false
	}
	return f(id, rng)
}

// FaultFlush drops every message held on ep.
func (c *Chaos) FaultFlush(ep channel.Endpoint) bool {
	idx, ok := c.edgeIndex(ep.Src, ep.Dst)
	if !ok {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queues[idx]) == 0 {
		return false
	}
	c.queues[idx] = nil
	return true
}
