package wire

import (
	"math/rand"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/fault"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// fakeLink records sends in-process (no sockets).
type fakeLink struct{ c collector }

func (f *fakeLink) Start(func(dst int, m tme.Message)) {}
func (f *fakeLink) Send(m tme.Message)                 { f.c.deliver(m.To, m) }
func (f *fakeLink) Close() error                       { return nil }

func TestChaosReleasesFIFO(t *testing.T) {
	ch := NewChaos(ChaosConfig{N: 2, Seed: 1, MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})
	defer ch.Close()
	next := &fakeLink{}
	link := ch.Pipe(next)
	const n = 20
	for i := 0; i < n; i++ {
		link.Send(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: uint64(i)}, From: 0, To: 1})
	}
	got := next.c.waitLen(t, n, 5*time.Second)
	for i, m := range got {
		if m.TS.Clock != uint64(i) {
			t.Fatalf("release %d = %+v (FIFO violated)", i, m)
		}
	}
}

func TestChaosPartitionDropsAndHeals(t *testing.T) {
	ch := NewChaos(ChaosConfig{N: 3, Seed: 2, MinDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	defer ch.Close()
	next := &fakeLink{}
	link := ch.Pipe(next)

	ch.Isolate(0)
	link.Send(tme.Message{Kind: tme.Request, From: 0, To: 1}) // crosses the cut: dropped
	link.Send(tme.Message{Kind: tme.Request, From: 1, To: 2}) // inside majority: flows
	got := next.c.waitLen(t, 1, 5*time.Second)
	if got[0].From != 1 || got[0].To != 2 {
		t.Fatalf("released %+v, want the 1→2 message", got[0])
	}
	time.Sleep(20 * time.Millisecond)
	if len(next.c.snapshot()) != 1 {
		t.Fatalf("partitioned message leaked: %v", next.c.snapshot())
	}

	ch.Heal()
	link.Send(tme.Message{Kind: tme.Reply, From: 0, To: 1})
	got = next.c.waitLen(t, 2, 5*time.Second)
	if got[1].From != 0 || got[1].To != 1 {
		t.Fatalf("post-heal release = %+v", got[1])
	}
}

func TestChaosOneWayPartition(t *testing.T) {
	ch := NewChaos(ChaosConfig{N: 3, Seed: 4, MinDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	defer ch.Close()
	next := &fakeLink{}
	link := ch.Pipe(next)

	ch.IsolateOneWay(0)
	link.Send(tme.Message{Kind: tme.Request, From: 0, To: 1}) // outbound from sick node: dropped
	link.Send(tme.Message{Kind: tme.Request, From: 1, To: 0}) // inbound to sick node: flows
	link.Send(tme.Message{Kind: tme.Request, From: 1, To: 2}) // healthy edge: flows
	got := next.c.waitLen(t, 2, 5*time.Second)
	for _, m := range got {
		if m.From == 0 {
			t.Fatalf("message from the one-way-isolated node leaked: %+v", m)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if len(next.c.snapshot()) != 2 {
		t.Fatalf("unexpected releases: %v", next.c.snapshot())
	}

	// A symmetric Isolate replaces the one-way cut: inbound now drops too.
	ch.Isolate(0)
	link.Send(tme.Message{Kind: tme.Request, From: 1, To: 0})
	time.Sleep(20 * time.Millisecond)
	if len(next.c.snapshot()) != 2 {
		t.Fatalf("symmetric cut after one-way leaked a message: %v", next.c.snapshot())
	}

	ch.Heal()
	link.Send(tme.Message{Kind: tme.Reply, From: 0, To: 1})
	next.c.waitLen(t, 3, 5*time.Second)
}

// heldChaos returns a proxy whose delays are long enough that submitted
// messages stay queued for the duration of the test body.
func heldChaos(t *testing.T, n int) (*Chaos, *fakeLink, Link) {
	t.Helper()
	ch := NewChaos(ChaosConfig{N: n, Seed: 3, MinDelay: 30 * time.Second, MaxDelay: 30 * time.Second})
	t.Cleanup(func() { _ = ch.Close() })
	next := &fakeLink{}
	return ch, next, ch.Pipe(next)
}

func TestChaosSurfaceVerbs(t *testing.T) {
	ch, _, link := heldChaos(t, 2)
	ep := channel.Endpoint{Src: 0, Dst: 1}
	for i := 0; i < 3; i++ {
		link.Send(tme.Message{Kind: tme.Request, From: 0, To: 1})
	}
	if got := ch.QueueLen(ep); got != 3 {
		t.Fatalf("QueueLen = %d, want 3", got)
	}
	if !ch.FaultDrop(ep, 1) || ch.QueueLen(ep) != 2 {
		t.Fatalf("FaultDrop failed (len %d)", ch.QueueLen(ep))
	}
	if !ch.FaultDuplicate(ep, 0, 1) || ch.QueueLen(ep) != 3 {
		t.Fatalf("FaultDuplicate failed (len %d)", ch.QueueLen(ep))
	}
	rng := rand.New(rand.NewSource(7))
	if !ch.FaultCorrupt(ep, 0, rng) {
		t.Fatal("FaultCorrupt failed")
	}
	if !ch.FaultFlush(ep) || ch.QueueLen(ep) != 0 {
		t.Fatalf("FaultFlush failed (len %d)", ch.QueueLen(ep))
	}
	// Stale or invalid coordinates must report false, never panic.
	if ch.FaultDrop(ep, 0) || ch.FaultDuplicate(ep, 5, 1) || ch.FaultFlush(ep) {
		t.Error("verb on empty queue reported applied")
	}
	bad := channel.Endpoint{Src: 0, Dst: 0}
	if ch.QueueLen(bad) != 0 || ch.FaultDrop(bad, 0) || ch.FaultCorrupt(bad, 0, rng) {
		t.Error("verb on invalid endpoint reported applied")
	}
}

func TestChaosPerturbHook(t *testing.T) {
	ch, _, _ := heldChaos(t, 2)
	rng := rand.New(rand.NewSource(1))
	if ch.FaultPerturb(0, rng) {
		t.Error("FaultPerturb without hook reported applied")
	}
	var hit int
	ch.SetPerturb(func(id int, _ *rand.Rand) bool { hit = id; return true })
	if !ch.FaultPerturb(1, rng) || hit != 1 {
		t.Errorf("FaultPerturb hook: applied with id %d", hit)
	}
}

// The injector's Burst drives the live proxy through the same Surface it
// uses against the simulators.
func TestInjectorBurstOnChaos(t *testing.T) {
	ch, _, link := heldChaos(t, 3)
	for s := 0; s < 3; s++ {
		for d := 0; d < 3; d++ {
			if s != d {
				link.Send(tme.Message{Kind: tme.Request, From: s, To: d})
			}
		}
	}
	in := fault.NewInjector(11, fault.Mix{Loss: 1, Dup: 1, Corrupt: 1, Flush: 1}, fault.Options{})
	in.Burst(ch, 10)
	if in.Count() != 10 {
		t.Fatalf("injector applied %d faults, want 10", in.Count())
	}
}

func TestChaosChannelsDeterministicOrder(t *testing.T) {
	ch, _, _ := heldChaos(t, 3)
	eps := ch.Channels()
	if len(eps) != 6 {
		t.Fatalf("Channels = %d endpoints, want 6", len(eps))
	}
	want := []channel.Endpoint{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 2, Dst: 1}}
	for i, ep := range eps {
		if ep != want[i] {
			t.Fatalf("Channels[%d] = %+v, want %+v", i, ep, want[i])
		}
	}
}

// Per-shard delay streams: shard 0 keeps the historical seed (unsharded
// draw sequences replay exactly), other shards get distinct deterministic
// seeds, and a sharded proxy still releases FIFO per edge with every
// shard's traffic intact.
func TestChaosShardStreams(t *testing.T) {
	if got := chaosShardSeed(7, 0); got != 7 {
		t.Fatalf("shard 0 seed = %d, want the base seed unchanged", got)
	}
	seen := map[int64]bool{}
	for s := 0; s < 8; s++ {
		seed := chaosShardSeed(7, s)
		if seen[seed] {
			t.Fatalf("shard %d collides with an earlier shard's seed", s)
		}
		seen[seed] = true
		if seed != chaosShardSeed(7, s) {
			t.Fatalf("shard %d seed not deterministic", s)
		}
	}

	ch := NewChaos(ChaosConfig{
		N: 2, Shards: 4, Seed: 7,
		MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	})
	defer ch.Close()
	next := &fakeLink{}
	link := ch.Pipe(next)
	const n = 24
	for i := 0; i < n; i++ {
		link.Send(tme.Message{
			Kind: tme.Request, TS: ltime.Timestamp{Clock: uint64(i)},
			From: 0, To: 1, Resource: i % 4,
		})
	}
	got := next.c.waitLen(t, n, 5*time.Second)
	for i, m := range got {
		if m.TS.Clock != uint64(i) {
			t.Fatalf("release %d = %+v (per-edge FIFO broken by sharding)", i, m)
		}
		if m.Resource != i%4 {
			t.Fatalf("release %d lost its shard id: %+v", i, m)
		}
	}
}
