package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

func sampleMessages() []tme.Message {
	return []tme.Message{
		{},
		{Kind: tme.Request, TS: ltime.Timestamp{Clock: 1, PID: 0}, From: 0, To: 1},
		{Kind: tme.Reply, TS: ltime.Timestamp{Clock: 42, PID: 3}, From: 3, To: 0},
		{Kind: tme.Release, TS: ltime.Timestamp{Clock: math.MaxUint64, PID: math.MaxInt32}, From: math.MaxInt32, To: math.MinInt32},
		// Forged kinds and out-of-range ids round-trip: the fault model
		// manufactures them and receivers are responsible for dropping.
		{Kind: tme.Kind(0xEE), TS: ltime.Timestamp{Clock: 7, PID: -1}, From: -5, To: 99},
		// Sharded messages carry a resource id (the old v1 flags field).
		{Kind: tme.Request, TS: ltime.Timestamp{Clock: 9, PID: 2}, From: 2, To: 0, Resource: 3},
		{Kind: tme.Release, TS: ltime.Timestamp{Clock: 10, PID: 1}, From: 1, To: 2, Resource: math.MaxUint16},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		b, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("AppendFrame(%+v): %v", m, err)
		}
		if len(b) != FrameSize {
			t.Fatalf("frame size = %d, want %d", len(b), FrameSize)
		}
		got, err := DecodePayload(b[lenPrefixSize:])
		if err != nil {
			t.Fatalf("DecodePayload(%+v): %v", m, err)
		}
		if got != m {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestAppendFrameRejectsUnencodable(t *testing.T) {
	bad := []tme.Message{
		{Kind: -1},
		{Kind: 256},
		{From: math.MaxInt32 + 1},
		{To: math.MinInt32 - 1},
		{TS: ltime.Timestamp{PID: math.MaxInt32 + 1}},
		{Resource: -1},
		{Resource: math.MaxUint16 + 1},
	}
	for _, m := range bad {
		if _, err := AppendFrame(nil, m); !errors.Is(err, ErrFieldRange) {
			t.Errorf("AppendFrame(%+v) err = %v, want ErrFieldRange", m, err)
		}
	}
}

func TestDecodePayloadRejectsMalformed(t *testing.T) {
	good, err := AppendFrame(nil, tme.Message{Kind: tme.Request, From: 0, To: 1})
	if err != nil {
		t.Fatal(err)
	}
	payload := good[lenPrefixSize:]

	cases := []struct {
		name string
		p    []byte
		want error
	}{
		{"empty", nil, ErrBadLength},
		{"short", payload[:10], ErrBadLength},
		{"long", append(append([]byte{}, payload...), 0), ErrBadLength},
		{"version", append([]byte{9}, payload[1:]...), ErrBadVersion},
	}
	for _, c := range cases {
		if _, err := DecodePayload(c.p); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestResourceZeroFrameUnchanged pins the sharding refactor's interop
// contract: a resource-0 message encodes to the exact bytes the pre-shard
// codec produced (the resource field reuses the old always-zero flags
// bytes), so -shards 1 clusters are wire-compatible with old peers.
func TestResourceZeroFrameUnchanged(t *testing.T) {
	m := tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: 42, PID: 3}, From: 3, To: 0}
	b, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if b[6] != 0 || b[7] != 0 {
		t.Errorf("resource-0 frame has nonzero bytes at the old flags offset: % x", b[6:8])
	}
	shifted := m
	shifted.Resource = 5
	sb, err := AppendFrame(nil, shifted)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint16(sb[6:8]); got != 5 {
		t.Errorf("resource bytes = %d, want 5", got)
	}
}

func TestReaderWriterStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := w.WriteMessage(m); err != nil {
			t.Fatalf("WriteMessage(%+v): %v", m, err)
		}
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("ReadMessage #%d: %v", i, err)
		}
		if got != want {
			t.Errorf("#%d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.ReadMessage(); err != io.EOF {
		t.Errorf("stream end err = %v, want io.EOF", err)
	}
}

func TestReaderTruncatedFrame(t *testing.T) {
	b, err := AppendFrame(nil, tme.Message{Kind: tme.Reply, From: 1, To: 2})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		r := NewReader(bytes.NewReader(b[:cut]))
		if _, err := r.ReadMessage(); err == nil {
			t.Fatalf("truncation at %d bytes decoded cleanly", cut)
		}
	}
}

func TestReaderRejectsOversizedLength(t *testing.T) {
	var hdr [lenPrefixSize]byte
	binary.BigEndian.PutUint32(hdr[:], MaxPayload+1)
	r := NewReader(bytes.NewReader(hdr[:]))
	if _, err := r.ReadMessage(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
}

// FuzzDecodeFrame feeds arbitrary byte streams through both deframing
// readers: malformed input must error, never panic, and anything that
// decodes must re-encode to an identical message under its codec. The v2
// half replays the stream through a stateful V2Reader — intern-table and
// clock-delta state are part of the attack surface.
func FuzzDecodeFrame(f *testing.F) {
	for _, m := range sampleMessages() {
		b, err := AppendFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	enc := NewV2Encoder()
	var v2stream []byte
	for _, m := range sampleMessages() {
		b, err := enc.AppendFrame(v2stream, m)
		if err != nil {
			f.Fatal(err)
		}
		v2stream = b
	}
	f.Add(v2stream)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0}, FrameSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			m, err := r.ReadMessage()
			if err != nil {
				break
			}
			b, err := AppendFrame(nil, m)
			if err != nil {
				t.Fatalf("decoded message %+v does not re-encode: %v", m, err)
			}
			got, err := DecodePayload(b[lenPrefixSize:])
			if err != nil || got != m {
				t.Fatalf("re-decode mismatch: %+v vs %+v (err %v)", got, m, err)
			}
		}
		r2 := NewV2Reader(bytes.NewReader(data))
		for {
			m, err := r2.ReadMessage()
			if err != nil {
				break
			}
			// Anything the v2 decoder accepts must survive a fresh
			// encode/decode round trip (codec state changes the bytes,
			// never the message).
			b, err := NewV2Encoder().AppendFrame(nil, m)
			if err != nil {
				t.Fatalf("v2-decoded message %+v does not re-encode: %v", m, err)
			}
			got, err := NewV2Reader(bytes.NewReader(b)).ReadMessage()
			if err != nil || got != m {
				t.Fatalf("v2 re-decode mismatch: %+v vs %+v (err %v)", got, m, err)
			}
		}
	})
}
