// Frame layout, version 2 — the compact codec. A v2 connection opens
// with the 4-byte preamble "GBW2" (written once by the dialing side;
// receivers sniff it, so v1 and v2 transports interoperate edge by edge),
// then carries self-delimiting frames:
//
//	kind        1 byte   (tme.Kind; forged values round-trip, as in v1)
//	clock       uvarint  zigzag(clock - previous frame's clock)
//	ts.pid      uvarint  field tag (see below)
//	from        uvarint  field tag
//	to          uvarint  field tag
//	resource    uvarint  field tag (shard id; 0 in unsharded clusters)
//
// A field tag is either an intern-table reference, tag = slot<<1, or a
// literal, tag = zigzag(value)<<1 | 1. Every literal is inserted into a
// 64-slot table at a round-robin cursor on BOTH ends, so the decoder's
// table replays the encoder's exactly and a reference is one byte for any
// id the connection has seen recently. Timestamps get the same treatment
// through delta encoding: clocks grow mostly monotonically, so the delta
// is a small (often one-byte) varint where v1 spent a fixed eight bytes.
// The common REQ/REP/REL frame is 4-6 bytes against v1's 28.
//
// All codec state is per connection and starts at zero (clock 0, empty
// table) on both ends of a fresh connection; a redial resets it, which is
// what makes retransmitted batches decode correctly after a crash.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

const (
	// Version2 selects the compact codec for outgoing connections.
	Version2 = 2
	// v2Preamble announces the v2 codec at connection start.
	v2Preamble = "GBW2"
	// internSlots is the id intern table size. 64 covers the pid/from/to
	// working set of any plausible cluster while keeping the encoder's
	// linear scan trivially cache-resident.
	internSlots = 64
	// maxV2Frame bounds one encoded v2 frame: kind byte plus five
	// maximal 10-byte varints.
	maxV2Frame = 1 + 5*binary.MaxVarintLen64
)

// ErrV2BadRef is returned when a v2 frame references an intern-table slot
// that no literal has populated — the streams have desynced (or the frame
// is garbage), so the connection must be dropped.
var ErrV2BadRef = errors.New("wire: v2 frame references unpopulated intern slot")

// internTable mirrors id state across a v2 connection. Both ends insert
// every literal at the cursor and advance it, so lookups resolve to the
// same values on both sides without any handshake.
type internTable struct {
	vals [internSlots]int32
	used [internSlots]bool
	next int
}

// lookup scans for v (the table is small enough that a linear scan beats
// any map — and allocates nothing).
func (t *internTable) lookup(v int32) (int, bool) {
	for i := range t.vals {
		if t.used[i] && t.vals[i] == v {
			return i, true
		}
	}
	return 0, false
}

// insert stores v at the round-robin cursor.
func (t *internTable) insert(v int32) {
	t.vals[t.next] = v
	t.used[t.next] = true
	t.next = (t.next + 1) % internSlots
}

// V2Encoder encodes frames for one v2 connection. Not goroutine-safe;
// state must start fresh per connection (use NewV2Encoder at dial time).
type V2Encoder struct {
	prevClock uint64
	ids       internTable
}

// NewV2Encoder returns an encoder with zeroed connection state.
func NewV2Encoder() *V2Encoder { return &V2Encoder{} }

// AppendFrame appends one v2 frame for m to dst. The field-range rules
// match v1 (kind in a byte, ids in int32); on error no state is mutated
// and nothing is appended, so a dropped message cannot desync the stream.
//
//gblint:hotpath
func (e *V2Encoder) AppendFrame(dst []byte, m tme.Message) ([]byte, error) {
	if m.Kind < 0 || m.Kind > math.MaxUint8 {
		return dst, errKindRange(m.Kind)
	}
	if !fitsInt32(m.TS.PID) || !fitsInt32(m.From) || !fitsInt32(m.To) {
		return dst, errIDRange(m.TS.PID, m.From, m.To)
	}
	if !fitsInt32(m.Resource) {
		return dst, errResourceRange(m.Resource)
	}
	dst = append(dst, byte(m.Kind))
	delta := m.TS.Clock - e.prevClock // uint64 wraparound is the contract
	dst = binary.AppendUvarint(dst, zigzag(int64(delta)))
	e.prevClock = m.TS.Clock
	dst = e.appendID(dst, int32(m.TS.PID))
	dst = e.appendID(dst, int32(m.From))
	dst = e.appendID(dst, int32(m.To))
	dst = e.appendID(dst, int32(m.Resource))
	return dst, nil
}

//gblint:hotpath
func (e *V2Encoder) appendID(dst []byte, v int32) []byte {
	if slot, ok := e.ids.lookup(v); ok {
		return binary.AppendUvarint(dst, uint64(slot)<<1)
	}
	dst = binary.AppendUvarint(dst, zigzag(int64(v))<<1|1)
	e.ids.insert(v)
	return dst
}

// byteScanner is what the v2 deframer needs: varint decoding wants
// ReadByte. *bufio.Reader and *bytes.Reader both satisfy it.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// V2Reader deframes one v2 connection (after the preamble has been
// consumed). Not goroutine-safe; state must start fresh per connection.
type V2Reader struct {
	r         byteScanner
	prevClock uint64
	ids       internTable
}

// NewV2Reader returns a deframing v2 reader over r with zeroed connection
// state. Readers that cannot scan bytes are wrapped in a bufio.Reader.
func NewV2Reader(r io.Reader) *V2Reader {
	bs, ok := r.(byteScanner)
	if !ok {
		bs = newByteScanner(r)
	}
	return &V2Reader{r: bs}
}

// ReadMessage reads one v2 frame. io.EOF at a frame boundary is returned
// as-is; EOF inside a frame becomes io.ErrUnexpectedEOF. Malformed input
// (overlong varints, ids outside int32, references to unpopulated intern
// slots) returns an error and never panics; framing is lost, so callers
// must drop the connection.
//
//gblint:hotpath
func (r *V2Reader) ReadMessage() (tme.Message, error) {
	kind, err := r.r.ReadByte()
	if err != nil {
		return tme.Message{}, err // io.EOF here is a clean stream end
	}
	dz, err := binary.ReadUvarint(r.r)
	if err != nil {
		return tme.Message{}, midFrame(err)
	}
	clock := r.prevClock + uint64(unzigzag(dz))
	pid, err := r.readID()
	if err != nil {
		return tme.Message{}, err
	}
	from, err := r.readID()
	if err != nil {
		return tme.Message{}, err
	}
	to, err := r.readID()
	if err != nil {
		return tme.Message{}, err
	}
	res, err := r.readID()
	if err != nil {
		return tme.Message{}, err
	}
	r.prevClock = clock
	return tme.Message{
		Kind:     tme.Kind(kind),
		TS:       ltime.Timestamp{Clock: clock, PID: int(pid)},
		From:     int(from),
		To:       int(to),
		Resource: int(res),
	}, nil
}

//gblint:hotpath
func (r *V2Reader) readID() (int32, error) {
	tag, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, midFrame(err)
	}
	if tag&1 == 0 {
		slot := tag >> 1
		if slot >= internSlots || !r.ids.used[slot] {
			return 0, errV2BadRef(slot)
		}
		return r.ids.vals[slot], nil
	}
	v := unzigzag(tag >> 1)
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, errIDRange(int(v), 0, 0)
	}
	r.ids.insert(int32(v))
	return int32(v), nil
}

// midFrame maps EOF inside a frame to io.ErrUnexpectedEOF (matching the
// v1 reader's contract) and passes every other error through.
func midFrame(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func errV2BadRef(slot uint64) error {
	return fmt.Errorf("%w: slot %d", ErrV2BadRef, slot)
}

// zigzag maps signed to unsigned so small-magnitude values (of either
// sign) get short varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// newByteScanner adapts a plain io.Reader for varint decoding.
func newByteScanner(r io.Reader) byteScanner {
	return &oneByteScanner{r: r}
}

type oneByteScanner struct {
	r io.Reader
	b [1]byte
}

func (s *oneByteScanner) Read(p []byte) (int, error) { return s.r.Read(p) }

func (s *oneByteScanner) ReadByte() (byte, error) {
	if _, err := io.ReadFull(s.r, s.b[:]); err != nil {
		return 0, err
	}
	return s.b[0], nil
}
