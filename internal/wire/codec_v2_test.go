package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

func TestV2StreamRoundTrip(t *testing.T) {
	enc := NewV2Encoder()
	var stream []byte
	msgs := sampleMessages()
	// Append a realistic protocol run on top: repeating ids and mostly
	// increasing clocks, the case the interning/delta layout targets.
	for i := 0; i < 50; i++ {
		msgs = append(msgs, tme.Message{
			Kind: tme.Request,
			TS:   ltime.Timestamp{Clock: uint64(100 + i), PID: i % 4},
			From: i % 4, To: (i + 1) % 4,
		})
	}
	for _, m := range msgs {
		b, err := enc.AppendFrame(stream, m)
		if err != nil {
			t.Fatalf("AppendFrame(%+v): %v", m, err)
		}
		stream = b
	}
	r := NewV2Reader(bytes.NewReader(stream))
	for i, want := range msgs {
		got, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("ReadMessage #%d: %v", i, err)
		}
		if got != want {
			t.Fatalf("#%d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.ReadMessage(); err != io.EOF {
		t.Errorf("stream end err = %v, want io.EOF", err)
	}
	if avg := len(stream) / len(msgs); avg >= FrameSize {
		t.Errorf("v2 stream averages %d bytes/frame, not compact vs v1's %d", avg, FrameSize)
	}
}

func TestV2SteadyStateFrameIsTiny(t *testing.T) {
	enc := NewV2Encoder()
	var b []byte
	var err error
	// Warm the intern table and clock delta.
	for i := 0; i < 8; i++ {
		b, err = enc.AppendFrame(b[:0], tme.Message{
			Kind: tme.Request,
			TS:   ltime.Timestamp{Clock: uint64(1000 + i), PID: i % 4},
			From: i % 4, To: (i + 1) % 4,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(b) > 7 {
		t.Errorf("steady-state v2 frame = %d bytes, want <= 7 (kind + 5 one-byte varints)", len(b))
	}
}

func TestV2AppendFrameRejectsUnencodable(t *testing.T) {
	bad := []tme.Message{
		{Kind: -1},
		{Kind: 256},
		{From: math.MaxInt32 + 1},
		{TS: ltime.Timestamp{PID: math.MinInt32 - 1}},
	}
	for _, m := range bad {
		enc := NewV2Encoder()
		before := *enc
		out, err := enc.AppendFrame(nil, m)
		if !errors.Is(err, ErrFieldRange) {
			t.Errorf("AppendFrame(%+v) err = %v, want ErrFieldRange", m, err)
		}
		if len(out) != 0 {
			t.Errorf("AppendFrame(%+v) appended %d bytes on error", m, len(out))
		}
		if *enc != before {
			t.Errorf("AppendFrame(%+v) mutated encoder state on error", m)
		}
	}
}

// Truncating a v2 stream at every byte boundary must error (never panic,
// never fabricate a message from a partial frame).
func TestV2ReaderTruncation(t *testing.T) {
	enc := NewV2Encoder()
	b, err := enc.AppendFrame(nil, tme.Message{
		Kind: tme.Reply,
		TS:   ltime.Timestamp{Clock: 1 << 40, PID: 123456},
		From: -99, To: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(b); cut++ {
		r := NewV2Reader(bytes.NewReader(b[:cut]))
		if _, err := r.ReadMessage(); err == nil {
			t.Fatalf("truncation at %d of %d bytes decoded cleanly", cut, len(b))
		}
	}
}

// Garbage never panics: either it happens to decode (forged frames are
// legal — the fault model makes them) or it errors.
func TestV2ReaderGarbage(t *testing.T) {
	cases := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, // overlong varint
		{0x00, 0x00, 0x02, 0x00, 0x00},                                           // reference into empty table
		bytes.Repeat([]byte{0xAA}, 64),
	}
	for i, data := range cases {
		r := NewV2Reader(bytes.NewReader(data))
		for {
			if _, err := r.ReadMessage(); err != nil {
				break // error (not panic) is the requirement
			}
		}
		_ = i
	}
}

func TestV2ReaderBadInternRef(t *testing.T) {
	// kind, zero clock delta, then a reference tag (LSB 0) to slot 5 of a
	// table nothing has populated.
	data := []byte{byte(tme.Request), 0x00, 5 << 1, 0x00, 0x00}
	r := NewV2Reader(bytes.NewReader(data))
	if _, err := r.ReadMessage(); !errors.Is(err, ErrV2BadRef) {
		t.Errorf("err = %v, want ErrV2BadRef", err)
	}
}

// The intern table is deliberately tiny; cycling through more ids than it
// holds must still round-trip exactly (literals re-emitted after eviction).
func TestV2InternTableEviction(t *testing.T) {
	enc := NewV2Encoder()
	var stream []byte
	var msgs []tme.Message
	for i := 0; i < 3*internSlots; i++ {
		m := tme.Message{
			Kind: tme.Request,
			TS:   ltime.Timestamp{Clock: uint64(i), PID: i % (internSlots + 7)},
			From: (i * 31) % (2 * internSlots), To: i % 5,
		}
		b, err := enc.AppendFrame(stream, m)
		if err != nil {
			t.Fatal(err)
		}
		stream = b
		msgs = append(msgs, m)
	}
	r := NewV2Reader(bytes.NewReader(stream))
	for i, want := range msgs {
		got, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("#%d: %v", i, err)
		}
		if got != want {
			t.Fatalf("#%d: got %+v, want %+v (intern desync)", i, got, want)
		}
	}
}

// A transport configured for the v2 codec and a default (v1) transport
// must interoperate in both directions: the version is a per-connection
// sender choice, receivers sniff the preamble.
func TestTransportMixedCodecCluster(t *testing.T) {
	o := make([]*obs.Obs, 3)
	tr := make([]*Transport, 3)
	col := make([]*collector, 3)
	addrs := make([]string, 3)
	for i := range tr {
		o[i] = obs.New(obs.Options{})
		cfg := Config{N: 3, Local: []int{i}, Obs: o[i]}
		if i == 0 {
			cfg.Codec = Version2 // node 0 speaks v2 outbound; 1 and 2 stay v1
		}
		x, err := NewTransport(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr[i] = x
		addrs[i] = x.Addr()
		col[i] = &collector{}
	}
	t.Cleanup(func() {
		for _, x := range tr {
			_ = x.Close()
		}
	})
	for i, x := range tr {
		x.SetPeers(addrs)
		x.Start(col[i].deliver)
	}
	const n = 40
	for i := 0; i < n; i++ {
		for src := 0; src < 3; src++ {
			tr[src].Send(tme.Message{
				Kind: tme.Request,
				TS:   ltime.Timestamp{Clock: uint64(i), PID: src},
				From: src, To: (src + 1) % 3,
			})
		}
	}
	for dst := 0; dst < 3; dst++ {
		got := col[dst].waitLen(t, n, 5*time.Second)
		src := (dst + 2) % 3
		for i, m := range got[:n] {
			if m.From != src || m.TS.Clock != uint64(i) {
				t.Fatalf("node %d message %d = %+v, want from %d clock %d", dst, i, m, src, i)
			}
		}
	}
	// Node 1 receives node 0's v2 connection; node 2 receives only v1.
	if v2 := o[1].Registry().Counter("wire_v2_conns_total", "").Value(); v2 != 1 {
		t.Errorf("node 1 wire_v2_conns_total = %d, want 1", v2)
	}
	if v2 := o[2].Registry().Counter("wire_v2_conns_total", "").Value(); v2 != 0 {
		t.Errorf("node 2 wire_v2_conns_total = %d, want 0", v2)
	}
}

// A v2 sender redialing after a peer restart must reset codec state with
// the connection: the retransmitted batch decodes on a fresh decoder.
func TestTransportV2SurvivesPeerRestart(t *testing.T) {
	t0, err := NewTransport(Config{N: 2, Local: []int{0}, Codec: Version2, DialBackoffMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = t0.Close() })
	t0.Start(func(int, tme.Message) {})

	t1a, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	c1a := &collector{}
	t1a.Start(c1a.deliver)
	t0.SetPeers([]string{"", t1a.Addr()})
	for i := 0; i < 10; i++ {
		t0.Send(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: uint64(i), PID: 0}, From: 0, To: 1})
	}
	c1a.waitLen(t, 10, 5*time.Second)
	_ = t1a.Close()

	t1b, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = t1b.Close() })
	c1b := &collector{}
	t1b.Start(c1b.deliver)
	t0.SetPeers([]string{"", t1b.Addr()})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(c1b.snapshot()) == 0 {
		t0.Send(tme.Message{Kind: tme.Reply, TS: ltime.Timestamp{Clock: 1 << 33, PID: 0}, From: 0, To: 1})
		time.Sleep(5 * time.Millisecond)
	}
	got := c1b.snapshot()
	if len(got) == 0 {
		t.Fatal("no message arrived after peer restart")
	}
	if got[0].TS.Clock != 1<<33 || got[0].Kind != tme.Reply {
		t.Fatalf("post-restart message = %+v (v2 state not reset with connection?)", got[0])
	}
}
