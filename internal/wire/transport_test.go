package wire

import (
	"sync"
	"testing"
	"time"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// collector gathers delivered messages goroutine-safely.
type collector struct {
	mu   sync.Mutex
	msgs []tme.Message
}

func (c *collector) deliver(_ int, m tme.Message) {
	c.mu.Lock()
	c.msgs = append(c.msgs, m)
	c.mu.Unlock()
}

func (c *collector) snapshot() []tme.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tme.Message(nil), c.msgs...)
}

func (c *collector) waitLen(t *testing.T, n int, timeout time.Duration) []tme.Message {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if got := c.snapshot(); len(got) >= n {
			return got
		}
		time.Sleep(time.Millisecond)
	}
	got := c.snapshot()
	t.Fatalf("delivered %d messages, want %d", len(got), n)
	return nil
}

func newPair(t *testing.T) (*Transport, *Transport, *collector, *collector) {
	t.Helper()
	t0, err := NewTransport(Config{N: 2, Local: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{t0.Addr(), t1.Addr()}
	t0.SetPeers(addrs)
	t1.SetPeers(addrs)
	c0, c1 := &collector{}, &collector{}
	t0.Start(c0.deliver)
	t1.Start(c1.deliver)
	t.Cleanup(func() { _ = t0.Close(); _ = t1.Close() })
	return t0, t1, c0, c1
}

func TestTransportDeliversFIFOBothWays(t *testing.T) {
	t0, t1, c0, c1 := newPair(t)
	const n = 50
	for i := 0; i < n; i++ {
		t0.Send(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: uint64(i)}, From: 0, To: 1})
		t1.Send(tme.Message{Kind: tme.Reply, TS: ltime.Timestamp{Clock: uint64(i)}, From: 1, To: 0})
	}
	got1 := c1.waitLen(t, n, 5*time.Second)
	got0 := c0.waitLen(t, n, 5*time.Second)
	for i := 0; i < n; i++ {
		if got1[i].TS.Clock != uint64(i) || got1[i].Kind != tme.Request {
			t.Fatalf("t1 message %d = %+v (FIFO violated)", i, got1[i])
		}
		if got0[i].TS.Clock != uint64(i) || got0[i].Kind != tme.Reply {
			t.Fatalf("t0 message %d = %+v (FIFO violated)", i, got0[i])
		}
	}
}

func TestTransportLocalDelivery(t *testing.T) {
	tr, err := NewTransport(Config{N: 3, Local: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	c := &collector{}
	tr.Start(c.deliver)
	tr.Send(tme.Message{Kind: tme.Request, From: 0, To: 2})
	got := c.waitLen(t, 1, time.Second)
	if got[0].To != 2 {
		t.Fatalf("local delivery = %+v", got[0])
	}
}

// Messages sent before the peer address is known must queue and flow once
// SetPeers lands — the reconnect/backoff path.
func TestTransportQueuesUntilPeerKnown(t *testing.T) {
	t0, err := NewTransport(Config{N: 2, Local: []int{0}, DialBackoffMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = t0.Close(); _ = t1.Close() }()
	c1 := &collector{}
	t0.Start(func(int, tme.Message) {})
	t1.Start(c1.deliver)
	for i := 0; i < 5; i++ {
		t0.Send(tme.Message{Kind: tme.Request, TS: ltime.Timestamp{Clock: uint64(i)}, From: 0, To: 1})
	}
	time.Sleep(20 * time.Millisecond) // let the sender hit the unknown-peer path
	t0.SetPeers([]string{"", t1.Addr()})
	got := c1.waitLen(t, 5, 5*time.Second)
	for i, m := range got {
		if m.TS.Clock != uint64(i) {
			t.Fatalf("message %d = %+v (order lost across backoff)", i, m)
		}
	}
}

func TestTransportRedialsAfterPeerRestart(t *testing.T) {
	t0, err := NewTransport(Config{N: 2, Local: []int{0}, DialBackoffMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t0.Start(func(int, tme.Message) {})

	t1a, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	c1a := &collector{}
	t1a.Start(c1a.deliver)
	t0.SetPeers([]string{"", t1a.Addr()})
	t0.Send(tme.Message{Kind: tme.Request, From: 0, To: 1})
	c1a.waitLen(t, 1, 5*time.Second)
	_ = t1a.Close()

	// Restart the peer on a fresh port; the sender must redial there.
	t1b, err := NewTransport(Config{N: 2, Local: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	defer t1b.Close()
	c1b := &collector{}
	t1b.Start(c1b.deliver)
	t0.SetPeers([]string{"", t1b.Addr()})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(c1b.snapshot()) == 0 {
		// Keep sending: writes onto the dead connection fail once, then
		// the sender reconnects to the new address.
		t0.Send(tme.Message{Kind: tme.Reply, From: 0, To: 1})
		time.Sleep(5 * time.Millisecond)
	}
	if len(c1b.snapshot()) == 0 {
		t.Fatal("no message arrived after peer restart")
	}
}

func TestTransportValidates(t *testing.T) {
	if _, err := NewTransport(Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewTransport(Config{N: 2, Local: []int{5}}); err == nil {
		t.Error("out-of-range Local accepted")
	}
}

func TestTransportSendAfterCloseIsNoop(t *testing.T) {
	tr, err := NewTransport(Config{N: 2, Local: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	tr.Start(func(int, tme.Message) {})
	_ = tr.Close()
	tr.Send(tme.Message{From: 0, To: 1}) // must not panic or spawn goroutines
	tr.Send(tme.Message{From: 0, To: 9}) // out of range: dropped
}
