// Package wire carries TME messages across real TCP connections: a
// length-prefixed binary codec (versioned, stdlib encoding/binary), a
// transport giving each directed edge a FIFO framed stream with
// reconnect/backoff, and an in-path fault proxy (Chaos) implementing the
// engine.Surface fault verbs on live traffic so internal/fault drives real
// sockets exactly as it drives the simulators.
//
// The package sits below the protocol layer: it sees only tme.Message
// (plus ltime timestamps inside it) and never imports protocols, wrappers,
// or specs — the graybox rule holds on the wire too. Corrupted or forged
// frames are delivered as-is when structurally valid (receivers drop
// semantic garbage, exactly as in the simulator's fault model); frames
// that are not structurally valid produce an error, never a panic.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Frame layout, version 1. Everything is big-endian.
//
//	offset  size  field
//	0       4     payload length (uint32; 24 for v1)
//	4       1     version (1)
//	5       1     message kind (tme.Kind; forged values round-trip)
//	6       2     resource shard id (uint16; 0 = the single legacy shard)
//	8       8     timestamp clock (uint64)
//	16      4     timestamp pid (int32)
//	20      4     from (int32)
//	24      4     to (int32)
//
// The REQ/REP/REL kinds and the wrapper's resent REQs all share this one
// shape — a wrapper resend is just another Request frame, which is what
// lets W' stay protocol-shaped on the wire.
const (
	// Version is the codec version emitted by this package.
	Version = 1
	// lenPrefixSize is the length prefix preceding every payload.
	lenPrefixSize = 4
	// payloadV1Size is the fixed v1 payload size.
	payloadV1Size = 24
	// FrameSize is the full on-wire size of a v1 frame.
	FrameSize = lenPrefixSize + payloadV1Size
	// MaxPayload bounds the payload length a reader will accept, so a
	// corrupt or hostile length prefix cannot force a huge allocation.
	MaxPayload = 1 << 12
)

// Codec errors. Decoding malformed input returns one of these (possibly
// wrapped); it never panics.
var (
	ErrPayloadTooLarge = errors.New("wire: payload length exceeds MaxPayload")
	ErrBadVersion      = errors.New("wire: unsupported frame version")
	ErrBadLength       = errors.New("wire: payload length wrong for version")
	ErrFieldRange      = errors.New("wire: message field outside encodable range")
)

// AppendFrame appends the full frame (length prefix + payload) for m to
// dst and returns the extended slice. It errors when a field does not fit
// the wire shape (kind outside a byte, ids outside int32) — the codec
// deliberately accepts invalid-but-encodable values, since the fault model
// forges them on purpose.
//
//gblint:hotpath
func AppendFrame(dst []byte, m tme.Message) ([]byte, error) {
	if m.Kind < 0 || m.Kind > math.MaxUint8 {
		return dst, errKindRange(m.Kind)
	}
	if !fitsInt32(m.TS.PID) || !fitsInt32(m.From) || !fitsInt32(m.To) {
		return dst, errIDRange(m.TS.PID, m.From, m.To)
	}
	if m.Resource < 0 || m.Resource > math.MaxUint16 {
		return dst, errResourceRange(m.Resource)
	}
	var b [FrameSize]byte
	binary.BigEndian.PutUint32(b[0:4], payloadV1Size)
	b[4] = Version
	b[5] = byte(m.Kind)
	binary.BigEndian.PutUint16(b[6:8], uint16(m.Resource))
	binary.BigEndian.PutUint64(b[8:16], m.TS.Clock)
	binary.BigEndian.PutUint32(b[16:20], uint32(int32(m.TS.PID)))
	binary.BigEndian.PutUint32(b[20:24], uint32(int32(m.From)))
	binary.BigEndian.PutUint32(b[24:28], uint32(int32(m.To)))
	return append(dst, b[:]...), nil
}

func fitsInt32(v int) bool { return v >= math.MinInt32 && v <= math.MaxInt32 }

// DecodePayload decodes one payload (the bytes after the length prefix).
// Malformed input returns an error; no input panics.
//
//gblint:hotpath
func DecodePayload(p []byte) (tme.Message, error) {
	if len(p) < 1 {
		return tme.Message{}, errBadLengthBytes(0)
	}
	if p[0] != Version {
		return tme.Message{}, errBadVersion(p[0])
	}
	if len(p) != payloadV1Size {
		return tme.Message{}, errBadLengthBytes(len(p))
	}
	return tme.Message{
		Kind: tme.Kind(p[1]),
		TS: ltime.Timestamp{
			Clock: binary.BigEndian.Uint64(p[4:12]),
			PID:   int(int32(binary.BigEndian.Uint32(p[12:16]))),
		},
		From:     int(int32(binary.BigEndian.Uint32(p[16:20]))),
		To:       int(int32(binary.BigEndian.Uint32(p[20:24]))),
		Resource: int(binary.BigEndian.Uint16(p[2:4])),
	}, nil
}

// Writer frames messages onto an io.Writer. Not goroutine-safe.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a framing writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, FrameSize)}
}

// WriteMessage writes one frame. One frame is one Write call, so frames
// interleave whole on a shared connection only if callers serialize.
func (w *Writer) WriteMessage(m tme.Message) error {
	b, err := AppendFrame(w.buf[:0], m)
	if err != nil {
		return err
	}
	w.buf = b[:0]
	_, err = w.w.Write(b)
	return err
}

// Reader deframes messages from an io.Reader.
type Reader struct {
	r   io.Reader
	buf []byte
}

// NewReader returns a deframing reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: make([]byte, FrameSize)}
}

// ReadMessage reads one frame. io.EOF at a frame boundary is returned
// as-is; EOF inside a frame becomes io.ErrUnexpectedEOF. A malformed
// frame (oversized length, bad version/length/flags) returns an error and
// leaves the stream mid-frame — callers should drop the connection, since
// framing is lost.
//
// Every conforming v1 frame is exactly FrameSize bytes, so the reader
// pulls header and payload with one ReadFull into a reused buffer — over
// a bufio.Reader that is one buffer copy, not two reads. A short read is
// still diagnosed from whatever arrived: a complete length prefix
// claiming more than MaxPayload reports ErrPayloadTooLarge even when the
// rest of the frame never showed up.
//
//gblint:hotpath
func (r *Reader) ReadMessage() (tme.Message, error) {
	buf := r.buf[:FrameSize]
	n, err := io.ReadFull(r.r, buf)
	if err != nil {
		if n >= lenPrefixSize {
			if pl := binary.BigEndian.Uint32(buf[:lenPrefixSize]); pl > MaxPayload {
				return tme.Message{}, errPayloadTooLarge(pl)
			}
		}
		return tme.Message{}, err
	}
	pl := binary.BigEndian.Uint32(buf[:lenPrefixSize])
	if pl > MaxPayload {
		return tme.Message{}, errPayloadTooLarge(pl)
	}
	if pl != payloadV1Size {
		return tme.Message{}, errBadLengthBytes(int(pl))
	}
	return DecodePayload(buf[lenPrefixSize:])
}

// Error constructors live outside the hotpath-marked codec bodies: the
// lint pass bans fmt in hot functions, and on the fast path none of these
// run — the allocation happens only on the (connection-fatal) error arm.

func errKindRange(k tme.Kind) error {
	return fmt.Errorf("%w: kind %d", ErrFieldRange, k)
}

func errIDRange(pid, from, to int) error {
	return fmt.Errorf("%w: pid/from/to (%d,%d,%d)", ErrFieldRange, pid, from, to)
}

func errResourceRange(r int) error {
	return fmt.Errorf("%w: resource %d", ErrFieldRange, r)
}

func errBadVersion(v byte) error {
	return fmt.Errorf("%w: %d", ErrBadVersion, v)
}

func errBadLengthBytes(n int) error {
	return fmt.Errorf("%w: %d bytes", ErrBadLength, n)
}

func errPayloadTooLarge(n uint32) error {
	return fmt.Errorf("%w: %d", ErrPayloadTooLarge, n)
}
