package obs

import (
	"strings"
	"testing"
)

func TestDiffSnapshots(t *testing.T) {
	a, b := NewSnapshot(), NewSnapshot()
	a.Counters["entries"] = 100
	b.Counters["entries"] = 110 // 10/110 ≈ 9.1%
	a.Counters["violations"] = 0
	b.Counters["violations"] = 0
	a.Gauges["conv_ticks"] = 40
	b.Gauges["conv_ticks"] = 80 // 50%

	diffs := DiffSnapshots(a, b, map[string]float64{
		"entries":    0.25,
		"violations": 0,
		"conv_ticks": 0.25,
	})
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs, want 3", len(diffs))
	}
	// Sorted by name: conv_ticks, entries, violations.
	if diffs[0].Name != "conv_ticks" || diffs[1].Name != "entries" || diffs[2].Name != "violations" {
		t.Fatalf("unexpected order: %v %v %v", diffs[0].Name, diffs[1].Name, diffs[2].Name)
	}
	if diffs[0].Within {
		t.Errorf("conv_ticks 40 vs 80 should exceed 25%%: %+v", diffs[0])
	}
	if !diffs[1].Within {
		t.Errorf("entries 100 vs 110 should be within 25%%: %+v", diffs[1])
	}
	if !diffs[2].Within || diffs[2].Rel != 0 {
		t.Errorf("equal zeros should diff 0 within tol 0: %+v", diffs[2])
	}
	if AllWithin(diffs) {
		t.Error("AllWithin should fail with a diverged metric")
	}
	if AllWithin(diffs[1:]) != true {
		t.Error("AllWithin should pass on the conforming tail")
	}
	out := FormatDiffs(diffs)
	if !strings.Contains(out, "DIVERGED") || !strings.Contains(out, "entries") {
		t.Errorf("formatted diffs missing verdicts:\n%s", out)
	}
}

func TestDiffSnapshotsEdges(t *testing.T) {
	// Nil snapshots compare as empty.
	diffs := DiffSnapshots(nil, nil, map[string]float64{"x": 0})
	if len(diffs) != 1 || !diffs[0].Within {
		t.Errorf("nil vs nil should agree: %+v", diffs)
	}
	// One-sided value is a 100% divergence.
	a := NewSnapshot()
	a.Counters["x"] = 7
	diffs = DiffSnapshots(a, nil, map[string]float64{"x": 0.99})
	if diffs[0].Rel != 1 || diffs[0].Within {
		t.Errorf("7 vs absent should be rel=1 diverged: %+v", diffs[0])
	}
	// Gauge fallback: metric present only in the gauge namespace.
	g1, g2 := NewSnapshot(), NewSnapshot()
	g1.Gauges["wait"] = 200
	g2.Gauges["wait"] = 210
	diffs = DiffSnapshots(g1, g2, map[string]float64{"wait": 0.1})
	if !diffs[0].Within {
		t.Errorf("gauge wait 200 vs 210 should be within 10%%: %+v", diffs[0])
	}
	// Counter namespace wins over a same-named gauge.
	c := NewSnapshot()
	c.Counters["dual"] = 5
	c.Gauges["dual"] = 999
	if v := metricValue(c, "dual"); v != 5 {
		t.Errorf("metricValue prefers counters: got %d", v)
	}
}
