package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// HistSnapshot is the plain-data form of a histogram.
type HistSnapshot struct {
	// Bounds are the inclusive upper bucket bounds; Counts has one extra
	// final element for the +Inf bucket.
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a plain-data copy of a registry at one instant. Marshalling
// a Snapshot produces deterministic output: encoding/json emits map keys
// in sorted order, and every value is an integer.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// NewSnapshot returns an empty snapshot ready for Merge.
func NewSnapshot() *Snapshot {
	return &Snapshot{Counters: map[string]int64{}, Gauges: map[string]int64{}}
}

// Snapshot copies the registry's current values. Returns an empty snapshot
// on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.cs {
		s.Counters[n] = c.v.Load()
	}
	for n, g := range r.gs {
		s.Gauges[n] = g.v.Load()
	}
	for n, h := range r.hs {
		hs := HistSnapshot{
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.sum.Load(),
			Count:  h.count.Load(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		if s.Histograms == nil {
			s.Histograms = map[string]HistSnapshot{}
		}
		s.Histograms[n] = hs
	}
	return s
}

// Merge folds other into s: counters and histogram buckets sum, gauges
// take the maximum (merged gauges are high-water marks). Histograms with
// mismatched bounds keep s's buckets and only fold sum and count. Merge is
// commutative and associative up to these rules, so aggregating parallel
// runs is order-independent — merged snapshots stay deterministic.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for n, v := range other.Counters {
		s.Counters[n] += v
	}
	for n, v := range other.Gauges {
		if cur, ok := s.Gauges[n]; !ok || v > cur {
			s.Gauges[n] = v
		}
	}
	for n, h := range other.Histograms {
		if s.Histograms == nil {
			s.Histograms = map[string]HistSnapshot{}
		}
		cur, ok := s.Histograms[n]
		if !ok {
			s.Histograms[n] = HistSnapshot{
				Bounds: append([]int64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Sum:    h.Sum,
				Count:  h.Count,
			}
			continue
		}
		if len(cur.Counts) == len(h.Counts) {
			for i := range cur.Counts {
				cur.Counts[i] += h.Counts[i]
			}
		}
		cur.Sum += h.Sum
		cur.Count += h.Count
		s.Histograms[n] = cur
	}
}

// Counter returns a counter's value from the snapshot (0 when absent).
func (s *Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value from the snapshot, or def when absent.
// Gauges encode "unset" as sentinel values (-1 for times), so absence must
// not collapse to 0.
func (s *Snapshot) Gauge(name string, def int64) int64 {
	if v, ok := s.Gauges[name]; ok {
		return v
	}
	return def
}

// WriteJSON writes the snapshot as indented JSON. Output is byte-identical
// for equal snapshots.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSON snapshots the registry and writes it as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// WritePrometheus writes the registry in Prometheus text exposition format
// (version 0.0.4), instruments in sorted name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, name := range r.names() {
		r.mu.Lock()
		c, isC := r.cs[name]
		g, isG := r.gs[name]
		h, isH := r.hs[name]
		r.mu.Unlock()
		var err error
		switch {
		case isC:
			err = writeSimple(w, name, c.help, "counter", c.v.Load())
		case isG:
			err = writeSimple(w, name, g.help, "gauge", g.v.Load())
		case isH:
			err = writeHistogram(w, name, h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeSimple(w io.Writer, name, help, typ string, v int64) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, v)
	return err
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if h.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, h.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, cum, name, h.sum.Load(), name, h.count.Load())
	return err
}
