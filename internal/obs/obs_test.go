package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", ""); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	g.SetMax(3)
	if g.Value() != 5 {
		t.Error("SetMax lowered the gauge")
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Error("SetMax did not raise the gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []int64{1, 10, 100})
	for _, v := range []int64{0, 1, 2, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1024 {
		t.Errorf("count=%d sum=%d", h.Count(), h.Sum())
	}
	snap := r.Snapshot().Histograms["h"]
	want := []int64{2, 2, 1, 1} // ≤1, ≤10, ≤100, +Inf
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "", []int64{1})
	var tr *Trace
	var conv *Convergence
	var o *Obs

	c.Inc()
	c.Add(3)
	g.Set(1)
	g.SetMax(2)
	g.Add(1)
	h.Observe(5)
	tr.Emit(Event{})
	conv.RecordFault(1)
	conv.RecordViolation(2)
	conv.RecordProgress(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || tr.Total() != 0 {
		t.Error("nil instruments recorded something")
	}
	if conv.LastFault() != -1 || conv.Time() != 0 {
		t.Error("nil convergence not at defaults")
	}
	if o.Registry() != nil || o.Tracer() != nil || o.Convergence() != nil {
		t.Error("nil Obs handed out non-nil parts")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if err := (*Registry)(nil).WritePrometheus(io.Discard); err != nil {
		t.Error(err)
	}
}

// The enabled hot path must be allocation-free (acceptance criterion).
func TestHotOpsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []int64{1, 10, 100})
	tr := NewTrace(64, nil)
	conv := NewConvergence(r)
	checks := map[string]func(){
		"counter-inc":   func() { c.Inc() },
		"counter-add":   func() { c.Add(2) },
		"gauge-set":     func() { g.Set(3) },
		"gauge-setmax":  func() { g.SetMax(4) },
		"hist-observe":  func() { h.Observe(42) },
		"trace-emit":    func() { tr.Emit(Event{Time: 1, Kind: EvSend, A: 0, B: 1}) },
		"conv-progress": func() { conv.RecordProgress(9) },
	}
	for name, fn := range checks {
		if allocs := testing.AllocsPerRun(200, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, allocs)
		}
	}
}

func TestTraceRingRetention(t *testing.T) {
	var got []Event
	tr := NewTrace(3, func(e Event) { got = append(got, e) })
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Time: int64(i), Kind: EvSend})
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Time != 2 || evs[2].Time != 4 {
		t.Errorf("retained = %v", evs)
	}
	if tr.Total() != 5 || tr.Dropped() != 2 {
		t.Errorf("total=%d dropped=%d", tr.Total(), tr.Dropped())
	}
	if len(got) != 5 {
		t.Errorf("callback saw %d events, want 5", len(got))
	}
	if !strings.Contains(evs[0].String(), "send") {
		t.Errorf("event String = %q", evs[0].String())
	}
}

func TestConvergenceWindow(t *testing.T) {
	r := NewRegistry()
	c := NewConvergence(r)
	c.RecordProgress(5) // before any fault: counts (window is the whole run)
	if c.ProgressAfterFault() != 1 || c.FirstProgressAfterFault() != 5 {
		t.Errorf("pre-fault progress: %d first=%d", c.ProgressAfterFault(), c.FirstProgressAfterFault())
	}
	c.RecordFault(10)
	if c.ProgressAfterFault() != 0 || c.FirstProgressAfterFault() != -1 {
		t.Error("fault did not reset the progress window")
	}
	c.RecordProgress(10) // at the fault instant: strictly-after rule excludes it
	if c.ProgressAfterFault() != 0 {
		t.Error("progress at the fault instant counted")
	}
	c.RecordViolation(12)
	c.RecordViolation(11) // out-of-order: the max is retained
	c.RecordProgress(15)
	c.RecordProgress(20)
	if c.LastFault() != 10 || c.LastViolation() != 12 || c.Time() != 2 {
		t.Errorf("lastFault=%d lastViolation=%d conv=%d", c.LastFault(), c.LastViolation(), c.Time())
	}
	if c.FirstProgressAfterFault() != 15 || c.ProgressAfterFault() != 2 {
		t.Errorf("first=%d progress=%d", c.FirstProgressAfterFault(), c.ProgressAfterFault())
	}
	if c.Violations() != 2 {
		t.Errorf("violations = %d", c.Violations())
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in different orders: snapshots must not care.
		r.Gauge("zz", "").Set(-1)
		r.Counter("aa_total", "").Add(3)
		r.Histogram("mm", "", []int64{1, 2}).Observe(2)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry()
	r2.Histogram("mm", "", []int64{1, 2}).Observe(2)
	r2.Counter("aa_total", "").Add(3)
	r2.Gauge("zz", "").Set(-1)
	if err := r2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"aa_total": 3`) {
		t.Errorf("JSON missing counter: %s", a.String())
	}
}

func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("c_total", "").Add(2)
	r2.Counter("c_total", "").Add(3)
	r1.Gauge("last_time", "").Set(10)
	r2.Gauge("last_time", "").Set(7)
	r1.Histogram("h", "", []int64{5}).Observe(1)
	r2.Histogram("h", "", []int64{5}).Observe(9)

	m := NewSnapshot()
	m.Merge(r1.Snapshot())
	m.Merge(r2.Snapshot())
	if m.Counter("c_total") != 5 {
		t.Errorf("merged counter = %d", m.Counter("c_total"))
	}
	if m.Gauge("last_time", -1) != 10 {
		t.Errorf("merged gauge = %d", m.Gauge("last_time", -1))
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Sum != 10 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("merged hist = %+v", h)
	}
	if m.Gauge("absent", -7) != -7 {
		t.Error("absent gauge did not fall back to default")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs_total", "messages").Add(4)
	r.Gauge("time", "virtual time").Set(99)
	h := r.Histogram("lat", "latency", []int64{1, 10})
	h.Observe(0)
	h.Observe(5)
	h.Observe(50)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE msgs_total counter", "msgs_total 4",
		"# TYPE time gauge", "time 99",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`, `lat_bucket{le="10"} 2`, `lat_bucket{le="+Inf"} 3`,
		"lat_sum 55", "lat_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted order: "lat" block precedes "msgs_total" precedes "time".
	if strings.Index(out, "lat_sum") > strings.Index(out, "msgs_total 4") {
		t.Error("exposition not in sorted name order")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared_total", "").Inc()
				r.Gauge("g", "").SetMax(int64(i))
				r.Histogram("h", "", []int64{10, 100}).Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", "", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	o := New(Options{TraceCapacity: 16})
	o.Reg.Counter("demo_total", "demo").Inc()
	o.Trace.Emit(Event{Time: 1, Kind: EvSend, A: 0, B: 1})
	addr, shutdown, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()

	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "demo_total 1") {
		t.Errorf("/metrics: %q", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"demo_total": 1`) {
		t.Errorf("/metrics.json: %q", out)
	}
	if out := get("/trace"); !strings.Contains(out, "send") {
		t.Errorf("/trace: %q", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/: %q", out)
	}
}
