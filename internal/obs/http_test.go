package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func handlerGet(t *testing.T, h http.Handler, path string) (int, string, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Header().Get("Content-Type"), rr.Body.Bytes()
}

func TestHandlerMetricsJSON(t *testing.T) {
	o := New(Options{TraceCapacity: 8})
	o.Registry().Counter("demo_total", "demo counter").Add(3)
	o.Registry().Gauge("demo_gauge", "demo gauge").Set(-7)

	code, ctype, body := handlerGet(t, o.Handler(), "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json = %d", code)
	}
	if ctype != "application/json" {
		t.Errorf("Content-Type = %q", ctype)
	}
	s := NewSnapshot()
	if err := json.Unmarshal(body, s); err != nil {
		t.Fatalf("body is not a snapshot: %v\n%s", err, body)
	}
	if s.Counter("demo_total") != 3 || s.Gauge("demo_gauge", 0) != -7 {
		t.Errorf("snapshot = %+v", s)
	}

	// The endpoint is a live view, not a point-in-time copy.
	o.Registry().Counter("demo_total", "demo counter").Inc()
	_, _, body = handlerGet(t, o.Handler(), "/metrics.json")
	s = NewSnapshot()
	if err := json.Unmarshal(body, s); err != nil {
		t.Fatal(err)
	}
	if s.Counter("demo_total") != 4 {
		t.Errorf("second read counter = %d, want 4", s.Counter("demo_total"))
	}
}

func TestHandlerPrometheusText(t *testing.T) {
	o := New(Options{})
	o.Registry().Counter("demo_total", "demo counter").Inc()
	code, ctype, body := handlerGet(t, o.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("Content-Type = %q", ctype)
	}
	if !strings.Contains(string(body), "demo_total 1") {
		t.Errorf("exposition missing counter:\n%s", body)
	}
}

func TestHandlerTrace(t *testing.T) {
	o := New(Options{TraceCapacity: 4})
	o.Tracer().Emit(Event{Detail: "hello"})
	code, _, body := handlerGet(t, o.Handler(), "/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace = %d", code)
	}
	if !strings.Contains(string(body), "hello") {
		t.Errorf("trace output missing event:\n%s", body)
	}
}

// Serve binds, serves the same handler, and shuts down cleanly.
func TestServe(t *testing.T) {
	o := New(Options{})
	o.Registry().Counter("demo_total", "demo counter").Inc()
	addr, shutdown, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	s := NewSnapshot()
	if err := json.Unmarshal(body, s); err != nil {
		t.Fatal(err)
	}
	if s.Counter("demo_total") != 1 {
		t.Errorf("served counter = %d", s.Counter("demo_total"))
	}
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics.json"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}
