// Package obs is the unified observability subsystem: a metrics registry
// (atomic counters, gauges, fixed-bucket histograms), a trace-event sink
// (ring buffer + optional callback), and exporters (Prometheus text
// exposition, deterministic JSON snapshots, an opt-in HTTP endpoint with
// pprof). The simulator, the goroutine runtime, the wrappers, the fault
// injector, and the spec monitors all publish here; the experiment harness
// computes its tables from obs snapshots instead of parallel bookkeeping.
//
// Two design rules shape the API:
//
//   - The disabled path must cost (at most) nanoseconds. Every instrument
//     is a pointer whose methods are no-ops on a nil receiver, and a nil
//     *Registry hands out nil instruments — so instrumented code holds the
//     same fields and runs the same calls whether observability is on or
//     off, without a single branch at the call site.
//
//   - The enabled hot path must be allocation-free. Counter/gauge updates
//     are single atomic operations; histogram observations are an atomic
//     add into a preallocated bucket; trace emission copies a value into a
//     preallocated ring slot.
//
// Determinism: metric values driven by the seeded simulator are pure
// functions of the configuration and seed, and JSON snapshots marshal with
// sorted keys, so two runs with the same seed export byte-identical
// snapshots.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// a valid no-op instrument.
type Counter struct {
	v    atomic.Int64
	name string
	help string
}

// Inc adds one.
//
//gblint:hotpath
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds d (negative deltas are ignored: counters are monotone).
//
//gblint:hotpath
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" on a nil receiver).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a valid no-op
// instrument.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
//
//gblint:hotpath
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax stores v only if it exceeds the current value.
//
//gblint:hotpath
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Add adds d to the current value.
//
//gblint:hotpath
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name ("" on a nil receiver).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Histogram is a fixed-bucket histogram of int64 observations. Bounds are
// inclusive upper bounds in ascending order; one implicit +Inf bucket is
// appended. A nil *Histogram is a valid no-op instrument.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	count  atomic.Int64
	name   string
	help   string
}

// Observe records v into its bucket.
//
//gblint:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds named instruments. Registration is idempotent (the same
// name returns the same instrument) and safe for concurrent use; the zero
// value is ready. A nil *Registry hands out nil instruments, making the
// entire downstream pipeline a no-op.
type Registry struct {
	mu     sync.Mutex
	cs     map[string]*Counter   //gblint:guardedby mu
	gs     map[string]*Gauge     //gblint:guardedby mu
	hs     map[string]*Histogram //gblint:guardedby mu
	sorted []string              //gblint:guardedby mu -- cached sorted instrument names; nil when stale
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it on first
// use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.cs[name]; ok {
		return c
	}
	if r.cs == nil {
		r.cs = make(map[string]*Counter)
	}
	c := &Counter{name: name, help: help}
	r.cs[name] = c
	r.sorted = nil
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gs[name]; ok {
		return g
	}
	if r.gs == nil {
		r.gs = make(map[string]*Gauge)
	}
	g := &Gauge{name: name, help: help}
	r.gs[name] = g
	r.sorted = nil
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (bounds are copied). Returns nil on
// a nil registry.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hs[name]; ok {
		return h
	}
	if r.hs == nil {
		r.hs = make(map[string]*Histogram)
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	h := &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	r.hs[name] = h
	r.sorted = nil
	return h
}

// names returns every instrument name in sorted order (exporters iterate
// it for deterministic output).
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sorted == nil {
		r.sorted = make([]string, 0, len(r.cs)+len(r.gs)+len(r.hs))
		for n := range r.cs {
			r.sorted = append(r.sorted, n)
		}
		for n := range r.gs {
			r.sorted = append(r.sorted, n)
		}
		for n := range r.hs {
			r.sorted = append(r.sorted, n)
		}
		sort.Strings(r.sorted)
	}
	return r.sorted
}

// Obs bundles a registry, an optional trace sink, and the convergence
// tracker — the handle the execution substrates share. A nil *Obs disables
// observability end to end.
type Obs struct {
	// Reg is the metrics registry (never nil on a non-nil Obs).
	Reg *Registry
	// Trace is the trace-event sink; nil when tracing is off.
	Trace *Trace
	// Conv tracks the fault/violation/progress window from which
	// convergence time is derived.
	Conv *Convergence
	// Fair tracks per-client entry counts and latencies for the fairness
	// columns of the workload experiments.
	Fair *Fairness
}

// Options configures New.
type Options struct {
	// TraceCapacity is the trace ring-buffer size; 0 disables tracing.
	TraceCapacity int
	// OnEvent, when non-nil, is invoked synchronously for every trace
	// event (requires TraceCapacity > 0).
	OnEvent func(Event)
}

// New returns an enabled observability bundle.
func New(o Options) *Obs {
	ob := &Obs{Reg: NewRegistry()}
	if o.TraceCapacity > 0 {
		ob.Trace = NewTrace(o.TraceCapacity, o.OnEvent)
	}
	ob.Conv = NewConvergence(ob.Reg)
	ob.Fair = NewFairness(ob.Reg)
	return ob
}

// Registry returns the bundle's registry, nil on a nil receiver — so
// `o.Registry().Counter(...)` is safe (and a no-op) without observability.
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the bundle's trace sink (nil when absent or on a nil
// receiver).
func (o *Obs) Tracer() *Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Convergence returns the bundle's convergence tracker (nil on a nil
// receiver).
func (o *Obs) Convergence() *Convergence {
	if o == nil {
		return nil
	}
	return o.Conv
}

// Fairness returns the bundle's fairness tracker (nil on a nil receiver).
func (o *Obs) Fairness() *Fairness {
	if o == nil {
		return nil
	}
	return o.Fair
}

// Convergence derives convergence telemetry online: the time of the last
// fault, the time of the last spec violation, and the progress events
// (e.g. CS entries) since the last fault. Convergence time — the paper's
// headline measurement — then falls out of the final snapshot as
// last_violation − last_fault instead of bespoke harness bookkeeping.
//
// All methods are no-ops on a nil receiver.
type Convergence struct {
	faults        *Counter
	violations    *Counter
	lastFault     *Gauge // -1 = no fault yet
	lastViolation *Gauge // -1 = clean run
	firstProgress *Gauge // first progress time strictly after the last fault; -1 = none
	progress      *Gauge // progress events strictly after the last fault
}

// NewConvergence registers the convergence instruments on r (nil r yields
// a nil, no-op tracker).
func NewConvergence(r *Registry) *Convergence {
	if r == nil {
		return nil
	}
	c := &Convergence{
		faults:        r.Counter("conv_faults_total", "faults injected"),
		violations:    r.Counter("conv_violations_total", "spec violations observed"),
		lastFault:     r.Gauge("conv_last_fault_time", "virtual time of the last injected fault (-1 = none)"),
		lastViolation: r.Gauge("conv_last_violation_time", "virtual time of the last spec violation (-1 = clean)"),
		firstProgress: r.Gauge("conv_first_progress_after_fault_time", "first progress event after the last fault (-1 = none)"),
		progress:      r.Gauge("conv_progress_after_fault", "progress events after the last fault"),
	}
	c.lastFault.Set(-1)
	c.lastViolation.Set(-1)
	c.firstProgress.Set(-1)
	return c
}

// RecordFault notes a fault at time t: the progress window restarts, so
// only progress strictly after the last fault counts toward convergence.
func (c *Convergence) RecordFault(t int64) {
	if c == nil {
		return
	}
	c.faults.Inc()
	c.lastFault.SetMax(t)
	c.firstProgress.Set(-1)
	c.progress.Set(0)
}

// RecordViolation notes a spec violation at time t.
func (c *Convergence) RecordViolation(t int64) {
	if c == nil {
		return
	}
	c.violations.Inc()
	c.lastViolation.SetMax(t)
}

// RecordProgress notes a progress event (a CS entry, a token delivery) at
// time t. Events at the exact time of the last fault do not count: the
// window is strictly after it, matching a post-hoc recount.
func (c *Convergence) RecordProgress(t int64) {
	if c == nil {
		return
	}
	if t <= c.lastFault.Value() {
		return
	}
	if c.firstProgress.Value() < 0 {
		c.firstProgress.Set(t)
	}
	c.progress.Add(1)
}

// LastFault returns the last fault time (-1 when none or nil receiver).
func (c *Convergence) LastFault() int64 {
	if c == nil {
		return -1
	}
	return c.lastFault.Value()
}

// LastViolation returns the last violation time (-1 when clean or nil
// receiver).
func (c *Convergence) LastViolation() int64 {
	if c == nil {
		return -1
	}
	return c.lastViolation.Value()
}

// Violations returns the total violation count.
func (c *Convergence) Violations() int64 {
	if c == nil {
		return 0
	}
	return c.violations.Value()
}

// FirstProgressAfterFault returns the time of the first progress event
// strictly after the last fault (-1 when none).
func (c *Convergence) FirstProgressAfterFault() int64 {
	if c == nil {
		return -1
	}
	return c.firstProgress.Value()
}

// ProgressAfterFault returns the number of progress events strictly after
// the last fault.
func (c *Convergence) ProgressAfterFault() int64 {
	if c == nil {
		return 0
	}
	return c.progress.Value()
}

// Time returns max(0, lastViolation − lastFault) when a violation followed
// a fault — the safety-convergence latency — and 0 otherwise.
func (c *Convergence) Time() int64 {
	if c == nil {
		return 0
	}
	lv, lf := c.lastViolation.Value(), c.lastFault.Value()
	if lv > lf {
		return lv - lf
	}
	return 0
}
