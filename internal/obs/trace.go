package obs

import (
	"fmt"
	"sync"
)

// EventKind classifies trace events across all execution substrates.
type EventKind uint8

// Event kinds. Every switch dispatching over them must be total or carry a
// loud default; gblint's exhaustiveness pass enforces it.
//
//gblint:kindset obs-event
const (
	// EvSend is a message handed to the transport.
	EvSend EventKind = iota + 1
	// EvDeliver is a message delivered to its destination.
	EvDeliver
	// EvDrop is a message removed by a fault (loss, flush).
	EvDrop
	// EvDup is a message duplicated in flight.
	EvDup
	// EvWrapperFire is a level-2 wrapper guard opening (corrective sends).
	EvWrapperFire
	// EvRepair is a level-1 wrapper repairing a process in place.
	EvRepair
	// EvFault is an injected fault.
	EvFault
	// EvViolation is a spec-monitor verdict against the run.
	EvViolation
	// EvProgress is a progress event: a CS entry, a token delivery.
	EvProgress
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvDeliver:
		return "deliver"
	case EvDrop:
		return "drop"
	case EvDup:
		return "dup"
	case EvWrapperFire:
		return "wrapper-fire"
	case EvRepair:
		return "repair"
	case EvFault:
		return "fault"
	case EvViolation:
		return "violation"
	case EvProgress:
		return "progress"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one trace record. Time is virtual ticks under the simulator and
// unix nanoseconds under the goroutine runtime. A and B are process ids
// (message source/destination; -1 when not applicable). N is an event-
// specific count (messages sent by a wrapper firing, for example). Detail
// is a static label — publishers pass constant strings so emission stays
// allocation-free.
type Event struct {
	Time   int64
	Kind   EventKind
	A, B   int
	N      int
	Detail string
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("t=%d %s", e.Time, e.Kind)
	if e.A >= 0 {
		s += fmt.Sprintf(" a=%d", e.A)
	}
	if e.B >= 0 {
		s += fmt.Sprintf(" b=%d", e.B)
	}
	if e.N != 0 {
		s += fmt.Sprintf(" n=%d", e.N)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Trace is a bounded ring buffer of events with an optional synchronous
// callback. Emission on a full ring overwrites the oldest event (the
// dropped count is kept). All methods are safe for concurrent use and
// no-ops on a nil receiver.
type Trace struct {
	mu      sync.Mutex
	buf     []Event     //gblint:guardedby mu
	start   int         //gblint:guardedby mu -- index of the oldest retained event
	n       int         //gblint:guardedby mu -- retained events
	total   uint64      //gblint:guardedby mu -- events ever emitted
	onEvent func(Event) //gblint:guardedby mu
}

// NewTrace returns a trace sink retaining up to capacity events; onEvent,
// when non-nil, is called synchronously for each emission.
func NewTrace(capacity int, onEvent func(Event)) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, capacity), onEvent: onEvent}
}

// Emit records e.
//
//gblint:hotpath
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
	} else {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
	}
	t.total++
	cb := t.onEvent
	t.mu.Unlock()
	if cb != nil {
		cb(e)
	}
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Total returns how many events were ever emitted (retained or not).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.n)
}
