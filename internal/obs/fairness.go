package obs

import (
	"slices"
	"sync"
)

// Fairness tracks per-client CS entry counts and entry latencies, from
// which the workload experiments derive their fairness columns: are all
// clients being served, or is the protocol starving the unlucky ones under
// skewed or bursty load?
//
// RecordEntry is called once per CS entry (not per message), so a mutex —
// not the registry's lock-free atomics — is an acceptable cost; the gain is
// exact per-client series from which Publish computes percentiles. All
// methods are no-ops on a nil receiver, matching the package's disabled-path
// rule.
type Fairness struct {
	mu     sync.Mutex
	counts []int64 //gblint:guardedby mu -- entries per client id (grown on demand)
	lats   []int64 //gblint:guardedby mu -- all entry latencies, in substrate ticks
	min    *Gauge
	max    *Gauge
	ratio  *Gauge
	p50    *Gauge
	p95    *Gauge
	p99    *Gauge
}

// NewFairness registers the fairness instruments on r (nil r yields a nil,
// no-op tracker).
func NewFairness(r *Registry) *Fairness {
	if r == nil {
		return nil
	}
	return &Fairness{
		min:   r.Gauge("fair_entries_min", "fewest CS entries by any client"),
		max:   r.Gauge("fair_entries_max", "most CS entries by any client"),
		ratio: r.Gauge("fair_entry_ratio_x1000", "max/min per-client entry ratio ×1000 (0 = a client never entered)"),
		p50:   r.Gauge("fair_latency_p50", "median request→entry latency (substrate ticks)"),
		p95:   r.Gauge("fair_latency_p95", "p95 request→entry latency (substrate ticks)"),
		p99:   r.Gauge("fair_latency_p99", "p99 request→entry latency (substrate ticks)"),
	}
}

// RecordEntry notes that client entered the CS, latency ticks after it
// requested. Negative latencies (no matching request seen) count the entry
// but not the latency.
func (f *Fairness) RecordEntry(client int, latency int64) {
	if f == nil || client < 0 {
		return
	}
	f.mu.Lock()
	if client >= len(f.counts) {
		if client < cap(f.counts) {
			f.counts = f.counts[:client+1]
		} else {
			grown := make([]int64, client+1, client+8)
			copy(grown, f.counts)
			f.counts = grown
		}
	}
	f.counts[client]++
	if latency >= 0 {
		if f.lats == nil {
			f.lats = make([]int64, 0, 128)
		}
		f.lats = append(f.lats, latency)
	}
	f.mu.Unlock()
}

// Publish computes the fairness summary over everything recorded so far and
// sets the fair_* gauges. Call once at the end of a run, before
// snapshotting; calling again after more entries refreshes the gauges.
func (f *Fairness) Publish() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.counts) > 0 {
		min, max := f.counts[0], f.counts[0]
		for _, c := range f.counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		f.min.Set(min)
		f.max.Set(max)
		if min > 0 {
			f.ratio.Set(max * 1000 / min)
		} else {
			f.ratio.Set(0) // a starved client: the ratio is unbounded
		}
	}
	if len(f.lats) > 0 {
		// Sort in place: insertion order carries no meaning, and entries
		// recorded after this call are re-sorted by the next Publish.
		slices.Sort(f.lats)
		f.p50.Set(quantile(f.lats, 0.50))
		f.p95.Set(quantile(f.lats, 0.95))
		f.p99.Set(quantile(f.lats, 0.99))
	}
}

// EntryCounts returns a copy of the per-client entry counts (nil on a nil
// receiver).
func (f *Fairness) EntryCounts() []int64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]int64, len(f.counts))
	copy(out, f.counts)
	return out
}

// quantile reads the q-th quantile from an ascending-sorted slice.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
