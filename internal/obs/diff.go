package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MetricDiff is one metric's comparison between two snapshots: the two
// values, their symmetric relative difference, and whether it sits inside
// the tolerance asked for.
type MetricDiff struct {
	// Name is the counter or gauge name (counters and gauges share one
	// namespace across the repo, so no kind marker is needed).
	Name string
	// A and B are the two snapshot values (0 for an absent counter; an
	// absent gauge is compared as 0 too — pick gate metrics that both
	// sides publish).
	A, B int64
	// Rel is |A−B| / max(|A|,|B|): 0 for equal values, 1 when one side is
	// zero and the other is not. Symmetric, so the gate does not care
	// which substrate is "truth".
	Rel float64
	// Tol is the tolerance the metric was gated with; Within is Rel ≤ Tol.
	Tol    float64
	Within bool
}

// String renders one diff row for gate output.
func (d MetricDiff) String() string {
	verdict := "ok"
	if !d.Within {
		verdict = "DIVERGED"
	}
	return fmt.Sprintf("%-34s a=%-10d b=%-10d rel=%5.1f%% tol=%5.1f%%  %s",
		d.Name, d.A, d.B, 100*d.Rel, 100*d.Tol, verdict)
}

// DiffSnapshots compares the named metrics of two snapshots under
// per-metric tolerances. tols maps metric name → allowed symmetric
// relative difference (0 demands equality, 0.25 allows 25%, …). Only the
// named metrics are compared — parity gates on semantic metrics, not on
// substrate-specific bookkeeping — and the result is sorted by name so
// gate output is deterministic. Either snapshot may be nil (treated as
// empty).
func DiffSnapshots(a, b *Snapshot, tols map[string]float64) []MetricDiff {
	if a == nil {
		a = NewSnapshot()
	}
	if b == nil {
		b = NewSnapshot()
	}
	diffs := make([]MetricDiff, 0, len(tols))
	for name, tol := range tols {
		va, vb := metricValue(a, name), metricValue(b, name)
		d := MetricDiff{Name: name, A: va, B: vb, Rel: relDiff(va, vb), Tol: tol}
		d.Within = d.Rel <= tol
		diffs = append(diffs, d)
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Name < diffs[j].Name })
	return diffs
}

// AllWithin reports whether every diff is inside its tolerance.
func AllWithin(diffs []MetricDiff) bool {
	for _, d := range diffs {
		if !d.Within {
			return false
		}
	}
	return true
}

// FormatDiffs renders a diff list one row per line (empty string for an
// empty list).
func FormatDiffs(diffs []MetricDiff) string {
	var b strings.Builder
	for _, d := range diffs {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// metricValue reads name from the snapshot, preferring the counter
// namespace and falling back to gauges; absent everywhere reads as 0.
func metricValue(s *Snapshot, name string) int64 {
	if v, ok := s.Counters[name]; ok {
		return v
	}
	return s.Gauges[name]
}

// relDiff is the symmetric relative difference |a−b| / max(|a|,|b|).
func relDiff(a, b int64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	return math.Abs(float64(a)-float64(b)) / den
}
