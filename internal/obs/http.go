package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the bundle over HTTP:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   deterministic JSON snapshot
//	/trace          retained trace events as text (when tracing is on)
//	/debug/pprof/*  the Go runtime profiler (goroutines, heap, CPU, ...)
//
// The pprof routes are the observability story for the goroutine runtime
// (internal/runtime): its scheduling and blocking behaviour lives in the
// Go runtime, not in our counters.
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Registry().WriteJSON(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		for _, e := range o.Tracer().Events() {
			_, _ = w.Write([]byte(e.String() + "\n"))
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve exposes Handler on addr in a background goroutine. It returns the
// bound listener address (useful with ":0") and a shutdown function.
func (o *Obs) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: o.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
