package obs

import "testing"

func TestFairnessNilNoOp(t *testing.T) {
	var f *Fairness
	f.RecordEntry(0, 1) // must not panic
	f.Publish()
	if f.EntryCounts() != nil {
		t.Error("nil Fairness returned counts")
	}
	if NewFairness(nil) != nil {
		t.Error("NewFairness(nil) should be nil")
	}
}

func TestFairnessPublish(t *testing.T) {
	o := New(Options{})
	f := o.Fairness()
	// Client 0 enters 4× with low latency, client 2 once with high; client
	// 1 never enters but is inside the id range via client 2's record.
	for i := 0; i < 4; i++ {
		f.RecordEntry(0, 10)
	}
	f.RecordEntry(2, 100)
	f.RecordEntry(2, -1) // latency unknown: counted, not sampled
	f.Publish()

	snap := o.Registry().Snapshot()
	if got := snap.Gauge("fair_entries_max", -1); got != 4 {
		t.Errorf("fair_entries_max = %d, want 4", got)
	}
	if got := snap.Gauge("fair_entries_min", -1); got != 0 {
		t.Errorf("fair_entries_min = %d, want 0 (client 1 starved)", got)
	}
	if got := snap.Gauge("fair_entry_ratio_x1000", -1); got != 0 {
		t.Errorf("fair_entry_ratio_x1000 = %d, want 0 for a starved client", got)
	}
	counts := f.EntryCounts()
	if len(counts) != 3 || counts[0] != 4 || counts[1] != 0 || counts[2] != 2 {
		t.Errorf("EntryCounts = %v, want [4 0 2]", counts)
	}
}

func TestFairnessLatencyPercentiles(t *testing.T) {
	o := New(Options{})
	f := o.Fairness()
	// 50 fast entries, 50 slow: the median sits in the fast half, the tail
	// percentiles in the slow half (same int(q·(n−1)) convention as the
	// live harness).
	for i := 0; i < 50; i++ {
		f.RecordEntry(0, 10)
		f.RecordEntry(1, 100)
	}
	f.Publish()
	snap := o.Registry().Snapshot()
	if got := snap.Gauge("fair_latency_p50", -1); got != 10 {
		t.Errorf("fair_latency_p50 = %d, want 10", got)
	}
	if got := snap.Gauge("fair_latency_p95", -1); got != 100 {
		t.Errorf("fair_latency_p95 = %d, want 100", got)
	}
	if got := snap.Gauge("fair_latency_p99", -1); got != 100 {
		t.Errorf("fair_latency_p99 = %d, want 100", got)
	}
}

func TestFairnessRatio(t *testing.T) {
	o := New(Options{})
	f := o.Fairness()
	f.RecordEntry(0, 1)
	f.RecordEntry(0, 1)
	f.RecordEntry(0, 1)
	f.RecordEntry(1, 1)
	f.RecordEntry(1, 1)
	f.Publish()
	snap := o.Registry().Snapshot()
	if got := snap.Gauge("fair_entry_ratio_x1000", -1); got != 1500 {
		t.Errorf("fair_entry_ratio_x1000 = %d, want 1500 (3/2)", got)
	}
}
