package spec

// Monitor consumes a computation one state at a time and reports temporal
// predicate violations online, so long simulations need not retain traces.
// Monitors are non-latching: they report every violating state or
// transition, not just the first, so callers can locate the *last*
// violation of a run — the quantity stabilization measurements need.
// Implementations are not safe for concurrent use.
type Monitor[S any] interface {
	// Observe feeds the next state of the computation. It returns a
	// non-nil violation whenever the property fails at this state or on
	// the transition into it.
	Observe(s S) *Violation
	// Pending reports how many obligations remain open (nonzero only for
	// liveness monitors such as leads-to, where p held but q has not yet).
	Pending() int
	// Name identifies the monitored property in reports.
	Name() string
}

// unlessMonitor checks p unless q online.
type unlessMonitor[S any] struct {
	name     string
	p, q     Predicate[S]
	idx      int
	havePrev bool
	prevPnQ  bool // p ∧ ¬q held at the previous state
}

// NewUnless returns an online monitor for "p unless q".
func NewUnless[S any](name string, p, q Predicate[S]) Monitor[S] {
	return &unlessMonitor[S]{name: name, p: p, q: q}
}

func (m *unlessMonitor[S]) Name() string { return m.name }
func (m *unlessMonitor[S]) Pending() int { return 0 }

// Observe feeds the next state.
//
//gblint:hotpath
func (m *unlessMonitor[S]) Observe(s S) *Violation {
	idx := m.idx
	m.idx++
	pnq := m.p(s) && !m.q(s)
	bad := m.havePrev && m.prevPnQ && !m.p(s) && !m.q(s)
	m.havePrev = true
	m.prevPnQ = pnq
	if bad {
		return &Violation{Op: "unless", Index: idx - 1,
			Detail: m.name + ": p ∧ ¬q held but next state satisfies ¬p ∧ ¬q"}
	}
	return nil
}

// NewStable returns an online monitor for stable(p).
func NewStable[S any](name string, p Predicate[S]) Monitor[S] {
	return NewUnless(name, p, False[S])
}

// invariantMonitor checks "p is invariant" online. Online it reports every
// state where p fails — a strictly stronger, per-state reading of the
// invariant that lets callers locate the last bad state of a run.
type invariantMonitor[S any] struct {
	name string
	p    Predicate[S]
	idx  int
}

// NewInvariant returns an online monitor reporting every state where p
// fails.
func NewInvariant[S any](name string, p Predicate[S]) Monitor[S] {
	return &invariantMonitor[S]{name: name, p: p}
}

func (m *invariantMonitor[S]) Name() string { return m.name }
func (m *invariantMonitor[S]) Pending() int { return 0 }

// Observe feeds the next state.
//
//gblint:hotpath
func (m *invariantMonitor[S]) Observe(s S) *Violation {
	idx := m.idx
	m.idx++
	if !m.p(s) {
		return &Violation{Op: "invariant", Index: idx, Detail: m.name + ": p does not hold"}
	}
	return nil
}

// leadsToMonitor checks p ↦ q online. A violation can only be detected at
// trace end (liveness), so Observe never fails; callers inspect Pending
// after the run has quiesced, or use Deadline-bounded variants in harnesses.
type leadsToMonitor[S any] struct {
	name string
	p, q Predicate[S]
	// selfNeg marks q ≡ ¬p (the "p is transient" shape), letting Observe
	// evaluate p once per state instead of twice.
	selfNeg    bool
	idx        int
	openSince  int // index of the earliest unmet p, -1 if none
	open       int // number of distinct p-positions currently unmet
	discharged int // obligations met so far
}

// LeadsToMonitor is an online checker for p ↦ q with obligation accounting.
type LeadsToMonitor[S any] struct{ m leadsToMonitor[S] }

// NewLeadsTo returns an online monitor for p ↦ q.
func NewLeadsTo[S any](name string, p, q Predicate[S]) *LeadsToMonitor[S] {
	return &LeadsToMonitor[S]{m: leadsToMonitor[S]{name: name, p: p, q: q, openSince: -1}}
}

// NewLeadsToNot returns an online monitor for p ↦ ¬p ("p is transient"),
// equivalent to NewLeadsTo(name, p, Not(p)) but evaluating p once per
// state — the shape of CS Spec and the Reply Spec discharge obligations.
func NewLeadsToNot[S any](name string, p Predicate[S]) *LeadsToMonitor[S] {
	return &LeadsToMonitor[S]{m: leadsToMonitor[S]{name: name, p: p, selfNeg: true, openSince: -1}}
}

// Name identifies the property.
func (l *LeadsToMonitor[S]) Name() string { return l.m.name }

// Pending returns the number of open (unmet) obligations.
func (l *LeadsToMonitor[S]) Pending() int { return l.m.open }

// Discharged returns the number of obligations met so far.
func (l *LeadsToMonitor[S]) Discharged() int { return l.m.discharged }

// OpenSince returns the index of the earliest open obligation, or -1.
func (l *LeadsToMonitor[S]) OpenSince() int { return l.m.openSince }

// Observe feeds the next state. It never returns a violation (leads-to can
// only fail at infinity); use Finish at end of trace.
//
//gblint:hotpath
func (l *LeadsToMonitor[S]) Observe(s S) *Violation {
	m := &l.m
	idx := m.idx
	m.idx++
	pv := m.p(s)
	var qv bool
	if m.selfNeg {
		qv = !pv
	} else {
		qv = m.q(s)
	}
	if qv {
		m.discharged += m.open
		m.open = 0
		m.openSince = -1
	}
	if pv && !qv {
		if m.openSince == -1 {
			m.openSince = idx
		}
		m.open++
	}
	return nil
}

// Finish reports a violation if obligations remain open at trace end.
func (l *LeadsToMonitor[S]) Finish() *Violation {
	if l.m.open > 0 {
		return &Violation{Op: "leads-to", Index: l.m.openSince,
			Detail: l.m.name + ": obligation open at end of trace"}
	}
	return nil
}

var _ Monitor[int] = (*LeadsToMonitor[int])(nil)

// Suite aggregates monitors and fans states out to all of them.
type Suite[S any] struct {
	monitors   []Monitor[S]
	violations []*Violation
}

// NewSuite returns a Suite over the given monitors.
func NewSuite[S any](ms ...Monitor[S]) *Suite[S] {
	return &Suite[S]{monitors: ms}
}

// Add registers another monitor.
func (su *Suite[S]) Add(m Monitor[S]) { su.monitors = append(su.monitors, m) }

// Observe feeds s to every monitor, collecting violations.
//
//gblint:hotpath
func (su *Suite[S]) Observe(s S) {
	for _, m := range su.monitors {
		if v := m.Observe(s); v != nil {
			su.violations = append(su.violations, v)
		}
	}
}

// Violations returns all violations recorded so far.
func (su *Suite[S]) Violations() []*Violation { return su.violations }

// Pending sums open obligations across monitors.
func (su *Suite[S]) Pending() int {
	total := 0
	for _, m := range su.monitors {
		total += m.Pending()
	}
	return total
}
