// Package spec implements the UNITY-style temporal predicates the paper
// states its specifications in (DSN 2001, §3.1, after Chandy & Misra):
//
//	p unless q   — if p ∧ ¬q holds at a state, the next state satisfies p ∨ q
//	stable(p)    — p unless false
//	invariant(p) — p holds initially and stable(p)
//	p ↦ q        — p leads-to q: whenever p holds, q holds then or later
//	p ↪ q        — p leads-to-always q: (p ↦ q) ∧ stable(q)
//
// Two evaluation modes are provided. Trace functions (Unless, LeadsTo, …)
// decide a predicate over a complete finite computation. Monitors consume
// states one at a time, for streaming checks over long simulations without
// retaining the trace.
package spec

import "fmt"

// Predicate is a state predicate over states of type S.
type Predicate[S any] func(S) bool

// And returns the conjunction of predicates.
func And[S any](ps ...Predicate[S]) Predicate[S] {
	return func(s S) bool {
		for _, p := range ps {
			if !p(s) {
				return false
			}
		}
		return true
	}
}

// Or returns the disjunction of predicates.
func Or[S any](ps ...Predicate[S]) Predicate[S] {
	return func(s S) bool {
		for _, p := range ps {
			if p(s) {
				return true
			}
		}
		return false
	}
}

// Not returns the negation of p.
func Not[S any](p Predicate[S]) Predicate[S] {
	return func(s S) bool { return !p(s) }
}

// True is the predicate that holds everywhere.
func True[S any](S) bool { return true }

// False is the predicate that holds nowhere.
func False[S any](S) bool { return false }

// Violation describes where in a trace a temporal predicate failed.
type Violation struct {
	// Op names the operator that failed ("unless", "stable", "invariant",
	// "leads-to", "leads-to-always").
	Op string
	// Index is the trace position of the failure: for unless/stable the
	// index of the state whose successor broke the property; for leads-to
	// the index where the antecedent held but the consequent never
	// followed.
	Index int
	// Detail is a human-readable elaboration.
	Detail string
}

// Error implements error so checkers can return *Violation directly.
func (v *Violation) Error() string {
	return fmt.Sprintf("%s violated at trace index %d: %s", v.Op, v.Index, v.Detail)
}

// Unless checks "p unless q" over trace. It returns nil if the property
// holds, or the first violation: a state where p ∧ ¬q held but the successor
// satisfied ¬p ∧ ¬q.
func Unless[S any](trace []S, p, q Predicate[S]) *Violation {
	for i := 0; i+1 < len(trace); i++ {
		if p(trace[i]) && !q(trace[i]) {
			next := trace[i+1]
			if !p(next) && !q(next) {
				return &Violation{
					Op:     "unless",
					Index:  i,
					Detail: "p ∧ ¬q held but next state satisfies ¬p ∧ ¬q",
				}
			}
		}
	}
	return nil
}

// Stable checks stable(p) = p unless false over trace.
func Stable[S any](trace []S, p Predicate[S]) *Violation {
	if v := Unless(trace, p, False[S]); v != nil {
		return &Violation{Op: "stable", Index: v.Index, Detail: "p held but next state falsifies p"}
	}
	return nil
}

// Invariant checks "p is invariant": p holds at trace[0] and stable(p).
func Invariant[S any](trace []S, p Predicate[S]) *Violation {
	if len(trace) == 0 {
		return nil
	}
	if !p(trace[0]) {
		return &Violation{Op: "invariant", Index: 0, Detail: "p does not hold initially"}
	}
	if v := Stable(trace, p); v != nil {
		return &Violation{Op: "invariant", Index: v.Index, Detail: v.Detail}
	}
	return nil
}

// LeadsTo checks p ↦ q over a finite trace: every position where p holds
// must be followed (at that position or later) by a position where q holds.
// On a finite trace this is necessarily an approximation of the infinitary
// property; an obligation still open at the end of the trace is reported as
// a violation, so callers should run traces past quiescence.
func LeadsTo[S any](trace []S, p, q Predicate[S]) *Violation {
	// Scan right-to-left tracking the nearest future q.
	nextQ := -1
	earliestUnmet := -1
	for i := len(trace) - 1; i >= 0; i-- {
		if q(trace[i]) {
			nextQ = i
		}
		if p(trace[i]) && nextQ == -1 {
			earliestUnmet = i
		}
	}
	if earliestUnmet >= 0 {
		return &Violation{
			Op:     "leads-to",
			Index:  earliestUnmet,
			Detail: "p held but q never held at or after it within the trace",
		}
	}
	return nil
}

// LeadsToAlways checks p ↪ q = (p ↦ q) ∧ stable(q).
func LeadsToAlways[S any](trace []S, p, q Predicate[S]) *Violation {
	if v := LeadsTo(trace, p, q); v != nil {
		return &Violation{Op: "leads-to-always", Index: v.Index, Detail: v.Detail}
	}
	if v := Stable(trace, q); v != nil {
		return &Violation{Op: "leads-to-always", Index: v.Index, Detail: "q not stable: " + v.Detail}
	}
	return nil
}

// EventuallyAlways checks ◇□p over the finite trace: some suffix satisfies p
// in every state. This is the shape of stabilization claims ("a suffix that
// is a suffix of a legitimate computation"). It returns the index at which
// the final all-p suffix begins, or a violation if the last state itself
// falsifies p.
func EventuallyAlways[S any](trace []S, p Predicate[S]) (suffixStart int, v *Violation) {
	if len(trace) == 0 {
		return 0, nil
	}
	i := len(trace)
	for i > 0 && p(trace[i-1]) {
		i--
	}
	if i == len(trace) {
		return 0, &Violation{
			Op:     "eventually-always",
			Index:  len(trace) - 1,
			Detail: "final state falsifies p; no stable suffix",
		}
	}
	return i, nil
}
