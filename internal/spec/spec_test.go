package spec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Simple integer-state helpers.
func ge(n int) Predicate[int] { return func(s int) bool { return s >= n } }
func eq(n int) Predicate[int] { return func(s int) bool { return s == n } }
func lt(n int) Predicate[int] { return func(s int) bool { return s < n } }
func even(s int) bool         { return s%2 == 0 }
func trace(xs ...int) []int   { return xs }

func TestConnectives(t *testing.T) {
	p := And(ge(2), lt(5))
	if !p(3) || p(1) || p(5) {
		t.Error("And wrong")
	}
	q := Or(eq(0), eq(9))
	if !q(0) || !q(9) || q(4) {
		t.Error("Or wrong")
	}
	if Not(eq(1))(1) || !Not(eq(1))(2) {
		t.Error("Not wrong")
	}
	if !True[int](7) || False[int](7) {
		t.Error("True/False wrong")
	}
}

func TestUnlessHolds(t *testing.T) {
	// counter that only increases: "s==k unless s>k" holds for any k.
	tr := trace(0, 1, 2, 3, 4)
	if v := Unless(tr, eq(2), ge(3)); v != nil {
		t.Errorf("unless violated: %v", v)
	}
}

func TestUnlessViolated(t *testing.T) {
	// p = s==2, q = s>=5: state 2 followed by 1 violates.
	tr := trace(2, 1)
	v := Unless(tr, eq(2), ge(5))
	if v == nil {
		t.Fatal("expected violation")
	}
	if v.Index != 0 || v.Op != "unless" {
		t.Errorf("violation = %+v", v)
	}
	if v.Error() == "" {
		t.Error("empty error string")
	}
}

func TestUnlessVacuous(t *testing.T) {
	// p never holds: unless is vacuously true.
	tr := trace(1, 2, 3)
	if v := Unless(tr, eq(99), False[int]); v != nil {
		t.Errorf("vacuous unless violated: %v", v)
	}
	// q holds whenever p does: also fine even if p is lost.
	tr2 := trace(5, 0)
	if v := Unless(tr2, ge(5), ge(5)); v != nil {
		t.Errorf("unless with p⇒q violated: %v", v)
	}
}

func TestStable(t *testing.T) {
	if v := Stable(trace(1, 2, 3), ge(1)); v != nil {
		t.Errorf("stable violated: %v", v)
	}
	v := Stable(trace(1, 2, 0), ge(1))
	if v == nil || v.Index != 1 {
		t.Errorf("stable: got %+v, want violation at 1", v)
	}
}

func TestInvariant(t *testing.T) {
	if v := Invariant(trace(2, 3, 4), ge(2)); v != nil {
		t.Errorf("invariant violated: %v", v)
	}
	if v := Invariant(trace(1, 3, 4), ge(2)); v == nil || v.Index != 0 {
		t.Errorf("invariant: got %+v, want initial violation", v)
	}
	if v := Invariant(trace(2, 1), ge(2)); v == nil {
		t.Error("invariant: want stability violation")
	}
	if v := Invariant(nil, ge(2)); v != nil {
		t.Error("invariant on empty trace should hold")
	}
}

func TestLeadsTo(t *testing.T) {
	// every 1 is followed by a 9
	tr := trace(1, 0, 9, 1, 9)
	if v := LeadsTo(tr, eq(1), eq(9)); v != nil {
		t.Errorf("leads-to violated: %v", v)
	}
	// q at the same position counts
	if v := LeadsTo(trace(9), eq(9), eq(9)); v != nil {
		t.Errorf("leads-to same-state violated: %v", v)
	}
	// open obligation at end is a violation
	v := LeadsTo(trace(0, 1, 0), eq(1), eq(9))
	if v == nil || v.Index != 1 {
		t.Errorf("leads-to: got %+v, want violation at 1", v)
	}
}

func TestLeadsToAlways(t *testing.T) {
	// p=s==1 leads to always s>=9
	if v := LeadsToAlways(trace(0, 1, 9, 10, 11), eq(1), ge(9)); v != nil {
		t.Errorf("↪ violated: %v", v)
	}
	// q not stable
	if v := LeadsToAlways(trace(1, 9, 0), eq(1), ge(9)); v == nil {
		t.Error("↪: want stability violation")
	}
	// p never satisfied within trace
	if v := LeadsToAlways(trace(0, 1, 0), eq(1), ge(9)); v == nil {
		t.Error("↪: want leads-to violation")
	}
}

func TestEventuallyAlways(t *testing.T) {
	start, v := EventuallyAlways(trace(0, 5, 0, 7, 8, 9), ge(7))
	if v != nil || start != 3 {
		t.Errorf("◇□: start=%d v=%v, want start=3", start, v)
	}
	_, v = EventuallyAlways(trace(7, 0), ge(7))
	if v == nil {
		t.Error("◇□: want violation when final state falsifies p")
	}
	start, v = EventuallyAlways(nil, ge(0))
	if v != nil || start != 0 {
		t.Error("◇□ on empty trace should hold")
	}
	// p everywhere: suffix starts at 0
	start, v = EventuallyAlways(trace(8, 9), ge(7))
	if v != nil || start != 0 {
		t.Errorf("◇□ everywhere: start=%d v=%v", start, v)
	}
}

// Property: the online unless monitor agrees with the trace checker.
func TestUnlessMonitorAgreesWithTraceChecker(t *testing.T) {
	f := func(raw []byte, pn, qn uint8) bool {
		tr := make([]int, len(raw))
		for i, b := range raw {
			tr[i] = int(b % 8)
		}
		p := eq(int(pn % 8))
		q := eq(int(qn % 8))
		want := Unless(tr, p, q)
		m := NewUnless("t", p, q)
		var got *Violation
		for _, s := range tr {
			if v := m.Observe(s); v != nil && got == nil {
				got = v
			}
		}
		if (want == nil) != (got == nil) {
			return false
		}
		if want != nil && want.Index != got.Index {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the online leads-to monitor agrees with the trace checker.
func TestLeadsToMonitorAgreesWithTraceChecker(t *testing.T) {
	f := func(raw []byte, pn, qn uint8) bool {
		tr := make([]int, len(raw))
		for i, b := range raw {
			tr[i] = int(b % 6)
		}
		p := eq(int(pn % 6))
		q := eq(int(qn % 6))
		want := LeadsTo(tr, p, q)
		m := NewLeadsTo("t", p, q)
		for _, s := range tr {
			m.Observe(s)
		}
		got := m.Finish()
		if (want == nil) != (got == nil) {
			return false
		}
		if want != nil && want.Index != got.Index {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvariantMonitor(t *testing.T) {
	m := NewInvariant("ge2", ge(2))
	if v := m.Observe(1); v == nil || v.Index != 0 {
		t.Errorf("initial violation: got %+v", v)
	}
	// Non-latching: every bad state reports, so the last violation of a
	// run can be located.
	if v := m.Observe(0); v == nil || v.Index != 1 {
		t.Errorf("second bad state not reported: %+v", v)
	}
	if v := m.Observe(5); v != nil {
		t.Errorf("good state reported: %v", v)
	}

	m2 := NewInvariant("ge2", ge(2))
	m2.Observe(3)
	m2.Observe(4)
	if v := m2.Observe(1); v == nil {
		t.Error("stability break not reported")
	}
}

func TestUnlessMonitorNonLatching(t *testing.T) {
	// Two separate bad transitions must both report.
	m := NewUnless("t", eq(2), ge(5))
	var got []int
	for _, s := range trace(2, 1, 2, 0) {
		if v := m.Observe(s); v != nil {
			got = append(got, v.Index)
		}
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("violation indices = %v, want [0 2]", got)
	}
}

func TestLeadsToMonitorAccounting(t *testing.T) {
	m := NewLeadsTo("req", eq(1), eq(9))
	m.Observe(1)
	m.Observe(1)
	if m.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", m.Pending())
	}
	if m.OpenSince() != 0 {
		t.Errorf("OpenSince = %d, want 0", m.OpenSince())
	}
	m.Observe(9)
	if m.Pending() != 0 || m.Discharged() != 2 {
		t.Errorf("after q: pending=%d discharged=%d", m.Pending(), m.Discharged())
	}
	if v := m.Finish(); v != nil {
		t.Errorf("Finish: %v", v)
	}
}

func TestSuite(t *testing.T) {
	su := NewSuite[int](NewStable("nonneg", ge(0)))
	su.Add(NewInvariant("even", func(s int) bool { return even(s) }))
	lt := NewLeadsTo("one-to-two", eq(1), eq(2))
	su.Add(lt)
	for _, s := range trace(0, 2, 4, 1, 2) {
		su.Observe(s)
	}
	// "even" is violated at state 1 (index 3).
	vs := su.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %d (%v), want 1", len(vs), vs)
	}
	if su.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", su.Pending())
	}
}

// Property: stable(p) over a monotone trace holds for any upward-closed p.
func TestStableMonotoneProperty(t *testing.T) {
	f := func(seed int64, thr uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := make([]int, 50)
		v := 0
		for i := range tr {
			v += rng.Intn(3)
			tr[i] = v
		}
		return Stable(tr, ge(int(thr%20))) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
