package spec_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/spec"
)

// ExampleLeadsTo checks the UNITY leads-to operator over a finite trace:
// every occurrence of 1 must be followed by a 9.
func ExampleLeadsTo() {
	eq := func(n int) spec.Predicate[int] {
		return func(s int) bool { return s == n }
	}
	good := []int{0, 1, 3, 9, 1, 9}
	bad := []int{0, 1, 3}
	fmt.Println("good trace:", spec.LeadsTo(good, eq(1), eq(9)))
	fmt.Println("bad trace: ", spec.LeadsTo(bad, eq(1), eq(9)))
	// Output:
	// good trace: <nil>
	// bad trace:  leads-to violated at trace index 1: p held but q never held at or after it within the trace
}

// ExampleUnless checks the UNITY unless operator: once the counter is at
// least 2 it may only leave that condition by reaching 5.
func ExampleUnless() {
	ge := func(n int) spec.Predicate[int] {
		return func(s int) bool { return s >= n }
	}
	eq := func(n int) spec.Predicate[int] {
		return func(s int) bool { return s == n }
	}
	fmt.Println(spec.Unless([]int{2, 3, 5, 0}, spec.And(ge(2), spec.Not(eq(5))), eq(5)))
	fmt.Println(spec.Unless([]int{2, 0}, ge(2), eq(5)) != nil)
	// Output:
	// <nil>
	// true
}
