package tokenring

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/engine"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

// kindDaemonStep is the recurring engine event firing one central-daemon
// move per tick.
//
//gblint:kindset tokenring-daemon
const kindDaemonStep uint8 = 1

// SimConfig parameterizes an engine-backed token-ring run.
type SimConfig struct {
	// N is the number of machines (≥ 2).
	N int
	// K is the counter modulus; default N+1 (the smallest K with
	// guaranteed stabilization).
	K int
	// Seed derives every random choice of the run: the daemon's scheduling
	// stream and the corruption stream are both engine streams of this seed.
	Seed int64
	// Obs, when non-nil, receives metrics and trace events for the run.
	Obs *obs.Obs
}

// Sim runs Dijkstra's K-state ring under a randomized central daemon as an
// engine workload: one daemon move per virtual tick, every choice drawn
// from named engine streams, so an E10 run is reproducible from
// SimConfig.Seed exactly like the message-passing substrates.
type Sim struct {
	cfg     SimConfig
	core    *engine.Core
	ring    *Ring
	daemon  Rand // engine stream: which privileged machine fires
	corrupt Rand // engine stream: transient state corruption
	moves   int
	ins     trInstruments
}

// trInstruments caches the run's obs handles (nil fields when
// observability is off).
type trInstruments struct {
	trace *obs.Trace
	conv  *obs.Convergence
	moves *obs.Counter
	time  *obs.Gauge
}

func newTRInstruments(o *obs.Obs) trInstruments {
	if o == nil {
		return trInstruments{}
	}
	r := o.Registry()
	return trInstruments{
		trace: o.Tracer(),
		conv:  o.Convergence(),
		moves: r.Counter("tokenring_moves_total", "central-daemon moves fired"),
		time:  r.Gauge("tokenring_time", "current virtual time"),
	}
}

// NewSim builds a token-ring run in the all-zero (legitimate) state. It
// panics on an invalid configuration (programming error).
func NewSim(cfg SimConfig) *Sim {
	if cfg.N < 2 {
		panic("tokenring: SimConfig.N ≥ 2 is required")
	}
	if cfg.K == 0 {
		cfg.K = cfg.N + 1
	}
	core := engine.New(cfg.Seed)
	s := &Sim{
		cfg:     cfg,
		core:    core,
		ring:    New(cfg.N, cfg.K),
		daemon:  core.Stream("tokenring.daemon"),
		corrupt: core.Stream("tokenring.corrupt"),
	}
	s.ins = newTRInstruments(cfg.Obs)
	core.SetHandler(s.dispatch)
	core.Schedule(1, kindDaemonStep, 0, 0)
	return s
}

// Ring returns the underlying protocol state.
func (s *Sim) Ring() *Ring { return s.ring }

// Moves returns the number of daemon moves fired so far.
func (s *Sim) Moves() int { return s.moves }

// Now returns the current virtual time.
func (s *Sim) Now() int64 { return s.core.Now() }

// Legitimate reports whether exactly one machine is privileged.
func (s *Sim) Legitimate() bool { return s.ring.Legitimate() }

// step fires one central-daemon move: a uniformly chosen privileged
// machine moves (at least one machine is always privileged).
//
//gblint:hotpath
func (s *Sim) step() {
	priv := s.ring.PrivilegedSet()
	s.ring.Step(priv[s.daemon.Intn(len(priv))])
	s.moves++
	s.ins.moves.Inc()
	if s.ring.Legitimate() {
		s.ins.conv.RecordProgress(s.core.Now())
	}
	s.ins.time.Set(s.core.Now())
	s.core.Schedule(1, kindDaemonStep, 0, 0)
}

// dispatch executes one engine event record.
//
//gblint:hotpath
func (s *Sim) dispatch(ev *engine.Event) {
	switch ev.Kind {
	case kindDaemonStep:
		s.step()
	default:
		ev.Call()
	}
}

// Run advances the daemon by ticks moves.
func (s *Sim) Run(ticks int64) { s.core.Run(s.Now() + ticks) }

// Converge runs the daemon until the ring is legitimate or limit total
// moves have been made, returning the move count and whether the ring
// converged. Dijkstra's theorem: for K ≥ N, convergence always occurs.
func (s *Sim) Converge(limit int) (moves int, converged bool) {
	for s.moves < limit {
		if s.ring.Legitimate() {
			return s.moves, true
		}
		s.core.Run(s.Now() + 1)
	}
	return s.moves, s.ring.Legitimate()
}

// CorruptAll assigns arbitrary counters to every machine (transient
// whole-ring state corruption), drawn from the run's corruption stream.
func (s *Sim) CorruptAll() {
	s.ring.Corrupt(s.corrupt)
	s.ins.conv.RecordFault(s.Now())
	if s.ins.trace != nil {
		s.ins.trace.Emit(obs.Event{Time: s.Now(), Kind: obs.EvFault, A: -1, B: -1, Detail: "corrupt-all"})
	}
}

// --- engine.Surface ----------------------------------------------------
//
// The token ring is a shared-memory protocol: it has no channels, so the
// message-fault methods report "not applicable" and only state
// perturbation lands. One fault.Mix thereby drives all three substrates;
// on this one, only its State weight has effect.

// N returns the number of machines.
func (s *Sim) N() int { return s.cfg.N }

// Obs returns the run's observability bundle (nil when disabled).
func (s *Sim) Obs() *obs.Obs { return s.cfg.Obs }

// Core returns the underlying engine core.
func (s *Sim) Core() *engine.Core { return s.core }

// Channels returns nil: the token ring has no message channels.
func (s *Sim) Channels() []channel.Endpoint { return nil }

// QueueLen returns 0: no channels.
func (s *Sim) QueueLen(channel.Endpoint) int { return 0 }

// FaultDrop is not applicable (no channels).
func (s *Sim) FaultDrop(channel.Endpoint, int) bool { return false }

// FaultDuplicate is not applicable (no channels).
func (s *Sim) FaultDuplicate(channel.Endpoint, int, int64) bool { return false }

// FaultCorrupt is not applicable (no channels).
func (s *Sim) FaultCorrupt(channel.Endpoint, int, *rand.Rand) bool { return false }

// FaultPerturb overwrites machine id's counter with a value drawn from rng.
func (s *Sim) FaultPerturb(id int, rng *rand.Rand) bool {
	if id < 0 || id >= s.cfg.N {
		return false
	}
	s.ring.SetX(id, rng.Intn(s.cfg.K))
	return true
}

// FaultFlush is not applicable (no channels).
func (s *Sim) FaultFlush(channel.Endpoint) bool { return false }

var _ engine.Surface = (*Sim)(nil)
