package tokenring

import (
	"math/rand"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/obs"
)

// TestDaemonSimDeterminism: the engine-backed daemon is reproducible from
// SimConfig.Seed alone — same seed, same moves and same final counters.
func TestDaemonSimDeterminism(t *testing.T) {
	run := func(seed int64) (int, []int) {
		s := NewSim(SimConfig{N: 7, Seed: seed})
		s.CorruptAll()
		s.Run(200)
		xs := make([]int, s.Ring().N())
		for i := range xs {
			xs[i] = s.Ring().X(i)
		}
		return s.Moves(), xs
	}
	m1, x1 := run(42)
	m2, x2 := run(42)
	if m1 != m2 {
		t.Fatalf("same seed, different move counts: %d vs %d", m1, m2)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("same seed, different x[%d]: %d vs %d", i, x1[i], x2[i])
		}
	}
	m3, _ := run(43)
	s3 := NewSim(SimConfig{N: 7, Seed: 43})
	s3.CorruptAll()
	s3.Run(200)
	if m3 != s3.Moves() {
		t.Fatalf("seed 43 irreproducible: %d vs %d", m3, s3.Moves())
	}
}

// TestDaemonSimConverges: from whole-ring corruption the daemon always
// reaches a legitimate state within Dijkstra's bound, and stays there.
func TestDaemonSimConverges(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := NewSim(SimConfig{N: 5, Seed: seed})
		s.CorruptAll()
		limit := 100 * 5 * 5 * 6
		moves, ok := s.Converge(limit)
		if !ok {
			t.Fatalf("seed %d: no convergence within %d moves", seed, limit)
		}
		if moves > limit {
			t.Fatalf("seed %d: reported %d moves over limit %d", seed, moves, limit)
		}
		// Legitimacy is closed under daemon moves.
		s.Run(50)
		if !s.Legitimate() {
			t.Fatalf("seed %d: left legitimate states after convergence", seed)
		}
	}
}

// TestDaemonSimConvergeAlreadyLegit: a fresh ring is legitimate; Converge
// returns immediately with zero moves.
func TestDaemonSimConvergeAlreadyLegit(t *testing.T) {
	s := NewSim(SimConfig{N: 4, Seed: 1})
	moves, ok := s.Converge(1000)
	if !ok || moves != 0 {
		t.Fatalf("fresh ring: Converge = (%d, %v), want (0, true)", moves, ok)
	}
}

// TestDaemonSimFaultPerturb: the unified fault surface's only applicable
// fault on this substrate overwrites one machine's counter.
func TestDaemonSimFaultPerturb(t *testing.T) {
	s := NewSim(SimConfig{N: 4, Seed: 9})
	rng := rand.New(rand.NewSource(7))
	if !s.FaultPerturb(2, rng) {
		t.Fatal("FaultPerturb(2) = false, want true")
	}
	if s.FaultPerturb(-1, rng) || s.FaultPerturb(4, rng) {
		t.Fatal("FaultPerturb out of range should report false")
	}
	// Message faults are structurally inapplicable: no channels.
	if s.Channels() != nil {
		t.Fatal("token ring should enumerate no channels")
	}
}

// TestDaemonSimObs: with observability attached, moves and convergence are
// recorded in the registry and convergence tracker.
func TestDaemonSimObs(t *testing.T) {
	o := obs.New(obs.Options{TraceCapacity: 64})
	s := NewSim(SimConfig{N: 5, Seed: 3, Obs: o})
	s.CorruptAll()
	moves, ok := s.Converge(100 * 5 * 5 * 6)
	if !ok {
		t.Fatal("no convergence")
	}
	snap := o.Registry().Snapshot()
	if got := snap.Counters["tokenring_moves_total"]; got != int64(s.Moves()) {
		t.Fatalf("tokenring_moves_total = %d, want %d", got, s.Moves())
	}
	if moves != s.Moves() {
		t.Fatalf("Converge moves %d != Moves() %d", moves, s.Moves())
	}
	if o.Convergence().FirstProgressAfterFault() < 0 {
		t.Fatal("convergence tracker should record progress after the fault")
	}
}
