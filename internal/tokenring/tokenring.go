// Package tokenring implements Dijkstra's K-state self-stabilizing token
// ring — the canonical *whitebox* stabilization design from the tradition
// the paper cites ([6–9]) and positions graybox design against.
//
// Dijkstra's protocol needs complete implementation knowledge: its
// correctness argument is a global invariant over the concrete x-values of
// every machine. The repository includes it as the baseline of experiment
// E10: both approaches stabilize mutual exclusion, but the token ring's
// stabilization is welded to one implementation, while the graybox wrapper
// (internal/wrapper) stabilizes every implementation of Lspec.
//
// # Protocol
//
// n machines in a ring hold counters x[i] ∈ {0..K-1}. The bottom machine 0
// is privileged when x[0] = x[n-1] and moves by x[0] := x[0]+1 mod K; every
// other machine i is privileged when x[i] ≠ x[i-1] and moves by
// x[i] := x[i-1]. Holding a privilege is holding the token (the right to
// enter the critical section). For K ≥ n the protocol is self-stabilizing
// under a central daemon: from any state it converges to the legitimate
// states, where exactly one machine is privileged, and then the privilege
// circulates forever.
package tokenring

import "fmt"

// Rand is the random source the ring's daemon and corruption draw from.
// *math/rand.Rand satisfies it, as do the engine's derived seeded streams
// (engine.Core.Stream), which the engine-backed Sim in this package uses so
// that E10 runs are reproducible from a single Config.Seed.
type Rand interface {
	Intn(n int) int
}

// Ring is one K-state token ring instance. Construct with New.
type Ring struct {
	n, k int
	x    []int
}

// New returns a ring of n ≥ 2 machines with K = k states each, initialized
// to the all-zero (legitimate) state. It panics on invalid sizes
// (programming error, not runtime input).
func New(n, k int) *Ring {
	if n < 2 || k < 2 {
		panic("tokenring: need n ≥ 2 machines and K ≥ 2 states")
	}
	return &Ring{n: n, k: k, x: make([]int, n)}
}

// N returns the number of machines.
func (r *Ring) N() int { return r.n }

// K returns the counter modulus.
func (r *Ring) K() int { return r.k }

// X returns machine i's counter.
func (r *Ring) X(i int) int { return r.x[i] }

// SetX overwrites machine i's counter (state-corruption faults and improper
// initialization). Values are reduced mod K so the state stays type-correct.
func (r *Ring) SetX(i, v int) {
	v %= r.k
	if v < 0 {
		v += r.k
	}
	r.x[i] = v
}

// Privileged reports whether machine i currently holds a privilege (the
// token).
func (r *Ring) Privileged(i int) bool {
	if i == 0 {
		return r.x[0] == r.x[r.n-1]
	}
	return r.x[i] != r.x[i-1]
}

// PrivilegedSet returns the machines currently privileged, ascending. In a
// legitimate state it has exactly one element.
func (r *Ring) PrivilegedSet() []int {
	var out []int
	for i := 0; i < r.n; i++ {
		if r.Privileged(i) {
			out = append(out, i)
		}
	}
	return out
}

// Legitimate reports whether exactly one machine is privileged — the
// system's invariant, equivalent to mutual exclusion on the token.
func (r *Ring) Legitimate() bool {
	count := 0
	for i := 0; i < r.n; i++ {
		if r.Privileged(i) {
			count++
			if count > 1 {
				return false
			}
		}
	}
	return count == 1
}

// Step fires machine i's move if it is privileged, returning whether a move
// was made. Firing consumes the privilege (and passes the token onward).
func (r *Ring) Step(i int) bool {
	if !r.Privileged(i) {
		return false
	}
	if i == 0 {
		r.x[0] = (r.x[0] + 1) % r.k
	} else {
		r.x[i] = r.x[i-1]
	}
	return true
}

// Corrupt assigns arbitrary counters to every machine (transient state
// corruption of the whole ring), drawn from rng.
func (r *Ring) Corrupt(rng Rand) {
	for i := range r.x {
		r.x[i] = rng.Intn(r.k)
	}
}

// String renders the counters, marking privileged machines with '*'.
func (r *Ring) String() string {
	out := make([]byte, 0, 4*r.n)
	for i, v := range r.x {
		if i > 0 {
			out = append(out, ' ')
		}
		out = fmt.Appendf(out, "%d", v)
		if r.Privileged(i) {
			out = append(out, '*')
		}
	}
	return string(out)
}

// Converge runs a randomized central daemon (one privileged machine fires
// per step, chosen uniformly by rng) until the ring is legitimate or limit
// moves have been made. It returns the number of moves and whether the ring
// converged. Dijkstra's theorem: for K ≥ n, convergence always occurs.
func (r *Ring) Converge(rng Rand, limit int) (moves int, converged bool) {
	for moves = 0; moves < limit; moves++ {
		if r.Legitimate() {
			return moves, true
		}
		priv := r.PrivilegedSet()
		// At least one machine is always privileged (if all x equal,
		// machine 0 is); pick one at random — the central daemon.
		r.Step(priv[rng.Intn(len(priv))])
	}
	return moves, r.Legitimate()
}

// Circulate performs moves legitimate-state moves and reports whether the
// single privilege visited every machine (token circulation — the liveness
// property of the legitimate behaviour). The ring must be legitimate.
func (r *Ring) Circulate(moves int) (visited []bool, stayedLegit bool) {
	visited = make([]bool, r.n)
	for m := 0; m < moves; m++ {
		if !r.Legitimate() {
			return visited, false
		}
		p := r.PrivilegedSet()[0]
		visited[p] = true
		r.Step(p)
	}
	return visited, r.Legitimate()
}
