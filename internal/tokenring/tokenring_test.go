package tokenring

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadSizes(t *testing.T) {
	for _, c := range [][2]int{{1, 3}, {3, 1}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestInitialStateIsLegitimate(t *testing.T) {
	r := New(5, 5)
	if !r.Legitimate() {
		t.Fatal("all-zero state not legitimate")
	}
	// All equal ⇒ only machine 0 privileged.
	if got := r.PrivilegedSet(); len(got) != 1 || got[0] != 0 {
		t.Errorf("PrivilegedSet = %v", got)
	}
}

func TestAccessors(t *testing.T) {
	r := New(3, 4)
	if r.N() != 3 || r.K() != 4 {
		t.Error("N/K wrong")
	}
	r.SetX(1, 7) // 7 mod 4 = 3
	if r.X(1) != 3 {
		t.Errorf("X(1) = %d, want 3", r.X(1))
	}
	r.SetX(1, -1) // normalized into range
	if r.X(1) != 3 {
		t.Errorf("X(1) = %d, want 3 after negative set", r.X(1))
	}
}

func TestStepOnlyWhenPrivileged(t *testing.T) {
	r := New(3, 3)
	// Machine 1 not privileged (x[1] == x[0]).
	if r.Step(1) {
		t.Error("unprivileged machine moved")
	}
	if !r.Step(0) {
		t.Error("privileged bottom machine refused to move")
	}
	if r.X(0) != 1 {
		t.Errorf("x[0] = %d, want 1", r.X(0))
	}
	// Now machine 1 is privileged and copies.
	if !r.Step(1) || r.X(1) != 1 {
		t.Error("copy move failed")
	}
}

func TestTokenCirculation(t *testing.T) {
	r := New(4, 4)
	visited, legit := r.Circulate(16)
	if !legit {
		t.Fatal("legitimacy lost during circulation")
	}
	for i, v := range visited {
		if !v {
			t.Errorf("machine %d never held the token", i)
		}
	}
}

func TestStringMarksPrivilege(t *testing.T) {
	r := New(3, 3)
	s := r.String()
	if !strings.Contains(s, "*") {
		t.Errorf("String = %q, no privilege mark", s)
	}
}

// Dijkstra's theorem, property-tested: for K ≥ n, every corrupted state
// converges under the randomized central daemon, and legitimacy is closed
// afterwards.
func TestConvergenceFromArbitraryStates(t *testing.T) {
	f := func(seed int64, nRaw, extra uint8) bool {
		n := 2 + int(nRaw%8)
		k := n + int(extra%4) // K ≥ n
		rng := rand.New(rand.NewSource(seed))
		r := New(n, k)
		r.Corrupt(rng)
		moves, ok := r.Converge(rng, 10*n*n*k)
		if !ok {
			return false
		}
		_ = moves
		// Closure: 50 further daemon moves keep legitimacy.
		for i := 0; i < 50; i++ {
			if !r.Legitimate() {
				return false
			}
			p := r.PrivilegedSet()
			r.Step(p[rng.Intn(len(p))])
		}
		return r.Legitimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// At least one machine is privileged in EVERY state (no deadlock), another
// of Dijkstra's lemmas.
func TestNoDeadlockProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%8)
		rng := rand.New(rand.NewSource(seed))
		r := New(n, n+1)
		r.Corrupt(rng)
		return len(r.PrivilegedSet()) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConvergeStopsAtLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := New(6, 6)
	r.Corrupt(rng)
	moves, _ := r.Converge(rng, 1)
	if moves > 1 {
		t.Errorf("moves = %d beyond limit", moves)
	}
}

func TestCirculateDetectsIllegitimacy(t *testing.T) {
	r := New(4, 4)
	r.SetX(0, 1)
	r.SetX(2, 3) // multiple privileges
	if r.Legitimate() {
		t.Fatal("setup failed: state should be illegitimate")
	}
	if _, legit := r.Circulate(4); legit {
		t.Error("Circulate reported legitimacy from an illegitimate state")
	}
}

// Deterministic convergence measurement: same seed, same trajectory.
func TestConvergeDeterministic(t *testing.T) {
	run := func() int {
		rng := rand.New(rand.NewSource(99))
		r := New(7, 8)
		r.Corrupt(rng)
		moves, ok := r.Converge(rng, 100000)
		if !ok {
			t.Fatal("did not converge")
		}
		return moves
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %d vs %d", a, b)
	}
}
