package engine

import (
	"math/rand"
	"sort"
	"testing"
)

// drain pops every event and returns the (time, seq) sequence observed.
func drain(h *eventHeap) [][2]int64 {
	var out [][2]int64
	for {
		e, ok := h.pop()
		if !ok {
			return out
		}
		out = append(out, [2]int64{e.Time, int64(e.Seq)})
	}
}

// TestEventHeapProperty drives the heap with random interleavings of pushes
// and pops and checks every pop against a sort-based oracle: events come out
// in strict (time, seq) order, and exactly the pushed multiset comes out.
func TestEventHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var h eventHeap
		var oracle [][2]int64 // pending (time, seq), kept unsorted
		var popped [][2]int64
		seq := uint64(0)
		ops := 1 + rng.Intn(400)
		for op := 0; op < ops; op++ {
			if rng.Intn(3) > 0 || len(oracle) == 0 {
				// Push. Random times (with collisions likely); seq is
				// strictly increasing like the engine's allocator.
				e := Event{Time: int64(rng.Intn(50)), Seq: seq, Kind: 2}
				seq++
				h.push(e)
				oracle = append(oracle, [2]int64{e.Time, int64(e.Seq)})
			} else {
				e, ok := h.pop()
				if !ok {
					t.Fatalf("trial %d: pop failed with %d pending", trial, len(oracle))
				}
				got := [2]int64{e.Time, int64(e.Seq)}
				popped = append(popped, got)
				// The pop must return the minimum of everything pending —
				// the sort-based oracle's head.
				minIdx := 0
				for i, o := range oracle {
					m := oracle[minIdx]
					if o[0] < m[0] || (o[0] == m[0] && o[1] < m[1]) {
						minIdx = i
					}
				}
				if oracle[minIdx] != got {
					t.Fatalf("trial %d: popped %v, oracle min %v", trial, got, oracle[minIdx])
				}
				oracle = append(oracle[:minIdx], oracle[minIdx+1:]...)
			}
		}
		popped = append(popped, drain(&h)...)

		if len(popped) != int(seq) {
			t.Fatalf("trial %d: popped %d events, pushed %d", trial, len(popped), seq)
		}
		seen := make(map[[2]int64]bool, len(popped))
		for _, p := range popped {
			if seen[p] {
				t.Fatalf("trial %d: duplicate pop %v", trial, p)
			}
			seen[p] = true
		}
		for s := uint64(0); s < seq; s++ {
			found := false
			for _, p := range popped {
				if p[1] == int64(s) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: seq %d pushed but never popped", trial, s)
			}
		}
	}
}

// TestEventHeapOrderMatchesSortOracle pushes a random batch, then drains it
// fully and compares against sorting the batch by (time, seq).
func TestEventHeapOrderMatchesSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var h eventHeap
		n := rng.Intn(300)
		want := make([][2]int64, 0, n)
		for i := 0; i < n; i++ {
			e := Event{Time: int64(rng.Intn(20)), Seq: uint64(i)}
			h.push(e)
			want = append(want, [2]int64{e.Time, int64(e.Seq)})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i][0] != want[j][0] {
				return want[i][0] < want[j][0]
			}
			return want[i][1] < want[j][1]
		})
		got := drain(&h)
		if len(got) != len(want) {
			t.Fatalf("trial %d: drained %d, pushed %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d = %v, oracle %v", trial, i, got[i], want[i])
			}
		}
	}
}

// FuzzEventHeap feeds arbitrary byte strings as (op, time) programs: even
// bytes push an event with the next seq, odd bytes pop and assert the
// (time, seq) order invariant against all previously pending events.
func FuzzEventHeap(f *testing.F) {
	f.Add([]byte{0, 2, 4, 1, 1, 6, 3, 1})
	f.Add([]byte{1})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, program []byte) {
		var h eventHeap
		pending := map[[2]int64]bool{}
		seq := uint64(0)
		var lastPop *[2]int64
		for _, b := range program {
			if b%2 == 0 {
				e := Event{Time: int64(b / 2), Seq: seq}
				seq++
				h.push(e)
				pending[[2]int64{e.Time, int64(e.Seq)}] = true
				lastPop = nil // a push may introduce a smaller key
			} else {
				e, ok := h.pop()
				if !ok {
					if len(pending) != 0 {
						t.Fatalf("pop failed with %d pending", len(pending))
					}
					continue
				}
				key := [2]int64{e.Time, int64(e.Seq)}
				if !pending[key] {
					t.Fatalf("popped %v which was not pending", key)
				}
				delete(pending, key)
				// Must be the minimum of everything still pending.
				for p := range pending {
					if p[0] < key[0] || (p[0] == key[0] && p[1] < key[1]) {
						t.Fatalf("popped %v before smaller pending %v", key, p)
					}
				}
				if lastPop != nil && (key[0] < lastPop[0] ||
					(key[0] == lastPop[0] && key[1] < lastPop[1])) {
					t.Fatalf("pop order regressed: %v after %v", key, *lastPop)
				}
				lastPop = &key
			}
		}
		if h.len() != len(pending) {
			t.Fatalf("heap len %d, pending %d", h.len(), len(pending))
		}
	})
}
