// Package engine is the protocol-agnostic deterministic discrete-event
// core shared by every simulation substrate in the repository: the TME
// simulator (internal/sim), the token-circulation ring (internal/ring),
// and the Dijkstra token-ring daemon (internal/tokenring).
//
// The engine owns exactly the machinery the paper's experiments need to be
// reproducible and comparable across protocols:
//
//   - the virtual clock and the typed-event heap ordered by (time, seq),
//     with plain event records dispatched by the substrate's handler and a
//     closure escape hatch (At) for fault injectors and tests;
//   - the master seeded RNG plus derived per-purpose streams (Stream), so
//     every run is a pure function of one seed;
//   - the delay-sampled FIFO link mesh (Mesh) over internal/channel;
//   - the substrate-agnostic fault surface (Surface) the injector in
//     internal/fault drives, so one fault mix reaches every protocol.
//
// The engine knows nothing about protocols, wrappers, or specifications —
// gblint's layering table enforces that it never imports them. Substrates
// embed a Core, register their event kinds (small uint8 codes ≥ 1; kind 0
// is reserved for the closure escape hatch), and interpret the records in
// a handler switch, which keeps the steady-state scheduling path free of
// per-event allocations exactly as in the pre-extraction simulator.
package engine

import (
	"hash/fnv"
	"math/rand"
)

// KindFunc is the reserved event kind of the At escape hatch: the event
// carries a closure instead of typed operands. Substrate handlers must
// route it (and any unknown kind) to Event.Call.
const KindFunc uint8 = 0

// Event is one scheduled occurrence. Seq breaks time ties deterministically
// in schedule order. Typed events carry their operands in A and B; only
// KindFunc events allocate (the closure), which keeps the steady-state
// scheduling path heap-free.
type Event struct {
	Time int64
	Seq  uint64
	Kind uint8
	A, B int32 // substrate-defined operands (node id, endpoint, ...)
	act  func()
}

// Call runs the closure of a KindFunc event. Handlers call it from their
// default switch arm; the closure may mutate anything, so substrates with
// incremental snapshots must conservatively invalidate them afterwards.
func (e *Event) Call() { e.act() }

// Core is the deterministic event loop: virtual clock, event heap, and the
// seeded random source. Construct with New, install the substrate's
// dispatch with SetHandler, then Schedule/At and Run.
type Core struct {
	seed    int64
	rng     *rand.Rand
	now     int64
	seq     uint64
	queue   eventHeap
	stopped bool

	// handler interprets every popped event (including KindFunc ones, so
	// the substrate can bracket Call with its own invalidation).
	handler func(*Event)
	// afterEvent, when non-nil, runs after each handled event — the hook
	// for per-event metrics and observers.
	afterEvent func()

	// cur is the event being dispatched. Run hands the handler a pointer to
	// this field rather than to a loop-local: the indirect handler call
	// defeats escape analysis, so a local would be heap-allocated per event.
	// This makes Run non-reentrant (handlers must not call Run).
	cur Event

	streams map[string]*rand.Rand
}

// New returns a core whose every random choice derives from seed.
func New(seed int64) *Core {
	return &Core{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// SetHandler installs the substrate's event dispatch. Events are delivered
// by pointer; the handler must not retain it past the call.
func (c *Core) SetHandler(h func(*Event)) { c.handler = h }

// SetAfterEvent installs a hook run after every handled event (metrics,
// observers). Pass nil to remove.
func (c *Core) SetAfterEvent(fn func()) { c.afterEvent = fn }

// Now returns the current virtual time.
func (c *Core) Now() int64 { return c.now }

// Seed returns the seed the core was built from.
func (c *Core) Seed() int64 { return c.seed }

// RNG returns the master seeded random source. Substrates draw delays and
// workload choices from it so that a run is a function of one seed.
func (c *Core) RNG() *rand.Rand { return c.rng }

// Stream returns the named derived random stream, deterministically seeded
// from the core seed and the name (FNV-1a). Independent concerns — a
// daemon's scheduling choices, a corruption generator — draw from separate
// streams so adding draws to one cannot perturb the other.
func (c *Core) Stream(name string) *rand.Rand {
	if r, ok := c.streams[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(c.seed ^ int64(h.Sum64())))
	if c.streams == nil {
		c.streams = make(map[string]*rand.Rand)
	}
	c.streams[name] = r
	return r
}

// Stop ends the run after the current event. The flag persists: subsequent
// Run calls return immediately.
func (c *Core) Stop() { c.stopped = true }

// Stopped reports whether Stop was called.
func (c *Core) Stopped() bool { return c.stopped }

// Pending returns the number of scheduled events.
func (c *Core) Pending() int { return c.queue.len() }

// Schedule pushes a typed event after the given delay (relative to now).
//
//gblint:hotpath
func (c *Core) Schedule(after int64, kind uint8, a, b int32) {
	c.seq++
	c.queue.push(Event{Time: c.now + after, Seq: c.seq, Kind: kind, A: a, B: b})
}

// At schedules fn at absolute virtual time t (clamped to now for past
// times). Fault injectors and tests use it to place occurrences precisely.
// This is the rare-path escape hatch: it allocates a closure, so recurring
// occurrences use typed events instead.
func (c *Core) At(t int64, fn func()) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	c.queue.push(Event{Time: t, Seq: c.seq, Kind: KindFunc, act: fn})
}

// Run processes events until the queue drains, time exceeds horizon, or
// Stop is called. It returns the number of events processed in this call.
// The clock ends at horizon even when the queue drains early.
//
//gblint:hotpath
func (c *Core) Run(horizon int64) int64 {
	var n int64
	for !c.stopped {
		ev, ok := c.queue.peek()
		if !ok || ev.Time > horizon {
			break
		}
		c.queue.pop()
		c.now = ev.Time
		c.cur = ev
		if c.handler != nil {
			c.handler(&c.cur)
		} else if c.cur.Kind == KindFunc {
			c.cur.Call()
		}
		c.cur.act = nil // release a KindFunc closure for GC
		n++
		if c.afterEvent != nil {
			c.afterEvent()
		}
	}
	if c.now < horizon {
		c.now = horizon
	}
	return n
}
