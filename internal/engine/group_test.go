package engine

import "testing"

// TestGroupBarrierMatchesSequential pins the group's determinism contract:
// running S independent cores in parallel windows produces exactly the
// per-shard event sequences a sequential run produces, because no state is
// shared inside a window.
func TestGroupBarrierMatchesSequential(t *testing.T) {
	const shards = 4
	const horizon = 1000
	const window = 50

	build := func() ([]*Core, [][]int64) {
		cores := make([]*Core, shards)
		traces := make([][]int64, shards)
		for s := 0; s < shards; s++ {
			s := s
			c := New(int64(s + 1))
			c.SetHandler(func(ev *Event) {
				if ev.Kind == KindFunc {
					ev.Call()
					return
				}
				traces[s] = append(traces[s], c.Now()*1000+int64(ev.A))
				// Reschedule with a seeded delay so each shard has its own
				// ongoing event stream.
				c.Schedule(1+int64(c.RNG().Intn(7)), ev.Kind, ev.A+1, 0)
			})
			c.Schedule(int64(s), 1, 0, 0)
			cores[s] = c
		}
		return cores, traces
	}

	parCores, parTraces := build()
	g := NewGroup(parCores)
	for barrier := int64(window); barrier <= horizon; barrier += window {
		g.RunBarrier(barrier)
		for _, c := range parCores {
			if c.Now() != barrier {
				t.Fatalf("core clock = %d at barrier %d", c.Now(), barrier)
			}
		}
	}

	seqCores, seqTraces := build()
	for _, c := range seqCores {
		c.Run(horizon)
	}

	for s := 0; s < shards; s++ {
		if len(parTraces[s]) != len(seqTraces[s]) {
			t.Fatalf("shard %d: %d events parallel vs %d sequential", s, len(parTraces[s]), len(seqTraces[s]))
		}
		for i := range parTraces[s] {
			if parTraces[s][i] != seqTraces[s][i] {
				t.Fatalf("shard %d event %d: %d vs %d", s, i, parTraces[s][i], seqTraces[s][i])
			}
		}
	}
}

func TestGroupLowWater(t *testing.T) {
	a, b := New(1), New(2)
	g := NewGroup([]*Core{a, b})
	if _, ok := g.LowWater(); ok {
		t.Fatal("empty group reports a low-water mark")
	}
	a.Schedule(30, 1, 0, 0)
	b.Schedule(10, 1, 0, 0)
	if low, ok := g.LowWater(); !ok || low != 10 {
		t.Fatalf("low water = %d,%v, want 10,true", low, ok)
	}
	if tm, ok := a.NextEventTime(); !ok || tm != 30 {
		t.Fatalf("NextEventTime = %d,%v, want 30,true", tm, ok)
	}
}

func TestPoolRecycles(t *testing.T) {
	type rec struct{ v int }
	var p Pool[rec]
	x := p.Get()
	x.v = 7
	p.Put(x)
	y := p.Get()
	if y != x {
		t.Fatal("pool did not recycle the freed record")
	}
	if z := p.Get(); z == x {
		t.Fatal("pool handed out the same record twice")
	}
}
