package engine

import "github.com/graybox-stabilization/graybox/internal/channel"

// Mesh is the delay-sampled FIFO link mesh shared by message-passing
// substrates: an n×n channel.Net plus the delivery-scheduling convention
// that every enqueued message gets exactly one delivery opportunity, a
// typed event of the substrate's deliverKind carrying the endpoint in
// (A, B). Delays are drawn from the core's master RNG, so transmission
// timing is part of the run's single seeded stream.
type Mesh[M any] struct {
	core        *Core
	net         *channel.Net[M]
	min, max    int64
	deliverKind uint8
	eps         []channel.Endpoint // cached deterministic endpoint order
}

// NewMesh builds an n-process mesh whose per-message delays are uniform in
// [min, max] virtual ticks (max is raised to min if smaller). Deliveries
// are scheduled as typed events of deliverKind; the substrate's handler
// routes them to Recv.
func NewMesh[M any](core *Core, n int, min, max int64, deliverKind uint8) *Mesh[M] {
	if max < min {
		max = min
	}
	return &Mesh[M]{core: core, net: channel.NewNet[M](n), min: min, max: max, deliverKind: deliverKind}
}

// Net exposes the underlying channel mesh for direct inspection and fault
// injection.
func (m *Mesh[M]) Net() *channel.Net[M] { return m.net }

// Delay samples one transmission delay from the core's RNG.
//
//gblint:hotpath
func (m *Mesh[M]) Delay() int64 {
	return m.min + m.core.rng.Int63n(m.max-m.min+1)
}

// Send enqueues msg on src→dst and schedules its delivery opportunity
// after a sampled delay. It reports whether the channel accepted the
// message (false for out-of-range or self endpoints).
//
//gblint:hotpath
func (m *Mesh[M]) Send(src, dst int, msg M) bool {
	if !m.net.Send(src, dst, msg) {
		return false
	}
	m.ScheduleDelivery(channel.Endpoint{Src: src, Dst: dst}, m.Delay())
	return true
}

// ScheduleDelivery schedules one head-of-channel delivery opportunity on
// ep after the given delay. Fault injectors call this when they duplicate
// a message, so the extra copy has its own opportunity.
//
//gblint:hotpath
func (m *Mesh[M]) ScheduleDelivery(ep channel.Endpoint, delay int64) {
	m.core.Schedule(delay, m.deliverKind, int32(ep.Src), int32(ep.Dst))
}

// Recv pops the head of ep's channel. ok is false when the channel is
// empty — a delivery opportunity whose message was lost to a fault — or
// when ep is not a valid channel.
//
//gblint:hotpath
func (m *Mesh[M]) Recv(ep channel.Endpoint) (msg M, ok bool) {
	q := m.net.Chan(ep.Src, ep.Dst)
	if q == nil {
		return msg, false
	}
	return q.Recv()
}

// Endpoints returns the deterministic endpoint order, cached across calls.
func (m *Mesh[M]) Endpoints() []channel.Endpoint {
	if m.eps == nil {
		m.eps = m.net.Endpoints()
	}
	return m.eps
}
