package engine

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/channel"
	"github.com/graybox-stabilization/graybox/internal/obs"
)

// Surface is the substrate-agnostic fault surface: the contract between a
// simulation substrate (TME sim, ring sim, token-ring daemon) and the
// fault injector in internal/fault. It exposes exactly what the paper's
// fault model needs — enumerate the communication channels, damage
// messages in flight, perturb process state — without revealing the
// substrate's message or state types, so one fault Mix drives every
// protocol.
//
// Message-type-specific corruption (e.g. scrambling a TME timestamp field
// by field) stays with the substrate: injectors that know a richer
// interface may type-assert for it and fall back to these methods.
//
// The Fault* methods report whether the fault was applied; substrates
// without the corresponding machinery (the token ring has no channels)
// return false, and injectors count only applied faults.
type Surface interface {
	// Now returns the substrate's current virtual time.
	Now() int64
	// N returns the number of processes.
	N() int
	// Obs returns the run's observability bundle (nil when disabled).
	Obs() *obs.Obs
	// Core returns the engine core, for At-scheduling fault bursts.
	Core() *Core

	// Channels enumerates the communication channels in deterministic
	// order (nil for substrates without message passing).
	Channels() []channel.Endpoint
	// QueueLen returns the number of messages in flight on ep.
	QueueLen(ep channel.Endpoint) int

	// FaultDrop removes the i-th in-flight message on ep.
	FaultDrop(ep channel.Endpoint, i int) bool
	// FaultDuplicate duplicates the i-th in-flight message on ep and
	// schedules a delivery opportunity for the copy after redeliver ticks.
	FaultDuplicate(ep channel.Endpoint, i int, redeliver int64) bool
	// FaultCorrupt mutates the i-th in-flight message on ep, drawing the
	// damage from rng (the injector's stream, so corruption is part of the
	// fault seed, not the run seed).
	FaultCorrupt(ep channel.Endpoint, i int, rng *rand.Rand) bool
	// FaultPerturb corrupts the local state of process id, drawing the
	// damage from rng.
	FaultPerturb(id int, rng *rand.Rand) bool
	// FaultFlush drops every in-flight message on ep.
	FaultFlush(ep channel.Endpoint) bool
}
