// Shard groups: S independent cores advancing in parallel between
// deterministic merge barriers.
//
// A sharded substrate gives every shard its own Core — its own virtual
// clock, event heap, and seeded streams — so the shards are independent
// pure functions of their seeds. Between barriers the cores run
// concurrently (one goroutine each); at a barrier every core has reached
// the same virtual time, and the coordinator may inspect all shards,
// exchange cross-shard work, and schedule the next window. Determinism is
// preserved because nothing is shared during a window: each core touches
// only its own state, and the coordinator's merge step runs serially in
// canonical shard order.
package engine

import "sync"

// Group coordinates a set of shard cores advancing in lockstep windows.
// The zero value is unusable; construct with NewGroup.
type Group struct {
	cores []*Core
	wg    sync.WaitGroup
}

// NewGroup returns a group over the given shard cores. The slice is
// retained, not copied; shard s is cores[s].
func NewGroup(cores []*Core) *Group { return &Group{cores: cores} }

// Cores returns the underlying shard cores (shard s at index s).
func (g *Group) Cores() []*Core { return g.cores }

// LowWater returns the earliest pending event time across all shards — the
// virtual-clock low-water-mark — and false when every queue is empty. The
// coordinator uses it to skip barrier windows no shard has work in.
func (g *Group) LowWater() (int64, bool) {
	var low int64
	ok := false
	for _, c := range g.cores {
		if t, has := c.NextEventTime(); has && (!ok || t < low) {
			low, ok = t, true
		}
	}
	return low, ok
}

// RunBarrier advances every core to the given horizon in parallel and
// blocks until all have arrived — the merge barrier. It returns the total
// events processed across shards. Shard cores must not share mutable state
// with each other or the caller during the window (this is the group's
// whole contract); the sanctioned goroutine spawn here is the shard-core
// analogue of the harness's ParMap.
func (g *Group) RunBarrier(horizon int64) int64 {
	if len(g.cores) == 1 {
		return g.cores[0].Run(horizon) // no goroutine churn for S=1
	}
	counts := make([]int64, len(g.cores))
	g.wg.Add(len(g.cores))
	for i, c := range g.cores {
		go func(i int, c *Core) {
			defer g.wg.Done()
			counts[i] = c.Run(horizon)
		}(i, c)
	}
	g.wg.Wait()
	var n int64
	for _, v := range counts {
		n += v
	}
	return n
}

// NextEventTime returns the time of the earliest scheduled event and false
// when the queue is empty. It does not pop or advance the clock.
func (c *Core) NextEventTime() (int64, bool) {
	ev, ok := c.queue.peek()
	if !ok {
		return 0, false
	}
	return ev.Time, true
}

// Pool is a free list for the coordinator-side records that shuttle work
// across barriers (parked client arrivals, harvest buffers). At 10k+
// client loops the coordinator would otherwise allocate one record per
// loop; recycling through the pool keeps the steady state allocation-free.
// Not goroutine-safe — the coordinator's merge step is serial by contract.
type Pool[T any] struct {
	free []*T
}

// Get returns a recycled record, or a new zero-valued one when the free
// list is empty.
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return new(T)
}

// Put recycles x. The caller must zero any fields it cares about; the pool
// returns records as-is.
func (p *Pool[T]) Put(x *T) {
	if x != nil {
		p.free = append(p.free, x)
	}
}
