package engine

// eventHeap is a binary min-heap ordered by (time, seq).
type eventHeap struct {
	items []Event
}

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].Time != h.items[j].Time {
		return h.items[i].Time < h.items[j].Time
	}
	return h.items[i].Seq < h.items[j].Seq
}

//gblint:hotpath
func (h *eventHeap) push(e Event) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) peek() (Event, bool) {
	if len(h.items) == 0 {
		return Event{}, false
	}
	return h.items[0], true
}

//gblint:hotpath
func (h *eventHeap) pop() (Event, bool) {
	if len(h.items) == 0 {
		return Event{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = Event{} // release the closure, if any, to the GC
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top, true
}

func (h *eventHeap) len() int { return len(h.items) }
