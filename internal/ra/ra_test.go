package ra

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// pump delivers all outstanding messages synchronously (FIFO per queue
// ordering of the slice) until quiescence, letting each node step after
// deliveries. It returns the number of CS entries observed.
func pump(t *testing.T, nodes []*Node, pending []tme.Message) (entries int, rest []tme.Message) {
	t.Helper()
	for len(pending) > 0 {
		m := pending[0]
		pending = pending[1:]
		if m.To < 0 || m.To >= len(nodes) {
			t.Fatalf("message to unknown node: %v", m)
		}
		out := nodes[m.To].Deliver(m)
		pending = append(pending, out...)
		for _, nd := range nodes {
			if ok, msgs := nd.Step(); ok {
				entries++
				pending = append(pending, msgs...)
			}
		}
	}
	return entries, pending
}

func newCluster(n int) []*Node {
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = New(i, n)
	}
	return nodes
}

func TestInitState(t *testing.T) {
	nd := New(1, 3)
	if nd.ID() != 1 || nd.N() != 3 {
		t.Error("ID/N wrong")
	}
	if nd.Phase() != tme.Thinking {
		t.Errorf("initial phase = %v", nd.Phase())
	}
	// REQ_j = 0: the empty-history timestamp at j (clock 0, own pid).
	if got := nd.REQ(); got.Clock != 0 || got.PID != 1 {
		t.Errorf("initial REQ = %v, want 0.1", got)
	}
	for k := 0; k < 3; k++ {
		ts, rcvd := nd.LocalREQ(k)
		if !ts.IsZero() || rcvd {
			t.Errorf("LocalREQ(%d) = (%v,%v)", k, ts, rcvd)
		}
	}
}

func TestLocalREQBounds(t *testing.T) {
	nd := New(0, 2)
	if ts, r := nd.LocalREQ(-1); !ts.IsZero() || r {
		t.Error("LocalREQ(-1) not zero")
	}
	if ts, r := nd.LocalREQ(0); !ts.IsZero() || r {
		t.Error("LocalREQ(self) not zero")
	}
	if ts, r := nd.LocalREQ(9); !ts.IsZero() || r {
		t.Error("LocalREQ(9) not zero")
	}
}

func TestRequestCS(t *testing.T) {
	nd := New(0, 3)
	msgs := nd.RequestCS()
	if nd.Phase() != tme.Hungry {
		t.Fatalf("phase = %v, want hungry", nd.Phase())
	}
	if nd.REQ().Clock == 0 {
		t.Fatal("REQ clock still zero after request")
	}
	if len(msgs) != 2 {
		t.Fatalf("sent %d messages, want 2", len(msgs))
	}
	for _, m := range msgs {
		if m.Kind != tme.Request || m.From != 0 || m.TS != nd.REQ() {
			t.Errorf("bad request message %v", m)
		}
	}
	// Idempotent outside thinking.
	if again := nd.RequestCS(); again != nil {
		t.Error("RequestCS while hungry sent messages")
	}
}

func TestReleaseCSOnlyWhenEating(t *testing.T) {
	nd := New(0, 2)
	if msgs := nd.ReleaseCS(); msgs != nil {
		t.Error("ReleaseCS while thinking sent messages")
	}
}

func TestSoloThreeProcessRound(t *testing.T) {
	nodes := newCluster(3)
	pending := nodes[0].RequestCS()
	entries, _ := pump(t, nodes, pending)
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	if nodes[0].Phase() != tme.Eating {
		t.Fatalf("node 0 phase = %v, want eating", nodes[0].Phase())
	}
	rel := nodes[0].ReleaseCS()
	if nodes[0].Phase() != tme.Thinking {
		t.Fatalf("after release phase = %v", nodes[0].Phase())
	}
	// No one was deferred, so no replies go out.
	if len(rel) != 0 {
		t.Errorf("release sent %d messages, want 0", len(rel))
	}
}

func TestContendingRequestsRespectTimestampOrder(t *testing.T) {
	nodes := newCluster(2)
	m0 := nodes[0].RequestCS()
	m1 := nodes[1].RequestCS()
	// Both requested at clock 1; pid 0 breaks the tie and must win.
	pending := append(append([]tme.Message{}, m0...), m1...)
	entries, _ := pump(t, nodes, pending)
	if entries != 1 {
		t.Fatalf("entries = %d, want exactly 1 (mutual exclusion)", entries)
	}
	if nodes[0].Phase() != tme.Eating {
		t.Fatalf("node 0 should win the tie, phases: %v %v", nodes[0].Phase(), nodes[1].Phase())
	}
	if nodes[1].Phase() != tme.Hungry {
		t.Fatalf("node 1 should still be hungry: %v", nodes[1].Phase())
	}
	// Node 1 must be in node 0's deferred set; releasing serves it.
	rel := nodes[0].ReleaseCS()
	if len(rel) != 1 || rel[0].Kind != tme.Reply || rel[0].To != 1 {
		t.Fatalf("release messages = %v, want one reply to 1", rel)
	}
	entries, _ = pump(t, nodes, rel)
	if entries != 1 || nodes[1].Phase() != tme.Eating {
		t.Fatalf("node 1 did not enter after deferred reply: %v", nodes[1].Phase())
	}
}

func TestFCFSAcrossManyRounds(t *testing.T) {
	const n = 4
	nodes := newCluster(n)
	// Round-robin: each node requests, enters, releases — FCFS by
	// timestamp means each round completes with exactly one entry.
	for round := 0; round < 8; round++ {
		j := round % n
		pending := nodes[j].RequestCS()
		entries, _ := pump(t, nodes, pending)
		if entries != 1 {
			t.Fatalf("round %d: entries = %d", round, entries)
		}
		if nodes[j].Phase() != tme.Eating {
			t.Fatalf("round %d: requester not eating", round)
		}
		rel := nodes[j].ReleaseCS()
		if entries, _ := pump(t, nodes, rel); entries != 0 {
			t.Fatalf("round %d: release caused an extra entry", round)
		}
	}
}

func TestThinkingProcessRepliesImmediately(t *testing.T) {
	nodes := newCluster(2)
	req := nodes[0].RequestCS()
	out := nodes[1].Deliver(req[0])
	if len(out) != 1 || out[0].Kind != tme.Reply || out[0].To != 0 {
		t.Fatalf("thinking node reply = %v", out)
	}
	// The reply must be later than the request so node 0's guard opens.
	if !req[0].TS.Less(out[0].TS) {
		t.Errorf("reply ts %v not later than request ts %v", out[0].TS, req[0].TS)
	}
	// received flag is discharged after the immediate reply.
	if _, rcvd := nodes[1].LocalREQ(0); rcvd {
		t.Error("received flag still set after immediate reply")
	}
}

func TestDeferredRequestKeepsReceivedFlag(t *testing.T) {
	nodes := newCluster(2)
	m0 := nodes[0].RequestCS()
	nodes[1].RequestCS() // node 1 requests later (after observing nothing)
	// Deliver node 0's earlier request to node 1: 1 must reply (0 earlier).
	out := nodes[1].Deliver(m0[0])
	if len(out) != 1 || out[0].Kind != tme.Reply {
		t.Fatalf("expected immediate reply to earlier request, got %v", out)
	}
	// Now deliver node 1's request to node 0: 0's request is earlier, so
	// 0 defers and the received flag stays set.
	m1 := tme.Message{Kind: tme.Request, TS: nodes[1].REQ(), From: 1, To: 0}
	if out := nodes[0].Deliver(m1); len(out) != 0 {
		t.Fatalf("node 0 should defer, sent %v", out)
	}
	if _, rcvd := nodes[0].LocalREQ(1); !rcvd {
		t.Error("deferred request lost its received flag")
	}
}

func TestDeliverIgnoresGarbage(t *testing.T) {
	nd := New(0, 2)
	for _, m := range []tme.Message{
		{Kind: tme.Request, From: -1, To: 0},
		{Kind: tme.Request, From: 9, To: 0},
		{Kind: tme.Request, From: 0, To: 0}, // self
		{Kind: tme.Kind(99), From: 1, To: 0},
		{Kind: tme.Release, From: 1, To: 0}, // RA has no release messages
	} {
		if out := nd.Deliver(m); out != nil {
			t.Errorf("Deliver(%v) = %v, want nil", m, out)
		}
	}
	if nd.Phase() != tme.Thinking {
		t.Error("garbage changed phase")
	}
}

func TestStepOnlyWhenHungry(t *testing.T) {
	nd := New(0, 1)
	if ok, _ := nd.Step(); ok {
		t.Error("thinking node entered CS")
	}
	// Single-process system: request then immediately enter.
	nd.RequestCS()
	if ok, _ := nd.Step(); !ok {
		t.Error("hungry single node did not enter")
	}
	if ok, _ := nd.Step(); ok {
		t.Error("eating node entered again")
	}
}

func TestCorrupt(t *testing.T) {
	nd := New(0, 3)
	ts := ltime.Timestamp{Clock: 7, PID: 0}
	clk := uint64(50)
	nd.Corrupt(tme.Corruption{
		Phase:         tme.Eating,
		REQ:           &ts,
		LocalREQ:      map[int]ltime.Timestamp{1: {Clock: 3, PID: 1}, 0: {Clock: 1, PID: 9}},
		ForgeReceived: []int{2},
		Clock:         &clk,
	})
	if nd.Phase() != tme.Eating {
		t.Error("phase not corrupted")
	}
	if nd.REQ() != ts {
		t.Error("REQ not corrupted")
	}
	if got, _ := nd.LocalREQ(1); got != (ltime.Timestamp{Clock: 3, PID: 1}) {
		t.Error("local not corrupted")
	}
	if _, rcvd := nd.LocalREQ(2); !rcvd {
		t.Error("received not forged")
	}
	// Self index must be protected even against corruption plumbing.
	if got, _ := nd.LocalREQ(0); !got.IsZero() {
		t.Error("self local corrupted")
	}
	nd.Corrupt(tme.Corruption{DropReceived: []int{2}})
	if _, rcvd := nd.LocalREQ(2); rcvd {
		t.Error("received not dropped")
	}
	// Scramble is deterministic in the seed.
	a, b := New(0, 4), New(0, 4)
	a.Corrupt(tme.Corruption{ScrambleInternal: true, Seed: 42})
	b.Corrupt(tme.Corruption{ScrambleInternal: true, Seed: 42})
	for k := 1; k < 4; k++ {
		ta, ra := a.LocalREQ(k)
		tb, rb := b.LocalREQ(k)
		if ta != tb || ra != rb {
			t.Error("scramble not deterministic")
		}
	}
}

// The paper's §4 deadlock scenario, in miniature: both requests dropped in
// flight leaves two hungry processes that never enter — RA alone cannot
// recover (the wrapper test in internal/wrapper shows W fixes it).
func TestDroppedRequestsDeadlockWithoutWrapper(t *testing.T) {
	nodes := newCluster(2)
	nodes[0].RequestCS() // messages dropped
	nodes[1].RequestCS() // messages dropped
	entries, _ := pump(t, nodes, nil)
	if entries != 0 {
		t.Fatalf("entries = %d, want 0 (deadlock)", entries)
	}
	if nodes[0].Phase() != tme.Hungry || nodes[1].Phase() != tme.Hungry {
		t.Error("processes should be stuck hungry")
	}
}
