// Package ra implements the Ricart–Agrawala timestamp-based mutual exclusion
// program RA_ME exactly as given in DSN 2001 §5.1, using the Lspec variables
// REQ_j, j.REQ_k, received(j.REQ_k), and the client phase, plus a logical
// clock lc.j. The deferred set is the paper's "always section": it is
// computed from those variables rather than stored, so transient state
// corruption cannot make it inconsistent with them.
//
// RA_ME everywhere implements Lspec (Theorem 9), so the graybox wrapper of
// internal/wrapper stabilizes it without knowing anything in this package.
package ra

import (
	"math/rand"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Node is one Ricart–Agrawala process. Construct with New; drive it from a
// single goroutine (the simulator or runtime serializes all calls).
type Node struct {
	id, n    int
	clock    *ltime.Clock
	phase    tme.Phase
	req      ltime.Timestamp
	local    []ltime.Timestamp // j.REQ_k
	received []bool            // received(j.REQ_k): k's request pending a reply
}

var (
	_ tme.Node        = (*Node)(nil)
	_ tme.Corruptible = (*Node)(nil)
	_ tme.ClockHolder = (*Node)(nil)
)

// New returns process id of an n-process RA_ME system in the Init state of
// Lspec: thinking, REQ_j = 0 (the timestamp of the empty event history at
// j, i.e. clock 0 at j), all local copies 0, nothing received.
func New(id, n int) *Node {
	clock := ltime.NewClock(id)
	return &Node{
		id:       id,
		n:        n,
		clock:    clock,
		phase:    tme.Thinking,
		req:      clock.Now(), // CS Release Spec: t.j ⇒ REQ_j = ts.j
		local:    make([]ltime.Timestamp, n),
		received: make([]bool, n),
	}
}

// ID returns the process id j.
func (nd *Node) ID() int { return nd.id }

// N returns the number of processes.
func (nd *Node) N() int { return nd.n }

// Phase returns the current client phase.
func (nd *Node) Phase() tme.Phase { return nd.phase }

// REQ returns REQ_j.
func (nd *Node) REQ() ltime.Timestamp { return nd.req }

// ClockNow returns ts.j, the timestamp of the most current event (for spec
// monitors, not for wrappers).
func (nd *Node) ClockNow() ltime.Timestamp { return nd.clock.Now() }

// LocalREQ returns j.REQ_k and the received(j.REQ_k) flag.
func (nd *Node) LocalREQ(k int) (ltime.Timestamp, bool) {
	if k < 0 || k >= nd.n || k == nd.id {
		return ltime.Zero, false
	}
	return nd.local[k], nd.received[k]
}

// deferredSet returns the paper's always-section set
// {k : k≠j ∧ received(j.REQ_k) ∧ REQ_j lt j.REQ_k}, in ascending order.
func (nd *Node) deferredSet() []int {
	var out []int
	for k := 0; k < nd.n; k++ {
		if k != nd.id && nd.received[k] && nd.req.Less(nd.local[k]) {
			out = append(out, k)
		}
	}
	return out
}

// RequestCS performs the "Request CS" action: when thinking, take a fresh
// timestamp as REQ_j, become hungry, and send a request to every other
// process. It is a no-op in any other phase.
func (nd *Node) RequestCS() []tme.Message {
	if nd.phase != tme.Thinking {
		return nil
	}
	nd.req = nd.clock.Tick()
	nd.phase = tme.Hungry
	msgs := make([]tme.Message, 0, nd.n-1)
	for k := 0; k < nd.n; k++ {
		if k != nd.id {
			msgs = append(msgs, tme.Message{Kind: tme.Request, TS: nd.req, From: nd.id, To: k})
		}
	}
	return msgs
}

// ReleaseCS performs the "Release CS" action: when eating, send the deferred
// replies, clear the received flags, reset REQ_j to the most current event's
// timestamp, and return to thinking. It is a no-op in any other phase.
//
//gblint:hotpath
func (nd *Node) ReleaseCS() []tme.Message {
	if nd.phase != tme.Eating {
		return nil
	}
	ts := nd.clock.Tick() // the release event
	var msgs []tme.Message
	// Inline the deferred-set membership test (same predicate as
	// deferredSet) so releasing allocates at most once, for the replies.
	for k := 0; k < nd.n; k++ {
		if k != nd.id && nd.received[k] && nd.req.Less(nd.local[k]) {
			if msgs == nil {
				msgs = make([]tme.Message, 0, nd.n-1)
			}
			msgs = append(msgs, tme.Message{Kind: tme.Reply, TS: ts, From: nd.id, To: k})
		}
	}
	for k := range nd.received {
		nd.received[k] = false
	}
	nd.req = nd.clock.Now() // CS Release Spec: t.j ⇒ REQ_j = ts.j
	nd.phase = tme.Thinking
	return msgs
}

// Deliver handles one incoming message and returns the responses to send.
// Unknown kinds and out-of-range senders are dropped (they can only arise
// from message-corruption faults).
//
//gblint:hotpath
func (nd *Node) Deliver(m tme.Message) []tme.Message {
	k := m.From
	if k < 0 || k >= nd.n || k == nd.id {
		return nil
	}
	switch m.Kind {
	case tme.Request:
		return nd.receiveRequest(k, m.TS)
	case tme.Reply:
		nd.receiveReply(k, m.TS)
		return nil
	case tme.Release:
		// Ricart–Agrawala has no release messages: permission travels in
		// deferred replies. One on the wire is a corruption artifact.
		return nil
	default:
		return nil // forged kind (message corruption): drop
	}
}

// receiveRequest is the paper's receive-request action.
func (nd *Node) receiveRequest(k int, ts ltime.Timestamp) []tme.Message {
	nd.clock.Observe(ts)
	nd.received[k] = true
	nd.local[k] = ts
	if nd.phase == tme.Thinking {
		// CS Release Spec: while thinking, REQ_j tracks the most
		// current event.
		nd.req = nd.clock.Now()
	}
	if nd.local[k].Less(nd.req) {
		// k's request is earlier: reply now, discharging the obligation.
		nd.received[k] = false
		return []tme.Message{{Kind: tme.Reply, TS: nd.req, From: nd.id, To: k}}
	}
	// Our request is earlier (or we are eating): defer; k stays in the
	// deferred set until Release CS.
	return nil
}

// receiveReply is the paper's receive-reply action: record k's timestamp as
// j.REQ_k. No message is sent — REQ_j is always less than the reply value.
func (nd *Node) receiveReply(k int, ts ltime.Timestamp) {
	nd.clock.Observe(ts)
	nd.local[k] = ts
	if nd.phase == tme.Thinking {
		nd.req = nd.clock.Now()
	}
}

// Step attempts the "Grant CS" internal action (CS Entry Spec): a hungry
// process whose request precedes every local copy enters the critical
// section.
//
//gblint:hotpath
func (nd *Node) Step() (entered bool, msgs []tme.Message) {
	if nd.phase != tme.Hungry {
		return false, nil
	}
	for k := 0; k < nd.n; k++ {
		if k != nd.id && !nd.req.Less(nd.local[k]) {
			return false, nil
		}
	}
	nd.phase = tme.Eating
	return true, nil
}

// Corrupt applies a transient state-corruption fault. It may leave the node
// in an arbitrary (but type-correct) state; recovery is the wrapper's job.
func (nd *Node) Corrupt(c tme.Corruption) {
	if c.Phase != 0 {
		// Invalid phases are deliberately allowed: they model corruption
		// that breaks Structural Spec, which the level-1 PhaseGuard
		// wrapper (internal/wrapper) exists to repair.
		nd.phase = c.Phase
	}
	if c.REQ != nil {
		nd.req = *c.REQ
	}
	for k, ts := range c.LocalREQ {
		if k >= 0 && k < nd.n && k != nd.id {
			nd.local[k] = ts
		}
	}
	for _, k := range c.DropReceived {
		if k >= 0 && k < nd.n {
			nd.received[k] = false
		}
	}
	for _, k := range c.ForgeReceived {
		if k >= 0 && k < nd.n && k != nd.id {
			nd.received[k] = true
		}
	}
	if c.Clock != nil {
		nd.clock.Corrupt(*c.Clock)
	}
	if c.ScrambleInternal {
		rng := rand.New(rand.NewSource(c.Seed))
		for k := 0; k < nd.n; k++ {
			if k == nd.id {
				continue
			}
			nd.local[k] = ltime.Timestamp{Clock: uint64(rng.Intn(64)), PID: k}
			nd.received[k] = rng.Intn(2) == 0
		}
	}
}
