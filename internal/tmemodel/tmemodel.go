// Package tmemodel gives the paper's TME story a finite-state form the
// graybox model checker (internal/graybox) can decide exhaustively: an
// N-process abstraction of Lspec and of the wrapper W (N ∈ {2,3}), in which
//
//   - the §4 deadlock is a concrete illegitimate state the checker finds as
//     a lasso counterexample on the unwrapped specification, and
//   - composing the wrapper's transitions makes the system stabilizing to
//     the specification — Lemma 7 / Theorem 8, machine-checked (72 states
//     at N=2, 10368 at N=3).
//
// # The abstraction
//
// Timestamps are abstracted to a request order; channels to atomic
// request/reply exchanges. A global state is
//
//	(p_0..p_{N-1}, π, {b_jk})
//
// where p_j ∈ {t,h,e} is process j's phase, π is a permutation ordering
// processes by current request timestamp (earliest first), and b_jk
// captures j's entry-guard component REQ_j lt j.REQ_k.
//
// Correct-protocol transitions (the specification; generated from every
// state — everywhere semantics):
//
//	request_j : p_j=t → p_j:=h; π := π with j moved to the end;
//	            b_jk := (p_k=t); b_kj := true for active k (k receives the
//	            later request)
//	grant_j   : p_j=h ∧ (∀k: b_jk) → p_j:=e
//	release_j : p_j=e → p_j:=t; b_kj := true for hungry k (deferred
//	            replies); j's own beliefs are cleared
//
// The wrapper W contributes the per-pair refresh transitions (guard
// h_j ∧ ¬b_jk, the ¬(REQ_j lt j.REQ_k) reading):
//
//	refresh_jk: p_j=h ∧ ¬b_jk ∧ (p_k=t ∨ j before k in π) → b_jk:=true
//
// — j resends its request; k's reply restores the guard component exactly
// when j's request precedes k's (or k is not competing).
//
// # Canonicalization
//
// A thinking process has no request, so its beliefs and its position in π
// are meaningless; left uncanonicalized they split behaviorally identical
// states and manufacture spurious cycles outside the legitimate set (a
// solo requester would "cycle" through residual-field variants the
// legitimate set happens not to contain). Every rule therefore produces a
// canonical successor: thinking processes carry all-false beliefs and sit
// at the tail of π sorted by id, while active processes keep their request
// order at the front. Corrupted (non-canonical) states remain in the state
// space — faults are arbitrary — and every rule maps them into canonical
// form, which is itself part of the recovery story.
//
// Stuck states stutter, keeping the relation total — which is precisely
// what makes the unwrapped deadlock a checkable bad cycle.
package tmemodel

import (
	"fmt"
	"sort"

	"github.com/graybox-stabilization/graybox/internal/graybox"
)

// Phase values of the abstraction.
const (
	T = iota // thinking
	H        // hungry
	E        // eating
)

// Model is the N-process abstraction; construct with NewModel.
type Model struct {
	n     int
	perms [][]int
	// permIndex maps a permutation (as a byte string) to its index.
	permIndex map[string]int
	nStates   int
}

// NewModel returns the N-process abstraction. The state space grows as
// 3^N·N!·2^(N(N-1)); the constructor rejects N outside [2,3] to prevent
// accidental blowups.
func NewModel(n int) (*Model, error) {
	if n < 2 || n > 3 {
		return nil, fmt.Errorf("tmemodel: NewModel supports 2 ≤ n ≤ 3, got %d", n)
	}
	m := &Model{n: n, permIndex: make(map[string]int)}
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var gen func(cur []int, rest []int)
	gen = func(cur []int, rest []int) {
		if len(rest) == 0 {
			p := append([]int(nil), cur...)
			m.perms = append(m.perms, p)
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			gen(append(cur, rest[i]), next)
		}
	}
	gen(nil, base)
	sort.Slice(m.perms, func(i, j int) bool { return permKey(m.perms[i]) < permKey(m.perms[j]) })
	for i, p := range m.perms {
		m.permIndex[permKey(p)] = i
	}
	m.nStates = pow(3, n) * len(m.perms) * pow(2, n*(n-1))
	return m, nil
}

func permKey(p []int) string {
	b := make([]byte, len(p))
	for i, v := range p {
		b[i] = byte(v)
	}
	return string(b)
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// N returns the process count.
func (m *Model) N() int { return m.n }

// NumStates returns the size of the state space.
func (m *Model) NumStates() int { return m.nStates }

// GState is one decoded global state.
type GState struct {
	// Phase[j] ∈ {T,H,E}.
	Phase []int
	// Perm orders processes by request timestamp, earliest first.
	Perm []int
	// B[j][k] is b_jk (B[j][j] unused).
	B [][]bool
}

// clone deep-copies the state.
func (g GState) clone() GState {
	out := GState{
		Phase: append([]int(nil), g.Phase...),
		Perm:  append([]int(nil), g.Perm...),
		B:     make([][]bool, len(g.B)),
	}
	for i := range g.B {
		out.B[i] = append([]bool(nil), g.B[i]...)
	}
	return out
}

// String renders the state compactly, e.g. "(hht π=[0 1 2] ...)".
func (g GState) String() string {
	ph := [3]byte{'t', 'h', 'e'}
	ps := make([]byte, len(g.Phase))
	for i, p := range g.Phase {
		ps[i] = ph[p]
	}
	return fmt.Sprintf("(%s π=%v b=%v)", ps, g.Perm, g.B)
}

// canon returns the canonical form of g: active processes keep their
// relative order at the front of π, thinking processes go to the tail
// sorted by id with all-false beliefs.
func (g GState) canon() GState {
	out := g.clone()
	var active, thinking []int
	for _, j := range g.Perm {
		if g.Phase[j] == T {
			thinking = append(thinking, j)
		} else {
			active = append(active, j)
		}
	}
	sort.Ints(thinking)
	out.Perm = append(active, thinking...)
	for _, j := range thinking {
		for k := range out.B[j] {
			out.B[j][k] = false
		}
	}
	return out
}

// Encode maps a state to its index.
func (m *Model) Encode(g GState) int {
	i := 0
	for _, p := range g.Phase {
		i = i*3 + p
	}
	i = i*len(m.perms) + m.permIndex[permKey(g.Perm)]
	for j := 0; j < m.n; j++ {
		for k := 0; k < m.n; k++ {
			if j == k {
				continue
			}
			i = i * 2
			if g.B[j][k] {
				i++
			}
		}
	}
	return i
}

// Decode maps an index back to the state.
func (m *Model) Decode(i int) GState {
	g := GState{
		Phase: make([]int, m.n),
		Perm:  make([]int, m.n),
		B:     make([][]bool, m.n),
	}
	for j := range g.B {
		g.B[j] = make([]bool, m.n)
	}
	nb := m.n * (m.n - 1)
	bits := i % pow(2, nb)
	i /= pow(2, nb)
	for j := m.n - 1; j >= 0; j-- {
		for k := m.n - 1; k >= 0; k-- {
			if j == k {
				continue
			}
			g.B[j][k] = bits%2 == 1
			bits /= 2
		}
	}
	copy(g.Perm, m.perms[i%len(m.perms)])
	i /= len(m.perms)
	for j := m.n - 1; j >= 0; j-- {
		g.Phase[j] = i % 3
		i /= 3
	}
	return g
}

// pos returns j's position in the permutation (0 = earliest), or -1.
func pos(perm []int, j int) int {
	for i, v := range perm {
		if v == j {
			return i
		}
	}
	return -1
}

// moveToEnd returns perm with j moved to the last (latest) position.
func moveToEnd(perm []int, j int) []int {
	out := make([]int, 0, len(perm))
	for _, v := range perm {
		if v != j {
			out = append(out, v)
		}
	}
	return append(out, j)
}

// SpecEdges returns the correct-protocol transitions.
func (m *Model) SpecEdges() [][2]int {
	var edges [][2]int
	for i := 0; i < m.nStates; i++ {
		g := m.Decode(i)
		for j := 0; j < m.n; j++ {
			switch g.Phase[j] {
			case T: // request_j
				n := g.clone()
				n.Phase[j] = H
				n.Perm = moveToEnd(g.Perm, j)
				for k := 0; k < m.n; k++ {
					if k == j {
						continue
					}
					n.B[j][k] = g.Phase[k] == T
					if g.Phase[k] != T {
						n.B[k][j] = true // k learns of j's later request
					}
				}
				edges = append(edges, [2]int{i, m.Encode(n.canon())})
			case H: // grant_j
				all := true
				for k := 0; k < m.n && all; k++ {
					if k != j && !g.B[j][k] {
						all = false
					}
				}
				if all {
					n := g.clone()
					n.Phase[j] = E
					edges = append(edges, [2]int{i, m.Encode(n.canon())})
				}
			case E: // release_j
				n := g.clone()
				n.Phase[j] = T
				for k := 0; k < m.n; k++ {
					if k != j && g.Phase[k] == H {
						n.B[k][j] = true // deferred reply
					}
				}
				edges = append(edges, [2]int{i, m.Encode(n.canon())})
			}
		}
	}
	return edges
}

// WrapperEdges returns W's per-pair refresh transitions.
func (m *Model) WrapperEdges() [][2]int {
	var edges [][2]int
	for i := 0; i < m.nStates; i++ {
		g := m.Decode(i)
		for j := 0; j < m.n; j++ {
			if g.Phase[j] != H {
				continue
			}
			for k := 0; k < m.n; k++ {
				if k == j || g.B[j][k] {
					continue
				}
				if g.Phase[k] == T || pos(g.Perm, j) < pos(g.Perm, k) {
					n := g.clone()
					n.B[j][k] = true
					edges = append(edges, [2]int{i, m.Encode(n.canon())})
				}
			}
		}
	}
	return edges
}

// InitIndex returns the encoded Init state: all thinking, identity
// permutation, no beliefs — the canonical all-thinking state.
func (m *Model) InitIndex() int {
	g := GState{
		Phase: make([]int, m.n),
		Perm:  identity(m.n),
		B:     make([][]bool, m.n),
	}
	for j := range g.B {
		g.B[j] = make([]bool, m.n)
	}
	return m.Encode(g)
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// DeadlockIndex returns the all-hungry, all-beliefs-false state with the
// identity permutation: the N-process §4 deadlock (every process waits for
// replies that will never come).
func (m *Model) DeadlockIndex() int {
	g := GState{
		Phase: make([]int, m.n),
		Perm:  identity(m.n),
		B:     make([][]bool, m.n),
	}
	for j := range g.Phase {
		g.Phase[j] = H
	}
	for j := range g.B {
		g.B[j] = make([]bool, m.n)
	}
	return m.Encode(g)
}

// Spec builds the specification system A: correct-protocol transitions,
// total via stutters, Init as above.
func (m *Model) Spec() *graybox.System {
	return m.assemble(fmt.Sprintf("TME-abs-%d", m.n), m.SpecEdges())
}

// Wrapped builds A ▯ W: specification plus wrapper transitions (stutters
// only where neither has a rule).
func (m *Model) Wrapped() *graybox.System {
	return m.assemble(fmt.Sprintf("TME-abs-%d [] W", m.n), m.SpecEdges(), m.WrapperEdges())
}

func (m *Model) assemble(name string, edgeSets ...[][2]int) *graybox.System {
	b := graybox.NewBuilder(name, m.nStates)
	for _, edges := range edgeSets {
		for _, e := range edges {
			b.AddTransition(e[0], e[1])
		}
	}
	b.SetInit(m.InitIndex())
	return b.Totalize().MustBuild()
}
