package tmemodel

import (
	"strings"
	"testing"

	"github.com/graybox-stabilization/graybox/internal/graybox"
)

func mustModel(t *testing.T, n int) *Model {
	t.Helper()
	m, err := NewModel(n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelBounds(t *testing.T) {
	for _, n := range []int{1, 4} {
		if _, err := NewModel(n); err == nil {
			t.Errorf("NewModel(%d) accepted", n)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3} {
		m := mustModel(t, n)
		for i := 0; i < m.NumStates(); i++ {
			if got := m.Encode(m.Decode(i)); got != i {
				t.Fatalf("n=%d: round trip %d → %v → %d", n, i, m.Decode(i), got)
			}
		}
	}
}

func TestStateString(t *testing.T) {
	m := mustModel(t, 2)
	s := m.Decode(m.DeadlockIndex()).String()
	if !strings.Contains(s, "hh") {
		t.Errorf("String = %q", s)
	}
}

func TestCanonicalization(t *testing.T) {
	// A thinking process with residual beliefs and a scrambled position.
	g := GState{
		Phase: []int{T, H, H},
		Perm:  []int{2, 0, 1}, // thinking 0 sits between actives
		B: [][]bool{
			{false, true, true}, // residual beliefs of a thinker
			{false, false, false},
			{true, true, false},
		},
	}
	c := g.canon()
	// Actives 2,1 keep their order; thinker 0 goes to the tail.
	want := []int{2, 1, 0}
	for i := range want {
		if c.Perm[i] != want[i] {
			t.Fatalf("canon perm = %v, want %v", c.Perm, want)
		}
	}
	for k, b := range c.B[0] {
		if b {
			t.Fatalf("thinker's belief B[0][%d] not cleared", k)
		}
	}
	// Active beliefs untouched.
	if !c.B[2][0] || !c.B[2][1] {
		t.Error("active beliefs were modified")
	}
	// Original state unmodified (canon is pure).
	if !g.B[0][1] {
		t.Error("canon mutated its input")
	}
}

func TestMoveToEndAndPos(t *testing.T) {
	perm := []int{2, 0, 1}
	if pos(perm, 0) != 1 || pos(perm, 9) != -1 {
		t.Error("pos wrong")
	}
	got := moveToEnd(perm, 2)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("moveToEnd = %v, want %v", got, want)
		}
	}
}

// The central machine-checked narrative at both sizes:
//
//  1. the abstract spec A is NOT self-stabilizing — the checker finds a
//     stuck illegitimate state unaided;
//  2. the §4 deadlock is that kind of state: illegitimate and stuck;
//  3. A ▯ W IS stabilizing to A — Lemma 7 / Theorem 8 on the abstraction
//     (exhaustive over 72 states at N=2, 10368 at N=3);
//  4. interference freedom: A ▯ W and A have identical transitions inside
//     the legitimate set (Lemma 6's operational content).
func TestWrapperStabilizesAbstractTME(t *testing.T) {
	for _, n := range []int{2, 3} {
		m := mustModel(t, n)
		a := m.Spec()
		aw := m.Wrapped()

		okA, lasso := graybox.SelfStabilizing(a)
		if okA {
			t.Fatalf("n=%d: abstract spec is self-stabilizing — the deadlock vanished", n)
		}
		t.Logf("n=%d unwrapped lasso: %v at state %v", n, lasso, m.Decode(lasso.BadEdge[0]))

		legit := a.Legitimate()
		dl := m.DeadlockIndex()
		if legit[dl] {
			t.Fatalf("n=%d: the §4 deadlock is legitimately reachable", n)
		}
		if succs := a.Successors(dl); len(succs) != 1 || succs[0] != dl {
			t.Fatalf("n=%d: deadlock successors in A = %v, want only the stutter", n, succs)
		}

		if ok, l := graybox.StabilizingTo(aw, a); !ok {
			t.Fatalf("n=%d: A ▯ W not stabilizing to A: %v (state %v)",
				n, l, m.Decode(l.BadEdge[0]))
		}

		for u := 0; u < m.NumStates(); u++ {
			if !legit[u] {
				continue
			}
			au, wu := a.Successors(u), aw.Successors(u)
			if len(au) != len(wu) {
				t.Fatalf("n=%d: wrapper disturbed legitimate state %v", n, m.Decode(u))
			}
			for i := range au {
				if au[i] != wu[i] {
					t.Fatalf("n=%d: wrapper disturbed legitimate state %v", n, m.Decode(u))
				}
			}
		}
	}
}

// Safety and progress inside the legitimate set: at most one process eats,
// hungry beliefs never all-true for two processes at once, and no
// legitimate state is stuck.
func TestLegitimateSetProperties(t *testing.T) {
	for _, n := range []int{2, 3} {
		m := mustModel(t, n)
		a := m.Spec()
		legit := a.Legitimate()
		count := 0
		for u := 0; u < m.NumStates(); u++ {
			if !legit[u] {
				continue
			}
			count++
			g := m.Decode(u)
			eating := 0
			for _, p := range g.Phase {
				if p == E {
					eating++
				}
			}
			if eating > 1 {
				t.Fatalf("n=%d: ME1 violated in legitimate state %v", n, g)
			}
			real := false
			for _, v := range a.Successors(u) {
				if v != u {
					real = true
				}
			}
			if !real {
				t.Fatalf("n=%d: legitimate state %v is stuck", n, g)
			}
		}
		if count == 0 || count == m.NumStates() {
			t.Fatalf("n=%d: legitimate set size %d is degenerate", n, count)
		}
		t.Logf("n=%d: %d legitimate states of %d", n, count, m.NumStates())
	}
}

// Starvation freedom inside the legitimate set: no legitimate cycle keeps
// a process hungry throughout.
func TestNoHungryCycleInLegitimateSet(t *testing.T) {
	for _, n := range []int{2, 3} {
		m := mustModel(t, n)
		a := m.Spec()
		legit := a.Legitimate()
		for j := 0; j < n; j++ {
			adj := make([][]int, m.NumStates())
			for u := 0; u < m.NumStates(); u++ {
				if !legit[u] || m.Decode(u).Phase[j] != H {
					continue
				}
				for _, v := range a.Successors(u) {
					if legit[v] && m.Decode(v).Phase[j] == H {
						adj[u] = append(adj[u], v)
					}
				}
			}
			color := make([]int, m.NumStates())
			var dfs func(u int) bool
			dfs = func(u int) bool {
				color[u] = 1
				for _, v := range adj[u] {
					if color[v] == 1 {
						return true
					}
					if color[v] == 0 && dfs(v) {
						return true
					}
				}
				color[u] = 2
				return false
			}
			for u := 0; u < m.NumStates(); u++ {
				if color[u] == 0 && len(adj[u]) > 0 && dfs(u) {
					t.Fatalf("n=%d: process %d can stay hungry around a legitimate cycle", n, j)
				}
			}
		}
	}
}

// The wrapper's guard matches internal/wrapper's semantics: it fires
// exactly on hungry processes with a false belief, and only when firing
// can help (partner thinking, or own request earlier in the order).
func TestWrapperEdgesGuard(t *testing.T) {
	m := mustModel(t, 3)
	for _, e := range m.WrapperEdges() {
		s := m.Decode(e[0])
		nxt := m.Decode(e[1])
		fired, target := -1, -1
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				if j != k && s.B[j][k] != nxt.B[j][k] && nxt.B[j][k] {
					fired, target = j, k
				}
			}
		}
		if fired == -1 {
			t.Fatalf("wrapper edge %v→%v sets no belief", s, nxt)
		}
		if s.Phase[fired] != H || s.B[fired][target] {
			t.Fatalf("wrapper fired outside its guard at %v", s)
		}
		if s.Phase[target] != T && pos(s.Perm, fired) >= pos(s.Perm, target) {
			t.Fatalf("wrapper fired where the refresh cannot help: %v", s)
		}
	}
}
