package wrapper

import (
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Instrumented decorates a Level2 wrapper with observability: it counts
// guard evaluations, guard openings (firings), and corrective sends, and
// emits a trace event per firing. It changes no behaviour — the inner
// wrapper's messages pass through untouched — so the interference-freedom
// results (Lemma 6) are unaffected.
//
// Nil instruments are valid (obs off): the decorator then costs a few
// nil-receiver calls per evaluation.
type Instrumented struct {
	// Inner is the wrapped Level2 (required).
	Inner Level2
	// ID is the owning process, recorded on trace events.
	ID int
	// Evals counts guard evaluations; Fires counts evaluations whose guard
	// opened; Sends counts corrective messages produced.
	Evals, Fires, Sends *obs.Counter
	// Trace receives one EvWrapperFire event per opening (nil = no trace).
	Trace *obs.Trace
}

var _ Level2 = (*Instrumented)(nil)

// Fire evaluates the inner wrapper and publishes the outcome.
//
//gblint:hotpath
func (w *Instrumented) Fire(now int64, v tme.SpecView) []tme.Message {
	msgs := w.Inner.Fire(now, v)
	w.Evals.Inc()
	if len(msgs) > 0 {
		w.Fires.Inc()
		w.Sends.Add(int64(len(msgs)))
		w.Trace.Emit(obs.Event{
			Time: now, Kind: obs.EvWrapperFire, A: w.ID, B: -1, N: len(msgs),
		})
	}
	return msgs
}

// InstrumentLevel2 wraps l2 for process id against o's registry and trace.
// It returns l2 unchanged when o is nil — disabled observability leaves
// the wrapper stack untouched.
func InstrumentLevel2(o *obs.Obs, id int, l2 Level2) Level2 {
	if o == nil {
		return l2
	}
	r := o.Registry()
	return &Instrumented{
		Inner: l2,
		ID:    id,
		Evals: r.Counter("wrapper_evals_total", "level-2 wrapper guard evaluations"),
		Fires: r.Counter("wrapper_fires_total", "level-2 wrapper guard openings"),
		Sends: r.Counter("wrapper_msgs_total", "corrective messages sent by level-2 wrappers"),
		Trace: o.Tracer(),
	}
}
