package wrapper

import (
	"fmt"
	"os"

	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// Instrumented decorates a Level2 wrapper with observability: it counts
// guard evaluations, guard openings (firings), and corrective sends, and
// emits a trace event per firing. It changes no behaviour — the inner
// wrapper's messages pass through untouched — so the interference-freedom
// results (Lemma 6) are unaffected.
//
// Nil instruments are valid (obs off): the decorator then costs a few
// nil-receiver calls per evaluation.
type Instrumented struct {
	// Inner is the wrapped Level2 (required).
	Inner Level2
	// ID is the owning process, recorded on trace events.
	ID int
	// Evals counts guard evaluations; Fires counts evaluations whose guard
	// opened; Sends counts corrective messages produced.
	Evals, Fires, Sends *obs.Counter
	// Trace receives one EvWrapperFire event per opening (nil = no trace).
	Trace *obs.Trace

	// Resend-storm guard. A W' that fires in consecutive δ-windows while
	// the process stays hungry the whole time is not correcting a
	// transient fault — the hunger is outliving whole timeout periods,
	// which means δ sits far below the real queueing wait and every window
	// burns (n−1) resends for nothing (the PR 9 δ-tuning lesson, and the
	// E17 resend flood). Any evaluation that sees the process non-hungry
	// resets the streak: resends followed by an entry were contention, not
	// a storm. Delta is the wrapper's timeout (taken from a
	// TimeoutDelta-capable inner wrapper; 0 disables the guard), Storms
	// counts threshold crossings, and Warn fires once per wrapper on the
	// first crossing.
	Delta int64
	// StormAfter is how many consecutive firing windows count as a storm
	// (default stormAfter when 0).
	StormAfter int
	// Storms is the wrapper_resend_storm_total counter.
	Storms *obs.Counter
	// Warn receives the one-time storm warning (nil = stderr).
	Warn func(id, streak int, delta int64)

	streak   int
	lastFire int64
	warned   bool
}

// stormAfter is the default storm threshold: firing 8 δ-windows in a row
// cannot be transient recovery — at the δ values the experiments use, real
// convergence completes within one or two windows.
const stormAfter = 8

// TimeoutDelta exposes the W' timeout to the instrumentation layer.
func (t *Timed) TimeoutDelta() int64 { return t.Delta }

var _ Level2 = (*Instrumented)(nil)

// Fire evaluates the inner wrapper and publishes the outcome.
//
//gblint:hotpath
func (w *Instrumented) Fire(now int64, v tme.SpecView) []tme.Message {
	msgs := w.Inner.Fire(now, v)
	w.Evals.Inc()
	if len(msgs) > 0 {
		w.Fires.Inc()
		w.Sends.Add(int64(len(msgs)))
		w.Trace.Emit(obs.Event{
			Time: now, Kind: obs.EvWrapperFire, A: w.ID, B: -1, N: len(msgs),
		})
		if w.Delta > 0 {
			w.noteFire(now)
		}
	} else if w.streak > 0 && v.Phase() != tme.Hungry {
		// The hungry stretch the streak was tracking ended — the process
		// entered (or gave up), so those resends were contention, not a
		// storm. Only an unbroken hungry run of firing windows counts.
		w.streak = 0
	}
	return msgs
}

// noteFire tracks consecutive firing windows for the storm guard. Kept out
// of the hotpath-marked Fire body: it only runs on actual firings, and the
// one-time warning path may format.
func (w *Instrumented) noteFire(now int64) {
	if w.streak > 0 && now-w.lastFire <= w.Delta {
		w.streak++
	} else {
		w.streak = 1
	}
	w.lastFire = now
	threshold := w.StormAfter
	if threshold <= 0 {
		threshold = stormAfter
	}
	if w.streak < threshold {
		return
	}
	w.Storms.Inc()
	if w.warned {
		return
	}
	w.warned = true
	if w.Warn != nil {
		w.Warn(w.ID, w.streak, w.Delta)
		return
	}
	fmt.Fprintf(os.Stderr,
		"wrapper: resend storm on process %d: W' fired %d consecutive δ-windows (δ=%d) — δ is far below the queueing wait, every window resends for nothing; raise δ\n",
		w.ID, w.streak, w.Delta)
}

// InstrumentLevel2 wraps l2 for process id against o's registry and trace.
// It returns l2 unchanged when o is nil — disabled observability leaves
// the wrapper stack untouched.
func InstrumentLevel2(o *obs.Obs, id int, l2 Level2) Level2 {
	if o == nil {
		return l2
	}
	r := o.Registry()
	var delta int64
	if td, ok := l2.(interface{ TimeoutDelta() int64 }); ok {
		delta = td.TimeoutDelta()
	}
	return &Instrumented{
		Inner:  l2,
		ID:     id,
		Evals:  r.Counter("wrapper_evals_total", "level-2 wrapper guard evaluations"),
		Fires:  r.Counter("wrapper_fires_total", "level-2 wrapper guard openings"),
		Sends:  r.Counter("wrapper_msgs_total", "corrective messages sent by level-2 wrappers"),
		Trace:  o.Tracer(),
		Delta:  delta,
		Storms: r.Counter("wrapper_resend_storm_total", "δ-windows fired past the consecutive-firing storm threshold"),
	}
}
