package wrapper

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/lamport"
	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// view is a scripted SpecView.
type view struct {
	id, n int
	phase tme.Phase
	req   ltime.Timestamp
	local map[int]ltime.Timestamp
}

func (v *view) ID() int              { return v.id }
func (v *view) N() int               { return v.n }
func (v *view) Phase() tme.Phase     { return v.phase }
func (v *view) REQ() ltime.Timestamp { return v.req }
func (v *view) LocalREQ(k int) (ltime.Timestamp, bool) {
	return v.local[k], false
}

func hungryView() *view {
	return &view{
		id:    1,
		n:     3,
		phase: tme.Hungry,
		req:   ltime.Timestamp{Clock: 5, PID: 1},
		local: map[int]ltime.Timestamp{
			0: {Clock: 2, PID: 0}, // earlier: mutual inconsistency candidate
			2: {Clock: 9, PID: 2}, // later: consistent
		},
	}
}

func TestWGuardSelectsStaleCopiesOnly(t *testing.T) {
	v := hungryView()
	msgs := W(v)
	if len(msgs) != 1 {
		t.Fatalf("W sent %d messages, want 1: %v", len(msgs), msgs)
	}
	m := msgs[0]
	if m.To != 0 || m.Kind != tme.Request || m.TS != v.req || m.From != 1 {
		t.Errorf("W message = %v", m)
	}
}

func TestWClosedWhenNotHungry(t *testing.T) {
	for _, p := range []tme.Phase{tme.Thinking, tme.Eating, tme.Phase(0)} {
		v := hungryView()
		v.phase = p
		if msgs := W(v); msgs != nil {
			t.Errorf("W fired in phase %v: %v", p, msgs)
		}
	}
}

func TestWAllStaleSendsToAll(t *testing.T) {
	v := hungryView()
	v.local[2] = ltime.Zero
	if msgs := W(v); len(msgs) != 2 {
		t.Errorf("W sent %d, want 2", len(msgs))
	}
}

func TestUnrefinedSendsToEveryoneWhenHungry(t *testing.T) {
	v := hungryView()
	msgs := Unrefined(v)
	if len(msgs) != 2 {
		t.Fatalf("Unrefined sent %d, want 2", len(msgs))
	}
	if Unrefined(&view{id: 0, n: 2, phase: tme.Thinking}) != nil {
		t.Error("Unrefined fired while thinking")
	}
}

// W' refines W: every message W' sends, W would send at that state
// (the [W' ⇒ W] premise of Theorem 4).
func TestTimedRefinesW(t *testing.T) {
	v := hungryView()
	w := NewTimed(10)
	got := w.Fire(0, v)
	want := W(v)
	if len(got) != len(want) {
		t.Fatalf("W' sent %d, W sends %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("message %d: W'=%v W=%v", i, got[i], want[i])
		}
	}
}

func TestTimedRespectsPeriod(t *testing.T) {
	v := hungryView()
	w := NewTimed(10)
	if msgs := w.Fire(0, v); len(msgs) == 0 {
		t.Fatal("first fire should be open")
	}
	for now := int64(1); now < 10; now++ {
		if msgs := w.Fire(now, v); msgs != nil {
			t.Fatalf("fired at %d inside the timeout period", now)
		}
	}
	if msgs := w.Fire(10, v); len(msgs) == 0 {
		t.Fatal("did not fire at period expiry")
	}
}

func TestTimedDeltaZeroEquivalentToW(t *testing.T) {
	// The paper: W' with δ=0 is W. Fire at every instant must match W.
	v := hungryView()
	var w Timed // zero value: δ=0
	for now := int64(0); now < 5; now++ {
		got := w.Fire(now, v)
		want := W(v)
		if len(got) != len(want) {
			t.Fatalf("t=%d: W' sent %d, W sends %d", now, len(got), len(want))
		}
	}
}

func TestTimedClosedGuardStillResetsTimer(t *testing.T) {
	v := hungryView()
	v.phase = tme.Thinking
	w := NewTimed(5)
	if msgs := w.Fire(0, v); msgs != nil {
		t.Fatal("fired while thinking")
	}
	v.phase = tme.Hungry
	// Timer was consumed at t=0; next opportunity is t=5.
	if msgs := w.Fire(3, v); msgs != nil {
		t.Fatal("fired before period elapsed")
	}
	if msgs := w.Fire(5, v); len(msgs) == 0 {
		t.Fatal("did not fire at t=5")
	}
}

func TestFuncAdapter(t *testing.T) {
	v := hungryView()
	var l2 Level2 = Func(W)
	if got := l2.Fire(99, v); len(got) != 1 {
		t.Errorf("Func adapter sent %d", len(got))
	}
}

func TestNoRepair(t *testing.T) {
	nd := ra.New(0, 2)
	repaired, exc := NoRepair{}.CheckRepair(nd)
	if repaired || exc {
		t.Error("NoRepair did something")
	}
}

func TestPhaseGuardRepairsInvalidPhase(t *testing.T) {
	for _, nd := range []tme.Node{ra.New(0, 2), lamport.New(0, 2)} {
		nd.(tme.Corruptible).Corrupt(tme.Corruption{Phase: tme.Phase(9)})
		if nd.Phase().Valid() {
			t.Fatal("corruption did not break the phase")
		}
		repaired, exc := PhaseGuard{}.CheckRepair(nd)
		if !repaired || exc {
			t.Errorf("CheckRepair = (%v,%v)", repaired, exc)
		}
		if nd.Phase() != tme.Thinking {
			t.Errorf("phase after repair = %v", nd.Phase())
		}
		// Valid phase: no-op.
		if repaired, _ := (PhaseGuard{}).CheckRepair(nd); repaired {
			t.Error("PhaseGuard repaired a valid phase")
		}
	}
}

// Regression: a process corrupted to hungry with the MINIMUM timestamp as
// its REQ (so nothing can be "lt REQ_j") must still trigger the wrapper —
// the guard is ¬(REQ_j lt j.REQ_k), which opens on equality. With the
// strict "lt REQ_j" guard, a 12-process Lamport run deadlocked permanently
// in exactly this state.
func TestWFiresWhenREQIsMinimal(t *testing.T) {
	v := &view{
		id:    0,
		n:     2,
		phase: tme.Hungry,
		req:   ltime.Zero, // corrupted: minimal timestamp while hungry
		local: map[int]ltime.Timestamp{1: ltime.Zero},
	}
	if msgs := W(v); len(msgs) != 1 {
		t.Fatalf("W sent %d messages, want 1 (guard must open on equality)", len(msgs))
	}
}

// The wrapper never reads anything outside SpecView — this is a compile-time
// property, but assert the runtime consequence: W's output is a pure
// function of the view's five observables.
func TestWIsPureFunctionOfSpecView(t *testing.T) {
	// Two different implementations presenting identical spec views must
	// receive identical wrapper treatment.
	raNode := ra.New(0, 2)
	lpNode := lamport.New(0, 2)
	raNode.RequestCS()
	lpNode.RequestCS()
	// Both are hungry with REQ = 1.0 and zero local copies.
	mra, mlp := W(raNode), W(lpNode)
	if len(mra) != len(mlp) {
		t.Fatalf("W differs across implementations: %v vs %v", mra, mlp)
	}
	for i := range mra {
		if mra[i] != mlp[i] {
			t.Errorf("message %d differs: %v vs %v", i, mra[i], mlp[i])
		}
	}
}
