// Package wrapper implements the graybox stabilization wrappers of DSN 2001
// §4, plus the level-1/level-2 design framework of §2.2.
//
// The central artifact is the level-2 dependability wrapper
//
//	W_j :: h.j ∧ j.REQ_k lt REQ_j  →  (∀k : k≠j : send(REQ_j, j, k))
//
// and its timeout relaxation W'_j (period δ), which is an everywhere
// implementation of W_j and therefore an equally valid wrapper (Theorem 4).
//
// Every function here takes a tme.SpecView — the Lspec-level variables and
// nothing else. A wrapper cannot read RA's deferred set or Lamport's request
// queue even by accident; graybox knowledge is all the type admits. That is
// why the same wrapper stabilizes both programs (Corollary 11) and any other
// everywhere implementation of Lspec.
package wrapper

import "github.com/graybox-stabilization/graybox/internal/tme"

// W evaluates the refined wrapper W_j against the spec view: when hungry,
// (re)send the current request to every process whose local copy j.REQ_k is
// not later than REQ_j — exactly the processes with which j may be mutually
// inconsistent. It returns the request messages to send (none when the
// guard is closed).
//
// The paper writes the guard as "j.REQ_k lt REQ_j". In legitimate states
// the two values are never equal across processes (timestamps carry their
// producer's pid), so that is equivalent to ¬(REQ_j lt j.REQ_k) — which is
// the form we evaluate. The distinction matters exactly once: transient
// corruption can set REQ_j to the minimum timestamp while hungry, making
// "lt REQ_j" unsatisfiable even though every local copy is useless; the
// ¬(REQ_j lt j.REQ_k) guard still opens and the wrapper still recovers the
// system (regression-tested against a 12-process deadlock this produced).
func W(v tme.SpecView) []tme.Message {
	if v.Phase() != tme.Hungry {
		return nil
	}
	req := v.REQ()
	var msgs []tme.Message
	for k := 0; k < v.N(); k++ {
		if k == v.ID() {
			continue
		}
		local, _ := v.LocalREQ(k)
		if !req.Less(local) {
			if msgs == nil {
				// One allocation sized for the worst case; the guard being
				// closed for every k keeps the common path allocation-free.
				msgs = make([]tme.Message, 0, v.N()-1)
			}
			msgs = append(msgs, tme.Message{Kind: tme.Request, TS: req, From: v.ID(), To: k})
		}
	}
	return msgs
}

// Unrefined evaluates the first, unrefined version of W_j from §4: when
// hungry, resend the request to every other process unconditionally. It is
// correct but sends more messages than W; both are exposed so the ablation
// benchmarks can quantify the refinement.
func Unrefined(v tme.SpecView) []tme.Message {
	if v.Phase() != tme.Hungry {
		return nil
	}
	req := v.REQ()
	msgs := make([]tme.Message, 0, v.N()-1)
	for k := 0; k < v.N(); k++ {
		if k != v.ID() {
			msgs = append(msgs, tme.Message{Kind: tme.Request, TS: req, From: v.ID(), To: k})
		}
	}
	return msgs
}

// Level2 is a level-2 dependability wrapper (§2.2): it restores mutual
// consistency between processes, optimistically assuming each process is
// internally consistent. Fire is invoked by the execution substrate with
// the current virtual time; the wrapper decides whether its guard is open.
type Level2 interface {
	// Fire evaluates the wrapper at time now over the spec view and
	// returns the messages to send.
	Fire(now int64, v tme.SpecView) []tme.Message
}

// Timed is W'_j: W_j guarded by a timeout of period Delta, the paper's
// optimization that trades convergence latency for steady-state message
// overhead. Delta = 0 makes W' equivalent to W (the paper's observation).
// The zero value is W' with Delta 0, ready to use.
type Timed struct {
	// Delta is the timeout period δ_j in virtual-time units.
	Delta int64
	// next is the earliest time the guard may open again.
	next int64
}

var _ Level2 = (*Timed)(nil)

// NewTimed returns W' with the given timeout period; negative periods are
// clamped to 0 (the eager W).
func NewTimed(delta int64) *Timed {
	if delta < 0 {
		delta = 0
	}
	return &Timed{Delta: delta}
}

// Fire evaluates W'_j: a no-op until the timer expires, then W_j, then the
// timer is reset to Delta.
func (t *Timed) Fire(now int64, v tme.SpecView) []tme.Message {
	if now < t.next {
		return nil
	}
	t.next = now + t.Delta
	return W(v)
}

// Func adapts a plain wrapper function (such as W or Unrefined) into a
// Level2 that ignores time.
type Func func(v tme.SpecView) []tme.Message

// Fire implements Level2.
func (f Func) Fire(_ int64, v tme.SpecView) []tme.Message { return f(v) }

// Level1 is a level-1 dependability wrapper (§2.2): it restores a process to
// an internally consistent state. It may raise an exception to notify other
// processes' wrappers of the repair; for TME no exception is needed because
// the level-2 wrapper already reconciles inter-process state continuously.
type Level1 interface {
	// CheckRepair inspects the node and repairs internal inconsistencies.
	// repaired reports whether anything was changed; exception reports
	// whether other processes' wrappers should be notified.
	CheckRepair(n tme.Node) (repaired, exception bool)
}

// NoRepair is the level-1 wrapper for Lspec implementations: the identity.
// The paper observes (§4) that every everywhere implementation of Lspec is
// internally consistent in every state, so no level-1 repair is required.
type NoRepair struct{}

var _ Level1 = NoRepair{}

// CheckRepair reports no repair and no exception.
func (NoRepair) CheckRepair(tme.Node) (repaired, exception bool) { return false, false }

// PhaseGuard is a level-1 wrapper for implementations whose phase variable
// can be corrupted *outside* its type (breaking Structural Spec, which Lspec
// everywhere-implementations otherwise maintain): it repairs an invalid
// phase to thinking, the unique phase from which the client can always
// proceed. This extends the paper's method to faults below the Lspec
// abstraction.
type PhaseGuard struct{}

var _ Level1 = PhaseGuard{}

// CheckRepair restores an invalid phase to thinking.
func (PhaseGuard) CheckRepair(n tme.Node) (repaired, exception bool) {
	if n.Phase().Valid() {
		return false, false
	}
	if c, ok := n.(tme.Corruptible); ok {
		c.Corrupt(tme.Corruption{Phase: tme.Thinking})
		return true, false
	}
	return false, true // cannot repair in place: escalate
}
