package wrapper_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/ra"
	"github.com/graybox-stabilization/graybox/internal/wrapper"
)

// ExampleW shows the wrapper evaluating its guard over a SpecView: a hungry
// process with stale local copies resends its request exactly to the
// processes it may be mutually inconsistent with.
func ExampleW() {
	node := ra.New(0, 3) // any Lspec implementation works identically
	node.RequestCS()     // hungry; local copies of 1 and 2 are still zero

	for _, m := range wrapper.W(node) {
		fmt.Println(m)
	}
	// Output:
	// request(1.0) 0->1
	// request(1.0) 0->2
}

// ExampleTimed shows W': the same guard behind a timeout, the paper's
// tunable implementation.
func ExampleTimed() {
	node := ra.New(0, 2)
	node.RequestCS()

	w := wrapper.NewTimed(10)
	fmt.Println("t=0:", len(w.Fire(0, node)), "message(s)")
	fmt.Println("t=5:", len(w.Fire(5, node)), "message(s) — timer closed")
	fmt.Println("t=10:", len(w.Fire(10, node)), "message(s)")
	// Output:
	// t=0: 1 message(s)
	// t=5: 0 message(s) — timer closed
	// t=10: 1 message(s)
}
