package wrapper

import (
	"testing"

	"github.com/graybox-stabilization/graybox/internal/ltime"
	"github.com/graybox-stabilization/graybox/internal/obs"
	"github.com/graybox-stabilization/graybox/internal/tme"
)

// stormView is a process that stays hungry with every local copy stale —
// the state in which W' resends every δ-window. That only happens in a real
// run when the queueing wait exceeds δ by whole multiples: a well-tuned δ
// clears the guard within one or two windows (PR 9's sweep).
func stormView() *view {
	return &view{
		id:    1,
		n:     3,
		phase: tme.Hungry,
		req:   ltime.Timestamp{Clock: 5, PID: 1},
		local: map[int]ltime.Timestamp{0: ltime.Zero, 2: ltime.Zero},
	}
}

func TestStormGuardFiresOnSustainedResends(t *testing.T) {
	// δ=4 against a wait that (scripted here) never ends: the wrapper
	// fires at t = 0, 4, 8, ... — every window, the storm signature.
	const delta = 4
	o := obs.New(obs.Options{})
	w := InstrumentLevel2(o, 1, NewTimed(delta)).(*Instrumented)
	if w.Delta != delta {
		t.Fatalf("Delta = %d, want %d (TimeoutDelta not picked up)", w.Delta, delta)
	}

	var warns int
	w.Warn = func(id, streak int, d int64) {
		warns++
		if id != 1 || d != delta {
			t.Errorf("Warn(id=%d, streak=%d, delta=%d)", id, streak, d)
		}
		if streak < stormAfter {
			t.Errorf("warned at streak %d, below threshold %d", streak, stormAfter)
		}
	}

	v := stormView()
	storms := o.Registry().Counter("wrapper_resend_storm_total", "")
	for win := 0; win < stormAfter+3; win++ {
		for tick := int64(0); tick < delta; tick++ {
			w.Fire(int64(win)*delta+tick, v)
		}
		if win == stormAfter-2 && storms.Value() != 0 {
			t.Fatalf("storm counter moved at window %d, before the threshold", win)
		}
	}
	// Threshold crossed at window stormAfter-1 (streak counts windows), then
	// every further window is another storm-window sample.
	if got := storms.Value(); got != 4 {
		t.Errorf("wrapper_resend_storm_total = %d, want 4", got)
	}
	if warns != 1 {
		t.Errorf("Warn called %d times, want exactly 1", warns)
	}
}

func TestStormGuardQuietOnTransientRecovery(t *testing.T) {
	// The healthy pattern: a couple of firing windows, then the copies
	// refresh (guard closes) and the streak must reset.
	o := obs.New(obs.Options{})
	w := InstrumentLevel2(o, 1, NewTimed(4)).(*Instrumented)
	w.Warn = func(int, int, int64) { t.Error("warned on transient recovery") }

	hungry, done := stormView(), stormView()
	done.phase = tme.Thinking
	now := int64(0)
	for burst := 0; burst < 5; burst++ {
		for win := 0; win < stormAfter-1; win++ { // stay just under threshold
			w.Fire(now, hungry)
			now += 4
		}
		for gap := 0; gap < 3; gap++ { // recovery: guard closed, no firing
			w.Fire(now, done)
			now += 4
		}
	}
	if got := o.Registry().Counter("wrapper_resend_storm_total", "").Value(); got != 0 {
		t.Errorf("storm counter = %d on transient bursts, want 0", got)
	}
}

func TestStormGuardDisabledWithoutDelta(t *testing.T) {
	// An inner wrapper with no TimeoutDelta (plain W) leaves the guard off:
	// W legitimately fires every tick, which is not a resend storm.
	o := obs.New(obs.Options{})
	w := InstrumentLevel2(o, 1, Func(W)).(*Instrumented)
	w.Warn = func(int, int, int64) { t.Error("warned with guard disabled") }
	v := stormView()
	for now := int64(0); now < 100; now++ {
		w.Fire(now, v)
	}
	if got := o.Registry().Counter("wrapper_resend_storm_total", "").Value(); got != 0 {
		t.Errorf("storm counter = %d with δ unknown, want 0", got)
	}
}
