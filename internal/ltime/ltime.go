// Package ltime implements Lamport logical time: scalar logical clocks and
// the totally ordered timestamps required by the Timestamp Spec of the
// graybox TME specification (Arora, Demirbas, Kulkarni, DSN 2001, §3.2).
//
// A Timestamp pairs a logical clock value with the process id that produced
// it. The "less-than" relation lt induces a total order:
//
//	lc:e lt lc:f  ≡  lc:e < lc:f ∨ (lc:e = lc:f ∧ pid:e < pid:f)
//
// and logical clocks satisfy happened-before: e hb f ⇒ lc:e lt lc:f.
package ltime

import (
	"fmt"
	"strconv"
	"strings"
)

// Timestamp is a totally ordered logical timestamp. The zero value is the
// distinguished minimum timestamp (the paper's initial REQ value of 0).
type Timestamp struct {
	// Clock is the scalar Lamport clock value of the event.
	Clock uint64
	// PID is the id of the process at which the event occurred; it breaks
	// ties so that lt is a total order.
	PID int
}

// Zero is the minimum timestamp, used as the initial value of every REQ
// variable in Lspec's Init condition.
var Zero = Timestamp{}

// Less reports whether t lt u in the total order of the Timestamp Spec.
func (t Timestamp) Less(u Timestamp) bool {
	if t.Clock != u.Clock {
		return t.Clock < u.Clock
	}
	return t.PID < u.PID
}

// LessEq reports t lt u ∨ t = u.
func (t Timestamp) LessEq(u Timestamp) bool { return t == u || t.Less(u) }

// Compare returns -1, 0, or +1 as t is less than, equal to, or greater than u.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t == u:
		return 0
	case t.Less(u):
		return -1
	default:
		return 1
	}
}

// IsZero reports whether t is the minimum timestamp.
func (t Timestamp) IsZero() bool { return t == Zero }

// String renders the timestamp as "clock.pid", e.g. "17.3".
func (t Timestamp) String() string {
	var b strings.Builder
	b.WriteString(strconv.FormatUint(t.Clock, 10))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(t.PID))
	return b.String()
}

// Max returns the later of t and u under lt.
func Max(t, u Timestamp) Timestamp {
	if t.Less(u) {
		return u
	}
	return t
}

// Min returns the earlier of t and u under lt.
func Min(t, u Timestamp) Timestamp {
	if u.Less(t) {
		return u
	}
	return t
}

// Clock is a Lamport logical clock for one process. It produces timestamps
// that satisfy the Timestamp Spec: totally ordered and consistent with
// happened-before. The zero value is not usable; construct with NewClock.
//
// Clock is not safe for concurrent use; each process owns exactly one and
// drives it from its own event loop (or the simulator does, single-threaded).
type Clock struct {
	pid int
	val uint64
}

// NewClock returns a logical clock for process pid, starting at 0.
func NewClock(pid int) *Clock {
	return &Clock{pid: pid}
}

// PID returns the owning process id.
func (c *Clock) PID() int { return c.pid }

// Now returns the timestamp of the most recent event at this process without
// advancing the clock (the paper's ts.j).
func (c *Clock) Now() Timestamp {
	return Timestamp{Clock: c.val, PID: c.pid}
}

// Tick records a new local event and returns its timestamp. Successive Tick
// values strictly increase, so ts values never decrease over time, as the
// Timestamp Spec demands.
func (c *Clock) Tick() Timestamp {
	c.val++
	return Timestamp{Clock: c.val, PID: c.pid}
}

// Observe merges a timestamp received in a message and records the receive
// event, returning its timestamp. This is the standard Lamport rule
// lc := max(lc, msg) + 1, which establishes e hb f ⇒ lc:e lt lc:f across
// send/receive pairs.
func (c *Clock) Observe(ts Timestamp) Timestamp {
	if ts.Clock > c.val {
		c.val = ts.Clock
	}
	return c.Tick()
}

// Corrupt arbitrarily overwrites the clock value. It models the transient
// state-corruption faults of the TME fault model and exists only so fault
// injectors can reach the clock; correct code never calls it.
func (c *Clock) Corrupt(val uint64) {
	c.val = val
}

// Value exposes the raw scalar clock, for snapshots and tests.
func (c *Clock) Value() uint64 { return c.val }

// SetValue restores a raw scalar clock value (used when recovering a
// checkpointed process or applying improper-initialization faults).
func (c *Clock) SetValue(v uint64) { c.val = v }

var _ fmt.Stringer = Timestamp{}
