package ltime_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/ltime"
)

// ExampleClock shows the Lamport clock rules: local events tick, receives
// merge — so causally related events are totally ordered by lt.
func ExampleClock() {
	alice := ltime.NewClock(0)
	bob := ltime.NewClock(1)

	send := alice.Tick()      // alice's event 1
	recv := bob.Observe(send) // bob learns of it
	later := bob.Tick()       // bob's next event

	fmt.Println("send:", send, "recv:", recv, "later:", later)
	fmt.Println("send lt recv:", send.Less(recv))
	fmt.Println("recv lt later:", recv.Less(later))
	// Output:
	// send: 1.0 recv: 2.1 later: 3.1
	// send lt recv: true
	// recv lt later: true
}
