package ltime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroIsMinimum(t *testing.T) {
	others := []Timestamp{
		{Clock: 0, PID: 1},
		{Clock: 1, PID: 0},
		{Clock: 1, PID: -1},
		{Clock: 42, PID: 7},
	}
	for _, u := range others {
		if !Zero.Less(u) {
			t.Errorf("Zero.Less(%v) = false, want true", u)
		}
		if u.Less(Zero) {
			t.Errorf("%v.Less(Zero) = true, want false", u)
		}
	}
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if Zero.Less(Zero) {
		t.Error("Zero.Less(Zero) = true, want irreflexive")
	}
}

func TestLessTieBreaksOnPID(t *testing.T) {
	a := Timestamp{Clock: 5, PID: 1}
	b := Timestamp{Clock: 5, PID: 2}
	if !a.Less(b) {
		t.Errorf("%v.Less(%v) = false, want true (pid tie-break)", a, b)
	}
	if b.Less(a) {
		t.Errorf("%v.Less(%v) = true, want false", b, a)
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	cases := []struct {
		a, b Timestamp
		want int
	}{
		{Timestamp{1, 1}, Timestamp{2, 1}, -1},
		{Timestamp{2, 1}, Timestamp{1, 1}, 1},
		{Timestamp{3, 3}, Timestamp{3, 3}, 0},
		{Timestamp{3, 1}, Timestamp{3, 2}, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	ts := Timestamp{Clock: 17, PID: 3}
	if got, want := ts.String(), "17.3"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMaxMin(t *testing.T) {
	a := Timestamp{Clock: 2, PID: 9}
	b := Timestamp{Clock: 3, PID: 0}
	if got := Max(a, b); got != b {
		t.Errorf("Max = %v, want %v", got, b)
	}
	if got := Min(a, b); got != a {
		t.Errorf("Min = %v, want %v", got, a)
	}
	if got := Max(a, a); got != a {
		t.Errorf("Max(a,a) = %v, want %v", got, a)
	}
}

func TestLessEq(t *testing.T) {
	a := Timestamp{Clock: 1, PID: 1}
	if !a.LessEq(a) {
		t.Error("LessEq not reflexive")
	}
	if !Zero.LessEq(a) || a.LessEq(Zero) {
		t.Error("LessEq inconsistent with Less")
	}
}

// Property: lt is a strict total order — trichotomy holds for every pair.
func TestLessTotalOrderProperty(t *testing.T) {
	f := func(c1, c2 uint64, p1, p2 int8) bool {
		a := Timestamp{Clock: c1, PID: int(p1)}
		b := Timestamp{Clock: c2, PID: int(p2)}
		lt, gt, eq := a.Less(b), b.Less(a), a == b
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lt is transitive.
func TestLessTransitiveProperty(t *testing.T) {
	f := func(c1, c2, c3 uint16, p1, p2, p3 int8) bool {
		a := Timestamp{Clock: uint64(c1), PID: int(p1)}
		b := Timestamp{Clock: uint64(c2), PID: int(p2)}
		c := Timestamp{Clock: uint64(c3), PID: int(p3)}
		if a.Less(b) && b.Less(c) {
			return a.Less(c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockTickStrictlyIncreases(t *testing.T) {
	c := NewClock(4)
	prev := c.Now()
	for i := 0; i < 100; i++ {
		cur := c.Tick()
		if !prev.Less(cur) {
			t.Fatalf("tick %d: %v not less than %v", i, prev, cur)
		}
		if cur.PID != 4 {
			t.Fatalf("tick %d: pid = %d, want 4", i, cur.PID)
		}
		prev = cur
	}
}

func TestClockObserveJumpsForward(t *testing.T) {
	c := NewClock(1)
	got := c.Observe(Timestamp{Clock: 100, PID: 2})
	if got.Clock != 101 {
		t.Errorf("Observe(100) -> clock %d, want 101", got.Clock)
	}
	// Observing an old timestamp still ticks.
	got2 := c.Observe(Timestamp{Clock: 3, PID: 2})
	if got2.Clock != 102 {
		t.Errorf("Observe(3) -> clock %d, want 102", got2.Clock)
	}
}

func TestClockNowDoesNotAdvance(t *testing.T) {
	c := NewClock(0)
	c.Tick()
	a := c.Now()
	b := c.Now()
	if a != b {
		t.Errorf("Now() advanced: %v then %v", a, b)
	}
}

func TestClockCorruptAndRecover(t *testing.T) {
	c := NewClock(2)
	c.Tick()
	c.Corrupt(999)
	if c.Value() != 999 {
		t.Fatalf("Corrupt: value = %d, want 999", c.Value())
	}
	// After corruption, ticks still strictly increase from the corrupted
	// value — the Timestamp Spec is everywhere-implementable.
	ts := c.Tick()
	if ts.Clock != 1000 {
		t.Errorf("post-corruption tick = %d, want 1000", ts.Clock)
	}
	c.SetValue(5)
	if c.Now().Clock != 5 {
		t.Errorf("SetValue: now = %d, want 5", c.Now().Clock)
	}
}

// Property: happened-before implies lt. Simulate a random message-passing
// history and check every (cause, effect) pair is ordered by lt.
func TestHappenedBeforeImpliesLess(t *testing.T) {
	const (
		nProcs  = 4
		nEvents = 200
		trials  = 25
	)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		clocks := make([]*Clock, nProcs)
		for i := range clocks {
			clocks[i] = NewClock(i)
		}
		type event struct {
			ts     Timestamp
			proc   int
			causes []int // indices of events that happen-before this one
		}
		var events []event
		lastAt := make([]int, nProcs) // index of last event per process, -1 none
		for i := range lastAt {
			lastAt[i] = -1
		}
		var inflight []int // indices of send events not yet received
		for e := 0; e < nEvents; e++ {
			p := rng.Intn(nProcs)
			var ev event
			ev.proc = p
			if lastAt[p] >= 0 {
				ev.causes = append(ev.causes, lastAt[p])
			}
			if len(inflight) > 0 && rng.Intn(2) == 0 {
				// receive a random in-flight message
				k := rng.Intn(len(inflight))
				sendIdx := inflight[k]
				inflight = append(inflight[:k], inflight[k+1:]...)
				ev.causes = append(ev.causes, sendIdx)
				ev.ts = clocks[p].Observe(events[sendIdx].ts)
			} else {
				// local or send event
				ev.ts = clocks[p].Tick()
				if rng.Intn(2) == 0 {
					inflight = append(inflight, len(events))
				}
			}
			lastAt[p] = len(events)
			events = append(events, ev)
		}
		// Transitive closure check, following cause edges backwards.
		var check func(anc, idx int) bool
		check = func(anc, idx int) bool {
			if !events[anc].ts.Less(events[idx].ts) {
				return false
			}
			return true
		}
		for i, ev := range events {
			for _, c := range ev.causes {
				// walk all ancestors of c too
				stack := []int{c}
				seen := map[int]bool{}
				for len(stack) > 0 {
					a := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if seen[a] {
						continue
					}
					seen[a] = true
					if !check(a, i) {
						t.Fatalf("trial %d: hb violated: event %d (%v) !lt event %d (%v)",
							trial, a, events[a].ts, i, events[i].ts)
					}
					stack = append(stack, events[a].causes...)
				}
			}
		}
	}
}

// Property: sorting by Less yields a consistent permutation (sort.Slice with
// Less is a valid strict weak ordering).
func TestSortByLess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ts := make([]Timestamp, 500)
	for i := range ts {
		ts[i] = Timestamp{Clock: uint64(rng.Intn(50)), PID: rng.Intn(10)}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatalf("not sorted at %d: %v after %v", i, ts[i], ts[i-1])
		}
	}
}
