package graybox

import (
	"math/rand"
	"testing"
)

// sameTransitions reports whether two systems have identical transition
// relations and initial states (names aside).
func sameTransitions(a, b *System) bool {
	if a.NumStates() != b.NumStates() || a.NumTransitions() != b.NumTransitions() {
		return false
	}
	for _, e := range a.Transitions() {
		if !b.HasTransition(e[0], e[1]) {
			return false
		}
	}
	ai, bi := a.Init(), b.Init()
	if len(ai) != len(bi) {
		return false
	}
	for i := range ai {
		if ai[i] != bi[i] {
			return false
		}
	}
	return true
}

// The ▯ operator is idempotent: A ▯ A = A.
func TestBoxIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 100; i++ {
		a := Random(rng, "a", 2+rng.Intn(10), 2.0)
		aa, err := Box(a, a)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTransitions(a, aa) {
			t.Fatalf("iter %d: A ▯ A ≠ A", i)
		}
	}
}

// The ▯ operator is commutative: A ▯ B = B ▯ A.
func TestBoxCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 100; i++ {
		a := Random(rng, "a", 2+rng.Intn(10), 2.0)
		b := withInit(Random(rng, "b", a.NumStates(), 1.6), a.Init())
		ab, err1 := Box(a, b)
		ba, err2 := Box(b, a)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !sameTransitions(ab, ba) {
			t.Fatalf("iter %d: A ▯ B ≠ B ▯ A", i)
		}
	}
}

// The ▯ operator is associative: (A ▯ B) ▯ C = A ▯ (B ▯ C).
func TestBoxAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 100; i++ {
		a := Random(rng, "a", 2+rng.Intn(8), 1.8)
		b := withInit(Random(rng, "b", a.NumStates(), 1.5), a.Init())
		c := withInit(Random(rng, "c", a.NumStates(), 1.5), a.Init())
		ab, err := Box(a, b)
		if err != nil {
			t.Fatal(err)
		}
		abc1, err := Box(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Box(b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := Box(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTransitions(abc1, abc2) {
			t.Fatalf("iter %d: box not associative", i)
		}
	}
}

// Monotonicity of ⇒ under ▯ with a fixed wrapper: [C ⇒ A] implies
// [(C ▯ W) ⇒ (A ▯ W)] — the "monotonicity of ▯ w.r.t. [⇒]" step used
// inside the paper's proof of Lemma 0.
func TestBoxMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 100; i++ {
		a := Random(rng, "a", 2+rng.Intn(10), 2.0)
		c := RandomSub(rng, "c", a)
		w := withInit(Random(rng, "w", a.NumStates(), 1.5), a.Init())
		cw, err1 := Box(c, w)
		aw, err2 := Box(a, w)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r := EverywhereImplements(cw, aw); !r.Holds {
			t.Fatalf("iter %d: monotonicity violated: %v", i, r)
		}
	}
}

// Transitivity of [⇒]: [C ⇒ B] ∧ [B ⇒ A] implies [C ⇒ A] — the other
// step in Lemma 0's proof.
func TestEverywhereImplementsTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 100; i++ {
		a := Random(rng, "a", 2+rng.Intn(10), 2.5)
		b := RandomSub(rng, "b", a)
		c := RandomSub(rng, "c", b)
		if r := EverywhereImplements(c, a); !r.Holds {
			t.Fatalf("iter %d: transitivity violated: %v", i, r)
		}
	}
}

// Stabilization is reflexive on systems whose every cycle is legitimate,
// and in particular [C ⇒ A] ∧ A stabilizing to A gives C stabilizing to A
// even when C prunes transitions (first observation of §2.1, tested again
// at the algebra level for regression).
func TestStabilizationPreservedUnderPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	found := 0
	for i := 0; i < 300 && found < 30; i++ {
		a := Random(rng, "a", 2+rng.Intn(8), 1.8)
		if ok, _ := SelfStabilizing(a); !ok {
			continue
		}
		found++
		c := RandomSub(rng, "c", a)
		if ok, l := StabilizingTo(c, a); !ok {
			t.Fatalf("iter %d: pruned system lost stabilization: %v", i, l)
		}
	}
	if found < 10 {
		t.Fatalf("only %d self-stabilizing samples", found)
	}
}
