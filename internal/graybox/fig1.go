package graybox

import "math/rand"

// State names for the Figure 1 counterexample of the paper.
const (
	Fig1S0 = iota
	Fig1S1
	Fig1S2
	Fig1S3
	Fig1Star // s*, the state the transient fault F yields from s0
	fig1N
)

// Fig1A returns the specification A of Figure 1: the chain s0→s1→s2→s3→s3…
// from the initial state s0, plus the recovery transition s*→s2. A is
// stabilizing to A: from s*, its computation s*,s2,s3,… has the suffix
// s2,s3,… of the initialized computation.
func Fig1A() *System {
	return NewBuilder("A(fig1)", fig1N).
		AddChain(Fig1S0, Fig1S1, Fig1S2, Fig1S3).
		AddTransition(Fig1S3, Fig1S3).
		AddTransition(Fig1Star, Fig1S2).
		SetInit(Fig1S0).
		MustBuild()
}

// Fig1C returns the implementation C of Figure 1: identical to A from the
// initial state (so [C ⇒ A]_init holds) but from s* it loops forever, so C
// is not stabilizing to A — although A is stabilizing to A. This is the
// paper's demonstration that init-relative implementation does not transfer
// stabilization, motivating everywhere specifications.
func Fig1C() *System {
	return NewBuilder("C(fig1)", fig1N).
		AddChain(Fig1S0, Fig1S1, Fig1S2, Fig1S3).
		AddTransition(Fig1S3, Fig1S3).
		AddTransition(Fig1Star, Fig1Star).
		SetInit(Fig1S0).
		MustBuild()
}

// Random returns a random total transition system over n states with the
// given average out-degree (≥1) and one random initial state, suitable for
// property testing the framework's lemmas. The generator is deterministic
// in rng.
func Random(rng *rand.Rand, name string, n int, avgDegree float64) *System {
	if n < 1 {
		n = 1
	}
	if avgDegree < 1 {
		avgDegree = 1
	}
	b := NewBuilder(name, n)
	for u := 0; u < n; u++ {
		// Guarantee totality with one successor, then add extras.
		b.AddTransition(u, rng.Intn(n))
		extra := int(avgDegree) - 1
		if rng.Float64() < avgDegree-float64(int(avgDegree)) {
			extra++
		}
		for e := 0; e < extra; e++ {
			b.AddTransition(u, rng.Intn(n))
		}
	}
	b.SetInit(rng.Intn(n))
	return b.MustBuild()
}

// RandomSub returns a random everywhere-implementation of a: a system whose
// transitions are a nonempty total subset of a's transitions and whose
// initial states are a subset of a's (so both [C ⇒ A] and [C ⇒ A]_init
// hold by construction). Used to property-test Lemma 0 and Theorem 1.
func RandomSub(rng *rand.Rand, name string, a *System) *System {
	b := NewBuilder(name, a.n)
	for u := 0; u < a.n; u++ {
		succs := a.adj[u]
		// Keep a random nonempty subset of successors.
		keep := succs[rng.Intn(len(succs))]
		b.AddTransition(u, keep)
		for _, v := range succs {
			if rng.Intn(2) == 0 {
				b.AddTransition(u, v)
			}
		}
	}
	b.SetInit(a.init...)
	return b.MustBuild()
}
