package graybox_test

import (
	"fmt"

	"github.com/graybox-stabilization/graybox/internal/graybox"
)

// ExampleStabilizingTo reproduces the paper's Figure 1 in four lines: C
// implements A from initial states and A is self-stabilizing, yet C is not
// stabilizing to A.
func ExampleStabilizingTo() {
	a, c := graybox.Fig1A(), graybox.Fig1C()
	fmt.Println("C implements A (init):", graybox.Implements(c, a).Holds)
	okA, _ := graybox.SelfStabilizing(a)
	fmt.Println("A stabilizing to A:   ", okA)
	okC, lasso := graybox.StabilizingTo(c, a)
	fmt.Println("C stabilizing to A:   ", okC, "—", lasso)
	// Output:
	// C implements A (init): true
	// A stabilizing to A:    true
	// C stabilizing to A:    false — lasso cycle [4] with bad transition 4->4
}

// ExampleBox composes a system with a wrapper: the box operator is the
// union of the transition relations with the common initial states.
func ExampleBox() {
	c := graybox.NewBuilder("C", 2).
		AddTransition(0, 0).AddTransition(1, 1).SetInit(0).MustBuild()
	w := graybox.NewBuilder("W", 2).
		AddTransition(1, 0). // the wrapper's recovery action
		SetInit(0).Totalize().MustBuild()
	cw, err := graybox.Box(c, w)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(cw.Name(), "has", cw.NumTransitions(), "transitions")
	fmt.Println("recovery 1->0 present:", cw.HasTransition(1, 0))
	// Output:
	// C [] W has 3 transitions
	// recovery 1->0 present: true
}

// ExampleProduct builds the asynchronous product of two local systems —
// the formal meaning of a distributed system in the paper's framework.
func ExampleProduct() {
	toggle := graybox.NewBuilder("toggle", 2).
		AddTransition(0, 1).AddTransition(1, 0).SetInit(0).MustBuild()
	counter := graybox.NewBuilder("counter", 3).
		AddChain(0, 1, 2).AddTransition(2, 2).SetInit(0).MustBuild()
	p, err := graybox.Product("sys", toggle, counter)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("states:", p.NumStates(), "inits:", p.Init())
	// Output:
	// states: 6 inits: [0]
}
