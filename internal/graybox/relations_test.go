package graybox

import (
	"math/rand"
	"strings"
	"testing"
)

// TestFigure1 reproduces the paper's Figure 1 counterexample exactly:
// [C ⇒ A]_init holds, A is stabilizing to A, yet C is NOT stabilizing to A
// (the fault F: s0 → s* traps C in s* forever). This motivates everywhere
// specifications.
func TestFigure1(t *testing.T) {
	a, c := Fig1A(), Fig1C()

	if r := Implements(c, a); !r.Holds {
		t.Fatalf("[C ⇒ A]_init should hold: %v", r)
	}
	if ok, l := SelfStabilizing(a); !ok {
		t.Fatalf("A should be stabilizing to A, counterexample %v", l)
	}
	ok, l := StabilizingTo(c, a)
	if ok {
		t.Fatal("C should NOT be stabilizing to A")
	}
	if l == nil {
		t.Fatal("missing lasso counterexample")
	}
	if l.BadEdge != [2]int{Fig1Star, Fig1Star} {
		t.Errorf("bad edge = %v, want s*→s*", l.BadEdge)
	}
	if !strings.Contains(l.String(), "bad transition") {
		t.Errorf("lasso String = %q", l.String())
	}

	// And the everywhere relation correctly rejects C: s*→s* is not in A.
	if r := EverywhereImplements(c, a); r.Holds {
		t.Error("[C ⇒ A] should fail for Figure 1's C")
	} else if r.BadEdge == nil || *r.BadEdge != [2]int{Fig1Star, Fig1Star} {
		t.Errorf("EverywhereImplements counterexample = %v", r)
	}
}

// Theorem "first observation" of §2.1: [C ⇒ A] ∧ A stabilizing to A ⇒
// C stabilizing to A — property-tested on random systems.
func TestEverywhereTransfersStabilization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tested := 0
	for i := 0; i < 400; i++ {
		a := Random(rng, "a", 2+rng.Intn(12), 2.0)
		if ok, _ := SelfStabilizing(a); !ok {
			continue
		}
		c := RandomSub(rng, "c", a)
		tested++
		if ok, l := StabilizingTo(c, a); !ok {
			t.Fatalf("iter %d: [C⇒A] and A self-stabilizing but C not stabilizing to A: %v", i, l)
		}
	}
	if tested < 20 {
		t.Fatalf("only %d self-stabilizing samples; generator too weak", tested)
	}
}

func TestImplementsCounterexamples(t *testing.T) {
	a := NewBuilder("a", 3).AddChain(0, 1, 2).AddTransition(2, 2).SetInit(0).MustBuild()

	// Bad init: C starts where A does not.
	c1 := NewBuilder("c1", 3).AddChain(0, 1, 2).AddTransition(2, 2).SetInit(1).MustBuild()
	r := Implements(c1, a)
	if r.Holds || r.BadInit != 1 {
		t.Errorf("bad-init case: %v", r)
	}
	if !strings.Contains(r.String(), "initial state 1") {
		t.Errorf("String = %q", r.String())
	}

	// Bad reachable edge.
	c2 := NewBuilder("c2", 3).AddChain(0, 1, 0).AddTransition(2, 2).SetInit(0).MustBuild()
	r = Implements(c2, a)
	if r.Holds || r.BadEdge == nil || *r.BadEdge != [2]int{1, 0} {
		t.Errorf("bad-edge case: %v", r)
	}

	// Unreachable bad edge does not affect the init-relative query...
	c3 := NewBuilder("c3", 3).AddChain(0, 1, 2).AddTransition(2, 2).
		AddTransition(2, 2). // dup, no-op
		SetInit(0).MustBuild()
	if r = Implements(c3, a); !r.Holds {
		t.Errorf("identical system: %v", r)
	}

	// ...but an unreachable bad edge does break the everywhere query.
	c4 := NewBuilder("c4", 4).AddChain(0, 1, 2).AddTransition(2, 2).
		AddTransition(3, 0).SetInit(0).MustBuild()
	a4 := NewBuilder("a4", 4).AddChain(0, 1, 2).AddTransition(2, 2).
		AddTransition(3, 3).SetInit(0).MustBuild()
	if r = Implements(c4, a4); !r.Holds {
		t.Errorf("init-relative should ignore unreachable 3→0: %v", r)
	}
	if r = EverywhereImplements(c4, a4); r.Holds {
		t.Error("everywhere should reject unreachable 3→0")
	}
}

func TestBoxUnionSemantics(t *testing.T) {
	c := NewBuilder("c", 3).AddTransition(0, 1).AddTransition(1, 1).
		AddTransition(2, 2).SetInit(0, 2).MustBuild()
	w := NewBuilder("w", 3).AddTransition(0, 0).AddTransition(1, 2).
		AddTransition(2, 0).SetInit(0).MustBuild()
	cw, err := Box(c, w)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 0}, {2, 2}}
	for _, e := range wantEdges {
		if !cw.HasTransition(e[0], e[1]) {
			t.Errorf("box missing %v", e)
		}
	}
	if cw.NumTransitions() != len(wantEdges) {
		t.Errorf("box has %d transitions, want %d", cw.NumTransitions(), len(wantEdges))
	}
	if got := cw.Init(); len(got) != 1 || got[0] != 0 {
		t.Errorf("box init = %v, want [0]", got)
	}
	if !strings.Contains(cw.Name(), "[]") {
		t.Errorf("box name = %q", cw.Name())
	}
}

func TestBoxErrors(t *testing.T) {
	c := NewBuilder("c", 2).AddTransition(0, 0).AddTransition(1, 1).SetInit(0).MustBuild()
	w3 := NewBuilder("w", 3).AddTransition(0, 0).AddTransition(1, 1).
		AddTransition(2, 2).SetInit(0).MustBuild()
	if _, err := Box(c, w3); err == nil {
		t.Error("mismatched state spaces accepted")
	}
	// No common initial state.
	w2 := NewBuilder("w", 2).AddTransition(0, 0).AddTransition(1, 1).SetInit(1).MustBuild()
	if _, err := Box(c, w2); err == nil {
		t.Error("empty common init accepted")
	}
}

// withInit rebuilds s with the given initial states, keeping transitions.
func withInit(s *System, init []int) *System {
	b := NewBuilder(s.Name(), s.NumStates())
	for _, e := range s.Transitions() {
		b.AddTransition(e[0], e[1])
	}
	return b.SetInit(init...).MustBuild()
}

// Lemma 0: [C ⇒ A] ∧ [W' ⇒ W] ⇒ [(C ▯ W') ⇒ (A ▯ W)] — property-tested.
func TestLemma0Property(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		a := Random(rng, "a", 2+rng.Intn(10), 2.2)
		w := withInit(Random(rng, "w", a.NumStates(), 1.8), a.Init())
		c := RandomSub(rng, "c", a)
		wp := RandomSub(rng, "w'", w)
		cw, err1 := Box(c, wp)
		aw, err2 := Box(a, w)
		if err1 != nil || err2 != nil {
			// Init sets may fail to intersect only if Random made them
			// differ; RandomSub copies inits, so neither should fail.
			t.Fatalf("iter %d: box errors %v %v", i, err1, err2)
		}
		if r := EverywhereImplements(cw, aw); !r.Holds {
			t.Fatalf("iter %d: Lemma 0 violated: %v", i, r)
		}
	}
}

// Theorem 1: [C ⇒ A] ∧ (A ▯ W stabilizing to A) ∧ [W' ⇒ W] ⇒
// C ▯ W' stabilizing to A — property-tested.
func TestTheorem1Property(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tested := 0
	for i := 0; i < 600; i++ {
		a := Random(rng, "a", 2+rng.Intn(10), 2.0)
		w := withInit(Random(rng, "w", a.NumStates(), 1.5), a.Init())
		aw, err := Box(a, w)
		if err != nil {
			continue
		}
		if ok, _ := StabilizingTo(aw, a); !ok {
			continue
		}
		c := RandomSub(rng, "c", a)
		wp := RandomSub(rng, "w'", w)
		cw, err := Box(c, wp)
		if err != nil {
			continue
		}
		tested++
		if ok, l := StabilizingTo(cw, a); !ok {
			t.Fatalf("iter %d: Theorem 1 violated: %v", i, l)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d qualifying samples", tested)
	}
}

func TestStabilizingToDisjointSpaces(t *testing.T) {
	c := NewBuilder("c", 2).AddTransition(0, 1).AddTransition(1, 0).SetInit(0).MustBuild()
	a := NewBuilder("a", 3).AddChain(0, 1, 2).AddTransition(2, 2).SetInit(0).MustBuild()
	if ok, l := StabilizingTo(c, a); ok || l == nil {
		t.Error("mismatched spaces should fail with a lasso")
	}
}

func TestStabilizingLassoIsRealCycle(t *testing.T) {
	// 0→1→2→0 cycle outside legit set of a (legit = {3}).
	c := NewBuilder("c", 4).AddChain(0, 1, 2, 0).AddTransition(3, 3).SetInit(3).MustBuild()
	a := NewBuilder("a", 4).AddTransition(3, 3).
		AddTransition(0, 1).AddTransition(1, 2).AddTransition(2, 0).
		SetInit(3).MustBuild()
	// c's 0-1-2 cycle uses transitions that ARE a-transitions but lie
	// outside a's legitimate set, so c must not stabilize to a.
	ok, l := StabilizingTo(c, a)
	if ok {
		t.Fatal("expected non-stabilizing")
	}
	// Verify the returned cycle is a real cycle of c ending where BadEdge
	// departs.
	for i := 0; i+1 < len(l.Cycle); i++ {
		u, v := l.Cycle[i], l.Cycle[i+1]
		if !c.HasTransition(u, v) {
			t.Errorf("lasso step %d→%d not a transition of c", u, v)
		}
	}
	if l.Cycle[0] != l.BadEdge[1] || l.Cycle[len(l.Cycle)-1] != l.BadEdge[0] {
		t.Errorf("lasso %v does not close through bad edge %v", l.Cycle, l.BadEdge)
	}
}

// Soundness spot-check of StabilizingTo against brute-force path
// exploration on tiny systems: if the checker says stabilizing, then no
// lasso (stem ≤ n, cycle ≤ n) violates it; if not stabilizing, the returned
// lasso must be a genuine violating computation.
func TestStabilizingToAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(5)
		a := Random(rng, "a", n, 1.7)
		c := Random(rng, "c", n, 1.7)
		got, l := StabilizingTo(c, a)

		legit := a.Legitimate()
		bad := func(u, v int) bool {
			return !(legit[u] && legit[v] && a.HasTransition(u, v))
		}
		// Brute force: does any cycle of c contain a bad edge? Enumerate
		// edges and check same-SCC via reachability.
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = c.Reachable([]int{u})
		}
		want := true
		for _, e := range c.Transitions() {
			if bad(e[0], e[1]) && reach[e[1]][e[0]] {
				want = false
				break
			}
		}
		if got != want {
			t.Fatalf("iter %d: StabilizingTo = %v, brute force = %v", iter, got, want)
		}
		if !got {
			// The lasso must loop: cycle closes via bad edge.
			if l == nil || !bad(l.BadEdge[0], l.BadEdge[1]) {
				t.Fatalf("iter %d: lasso missing or edge not bad: %v", iter, l)
			}
		}
	}
}
