// Package graybox implements the formal framework of Graybox Stabilization
// (Arora, Demirbas, Kulkarni, DSN 2001, §2): systems as fusion-closed sets of
// computations over a state space, the relations "implements" ([C ⇒ A]_init),
// "everywhere implements" ([C ⇒ A]), "is stabilizing to", and the box
// composition C ▯ W.
//
// # Representation
//
// The paper assumes system computations are fusion closed (§2.1), and
// fusion-closed computation sets over a finite state space are exactly the
// path sets of transition relations. We therefore represent a System as a
// finite transition system: a state space {0..n-1}, a total transition
// relation, and a set of initial states. Computations are the infinite paths
// through the relation; the paper's requirement that "at least one sequence
// starts from every state" is totality of the relation, which Build enforces.
//
// Under this representation the paper's definitions become decidable:
//
//   - [C ⇒ A]_init  ⇔  init(C) ⊆ init(A) and every transition of C
//     reachable from init(C) is a transition of A.
//   - [C ⇒ A]       ⇔  every transition of C is a transition of A.
//   - C ▯ W: the smallest fusion-closed set containing both computation
//     sets is the path set of the union relation (fusion glues a C-segment
//     to a W-segment at any shared state); initial states are the common
//     initial states.
//   - "C is stabilizing to A": every computation of C has a suffix that is
//     a suffix of an A-computation from init(A). Suffixes of legitimate
//     A-computations are exactly the paths that stay inside
//     L = Reach_A(init(A)) using only A-transitions. On a finite graph this
//     fails iff some cycle of C contains a transition outside that "good"
//     set — which is what StabilizingTo checks, returning a lasso-shaped
//     counterexample when it fails.
package graybox

import (
	"errors"
	"fmt"
	"sort"
)

// System is a finite fusion-closed system: a total transition relation over
// states 0..n-1 plus a set of initial states. Construct with a Builder;
// System values are immutable afterwards.
type System struct {
	name string
	n    int
	// adj[u] is the sorted list of successors of u; total: never empty.
	adj [][]int
	// edge[u<<32|v] membership set for O(1) transition queries.
	edge map[uint64]struct{}
	init []int // sorted initial states
}

func edgeKey(u, v int) uint64 { return uint64(u)<<32 | uint64(uint32(v)) }

// Name returns the system's display name.
func (s *System) Name() string { return s.name }

// NumStates returns the size of the state space.
func (s *System) NumStates() int { return s.n }

// Init returns the initial states, sorted ascending. The slice is a copy.
func (s *System) Init() []int {
	out := make([]int, len(s.init))
	copy(out, s.init)
	return out
}

// IsInit reports whether state u is initial.
func (s *System) IsInit(u int) bool {
	i := sort.SearchInts(s.init, u)
	return i < len(s.init) && s.init[i] == u
}

// HasTransition reports whether (u,v) is a transition of the system.
func (s *System) HasTransition(u, v int) bool {
	_, ok := s.edge[edgeKey(u, v)]
	return ok
}

// Successors returns the successors of u, sorted ascending. The slice must
// not be modified.
func (s *System) Successors(u int) []int { return s.adj[u] }

// NumTransitions returns the number of transitions.
func (s *System) NumTransitions() int { return len(s.edge) }

// Transitions returns all transitions in deterministic (u,v) order.
func (s *System) Transitions() [][2]int {
	out := make([][2]int, 0, len(s.edge))
	for u := 0; u < s.n; u++ {
		for _, v := range s.adj[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// Builder accumulates states, transitions, and initial states for a System.
type Builder struct {
	name string
	n    int
	adj  map[int]map[int]struct{}
	init map[int]struct{}
}

// NewBuilder returns a Builder for a system named name over states 0..n-1.
func NewBuilder(name string, n int) *Builder {
	return &Builder{
		name: name,
		n:    n,
		adj:  make(map[int]map[int]struct{}),
		init: make(map[int]struct{}),
	}
}

// AddTransition adds the transition u→v. Adding a duplicate is a no-op.
func (b *Builder) AddTransition(u, v int) *Builder {
	m, ok := b.adj[u]
	if !ok {
		m = make(map[int]struct{})
		b.adj[u] = m
	}
	m[v] = struct{}{}
	return b
}

// AddChain adds transitions s[0]→s[1]→…→s[k-1].
func (b *Builder) AddChain(states ...int) *Builder {
	for i := 0; i+1 < len(states); i++ {
		b.AddTransition(states[i], states[i+1])
	}
	return b
}

// SetInit marks the given states as initial.
func (b *Builder) SetInit(states ...int) *Builder {
	for _, s := range states {
		b.init[s] = struct{}{}
	}
	return b
}

// ErrNotTotal is returned by Build when some state has no outgoing
// transition, violating the paper's requirement that at least one
// computation starts from every state.
var ErrNotTotal = errors.New("graybox: transition relation is not total")

// ErrNoInit is returned by Build when no initial state was set.
var ErrNoInit = errors.New("graybox: system has no initial state")

// Build validates and freezes the system. The transition relation must be
// total and at least one initial state must be set; out-of-range endpoints
// are rejected.
func (b *Builder) Build() (*System, error) {
	s := &System{
		name: b.name,
		n:    b.n,
		adj:  make([][]int, b.n),
		edge: make(map[uint64]struct{}),
	}
	for u, succs := range b.adj {
		if u < 0 || u >= b.n {
			return nil, fmt.Errorf("graybox: state %d out of range [0,%d)", u, b.n)
		}
		for v := range succs {
			if v < 0 || v >= b.n {
				return nil, fmt.Errorf("graybox: state %d out of range [0,%d)", v, b.n)
			}
			s.adj[u] = append(s.adj[u], v)
			s.edge[edgeKey(u, v)] = struct{}{}
		}
		sort.Ints(s.adj[u])
	}
	for u := 0; u < b.n; u++ {
		if len(s.adj[u]) == 0 {
			return nil, fmt.Errorf("%w: state %d has no successor", ErrNotTotal, u)
		}
	}
	if len(b.init) == 0 {
		return nil, ErrNoInit
	}
	for u := range b.init {
		if u < 0 || u >= b.n {
			return nil, fmt.Errorf("graybox: initial state %d out of range [0,%d)", u, b.n)
		}
		s.init = append(s.init, u)
	}
	sort.Ints(s.init)
	return s, nil
}

// Totalize adds a self-loop to every state lacking a successor, then builds.
// This is the standard stuttering completion for guarded-command programs
// whose guards are not enabled everywhere (e.g. wrappers).
func (b *Builder) Totalize() *Builder {
	for u := 0; u < b.n; u++ {
		if len(b.adj[u]) == 0 {
			b.AddTransition(u, u)
		}
	}
	return b
}

// MustBuild is Build for static, known-good models; it panics on error.
// Use only for fixtures and examples, never on user input.
func (b *Builder) MustBuild() *System {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// Reachable returns the set of states reachable from the given seed states
// (inclusive), as a boolean vector indexed by state.
func (s *System) Reachable(from []int) []bool {
	seen := make([]bool, s.n)
	stack := make([]int, 0, len(from))
	for _, u := range from {
		if u >= 0 && u < s.n && !seen[u] {
			seen[u] = true
			stack = append(stack, u)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range s.adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// Legitimate returns the legitimate states of the system: those reachable
// from its initial states. Suffixes of initialized computations live
// entirely inside this set.
func (s *System) Legitimate() []bool { return s.Reachable(s.init) }
